#!/bin/sh
# Full CI pipeline: build everything, run the unit/property suites, then
# the end-to-end aliases (telemetry artifacts, networked sessions, the
# parallel-vs-sequential exploration differential).  The aliases are
# --force'd so the e2e paths re-run even on a warm _build.
set -eux

cd "$(dirname "$0")/.."

dune build
dune runtest
dune build @check-obs @check-net @check-par --force

# Distributed tracing end to end: merged multi-process Chrome traces from
# the loopback, socket and parallel-exploration paths, validated by
# check_trace (causal structure must close).
dune build @check-span --force

# Static analysis: the tree must lint clean across all three tiers —
# syntactic, typed poly-compare, and the whole-program domain-safety race
# check — and the linter itself must keep finding the seeded fixture
# violations (including the deliberately-racy Tier C tree in
# test/lintfix, pinned by kind and line through check_lint --tierc).
dune build @lint @check-lint --force

# Profiling is opt-in: the same run with and without --profile/WB_PROF=1,
# validated on disk (no prof.* series when off, all four when on, every
# OpenMetrics exposition grammatically valid).
dune build @check-prof --force

# The communication-cost observatory: the full-registry certificate
# sweep at n in {16, 64, 256, 1024} (measured <= envelope, >= Lemma 3
# floor where declared), the same-seed byte-determinism of the cost
# table, and the on-disk proof that a never-enabled run registers no
# cost.* series while --cost/WB_COST=1 both do.
dune build @check-cost --force

# The chaos referee: deterministic fault-injection campaigns — a pinned
# same-seed report diff, a campaign from the committed plan fixture, and
# a 100+-run seed sweep across all four model classes with the
# crash-replay differential enforced on every run.
dune build @check-chaos --force

# The bench history and regression gate: two fast suite runs through
# `wbctl bench`, a benchdiff of the second against the first (the table
# lands in the job log and as an artifact), and the pinned gate fixture
# that must exit 1.
dune build @check-bench --force
