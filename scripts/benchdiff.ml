(* benchdiff — the bench-history regression gate.

   usage: benchdiff [--history FILE] [--gate PAT:+Y%]... [--no-append] REPORT.json...

   Each REPORT.json (a schema-1 Wb_bench.Report document) is compared
   against the prior runs of the same bench in the history file
   (BENCH_history.jsonl by default): newest value vs the median of the
   priors, flagged as regressed only when it exceeds the gate's +Y%
   threshold or three median-absolute-deviations of the priors, whichever
   is larger.  Report-only without --gate.  After the comparison each
   document is appended to the history (--no-append to skip, e.g. when
   re-diffing an already-recorded run).

   exit 0  clean (or report-only)
   exit 1  at least one gated metric regressed
   exit 2  usage or unreadable/incompatible input *)

module Report = Wb_bench.Report
module Diff = Wb_bench.Diff

let usage () =
  prerr_endline
    "usage: benchdiff [--history FILE] [--gate PAT:+Y%]... [--no-append] REPORT.json...";
  exit 2

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("benchdiff: " ^ s); exit 2) fmt

let () =
  let history = ref "BENCH_history.jsonl" in
  let gates = ref [] in
  let append = ref true in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--history" :: v :: tl ->
      history := v;
      parse tl
    | "--gate" :: v :: tl ->
      (match Diff.parse_gate v with
      | Some g -> gates := g :: !gates
      | None -> fail "bad gate spec %S (expected PAT:+Y%%)" v);
      parse tl
    | "--no-append" :: tl ->
      append := false;
      parse tl
    | [ "--history" ] | [ "--gate" ] -> usage ()
    | arg :: _ when String.length arg >= 2 && String.equal (String.sub arg 0 2) "--" ->
      usage ()
    | arg :: tl ->
      files := arg :: !files;
      parse tl
  in
  parse (List.tl (Array.to_list Sys.argv));
  let files = List.rev !files in
  let gates = List.rev !gates in
  if files = [] then usage ();
  let prior = Report.load_history !history in
  let regressed = ref 0 in
  List.iter
    (fun file ->
      let doc = match Report.load file with Ok d -> d | Error e -> fail "%s" e in
      (match Report.schema_of doc with
      | Some 1 -> ()
      | Some v -> fail "%s: unsupported schema %d (want 1)" file v
      | None -> fail "%s: not a bench report (no schema field)" file);
      let bench =
        match Report.bench_of doc with
        | Some b -> b
        | None -> fail "%s: no bench field" file
      in
      let priors =
        List.filter
          (fun d ->
            match Report.bench_of d with Some b -> String.equal b bench | None -> false)
          prior
      in
      Printf.printf "== %s (%s): %d prior run(s) in %s ==\n" bench file
        (List.length priors) !history;
      let rows = Diff.compare_run ~gates ~priors doc in
      Diff.pp_table Format.std_formatter rows;
      let bad = Diff.regressions rows in
      regressed := !regressed + List.length bad;
      List.iter
        (fun (r : Diff.row) ->
          Printf.printf "REGRESSION %s.%s: %.6g -> %.6g (%+.1f%% over median of %d)\n" bench
            r.Diff.metric r.Diff.baseline r.Diff.value r.Diff.delta_pct r.Diff.prior_runs)
        bad;
      if !append then Report.append_history ~history:!history doc)
    files;
  if !append then
    Printf.printf "appended %d run(s) to %s\n" (List.length files) !history;
  if !regressed > 0 then begin
    Printf.printf "%d gated metric(s) regressed\n" !regressed;
    exit 1
  end
