(** A minimal JSON value, printer and parser.

    Built on the stdlib only: the telemetry surface (JSONL traces, Chrome
    trace files, metrics snapshots, bench sidecars) must be machine-readable
    without pulling a JSON dependency into the sealed container, and the
    round-trip tests need an independent reader for what the writers emit.

    Numbers are split into [Int] and [Float]; the parser yields [Int] for
    number tokens without a fraction or exponent.  Non-finite floats have no
    JSON representation and are printed as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering — one call per JSONL record. *)

val to_channel : out_channel -> t -> unit

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error.  The error
    string carries a character offset. *)

val of_string_exn : string -> t
(** @raise Failure on parse errors. *)

(** {1 Accessors} — shallow helpers for tests and checkers. *)

val member : string -> t -> t option
(** [member key (Obj _)]; [None] on missing key or non-object. *)

val get : string -> t -> t
(** @raise Failure when the key is absent or the value is not an object. *)

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
