(* Phase profiling with the same zero-cost discipline as the trace sinks:
   when disabled (the default), [phase] is one atomic load and a direct
   call of the phased closure — no histogram registration, no Gc.quick_stat,
   no clock read — so a never-enabled process exposes no [prof.*] series at
   all.  Sites cache their instruments in an Atomic: parallel exploration
   workers may race the first fill, so the winner is published by
   compare-and-set and losers adopt it (the registry's idempotent
   [register] hands every contender the same histograms anyway). *)

let enabled =
  Atomic.make
    (match Sys.getenv_opt "WB_PROF" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | Some _ | None -> false)

let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

type instruments = {
  us : Metrics.histogram;
  minor_words : Metrics.histogram;
  promoted_words : Metrics.histogram;
  major_collections : Metrics.histogram;
}

type site = { name : string; inst : instruments option Atomic.t }

let site name = { name; inst = Atomic.make None }
let name s = s.name

let instruments s =
  match Atomic.get s.inst with
  | Some i -> i
  | None ->
    let h suffix help =
      Metrics.histogram ~help (Printf.sprintf "prof.%s.%s" s.name suffix)
    in
    let i =
      { us = h "us" "phase wall time, microseconds";
        minor_words = h "minor_words" "words allocated on the minor heap during the phase";
        promoted_words = h "promoted_words" "words promoted to the major heap during the phase";
        major_collections = h "major_collections" "major collections finished during the phase" }
    in
    if Atomic.compare_and_set s.inst None (Some i) then i
    else Option.get (Atomic.get s.inst)

let record s t0 (g0 : Gc.stat) =
  let t1 = Span.now_us () in
  let g1 = Gc.quick_stat () in
  let i = instruments s in
  Metrics.observe i.us (t1 - t0);
  Metrics.observe i.minor_words (int_of_float (g1.Gc.minor_words -. g0.Gc.minor_words));
  Metrics.observe i.promoted_words
    (int_of_float (g1.Gc.promoted_words -. g0.Gc.promoted_words));
  Metrics.observe i.major_collections (g1.Gc.major_collections - g0.Gc.major_collections)

let phase s f =
  if not (Atomic.get enabled) then f ()
  else begin
    let g0 = Gc.quick_stat () in
    let t0 = Span.now_us () in
    match f () with
    | v ->
      record s t0 g0;
      v
    | exception e ->
      (* Raising phases are still observed — a phase that always dies by
         exception would otherwise be invisible in the profile. *)
      record s t0 g0;
      raise e
  end
