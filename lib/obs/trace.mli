(** Trace sinks: where execution {!Event}s go.

    The engine takes an {e optional} sink; with none attached it constructs
    no events at all (the zero-cost-when-disabled contract), so a sink only
    pays for what it observes.  Sinks compose: [tee] fans one stream out to
    several, [sample] keeps one execution window in [every], and {!Chrome}
    (its own module) converts the stream to the Catapult viewer format.

    [close] flushes sinks that buffer ({!Chrome.writer}, [jsonl_writer]
    leaves the channel open but flushed); it never closes an [out_channel]
    the caller handed in — lifetime stays with the caller. *)

type t

val emit : t -> Event.t -> unit
val close : t -> unit
(** Idempotent. *)

val null : t
(** Drops everything.  The default everywhere a sink is optional. *)

val of_fn : ?close:(unit -> unit) -> (Event.t -> unit) -> t

val tee : t list -> t
(** Forward each event to every sink, in order; [close] closes them all. *)

val collector : unit -> t * (unit -> Event.t list)
(** Unbounded in-memory sink; the thunk returns events in emission order. *)

(** Bounded in-memory sink keeping the {e latest} [capacity] events — the
    flight-recorder view of a long run. *)
module Ring : sig
  type buffer

  val create : capacity:int -> buffer
  (** @raise Invalid_argument when [capacity <= 0]. *)

  val sink : buffer -> t
  val length : buffer -> int
  val dropped : buffer -> int
  (** Events overwritten since creation (or the last [clear]). *)

  val to_list : buffer -> Event.t list
  (** Oldest retained event first. *)

  val clear : buffer -> unit
end

val jsonl_writer : out_channel -> t
(** One {!Event.to_json} object per line.  [close] flushes the channel. *)

val sample : every:int -> t -> t
(** Execution-level sampling for {!val:Wb_model.Engine} [explore]-style
    streams: events are buffered per execution window (delimited by
    [Run_end]) and only every [every]-th window — the first, the
    [every+1]-th, … — is forwarded.  [close] drops any incomplete window
    and closes the inner sink.
    @raise Invalid_argument when [every <= 0]. *)
