(** Chrome [trace_event] (Catapult) exporter: a traced run opens directly in
    [about:tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    The execution has no wall clock — logical rounds are the time axis — so
    round [r] is mapped to timestamp [r * 1000] microseconds (one round = one
    millisecond on screen).  Each node becomes a thread ([tid = node + 1],
    matching the paper's external numbering); its active life from
    [Activate] to [Write] is a complete ("X") slice, composes and writes are
    instant events on the node's row, and round starts / adversary picks /
    deadlock sit on the scheduler row [tid 0].

    The exporter buffers: nothing is written until {!Trace.close}, because
    slice durations are only known once the run ends. *)

val writer : out_channel -> Trace.t
(** On close, writes one JSON object [{"traceEvents": [...],
    "displayTimeUnit": "ms"}] and flushes (the channel stays open — the
    caller owns it). *)
