(** Chrome [trace_event] (Catapult) exporter: a traced run opens directly in
    [about:tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    The execution has no wall clock — logical rounds are the time axis — so
    round [r] is mapped to timestamp [r * 1000] microseconds (one round = one
    millisecond on screen).  Each node becomes a thread ([tid = node + 1],
    matching the paper's external numbering); its active life from
    [Activate] to [Write] is a complete ("X") slice, composes and writes are
    instant events on the node's row, and round starts / adversary picks /
    deadlock sit on the scheduler row [tid 0].

    {!Span} events render as Catapult {e async} events ("b"/"e") keyed by
    the span id, with [args.trace]/[args.span]/[args.parent] carried
    verbatim ([parent: null] marks a trace root) — the shape the
    [check_trace] validator checks causality on.  In the single-run
    {!writer}/[convert] view they share the logical round axis; in {!merge}
    they carry their real wall-clock endpoints.

    The exporter buffers: nothing is written until {!Trace.close}, because
    slice durations are only known once the run ends. *)

val writer : out_channel -> Trace.t
(** On close, writes one JSON object [{"traceEvents": [...],
    "displayTimeUnit": "ms"}] and flushes (the channel stays open — the
    caller owns it). *)

val merge : (string * Event.t list) list -> Json.t
(** [merge [(label, events); ...]] stitches per-process / per-domain event
    shards into one Catapult file: shard [i] becomes pid [i + 1] with a
    [process_name] metadata record naming it [label].  Span events share
    one wall-clock axis, normalised so the earliest span endpoint across
    all shards is 0; classic events (which have no wall time) appear as
    instants at their shard's latest span timestamp, preserving stream
    order.  A [Span_stop] whose start is not in the same shard (ring
    truncation) is dropped, so every "e" record has a matching "b". *)
