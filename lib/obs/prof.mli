(** Phase profiling: wall time and GC pressure per named phase, recorded
    into the {!Metrics} registry as [prof.<name>.*] histograms.

    A profiled phase observes four series — [prof.<name>.us] (wall time in
    microseconds, via {!Span.now_us}), [.minor_words] and [.promoted_words]
    (allocation deltas from [Gc.quick_stat]) and [.major_collections]
    (major GCs finished during the phase).

    {b Zero-cost when disabled.}  Profiling is off by default; a disabled
    {!phase} is a single atomic load plus the closure call, and — because
    instruments are registered lazily on first {e enabled} observation — a
    never-enabled process has no [prof.*] series in the registry at all
    ([wbctl top] shows none).  Enable with {!enable}, the [--profile] flag
    on the [wbctl] run-like commands, or [WB_PROF=1] in the environment.

    Sites are cheap, process-global values meant to be created once at
    module initialisation next to the other metric registrations; [phase]
    is domain-safe (the underlying registry and histograms are). *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

type site

val site : string -> site
(** [site "machine.step"] declares the phase whose series are
    [prof.machine.step.*].  Allocates only the cache cell; nothing is
    registered until the first observation under an enabled profiler. *)

val name : site -> string

val phase : site -> (unit -> 'a) -> 'a
(** Run the closure, attributing its wall time and GC deltas to the site
    when profiling is enabled.  Exceptions propagate unchanged (the raising
    run is still observed). *)
