let ts_of_round round = round * 1000

let common ?(pid = 1) ~name ~ph ~ts ~tid extra =
  Json.Obj
    ([ ("name", Json.String name);
       ("ph", Json.String ph);
       ("ts", Json.Int ts);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid) ]
    @ extra)

let instant ?pid ~name ~round ~tid args =
  common ?pid ~name ~ph:"i" ~ts:(ts_of_round round) ~tid
    (("s", Json.String "t") :: (if List.is_empty args then [] else [ ("args", Json.Obj args) ]))

(* Spans render as Catapult async events ("b"/"e") keyed by span id, so
   nesting across lanes survives and the validator can check causality
   structurally.  [parent] is always present in args — [Null] marks a trace
   root. *)
let span_id span = Printf.sprintf "0x%x" span

let span_begin ?pid ~ts ~trace ~span ~parent ~name ~attrs () =
  common ?pid ~name ~ph:"b" ~ts ~tid:0
    [ ("cat", Json.String "span");
      ("id", Json.String (span_id span));
      ("args",
       Json.Obj
         ([ ("trace", Json.Int trace);
            ("span", Json.Int span);
            ("parent", match parent with None -> Json.Null | Some p -> Json.Int p) ]
         @ List.map (fun (k, v) -> (k, Json.String v)) attrs)) ]

let span_end ?pid ~ts ~span ~name () =
  common ?pid ~name ~ph:"e" ~ts ~tid:0
    [ ("cat", Json.String "span"); ("id", Json.String (span_id span)) ]

let convert events =
  (* Pass 1: node lifetimes (activation round -> write round) and the last
     round, so unfinished slices can be closed at the run's horizon. *)
  let activation = Hashtbl.create 64 in
  let completion = Hashtbl.create 64 in
  let last_round = ref 0 in
  List.iter
    (fun ev ->
      last_round := max !last_round (Event.round ev);
      match ev with
      | Event.Activate { node; round } -> Hashtbl.replace activation node round
      | Event.Write { node; round; _ } -> Hashtbl.replace completion node round
      | _ -> ())
    events;
  let slices =
    Hashtbl.fold
      (fun node a_round acc ->
        let w_round =
          match Hashtbl.find_opt completion node with Some r -> r | None -> !last_round
        in
        let dur = max 1 (w_round - a_round) in
        common
          ~name:(Printf.sprintf "node %d active" (node + 1))
          ~ph:"X" ~ts:(ts_of_round a_round) ~tid:(node + 1)
          [ ("dur", Json.Int (dur * 1000));
            ("args",
             Json.Obj
               [ ("activation_round", Json.Int a_round);
                 ("wrote", Json.Bool (Hashtbl.mem completion node)) ]) ]
        :: acc)
      activation []
  in
  (* Spans share the logical (round) axis of the single-run view; the real
     wall-clock endpoints stay available in the JSONL export.  A stop whose
     start fell outside this event list (ring truncation, sampling windows)
     is dropped so every "e" has a prior "b". *)
  let open_spans = Hashtbl.create 16 in
  let instants =
    List.filter_map
      (fun ev ->
        match ev with
        | Event.Round_start { round } ->
          Some (instant ~name:(Printf.sprintf "round %d" round) ~round ~tid:0 [])
        | Event.Activate _ -> None (* covered by the slice *)
        | Event.Compose { node; round; bits } ->
          Some (instant ~name:"compose" ~round ~tid:(node + 1) [ ("bits", Json.Int bits) ])
        | Event.Adversary_pick { node; round; candidates } ->
          Some
            (instant ~name:"adversary pick" ~round ~tid:0
               [ ("node", Json.Int (node + 1));
                 ("candidates", Json.Int (List.length candidates)) ])
        | Event.Write { node; round; bits; board_bits } ->
          Some
            (instant ~name:"write" ~round ~tid:(node + 1)
               [ ("bits", Json.Int bits); ("board_bits", Json.Int board_bits) ])
        | Event.Cost_round { round; writes; bits; board_bits } ->
          Some
            (instant ~name:"round cost" ~round ~tid:0
               [ ("writes", Json.Int writes);
                 ("bits", Json.Int bits);
                 ("board_bits", Json.Int board_bits) ])
        | Event.Deadlock_detected { round } -> Some (instant ~name:"DEADLOCK" ~round ~tid:0 [])
        | Event.Run_end { round; outcome } ->
          Some (instant ~name:"run end" ~round ~tid:0 [ ("outcome", Json.String outcome) ])
        | Event.Span_start { trace; span; parent; name; round; attrs; _ } ->
          Hashtbl.replace open_spans span name;
          Some (span_begin ~ts:(ts_of_round round) ~trace ~span ~parent ~name ~attrs ())
        | Event.Span_stop { span; round; _ } -> (
          match Hashtbl.find_opt open_spans span with
          | Some name -> Some (span_end ~ts:(ts_of_round round) ~span ~name ())
          | None -> None))
      events
  in
  Json.Obj
    [ ("traceEvents", Json.List (slices @ instants)); ("displayTimeUnit", Json.String "ms") ]

let merge shards =
  (* One pid lane per shard, spans on a shared wall-clock axis normalised to
     the earliest span endpoint across all shards.  Classic events have no
     wall time, so each rides at its shard's cursor — the ts of the latest
     span event before it in stream order — which keeps interleaving honest
     without inventing timestamps. *)
  let t0 =
    List.fold_left
      (fun acc (_, events) ->
        List.fold_left
          (fun acc ev ->
            match ev with
            | Event.Span_start { ts_us; _ } | Event.Span_stop { ts_us; _ } -> min acc ts_us
            | _ -> acc)
          acc events)
      max_int shards
  in
  let t0 = if t0 = max_int then 0 else t0 in
  let shard_events i (label, events) =
    let pid = i + 1 in
    let meta =
      Json.Obj
        [ ("name", Json.String "process_name");
          ("ph", Json.String "M");
          ("pid", Json.Int pid);
          ("tid", Json.Int 0);
          ("args", Json.Obj [ ("name", Json.String label) ]) ]
    in
    let open_spans = Hashtbl.create 16 in
    let cursor = ref 0 in
    let rendered =
      List.filter_map
        (fun ev ->
          match ev with
          | Event.Span_start { trace; span; parent; name; ts_us; attrs; _ } ->
            let ts = max 0 (ts_us - t0) in
            cursor := ts;
            Hashtbl.replace open_spans span name;
            Some (span_begin ~pid ~ts ~trace ~span ~parent ~name ~attrs ())
          | Event.Span_stop { span; ts_us; _ } -> (
            let ts = max 0 (ts_us - t0) in
            cursor := ts;
            match Hashtbl.find_opt open_spans span with
            | Some name -> Some (span_end ~pid ~ts ~span ~name ())
            | None -> None)
          | Event.Round_start { round } ->
            Some
              (common ~pid ~name:(Printf.sprintf "round %d" round) ~ph:"i" ~ts:!cursor ~tid:0
                 [ ("s", Json.String "t") ])
          | Event.Activate { node; _ } ->
            Some
              (common ~pid ~name:"activate" ~ph:"i" ~ts:!cursor ~tid:(node + 1)
                 [ ("s", Json.String "t") ])
          | Event.Compose { node; bits; _ } ->
            Some
              (common ~pid ~name:"compose" ~ph:"i" ~ts:!cursor ~tid:(node + 1)
                 [ ("s", Json.String "t"); ("args", Json.Obj [ ("bits", Json.Int bits) ]) ])
          | Event.Adversary_pick _ -> None
          | Event.Write { node; bits; _ } ->
            Some
              (common ~pid ~name:"write" ~ph:"i" ~ts:!cursor ~tid:(node + 1)
                 [ ("s", Json.String "t"); ("args", Json.Obj [ ("bits", Json.Int bits) ]) ])
          | Event.Cost_round { writes; bits; board_bits; _ } ->
            Some
              (common ~pid ~name:"round cost" ~ph:"i" ~ts:!cursor ~tid:0
                 [ ("s", Json.String "t");
                   ("args",
                    Json.Obj
                      [ ("writes", Json.Int writes);
                        ("bits", Json.Int bits);
                        ("board_bits", Json.Int board_bits) ]) ])
          | Event.Deadlock_detected _ ->
            Some (common ~pid ~name:"DEADLOCK" ~ph:"i" ~ts:!cursor ~tid:0 [ ("s", Json.String "t") ])
          | Event.Run_end { outcome; _ } ->
            Some
              (common ~pid ~name:"run end" ~ph:"i" ~ts:!cursor ~tid:0
                 [ ("s", Json.String "t");
                   ("args", Json.Obj [ ("outcome", Json.String outcome) ]) ]))
        events
    in
    meta :: rendered
  in
  Json.Obj
    [ ("traceEvents", Json.List (List.concat (List.mapi shard_events shards)));
      ("displayTimeUnit", Json.String "ms") ]

let writer oc =
  let events = ref [] in
  Trace.of_fn
    ~close:(fun () ->
      Json.to_channel oc (convert (List.rev !events));
      output_char oc '\n';
      flush oc)
    (fun ev -> events := ev :: !events)
