let ts_of_round round = round * 1000

let common ~name ~ph ~ts ~tid extra =
  Json.Obj
    ([ ("name", Json.String name);
       ("ph", Json.String ph);
       ("ts", Json.Int ts);
       ("pid", Json.Int 1);
       ("tid", Json.Int tid) ]
    @ extra)

let instant ~name ~round ~tid args =
  common ~name ~ph:"i" ~ts:(ts_of_round round) ~tid
    (("s", Json.String "t") :: (if List.is_empty args then [] else [ ("args", Json.Obj args) ]))

let convert events =
  (* Pass 1: node lifetimes (activation round -> write round) and the last
     round, so unfinished slices can be closed at the run's horizon. *)
  let activation = Hashtbl.create 64 in
  let completion = Hashtbl.create 64 in
  let last_round = ref 0 in
  List.iter
    (fun ev ->
      last_round := max !last_round (Event.round ev);
      match ev with
      | Event.Activate { node; round } -> Hashtbl.replace activation node round
      | Event.Write { node; round; _ } -> Hashtbl.replace completion node round
      | _ -> ())
    events;
  let slices =
    Hashtbl.fold
      (fun node a_round acc ->
        let w_round =
          match Hashtbl.find_opt completion node with Some r -> r | None -> !last_round
        in
        let dur = max 1 (w_round - a_round) in
        common
          ~name:(Printf.sprintf "node %d active" (node + 1))
          ~ph:"X" ~ts:(ts_of_round a_round) ~tid:(node + 1)
          [ ("dur", Json.Int (dur * 1000));
            ("args",
             Json.Obj
               [ ("activation_round", Json.Int a_round);
                 ("wrote", Json.Bool (Hashtbl.mem completion node)) ]) ]
        :: acc)
      activation []
  in
  let instants =
    List.filter_map
      (fun ev ->
        match ev with
        | Event.Round_start { round } ->
          Some (instant ~name:(Printf.sprintf "round %d" round) ~round ~tid:0 [])
        | Event.Activate _ -> None (* covered by the slice *)
        | Event.Compose { node; round; bits } ->
          Some (instant ~name:"compose" ~round ~tid:(node + 1) [ ("bits", Json.Int bits) ])
        | Event.Adversary_pick { node; round; candidates } ->
          Some
            (instant ~name:"adversary pick" ~round ~tid:0
               [ ("node", Json.Int (node + 1));
                 ("candidates", Json.Int (List.length candidates)) ])
        | Event.Write { node; round; bits; board_bits } ->
          Some
            (instant ~name:"write" ~round ~tid:(node + 1)
               [ ("bits", Json.Int bits); ("board_bits", Json.Int board_bits) ])
        | Event.Deadlock_detected { round } -> Some (instant ~name:"DEADLOCK" ~round ~tid:0 [])
        | Event.Run_end { round; outcome } ->
          Some (instant ~name:"run end" ~round ~tid:0 [ ("outcome", Json.String outcome) ]))
      events
  in
  Json.Obj
    [ ("traceEvents", Json.List (slices @ instants)); ("displayTimeUnit", Json.String "ms") ]

let writer oc =
  let events = ref [] in
  Trace.of_fn
    ~close:(fun () ->
      Json.to_channel oc (convert (List.rev !events));
      output_char oc '\n';
      flush oc)
    (fun ev -> events := ev :: !events)
