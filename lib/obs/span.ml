(* Ids are masked to 48 bits so they survive every transport in the tree:
   Bitbuf naturals, the JSON printer's OCaml [int], and Chrome's string ids
   all round-trip them exactly.  0 is reserved as "no id" so a context can
   never be confused with an absent one on the wire. *)

type context = { trace : int; span : int }

let id_bits = 48
let id_mask = (1 lsl id_bits) - 1

type minter = { prng : Wb_support.Prng.t; lock : Mutex.t }

let minter ?(seed = 0) () = { prng = Wb_support.Prng.create seed; lock = Mutex.create () }

let split t =
  Wb_support.Sync.with_lock t.lock (fun () ->
      { prng = Wb_support.Prng.split t.prng; lock = Mutex.create () })

let mint t =
  Wb_support.Sync.with_lock t.lock (fun () ->
      let rec fresh () =
        let id = Int64.to_int (Wb_support.Prng.bits64 t.prng) land id_mask in
        if id = 0 then fresh () else id
      in
      fresh ())

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

type t = { context : context; parent : int option; name : string }

let context s = s.context
let name s = s.name

let start ?parent ?(attrs = []) ?(round = 0) minter trace name =
  let trace_id, parent_id =
    match parent with
    | Some p -> (p.trace, Some p.span)
    | None -> (mint minter, None)
  in
  let s = { context = { trace = trace_id; span = mint minter }; parent = parent_id; name } in
  Trace.emit trace
    (Event.Span_start
       { trace = trace_id;
         span = s.context.span;
         parent = parent_id;
         name;
         round;
         ts_us = now_us ();
         attrs });
  s

let finish ?(round = 0) trace s =
  Trace.emit trace (Event.Span_stop { span = s.context.span; round; ts_us = now_us () })
