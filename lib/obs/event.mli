(** The typed event vocabulary of a whiteboard execution.

    One event stream describes everything the engine does that the paper's
    semantics can observe: rounds starting, nodes activating, messages being
    (re)composed — {e every} recomposition in the synchronous models, not
    just the one the adversary eventually writes — adversarial choices,
    writes with their exact bit cost, deadlock detection, and the final
    outcome.

    [node] indices are the engine's internal 0-based identifiers; printers
    add 1 to match the paper's external [1..n] convention (see DESIGN.md
    §4).  [round] is the engine's logical round counter, starting at 1. *)

type t =
  | Round_start of { round : int }
  | Activate of { node : int; round : int }
  | Compose of { node : int; round : int; bits : int }
      (** The node built (or rebuilt) its message at [bits] payload bits. *)
  | Adversary_pick of { node : int; round : int; candidates : int list }
      (** The scheduler chose [node] among [candidates] (0-based, sorted). *)
  | Write of { node : int; round : int; bits : int; board_bits : int }
      (** [board_bits] is the board total {e after} this append. *)
  | Cost_round of { round : int; writes : int; bits : int; board_bits : int }
      (** The {!Cost} ledger's per-round summary — emitted only when the
          ledger is enabled, for rounds in which at least one write landed:
          [bits] appended by [writes] messages, [board_bits] the board total
          after the round. *)
  | Deadlock_detected of { round : int }
  | Run_end of { round : int; outcome : string }
      (** [outcome] is one of ["success"], ["deadlock"], ["size_violation"],
          ["output_error"]. *)
  | Span_start of {
      trace : int;
      span : int;
      parent : int option;
      name : string;
      round : int;
      ts_us : int;
      attrs : (string * string) list;
    }
      (** A {!Span} opened: [trace]/[span] ids are minted by {!Span.minter}
          (48-bit, nonzero), [parent = None] marks a trace root, [ts_us] is
          wall-clock microseconds, and [round] anchors the span in logical
          time so span events obey the same round monotonicity as the rest
          of the stream. *)
  | Span_stop of { span : int; round : int; ts_us : int }

val round : t -> int

val to_json : t -> Json.t
(** Stable wire shape: an object whose ["ev"] member tags the constructor
    (["round_start"], ["activate"], ["compose"], ["adversary_pick"],
    ["write"], ["cost_round"], ["deadlock"], ["run_end"], ["span_start"],
    ["span_stop"]). *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json} — the round-trip contract the exporter tests pin. *)

val pp : Format.formatter -> t -> unit
