(** Spans: causally linked intervals layered on the {!Event} stream.

    A span is an interval with a name, wall-clock endpoints and a position
    in a trace tree: every span belongs to a {e trace} (the unit of
    observation — one run, one exploration, one networked session) and has
    at most one parent span.  Opening and closing a span just emits
    {!Event.Span_start}/{!Event.Span_stop} into an ordinary {!Trace.t}, so
    spans ride every existing sink — collectors, rings, JSONL, sampling —
    and cost nothing when no sink is attached.

    Ids come from the deterministic PRNG ({!Wb_support.Prng}), not a
    clock: a {!minter} seeded the same way mints the same ids, so the
    {e structure} of a trace is reproducible run over run even though the
    [ts_us] timestamps are wall time.  Ids are 48-bit and nonzero, which
    keeps them exact across Bitbuf naturals, JSON ints and Chrome string
    ids, and reserves 0 for "absent" on the wire.

    A {!context} is the portable half of a span — the pair of ids a peer
    needs to parent its own spans under ours.  [lib/net/wire.ml] carries
    one per frame (version 2), which is how a referee RPC shows up as the
    parent of the client-side handler span in a merged trace. *)

type context = { trace : int; span : int }
(** What crosses process boundaries: the trace id and the sender's current
    span id.  Both in [\[1, 2^48)]. *)

type minter
(** A thread-safe id source (PRNG + mutex). *)

val minter : ?seed:int -> unit -> minter
(** [minter ~seed ()] mints a reproducible id stream; equal seeds give
    equal ids (default seed 0). *)

val split : minter -> minter
(** An independent minter for a concurrent component (per-domain workers);
    deterministic, like {!Wb_support.Prng.split}. *)

val mint : minter -> int
(** Next fresh id: uniform, nonzero, 48-bit. *)

val now_us : unit -> int
(** Wall-clock microseconds ([Unix.gettimeofday]).  The single clock used
    for span endpoints — kept here so clock access stays inside [lib/obs]
    where the determinism lint allows it. *)

type t
(** An open span. *)

val start :
  ?parent:context -> ?attrs:(string * string) list -> ?round:int -> minter -> Trace.t -> string -> t
(** [start ?parent minter trace name] opens a span and emits its
    {!Event.Span_start}.  With [parent], the span joins that trace under
    the parent's span id; without, it roots a fresh trace.  [round]
    (default 0) anchors the event in logical time. *)

val context : t -> context
(** The context to propagate to children — local or remote. *)

val name : t -> string

val finish : ?round:int -> Trace.t -> t -> unit
(** Emit the matching {!Event.Span_stop}.  Not idempotent; call once. *)
