type t =
  | Round_start of { round : int }
  | Activate of { node : int; round : int }
  | Compose of { node : int; round : int; bits : int }
  | Adversary_pick of { node : int; round : int; candidates : int list }
  | Write of { node : int; round : int; bits : int; board_bits : int }
  | Cost_round of { round : int; writes : int; bits : int; board_bits : int }
  | Deadlock_detected of { round : int }
  | Run_end of { round : int; outcome : string }
  | Span_start of {
      trace : int;
      span : int;
      parent : int option;
      name : string;
      round : int;
      ts_us : int;
      attrs : (string * string) list;
    }
  | Span_stop of { span : int; round : int; ts_us : int }

let round = function
  | Round_start { round }
  | Activate { round; _ }
  | Compose { round; _ }
  | Adversary_pick { round; _ }
  | Write { round; _ }
  | Cost_round { round; _ }
  | Deadlock_detected { round }
  | Run_end { round; _ }
  | Span_start { round; _ }
  | Span_stop { round; _ } -> round

let to_json = function
  | Round_start { round } -> Json.Obj [ ("ev", Json.String "round_start"); ("round", Json.Int round) ]
  | Activate { node; round } ->
    Json.Obj [ ("ev", Json.String "activate"); ("node", Json.Int node); ("round", Json.Int round) ]
  | Compose { node; round; bits } ->
    Json.Obj
      [ ("ev", Json.String "compose");
        ("node", Json.Int node);
        ("round", Json.Int round);
        ("bits", Json.Int bits) ]
  | Adversary_pick { node; round; candidates } ->
    Json.Obj
      [ ("ev", Json.String "adversary_pick");
        ("node", Json.Int node);
        ("round", Json.Int round);
        ("candidates", Json.List (List.map (fun v -> Json.Int v) candidates)) ]
  | Write { node; round; bits; board_bits } ->
    Json.Obj
      [ ("ev", Json.String "write");
        ("node", Json.Int node);
        ("round", Json.Int round);
        ("bits", Json.Int bits);
        ("board_bits", Json.Int board_bits) ]
  | Cost_round { round; writes; bits; board_bits } ->
    Json.Obj
      [ ("ev", Json.String "cost_round");
        ("round", Json.Int round);
        ("writes", Json.Int writes);
        ("bits", Json.Int bits);
        ("board_bits", Json.Int board_bits) ]
  | Deadlock_detected { round } ->
    Json.Obj [ ("ev", Json.String "deadlock"); ("round", Json.Int round) ]
  | Run_end { round; outcome } ->
    Json.Obj
      [ ("ev", Json.String "run_end"); ("round", Json.Int round); ("outcome", Json.String outcome) ]
  | Span_start { trace; span; parent; name; round; ts_us; attrs } ->
    Json.Obj
      ([ ("ev", Json.String "span_start");
         ("trace", Json.Int trace);
         ("span", Json.Int span) ]
      @ (match parent with None -> [] | Some p -> [ ("parent", Json.Int p) ])
      @ [ ("name", Json.String name); ("round", Json.Int round); ("ts_us", Json.Int ts_us) ]
      @
      if List.is_empty attrs then []
      else [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) attrs)) ])
  | Span_stop { span; round; ts_us } ->
    Json.Obj
      [ ("ev", Json.String "span_stop");
        ("span", Json.Int span);
        ("round", Json.Int round);
        ("ts_us", Json.Int ts_us) ]

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let int key =
    match Json.member key j with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "Event.of_json: missing int %S" key)
  in
  let str key =
    match Json.member key j with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "Event.of_json: missing string %S" key)
  in
  let* ev = str "ev" in
  match ev with
  | "round_start" ->
    let* round = int "round" in
    Ok (Round_start { round })
  | "activate" ->
    let* node = int "node" in
    let* round = int "round" in
    Ok (Activate { node; round })
  | "compose" ->
    let* node = int "node" in
    let* round = int "round" in
    let* bits = int "bits" in
    Ok (Compose { node; round; bits })
  | "adversary_pick" ->
    let* node = int "node" in
    let* round = int "round" in
    let* candidates =
      match Json.member "candidates" j with
      | Some (Json.List items) ->
        List.fold_right
          (fun item acc ->
            match (item, acc) with
            | Json.Int v, Ok vs -> Ok (v :: vs)
            | _, Error e -> Error e
            | _, Ok _ -> Error "Event.of_json: non-int candidate")
          items (Ok [])
      | _ -> Error "Event.of_json: missing candidates"
    in
    Ok (Adversary_pick { node; round; candidates })
  | "write" ->
    let* node = int "node" in
    let* round = int "round" in
    let* bits = int "bits" in
    let* board_bits = int "board_bits" in
    Ok (Write { node; round; bits; board_bits })
  | "cost_round" ->
    let* round = int "round" in
    let* writes = int "writes" in
    let* bits = int "bits" in
    let* board_bits = int "board_bits" in
    Ok (Cost_round { round; writes; bits; board_bits })
  | "deadlock" ->
    let* round = int "round" in
    Ok (Deadlock_detected { round })
  | "run_end" ->
    let* round = int "round" in
    let* outcome = str "outcome" in
    Ok (Run_end { round; outcome })
  | "span_start" ->
    let* trace = int "trace" in
    let* span = int "span" in
    let* parent =
      match Json.member "parent" j with
      | None -> Ok None
      | Some (Json.Int p) -> Ok (Some p)
      | Some _ -> Error "Event.of_json: non-int parent"
    in
    let* name = str "name" in
    let* round = int "round" in
    let* ts_us = int "ts_us" in
    let* attrs =
      match Json.member "attrs" j with
      | None -> Ok []
      | Some (Json.Obj fields) ->
        List.fold_right
          (fun (k, v) acc ->
            match (v, acc) with
            | Json.String s, Ok kvs -> Ok ((k, s) :: kvs)
            | _, Error e -> Error e
            | _, Ok _ -> Error "Event.of_json: non-string attr")
          fields (Ok [])
      | Some _ -> Error "Event.of_json: malformed attrs"
    in
    Ok (Span_start { trace; span; parent; name; round; ts_us; attrs })
  | "span_stop" ->
    let* span = int "span" in
    let* round = int "round" in
    let* ts_us = int "ts_us" in
    Ok (Span_stop { span; round; ts_us })
  | other -> Error (Printf.sprintf "Event.of_json: unknown tag %S" other)

let pp ppf e =
  match e with
  | Round_start { round } -> Format.fprintf ppf "round %d" round
  | Activate { node; round } -> Format.fprintf ppf "r%d: activate %d" round (node + 1)
  | Compose { node; round; bits } ->
    Format.fprintf ppf "r%d: compose %d (%d bits)" round (node + 1) bits
  | Adversary_pick { node; round; candidates } ->
    Format.fprintf ppf "r%d: adversary picks %d of {%s}" round (node + 1)
      (String.concat "," (List.map (fun v -> string_of_int (v + 1)) candidates))
  | Write { node; round; bits; board_bits } ->
    Format.fprintf ppf "r%d: write %d (%d bits, board %d)" round (node + 1) bits board_bits
  | Cost_round { round; writes; bits; board_bits } ->
    Format.fprintf ppf "r%d: cost %d writes, %d bits (board %d)" round writes bits board_bits
  | Deadlock_detected { round } -> Format.fprintf ppf "r%d: deadlock" round
  | Run_end { round; outcome } -> Format.fprintf ppf "r%d: run end (%s)" round outcome
  | Span_start { span; parent; name; round; _ } ->
    Format.fprintf ppf "r%d: span %s start [%x%s]" round name span
      (match parent with None -> "" | Some p -> Printf.sprintf " < %x" p)
  | Span_stop { span; round; _ } -> Format.fprintf ppf "r%d: span stop [%x]" round span
