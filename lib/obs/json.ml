type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing -------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)

(* ---- parsing --------------------------------------------------------- *)

exception Parse of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let utf8 buf code =
    (* Encode one Unicode scalar value (basic plane is all \uXXXX covers
       without surrogate pairing, which we accept as-is). *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 match int_of_string_opt ("0x" ^ hex) with
                 | Some c -> c
                 | None -> fail "bad \\u escape"
               in
               pos := !pos + 4;
               utf8 buf code
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let had = ref false in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        had := true;
        advance ()
      done;
      if not !had then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let token = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string token)
    else
      match int_of_string_opt token with
      | Some i -> Int i
      | None -> Float (float_of_string token)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse (at, msg) -> Error (Printf.sprintf "json parse error at %d: %s" at msg)

let of_string_exn s =
  match of_string s with Ok v -> v | Error e -> failwith e

(* ---- accessors ------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get key v =
  match member key v with
  | Some x -> x
  | None -> failwith (Printf.sprintf "Json.get: no member %S" key)

let to_int = function Int i -> Some i | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
