(* The communication-cost ledger, with the same zero-cost discipline as
   [Prof]: when disabled (the default), [create] is one atomic load
   returning [None] and the kernel's per-write hook is a [match] on that
   [None] — no registration, no histogram update — so a never-enabled
   process exposes no [cost.*] series at all.  The instruments are
   process-global singletons registered lazily on the first enabled run;
   parallel exploration workers may race the first fill, so the winner is
   published by compare-and-set and losers adopt it (the registry's
   idempotent [register] hands every contender the same series anyway). *)

let enabled =
  Atomic.make
    (match Sys.getenv_opt "WB_COST" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | Some _ | None -> false)

let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

type instruments = {
  total_bits : Metrics.counter;
  writes : Metrics.counter;
  board_bits : Metrics.gauge;
  message_bits : Metrics.histogram;
  round_bits : Metrics.histogram;
  round_writes : Metrics.histogram;
}

let inst_cell : instruments option Atomic.t = Atomic.make None

let instruments () =
  match Atomic.get inst_cell with
  | Some i -> i
  | None ->
    let i =
      { total_bits = Metrics.counter ~help:"bits appended to boards (cost ledger)" "cost.total_bits";
        writes = Metrics.counter ~help:"messages accounted by the cost ledger" "cost.writes";
        board_bits = Metrics.gauge ~help:"board total bits after last accounted write" "cost.board_bits";
        message_bits =
          Metrics.histogram ~help:"encode width per message, bits" "cost.message_bits";
        round_bits =
          Metrics.histogram ~help:"bits appended per round (rounds with writes)" "cost.round_bits";
        round_writes =
          Metrics.histogram ~help:"writes granted per round (rounds with writes)"
            "cost.round_writes" }
    in
    if Atomic.compare_and_set inst_cell None (Some i) then i
    else Option.get (Atomic.get inst_cell)

type ledger = {
  inst : instruments;
  mutable round : int;
  mutable cur_bits : int;
  mutable cur_writes : int;
  mutable total_bits : int;
  mutable total_writes : int;
}

let create () =
  if not (Atomic.get enabled) then None
  else
    Some
      { inst = instruments ();
        round = 0;
        cur_bits = 0;
        cur_writes = 0;
        total_bits = 0;
        total_writes = 0 }

let record l ~round ~bits ~board_bits =
  l.round <- round;
  l.cur_bits <- l.cur_bits + bits;
  l.cur_writes <- l.cur_writes + 1;
  l.total_bits <- l.total_bits + bits;
  l.total_writes <- l.total_writes + 1;
  Metrics.add l.inst.total_bits bits;
  Metrics.incr l.inst.writes;
  Metrics.set l.inst.board_bits board_bits;
  Metrics.observe l.inst.message_bits bits

type round_summary = { round : int; writes : int; bits : int }

let flush_round l =
  if l.cur_writes = 0 then None
  else begin
    let summary = { round = l.round; writes = l.cur_writes; bits = l.cur_bits } in
    Metrics.observe l.inst.round_bits l.cur_bits;
    Metrics.observe l.inst.round_writes l.cur_writes;
    l.cur_bits <- 0;
    l.cur_writes <- 0;
    Some summary
  end

(* A backtracking explorer rewinds logical time mid-round; the open
   accumulator would attribute the replayed writes to the wrong round, so a
   restore drops it (the cumulative totals keep counting every write the
   process performed, replays included). *)
let discard_round l =
  l.cur_bits <- 0;
  l.cur_writes <- 0

let total_bits l = l.total_bits
let total_writes l = l.total_writes

(* ---- theorem-bound certificates --------------------------------------- *)

type certificate = {
  form : string;
  envelope : n:int -> int;
  floor : (n:int -> int) option;
  floor_class : string option;
}

type verdict = {
  n : int;
  measured : int;
  envelope_bits : int;
  floor_bits : int option;
  envelope_ok : bool;
  floor_ok : bool;
}

let check cert ~n ~measured =
  let envelope_bits = cert.envelope ~n in
  let floor_bits = Option.map (fun f -> f ~n) cert.floor in
  { n;
    measured;
    envelope_bits;
    floor_bits;
    envelope_ok = measured <= envelope_bits;
    floor_ok = (match floor_bits with None -> true | Some fl -> measured >= fl) }

let verdict_ok v = v.envelope_ok && v.floor_ok
