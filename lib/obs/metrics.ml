(* Domain-safe: every value cell is an [Atomic.t] (counters, gauges,
   histogram buckets and moments), and the name->metric table is guarded by
   a mutex, so parallel exploration workers ([Wb_model.Engine.explore_par])
   can instrument concurrently without corrupting the registry.  Histogram
   snapshots read one atomic at a time, so a dump taken mid-update may be
   momentarily inconsistent between [count] and [sum] — fine for telemetry,
   which is the only reader. *)

type counter = int Atomic.t
type gauge = int Atomic.t

(* 1 + 63 buckets: index 0 for the value 0, index w for bit width w. *)
type histogram = {
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum : int Atomic.t;
  min_v : int Atomic.t;
  max_v : int Atomic.t;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Probe of (unit -> int) ref
  | Histogram of histogram

let registry : (string, string * metric) Hashtbl.t = Hashtbl.create 64

let registry_lock = Mutex.create ()

let locked f = Wb_support.Sync.with_lock registry_lock f

let register name help make match_existing =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (_, existing) -> (
        match match_existing existing with
        | Some v -> v
        | None ->
          invalid_arg (Printf.sprintf "Metrics: %S already registered as another kind" name))
      | None ->
        let v, m = make () in
        Hashtbl.replace registry name (help, m);
        v)

let counter ?(help = "") name =
  register name help
    (fun () ->
      let c = Atomic.make 0 in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let incr c = Atomic.incr c

let add c n =
  if n < 0 then invalid_arg "Metrics.add: negative amount";
  ignore (Atomic.fetch_and_add c n)

let counter_value c = Atomic.get c

let gauge ?(help = "") name =
  register name help
    (fun () ->
      let g = Atomic.make 0 in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let set g v = Atomic.set g v
let gauge_value g = Atomic.get g

let probe ?(help = "") name thunk =
  ignore
    (register name help
       (fun () -> ((), Probe (ref thunk)))
       (function
         | Probe r ->
           r := thunk;
           Some ()
         | _ -> None))

let histogram ?(help = "") name =
  register name help
    (fun () ->
      let h =
        { buckets = Array.init 64 (fun _ -> Atomic.make 0);
          count = Atomic.make 0;
          sum = Atomic.make 0;
          min_v = Atomic.make max_int;
          max_v = Atomic.make min_int }
      in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

let bucket_of v = Wb_support.Bitbuf.width_of v

(* Lock-free monotone update: retry the CAS until our candidate no longer
   improves on the published value. *)
let rec fold_extremum better cell v =
  let cur = Atomic.get cell in
  if better v cur && not (Atomic.compare_and_set cell cur v) then fold_extremum better cell v

let observe h v =
  let v = if v < 0 then 0 else v in
  Atomic.incr h.buckets.(bucket_of v);
  Atomic.incr h.count;
  ignore (Atomic.fetch_and_add h.sum v);
  fold_extremum ( < ) h.min_v v;
  fold_extremum ( > ) h.max_v v

let histogram_count h = Atomic.get h.count
let histogram_sum h = Atomic.get h.sum

(* Percentile estimate from the log buckets: walk cumulative counts to the
   bucket holding the rank and answer its inclusive upper bound (2^w - 1),
   clamped by the observed maximum.  Exact for bucket 0 (the value 0); at
   most one bit-width coarse elsewhere, which is all a telemetry histogram
   promises. *)
let percentile_opt h p =
  if not (p >= 0. && p <= 100.) then invalid_arg "Metrics.percentile: p outside [0,100]";
  let count = Atomic.get h.count in
  if count = 0 then None
  else begin
    let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int count))) in
    let max_v = Atomic.get h.max_v in
    let rec go w acc =
      if w >= 64 then max_v
      else
        let acc = acc + Atomic.get h.buckets.(w) in
        if acc >= rank then (if w = 0 then 0 else min max_v ((1 lsl w) - 1)) else go (w + 1) acc
    in
    Some (go 0 0)
  end

(* The 0-defaulting wrapper around [percentile_opt], kept for callers that
   feed arithmetic and cannot use an option; display code should use
   [percentile_opt] and render absence explicitly. *)
let percentile h p = match percentile_opt h p with None -> 0 | Some v -> v

let sorted () =
  locked (fun () ->
      List.sort
        (fun (a, _, _) (b, _, _) -> String.compare a b)
        (Hashtbl.fold (fun name (help, m) acc -> (name, help, m) :: acc) registry []))

let histogram_json h =
  let count = Atomic.get h.count in
  let buckets =
    List.filter_map
      (fun w ->
        let c = Atomic.get h.buckets.(w) in
        if c = 0 then None
        else
          (* upper bound (exclusive) of bucket w: 2^w, except bucket 0
             which holds only the value 0 (upper bound 1). *)
          Some (Json.List [ Json.Int (1 lsl w); Json.Int c ]))
      (List.init 64 Fun.id)
  in
  let pct p = match percentile_opt h p with None -> Json.Null | Some v -> Json.Int v in
  Json.Obj
    [ ("count", Json.Int count);
      ("sum", Json.Int (Atomic.get h.sum));
      ("min", if count = 0 then Json.Null else Json.Int (Atomic.get h.min_v));
      ("max", if count = 0 then Json.Null else Json.Int (Atomic.get h.max_v));
      ("p50", pct 50.);
      ("p95", pct 95.);
      ("p99", pct 99.);
      ("buckets", Json.List buckets) ]

let dump_json () =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (name, _help, m) ->
      match m with
      | Counter c -> counters := (name, Json.Int (Atomic.get c)) :: !counters
      | Gauge g -> gauges := (name, Json.Int (Atomic.get g)) :: !gauges
      | Probe r -> gauges := (name, Json.Int (!r ())) :: !gauges
      | Histogram h -> histograms := (name, histogram_json h) :: !histograms)
    (sorted ());
  Json.Obj
    [ ("counters", Json.Obj (List.rev !counters));
      ("gauges", Json.Obj (List.rev !gauges));
      ("histograms", Json.Obj (List.rev !histograms)) ]

(* ---- OpenMetrics / Prometheus text exposition -------------------------- *)

module Openmetrics = struct
  (* Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted registry
     names ("engine.runs") are mapped onto that grammar by replacing every
     illegal character with '_' and prefixing a '_' when the first character
     is not a legal leader. *)
  let sanitize_name name =
    if String.length name = 0 then "_"
    else begin
      let ok_rest c =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
        || c = '_' || c = ':'
      in
      let b = Buffer.create (String.length name + 1) in
      let first = name.[0] in
      if first >= '0' && first <= '9' then Buffer.add_char b '_';
      String.iter (fun c -> Buffer.add_char b (if ok_rest c then c else '_')) name;
      Buffer.contents b
    end

  (* HELP text: backslash and newline are escaped; everything else (quotes
     included) is legal verbatim on a HELP line. *)
  let escape_help s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* Label values additionally escape the double quote that delimits them. *)
  let escape_label s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let num_str = function
    | Json.Int i -> Some (string_of_int i)
    | Json.Float f -> Some (Printf.sprintf "%.17g" f)
    | _ -> None

  (* Renders a {!dump_json} envelope.  Working from the JSON snapshot rather
     than the live registry keeps the renderer pure, so golden tests can
     feed synthetic envelopes without touching the process-global state.
     [help] maps the {e original} (pre-sanitization) metric name to its help
     string; [""] suppresses the HELP line. *)
  let of_json ?(help = fun _ -> "") j =
    let buf = Buffer.create 1024 in
    let out line = Buffer.add_string buf line in
    let meta name kind =
      let n = sanitize_name name in
      let h = help name in
      if not (String.equal h "") then out (Printf.sprintf "# HELP %s %s\n" n (escape_help h));
      out (Printf.sprintf "# TYPE %s %s\n" n kind);
      n
    in
    let section key =
      match Json.member key j with Some (Json.Obj kvs) -> kvs | _ -> []
    in
    List.iter
      (fun (name, v) ->
        match num_str v with
        | Some s ->
          let n = meta name "counter" in
          out (Printf.sprintf "%s_total %s\n" n s)
        | None -> ())
      (section "counters");
    List.iter
      (fun (name, v) ->
        match num_str v with
        | Some s ->
          let n = meta name "gauge" in
          out (Printf.sprintf "%s %s\n" n s)
        | None -> ())
      (section "gauges");
    List.iter
      (fun (name, hj) ->
        let n = meta name "histogram" in
        let int_member key =
          match Json.member key hj with Some (Json.Int i) -> Some i | _ -> None
        in
        let count = match int_member "count" with Some c -> c | None -> 0 in
        let sum = match int_member "sum" with Some s -> s | None -> 0 in
        let buckets =
          match Json.member "buckets" hj with Some (Json.List l) -> l | _ -> []
        in
        (* dump_json buckets carry exclusive integer upper bounds, so the
           inclusive [le] boundary is [upper - 1]; counts are per-bucket and
           become cumulative here, as the exposition format requires. *)
        let acc = ref 0 in
        List.iter
          (fun b ->
            match b with
            | Json.List [ Json.Int upper; Json.Int c ] ->
              acc := !acc + c;
              out (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n (upper - 1) !acc)
            | _ -> ())
          buckets;
        out (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n count);
        out (Printf.sprintf "%s_sum %d\n" n sum);
        out (Printf.sprintf "%s_count %d\n" n count);
        let quantiles =
          List.filter_map
            (fun (q, key) ->
              match int_member key with Some v -> Some (q, v) | None -> None)
            [ ("0.5", "p50"); ("0.95", "p95"); ("0.99", "p99") ]
        in
        match quantiles with
        | [] -> ()
        | qs ->
          out (Printf.sprintf "# TYPE %s_quantile gauge\n" n);
          List.iter
            (fun (q, v) -> out (Printf.sprintf "%s_quantile{quantile=\"%s\"} %d\n" n q v))
            qs)
      (section "histograms");
    out "# EOF\n";
    Buffer.contents buf

  (* ---- validation ------------------------------------------------------ *)

  let is_name_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

  let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

  let valid_name ?(label = false) s =
    String.length s > 0
    && (if label then s.[0] <> ':' else true)
    && is_name_start s.[0]
    && (let ok = ref true in
        String.iter (fun c -> if not (is_name_char c) || (label && c = ':') then ok := false) s;
        !ok)

  let known_types =
    [ "counter"; "gauge"; "histogram"; "summary"; "unknown"; "info"; "stateset";
      "gaugehistogram" ]

  let valid_value s =
    match s with
    | "+Inf" | "-Inf" | "NaN" -> true
    | s -> ( match float_of_string_opt s with Some _ -> true | None -> false)

  (* One label pair [k="v"] starting at [i]; returns the index past it. *)
  let check_label line i =
    let len = String.length line in
    let j = ref i in
    while !j < len && is_name_char line.[!j] && line.[!j] <> ':' do j := !j + 1 done;
    if !j = i || not (valid_name ~label:true (String.sub line i (!j - i))) then None
    else if !j + 1 >= len || line.[!j] <> '=' || line.[!j + 1] <> '"' then None
    else begin
      let j = ref (!j + 2) in
      let bad = ref false in
      let closed = ref false in
      while (not !closed) && (not !bad) && !j < len do
        (match line.[!j] with
        | '\\' ->
          if !j + 1 >= len then bad := true
          else begin
            (match line.[!j + 1] with
            | '\\' | '"' | 'n' -> ()
            | _ -> bad := true);
            j := !j + 1
          end
        | '"' -> closed := true
        | _ -> ());
        j := !j + 1
      done;
      if !bad || not !closed then None else Some !j
    end

  let check_sample line =
    let len = String.length line in
    let i = ref 0 in
    while !i < len && is_name_char line.[!i] do i := !i + 1 done;
    if !i = 0 || not (valid_name (String.sub line 0 !i)) then Error "bad metric name"
    else begin
      let i =
        if !i < len && line.[!i] = '{' then begin
          let j = ref (!i + 1) in
          let bad = ref false in
          let stop = ref false in
          while (not !stop) && not !bad do
            if !j < len && line.[!j] = '}' then begin
              j := !j + 1;
              stop := true
            end
            else
              match check_label line !j with
              | None -> bad := true
              | Some k -> j := if k < len && line.[k] = ',' then k + 1 else k
          done;
          if !bad then -1 else !j
        end
        else !i
      in
      if i < 0 then Error "bad label set"
      else if i >= len || line.[i] <> ' ' then Error "missing value separator"
      else begin
        let rest = String.sub line (i + 1) (len - i - 1) in
        (* value [timestamp]: we only emit values, but tolerate a trailing
           timestamp field as the format allows. *)
        match String.split_on_char ' ' rest with
        | [ v ] -> if valid_value v then Ok () else Error "bad sample value"
        | [ v; ts ] ->
          if valid_value v && valid_value ts then Ok () else Error "bad sample value"
        | _ -> Error "bad sample line"
      end
    end

  let check_line line =
    match String.split_on_char ' ' line with
    | "#" :: "HELP" :: name :: _ :: _ ->
      if valid_name name then Ok () else Error "bad HELP name"
    | [ "#"; "TYPE"; name; kind ] ->
      if not (valid_name name) then Error "bad TYPE name"
      else if List.exists (String.equal kind) known_types then Ok ()
      else Error "unknown TYPE"
    | "#" :: _ -> Error "malformed comment line"
    | _ -> check_sample line

  let validate text =
    let lines = String.split_on_char '\n' text in
    (* to_channel-style output: every line newline-terminated, so the split
       ends with one empty trailer. *)
    let rec go n = function
      | [] -> Error "missing # EOF terminator"
      | [ "# EOF"; "" ] | [ "# EOF" ] -> Ok ()
      | "# EOF" :: _ -> Error (Printf.sprintf "line %d: content after # EOF" n)
      | line :: rest -> (
        match check_line line with
        | Ok () -> go (n + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" n e))
    in
    go 1 lines
end

let dump_openmetrics () =
  let helps = Hashtbl.create 64 in
  List.iter (fun (name, help, _) -> Hashtbl.replace helps name help) (sorted ());
  let help name = match Hashtbl.find_opt helps name with Some h -> h | None -> "" in
  Openmetrics.of_json ~help (dump_json ())

let pp_table ppf () =
  Format.fprintf ppf "%-36s %-10s %s@." "metric" "kind" "value";
  List.iter
    (fun (name, help, m) ->
      let kind, value =
        match m with
        | Counter c -> ("counter", string_of_int (Atomic.get c))
        | Gauge g -> ("gauge", string_of_int (Atomic.get g))
        | Probe r -> ("probe", string_of_int (!r ()))
        | Histogram h ->
          ( "histogram",
            let count = Atomic.get h.count in
            if count = 0 then "empty"
            else
              let sum = Atomic.get h.sum in
              Printf.sprintf "count %d  sum %d  min %d  max %d  mean %.1f" count sum
                (Atomic.get h.min_v) (Atomic.get h.max_v)
                (float_of_int sum /. float_of_int count) )
      in
      Format.fprintf ppf "%-36s %-10s %s%s@." name kind value
        (if help = "" then "" else "   (" ^ help ^ ")"))
    (sorted ())

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ (_, m) ->
          match m with
          | Counter c -> Atomic.set c 0
          | Gauge g -> Atomic.set g 0
          | Probe _ -> ()
          | Histogram h ->
            Array.iter (fun b -> Atomic.set b 0) h.buckets;
            Atomic.set h.count 0;
            Atomic.set h.sum 0;
            Atomic.set h.min_v max_int;
            Atomic.set h.max_v min_int)
        registry)
