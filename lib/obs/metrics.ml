type counter = { mutable c : int }
type gauge = { mutable g : int }

(* 1 + 63 buckets: index 0 for the value 0, index w for bit width w. *)
type histogram = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Probe of (unit -> int) ref
  | Histogram of histogram

let registry : (string, string * metric) Hashtbl.t = Hashtbl.create 64

let register name help make match_existing =
  match Hashtbl.find_opt registry name with
  | Some (_, existing) -> (
    match match_existing existing with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Metrics: %S already registered as another kind" name))
  | None ->
    let v, m = make () in
    Hashtbl.replace registry name (help, m);
    v

let counter ?(help = "") name =
  register name help
    (fun () ->
      let c = { c = 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let incr c = c.c <- c.c + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: negative amount";
  c.c <- c.c + n

let counter_value c = c.c

let gauge ?(help = "") name =
  register name help
    (fun () ->
      let g = { g = 0 } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let set g v = g.g <- v
let gauge_value g = g.g

let probe ?(help = "") name thunk =
  ignore
    (register name help
       (fun () -> ((), Probe (ref thunk)))
       (function
         | Probe r ->
           r := thunk;
           Some ()
         | _ -> None))

let histogram ?(help = "") name =
  register name help
    (fun () ->
      let h = { buckets = Array.make 64 0; count = 0; sum = 0; min_v = max_int; max_v = min_int } in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

let bucket_of v = Wb_support.Bitbuf.width_of v

let observe h v =
  let v = if v < 0 then 0 else v in
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v

let histogram_count h = h.count
let histogram_sum h = h.sum

let sorted () =
  List.sort
    (fun (a, _, _) (b, _, _) -> String.compare a b)
    (Hashtbl.fold (fun name (help, m) acc -> (name, help, m) :: acc) registry [])

let histogram_json h =
  let buckets =
    List.filter_map
      (fun w ->
        if h.buckets.(w) = 0 then None
        else
          (* upper bound (exclusive) of bucket w: 2^w, except bucket 0
             which holds only the value 0 (upper bound 1). *)
          Some (Json.List [ Json.Int (1 lsl w); Json.Int h.buckets.(w) ]))
      (List.init 64 Fun.id)
  in
  Json.Obj
    [ ("count", Json.Int h.count);
      ("sum", Json.Int h.sum);
      ("min", if h.count = 0 then Json.Null else Json.Int h.min_v);
      ("max", if h.count = 0 then Json.Null else Json.Int h.max_v);
      ("buckets", Json.List buckets) ]

let dump_json () =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (name, _help, m) ->
      match m with
      | Counter c -> counters := (name, Json.Int c.c) :: !counters
      | Gauge g -> gauges := (name, Json.Int g.g) :: !gauges
      | Probe r -> gauges := (name, Json.Int (!r ())) :: !gauges
      | Histogram h -> histograms := (name, histogram_json h) :: !histograms)
    (sorted ());
  Json.Obj
    [ ("counters", Json.Obj (List.rev !counters));
      ("gauges", Json.Obj (List.rev !gauges));
      ("histograms", Json.Obj (List.rev !histograms)) ]

let pp_table ppf () =
  Format.fprintf ppf "%-36s %-10s %s@." "metric" "kind" "value";
  List.iter
    (fun (name, help, m) ->
      let kind, value =
        match m with
        | Counter c -> ("counter", string_of_int c.c)
        | Gauge g -> ("gauge", string_of_int g.g)
        | Probe r -> ("probe", string_of_int (!r ()))
        | Histogram h ->
          ( "histogram",
            if h.count = 0 then "empty"
            else
              Printf.sprintf "count %d  sum %d  min %d  max %d  mean %.1f" h.count h.sum h.min_v
                h.max_v
                (float_of_int h.sum /. float_of_int h.count) )
      in
      Format.fprintf ppf "%-36s %-10s %s%s@." name kind value
        (if help = "" then "" else "   (" ^ help ^ ")"))
    (sorted ())

let reset () =
  Hashtbl.iter
    (fun _ (_, m) ->
      match m with
      | Counter c -> c.c <- 0
      | Gauge g -> g.g <- 0
      | Probe _ -> ()
      | Histogram h ->
        Array.fill h.buckets 0 (Array.length h.buckets) 0;
        h.count <- 0;
        h.sum <- 0;
        h.min_v <- max_int;
        h.max_v <- min_int)
    registry
