(* Domain-safe: every value cell is an [Atomic.t] (counters, gauges,
   histogram buckets and moments), and the name->metric table is guarded by
   a mutex, so parallel exploration workers ([Wb_model.Engine.explore_par])
   can instrument concurrently without corrupting the registry.  Histogram
   snapshots read one atomic at a time, so a dump taken mid-update may be
   momentarily inconsistent between [count] and [sum] — fine for telemetry,
   which is the only reader. *)

type counter = int Atomic.t
type gauge = int Atomic.t

(* 1 + 63 buckets: index 0 for the value 0, index w for bit width w. *)
type histogram = {
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum : int Atomic.t;
  min_v : int Atomic.t;
  max_v : int Atomic.t;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Probe of (unit -> int) ref
  | Histogram of histogram

let registry : (string, string * metric) Hashtbl.t = Hashtbl.create 64

let registry_lock = Mutex.create ()

let locked f = Wb_support.Sync.with_lock registry_lock f

let register name help make match_existing =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (_, existing) -> (
        match match_existing existing with
        | Some v -> v
        | None ->
          invalid_arg (Printf.sprintf "Metrics: %S already registered as another kind" name))
      | None ->
        let v, m = make () in
        Hashtbl.replace registry name (help, m);
        v)

let counter ?(help = "") name =
  register name help
    (fun () ->
      let c = Atomic.make 0 in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let incr c = Atomic.incr c

let add c n =
  if n < 0 then invalid_arg "Metrics.add: negative amount";
  ignore (Atomic.fetch_and_add c n)

let counter_value c = Atomic.get c

let gauge ?(help = "") name =
  register name help
    (fun () ->
      let g = Atomic.make 0 in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let set g v = Atomic.set g v
let gauge_value g = Atomic.get g

let probe ?(help = "") name thunk =
  ignore
    (register name help
       (fun () -> ((), Probe (ref thunk)))
       (function
         | Probe r ->
           r := thunk;
           Some ()
         | _ -> None))

let histogram ?(help = "") name =
  register name help
    (fun () ->
      let h =
        { buckets = Array.init 64 (fun _ -> Atomic.make 0);
          count = Atomic.make 0;
          sum = Atomic.make 0;
          min_v = Atomic.make max_int;
          max_v = Atomic.make min_int }
      in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

let bucket_of v = Wb_support.Bitbuf.width_of v

(* Lock-free monotone update: retry the CAS until our candidate no longer
   improves on the published value. *)
let rec fold_extremum better cell v =
  let cur = Atomic.get cell in
  if better v cur && not (Atomic.compare_and_set cell cur v) then fold_extremum better cell v

let observe h v =
  let v = if v < 0 then 0 else v in
  Atomic.incr h.buckets.(bucket_of v);
  Atomic.incr h.count;
  ignore (Atomic.fetch_and_add h.sum v);
  fold_extremum ( < ) h.min_v v;
  fold_extremum ( > ) h.max_v v

let histogram_count h = Atomic.get h.count
let histogram_sum h = Atomic.get h.sum

(* Percentile estimate from the log buckets: walk cumulative counts to the
   bucket holding the rank and answer its inclusive upper bound (2^w - 1),
   clamped by the observed maximum.  Exact for bucket 0 (the value 0); at
   most one bit-width coarse elsewhere, which is all a telemetry histogram
   promises. *)
let percentile h p =
  if not (p >= 0. && p <= 100.) then invalid_arg "Metrics.percentile: p outside [0,100]";
  let count = Atomic.get h.count in
  if count = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int count))) in
    let max_v = Atomic.get h.max_v in
    let rec go w acc =
      if w >= 64 then max_v
      else
        let acc = acc + Atomic.get h.buckets.(w) in
        if acc >= rank then (if w = 0 then 0 else min max_v ((1 lsl w) - 1)) else go (w + 1) acc
    in
    go 0 0
  end

let sorted () =
  locked (fun () ->
      List.sort
        (fun (a, _, _) (b, _, _) -> String.compare a b)
        (Hashtbl.fold (fun name (help, m) acc -> (name, help, m) :: acc) registry []))

let histogram_json h =
  let count = Atomic.get h.count in
  let buckets =
    List.filter_map
      (fun w ->
        let c = Atomic.get h.buckets.(w) in
        if c = 0 then None
        else
          (* upper bound (exclusive) of bucket w: 2^w, except bucket 0
             which holds only the value 0 (upper bound 1). *)
          Some (Json.List [ Json.Int (1 lsl w); Json.Int c ]))
      (List.init 64 Fun.id)
  in
  Json.Obj
    [ ("count", Json.Int count);
      ("sum", Json.Int (Atomic.get h.sum));
      ("min", if count = 0 then Json.Null else Json.Int (Atomic.get h.min_v));
      ("max", if count = 0 then Json.Null else Json.Int (Atomic.get h.max_v));
      ("p50", if count = 0 then Json.Null else Json.Int (percentile h 50.));
      ("p95", if count = 0 then Json.Null else Json.Int (percentile h 95.));
      ("p99", if count = 0 then Json.Null else Json.Int (percentile h 99.));
      ("buckets", Json.List buckets) ]

let dump_json () =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (name, _help, m) ->
      match m with
      | Counter c -> counters := (name, Json.Int (Atomic.get c)) :: !counters
      | Gauge g -> gauges := (name, Json.Int (Atomic.get g)) :: !gauges
      | Probe r -> gauges := (name, Json.Int (!r ())) :: !gauges
      | Histogram h -> histograms := (name, histogram_json h) :: !histograms)
    (sorted ());
  Json.Obj
    [ ("counters", Json.Obj (List.rev !counters));
      ("gauges", Json.Obj (List.rev !gauges));
      ("histograms", Json.Obj (List.rev !histograms)) ]

let pp_table ppf () =
  Format.fprintf ppf "%-36s %-10s %s@." "metric" "kind" "value";
  List.iter
    (fun (name, help, m) ->
      let kind, value =
        match m with
        | Counter c -> ("counter", string_of_int (Atomic.get c))
        | Gauge g -> ("gauge", string_of_int (Atomic.get g))
        | Probe r -> ("probe", string_of_int (!r ()))
        | Histogram h ->
          ( "histogram",
            let count = Atomic.get h.count in
            if count = 0 then "empty"
            else
              let sum = Atomic.get h.sum in
              Printf.sprintf "count %d  sum %d  min %d  max %d  mean %.1f" count sum
                (Atomic.get h.min_v) (Atomic.get h.max_v)
                (float_of_int sum /. float_of_int count) )
      in
      Format.fprintf ppf "%-36s %-10s %s%s@." name kind value
        (if help = "" then "" else "   (" ^ help ^ ")"))
    (sorted ())

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ (_, m) ->
          match m with
          | Counter c -> Atomic.set c 0
          | Gauge g -> Atomic.set g 0
          | Probe _ -> ()
          | Histogram h ->
            Array.iter (fun b -> Atomic.set b 0) h.buckets;
            Atomic.set h.count 0;
            Atomic.set h.sum 0;
            Atomic.set h.min_v max_int;
            Atomic.set h.max_v min_int)
        registry)
