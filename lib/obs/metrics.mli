(** Process-global metrics registry: named counters, gauges, probes and
    log-bucketed histograms, built on the stdlib only.

    Registration is explicit and idempotent — [counter "engine.writes"]
    returns the same counter everywhere, so instrumentation sites register
    at module initialisation and pay one atomic update per observation on
    the hot path.  Re-registering a name as a {e different} kind is a
    programming error.

    {b Domain safety.}  Every value cell is an [Atomic.t] and the registry
    table is mutex-guarded, so concurrent domains — the
    {!Wb_model.Engine} [explore_par] workers in particular — may increment,
    observe and even register without corrupting anything.  Histogram
    observations are per-field atomic: a {!dump_json} racing an [observe]
    may see [count] and [sum] one update apart, which is acceptable for
    telemetry (the only reader).

    Because the registry is process-global, tests that assert exact values
    should call {!reset} first (it zeroes values but keeps registrations)
    or compare deltas. *)

type counter
type gauge
type histogram

val counter : ?help:string -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
(** @raise Invalid_argument on negative amounts — counters only go up. *)

val counter_value : counter -> int

val gauge : ?help:string -> string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int

val probe : ?help:string -> string -> (unit -> int) -> unit
(** A gauge whose value is polled at dump time — for instruments that keep
    their own counter (for layering reasons), e.g. {!Wb_support.Prng}
    draws.  Registering an existing probe name replaces the thunk. *)

val histogram : ?help:string -> string -> histogram
(** Log-bucketed: an observation [v >= 0] lands in the bucket of its bit
    width, i.e. bucket [w] covers [2^(w-1) <= v < 2^w] (bucket 0 holds
    exactly 0).  Negative observations are clamped to 0. *)

val observe : histogram -> int -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> int

val percentile_opt : histogram -> float -> int option
(** [percentile_opt h p] estimates the [p]-th percentile
    ([0. <= p <= 100.]) from the log buckets: the inclusive upper bound of
    the bucket holding that rank, clamped by the observed maximum — exact
    for 0, at most one bit width coarse otherwise.  [None] on an empty
    histogram, matching the [null] that {!dump_json} emits there.
    @raise Invalid_argument when [p] is outside [\[0, 100\]]. *)

val percentile : histogram -> float -> int
(** The 0-defaulting wrapper around {!percentile_opt}, for callers feeding
    arithmetic.  Display code should use {!percentile_opt} and render the
    empty case explicitly (e.g. [wbctl top] prints ["-"]). *)

val dump_json : unit -> Json.t
(** Snapshot of every registered metric, sorted by name:
    [{"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
    min, max, p50, p95, p99, buckets: [[upper_exclusive, count], ...]}}}].
    Probes are polled and appear among the gauges. *)

module Openmetrics : sig
  (** Rendering of a {!dump_json} envelope in the Prometheus/OpenMetrics
      text exposition format.  Pure: golden tests feed synthetic envelopes
      without touching the process-global registry. *)

  val sanitize_name : string -> string
  (** Map an arbitrary registry name onto the exposition name grammar
      [[a-zA-Z_:][a-zA-Z0-9_:]*]: illegal characters become ['_'] and a
      leading digit gains a ['_'] prefix (so ["engine.runs"] renders as
      ["engine_runs"]). *)

  val escape_help : string -> string
  (** HELP-line escaping: [\\] and newline. *)

  val escape_label : string -> string
  (** Label-value escaping: backslash, double quote and newline. *)

  val of_json : ?help:(string -> string) -> Json.t -> string
  (** Render a {!dump_json} envelope.  Counters become [<name>_total],
      gauges bare samples, histograms cumulative [_bucket{le="..."}] series
      (inclusive bounds derived from the envelope's exclusive ones) plus
      [_sum]/[_count] and, when populated, a [<name>_quantile] gauge family
      carrying p50/p95/p99.  [help name] supplies the HELP text for the
      {e original} (pre-sanitization) name; [""] (the default) omits the
      HELP line.  The output always ends with [# EOF]. *)

  val validate : string -> (unit, string) result
  (** Check a text exposition against the grammar this module emits
      (comment lines, name/label/value syntax, [# EOF] terminator).
      [Error] carries a line-numbered diagnostic.  Used by the
      [@check-prof] validator and the qcheck grammar property. *)
end

val dump_openmetrics : unit -> string
(** {!Openmetrics.of_json} over {!dump_json}, with HELP lines drawn from
    the registered help strings — the payload served to Prometheus scrapes
    via the referee's METRICS opcode and [wbctl metrics]. *)

val pp_table : Format.formatter -> unit -> unit
(** Human-readable table of the same snapshot. *)

val reset : unit -> unit
(** Zero every counter, gauge and histogram; registrations (and probe
    thunks) survive. *)
