(** The communication-cost observatory: a per-round bit ledger the
    execution kernel feeds, and closed-form theorem certificates protocols
    declare.

    {b Zero cost when off.}  Like {!Prof}, the ledger is opt-in ({!enable},
    or [WB_COST=1] in the environment): a never-enabled process registers no
    [cost.*] series and pays one atomic load per run plus one [match] per
    write.  When enabled, every board append feeds the process-global
    [cost.*] counters/gauge/histograms and the kernel emits one
    [Event.Cost_round] per round with writes.

    {b Certificates.}  A {!certificate} states a protocol's paper bound as
    an executable envelope — max bits any single message may cost at size
    [n], with explicit constants — plus, where the paper gives one, the
    matching Lemma 3 information floor.  [wbctl cost] and the [@check-cost]
    sweep compare measured message sizes against both. *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

type ledger
(** Per-run accumulator.  Allocate one per execution ({!create}); feed it
    from the single write path; flush at round boundaries. *)

val create : unit -> ledger option
(** [None] unless the ledger is enabled — callers store the option and the
    disabled path stays allocation-free. *)

val record : ledger -> round:int -> bits:int -> board_bits:int -> unit
(** Account one board append of [bits] in [round]; [board_bits] is the
    board total after the append. *)

type round_summary = { round : int; writes : int; bits : int }

val flush_round : ledger -> round_summary option
(** Close the open round: observe the per-round histograms and return the
    summary, or [None] when the round saw no writes.  The caller turns the
    summary into the [cost.round] trace event. *)

val discard_round : ledger -> unit
(** Drop the open round without observing it — what a backtracking restore
    calls, since a rewound round would be misattributed. *)

val total_bits : ledger -> int
(** Cumulative bits this ledger accounted (all rounds, flushed or not). *)

val total_writes : ledger -> int

(** {1 Theorem-bound certificates} *)

type certificate = {
  form : string;
      (** The closed form, human-readable with explicit constants — what
          [wbctl protocols --costs] prints. *)
  envelope : n:int -> int;
      (** Max bits any single message may cost on an [n]-node instance.
          Deliberately duplicated from the protocol's [message_bound]: a
          refactor that inflates the encoder breaks the certificate even if
          it also bumps the cap. *)
  floor : (n:int -> int) option;
      (** The Lemma 3 information floor (bits per message), where the paper
          gives one ({!Wb_reductions.Counting} has the class counts; the
          registry duplicates the arithmetic to stay cycle-free and the
          tests cross-check the two). *)
  floor_class : string option;
      (** Name of the counting class the floor is computed from, e.g.
          ["labelled trees"]. *)
}

type verdict = {
  n : int;
  measured : int;  (** max message bits observed on the instance. *)
  envelope_bits : int;
  floor_bits : int option;
  envelope_ok : bool;  (** [measured <= envelope_bits]. *)
  floor_ok : bool;  (** [measured >= floor] (vacuous without a floor). *)
}

val check : certificate -> n:int -> measured:int -> verdict
val verdict_ok : verdict -> bool
