type t = { emit : Event.t -> unit; close : unit -> unit; mutable closed : bool }

let emit t ev = if not t.closed then t.emit ev

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.close ()
  end

let of_fn ?(close = fun () -> ()) emit = { emit; close; closed = false }

let null = of_fn (fun _ -> ())

let tee sinks =
  of_fn
    ~close:(fun () -> List.iter close sinks)
    (fun ev -> List.iter (fun s -> emit s ev) sinks)

let collector () =
  let events = ref [] in
  let sink = of_fn (fun ev -> events := ev :: !events) in
  (sink, fun () -> List.rev !events)

module Ring = struct
  type buffer = {
    slots : Event.t option array;
    mutable next : int;  (* total events ever emitted; slot = next mod capacity *)
    mutable dropped : int;
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Trace.Ring.create: capacity must be positive";
    { slots = Array.make capacity None; next = 0; dropped = 0 }

  let capacity b = Array.length b.slots

  let push b ev =
    if b.next >= capacity b then b.dropped <- b.dropped + 1;
    b.slots.(b.next mod capacity b) <- Some ev;
    b.next <- b.next + 1

  let sink b = of_fn (push b)

  let length b = min b.next (capacity b)

  let dropped b = b.dropped

  let to_list b =
    let cap = capacity b in
    let len = length b in
    let first = b.next - len in
    List.init len (fun i ->
        match b.slots.((first + i) mod cap) with
        | Some ev -> ev
        | None -> assert false)

  let clear b =
    Array.fill b.slots 0 (capacity b) None;
    b.next <- 0;
    b.dropped <- 0
end

let jsonl_writer oc =
  of_fn
    ~close:(fun () -> flush oc)
    (fun ev ->
      Json.to_channel oc (Event.to_json ev);
      output_char oc '\n')

let sample ~every inner =
  if every <= 0 then invalid_arg "Trace.sample: every must be positive";
  let window = ref [] in
  let index = ref 0 in
  of_fn
    ~close:(fun () ->
      window := [];
      close inner)
    (fun ev ->
      window := ev :: !window;
      match ev with
      | Event.Run_end _ ->
        if !index mod every = 0 then List.iter (emit inner) (List.rev !window);
        incr index;
        window := []
      | _ -> ())
