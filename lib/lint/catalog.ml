open Types

(* Tier C, pass 1: per-compilation-unit extraction for the domain-safety
   analysis.  From each .cmt this collects (a) the unit's top-level value
   bindings with a structural *mutability skeleton* of their type, (b) a
   table of the unit's type declarations (so abstract types can be judged
   from their defining .ml even when every .mli seals them), and (c)
   lock-wrapper combinators — [let locked f = with_lock l f] — so a
   critical section entered through a wrapper still counts as locked.

   Everything env-dependent happens here, while the .cmt's load path is
   active; the skeletons and names that come out are plain data, so the
   later passes (Escape, Locks) never need the compiler environment. *)

(* ---- canonical names ---------------------------------------------------- *)

(* Dune's wrapped-library mangling turns [Wb_obs.Metrics] into the unit
   [Wb_obs__Metrics]; user code meanwhile writes [Obs.Metrics.incr] through
   local aliases.  Canonical form: '.'-separated components with every
   mangled module component split at "__", so all spellings of one global
   converge on the same key. *)
let split_dunder s =
  let n = String.length s in
  let rec go start i acc =
    if i + 1 >= n then List.rev (String.sub s start (n - start) :: acc)
    else if s.[i] = '_' && s.[i + 1] = '_' then
      go (i + 2) (i + 2) (String.sub s start (i - start) :: acc)
    else go start (i + 1) acc
  in
  List.filter (fun c -> c <> "") (go 0 0 [])

let canon_component c =
  if c <> "" && c.[0] >= 'A' && c.[0] <= 'Z' then split_dunder c else [ c ]

let canon comps = List.concat_map canon_component comps

let canon_string comps = String.concat "." comps

let rec path_components (p : Path.t) =
  match p with
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (base, s) -> path_components base @ [ s ]
  | Path.Papply (f, _) -> path_components f
  | Path.Pextra_ty (base, _) -> path_components base

let canon_path p = canon (path_components p)

let rec ends_with ~suffix comps =
  let n = List.length comps and k = List.length suffix in
  if k > n then false
  else if n = k then List.for_all2 String.equal suffix comps
  else match comps with [] -> false | _ :: tl -> ends_with ~suffix tl

(* ---- mutability skeletons ----------------------------------------------- *)

(* The classification a value's type reduces to:
   - [Safe]: a synchronization point (Atomic, Mutex, Condition, Semaphore)
     or domain-local by construction (Domain.DLS.key).  Terminal: what an
     Atomic publishes is trusted.
   - [Mut reason]: shared mutable state — a race unless every access is
     guarded.
   - [Imm]: immutable structure (scalars, arrows, enum variants, ...).
   [Arr]/[Box]/[Named] defer judgement: an array of Atomics is the packed
   struct-of-arrays idiom (Safe); an abstract type is judged later from the
   whole-program declaration table built across every scanned unit. *)
type sk =
  | Safe
  | Imm
  | Mut of string
  | Arr of sk
  | Box of sk list
  | Named of string * sk list

let safe_suffixes =
  [ [ "Atomic"; "t" ]; [ "Mutex"; "t" ]; [ "Condition"; "t" ];
    [ "Semaphore"; "Counting"; "t" ]; [ "Semaphore"; "Binary"; "t" ];
    [ "DLS"; "key" ] ]

let mutable_suffixes =
  [ [ "ref" ]; [ "Hashtbl"; "t" ]; [ "Queue"; "t" ]; [ "Stack"; "t" ];
    [ "Buffer"; "t" ]; [ "bytes" ]; [ "lazy_t" ]; [ "Lazy"; "t" ] ]

let scalar_names =
  [ "int"; "char"; "bool"; "unit"; "string"; "float"; "int32"; "int64";
    "nativeint"; "exn"; "floatarray" ]

let box_suffixes = [ [ "option" ]; [ "list" ]; [ "result" ]; [ "Either"; "t" ] ]

let expand env ty = try Ctype.expand_head env ty with _ -> ty

let rec sk_of_type env depth ty =
  if depth > 8 then Imm
  else
    match get_desc (expand env ty) with
    | Tarrow _ | Tvar _ | Tunivar _ | Tvariant _ -> Imm
    | Ttuple tys -> Box (List.map (sk_of_type env (depth + 1)) tys)
    | Tpoly (t, _) -> sk_of_type env (depth + 1) t
    | Tconstr (p, args, _) -> sk_of_constr env depth p args
    | _ -> Imm

and sk_of_constr env depth p args =
  let comps = canon_path p in
  let name = canon_string comps in
  let last = match List.rev comps with c :: _ -> c | [] -> "" in
  let sub = sk_of_type env (depth + 1) in
  if List.exists (fun s -> ends_with ~suffix:s comps) safe_suffixes then Safe
  else if String.equal last "array" then
    Arr (match args with a :: _ -> sub a | [] -> Imm)
  else if List.exists (fun s -> ends_with ~suffix:s comps) mutable_suffixes then
    Mut name
  else if List.mem last scalar_names then Imm
  else if List.exists (fun s -> ends_with ~suffix:s comps) box_suffixes then
    Box (List.map sub args)
  else
    match Env.find_type p env with
    | decl -> sk_of_decl env depth ~name ~args decl
    | exception Not_found -> Named (name, List.map sub args)

(* A declaration judged structurally: a [mutable] field (or an inline-record
   constructor with one) is shared mutable state outright; otherwise the
   declaration is an immutable shell over its field/argument types, with the
   use-site type arguments appended so ['a cell] instantiated at a mutable
   ['a] stays suspect. *)
and sk_of_decl env depth ~name ~args decl =
  let sub = sk_of_type env (depth + 1) in
  let arg_sks = List.map sub args in
  match decl.type_kind with
  | Type_record (lds, _) ->
    if List.exists (fun ld -> ld.ld_mutable = Mutable) lds then
      Mut (name ^ " (mutable record field)")
    else Box (List.map (fun ld -> sub ld.ld_type) lds @ arg_sks)
  | Type_variant (cds, _) ->
    if
      List.for_all
        (fun cd -> match cd.cd_args with Cstr_tuple [] -> true | _ -> false)
        cds
    then Imm
    else
      let per_constructor =
        List.concat_map
          (fun cd ->
            match cd.cd_args with
            | Cstr_tuple tys -> List.map sub tys
            | Cstr_record lds ->
              if List.exists (fun ld -> ld.ld_mutable = Mutable) lds then
                [ Mut (name ^ " (mutable inline-record field)") ]
              else List.map (fun ld -> sub ld.ld_type) lds)
          cds
      in
      Box (per_constructor @ arg_sks)
  | Type_open -> Imm
  | _ -> (
    match decl.type_manifest with
    | Some m -> sk_of_type env (depth + 1) m
    | None -> Named (name, arg_sks))

(* ---- per-unit extraction ------------------------------------------------ *)

(* Constant-shape initialisers.  [Lit] is a pure literal ([[||]], [{ sign =
   0; mag = ... }] over literals); [LitDeps] is a literal shell over
   references to other top-level bindings (the deps), constant iff every
   dep's entry is; anything else is [Dyn].  Locks runs the fixpoint, so
   [Zint.zero = { sign = 0; mag = Nat.zero }] inherits constness from
   [Nat.zero = [||]] across units. *)
type init = Lit | LitDeps of string list | Dyn

type entry = {
  name : string;  (** canonical, e.g. ["Wb_obs.Metrics.registry"]. *)
  loc : Location.t;
  sk : sk;
  init : init;
      (** a [Lit]-resolving initialiser makes the entry a de-facto constant
          the analysis treats as immutable (Nat.zero, Zint.one, ...). *)
  allow : Allow.handle option;
      (** a [domain-safety] suppression on the binding exempts the entry. *)
}

type unit_info = {
  unit_path : string list;  (** canonical components of the unit name. *)
  source : string;  (** the matched source file, for findings. *)
  entries : entry list;
  types : (string * sk) list;  (** declaration table contributions. *)
  toplevel_count : int;  (** module-level value bindings seen (stats). *)
}

let full_env e = try Envaux.env_of_only_summary e with _ -> e

(* [let x : ty = e] typechecks to [Tpat_alias] over [Tpat_any] (the
   constraint lives in [pat_extra]), so both shapes name a binding. *)
let binding_name (vb : Typedtree.value_binding) =
  match vb.vb_pat.pat_desc with
  | Tpat_var (_, name) | Tpat_alias (_, _, name) -> Some name.txt
  | _ -> None

let combine_init shapes =
  List.fold_left
    (fun acc s ->
      match (acc, s) with
      | Dyn, _ | _, Dyn -> Dyn
      | Lit, x | x, Lit -> x
      | LitDeps a, LitDeps b -> LitDeps (a @ b))
    Lit shapes

let rec init_shape (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_constant _ -> Lit
  | Texp_ident (p, _, _) -> LitDeps [ canon_string (canon_path p) ]
  | Texp_construct (_, _, args) -> combine_init (List.map init_shape args)
  | Texp_array elts -> combine_init (List.map init_shape elts)
  | Texp_tuple elts -> combine_init (List.map init_shape elts)
  | Texp_record { fields; extended_expression = None; _ } ->
    combine_init
      (Array.to_list fields
      |> List.map (fun (_, def) ->
             match def with
             | Typedtree.Overridden (_, e) -> init_shape e
             | Typedtree.Kept _ -> Dyn))
  | _ -> Dyn

let scan ~ctx ~unit_path ~source (str : Typedtree.structure) =
  let entries = ref [] in
  let types = ref [] in
  let toplevel = ref 0 in
  let rec item path (it : Typedtree.structure_item) =
    match it.str_desc with
    | Tstr_value (_, vbs) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          match binding_name vb with
          | None -> ()
          | Some name ->
            incr toplevel;
            let env = full_env vb.vb_pat.pat_env in
            let sk = sk_of_type env 0 vb.vb_pat.pat_type in
            let allow = ref None in
            Allow.with_attrs ctx vb.vb_attributes (fun () ->
                allow := Allow.lookup ctx ~rule:Rules.domain_safety);
            entries :=
              { name = canon_string (path @ [ name ]);
                loc = vb.vb_loc;
                sk;
                init = init_shape vb.vb_expr;
                allow = !allow }
              :: !entries)
        vbs
    | Tstr_type (_, decls) ->
      List.iter
        (fun (d : Typedtree.type_declaration) ->
          let name = canon_string (path @ [ Ident.name d.typ_id ]) in
          let env = full_env str.str_final_env in
          types := (name, sk_of_decl env 0 ~name ~args:[] d.typ_type) :: !types)
        decls
    | Tstr_module mb -> module_binding path mb
    | Tstr_recmodule mbs -> List.iter (module_binding path) mbs
    | _ -> ()
  and module_binding path (mb : Typedtree.module_binding) =
    match mb.mb_id with
    | None -> ()
    | Some id -> module_expr (path @ [ Ident.name id ]) mb.mb_expr
  and module_expr path (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure s -> List.iter (item path) s.str_items
    | Tmod_functor (_, body) -> module_expr path body
    | Tmod_constraint (inner, _, _, _) -> module_expr path inner
    | _ -> ()
  in
  List.iter (item unit_path) str.str_items;
  { unit_path;
    source;
    entries = List.rev !entries;
    types = List.rev !types;
    toplevel_count = !toplevel }

(* ---- classification against the whole-program declaration table --------- *)

type cls = Csafe | Cimm | Cmut of string

let classify ~types sk =
  let rec go seen sk =
    match sk with
    | Safe -> Csafe
    | Imm -> Cimm
    | Mut r -> Cmut r
    | Arr e -> (
      (* an array of synchronization cells is the packed atomic idiom; any
         other array is a shared mutable buffer. *)
      match go seen e with Csafe -> Csafe | _ -> Cmut "array")
    | Box l -> box seen l
    | Named (n, args) -> (
      let own =
        if List.mem n seen then Cimm
        else
          match Hashtbl.find_opt types n with
          | Some sk' -> go (n :: seen) sk'
          | None -> (
            (* abstract at the use site and spelled through an alias:
               match the declaration table by suffix, uniquely. *)
            let comps = String.split_on_char '.' n in
            match
              Hashtbl.fold
                (fun key sk' acc ->
                  if ends_with ~suffix:comps (String.split_on_char '.' key) then
                    (key, sk') :: acc
                  else acc)
                types []
            with
            | [ (key, sk') ] -> go (key :: seen) sk'
            | _ -> Cimm)
      in
      match own with
      | Cmut r -> Cmut r
      | Csafe -> Csafe
      | Cimm -> box seen args)
  and box seen l =
    let rec first = function
      | [] -> Cimm
      | sk :: tl -> ( match go seen sk with Cmut r -> Cmut r | _ -> first tl)
    in
    first l
  in
  go [] sk
