(** One lint finding: a rule violated at a source location.

    Findings are data, not text — the CLI renders them as a human table or
    as JSON ({!to_json}), and the tests compare them structurally, so both
    output formats are projections of the same list and cannot disagree. *)

type t = {
  rule : string;  (** rule identifier, e.g. ["determinism"]. *)
  kind : string;
      (** sub-kind within the rule (Tier C: ["escape"],
          ["lockset-inconsistency"], ["unguarded-toplevel"]); [""] for
          rules without kinds. *)
  file : string;  (** path as scanned, relative to the scan root. *)
  line : int;  (** 1-based. *)
  col : int;  (** 0-based, matching compiler diagnostics. *)
  message : string;
}

val make : rule:string -> ?kind:string -> loc:Location.t -> string -> t
(** Position is taken from [loc.loc_start]; [kind] defaults to [""]. *)

val compare : t -> t -> int
(** Order by file, line, column, rule, message. *)

val to_string : t -> string
(** [file:line:col: [rule] message] — one line, compiler-style. *)

val to_json : t -> Wb_obs.Json.t

val of_json : Wb_obs.Json.t -> t option
(** Inverse of {!to_json}; [None] on shape mismatch (used by the tests to
    check that the two output formats agree). *)
