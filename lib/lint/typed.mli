(** Tier B: the {!Rules.poly_compare} rule, decided on the Typedtree.

    Works from the [.cmt] files dune already emits, so a flagged [=] is a
    real polymorphic comparison at a real inferred type — not a syntactic
    guess.  Flagged identifiers: [Stdlib.(=)]/[(<>)], [compare], [min],
    [max], the key-hashing [Hashtbl] operations, and the [List]
    membership/assoc family — whenever the element (first-argument) type
    is not comparison-safe.

    Comparison-safe types: the built-in scalars ([int], [char], [bool],
    [string], [bytes], [float], boxed ints, [unit]), enum-like variants
    whose constructors are all constant (they compare like ints), and
    [option]/[list]/[array]/[ref]/[result]/[lazy_t]/tuples of safe types.
    Type variables are left alone: a genuinely polymorphic context cannot
    be judged.  Everything else — records, payload-carrying variants,
    arrows, abstract types like [Nat.t] — is a finding. *)

type cmt = {
  source : string option;
      (** [cmt_sourcefile], relative to the dune build root. *)
  path : string;  (** path the [.cmt] was read from. *)
  infos : Cmt_format.cmt_infos;
}

val read : string -> (cmt, string) result
(** Load one [.cmt]; [Error] carries a human-readable reason (corrupt
    file, wrong compiler magic, ...). *)

val init_load_path : ?load_root:string -> cmt -> unit
(** Initialise the compiler load path from the [.cmt]'s recorded one and
    reset the env cache, so environments can be rebuilt and aliases
    expanded.  Tier C's {!Catalog.scan} needs this active too, which is
    why it is exposed separately from {!lint}. *)

val structure_of : cmt -> Typedtree.structure option
(** The retained implementation, if this is an implementation [.cmt]. *)

val lint_structure : ctx:Allow.ctx -> Typedtree.structure -> Finding.t list
(** The poly-compare walk alone; assumes {!init_load_path} has run. *)

val lint : ?load_root:string -> ctx:Allow.ctx -> cmt -> Finding.t list
(** Walk the implementation (non-implementation [.cmt]s yield []).
    Initialises the compiler load path from the [.cmt]'s recorded one so
    environments can be rebuilt and type aliases expanded; relative
    entries (dune records them against the build root) are anchored at
    [load_root] (default ["."], i.e. assume we run from the build root). *)

val lint_cmt_file : ?load_root:string -> string -> (Finding.t list, string) result
(** Convenience for tests: {!read} + {!lint} with a fresh context. *)
