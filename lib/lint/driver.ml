module J = Wb_obs.Json

type report = { findings : Finding.t list; files : string list; typed : string list }

(* ---- file discovery ----------------------------------------------------- *)

let source_skip name =
  String.equal name "" || name.[0] = '.' || name.[0] = '_'

let rec walk ~skip acc path =
  match (Unix.stat path).Unix.st_kind with
  | Unix.S_DIR ->
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if skip entry then acc else walk ~skip acc (Filename.concat path entry))
         acc
  | Unix.S_REG -> path :: acc
  | _ | (exception Unix.Unix_error _) -> acc

let discover ~skip roots =
  List.fold_left (walk ~skip) [] roots |> List.sort String.compare

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Normalised relative path: strip leading "./", collapse separators. *)
let norm p = String.concat "/" (Rules.components p)

(* ---- the run ------------------------------------------------------------ *)

let run ?build_dir ~roots () =
  let all = discover ~skip:source_skip roots in
  let mls = List.filter (fun f -> Filename.check_suffix f ".ml" && not (Filename.check_suffix f ".pp.ml")) all in
  let contexts : (string, Allow.ctx) Hashtbl.t = Hashtbl.create 64 in
  let ctx_of file =
    match Hashtbl.find_opt contexts (norm file) with
    | Some c -> c
    | None ->
      let c = Allow.create () in
      Hashtbl.add contexts (norm file) c;
      c
  in
  (* Tier A over every source. *)
  let syntactic =
    List.concat_map
      (fun file ->
        let ctx = ctx_of file in
        match read_file file with
        | src -> Syntactic.lint_source ~path:file ~ctx src
        | exception Sys_error e ->
          [ Finding.make ~rule:Rules.parse_error ~loc:(Location.in_file file)
              (Printf.sprintf "unreadable: %s" e) ])
      mls
  in
  (* Interface coverage: every .ml under a lib directory has a .mli. *)
  let interface =
    List.filter_map
      (fun file ->
        if Rules.needs_interface file && not (Sys.file_exists (Filename.remove_extension file ^ ".mli"))
        then
          Some
            (Finding.make ~rule:Rules.interface_coverage ~loc:(Location.in_file file)
               "no matching .mli: every module under lib/ seals its surface with \
                an interface")
        else None)
      mls
  in
  (* Tier B: pair .cmt files with the scanned sources. *)
  let typed_files = ref [] in
  let typed =
    match build_dir with
    | None -> []
    | Some dir ->
      let wanted = Hashtbl.create 64 in
      List.iter (fun f -> Hashtbl.replace wanted (norm f) f) mls;
      (* dune keeps .cmt files inside dot-directories (.objs); skip nothing. *)
      discover ~skip:(fun _ -> false) [ dir ]
      |> List.filter (fun f -> Filename.check_suffix f ".cmt")
      |> List.concat_map (fun cmt_path ->
             match Typed.read cmt_path with
             | Error _ -> []
             | Ok cmt -> (
               match Option.map norm cmt.Typed.source with
               | Some src when Hashtbl.mem wanted src ->
                 typed_files := src :: !typed_files;
                 Typed.lint ~load_root:dir ~ctx:(ctx_of src) cmt
                 |> List.map (fun (f : Finding.t) -> { f with file = src })
               | _ -> []))
  in
  (* Suppression hygiene, once both tiers have marked usage. *)
  let typed_set = !typed_files in
  let allows =
    Hashtbl.fold
      (fun file ctx acc ->
        let typed_ran = List.mem file typed_set in
        Allow.malformed_findings ctx
        @ Allow.unused_findings ~typed_ran ctx
        @ acc)
      contexts []
  in
  let findings =
    List.sort_uniq Finding.compare (syntactic @ interface @ typed @ allows)
  in
  { findings;
    files = List.map norm mls;
    typed = List.sort_uniq String.compare typed_set }

let lint_string ~path source =
  let ctx = Allow.create () in
  let findings = Syntactic.lint_source ~path ~ctx source in
  List.sort_uniq Finding.compare (findings @ Allow.malformed_findings ctx)

(* ---- rendering ----------------------------------------------------------- *)

let to_json r =
  let untyped = List.filter (fun f -> not (List.mem f r.typed)) r.files in
  J.Obj
    [ ("version", J.Int 1);
      ("files_scanned", J.Int (List.length r.files));
      ("files_typed", J.Int (List.length r.typed));
      (* no silent coverage gaps: name every file the typed tier missed *)
      ("typed_missing", J.List (List.map (fun f -> J.String f) untyped));
      ("findings", J.List (List.map Finding.to_json r.findings)) ]

let render_human ppf r =
  let count = List.length r.findings in
  if count = 0 then
    Format.fprintf ppf "wblint: clean — %d files scanned, %d with typed coverage@."
      (List.length r.files) (List.length r.typed)
  else begin
    let loc_width =
      List.fold_left
        (fun w (f : Finding.t) ->
          max w (String.length (Printf.sprintf "%s:%d:%d" f.file f.line f.col)))
        0 r.findings
    and rule_width =
      List.fold_left (fun w (f : Finding.t) -> max w (String.length f.rule)) 0 r.findings
    in
    List.iter
      (fun (f : Finding.t) ->
        Format.fprintf ppf "%-*s  %-*s  %s@."
          loc_width (Printf.sprintf "%s:%d:%d" f.file f.line f.col)
          rule_width f.rule f.message)
      r.findings;
    Format.fprintf ppf "wblint: %d finding%s in %d files (%d typed)@." count
      (if count = 1 then "" else "s")
      (List.length r.files) (List.length r.typed)
  end
