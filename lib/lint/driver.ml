module J = Wb_obs.Json

type report = {
  findings : Finding.t list;
  files : string list;
  typed : string list;
  tierc : Locks.stats option;
  timings_us : (string * int) list;
}

(* ---- file discovery ----------------------------------------------------- *)

let source_skip name =
  String.equal name "" || name.[0] = '.' || name.[0] = '_'

let rec walk ~skip acc path =
  match (Unix.stat path).Unix.st_kind with
  | Unix.S_DIR ->
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if skip entry then acc else walk ~skip acc (Filename.concat path entry))
         acc
  | Unix.S_REG -> path :: acc
  | _ | (exception Unix.Unix_error _) -> acc

let discover ~skip roots =
  List.fold_left (walk ~skip) [] roots |> List.sort String.compare

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Normalised relative path: strip leading "./", collapse separators. *)
let norm p = String.concat "/" (Rules.components p)

let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

(* ---- the run ------------------------------------------------------------ *)

let run ?build_dir ~roots () =
  let timings = ref [] in
  let timed name f =
    let t0 = now_us () in
    let r = f () in
    timings := (name, now_us () - t0) :: !timings;
    r
  in
  let all = discover ~skip:source_skip roots in
  let mls = List.filter (fun f -> Filename.check_suffix f ".ml" && not (Filename.check_suffix f ".pp.ml")) all in
  let contexts : (string, Allow.ctx) Hashtbl.t = Hashtbl.create 64 in
  let ctx_of file =
    match Hashtbl.find_opt contexts (norm file) with
    | Some c -> c
    | None ->
      let c = Allow.create () in
      Hashtbl.add contexts (norm file) c;
      c
  in
  (* Tier A over every source. *)
  let syntactic =
    timed "syntactic" @@ fun () ->
    List.concat_map
      (fun file ->
        let ctx = ctx_of file in
        match read_file file with
        | src -> Syntactic.lint_source ~path:file ~ctx src
        | exception Sys_error e ->
          [ Finding.make ~rule:Rules.parse_error ~loc:(Location.in_file file)
              (Printf.sprintf "unreadable: %s" e) ])
      mls
  in
  (* Interface coverage: every .ml under a lib directory has a .mli. *)
  let interface =
    timed "interface-coverage" @@ fun () ->
    List.filter_map
      (fun file ->
        if Rules.needs_interface file && not (Sys.file_exists (Filename.remove_extension file ^ ".mli"))
        then
          Some
            (Finding.make ~rule:Rules.interface_coverage ~loc:(Location.in_file file)
               "no matching .mli: every module under lib/ seals its surface with \
                an interface")
        else None)
      mls
  in
  (* Tiers B and C share one pass over the .cmt files: while each file's
     load path is active we run the poly-compare walk AND the Tier C
     catalog extraction, and retain the typedtree (plus its name
     environment) for the env-free escape pass that follows. *)
  let typed_files = ref [] in
  let retained = ref [] in
  let t_poly = ref 0 and t_catalog = ref 0 in
  let typed =
    match build_dir with
    | None -> []
    | Some dir ->
      let wanted = Hashtbl.create 64 in
      List.iter (fun f -> Hashtbl.replace wanted (norm f) f) mls;
      (* dune keeps .cmt files inside dot-directories (.objs); skip nothing. *)
      discover ~skip:(fun _ -> false) [ dir ]
      |> List.filter (fun f -> Filename.check_suffix f ".cmt")
      |> List.concat_map (fun cmt_path ->
             match Typed.read cmt_path with
             | Error _ -> []
             | Ok cmt -> (
               match Option.map norm cmt.Typed.source with
               | Some src
                 when Hashtbl.mem wanted src
                      && not (List.mem src !typed_files) -> (
                 typed_files := src :: !typed_files;
                 let ctx = ctx_of src in
                 match Typed.structure_of cmt with
                 | None -> []
                 | Some str ->
                   Typed.init_load_path ~load_root:dir cmt;
                   let t0 = now_us () in
                   let poly = Typed.lint_structure ~ctx str in
                   let t1 = now_us () in
                   t_poly := !t_poly + (t1 - t0);
                   let unit_path =
                     (* executables mangle as Dune__exe__Wbctl; drop the
                        prefix so findings read "Wbctl.x", not "Dune.exe..." *)
                     match
                       Catalog.canon [ cmt.Typed.infos.Cmt_format.cmt_modname ]
                     with
                     | "Dune" :: "exe" :: rest -> rest
                     | p -> p
                   in
                   let info = Catalog.scan ~ctx ~unit_path ~source:src str in
                   let st = Escape.state_of ~unit_path str in
                   t_catalog := !t_catalog + (now_us () - t1);
                   retained := (src, ctx, unit_path, str, st, info) :: !retained;
                   List.map (fun (f : Finding.t) -> { f with file = src }) poly)
               | _ -> []))
  in
  timings := ("poly-compare", !t_poly) :: !timings;
  (* Tier C: wrappers over every unit first (a lock wrapper defined in one
     module guards calls anywhere), then summaries, then the solve. *)
  let tierc_findings, tierc =
    match build_dir with
    | None -> ([], None)
    | Some _ ->
      let t0 = now_us () in
      let retained = List.rev !retained in
      let wrappers =
        List.concat_map
          (fun (_, _, unit_path, str, st, _) ->
            Escape.wrappers_of ~st ~unit_path str)
          retained
      in
      let wrapper_tbl = Hashtbl.create 16 in
      List.iter (fun (n, l) -> Hashtbl.replace wrapper_tbl n l) wrappers;
      let summaries, spawns, unresolved =
        List.fold_left
          (fun (sums, sps, unres) (src, ctx, unit_path, str, st, _) ->
            let s, sp, u =
              Escape.summarize ~st ~wrappers:wrapper_tbl ~ctx ~source:src
                ~unit_path str
            in
            (s @ sums, sp @ sps, u + unres))
          ([], [], 0) retained
      in
      let t1 = now_us () in
      let findings, stats =
        Locks.solve
          { Locks.catalog =
              List.map (fun (_, ctx, _, _, _, info) -> (info, ctx)) retained;
            all_summaries = summaries;
            all_spawns = spawns;
            wrappers;
            unresolved }
      in
      let t2 = now_us () in
      timings :=
        ("domain-safety", !t_catalog + (t2 - t0))
        :: ("domain-safety.escape", t1 - t0)
        :: ("domain-safety.solve", t2 - t1)
        :: ("domain-safety.catalog", !t_catalog)
        :: !timings;
      (List.map (fun (f : Finding.t) -> { f with file = norm f.file }) findings,
       Some stats)
  in
  (* Suppression hygiene, once all tiers have marked usage. *)
  let typed_set = !typed_files in
  let allows =
    Hashtbl.fold
      (fun file ctx acc ->
        let typed_ran = List.mem file typed_set in
        Allow.malformed_findings ctx
        @ Allow.unused_findings ~typed_ran ctx
        @ acc)
      contexts []
  in
  let findings =
    List.sort_uniq Finding.compare
      (syntactic @ interface @ typed @ tierc_findings @ allows)
  in
  { findings;
    files = List.map norm mls;
    typed = List.sort_uniq String.compare typed_set;
    tierc;
    timings_us = List.rev !timings }

let lint_string ~path source =
  let ctx = Allow.create () in
  let findings = Syntactic.lint_source ~path ~ctx source in
  List.sort_uniq Finding.compare (findings @ Allow.malformed_findings ctx)

(* ---- rendering ----------------------------------------------------------- *)

let tierc_json (s : Locks.stats) =
  J.Obj
    [ ("units", J.Int s.units);
      ("toplevel_bindings", J.Int s.toplevel_bindings);
      ("mutable_entries", J.Int s.entries_mutable);
      ("suppressed", J.Int s.entries_suppressed);
      ("spawn_sites", J.Int s.spawn_sites);
      ("summaries", J.Int s.summaries);
      ("lock_wrappers", J.Int s.lock_wrappers);
      ("unresolved_refs", J.Int s.unresolved_refs) ]

let to_json r =
  let untyped = List.filter (fun f -> not (List.mem f r.typed)) r.files in
  J.Obj
    ([ ("version", J.Int 2);
       ("files_scanned", J.Int (List.length r.files));
       ("files_typed", J.Int (List.length r.typed));
       (* no silent coverage gaps: name every file the typed tier missed *)
       ("typed_missing", J.List (List.map (fun f -> J.String f) untyped));
       ("timings_us",
        J.Obj (List.map (fun (k, v) -> (k, J.Int v)) r.timings_us)) ]
    @ (match r.tierc with
      | None -> []
      | Some s -> [ ("domain_safety", tierc_json s) ])
    @ [ ("findings", J.List (List.map Finding.to_json r.findings)) ])

(* SARIF 2.1.0, the minimal profile code-scanning UIs ingest: one run, one
   driver, rule metadata from the catalog, one result per finding. *)
let to_sarif r =
  let rules =
    List.map
      (fun (i : Rules.info) ->
        J.Obj
          [ ("id", J.String i.id);
            ("shortDescription", J.Obj [ ("text", J.String i.summary) ]) ])
      Rules.catalog
  in
  let result (f : Finding.t) =
    J.Obj
      ([ ("ruleId", J.String f.rule);
         ("level", J.String "error");
         ("message", J.Obj [ ("text", J.String f.message) ]);
         ("locations",
          J.List
            [ J.Obj
                [ ("physicalLocation",
                   J.Obj
                     [ ("artifactLocation", J.Obj [ ("uri", J.String f.file) ]);
                       ("region",
                        J.Obj
                          [ ("startLine", J.Int f.line);
                            ("startColumn", J.Int (f.col + 1)) ]) ]) ] ]) ]
      @
      if f.kind = "" then []
      else [ ("properties", J.Obj [ ("kind", J.String f.kind) ]) ])
  in
  J.Obj
    [ ("version", J.String "2.1.0");
      ("$schema", J.String "https://json.schemastore.org/sarif-2.1.0.json");
      ("runs",
       J.List
         [ J.Obj
             [ ("tool",
                J.Obj
                  [ ("driver",
                     J.Obj
                       [ ("name", J.String "wblint");
                         ("informationUri",
                          J.String "docs/LINTING.md");
                         ("rules", J.List rules) ]) ]);
               ("results", J.List (List.map result r.findings)) ] ]) ]

let render_human ppf r =
  let count = List.length r.findings in
  if count = 0 then
    Format.fprintf ppf "wblint: clean — %d files scanned, %d with typed coverage@."
      (List.length r.files) (List.length r.typed)
  else begin
    let loc_width =
      List.fold_left
        (fun w (f : Finding.t) ->
          max w (String.length (Printf.sprintf "%s:%d:%d" f.file f.line f.col)))
        0 r.findings
    and rule_width =
      List.fold_left (fun w (f : Finding.t) -> max w (String.length f.rule)) 0 r.findings
    in
    List.iter
      (fun (f : Finding.t) ->
        Format.fprintf ppf "%-*s  %-*s  %s@."
          loc_width (Printf.sprintf "%s:%d:%d" f.file f.line f.col)
          rule_width f.rule f.message)
      r.findings;
    Format.fprintf ppf "wblint: %d finding%s in %d files (%d typed)@." count
      (if count = 1 then "" else "s")
      (List.length r.files) (List.length r.typed)
  end
