open Types

type cmt = { source : string option; path : string; infos : Cmt_format.cmt_infos }

let read path =
  match Cmt_format.read_cmt path with
  | infos -> Ok { source = infos.Cmt_format.cmt_sourcefile; path; infos }
  | exception exn -> Error (Printf.sprintf "%s: %s" path (Printexc.to_string exn))

(* ---- classification of flagged identifiers ----------------------------- *)

let compare_like = [ "="; "<>"; "compare"; "min"; "max" ]
let hashtbl_keyed = [ "add"; "replace"; "find"; "find_opt"; "find_all"; "mem"; "remove" ]
let list_member = [ "mem"; "assoc"; "assoc_opt"; "mem_assoc"; "remove_assoc" ]

type flagged =
  | Compare of string  (** polymorphic comparison; check first argument type. *)
  | Hashtbl_op of string  (** structural key hashing; check the table's key type. *)

let classify p =
  match String.split_on_char '.' (Path.name p) with
  | [ "Stdlib"; f ] when List.mem f compare_like -> Some (Compare f)
  | [ "Stdlib"; "Hashtbl"; f ] when List.mem f hashtbl_keyed -> Some (Hashtbl_op f)
  | [ "Stdlib"; "List"; f ] when List.mem f list_member -> Some (Compare ("List." ^ f))
  | [ "Stdlib"; "Array"; "mem" ] -> Some (Compare "Array.mem")
  | _ -> None

(* ---- comparison safety of a type --------------------------------------- *)

let scalars =
  [ "int"; "char"; "bool"; "unit"; "string"; "bytes"; "float"; "int32"; "int64";
    "nativeint" ]

let containers = [ "option"; "list"; "array"; "result"; "lazy_t"; "Stdlib.ref"; "ref" ]

let expand env ty = try Ctype.expand_head env ty with _ -> ty

let rec safe env depth ty =
  if depth > 10 then false
  else
    match get_desc (expand env ty) with
    | Tvar _ | Tunivar _ -> true
    | Ttuple tys -> List.for_all (safe env (depth + 1)) tys
    | Tpoly (t, _) -> safe env (depth + 1) t
    | Tvariant row ->
      (* polymorphic variants with only constant tags compare like ints *)
      List.for_all
        (fun (_, f) ->
          match row_field_repr f with
          | Rpresent None -> true
          | Rpresent (Some _) -> false
          | Reither (const, args, _) -> (
            const && match args with [] -> true | _ :: _ -> false)
          | Rabsent -> true)
        (row_fields row)
    | Tconstr (p, args, _) -> (
      let name = Path.name p in
      if List.mem name scalars then true
      else if List.mem name containers then List.for_all (safe env (depth + 1)) args
      else
        (* enum-like variants (all constructors constant) compare like ints *)
        match Env.find_type p env with
        | { type_kind = Type_variant (cds, _); _ } ->
          List.for_all
            (fun cd -> match cd.cd_args with Cstr_tuple [] -> true | _ -> false)
            cds
        | _ -> false
        | exception Not_found -> false)
    | _ -> false

let first_arg env ty =
  match get_desc (expand env ty) with Tarrow (_, a, _, _) -> Some a | _ -> None

(* [expand_head] normalises the path through the [module Hashtbl =
   Stdlib__Hashtbl] alias, so the constructor can print under either
   name, and on the raw or the expanded type. *)
let hashtbl_key env ty =
  let key t =
    match get_desc t with
    | Tconstr (p, [ k; _ ], _)
      when let n = Path.name p in
           String.equal n "Stdlib.Hashtbl.t" || String.equal n "Stdlib__Hashtbl.t" ->
      Some k
    | _ -> None
  in
  match key ty with Some k -> Some k | None -> key (expand env ty)

let show_type ty = Format.asprintf "%a" Printtyp.type_expr ty

(* ---- the walk ----------------------------------------------------------- *)

let lint_structure ~ctx str =
  let findings = ref [] in
  let add loc msg =
    if not (Allow.suppressed ctx ~rule:Rules.poly_compare) then
      findings := Finding.make ~rule:Rules.poly_compare ~loc msg :: !findings
  in
  let full_env e =
    try Envaux.env_of_only_summary e.Typedtree.exp_env
    with _ -> e.Typedtree.exp_env
  in
  let check_ident (e : Typedtree.expression) loc p =
    match classify p with
    | None -> ()
    | Some (Compare f) -> (
      let env = full_env e in
      match first_arg env e.exp_type with
      | Some arg when not (safe env 0 arg) ->
        add loc
          (Printf.sprintf
             "polymorphic %s at type %s: structural comparison here is a silent \
              correctness hazard; use a dedicated equal/compare (Board.equal, \
              Message.equal, Nat.compare, ...) or match explicitly"
             f (show_type arg))
      | _ -> ())
    | Some (Hashtbl_op f) -> (
      let env = full_env e in
      match Option.bind (first_arg env e.exp_type) (hashtbl_key env) with
      | Some key when not (safe env 0 key) ->
        add loc
          (Printf.sprintf
             "polymorphic Hashtbl.%s with key type %s hashes structurally \
              (Hashtbl.hash); key by a scalar or use a dedicated table"
             f (show_type key))
      | _ -> ())
  in
  let super = Tast_iterator.default_iterator in
  let expr it (e : Typedtree.expression) =
    Allow.with_attrs ctx e.exp_attributes (fun () ->
        (match e.exp_desc with
        | Texp_ident (p, { loc; _ }, _) -> check_ident e loc p
        | _ -> ());
        super.expr it e)
  in
  let value_binding it (vb : Typedtree.value_binding) =
    Allow.with_attrs ctx vb.vb_attributes (fun () -> super.value_binding it vb)
  in
  let iter = { super with expr; value_binding } in
  iter.structure iter str;
  !findings

(* Rebuild environments against the load path this .cmt was compiled
   with, so aliases expand and declarations resolve.  Dune records the
   entries relative to the build root; anchor them at [load_root] so
   the tool works from the repo root too, not only from inside
   [_build/default]. *)
let init_load_path ?(load_root = ".") cmt =
  let resolve p =
    if String.equal p "" then load_root
    else if Filename.is_relative p then Filename.concat load_root p
    else p
  in
  Load_path.init ~auto_include:Load_path.no_auto_include
    (List.map resolve cmt.infos.Cmt_format.cmt_loadpath);
  Env.reset_cache ()

let structure_of cmt =
  match cmt.infos.Cmt_format.cmt_annots with
  | Cmt_format.Implementation str -> Some str
  | _ -> None

let lint ?load_root ~ctx cmt =
  match structure_of cmt with
  | Some str ->
    init_load_path ?load_root cmt;
    lint_structure ~ctx str
  | None -> []

let lint_cmt_file ?load_root path =
  match read path with
  | Error _ as e -> e
  | Ok cmt -> Ok (lint ?load_root ~ctx:(Allow.create ()) cmt)
