type entry = { rule : string; loc : Location.t; mutable used : bool }

type key = string * int * int

let key_of_loc (loc : Location.t) =
  ( loc.loc_start.Lexing.pos_fname,
    loc.loc_start.Lexing.pos_lnum,
    loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol )

type ctx = {
  mutable active : entry list;
  (* all well-formed entries ever pushed, deduped across tiers by location
     and rule so "used" marks from either walk accumulate. *)
  entries : (key * string, entry) Hashtbl.t;
  mutable order : entry list;  (* insertion order, for stable reporting *)
  malformed : (key, Finding.t) Hashtbl.t;
}

let create () =
  { active = []; entries = Hashtbl.create 8; order = []; malformed = Hashtbl.create 4 }

let payload_string (attr : Parsetree.attribute) =
  match attr.attr_payload with
  | PStr
      [ { pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _ } ] ->
    Some s
  | _ -> None

let record_malformed ctx loc detail =
  let k = key_of_loc loc in
  if not (Hashtbl.mem ctx.malformed k) then
    Hashtbl.add ctx.malformed k
      (Finding.make ~rule:Rules.lint_allow ~loc
         (Printf.sprintf
            "malformed suppression: %s; write [@wb.lint.allow \"rule-id: why the \
             rule is sound to silence here\"]"
            detail))

let intern ctx (attr : Parsetree.attribute) =
  if not (String.equal attr.attr_name.txt "wb.lint.allow") then None
  else
    let loc = attr.attr_loc in
    match payload_string attr with
    | None -> record_malformed ctx loc "payload is not a string literal"; None
    | Some s -> (
      match String.index_opt s ':' with
      | None -> record_malformed ctx loc "missing \": explanation\" after the rule id"; None
      | Some i ->
        let rule = String.trim (String.sub s 0 i) in
        let reason = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
        if String.equal rule "" || String.equal reason "" then begin
          record_malformed ctx loc "empty rule id or empty explanation"; None
        end
        else if not (List.exists (fun (r : Rules.info) -> String.equal r.id rule) Rules.catalog)
        then begin
          record_malformed ctx loc (Printf.sprintf "unknown rule id %S" rule); None
        end
        else begin
          let k = (key_of_loc loc, rule) in
          match Hashtbl.find_opt ctx.entries k with
          | Some e -> Some e
          | None ->
            let e = { rule; loc; used = false } in
            Hashtbl.add ctx.entries k e;
            ctx.order <- e :: ctx.order;
            Some e
        end)

let with_attrs ctx attrs f =
  let saved = ctx.active in
  List.iter (fun a -> match intern ctx a with Some e -> ctx.active <- e :: ctx.active | None -> ()) attrs;
  Fun.protect ~finally:(fun () -> ctx.active <- saved) f

let suppressed ctx ~rule =
  match List.find_opt (fun e -> String.equal e.rule rule) ctx.active with
  | Some e -> e.used <- true; true
  | None -> false

(* Tier C decides whether a suppression silences anything only after the
   whole-program solve, long after the walk that saw the attribute.  A
   handle captures the in-scope entry without marking it used; [consume]
   marks it once the deferred check actually suppresses a finding. *)
type handle = entry

let lookup ctx ~rule = List.find_opt (fun e -> String.equal e.rule rule) ctx.active

let consume (e : handle) = e.used <- true

let malformed_findings ctx =
  Hashtbl.fold (fun _ f acc -> f :: acc) ctx.malformed [] |> List.sort Finding.compare

let unused_findings ~typed_ran ctx =
  List.rev ctx.order
  |> List.filter_map (fun e ->
         if e.used then None
         else if (not typed_ran) && Rules.is_typed e.rule then None
         else
           Some
             (Finding.make ~rule:Rules.lint_allow ~loc:e.loc
                (Printf.sprintf
                   "suppression for %S suppresses nothing; delete it (the \
                    suppression set must stay minimal)"
                   e.rule)))
