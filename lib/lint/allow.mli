(** Per-expression suppressions: [[@wb.lint.allow "rule-id: explanation"]].

    The payload is one string: the rule id, a colon, and a non-empty
    explanation of why the rule is sound to silence there — an allow
    without a written justification is itself a finding, as is one that
    suppresses nothing (the suppression set must stay minimal).

    One [ctx] lives per source file and is shared by the syntactic and the
    typed walk of that file: both tiers see the same attributes (the
    typechecker preserves them), so entries are deduplicated by location
    and their "was used" marks accumulate across tiers. *)

type ctx

val create : unit -> ctx

val with_attrs : ctx -> Parsetree.attributes -> (unit -> unit) -> unit
(** Push any [wb.lint.allow] attributes for the dynamic extent of the
    callback (malformed ones are recorded instead), then restore. *)

val suppressed : ctx -> rule:string -> bool
(** Is [rule] allowed by an attribute in scope?  Marks the innermost
    matching entry as used. *)

type handle
(** A captured in-scope suppression whose "used" decision is deferred —
    Tier C only knows after the whole-program solve whether an allow on a
    binding or spawn site silenced anything. *)

val lookup : ctx -> rule:string -> handle option
(** Like {!suppressed} but without marking the entry used; pair with
    {!consume} once the deferred check fires. *)

val consume : handle -> unit
(** Mark a looked-up entry as having suppressed a real finding. *)

val malformed_findings : ctx -> Finding.t list
(** [lint-allow] findings for attributes whose payload is not
    ["rule-id: explanation"] with both parts non-empty. *)

val unused_findings : typed_ran:bool -> ctx -> Finding.t list
(** [lint-allow] findings for well-formed attributes that suppressed
    nothing.  When [typed_ran] is false, allows for typed-tier rules are
    skipped rather than called unused. *)
