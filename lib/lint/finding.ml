module J = Wb_obs.Json

type t = {
  rule : string;
  kind : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let make ~rule ?(kind = "") ~loc message =
  let p = loc.Location.loc_start in
  { rule;
    kind;
    file = p.Lexing.pos_fname;
    line = max 1 p.Lexing.pos_lnum;
    col = max 0 (p.Lexing.pos_cnum - p.Lexing.pos_bol);
    message }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c
        else
          let c = String.compare a.kind b.kind in
          if c <> 0 then c else String.compare a.message b.message

let to_string f =
  let rule = if f.kind = "" then f.rule else f.rule ^ "/" ^ f.kind in
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col rule f.message

let to_json f =
  J.Obj
    (("rule", J.String f.rule)
     :: (if f.kind = "" then [] else [ ("kind", J.String f.kind) ])
    @ [ ("file", J.String f.file);
        ("line", J.Int f.line);
        ("col", J.Int f.col);
        ("message", J.String f.message) ])

let of_json j =
  match
    ( J.member "rule" j, J.member "file" j, J.member "line" j, J.member "col" j,
      J.member "message" j )
  with
  | Some (J.String rule), Some (J.String file), Some (J.Int line), Some (J.Int col),
    Some (J.String message) ->
    let kind = match J.member "kind" j with Some (J.String k) -> k | _ -> "" in
    Some { rule; kind; file; line; col; message }
  | _ -> None
