(** The rule catalog and the path policies the rules are parameterised by.

    Each rule enforces an invariant the rest of the codebase assumes rather
    than checks; the catalog entry records which one, so the CLI's [--rules]
    listing and docs/LINTING.md cannot drift apart silently. *)

type tier = Syntactic  (** Parsetree walk over source files. *)
          | Typed  (** Typedtree walk over [.cmt] files. *)
          | Project  (** whole-tree check, no AST. *)

type info = {
  id : string;
  tier : tier;
  summary : string;  (** the invariant the rule protects, one line. *)
}

val determinism : string
val poly_compare : string
val lock_discipline : string
val decode_hygiene : string
val interface_coverage : string

val domain_safety : string
(** Tier C: the whole-program static race check over Catalog/Escape/Locks. *)

val lint_allow : string
(** Meta-rule: malformed or unused [@wb.lint.allow] attributes. *)

val parse_error : string
(** Reported when a scanned file does not parse (should never fire on a
    tree that builds). *)

val catalog : info list

val is_typed : string -> bool
(** True for rules that only the typed tier can decide; used to avoid
    calling a suppression "unused" when no [.cmt] was available. *)

(** {1 Path policies} — all matching is on ['/']-separated components, so
    the same predicates hold for [lib/net/wire.ml] and for a test fixture
    at [test/lint/fixtures/lib/net/wire.ml]. *)

val components : string -> string list
(** ['/']-separated, with empty and ["."] segments dropped — the
    normalisation all the predicates (and the driver's path matching)
    share. *)

val determinism_exempt : string -> bool
(** [lib/obs] (timestamps in traces), [lib/net] (socket timeouts),
    [bench/] (wall-clock measurement) and [lib/lint] (per-rule pass
    timing) may read clocks; nothing else. *)

val prof_exempt : string -> bool
(** Where [Wb_obs.Prof.phase] hooks may appear: the {!determinism_exempt}
    layers plus the execution kernel ([lib/core]).  A profiling hook
    anywhere else — [lib/protocols] in particular — is a wall-clock read
    smuggled into model code and is flagged under {!determinism}. *)

val lock_exempt : string -> bool
(** Only the [with_lock] combinator's own definition —
    [lib/support/sync.ml] and its historical re-export in
    [lib/net/sync.ml] — may touch [Mutex.lock]/[Mutex.unlock] directly. *)

val is_decode_file : string -> bool
(** The two decode surfaces with a typed-error contract:
    [lib/net/wire.ml] and [lib/protocols/codec.ml]. *)

val is_decode_name : string -> bool
(** Top-level bindings named [decode*], [read*] or [get*] are decode-path
    functions inside a decode file. *)

val needs_interface : string -> bool
(** [.ml] files under a [lib] directory must have a matching [.mli]. *)
