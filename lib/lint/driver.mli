(** Orchestration: discover sources, run both tiers, merge findings.

    The driver walks the given roots for [.ml] files, runs the syntactic
    tier on each, checks {!Rules.interface_coverage}, then (when a build
    directory is available) pairs every discovered source with the [.cmt]
    dune emitted for it — matched by the [cmt_sourcefile] each [.cmt]
    records — and runs the typed tier with the same per-file suppression
    context, so one [@wb.lint.allow] scopes over both tiers.  Last, any
    malformed or unused suppression becomes a {!Rules.lint_allow}
    finding. *)

type report = {
  findings : Finding.t list;  (** sorted by {!Finding.compare}, deduped. *)
  files : string list;  (** [.ml] files scanned, sorted. *)
  typed : string list;  (** the subset that had a [.cmt] (typed coverage). *)
  tierc : Locks.stats option;
      (** Tier C whole-program stats; [None] when no build dir was given
          (the domain-safety analysis needs [.cmt]s). *)
  timings_us : (string * int) list;
      (** wall time per pass, microseconds, in pass order — so [@lint]
          regressions are attributable to a rule. *)
}

val run : ?build_dir:string -> roots:string list -> unit -> report
(** Scan [roots] (files or directories; ["_"]/dot-directories are
    skipped).  [build_dir] is searched recursively for [.cmt] files; omit
    it to skip the typed tier entirely. *)

val lint_string : path:string -> string -> Finding.t list
(** Tier A only, on an in-memory snippet; [path] drives the per-path rule
    policies (allowlists, decode-file detection).  Malformed-suppression
    findings are included; unused-suppression ones are not (no typed tier
    ran).  Used by the tests. *)

val to_json : report -> Wb_obs.Json.t

val to_sarif : report -> Wb_obs.Json.t
(** SARIF 2.1.0 (minimal profile): one run, rule metadata from
    {!Rules.catalog}, one result per finding — what the CI workflow
    uploads as the [lint-findings] artifact. *)

val render_human : Format.formatter -> report -> unit
