(** Tier C, pass 3: the whole-program solve.  Classifies catalog entries,
    chases summaries from every spawn site, and judges each shared-mutable
    entry's lockset.  Finding kinds: {!kind_unguarded} (no access
    synchronized, reported at the definition), {!kind_lockset}
    (different-or-missing lock across accesses, at the definition) and
    {!kind_escape} (a spawn whose closure can reach a raceable entry, at
    the spawn site). *)

val kind_escape : string
val kind_lockset : string
val kind_unguarded : string

type stats = {
  units : int;
  toplevel_bindings : int;
  entries_mutable : int;
  entries_suppressed : int;
  spawn_sites : int;
  summaries : int;
  lock_wrappers : int;
  unresolved_refs : int;
  example : Finding.t option;
}

type input = {
  catalog : (Catalog.unit_info * Allow.ctx) list;
  all_summaries : Escape.summary list;
  all_spawns : Escape.spawn list;
  wrappers : (string * string) list;
  unresolved : int;
}

val solve : input -> Finding.t list * stats
