(** Tier C, pass 1: per-compilation-unit extraction for the domain-safety
    analysis — canonical names, mutability skeletons of top-level bindings,
    and the cross-unit type-declaration table.  Everything that needs the
    compiler environment happens here, while the [.cmt]'s load path is
    active; what comes out is plain data for {!Escape} and {!Locks}. *)

(** {1 Canonical names} — dotted components with dune's wrapped-library
    mangling ([Wb_obs__Metrics]) split back into [Wb_obs.Metrics], so every
    spelling of one global converges on the same key. *)

val canon_component : string -> string list
(** Split one module component at ["__"]; lowercase components pass through. *)

val canon : string list -> string list

val canon_string : string list -> string

val canon_path : Path.t -> string list
(** Flatten (applications keep the functor's path) and canonicalise. *)

val ends_with : suffix:string list -> string list -> bool

(** {1 Mutability skeletons} *)

type sk =
  | Safe  (** synchronization point (Atomic/Mutex/...) or [Domain.DLS]. *)
  | Imm  (** immutable structure. *)
  | Mut of string  (** shared mutable state; the string says why. *)
  | Arr of sk  (** array: mutable unless the elements are [Safe]. *)
  | Box of sk list  (** immutable shell over component skeletons. *)
  | Named of string * sk list
      (** abstract at the use site; resolved against the whole-program
          type table by {!classify}. *)

type init = Lit | LitDeps of string list | Dyn
(** Constant-shape initialisers: a literal, a literal shell over other
    top-level bindings (constant iff every dep is — {!Locks} runs the
    fixpoint), or dynamic. *)

type entry = {
  name : string;
  loc : Location.t;
  sk : sk;
  init : init;
  allow : Allow.handle option;
}

type unit_info = {
  unit_path : string list;
  source : string;
  entries : entry list;
  types : (string * sk) list;
  toplevel_count : int;
}

val scan :
  ctx:Allow.ctx ->
  unit_path:string list ->
  source:string ->
  Typedtree.structure ->
  unit_info
(** Must run while the [.cmt]'s load path is initialised (the skeleton
    extraction expands types through [Envaux]). *)

(** {1 Classification} *)

type cls = Csafe | Cimm | Cmut of string

val classify : types:(string, sk) Hashtbl.t -> sk -> cls
(** Resolve a skeleton against the whole-program declaration table
    (abstract names fall back to unique-suffix matching; unresolvable
    foreign types default to immutable — a documented precision choice). *)
