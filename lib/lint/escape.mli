(** Tier C, pass 2: env-free summaries of each unit's retained Typedtree —
    which canonical globals every module-level binding touches, under which
    lock, in a closure or at module init — plus every [Domain.spawn] /
    [Thread.create] site and every lock-wrapper combinator
    ([let locked f = with_lock l f]). *)

type ref_site = {
  target : string;
  lock : string option;
  lambda : bool;
  loc : Location.t;
}

type summary = { name : string; source : string; refs : ref_site list }

type spawn = {
  fn : string;
  loc : Location.t;
  owner : string;
  source : string;
  allow : Allow.handle option;
}

type tstate
(** Per-unit name environment: the unit's own top-level idents, local
    module aliases ([module M = Machine.Make (N)] links [M.x] to the
    functor body), and an unresolved-reference counter. *)

val state_of : unit_path:string list -> Typedtree.structure -> tstate

val wrappers_of :
  st:tstate -> unit_path:string list -> Typedtree.structure ->
  (string * string) list
(** [(canonical wrapper name, lock key)] pairs.  Collect these over every
    unit before summarising any unit — a wrapper defined in one module may
    guard calls anywhere. *)

val summarize :
  st:tstate ->
  wrappers:(string, string) Hashtbl.t ->
  ctx:Allow.ctx ->
  source:string ->
  unit_path:string list ->
  Typedtree.structure ->
  summary list * spawn list * int
(** Summaries, spawn sites, and the count of qualified references the walk
    could not canonicalise (reported in the Tier C stats, so precision
    loss is visible rather than silent). *)
