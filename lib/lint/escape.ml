(* Tier C, pass 2: an env-free walk over each unit's retained Typedtree
   that produces, per module-level binding, a *summary* — which canonical
   globals the binding's body touches, under which lock, and whether the
   touch happens inside a closure (runtime) or during module initialisation
   — plus every [Domain.spawn]/[Thread.create] site.  Locks.solve then
   chases summaries from each spawn site to the Catalog entries it can
   reach.

   Name resolution is purely syntactic on [Path.t]s: local module aliases
   ([module M = Machine.Make (N)]) and the unit's own top-level idents are
   rewritten to canonical dotted names; functor parameters stay opaque
   (they have no global identity — a documented precision limit). *)

type ref_site = {
  target : string;  (** canonical name of the value referenced. *)
  lock : string option;  (** innermost with_lock lock key, if any. *)
  lambda : bool;  (** inside a closure (runtime) vs module init. *)
  loc : Location.t;
}

type summary = {
  name : string;  (** canonical name of the enclosing binding. *)
  source : string;
  refs : ref_site list;
}

type spawn = {
  fn : string;  (** ["Domain.spawn"] or ["Thread.create"]. *)
  loc : Location.t;
  owner : string;  (** summary the spawn occurs in. *)
  source : string;
  allow : Allow.handle option;
}

(* ---- local name environment --------------------------------------------- *)

type tstate = {
  mutable values : (Ident.t * string list) list;
  mutable modules : (Ident.t * string list) list;
  mutable unresolved : int;  (** qualified refs we could not canonicalise. *)
}

let resolve_ident st id =
  let find l = List.find_opt (fun (i, _) -> Ident.same i id) l in
  match find st.values with
  | Some (_, c) -> Some c
  | None -> (
    match find st.modules with
    | Some (_, c) -> Some c
    | None ->
      if Ident.global id then Some (Catalog.canon_component (Ident.name id))
      else None)

let rec resolve st (p : Path.t) =
  match p with
  | Path.Pident id -> resolve_ident st id
  | Path.Pdot (base, s) -> (
    match resolve st base with
    | Some c -> Some (c @ Catalog.canon_component s)
    | None ->
      st.unresolved <- st.unresolved + 1;
      None)
  | Path.Papply (f, _) -> resolve st f
  | Path.Pextra_ty (base, _) -> resolve st base

let suffix_is st p suffix =
  match resolve st p with
  | Some comps -> Catalog.ends_with ~suffix comps
  | None -> false

(* ---- registering the unit's own top-level names -------------------------- *)

(* [let x : ty = e] typechecks to [Tpat_alias] over [Tpat_any], so both
   pattern shapes introduce a top-level ident. *)
let binding_idents (vb : Typedtree.value_binding) =
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, name) | Tpat_alias (_, id, name) -> [ (id, name.txt) ]
  | _ -> []

let rec register st path (it : Typedtree.structure_item) =
  match it.str_desc with
  | Tstr_value (_, vbs) ->
    List.iter
      (fun vb ->
        List.iter
          (fun (id, name) -> st.values <- (id, path @ [ name ]) :: st.values)
          (binding_idents vb))
      vbs
  | Tstr_module mb -> register_module st path mb
  | Tstr_recmodule mbs -> List.iter (register_module st path) mbs
  | _ -> ()

and register_module st path (mb : Typedtree.module_binding) =
  match mb.mb_id with
  | None -> ()
  | Some id -> (
    let name = Ident.name id in
    let rec strip (me : Typedtree.module_expr) =
      match me.mod_desc with
      | Tmod_constraint (inner, _, _, _) -> strip inner
      | d -> d
    in
    match strip mb.mb_expr with
    | Tmod_ident (p, _) ->
      (* [module Obs = Wb_obs]: the alias IS the target. *)
      let target = match resolve st p with Some c -> c | None -> [ name ] in
      st.modules <- (id, target) :: st.modules
    | Tmod_apply _ as d ->
      (* [module M = Machine.Make (N)]: name M after the functor, so
         M.step links to the functor body's summaries. *)
      let rec head (d : Typedtree.module_expr_desc) =
        match d with
        | Tmod_apply (f, _, _) -> head (strip f)
        | Tmod_ident (p, _) -> resolve st p
        | _ -> None
      in
      let target = match head d with Some c -> c | None -> [ name ] in
      st.modules <- (id, target) :: st.modules
    | Tmod_structure str ->
      let inner = path @ [ name ] in
      st.modules <- (id, inner) :: st.modules;
      List.iter (register st inner) str.str_items
    | Tmod_functor (_, body) -> (
      let inner = path @ [ name ] in
      st.modules <- (id, inner) :: st.modules;
      let rec into (me : Typedtree.module_expr) =
        match me.mod_desc with
        | Tmod_functor (_, b) -> into b
        | Tmod_constraint (i, _, _, _) -> into i
        | Tmod_structure str -> List.iter (register st inner) str.str_items
        | _ -> ()
      in
      into body)
    | _ -> st.modules <- (id, path @ [ name ]) :: st.modules)

(* ---- lock keys and special call shapes ----------------------------------- *)

let is_with_lock st (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> suffix_is st p [ "with_lock" ]
  | _ -> false

let rec lock_key st (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
    match resolve st p with
    | Some c -> Catalog.canon_string c
    | None -> (
      match p with
      | Path.Pident id -> "<local>:" ^ Ident.name id
      | _ -> "<expr>"))
  | Texp_field (b, _, lbl) -> lock_key st b ^ "." ^ lbl.lbl_name
  | _ -> "<expr>"

let spawn_fn st (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) ->
    if suffix_is st p [ "Domain"; "spawn" ] then Some "Domain.spawn"
    else if suffix_is st p [ "Thread"; "create" ] then Some "Thread.create"
    else None
  | _ -> None

(* [let locked f = with_lock lock f]: calling [locked (fun () -> ...)]
   enters [lock]'s critical section through one indirection.  Recognising
   the shape lets the Metrics registry pattern count as locked. *)
let wrapper_of st (vb : Typedtree.value_binding) =
  match (binding_idents vb, vb.vb_expr.exp_desc) with
  | ( [ _ ],
      Texp_function
        { cases =
            [ { c_lhs = { pat_desc = Tpat_var (param, _); _ };
                c_guard = None;
                c_rhs = { exp_desc = Texp_apply (fn, args); _ };
                _ } ];
          _ } )
    when is_with_lock st fn -> (
    match args with
    | [ (_, Some lock_e); (_, Some { exp_desc = Texp_ident (Path.Pident arg, _, _); _ }) ]
      when Ident.same arg param ->
      Some (lock_key st lock_e)
    | _ -> None)
  | _ -> None

(* ---- the walk ------------------------------------------------------------ *)

let skip_heads = [ "Stdlib"; "CamlinternalLazy"; "CamlinternalFormat"; "CamlinternalOO" ]

type acc = {
  mutable refs : ref_site list;
  mutable spawns : spawn list;
  mutable lock : string option;
  mutable lambda : int;
}

let collect st ~wrappers ~ctx ~source ~owner (e0 : Typedtree.expression) =
  let acc = { refs = []; spawns = []; lock = None; lambda = 0 } in
  let seen = Hashtbl.create 16 in
  let add_ref target loc =
    let name = Catalog.canon_string target in
    let key = (name, acc.lock, acc.lambda > 0) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      acc.refs <-
        { target = name; lock = acc.lock; lambda = acc.lambda > 0; loc }
        :: acc.refs
    end
  in
  let super = Tast_iterator.default_iterator in
  let expr it (e : Typedtree.expression) =
    Allow.with_attrs ctx e.exp_attributes (fun () ->
        match e.exp_desc with
        | Texp_ident (p, { loc; _ }, _) -> (
          match resolve st p with
          | Some (head :: _ as comps) when not (List.mem head skip_heads) ->
            add_ref comps loc
          | _ -> ())
        | Texp_function _ ->
          acc.lambda <- acc.lambda + 1;
          Fun.protect
            ~finally:(fun () -> acc.lambda <- acc.lambda - 1)
            (fun () -> super.expr it e)
        | Texp_apply (fn, [ (_, Some lock_e); (_, Some body) ])
          when is_with_lock st fn ->
          it.expr it lock_e;
          let saved = acc.lock in
          acc.lock <- Some (lock_key st lock_e);
          Fun.protect
            ~finally:(fun () -> acc.lock <- saved)
            (fun () -> it.expr it body)
        | Texp_apply (fn, ((_ :: _) as args)) -> (
          (match spawn_fn st fn with
          | Some f ->
            acc.spawns <-
              { fn = f;
                loc = e.exp_loc;
                owner;
                source;
                allow = Allow.lookup ctx ~rule:Rules.domain_safety }
              :: acc.spawns
          | None -> ());
          (* a call through a lock wrapper: the argument closure runs
             under the wrapper's lock. *)
          let wrapper =
            match fn.exp_desc with
            | Texp_ident (p, _, _) -> (
              match resolve st p with
              | Some c -> Hashtbl.find_opt wrappers (Catalog.canon_string c)
              | None -> None)
            | _ -> None
          in
          match (wrapper, args) with
          | Some lock, [ (_, Some body) ] ->
            it.expr it fn;
            let saved = acc.lock in
            acc.lock <- Some lock;
            Fun.protect
              ~finally:(fun () -> acc.lock <- saved)
              (fun () -> it.expr it body)
          | _ -> super.expr it e)
        | _ -> super.expr it e)
  in
  let value_binding it (vb : Typedtree.value_binding) =
    Allow.with_attrs ctx vb.vb_attributes (fun () -> super.value_binding it vb)
  in
  let iter = { super with expr; value_binding } in
  iter.expr iter e0;
  (List.rev acc.refs, List.rev acc.spawns)

(* ---- per-unit API -------------------------------------------------------- *)

let state_of ~unit_path (str : Typedtree.structure) =
  let st = { values = []; modules = []; unresolved = 0 } in
  List.iter (register st unit_path) str.str_items;
  st

(* Wrapper detection must see every unit before any unit is summarised —
   a wrapper defined in [Wb_obs.Metrics] may guard calls anywhere. *)
let wrappers_of ~st ~unit_path (str : Typedtree.structure) =
  let out = ref [] in
  let rec item path (it : Typedtree.structure_item) =
    match it.str_desc with
    | Tstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          match (wrapper_of st vb, binding_idents vb) with
          | Some lock, [ (_, name) ] ->
            out := (Catalog.canon_string (path @ [ name ]), lock) :: !out
          | _ -> ())
        vbs
    | Tstr_module mb -> module_binding path mb
    | Tstr_recmodule mbs -> List.iter (module_binding path) mbs
    | _ -> ()
  and module_binding path (mb : Typedtree.module_binding) =
    match mb.mb_id with
    | None -> ()
    | Some id -> module_expr (path @ [ Ident.name id ]) mb.mb_expr
  and module_expr path (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure s -> List.iter (item path) s.str_items
    | Tmod_functor (_, body) -> module_expr path body
    | Tmod_constraint (inner, _, _, _) -> module_expr path inner
    | _ -> ()
  in
  List.iter (item unit_path) str.str_items;
  List.rev !out

let summarize ~st ~wrappers ~ctx ~source ~unit_path (str : Typedtree.structure) =
  let summaries = ref [] in
  let spawns = ref [] in
  let emit name e =
    let refs, sp = collect st ~wrappers ~ctx ~source ~owner:name e in
    summaries := { name; source; refs } :: !summaries;
    spawns := sp @ !spawns
  in
  let rec item path (it : Typedtree.structure_item) =
    match it.str_desc with
    | Tstr_value (_, vbs) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          match binding_idents vb with
          | [ (_, name) ] ->
            emit (Catalog.canon_string (path @ [ name ])) vb.vb_expr
          | _ ->
            (* [let () = ...] and destructuring bindings: module init. *)
            emit (Catalog.canon_string (path @ [ "<init>" ])) vb.vb_expr)
        vbs
    | Tstr_eval (e, _) -> emit (Catalog.canon_string (path @ [ "<init>" ])) e
    | Tstr_module mb -> module_binding path mb
    | Tstr_recmodule mbs -> List.iter (module_binding path) mbs
    | _ -> ()
  and module_binding path (mb : Typedtree.module_binding) =
    match mb.mb_id with
    | None -> ()
    | Some id -> module_expr (path @ [ Ident.name id ]) mb.mb_expr
  and module_expr path (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure s -> List.iter (item path) s.str_items
    | Tmod_functor (_, body) -> module_expr path body
    | Tmod_constraint (inner, _, _, _) -> module_expr path inner
    | _ -> ()
  in
  List.iter (item unit_path) str.str_items;
  (List.rev !summaries, List.rev !spawns, st.unresolved)
