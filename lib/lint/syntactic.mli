(** Tier A: rules decidable on the Parsetree alone.

    Covers {!Rules.determinism} (banned randomness / clock identifiers,
    with the path allowlist), {!Rules.lock_discipline} (raw
    [Mutex.lock]/[unlock]; blocking [Unix] calls lexically inside a
    [with_lock] critical section) and {!Rules.decode_hygiene}
    (exception-raising and partial stdlib idents inside decode functions
    of the two decode-surface files). *)

val lint_structure :
  path:string -> ctx:Allow.ctx -> Parsetree.structure -> Finding.t list
(** Findings come back unsorted; suppressions in [ctx] are honoured and
    marked used. *)

val lint_source : path:string -> ctx:Allow.ctx -> string -> Finding.t list
(** Parse [source] (locations report [path]) and lint it.  A syntax error
    yields a single {!Rules.parse_error} finding. *)
