(* Tier C, pass 3: the whole-program solve.  Classify every catalog entry
   against the cross-unit type table, run the constant-initialiser fixpoint,
   chase summaries from each Domain.spawn / Thread.create site to the
   entries its closure can reach, and judge each reaching access:

   - every runtime access unlocked          -> unguarded-toplevel (at the def)
   - mixed locks, or locked and unlocked    -> lockset-inconsistency (at the def)
   - consistently locked / Atomic / DLS     -> clean
   plus, per spawn site that can reach an unguarded or inconsistent entry,
   an escape finding naming the entry and the call path.  Definition-site
   findings only fire for entries some spawned task can actually reach —
   purely sequential mutable state is not a race. *)

type stats = {
  units : int;
  toplevel_bindings : int;
  entries_mutable : int;  (** catalog entries classified shared-mutable. *)
  entries_suppressed : int;
  spawn_sites : int;
  summaries : int;
  lock_wrappers : int;
  unresolved_refs : int;
  example : Finding.t option;  (** first finding, for [--explain]. *)
}

let kind_escape = "escape"
let kind_lockset = "lockset-inconsistency"
let kind_unguarded = "unguarded-toplevel"

(* ---- name resolution over the global tables ------------------------------ *)

(* Exact canonical match first; otherwise the reference (spelled through a
   local alias the walk could not expand, e.g. [Obs.Prof.site]) must be a
   suffix of exactly one known canonical name.  Ambiguity resolves to
   nothing — a deliberate precision choice, counted in [unresolved_refs]. *)
let make_resolver keys =
  let exact = Hashtbl.create (List.length keys * 2 + 1) in
  List.iter (fun k -> Hashtbl.replace exact k ()) keys;
  let split k = String.split_on_char '.' k in
  fun name ->
    if Hashtbl.mem exact name then Some name
    else
      let suffix = split name in
      match
        List.filter (fun k -> Catalog.ends_with ~suffix (split k)) keys
      with
      | [ k ] -> Some k
      | _ -> None

(* ---- the solve ----------------------------------------------------------- *)

type input = {
  catalog : (Catalog.unit_info * Allow.ctx) list;
  all_summaries : Escape.summary list;
  all_spawns : Escape.spawn list;
  wrappers : (string * string) list;
  unresolved : int;
}

let pos_of_loc (loc : Location.t) =
  Printf.sprintf "%s:%d" loc.Location.loc_start.Lexing.pos_fname
    loc.Location.loc_start.Lexing.pos_lnum

(* Constness fixpoint: an entry is a de-facto constant when its initialiser
   is a literal shell whose every dependency is itself a constant entry
   (unresolvable deps are conservatively non-constant). *)
let const_set entries =
  let resolve =
    make_resolver (List.map (fun (e : Catalog.entry) -> e.name) entries)
  in
  let const = Hashtbl.create 64 in
  let pass () =
    List.fold_left
      (fun changed (e : Catalog.entry) ->
        if Hashtbl.mem const e.name then changed
        else
          let ok =
            match e.init with
            | Catalog.Lit -> true
            | Catalog.Dyn -> false
            | Catalog.LitDeps deps ->
              List.for_all
                (fun d ->
                  match resolve d with
                  | Some k -> Hashtbl.mem const k
                  | None -> false)
                deps
          in
          if ok then begin
            Hashtbl.replace const e.name ();
            true
          end
          else changed)
      false entries
  in
  while pass () do
    ()
  done;
  const

let solve (input : input) =
  let types = Hashtbl.create 256 in
  List.iter
    (fun ((u : Catalog.unit_info), _) ->
      List.iter (fun (name, sk) -> Hashtbl.replace types name sk) u.types)
    input.catalog;
  let all_entries =
    List.concat_map (fun ((u : Catalog.unit_info), _) -> u.entries) input.catalog
  in
  let const = const_set all_entries in
  (* the shared-mutable catalog: classified mutable, not a constant *)
  let mutable_entries =
    List.filter_map
      (fun (e : Catalog.entry) ->
        if Hashtbl.mem const e.name then None
        else
          match Catalog.classify ~types e.sk with
          | Catalog.Cmut reason -> Some (e, reason)
          | Catalog.Csafe | Catalog.Cimm -> None)
      all_entries
  in
  let summary_by_name = Hashtbl.create 512 in
  List.iter
    (fun (s : Escape.summary) ->
      if not (Hashtbl.mem summary_by_name s.name) then
        Hashtbl.add summary_by_name s.name s)
    input.all_summaries;
  let resolve_summary =
    make_resolver (List.map (fun (s : Escape.summary) -> s.name) input.all_summaries)
  in
  let resolve_entry =
    make_resolver (List.map (fun ((e : Catalog.entry), _) -> e.name) mutable_entries)
  in
  (* global lockset per entry, over runtime (in-closure) accesses *)
  let accesses : (string, (string option * Location.t * string) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let touch entry lock loc via =
    let cell =
      match Hashtbl.find_opt accesses entry with
      | Some c -> c
      | None ->
        let c = ref [] in
        Hashtbl.add accesses entry c;
        c
    in
    cell := (lock, loc, via) :: !cell
  in
  List.iter
    (fun (s : Escape.summary) ->
      List.iter
        (fun (r : Escape.ref_site) ->
          if r.lambda then
            match resolve_entry r.target with
            | Some e -> touch e r.lock r.loc s.name
            | None -> ())
        s.refs)
    input.all_summaries;
  (* reachability: BFS over summaries from each spawn's owner *)
  let reach owner =
    let seen = Hashtbl.create 32 in
    let reached = ref [] in
    let q = Queue.create () in
    (match resolve_summary owner with
    | Some o -> Queue.add (o, [ o ]) q
    | None -> ());
    while not (Queue.is_empty q) do
      let name, path = Queue.take q in
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.add seen name ();
        match Hashtbl.find_opt summary_by_name name with
        | None -> ()
        | Some s ->
          List.iter
            (fun (r : Escape.ref_site) ->
              (match resolve_entry r.target with
              | Some e ->
                if not (List.mem_assoc e !reached) then
                  reached := (e, path) :: !reached
              | None -> ());
              match resolve_summary r.target with
              | Some s' when not (Hashtbl.mem seen s') ->
                Queue.add (s', s' :: path) q
              | _ -> ())
            s.refs
      end
    done;
    !reached
  in
  let spawn_reaches =
    List.map (fun (sp : Escape.spawn) -> (sp, reach sp.owner)) input.all_spawns
  in
  let reachable = Hashtbl.create 16 in
  List.iter
    (fun (_, reached) ->
      List.iter (fun (e, _) -> Hashtbl.replace reachable e ()) reached)
    spawn_reaches;
  (* verdict per entry *)
  let verdicts = Hashtbl.create 16 in
  List.iter
    (fun ((e : Catalog.entry), _) ->
      let accs =
        match Hashtbl.find_opt accesses e.name with Some c -> !c | None -> []
      in
      let locks =
        List.sort_uniq String.compare (List.filter_map (fun (l, _, _) -> l) accs)
      in
      let unlocked = List.exists (fun (l, _, _) -> Option.is_none l) accs in
      let verdict =
        if not (Hashtbl.mem reachable e.name) then `Clean
        else
          match (accs, locks) with
          | [], _ -> `Clean  (* reachable, but never touched from a closure *)
          | _, [] -> `Unguarded
          | _, [ _ ] when not unlocked -> `Clean
          | _ -> `Inconsistent
      in
      Hashtbl.replace verdicts e.name verdict)
    mutable_entries;
  let suppressed = ref 0 in
  (* a suppressed raceable entry is exempt from the catalog: no finding at
     its definition, and no escape finding names it *)
  let exempt = Hashtbl.create 4 in
  let entry_findings =
    List.filter_map
      (fun ((e : Catalog.entry), reason) ->
        let bad =
          match Hashtbl.find_opt verdicts e.name with
          | Some (`Unguarded | `Inconsistent) -> true
          | _ -> false
        in
        if not bad then None
        else
          match e.allow with
          | Some h ->
            Allow.consume h;
            incr suppressed;
            Hashtbl.replace exempt e.name ();
            None
          | None -> (
            let accs =
              match Hashtbl.find_opt accesses e.name with
              | Some c -> List.rev !c
              | None -> []
            in
            match Hashtbl.find_opt verdicts e.name with
            | Some `Unguarded ->
              let _, loc0, via0 =
                match accs with a :: _ -> a | [] -> (None, e.loc, e.name)
              in
              Some
                (Finding.make ~rule:Rules.domain_safety ~kind:kind_unguarded
                   ~loc:e.loc
                   (Printf.sprintf
                      "top-level mutable state `%s` (%s) is reachable from a \
                       spawned task and accessed with no synchronization, \
                       e.g. from %s at %s; make it Atomic.t, guard every \
                       access with one Wb_support.Sync.with_lock lock, or \
                       move it into Domain.DLS"
                      e.name reason via0 (pos_of_loc loc0)))
            | Some `Inconsistent ->
              let describe (l, loc, _) =
                Printf.sprintf "%s at %s"
                  (match l with Some k -> "under " ^ k | None -> "unlocked")
                  (pos_of_loc loc)
              in
              let shown = List.sort_uniq String.compare (List.map describe accs) in
              Some
                (Finding.make ~rule:Rules.domain_safety ~kind:kind_lockset
                   ~loc:e.loc
                   (Printf.sprintf
                      "inconsistent lockset on `%s` (%s): %s; every access \
                       must hold the same lock"
                      e.name reason
                      (String.concat "; " shown)))
            | _ -> None))
      mutable_entries
  in
  (* escape findings: spawn sites that can reach a raceable entry *)
  let spawn_findings =
    List.filter_map
      (fun ((sp : Escape.spawn), reached) ->
        let raceable =
          List.filter
            (fun (e, _) ->
              (not (Hashtbl.mem exempt e))
              &&
              match Hashtbl.find_opt verdicts e with
              | Some (`Unguarded | `Inconsistent) -> true
              | _ -> false)
            reached
        in
        match List.sort_uniq String.compare (List.map fst raceable) with
        | [] -> None
        | first :: _ as all -> (
          let path =
            match List.find_opt (fun (e, _) -> String.equal e first) raceable with
            | Some (_, p) -> p
            | None -> []
          in
          let via =
            match List.rev path with
            | _ :: (_ :: _ as tail) ->
              Printf.sprintf " (via %s)" (String.concat " -> " tail)
            | _ -> ""
          in
          match sp.allow with
          | Some h ->
            Allow.consume h;
            incr suppressed;
            None
          | None ->
            Some
              (Finding.make ~rule:Rules.domain_safety ~kind:kind_escape
                 ~loc:sp.loc
                 (Printf.sprintf
                    "closure passed to %s can reach unsynchronized top-level \
                     mutable state: %s%s; accesses must be Atomic, \
                     consistently locked, or domain-local"
                    sp.fn
                    (String.concat ", " (List.map (fun e -> "`" ^ e ^ "`") all))
                    via))))
      spawn_reaches
  in
  let findings =
    List.sort_uniq Finding.compare (entry_findings @ spawn_findings)
  in
  let stats =
    { units = List.length input.catalog;
      toplevel_bindings =
        List.fold_left
          (fun n ((u : Catalog.unit_info), _) -> n + u.toplevel_count)
          0 input.catalog;
      entries_mutable = List.length mutable_entries;
      entries_suppressed = !suppressed;
      spawn_sites = List.length input.all_spawns;
      summaries = List.length input.all_summaries;
      lock_wrappers = List.length input.wrappers;
      unresolved_refs = input.unresolved;
      example = (match findings with f :: _ -> Some f | [] -> None) }
  in
  (findings, stats)
