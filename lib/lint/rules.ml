type tier = Syntactic | Typed | Project

type info = { id : string; tier : tier; summary : string }

let determinism = "determinism"
let poly_compare = "poly-compare"
let lock_discipline = "lock-discipline"
let decode_hygiene = "decode-hygiene"
let interface_coverage = "interface-coverage"
let domain_safety = "domain-safety"
let lint_allow = "lint-allow"
let parse_error = "parse-error"

let catalog =
  [ { id = determinism;
      tier = Syntactic;
      summary =
        "every run replays from its printed seed: randomness flows through \
         Wb_support.Prng, never Stdlib.Random / Hashtbl.hash / wall clocks" };
    { id = poly_compare;
      tier = Typed;
      summary =
        "structural =/compare/Hashtbl at non-immediate types is a silent \
         correctness hazard; use the dedicated equal/compare functions" };
    { id = lock_discipline;
      tier = Syntactic;
      summary =
        "critical sections cannot leak locks or block: with_lock instead of \
         raw Mutex.lock/unlock, no blocking Unix calls under the lock" };
    { id = decode_hygiene;
      tier = Syntactic;
      summary =
        "decode paths turn every malformed input into a typed error: no \
         failwith/invalid_arg/assert false/partial stdlib functions" };
    { id = domain_safety;
      tier = Typed;
      summary =
        "whole-program race check: top-level mutable state reachable from a \
         Domain.spawn/Thread.create closure must be Atomic, under one \
         consistent with_lock lock, or domain-local (Domain.DLS)" };
    { id = interface_coverage;
      tier = Project;
      summary = "every .ml under lib/ has a matching .mli sealing its surface" };
    { id = lint_allow;
      tier = Project;
      summary =
        "suppressions stay minimal and documented: every [@wb.lint.allow] \
         names a rule, explains itself, and suppresses something real" } ]

let is_typed id = String.equal id poly_compare || String.equal id domain_safety

(* ---- path policies ----------------------------------------------------- *)

let components p =
  String.split_on_char '/' p |> List.filter (fun s -> s <> "" && s <> ".")

let rec has_infix needle hay =
  match hay with
  | [] -> needle = []
  | _ :: rest as l ->
    let rec prefix n h =
      match (n, h) with
      | [], _ -> true
      | _, [] -> false
      | x :: n', y :: h' -> String.equal x y && prefix n' h'
    in
    prefix needle l || has_infix needle rest

let has_suffix needle p =
  let cs = components p in
  let n = List.length cs and k = List.length needle in
  if k > n then false
  else
    let rec drop i l = if i = 0 then l else drop (i - 1) (List.tl l) in
    List.for_all2 String.equal needle (drop (n - k) cs)

let determinism_exempt p =
  let cs = components p in
  has_infix [ "lib"; "obs" ] cs || has_infix [ "lib"; "net" ] cs
  || has_infix [ "bench" ] cs
  (* lib/lint times its own passes (per-rule wall time in --json); the
     linter never runs inside a refereed execution, so the determinism
     contract does not extend to it. *)
  || has_infix [ "lib"; "lint" ] cs

(* Prof.phase is a wall-clock read in disguise: profiling hooks may live in
   the clock-exempt layers plus the execution kernel ([lib/core]), never in
   model or protocol code — a phased [compose] would differ per host. *)
let prof_exempt p = determinism_exempt p || has_infix [ "lib"; "core" ] (components p)

let lock_exempt p =
  has_suffix [ "lib"; "support"; "sync.ml" ] p || has_suffix [ "lib"; "net"; "sync.ml" ] p

let is_decode_file p =
  has_suffix [ "lib"; "net"; "wire.ml" ] p || has_suffix [ "lib"; "protocols"; "codec.ml" ] p

let is_decode_name name =
  let prefixed pre =
    String.equal name pre || String.starts_with ~prefix:(pre ^ "_") name
  in
  prefixed "decode" || prefixed "read" || prefixed "get"

let needs_interface p = has_infix [ "lib" ] (components p)
