open Parsetree

(* Longident components with any leading [Stdlib.] stripped, so
   [Stdlib.Random.int] and [Random.int] classify identically. *)
let ident_components lid =
  match Longident.flatten lid with "Stdlib" :: rest -> rest | comps -> comps

let blocking_unix = [ "read"; "write"; "single_write"; "select"; "sleep"; "sleepf";
                      "recv"; "send"; "accept"; "connect"; "wait"; "waitpid" ]

let hashing = [ "hash"; "seeded_hash"; "hash_param"; "seeded_hash_param" ]

let is_with_lock_ident (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match Longident.flatten txt with
    | [] -> false
    | comps -> String.equal (List.nth comps (List.length comps - 1)) "with_lock")
  | _ -> false

let lint_structure ~path ~ctx str =
  let findings = ref [] in
  let add rule loc msg =
    if not (Allow.suppressed ctx ~rule) then
      findings := Finding.make ~rule ~loc msg :: !findings
  in
  let decode_file = Rules.is_decode_file path in
  let det_exempt = Rules.determinism_exempt path in
  let lock_exempt = Rules.lock_exempt path in
  let prof_exempt = Rules.prof_exempt path in
  let in_critical = ref false in
  let in_decode = ref false in
  (* [Prof.phase] wraps a wall-clock read, whatever module path it is
     reached through (Prof.phase, Obs.Prof.phase, Wb_obs.Prof.phase). *)
  let rec is_prof_phase = function
    | [ "Prof"; "phase" ] -> true
    | _ :: tl -> is_prof_phase tl
    | [] -> false
  in
  let check_ident loc lid =
    let comps = ident_components lid in
    (if (not prof_exempt) && is_prof_phase comps then
       add Rules.determinism loc
         "Prof.phase reads the wall clock; profiling hooks stay in lib/obs, \
          lib/net, lib/core and bench/, never in model or protocol code");
    (if not det_exempt then
       match comps with
       | "Random" :: _ :: _ ->
         add Rules.determinism loc
           "Stdlib.Random breaks seed-replayability; route randomness through \
            Wb_support.Prng"
       | [ "Hashtbl"; f ] when List.mem f hashing ->
         add Rules.determinism loc
           (Printf.sprintf
              "Hashtbl.%s is polymorphic structural hashing with \
               unspecified-per-version output; derive a deterministic key instead"
              f)
       | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] ->
         add Rules.determinism loc
           "wall-clock reads make runs unreplayable; only lib/obs, lib/net and \
            bench/ may time"
       | _ -> ());
    (if not lock_exempt then
       match comps with
       | [ "Mutex"; ("lock" | "unlock" | "try_lock") ] ->
         add Rules.lock_discipline loc
           (Printf.sprintf
              "raw Mutex.%s leaks the lock if the critical section raises; use \
               with_lock (lib/support/sync.ml)"
              (List.nth comps 1))
       | _ -> ());
    (if !in_critical then
       match comps with
       | [ "Unix"; f ] when List.mem f blocking_unix ->
         add Rules.lock_discipline loc
           (Printf.sprintf
              "blocking Unix.%s inside a with_lock critical section can stall \
               every other thread on this lock"
              f)
       | [ "Thread"; "delay" ] ->
         add Rules.lock_discipline loc
           "Thread.delay inside a with_lock critical section stalls every other \
            thread on this lock"
       | _ -> ());
    if decode_file && !in_decode then
      match comps with
      | [ ("failwith" | "invalid_arg") ] ->
        add Rules.decode_hygiene loc
          (Printf.sprintf
             "%s in a decode function: malformed input must become a typed error, \
              not an exception"
             (List.hd comps))
      | [ "List"; ("hd" | "tl") ] | [ "Option"; "get" ] ->
        add Rules.decode_hygiene loc
          (Printf.sprintf
             "partial %s in a decode function raises on malformed input; match \
              explicitly and return a typed error"
             (String.concat "." comps))
      | _ -> ()
  in
  let super = Ast_iterator.default_iterator in
  let rec expr it (e : expression) =
    Allow.with_attrs ctx e.pexp_attributes (fun () ->
        match e.pexp_desc with
        | Pexp_ident { txt; loc } ->
          check_ident loc txt;
          super.expr it e
        | Pexp_assert
            { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
          when decode_file && !in_decode ->
          add Rules.decode_hygiene e.pexp_loc
            "assert false in a decode function: even \"unreachable\" opcodes must \
             decode to a typed error";
          super.expr it e
        | Pexp_apply (fn, args) when is_with_lock_ident fn ->
          expr it fn;
          let saved = !in_critical in
          in_critical := true;
          List.iter (fun (_, a) -> expr it a) args;
          in_critical := saved
        | _ -> super.expr it e)
  in
  let value_binding it (vb : value_binding) =
    Allow.with_attrs ctx vb.pvb_attributes (fun () ->
        let name =
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ }
          | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) ->
            Some txt
          | _ -> None
        in
        let saved = !in_decode in
        (match name with
        | Some n when decode_file && Rules.is_decode_name n -> in_decode := true
        | _ -> ());
        super.value_binding it vb;
        in_decode := saved)
  in
  let iter = { super with expr; value_binding } in
  iter.structure iter str;
  !findings

let lint_source ~path ~ctx source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | str -> lint_structure ~path ~ctx str
  | exception exn ->
    let loc =
      match Location.error_of_exn exn with
      | Some (`Ok { Location.main = { loc; _ }; _ }) -> loc
      | _ -> Location.in_file path
    in
    [ Finding.make ~rule:Rules.parse_error ~loc
        (Printf.sprintf "file does not parse: %s" (Printexc.to_string exn)) ]
