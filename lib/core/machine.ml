module Obs = Wb_obs
module G = Wb_graph.Graph
module Mix = Wb_support.Mix

type status = Awake | Active | Terminated | Dead

type outcome =
  | Success of Answer.t
  | Deadlock
  | Size_violation of { node : int; bits : int; bound : int }
  | Output_error of string

type stats = { rounds : int; max_message_bits : int; total_bits : int }

type run = {
  outcome : outcome;
  writes : int array;
  stats : stats;
  activation_round : int array;
  write_round : int array;
  message_bits : int array;
  compose_count : int array;
  board : Board.t;
}

let default_max_rounds n = (2 * n) + 8

let succeeded r = match r.outcome with Success _ -> true | Deadlock | Size_violation _ | Output_error _ -> false

let answer r = match r.outcome with Success a -> Some a | Deadlock | Size_violation _ | Output_error _ -> None

let outcome_tag = function
  | Success _ -> "success"
  | Deadlock -> "deadlock"
  | Size_violation _ -> "size_violation"
  | Output_error _ -> "output_error"

let outcome_equal a b =
  match (a, b) with
  | Success x, Success y -> Answer.equal x y
  | Deadlock, Deadlock -> true
  | Size_violation x, Size_violation y ->
    x.node = y.node && x.bits = y.bits && x.bound = y.bound
  | Output_error x, Output_error y -> String.equal x y
  | (Success _ | Deadlock | Size_violation _ | Output_error _), _ -> false

let stats_equal a b =
  a.rounds = b.rounds
  && a.max_message_bits = b.max_message_bits
  && a.total_bits = b.total_bits

(* Registry entries are process-global and idempotent: every Machine.Make
   instantiation shares them.  All values are atomic (Wb_obs.Metrics), so
   parallel exploration workers instrument safely. *)
let m_rounds = Obs.Metrics.counter ~help:"rounds across all executions" "engine.rounds"
let m_writes = Obs.Metrics.counter ~help:"messages appended to boards" "engine.writes"

let m_composes =
  Obs.Metrics.counter ~help:"message compositions incl. synchronous recompositions"
    "engine.recompositions"

let m_compose_per_node =
  Obs.Metrics.histogram ~help:"compositions per node per execution" "engine.compose_per_node"

let m_candidates =
  Obs.Metrics.histogram ~help:"write-candidate set size per round" "engine.candidates_per_round"

let m_board_bits = Obs.Metrics.gauge ~help:"board total bits after last write" "engine.board_bits"
let m_deadlocks = Obs.Metrics.counter ~help:"executions ending in deadlock" "engine.deadlocks"

(* Profiling sites for the kernel hot paths; zero-cost unless Wb_obs.Prof
   is enabled (see prof.mli). *)
let prof_step = Obs.Prof.site "machine.step"
let prof_pick = Obs.Prof.site "machine.pick"
let prof_round = Obs.Prof.site "machine.round"

module type NODE = sig
  val model : Model.t
  val message_bound : n:int -> int

  type local

  val init : View.t -> local
  val wants_to_activate : round:int -> View.t -> Board.t -> local -> bool
  val compose : round:int -> View.t -> Board.t -> local -> (Message.t * local) option
  val output : n:int -> Board.t -> Answer.t
end

module Make (N : NODE) = struct
  (* What the machine is waiting for between [step]s. *)
  type pending =
    | Idle  (** advance through rounds on the next [step]. *)
    | Waiting of int list  (** a scheduling choice is open. *)
    | Chosen of int  (** [pick]ed; validate and append on the next [step]. *)

  type t = {
    size : int;
    bound : int;
    max_rounds : int;
    views : View.t array;
    board : Board.t;
    cost : Obs.Cost.ledger option;  (* None unless Wb_obs.Cost is enabled *)
    trace : Obs.Trace.t option;
    minter : Obs.Span.minter;
    root_ctx : Obs.Span.context option;  (* parent for per-round spans *)
    mutable span_root : Obs.Span.t option;
    mutable span_round : Obs.Span.t option;
    mutable status : status array;
    mutable locals : N.local array;
    mutable memory : Message.t option array;
    mutable activation_round : int array;
    mutable write_round : int array;
    mutable compose_count : int array;
    mutable round : int;
    mutable pending : pending;
    mutable finished : run option;
    (* Canonical-digest lanes (see [digest]): two independent Zobrist
       accumulators XOR-folding per-component contributions, maintained
       incrementally at every status, memory and board mutation.  [mem_h]
       caches each node's current memory contribution (0 = no message) so
       synchronous recomposition can XOR the old one out in O(1) and a board
       append reuses the hash of the message it publishes. *)
    mutable z0 : int;
    mutable z1 : int;
    mutable mem_h : int array;
  }

  let frozen = Model.frozen_at_activation N.model

  let simultaneous = Model.simultaneous N.model

  let init ?max_rounds ?trace ?span ?(salt = 0) g =
    let size = G.n g in
    let views = Array.init size (View.make g) in
    (* Seeded from the parent context (or 0), so span ids — and with them
       the whole trace tree — are reproducible run over run.  [salt]
       distinguishes sibling machines under the same parent (the parallel
       explorer replays many machines below one "worker" span; without a
       salt they would all mint identical id streams). *)
    let minter =
      Obs.Span.minter
        ~seed:
          ((match span with Some c -> c.Obs.Span.trace lxor c.Obs.Span.span | None -> 0)
          lxor (salt * 0x9e3779b9))
        ()
    in
    let span_root =
      match trace with
      | None -> None
      | Some tr ->
        Some (Obs.Span.start ?parent:span ~attrs:[ ("n", string_of_int size) ] minter tr "run")
    in
    { size;
      bound = N.message_bound ~n:size;
      max_rounds = (match max_rounds with Some r -> r | None -> default_max_rounds size);
      views;
      board = Board.create size;
      cost = Obs.Cost.create ();
      trace;
      minter;
      root_ctx = Option.map Obs.Span.context span_root;
      span_root;
      span_round = None;
      status = Array.make size Awake;
      locals = Array.map N.init views;
      memory = Array.make size None;
      activation_round = Array.make size (-1);
      write_round = Array.make size (-1);
      compose_count = Array.make size 0;
      round = 0;
      pending = Idle;
      finished = None;
      z0 = 0;
      z1 = 0;
      mem_h = Array.make size 0 }

  let board t = t.board

  let round t = t.round

  (* Each contribution is stamped into both lanes (under different keys) by
     XOR, so lanes are insensitive to the order contributions arrive in —
     the board lane in particular identifies the board by its multiset of
     messages, which is what makes the digest canonical across schedule
     prefixes (docs/EXPLORATION.md).  Stamping the same value twice cancels:
     status changes and recompositions XOR the old contribution out. *)
  let stamp t c =
    t.z0 <- t.z0 lxor Mix.mix c;
    t.z1 <- t.z1 lxor Mix.mix (c lxor 0x2c1b3c6da4be98f1)

  let status_code = function Awake -> 0 | Active -> 1 | Terminated -> 2 | Dead -> 3

  let c_status v st = Mix.combine 0x51 ((v lsl 2) lor status_code st)

  let set_status t v st =
    let old = t.status.(v) in
    if old <> st then begin
      stamp t (c_status v old);
      stamp t (c_status v st);
      t.status.(v) <- st
    end

  let digest t =
    let acc = Mix.combine (Mix.combine t.z0 t.z1) t.round in
    match t.pending with
    | Waiting cs -> List.fold_left (fun a v -> Mix.combine a (v + 2)) (Mix.combine acc 1) cs
    | Idle | Chosen _ -> Mix.combine acc 0

  let emit t ev = match t.trace with None -> () | Some tr -> Obs.Trace.emit tr ev

  let span_start t ?parent ?attrs name =
    match t.trace with
    | None -> None
    | Some tr -> Some (Obs.Span.start ?parent ?attrs ~round:t.round t.minter tr name)

  let span_finish t s =
    match (t.trace, s) with
    | Some tr, Some sp -> Obs.Span.finish ~round:t.round tr sp
    | _ -> ()

  (* Children of the current round when one is open, of the run otherwise
     (faults reported between rounds, e.g. a handshake that never ran). *)
  let inner_parent t =
    match t.span_round with Some s -> Some (Obs.Span.context s) | None -> t.root_ctx

  let kill t v =
    if t.status.(v) <> Dead then begin
      set_status t v Dead;
      let parent = inner_parent t in
      span_finish t (span_start t ?parent ~attrs:[ ("node", string_of_int (v + 1)) ] "fault")
    end

  let compose_now t v =
    let parent = inner_parent t in
    let sp = span_start t ?parent ~attrs:[ ("node", string_of_int (v + 1)) ] "compose" in
    (match N.compose ~round:t.round t.views.(v) t.board t.locals.(v) with
    | None -> kill t v
    | Some (m, local) ->
      t.locals.(v) <- local;
      (match t.mem_h.(v) with 0 -> () | h -> stamp t h);
      let h = Mix.combine 0x4d (Mix.combine (Mix.bools ~seed:17 (Message.payload m)) v) in
      t.mem_h.(v) <- h;
      stamp t h;
      t.memory.(v) <- Some m;
      t.compose_count.(v) <- t.compose_count.(v) + 1;
      Obs.Metrics.incr m_composes;
      emit t (Obs.Event.Compose { node = v; round = t.round; bits = Message.size_bits m }));
    span_finish t sp

  (* Close the ledger's open round and publish its summary while the round
     number is still current — called at both places a round can end (the
     next round's prefix, and [finish]) so the event keeps the stream's
     round monotonicity.  Rounds with no writes stay silent. *)
  let flush_cost t =
    match t.cost with
    | None -> ()
    | Some l -> (
      match Obs.Cost.flush_round l with
      | None -> ()
      | Some { Obs.Cost.round; writes; bits } ->
        emit t
          (Obs.Event.Cost_round { round; writes; bits; board_bits = Board.total_bits t.board }))

  (* One deterministic round prefix: terminations, candidate collection,
     activations, synchronous recomposition.  Returns the write candidates
     (filtered to live nodes holding a message — the filter is identity on
     fault-free executions) and whether anyone activated. *)
  let round_prefix t =
    Obs.Prof.phase prof_round (fun () ->
    flush_cost t;
    (* Close the previous round's span while its round number is still
       current, so span events keep the stream's round monotonicity. *)
    span_finish t t.span_round;
    t.span_round <- None;
    t.round <- t.round + 1;
    emit t (Obs.Event.Round_start { round = t.round });
    t.span_round <- span_start t ?parent:t.root_ctx "round";
    for v = 0 to t.size - 1 do
      if t.status.(v) = Active && Board.has_author t.board v then set_status t v Terminated
    done;
    let candidates = ref [] in
    for v = t.size - 1 downto 0 do
      if t.status.(v) = Active then candidates := v :: !candidates
    done;
    Obs.Metrics.observe m_candidates (List.length !candidates);
    let activated = ref false in
    for v = 0 to t.size - 1 do
      if t.status.(v) = Awake then begin
        let goes =
          if simultaneous then t.round = 1
          else N.wants_to_activate ~round:t.round t.views.(v) t.board t.locals.(v)
        in
        (* [wants_to_activate] may kill the node (a faulted query): a dead
           node never activates, however it answered. *)
        if goes && t.status.(v) = Awake then begin
          set_status t v Active;
          t.activation_round.(v) <- t.round;
          activated := true;
          emit t (Obs.Event.Activate { node = v; round = t.round });
          if frozen then compose_now t v
        end
      end
    done;
    if not frozen then
      List.iter (fun v -> if t.status.(v) = Active then compose_now t v) !candidates;
    ( List.filter (fun v -> t.status.(v) = Active && Option.is_some t.memory.(v)) !candidates,
      !activated ))

  let do_write t v =
    match t.memory.(v) with
    | None -> assert false
    | Some m ->
      Board.append t.board m;
      stamp t (Mix.combine 0x42 t.mem_h.(v));
      t.write_round.(v) <- t.round;
      Obs.Metrics.incr m_writes;
      Obs.Metrics.set m_board_bits (Board.total_bits t.board);
      (match t.cost with
      | None -> ()
      | Some l ->
        Obs.Cost.record l ~round:t.round ~bits:(Message.size_bits m)
          ~board_bits:(Board.total_bits t.board));
      emit t
        (Obs.Event.Write
           { node = v;
             round = t.round;
             bits = Message.size_bits m;
             board_bits = Board.total_bits t.board })

  let finish t outcome =
    flush_cost t;
    let message_bits = Array.make t.size (-1) in
    Board.iter (fun m -> message_bits.(Message.author m) <- Message.size_bits m) t.board;
    Obs.Metrics.add m_rounds t.round;
    Array.iter (Obs.Metrics.observe m_compose_per_node) t.compose_count;
    (match outcome with Deadlock -> Obs.Metrics.incr m_deadlocks | _ -> ());
    (match outcome with
    | Deadlock -> emit t (Obs.Event.Deadlock_detected { round = t.round })
    | _ -> ());
    (* Spans close before the terminal event: Run_end stays last. *)
    span_finish t t.span_round;
    t.span_round <- None;
    span_finish t t.span_root;
    t.span_root <- None;
    emit t (Obs.Event.Run_end { round = t.round; outcome = outcome_tag outcome });
    let run =
      { outcome;
        writes = Board.authors_in_order t.board;
        stats =
          { rounds = t.round;
            max_message_bits = Board.max_message_bits t.board;
            total_bits = Board.total_bits t.board };
        activation_round = Array.copy t.activation_round;
        write_round = Array.copy t.write_round;
        message_bits;
        compose_count = Array.copy t.compose_count;
        board = t.board }
    in
    t.pending <- Idle;
    t.finished <- Some run;
    run

  let success_outcome t =
    match N.output ~n:t.size t.board with
    | answer -> Success answer
    | exception e -> Output_error (Printexc.to_string e)

  let check_size t v =
    match t.memory.(v) with
    | None -> None
    | Some m ->
      let bits = Message.size_bits m in
      if bits > t.bound then Some (Size_violation { node = v; bits; bound = t.bound }) else None

  let step t =
    Obs.Prof.phase prof_step (fun () ->
    match t.finished with
    | Some run -> `Done run
    | None -> (
      match t.pending with
      | Waiting candidates -> `Choices candidates
      | Chosen v -> (
        t.pending <- Idle;
        match check_size t v with
        | Some violation -> `Done (finish t violation)
        | None ->
          do_write t v;
          `Write v)
      | Idle ->
        let rec advance () =
          if Board.length t.board = t.size then `Done (finish t (success_outcome t))
          else if t.round >= t.max_rounds then `Done (finish t Deadlock)
          else
            match round_prefix t with
            | [], false -> `Done (finish t Deadlock)
            | [], true -> advance ()
            | candidates, _ ->
              t.pending <- Waiting candidates;
              `Choices candidates
        in
        advance ()))

  let pick t v =
    Obs.Prof.phase prof_pick (fun () ->
    match t.pending with
    | Waiting candidates when List.exists (Int.equal v) candidates ->
      emit t (Obs.Event.Adversary_pick { node = v; round = t.round; candidates });
      t.pending <- Chosen v
    | Waiting _ -> invalid_arg "Machine.pick: not a candidate"
    | Idle | Chosen _ -> invalid_arg "Machine.pick: no scheduling choice is open")

  type snapshot = {
    s_status : status array;
    s_locals : N.local array;
    s_memory : Message.t option array;
    s_activation : int array;
    s_write : int array;
    s_compose : int array;
    s_round : int;
    s_board_len : int;
    s_pending : pending;
    s_z0 : int;
    s_z1 : int;
    s_mem_h : int array;
  }

  let snapshot t =
    { s_status = Array.copy t.status;
      s_locals = Array.copy t.locals;
      s_memory = Array.copy t.memory;
      s_activation = Array.copy t.activation_round;
      s_write = Array.copy t.write_round;
      s_compose = Array.copy t.compose_count;
      s_round = t.round;
      s_board_len = Board.snapshot_length t.board;
      s_pending = t.pending;
      s_z0 = t.z0;
      s_z1 = t.z1;
      s_mem_h = Array.copy t.mem_h }

  let restore t s =
    t.status <- Array.copy s.s_status;
    t.locals <- Array.copy s.s_locals;
    t.memory <- Array.copy s.s_memory;
    t.activation_round <- Array.copy s.s_activation;
    t.write_round <- Array.copy s.s_write;
    t.compose_count <- Array.copy s.s_compose;
    t.round <- s.s_round;
    Board.truncate t.board s.s_board_len;
    t.pending <- s.s_pending;
    t.z0 <- s.s_z0;
    t.z1 <- s.s_z1;
    t.mem_h <- Array.copy s.s_mem_h;
    (* A rewound round must not be observed as a round summary; the ledger's
       cumulative process totals keep counting replays by design. *)
    (match t.cost with None -> () | Some l -> Obs.Cost.discard_round l);
    (* A restore rewinds logical time, so stopping the open round span here
       would emit a stop at an earlier round than its start; drop it
       unstopped instead (the exporters tolerate unclosed spans). *)
    t.span_round <- None;
    t.finished <- None
end
