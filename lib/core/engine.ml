module Obs = Wb_obs

type outcome =
  | Success of Answer.t
  | Deadlock
  | Size_violation of { node : int; bits : int; bound : int }
  | Output_error of string

type stats = { rounds : int; max_message_bits : int; total_bits : int }

type run = {
  outcome : outcome;
  writes : int array;
  stats : stats;
  activation_round : int array;
  write_round : int array;
  message_bits : int array;
  compose_count : int array;
  board : Board.t;
}

let default_max_rounds n = (2 * n) + 8

let succeeded r = match r.outcome with Success _ -> true | Deadlock | Size_violation _ | Output_error _ -> false

let answer r = match r.outcome with Success a -> Some a | Deadlock | Size_violation _ | Output_error _ -> None

let outcome_tag = function
  | Success _ -> "success"
  | Deadlock -> "deadlock"
  | Size_violation _ -> "size_violation"
  | Output_error _ -> "output_error"

let outcome_equal a b =
  match (a, b) with
  | Success x, Success y -> Answer.equal x y
  | Deadlock, Deadlock -> true
  | Size_violation x, Size_violation y ->
    x.node = y.node && x.bits = y.bits && x.bound = y.bound
  | Output_error x, Output_error y -> String.equal x y
  | (Success _ | Deadlock | Size_violation _ | Output_error _), _ -> false

let stats_equal a b =
  a.rounds = b.rounds
  && a.max_message_bits = b.max_message_bits
  && a.total_bits = b.total_bits

type status = Awake | Active | Terminated

(* Registry entries are process-global and idempotent: every Engine.Make
   instantiation shares them. *)
let m_runs = Obs.Metrics.counter ~help:"completed Engine.run executions" "engine.runs"
let m_rounds = Obs.Metrics.counter ~help:"rounds across all executions" "engine.rounds"
let m_writes = Obs.Metrics.counter ~help:"messages appended to boards" "engine.writes"

let m_composes =
  Obs.Metrics.counter ~help:"message compositions incl. synchronous recompositions"
    "engine.recompositions"

let m_compose_per_node =
  Obs.Metrics.histogram ~help:"compositions per node per execution" "engine.compose_per_node"

let m_candidates =
  Obs.Metrics.histogram ~help:"write-candidate set size per round" "engine.candidates_per_round"

let m_board_bits = Obs.Metrics.gauge ~help:"board total bits after last write" "engine.board_bits"
let m_deadlocks = Obs.Metrics.counter ~help:"executions ending in deadlock" "engine.deadlocks"

let m_explore_execs =
  Obs.Metrics.counter ~help:"complete executions visited by explore" "engine.explore_executions"

let () = Obs.Metrics.probe ~help:"total 64-bit PRNG draws" "prng.draws" Wb_support.Prng.total_draws

module Make (P : Protocol.S) = struct
  module G = Wb_graph.Graph

  type state = {
    g : G.t;
    size : int;
    bound : int;
    views : View.t array;
    board : Board.t;
    trace : Obs.Trace.t option;
    mutable status : status array;
    mutable locals : P.local array;
    mutable memory : Message.t option array;
    mutable activation_round : int array;
    mutable write_round : int array;
    mutable compose_count : int array;
    mutable round : int;
  }

  let initial ?trace g =
    let size = G.n g in
    let views = Array.init size (View.make g) in
    { g;
      size;
      bound = P.message_bound ~n:size;
      views;
      board = Board.create size;
      trace;
      status = Array.make size Awake;
      locals = Array.map P.init views;
      memory = Array.make size None;
      activation_round = Array.make size (-1);
      write_round = Array.make size (-1);
      compose_count = Array.make size 0;
      round = 0 }

  let frozen = Model.frozen_at_activation P.model

  let simultaneous = Model.simultaneous P.model

  let compose_now st v =
    let writer, local = P.compose st.views.(v) st.board st.locals.(v) in
    st.locals.(v) <- local;
    let m = Message.of_writer ~author:v writer in
    st.memory.(v) <- Some m;
    st.compose_count.(v) <- st.compose_count.(v) + 1;
    Obs.Metrics.incr m_composes;
    match st.trace with
    | None -> ()
    | Some tr ->
      Obs.Trace.emit tr
        (Obs.Event.Compose { node = v; round = st.round; bits = Message.size_bits m })

  (* One deterministic round prefix: terminations, candidate collection,
     activations, synchronous recomposition.  Returns the candidates. *)
  let round_prefix st =
    st.round <- st.round + 1;
    (match st.trace with
    | None -> ()
    | Some tr -> Obs.Trace.emit tr (Obs.Event.Round_start { round = st.round }));
    let activated = ref false in
    for v = 0 to st.size - 1 do
      if st.status.(v) = Active && Board.has_author st.board v then st.status.(v) <- Terminated
    done;
    let candidates = ref [] in
    for v = st.size - 1 downto 0 do
      if st.status.(v) = Active then candidates := v :: !candidates
    done;
    Obs.Metrics.observe m_candidates (List.length !candidates);
    for v = 0 to st.size - 1 do
      if st.status.(v) = Awake then begin
        let goes =
          if simultaneous then st.round = 1
          else P.wants_to_activate st.views.(v) st.board st.locals.(v)
        in
        if goes then begin
          st.status.(v) <- Active;
          st.activation_round.(v) <- st.round;
          activated := true;
          (match st.trace with
          | None -> ()
          | Some tr -> Obs.Trace.emit tr (Obs.Event.Activate { node = v; round = st.round }));
          if frozen then compose_now st v
        end
      end
    done;
    if not frozen then List.iter (compose_now st) !candidates;
    (!candidates, !activated)

  let do_write st v =
    match st.memory.(v) with
    | None -> assert false
    | Some m ->
      Board.append st.board m;
      st.write_round.(v) <- st.round;
      Obs.Metrics.incr m_writes;
      Obs.Metrics.set m_board_bits (Board.total_bits st.board);
      (match st.trace with
      | None -> ()
      | Some tr ->
        Obs.Trace.emit tr
          (Obs.Event.Write
             { node = v;
               round = st.round;
               bits = Message.size_bits m;
               board_bits = Board.total_bits st.board }));
      m

  let finish st outcome =
    let message_bits = Array.make st.size (-1) in
    Board.iter (fun m -> message_bits.(Message.author m) <- Message.size_bits m) st.board;
    Obs.Metrics.add m_rounds st.round;
    Array.iter (Obs.Metrics.observe m_compose_per_node) st.compose_count;
    (match outcome with Deadlock -> Obs.Metrics.incr m_deadlocks | _ -> ());
    (match st.trace with
    | None -> ()
    | Some tr ->
      (match outcome with
      | Deadlock -> Obs.Trace.emit tr (Obs.Event.Deadlock_detected { round = st.round })
      | _ -> ());
      Obs.Trace.emit tr (Obs.Event.Run_end { round = st.round; outcome = outcome_tag outcome }));
    { outcome;
      writes = Board.authors_in_order st.board;
      stats =
        { rounds = st.round;
          max_message_bits = Board.max_message_bits st.board;
          total_bits = Board.total_bits st.board };
      activation_round = Array.copy st.activation_round;
      write_round = Array.copy st.write_round;
      message_bits;
      compose_count = Array.copy st.compose_count;
      board = st.board }

  let success_outcome st =
    match P.output ~n:st.size st.board with
    | answer -> Success answer
    | exception e -> Output_error (Printexc.to_string e)

  (* Advance through rounds until a scheduling choice, success or deadlock. *)
  let rec advance st max_rounds =
    if Board.length st.board = st.size then `Success
    else if st.round >= max_rounds then `Deadlock
    else begin
      match round_prefix st with
      | [], false -> `Deadlock
      | [], true -> advance st max_rounds
      | candidates, _ -> `Choices candidates
    end

  let check_size st v =
    match st.memory.(v) with
    | None -> None
    | Some m ->
      let bits = Message.size_bits m in
      if bits > st.bound then Some (Size_violation { node = v; bits; bound = st.bound }) else None

  let run ?max_rounds ?trace g adv =
    let st = initial ?trace g in
    let max_rounds =
      match max_rounds with Some r -> r | None -> default_max_rounds st.size
    in
    let rec loop () =
      match advance st max_rounds with
      | `Success -> finish st (success_outcome st)
      | `Deadlock -> finish st Deadlock
      | `Choices candidates ->
        let v = Adversary.choose adv st.board candidates in
        (match st.trace with
        | None -> ()
        | Some tr ->
          Obs.Trace.emit tr (Obs.Event.Adversary_pick { node = v; round = st.round; candidates }));
        (match check_size st v with
        | Some violation -> finish st violation
        | None ->
          ignore (do_write st v);
          loop ())
    in
    let result = loop () in
    Obs.Metrics.incr m_runs;
    result

  type snapshot = {
    s_status : status array;
    s_locals : P.local array;
    s_memory : Message.t option array;
    s_activation : int array;
    s_write : int array;
    s_compose : int array;
    s_round : int;
    s_board_len : int;
  }

  let snapshot st =
    { s_status = Array.copy st.status;
      s_locals = Array.copy st.locals;
      s_memory = Array.copy st.memory;
      s_activation = Array.copy st.activation_round;
      s_write = Array.copy st.write_round;
      s_compose = Array.copy st.compose_count;
      s_round = st.round;
      s_board_len = Board.snapshot_length st.board }

  let restore st s =
    st.status <- Array.copy s.s_status;
    st.locals <- Array.copy s.s_locals;
    st.memory <- Array.copy s.s_memory;
    st.activation_round <- Array.copy s.s_activation;
    st.write_round <- Array.copy s.s_write;
    st.compose_count <- Array.copy s.s_compose;
    st.round <- s.s_round;
    Board.truncate st.board s.s_board_len

  let explore ?(limit = 1_000_000) ?trace g check =
    let st = initial ?trace g in
    let max_rounds = default_max_rounds st.size in
    let executions = ref 0 in
    let complete outcome =
      incr executions;
      Obs.Metrics.incr m_explore_execs;
      if !executions > limit then failwith "Engine.explore: execution limit exceeded";
      check (finish st outcome)
    in
    let rec go () =
      match advance st max_rounds with
      | `Success -> complete (success_outcome st)
      | `Deadlock -> complete Deadlock
      | `Choices candidates ->
        List.for_all
          (fun v ->
            let saved = snapshot st in
            let ok =
              match check_size st v with
              | Some violation -> complete violation
              | None ->
                (match st.trace with
                | None -> ()
                | Some tr ->
                  Obs.Trace.emit tr
                    (Obs.Event.Adversary_pick { node = v; round = st.round; candidates }));
                ignore (do_write st v);
                go ()
            in
            restore st saved;
            ok)
          candidates
    in
    let all_ok = go () in
    (all_ok, !executions)
end

let run_packed ?max_rounds ?trace (module P : Protocol.S) g adv =
  let module E = Make (P) in
  E.run ?max_rounds ?trace g adv

let explore_packed ?limit ?trace (module P : Protocol.S) g check =
  let module E = Make (P) in
  E.explore ?limit ?trace g check
