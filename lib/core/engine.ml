module Obs = Wb_obs

type outcome = Machine.outcome =
  | Success of Answer.t
  | Deadlock
  | Size_violation of { node : int; bits : int; bound : int }
  | Output_error of string

type stats = Machine.stats = { rounds : int; max_message_bits : int; total_bits : int }

type run = Machine.run = {
  outcome : outcome;
  writes : int array;
  stats : stats;
  activation_round : int array;
  write_round : int array;
  message_bits : int array;
  compose_count : int array;
  board : Board.t;
}

let default_max_rounds = Machine.default_max_rounds
let succeeded = Machine.succeeded
let answer = Machine.answer
let outcome_tag = Machine.outcome_tag
let outcome_equal = Machine.outcome_equal
let stats_equal = Machine.stats_equal

(* Registry entries are process-global and idempotent: every Engine.Make
   instantiation shares them.  The per-round engine.* metrics live with the
   kernel in {!Machine}; the per-driver ones are here. *)
let m_runs = Obs.Metrics.counter ~help:"completed Engine.run executions" "engine.runs"

let m_explore_execs =
  Obs.Metrics.counter ~help:"complete executions visited by explore" "engine.explore_executions"

let () = Obs.Metrics.probe ~help:"total 64-bit PRNG draws" "prng.draws" Wb_support.Prng.total_draws

(* Profiling sites (zero-cost unless Wb_obs.Prof is enabled), shared by
   every Engine.Make instantiation like the metrics above. *)
let prof_run = Obs.Prof.site "engine.run"
let prof_worker = Obs.Prof.site "explore.worker"
let prof_task = Obs.Prof.site "explore.task"

exception Limit_exceeded

module Make (P : Protocol.S) = struct
  module N = struct
    let model = P.model
    let message_bound = P.message_bound

    type local = P.local

    let init = P.init
    let wants_to_activate ~round:_ view board local = P.wants_to_activate view board local

    let compose ~round:_ view board local =
      let writer, local = P.compose view board local in
      Some (Message.of_writer ~author:(View.id view) writer, local)

    let output = P.output
  end

  module M = Machine.Make (N)

  let run ?max_rounds ?trace ?span g adv =
    let m = M.init ?max_rounds ?trace ?span g in
    let rec loop () =
      match M.step m with
      | `Choices candidates ->
        M.pick m (Adversary.choose adv (M.board m) candidates);
        loop ()
      | `Write _ -> loop ()
      | `Done run -> run
    in
    let result = Obs.Prof.phase prof_run loop in
    Obs.Metrics.incr m_runs;
    result

  (* Depth-first enumeration of every adversarial schedule over one live
     machine, snapshot/restore at each choice point.  [List.for_all]
     short-circuits on the first failing subtree, so the execution count on
     a failing check depends on candidate order — [explore_par] never
     short-circuits; see docs/EXPLORATION.md. *)
  let explore ?(limit = 1_000_000) ?trace g check =
    let m = M.init ?trace g in
    let executions = ref 0 in
    let complete run =
      incr executions;
      Obs.Metrics.incr m_explore_execs;
      if !executions > limit then raise Limit_exceeded;
      check run
    in
    let rec go () =
      match M.step m with
      | `Write _ -> go ()
      | `Done run -> complete run
      | `Choices candidates ->
        List.for_all
          (fun v ->
            let saved = M.snapshot m in
            M.pick m v;
            let ok = go () in
            M.restore m saved;
            ok)
          candidates
    in
    match go () with
    | all_ok -> Ok (all_ok, !executions)
    | exception Limit_exceeded -> Error (`Limit limit)

  let explore_exn ?limit ?trace g check =
    match explore ?limit ?trace g check with
    | Ok r -> r
    | Error (`Limit _) -> failwith "Engine.explore: execution limit exceeded"

  (* Exhaustive walk of the subtree under the machine's current state with
     {e no} short-circuit: the visit count is the subtree size, independent
     of check results and of how subtrees are distributed over workers. *)
  let rec walk_subtree m complete =
    match M.step m with
    | `Write _ -> walk_subtree m complete
    | `Done run ->
      let ok = complete run in
      (ok, 1)
    | `Choices candidates ->
      List.fold_left
        (fun (ok, count) v ->
          let saved = M.snapshot m in
          M.pick m v;
          let ok', count' = walk_subtree m complete in
          M.restore m saved;
          (ok && ok', count + count'))
        (true, 0) candidates

  let explore_par ?(limit = 1_000_000) ?shards ~jobs g check =
    if jobs < 1 then invalid_arg "Engine.explore_par: jobs must be >= 1";
    (match shards with
    | Some a when Array.length a <> jobs ->
      invalid_arg "Engine.explore_par: shards array length must equal jobs"
    | _ -> ());
    let total = Atomic.make 0 in
    let over = Atomic.make false in
    let complete run =
      let seen = 1 + Atomic.fetch_and_add total 1 in
      Obs.Metrics.incr m_explore_execs;
      if seen > limit then begin
        Atomic.set over true;
        raise Limit_exceeded
      end;
      check run
    in
    (* Replay a pick-prefix on a fresh machine, stopping at the choice
       point it leads to.  Prefixes always end strictly before a [`Done],
       so replay cannot run off the end of the execution. *)
    let replay ?trace ?span ?salt prefix =
      let m = M.init ?trace ?span ?salt g in
      let rec feed picks =
        match (M.step m, picks) with
        | `Write _, _ -> feed picks
        | `Choices _, v :: rest ->
          M.pick m v;
          feed rest
        | `Choices candidates, [] -> `Choices (m, candidates)
        | `Done run, [] -> `Done run
        | `Done _, _ :: _ -> assert false
      in
      feed prefix
    in
    (* Sequential breadth-first prefix expansion: split the schedule tree
       into enough independent subtrees to keep [jobs] workers busy.
       Executions that complete during expansion are checked inline. *)
    let prefix_results = ref [] in
    let expand_one prefix =
      match replay prefix with
      | `Done run -> (
        match complete run with
        | ok ->
          prefix_results := ok :: !prefix_results;
          []
        | exception Limit_exceeded -> [])
      | `Choices (_, candidates) -> List.map (fun v -> prefix @ [ v ]) candidates
    in
    let target = jobs * 4 in
    let rec grow depth frontier =
      if Atomic.get over || depth >= 8 || List.length frontier >= target then frontier
      else
        match List.concat_map expand_one frontier with
        | [] -> []
        | next -> grow (depth + 1) next
    in
    let items = Array.of_list (grow 0 [ [] ]) in
    let results = Array.make (Array.length items) (true, 0) in
    let next = Atomic.make 0 in
    (* Worker [k] streams into its own ring (single-writer, so the
       non-thread-safe Ring is fine) under a per-domain "worker" root span;
       every replayed machine then roots its "run" span below it.  The
       prefix-expansion phase above runs untraced — its completions are a
       jobs-independent implementation detail, not a worker's work. *)
    let worker k =
      let trace = Option.map (fun a -> Obs.Trace.Ring.sink a.(k)) shards in
      let wroot =
        match trace with
        | None -> None
        | Some tr ->
          let minter = Obs.Span.minter ~seed:(k + 1) () in
          Some (tr, Obs.Span.start ~attrs:[ ("domain", string_of_int k) ] minter tr "worker")
      in
      let span = Option.map (fun (_, s) -> Obs.Span.context s) wroot in
      let rec claim () =
        let i = Atomic.fetch_and_add next 1 in
        if i < Array.length items && not (Atomic.get over) then begin
          (* The item index is globally unique across workers, so it salts
             each replayed machine's minter below the shared worker span. *)
          (match replay ?trace ?span ~salt:(i + 1) items.(i) with
          | `Done _ -> assert false
          | `Choices (m, _) ->
            results.(i) <- Obs.Prof.phase prof_task (fun () -> walk_subtree m complete));
          claim ()
        end
      in
      Obs.Prof.phase prof_worker (fun () ->
          try claim () with Limit_exceeded -> ());
      match wroot with None -> () | Some (tr, s) -> Obs.Span.finish tr s
    in
    let domains = List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
    worker 0;
    List.iter Domain.join domains;
    if Atomic.get over then Error (`Limit limit)
    else begin
      (* Merge in deterministic order: prefix-phase completions first, then
         the work items by index.  [&&] over booleans and [+] over counts
         commute, so the verdict and count are independent of [jobs]. *)
      let ok0 = List.for_all Fun.id (List.rev !prefix_results) in
      let ok, count =
        Array.fold_left
          (fun (ok, count) (ok', count') -> (ok && ok', count + count'))
          (ok0, List.length !prefix_results)
          results
      in
      Ok (ok, count)
    end
end

let run_packed ?max_rounds ?trace ?span (module P : Protocol.S) g adv =
  let module E = Make (P) in
  E.run ?max_rounds ?trace ?span g adv

let explore_packed ?limit ?trace (module P : Protocol.S) g check =
  let module E = Make (P) in
  E.explore ?limit ?trace g check

let explore_packed_exn ?limit ?trace (module P : Protocol.S) g check =
  let module E = Make (P) in
  E.explore_exn ?limit ?trace g check

let explore_par_packed ?limit ?shards ~jobs (module P : Protocol.S) g check =
  let module E = Make (P) in
  E.explore_par ?limit ?shards ~jobs g check
