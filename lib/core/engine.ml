module Obs = Wb_obs

type outcome = Machine.outcome =
  | Success of Answer.t
  | Deadlock
  | Size_violation of { node : int; bits : int; bound : int }
  | Output_error of string

type stats = Machine.stats = { rounds : int; max_message_bits : int; total_bits : int }

type run = Machine.run = {
  outcome : outcome;
  writes : int array;
  stats : stats;
  activation_round : int array;
  write_round : int array;
  message_bits : int array;
  compose_count : int array;
  board : Board.t;
}

let default_max_rounds = Machine.default_max_rounds
let succeeded = Machine.succeeded
let answer = Machine.answer
let outcome_tag = Machine.outcome_tag
let outcome_equal = Machine.outcome_equal
let stats_equal = Machine.stats_equal

(* Registry entries are process-global and idempotent: every Engine.Make
   instantiation shares them.  The per-round engine.* metrics live with the
   kernel in {!Machine}; the per-driver ones are here. *)
let m_runs = Obs.Metrics.counter ~help:"completed Engine.run executions" "engine.runs"

let m_explore_execs =
  Obs.Metrics.counter ~help:"complete executions visited by explore" "engine.explore_executions"

let () = Obs.Metrics.probe ~help:"total 64-bit PRNG draws" "prng.draws" Wb_support.Prng.total_draws

(* Canonical-exploration counters (ISSUE 9): cumulative across verify calls,
   surfaced by `wbctl explore --stats` and the explore bench. *)
let m_dedup_hits =
  Obs.Metrics.counter ~help:"schedule prefixes merged into an already-visited configuration"
    "explore.dedup_hits"

let m_orbit =
  Obs.Metrics.counter ~help:"candidate writes pruned to symmetry-orbit representatives"
    "explore.orbit_collapses"

let m_steals = Obs.Metrics.counter ~help:"exploration tasks stolen between workers" "explore.steals"

let m_states =
  Obs.Metrics.counter ~help:"distinct configurations claimed by the canonical explorer"
    "explore.states"

let m_table_slots =
  Obs.Metrics.gauge ~help:"visited-table slot capacity of the last verify" "explore.table_slots"

let m_table_used =
  Obs.Metrics.gauge ~help:"visited-table entries of the last verify" "explore.table_used"

(* Profiling sites (zero-cost unless Wb_obs.Prof is enabled), shared by
   every Engine.Make instantiation like the metrics above. *)
let prof_run = Obs.Prof.site "engine.run"
let prof_worker = Obs.Prof.site "explore.worker"
let prof_task = Obs.Prof.site "explore.task"

exception Limit_exceeded

type verification = {
  valid : bool;
  states : int;
  finals : int;
  dedup_hits : int;
  orbit_collapses : int;
  steals : int;
  group_order : int;
  dedup : bool;
}

module Make (P : Protocol.S) = struct
  module N = struct
    let model = P.model
    let message_bound = P.message_bound

    type local = P.local

    let init = P.init
    let wants_to_activate ~round:_ view board local = P.wants_to_activate view board local

    let compose ~round:_ view board local =
      let writer, local = P.compose view board local in
      Some (Message.of_writer ~author:(View.id view) writer, local)

    let output = P.output
  end

  module M = Machine.Make (N)

  let run ?max_rounds ?trace ?span g adv =
    let m = M.init ?max_rounds ?trace ?span g in
    let rec loop () =
      match M.step m with
      | `Choices candidates ->
        M.pick m (Adversary.choose adv (M.board m) candidates);
        loop ()
      | `Write _ -> loop ()
      | `Done run -> run
    in
    let result = Obs.Prof.phase prof_run loop in
    Obs.Metrics.incr m_runs;
    result

  (* Depth-first enumeration of every adversarial schedule over one live
     machine, snapshot/restore at each choice point.  [List.for_all]
     short-circuits on the first failing subtree, so the execution count on
     a failing check depends on candidate order — [explore_par] never
     short-circuits; see docs/EXPLORATION.md. *)
  let explore ?(limit = 1_000_000) ?trace g check =
    let m = M.init ?trace g in
    let executions = ref 0 in
    let complete run =
      incr executions;
      Obs.Metrics.incr m_explore_execs;
      if !executions > limit then raise Limit_exceeded;
      check run
    in
    let rec go () =
      match M.step m with
      | `Write _ -> go ()
      | `Done run -> complete run
      | `Choices candidates ->
        List.for_all
          (fun v ->
            let saved = M.snapshot m in
            M.pick m v;
            let ok = go () in
            M.restore m saved;
            ok)
          candidates
    in
    match go () with
    | all_ok -> Ok (all_ok, !executions)
    | exception Limit_exceeded -> Error (`Limit limit)

  let explore_exn ?limit ?trace g check =
    match explore ?limit ?trace g check with
    | Ok r -> r
    | Error (`Limit _) -> failwith "Engine.explore: execution limit exceeded"

  (* Exhaustive walk of the subtree under the machine's current state with
     {e no} short-circuit: the visit count is the subtree size, independent
     of check results and of how subtrees are distributed over workers. *)
  let rec walk_subtree m complete =
    match M.step m with
    | `Write _ -> walk_subtree m complete
    | `Done run ->
      let ok = complete run in
      (ok, 1)
    | `Choices candidates ->
      List.fold_left
        (fun (ok, count) v ->
          let saved = M.snapshot m in
          M.pick m v;
          let ok', count' = walk_subtree m complete in
          M.restore m saved;
          (ok && ok', count + count'))
        (true, 0) candidates

  let explore_par ?(limit = 1_000_000) ?shards ~jobs g check =
    if jobs < 1 then invalid_arg "Engine.explore_par: jobs must be >= 1";
    (match shards with
    | Some a when Array.length a <> jobs ->
      invalid_arg "Engine.explore_par: shards array length must equal jobs"
    | _ -> ());
    let total = Atomic.make 0 in
    let over = Atomic.make false in
    let complete run =
      let seen = 1 + Atomic.fetch_and_add total 1 in
      Obs.Metrics.incr m_explore_execs;
      if seen > limit then begin
        Atomic.set over true;
        raise Limit_exceeded
      end;
      check run
    in
    (* Replay a pick-prefix on a fresh machine, stopping at the choice
       point it leads to.  Prefixes always end strictly before a [`Done],
       so replay cannot run off the end of the execution. *)
    let replay ?trace ?span ?salt prefix =
      let m = M.init ?trace ?span ?salt g in
      let rec feed picks =
        match (M.step m, picks) with
        | `Write _, _ -> feed picks
        | `Choices _, v :: rest ->
          M.pick m v;
          feed rest
        | `Choices candidates, [] -> `Choices (m, candidates)
        | `Done run, [] -> `Done run
        | `Done _, _ :: _ -> assert false
      in
      feed prefix
    in
    (* Sequential breadth-first prefix expansion: split the schedule tree
       into enough independent subtrees to keep [jobs] workers busy.
       Executions that complete during expansion are checked inline. *)
    let prefix_results = ref [] in
    let expand_one prefix =
      match replay prefix with
      | `Done run -> (
        match complete run with
        | ok ->
          prefix_results := ok :: !prefix_results;
          []
        | exception Limit_exceeded -> [])
      | `Choices (_, candidates) -> List.map (fun v -> prefix @ [ v ]) candidates
    in
    let target = jobs * 4 in
    (* The frontier size is threaded through the recursion (it was a
       List.length per level, O(frontier) each expansion). *)
    let rec grow depth count frontier =
      if Atomic.get over || depth >= 8 || count >= target then frontier
      else begin
        let next_count = ref 0 in
        let next =
          List.concat_map
            (fun p ->
              let children = expand_one p in
              next_count := !next_count + List.length children;
              children)
            frontier
        in
        match next with
        | [] -> []
        | next -> grow (depth + 1) !next_count next
      end
    in
    let items = Array.of_list (grow 0 1 [ [] ]) in
    let results = Array.make (Array.length items) (true, 0) in
    (* Per-domain Chase–Lev deques, seeded round-robin before any worker
       spawns (Domain.spawn publishes the pushes).  An idle worker steals
       from its neighbours instead of serialising every tiny task through
       one shared counter; with static items the deques mostly give
       owner-local LIFO traversal, and [outstanding] is the termination
       barrier.  The per-item result slot keeps the merge deterministic
       whichever domain ran the item. *)
    let deques = Array.init jobs (fun _ -> Wb_support.Deque.create ()) in
    Array.iteri (fun i prefix -> Wb_support.Deque.push deques.(i mod jobs) (i, prefix)) items;
    let outstanding = Atomic.make (Array.length items) in
    (* Worker [k] streams into its own ring (single-writer, so the
       non-thread-safe Ring is fine) under a per-domain "worker" root span;
       every replayed machine then roots its "run" span below it.  The
       prefix-expansion phase above runs untraced — its completions are a
       jobs-independent implementation detail, not a worker's work. *)
    let worker k =
      let dq = deques.(k) in
      let trace = Option.map (fun a -> Obs.Trace.Ring.sink a.(k)) shards in
      let wroot =
        match trace with
        | None -> None
        | Some tr ->
          let minter = Obs.Span.minter ~seed:(k + 1) () in
          Some (tr, Obs.Span.start ~attrs:[ ("domain", string_of_int k) ] minter tr "worker")
      in
      let span = Option.map (fun (_, s) -> Obs.Span.context s) wroot in
      let steals = ref 0 in
      let process (i, prefix) =
        (* The item index is globally unique across workers, so it salts
           each replayed machine's minter below the shared worker span. *)
        match replay ?trace ?span ~salt:(i + 1) prefix with
        | `Done _ -> assert false
        | `Choices (m, _) ->
          results.(i) <- Obs.Prof.phase prof_task (fun () -> walk_subtree m complete)
      in
      let rec loop () =
        if not (Atomic.get over) then
          match Wb_support.Deque.pop dq with
          | Some item -> run_item item
          | None -> scan 1
      and run_item item =
        (match process item with () -> () | exception Limit_exceeded -> ());
        Atomic.decr outstanding;
        loop ()
      and scan d =
        if d >= jobs then begin
          if Atomic.get outstanding > 0 && not (Atomic.get over) then begin
            Domain.cpu_relax ();
            scan 1
          end
        end
        else
          match Wb_support.Deque.steal deques.((k + d) mod jobs) with
          | Some item ->
            incr steals;
            run_item item
          | None -> scan (d + 1)
      in
      Obs.Prof.phase prof_worker loop;
      if !steals > 0 then Obs.Metrics.add m_steals !steals;
      match wroot with None -> () | Some (tr, s) -> Obs.Span.finish tr s
    in
    let domains = List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
    worker 0;
    List.iter Domain.join domains;
    if Atomic.get over then Error (`Limit limit)
    else begin
      (* Merge in deterministic order: prefix-phase completions first, then
         the work items by index.  [&&] over booleans and [+] over counts
         commute, so the verdict and count are independent of [jobs]. *)
      let ok0 = List.for_all Fun.id (List.rev !prefix_results) in
      let ok, count =
        Array.fold_left
          (fun (ok, count) (ok', count') -> (ok && ok', count + count'))
          (ok0, List.length !prefix_results)
          results
      in
      Ok (ok, count)
    end

  (* Canonical exploration (ISSUE 9): depth-first over {e configurations}
     rather than schedules.  Sound only under the protocol's declared
     {!Protocol.Traits}: confluence lets two schedule prefixes reaching the
     same {!M.digest} merge, and the optional symmetry promise lets a
     sequential first phase prune candidate writes to stabilizer-orbit
     representatives (prefix lex-leader: at a prefix whose stabilizer
     subgroup is [H], a candidate [v] survives iff it is minimal in its
     [H]-orbit; the child prefix keeps the point stabilizer of [v]).  Once
     the stabilizer is trivial no further symmetry pruning is possible, so
     running phase 1 sequentially loses nothing.

     Determinism across [jobs]: a configuration is claimed in the shared
     {!Wb_support.Cset} at {e discovery}, before expansion, so the claimed
     set is exactly the reachability closure of the pruned schedule tree —
     independent of which worker expands what and of the deque spill
     heuristic.  [states], [finals], [dedup_hits] and the verdict are
     therefore jobs-independent; [steals] alone is scheduling telemetry. *)
  let verify ?(limit = 250_000) ?(symmetry = true) ?(jobs = 1) g check =
    if jobs < 1 then invalid_arg "Engine.verify: jobs must be >= 1";
    if not (P.traits.Protocol.Traits.confluent g) then
      (* No confluence promise on this instance: fall back to plain
         enumeration, reported with dedup = false. *)
      match explore_par ~limit ~jobs g check with
      | Error _ as e -> e
      | Ok (ok, count) ->
        Ok
          {
            valid = ok;
            states = 0;
            finals = count;
            dedup_hits = 0;
            orbit_collapses = 0;
            steals = 0;
            group_order = 1;
            dedup = false;
          }
    else begin
      let group =
        if not symmetry then None
        else
          match P.traits.Protocol.Traits.symmetry_fixed with
          | None -> None
          | Some fixed_of -> (
            match Wb_graph.Auto.automorphisms ~fixed:(fixed_of g) g with
            | Some a when Array.length a > 1 -> Some a
            | _ -> None)
      in
      let table = Wb_support.Cset.create ~limit () in
      let states = Atomic.make 0 in
      let finals = Atomic.make 0 in
      let hits = Atomic.make 0 in
      let collapses = ref 0 in
      let valid = Atomic.make true in
      let over = Atomic.make false in
      let claim d =
        match Wb_support.Cset.add table d with
        | `Added -> true
        | `Present ->
          Atomic.incr hits;
          false
        | `Full ->
          Atomic.set over true;
          false
      in
      (* Drive a machine from a choice resolution (or from init) to its next
         stable point; configurations are only digested there. *)
      let rec settle m =
        match M.step m with
        | `Write _ -> settle m
        | (`Choices _ | `Done _) as r -> r
      in
      let complete_final m run =
        if claim (M.digest m) then begin
          Atomic.incr finals;
          Obs.Metrics.incr m_explore_execs;
          if not (check run) then Atomic.set valid false
        end
      in
      let m0 = M.init g in
      let seeds = ref [] in
      (* Phase 1 (sequential): expand while the stabilizer is nontrivial,
         pruning candidates to orbit minima.  Prefixes whose stabilizer has
         collapsed to the identity become seeds for the parallel phase. *)
      let rec grow_sym stab rev_path =
        match M.step m0 with
        | `Write _ -> assert false (* settled before entry *)
        | `Done _ -> assert false (* finals are claimed before recursing *)
        | `Choices candidates ->
          let kept =
            List.filter
              (fun v ->
                Array.fold_left (fun acc p -> min acc p.(v)) v stab = v)
              candidates
          in
          collapses := !collapses + (List.length candidates - List.length kept);
          List.iter
            (fun v ->
              if not (Atomic.get over) then begin
                let saved = M.snapshot m0 in
                M.pick m0 v;
                (match settle m0 with
                | `Done run -> complete_final m0 run
                | `Choices _ ->
                  if claim (M.digest m0) then begin
                    Atomic.incr states;
                    let stab' = Array.of_list (List.filter (fun p -> p.(v) = v) (Array.to_list stab)) in
                    if Array.length stab' > 1 then grow_sym stab' (v :: rev_path)
                    else seeds := List.rev (v :: rev_path) :: !seeds
                  end);
                M.restore m0 saved
              end)
            kept
      in
      (match settle m0 with
      | `Done run -> complete_final m0 run
      | `Choices _ ->
        if claim (M.digest m0) then begin
          Atomic.incr states;
          match group with
          | Some stab -> grow_sym stab []
          | None -> seeds := [ [] ]
        end);
      let seed_list = List.rev !seeds in
      let steals_total = Atomic.make 0 in
      (* Phase 2 (parallel): plain configuration-dedup DFS from each seed.
         Workers expand depth-first on their own machine, spilling freshly
         claimed configurations to their deque when it runs low so idle
         workers can steal them. *)
      if (not (Atomic.get over)) && seed_list <> [] then begin
        let deques = Array.init jobs (fun _ -> Wb_support.Deque.create ()) in
        List.iteri
          (fun i prefix -> Wb_support.Deque.push deques.(i mod jobs) prefix)
          seed_list;
        let outstanding = Atomic.make (List.length seed_list) in
        let worker k =
          let dq = deques.(k) in
          let steals = ref 0 in
          let m = M.init g in
          let root = M.snapshot m in
          let feed prefix =
            M.restore m root;
            let rec go picks =
              match (M.step m, picks) with
              | `Write _, _ -> go picks
              | `Choices _, v :: rest ->
                M.pick m v;
                go rest
              | `Choices _, [] -> ()
              | `Done _, _ -> assert false
            in
            go prefix
          in
          (* Expand the claimed configuration under the machine's current
             choice point.  Children are claimed at discovery; a claimed
             child is either recursed into or spilled for stealing. *)
          let rec expand rev_path =
            match M.step m with
            | `Write _ | `Done _ -> assert false
            | `Choices candidates ->
              List.iter
                (fun v ->
                  if not (Atomic.get over) then begin
                    let saved = M.snapshot m in
                    M.pick m v;
                    (match settle m with
                    | `Done run -> complete_final m run
                    | `Choices _ ->
                      if claim (M.digest m) then begin
                        Atomic.incr states;
                        if jobs > 1 && Wb_support.Deque.size dq < 16 then begin
                          Atomic.incr outstanding;
                          Wb_support.Deque.push dq (List.rev (v :: rev_path))
                        end
                        else expand (v :: rev_path)
                      end);
                    M.restore m saved
                  end)
                candidates
          in
          let process prefix =
            feed prefix;
            expand (List.rev prefix)
          in
          let rec loop () =
            if not (Atomic.get over) then
              match Wb_support.Deque.pop dq with
              | Some prefix -> run_item prefix
              | None -> scan 1
          and run_item prefix =
            process prefix;
            Atomic.decr outstanding;
            loop ()
          and scan d =
            if d >= jobs then begin
              if Atomic.get outstanding > 0 && not (Atomic.get over) then begin
                Domain.cpu_relax ();
                scan 1
              end
            end
            else
              match Wb_support.Deque.steal deques.((k + d) mod jobs) with
              | Some prefix ->
                incr steals;
                run_item prefix
              | None -> scan (d + 1)
          in
          Obs.Prof.phase prof_worker loop;
          if !steals > 0 then Atomic.fetch_and_add steals_total !steals |> ignore
        in
        let domains = List.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1))) in
        worker 0;
        List.iter Domain.join domains
      end;
      let steals = Atomic.get steals_total in
      Obs.Metrics.add m_dedup_hits (Atomic.get hits);
      Obs.Metrics.add m_orbit !collapses;
      Obs.Metrics.add m_states (Atomic.get states);
      if steals > 0 then Obs.Metrics.add m_steals steals;
      Obs.Metrics.set m_table_slots (Wb_support.Cset.capacity table);
      Obs.Metrics.set m_table_used (Wb_support.Cset.cardinal table);
      if Atomic.get over then Error (`Limit (Wb_support.Cset.limit table))
      else
        Ok
          {
            valid = Atomic.get valid;
            states = Atomic.get states;
            finals = Atomic.get finals;
            dedup_hits = Atomic.get hits;
            orbit_collapses = !collapses;
            steals;
            group_order = (match group with Some a -> Array.length a | None -> 1);
            dedup = true;
          }
    end
end

let run_packed ?max_rounds ?trace ?span (module P : Protocol.S) g adv =
  let module E = Make (P) in
  E.run ?max_rounds ?trace ?span g adv

let explore_packed ?limit ?trace (module P : Protocol.S) g check =
  let module E = Make (P) in
  E.explore ?limit ?trace g check

let explore_packed_exn ?limit ?trace (module P : Protocol.S) g check =
  let module E = Make (P) in
  E.explore_exn ?limit ?trace g check

let explore_par_packed ?limit ?shards ~jobs (module P : Protocol.S) g check =
  let module E = Make (P) in
  E.explore_par ?limit ?shards ~jobs g check

let verify_packed ?limit ?symmetry ?jobs (module P : Protocol.S) g check =
  let module E = Make (P) in
  E.verify ?limit ?symmetry ?jobs g check
