(** The interface every whiteboard protocol implements.

    The engine interprets a protocol under the semantics of its declared
    {!Model.t}:

    - In simultaneous models, [wants_to_activate] is ignored: every node is
      activated in round one.
    - In frozen (asynchronous) models, [compose] is called exactly once, at
      activation time, and the resulting message is what the adversary will
      eventually write — however much later that happens.
    - In synchronous models, [compose] is called for every active node at
      every round (with the current board), threading [local]; the message
      on the adversary's chosen node is the one composed that round.

    [local] must be treated as a pure value: exhaustive exploration snapshots
    and restores it, so protocols must not hide mutable state inside. *)

(** Semantic declarations the canonical explorer ({!Engine.Make.verify})
    relies on.  They are promises about the protocol's {e meaning} that the
    type system cannot check; the qcheck differential suite pins each
    declared protocol against the naive enumerator (the same contract shape
    as SPIN's scalarsets).  A protocol that declares nothing
    ({!Traits.opaque}) is always explored by plain enumeration. *)
module Traits : sig
  type t = {
    confluent : Wb_graph.Graph.t -> bool;
        (** [confluent g] promises that, on instance [g], the protocol's
            three hooks depend on the board only through its {e multiset} of
            messages — never on write order — and that [local] carries no
            information beyond what [init] and the hooks' visible inputs
            determine.  Under that promise two schedule prefixes reaching
            the same configuration (statuses, memories, board content,
            round) have identical futures, so the explorer may merge them.
            Instance-dependent on purpose: the BFS family reads the last
            written entry only to jump components, so it is confluent
            exactly on connected inputs. *)
    symmetry_fixed : (Wb_graph.Graph.t -> int list) option;
        (** [Some fixed] additionally promises equivariance: for every graph
            automorphism [σ] fixing the nodes of [fixed g] pointwise,
            relabelling an execution by [σ] yields an execution of the same
            protocol with relabelled messages, and validity of outcomes is
            preserved.  The explorer then prunes schedules to stabilizer
            orbit representatives.  [None] for protocols with node-identity
            tie-breaks (e.g. lowest-id parent selection). *)
  }

  val opaque : t
  (** No promises: enumerative exploration only. *)

  val canonical : ?symmetry_fixed:(Wb_graph.Graph.t -> int list) -> unit -> t
  (** Confluent on every instance. *)

  val canonical_when :
    ?symmetry_fixed:(Wb_graph.Graph.t -> int list) -> (Wb_graph.Graph.t -> bool) -> t
  (** Confluent exactly where the predicate holds. *)
end

module type S = sig
  val name : string
  val model : Model.t

  val message_bound : n:int -> int
  (** Maximum payload size in bits for systems of [n] nodes — the protocol's
      [f(n)].  The engine fails the run if a written message exceeds it. *)

  val traits : Traits.t
  (** What the canonical explorer may assume; {!Traits.opaque} is always a
      safe declaration. *)

  type local

  val init : View.t -> local
  (** Local memory before round one. *)

  val wants_to_activate : View.t -> Board.t -> local -> bool
  (** Activation decision for awake nodes (free models only). *)

  val compose : View.t -> Board.t -> local -> Wb_support.Bitbuf.Writer.t * local
  (** Create (or, in synchronous models, re-create) the node's message. *)

  val output : n:int -> Board.t -> Answer.t
  (** Computed from the final board only. *)
end

type t = (module S)

val name : t -> string
val model : t -> Model.t
val traits : t -> Traits.t
