(** The shared whiteboard: an append-only sequence of messages.

    Protocols read it; only the execution engine appends.  Each node may
    appear as author at most once (the engine maintains this invariant —
    "each node is allowed to write exactly one message"). *)

type t

val create : int -> t
(** [create n] is an empty board for an n-node system. *)

val n : t -> int
val length : t -> int
(** Messages written so far. *)

val get : t -> int -> Message.t
(** In write order, 0-based. *)

val find_author : t -> int -> Message.t option
val has_author : t -> int -> bool
val last : t -> Message.t option
val iter : (Message.t -> unit) -> t -> unit
(** In write order. *)

val fold : ('a -> Message.t -> 'a) -> 'a -> t -> 'a
val to_list : t -> Message.t list
val authors_in_order : t -> int array

val append : t -> Message.t -> unit
(** Engine use only.  @raise Invalid_argument if the author already wrote. *)

val snapshot_length : t -> int
val truncate : t -> int -> unit
(** Engine use only (backtracking exhaustive exploration). *)

val equal : t -> t -> bool
(** Same size and the same messages (author and payload bits) in the same
    write order — the equality the remote-vs-local differential checks use. *)

val generation : t -> int
(** Bumped on every [truncate]: lets incremental observers detect that
    previously-read positions may have been rewritten. *)

val total_bits : t -> int
val max_message_bits : t -> int
val pp : Format.formatter -> t -> unit
