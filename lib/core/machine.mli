(** The execution kernel: one step machine implementing the paper's round
    semantics, shared by every consumer — {!Engine.Make.run} (one adversary),
    {!Engine.Make.explore} and [explore_par] (all adversaries, with
    backtracking), and the networked referee ([Wb_net.Session]), which wraps
    protocol hooks in RPCs and injects faults via {!Make.kill}.

    Operational semantics (one round):
    + nodes whose message appears on the board become terminated;
    + the {e write candidates} are the nodes already active at the start of
      the round (a node never activates and writes in the same round, per
      the paper's successor-configuration rule);
    + awake nodes may activate — all of them in round one under simultaneous
      models, by [wants_to_activate] otherwise; in frozen models the
      activating node composes its message now, from the current board, and
      the message never changes;
    + in synchronous models every candidate recomposes from the current
      board;
    + the driver picks one candidate ({!Make.pick}) and its current message
      is appended on the next {!Make.step}.

    The execution succeeds when all [n] messages are on the board, and
    deadlocks when no candidate exists and no awake node activates, or when
    [max_rounds] is exceeded.

    The machine is {e passive}: it never calls an adversary, a socket or a
    callback on its own.  Control returns to the driver at every scheduling
    choice, which is what lets one kernel serve an inline run loop, a
    depth-first enumerator with {!Make.snapshot}/{!Make.restore}, and a
    frame-by-frame network referee.  A machine instance is single-domain;
    parallel exploration gives each worker its own instance (the metrics it
    bumps are atomic, see {!Wb_obs.Metrics}). *)

type status = Awake | Active | Terminated | Dead

type outcome =
  | Success of Answer.t
  | Deadlock  (** corrupted final configuration: non-terminated nodes remain. *)
  | Size_violation of { node : int; bits : int; bound : int }
  | Output_error of string  (** the output function raised. *)

type stats = { rounds : int; max_message_bits : int; total_bits : int }

type run = {
  outcome : outcome;
  writes : int array;  (** authors in write order. *)
  stats : stats;
  activation_round : int array;  (** -1 when the node never activated. *)
  write_round : int array;  (** -1 when the node never wrote. *)
  message_bits : int array;  (** payload size per node; -1 when unwritten. *)
  compose_count : int array;
      (** compositions per node: 1 for every writing node in frozen models;
          in synchronous models, the rounds it spent as a candidate. *)
  board : Board.t;
      (** The final whiteboard — what the networked referee serves and the
          differential checks compare.  This aliases the machine's {e live}
          board, so under backtracking ([Engine.explore]) it is only
          meaningful until the next [restore]. *)
}

val default_max_rounds : int -> int
(** [2n + 8] — any legal execution fits; exceeding it counts as deadlock.
    Shared by local runs, exploration and the networked referee so all
    agree on the cutoff. *)

val succeeded : run -> bool
val answer : run -> Answer.t option

val outcome_tag : outcome -> string
(** The wire name used in {!Wb_obs.Event.Run_end}: ["success"],
    ["deadlock"], ["size_violation"] or ["output_error"]. *)

val outcome_equal : outcome -> outcome -> bool
(** Structural, via {!Answer.equal} — what the benches and differential
    checks compare with instead of polymorphic [=] (answers may carry
    graphs and big naturals). *)

val stats_equal : stats -> stats -> bool

(** Node-side hooks.  {!Engine.Make} adapts a {!Protocol.S} directly;
    [Wb_net.Session] wraps each hook in an RPC to the node's client
    process.  Hooks receive the current [~round] so a remote node can stamp
    its frames. *)
module type NODE = sig
  val model : Model.t
  val message_bound : n:int -> int

  type local

  val init : View.t -> local

  val wants_to_activate : round:int -> View.t -> Board.t -> local -> bool
  (** May mark the node dead as a side effect (a transport fault in the
      networked referee); a dead node never activates regardless of the
      returned value. *)

  val compose : round:int -> View.t -> Board.t -> local -> (Message.t * local) option
  (** [None] means the node faulted mid-composition: it is marked {!Dead}
      and drops out of the candidate set.  In-process protocols always
      return [Some]. *)

  val output : n:int -> Board.t -> Answer.t
end

module Make (N : NODE) : sig
  type t

  val init :
    ?max_rounds:int ->
    ?trace:Wb_obs.Trace.t ->
    ?span:Wb_obs.Span.context ->
    ?salt:int ->
    Wb_graph.Graph.t ->
    t
  (** [max_rounds] defaults to {!default_max_rounds}.  [trace] receives the
      execution's event stream; the sink is {e not} closed — the caller
      owns it.  When traced, the kernel opens a ["run"] root span (a child
      of [span] when given — how a networked session joins its driver's
      trace) and child spans per round, compose and fault; span ids are
      minted deterministically from [span] (or seed 0) and [salt]
      (default 0), so the trace tree is reproducible.  Give sibling
      machines sharing one parent distinct salts or their ids collide. *)

  val step : t -> [ `Choices of int list | `Write of int | `Done of run ]
  (** Advance until something needs the driver:
      - [`Choices cs] — a scheduling choice is open; call {!pick} (the same
        [`Choices] is returned until then);
      - [`Write v] — the message picked last time was appended (one
        observable frame for the referee to broadcast);
      - [`Done run] — the execution is over; further [step]s return the
        same [run]. *)

  val pick : t -> int -> unit
  (** Resolve the open choice with one of its candidates (emits
      [Adversary_pick]).  @raise Invalid_argument if no choice is open or
      the node is not a candidate. *)

  val kill : t -> int -> unit
  (** Mark a node dead (networked transport fault).  A dead node never
      activates, composes or writes again; a board that can no longer fill
      deadlocks by round exhaustion. *)

  val board : t -> Board.t
  val round : t -> int

  val digest : t -> int
  (** A 63-bit canonical digest of the machine's configuration: node
      statuses, composed-but-unwritten memories, the board's {e multiset}
      of messages (write order deliberately excluded — under a confluent
      protocol two prefixes reaching the same multiset have identical
      futures, see {!Protocol.Traits}), the round, and the open candidate
      set when a choice is pending.  Maintained incrementally — O(1) per
      status/board mutation, O(message bits) per composition — never by
      re-serialising a snapshot.  Local node state is {e not} hashed: the
      canonical explorer only digests protocols whose traits promise locals
      carry nothing beyond the hashed components.  Meaningful at [`Choices]
      and [`Done] points; equal digests identify equal configurations up to
      63-bit hash collisions (the standard hash-compaction caveat,
      docs/EXPLORATION.md).  Stable across {!snapshot}/{!restore}. *)

  type snapshot

  val snapshot : t -> snapshot
  (** O(n) copy of the mutable state; the board is captured by length only
      (it is append-only between snapshot and restore). *)

  val restore : t -> snapshot -> unit
  (** Rewind to [snapshot] — including an open choice, and {e un}-finishing
      a completed execution, which is what depth-first exploration does at
      every backtrack.  Only valid with snapshots taken from the same
      machine. *)
end
