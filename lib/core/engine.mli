(** Round-based interpreter for whiteboard protocols.

    Operational semantics (one round):
    + nodes whose message appears on the board become [terminated];
    + the {e write candidates} are the nodes already active at the start of
      the round (a node never activates and writes in the same round, per
      the paper's successor-configuration rule);
    + awake nodes may activate — all of them in round one under simultaneous
      models, by [wants_to_activate] otherwise; in frozen models the
      activating node composes its message now, from the current board, and
      the message never changes;
    + in synchronous models every candidate recomposes its message from the
      current board;
    + the adversary picks one candidate and its current message is appended.

    The run succeeds when all [n] messages are on the board, and deadlocks
    when no candidate exists and no awake node activates.

    {b Observability.}  With [?trace] attached the engine emits the full
    {!Wb_obs.Event} stream (round starts, activations, every composition,
    adversary picks, writes, deadlock, run end); with it omitted no event is
    ever constructed.  A handful of process-global {!Wb_obs.Metrics} are
    always maintained ([engine.*]: runs, rounds, writes, recompositions,
    candidate-set sizes, board bits, deadlocks, explore executions). *)

type outcome =
  | Success of Answer.t
  | Deadlock  (** corrupted final configuration: non-terminated nodes remain. *)
  | Size_violation of { node : int; bits : int; bound : int }
  | Output_error of string  (** the output function raised. *)

type stats = { rounds : int; max_message_bits : int; total_bits : int }

type run = {
  outcome : outcome;
  writes : int array;  (** authors in write order. *)
  stats : stats;
  activation_round : int array;  (** -1 when the node never activated. *)
  write_round : int array;  (** -1 when the node never wrote. *)
  message_bits : int array;  (** payload size per node; -1 when unwritten. *)
  compose_count : int array;
      (** compositions per node: 1 for every writing node in frozen models;
          in synchronous models, the rounds it spent as a candidate. *)
  board : Board.t;
      (** The final whiteboard — what the networked referee serves and the
          differential checks compare.  In [run] this is the execution's own
          board; in [explore] it aliases the {e live} backtracking board, so
          it is only meaningful inside the check callback. *)
}

val default_max_rounds : int -> int
(** [2n + 8] — any legal execution fits; exceeding it counts as deadlock.
    Shared with the networked referee ({!Wb_net.Session}) so local and
    remote runs agree on the cutoff. *)

val succeeded : run -> bool
val answer : run -> Answer.t option

val outcome_tag : outcome -> string
(** The wire name used in {!Wb_obs.Event.Run_end}: ["success"],
    ["deadlock"], ["size_violation"] or ["output_error"]. *)

val outcome_equal : outcome -> outcome -> bool
(** Structural, via {!Answer.equal} — what the benches and differential
    checks compare with instead of polymorphic [=] (answers may carry
    graphs and big naturals). *)

val stats_equal : stats -> stats -> bool

module Make (P : Protocol.S) : sig
  val run : ?max_rounds:int -> ?trace:Wb_obs.Trace.t -> Wb_graph.Graph.t -> Adversary.t -> run
  (** Execute under one adversary.  [max_rounds] defaults to [2n + 8]
      (any legal execution fits; exceeding it is reported as [Deadlock]).
      [trace] receives the execution's event stream; the sink is {e not}
      closed — the caller owns it. *)

  val explore :
    ?limit:int -> ?trace:Wb_obs.Trace.t -> Wb_graph.Graph.t -> (run -> bool) -> bool * int
  (** [explore g check] enumerates {e every} adversarial schedule, calling
      [check] on each complete execution.  Returns [(all passed, number of
      executions)].  [trace] observes the depth-first event stream — shared
      schedule prefixes are {e not} replayed, so consecutive [Run_end]
      windows are deltas; wrap the sink in {!Wb_obs.Trace.sample} to keep
      every k-th window.  @raise Failure when more than [limit] (default
      10^6) executions would be visited. *)
end

val run_packed :
  ?max_rounds:int -> ?trace:Wb_obs.Trace.t -> Protocol.t -> Wb_graph.Graph.t -> Adversary.t -> run

val explore_packed :
  ?limit:int -> ?trace:Wb_obs.Trace.t -> Protocol.t -> Wb_graph.Graph.t -> (run -> bool) -> bool * int
