(** Drivers for the round-based execution kernel ({!Machine}).

    The operational semantics — rounds, activation, frozen vs synchronous
    composition, write candidates, deadlock — live in {!Machine}; this
    module adapts a {!Protocol.S} onto the kernel's hook signature and
    provides the three in-process driving disciplines:

    - {!Make.run} — one execution under one {!Adversary.t};
    - {!Make.explore} — depth-first enumeration of {e every} adversarial
      schedule, backtracking over a single live machine;
    - {!Make.explore_par} — the same enumeration split over multicore
      workers ([Domain.spawn]) scheduled by per-domain work-stealing deques
      ({!Wb_support.Deque}), with a verdict and execution count that are
      deterministic in the number of workers;
    - {!Make.verify} — canonical-state exploration: configuration dedup
      ({!Machine.Make.digest} memoised in a lock-free {!Wb_support.Cset})
      and symmetry reduction ({!Wb_graph.Auto}), sound under the protocol's
      declared {!Protocol.Traits}, falling back to enumeration otherwise.

    The networked referee ([Wb_net.Session]) is the fourth consumer of the
    same kernel; it adds transport and fault handling but no semantics.

    {b Observability.}  With [?trace] attached the kernel emits the full
    {!Wb_obs.Event} stream (round starts, activations, every composition,
    adversary picks, writes, deadlock, run end); with it omitted no event
    is ever constructed.  A handful of process-global {!Wb_obs.Metrics} are
    always maintained ([engine.*]: runs, rounds, writes, recompositions,
    candidate-set sizes, board bits, deadlocks, explore executions). *)

type outcome = Machine.outcome =
  | Success of Answer.t
  | Deadlock  (** corrupted final configuration: non-terminated nodes remain. *)
  | Size_violation of { node : int; bits : int; bound : int }
  | Output_error of string  (** the output function raised. *)

type stats = Machine.stats = { rounds : int; max_message_bits : int; total_bits : int }

type run = Machine.run = {
  outcome : outcome;
  writes : int array;  (** authors in write order. *)
  stats : stats;
  activation_round : int array;  (** -1 when the node never activated. *)
  write_round : int array;  (** -1 when the node never wrote. *)
  message_bits : int array;  (** payload size per node; -1 when unwritten. *)
  compose_count : int array;
      (** compositions per node: 1 for every writing node in frozen models;
          in synchronous models, the rounds it spent as a candidate. *)
  board : Board.t;
      (** The final whiteboard — what the networked referee serves and the
          differential checks compare.  In [run] this is the execution's own
          board; in [explore] it aliases the {e live} backtracking board, so
          it is only meaningful inside the check callback. *)
}

val default_max_rounds : int -> int
(** [2n + 8] — any legal execution fits; exceeding it counts as deadlock.
    Shared with the networked referee ({!Wb_net.Session}) so local and
    remote runs agree on the cutoff. *)

val succeeded : run -> bool
val answer : run -> Answer.t option

val outcome_tag : outcome -> string
(** The wire name used in {!Wb_obs.Event.Run_end}: ["success"],
    ["deadlock"], ["size_violation"] or ["output_error"]. *)

val outcome_equal : outcome -> outcome -> bool
(** Structural, via {!Answer.equal} — what the benches and differential
    checks compare with instead of polymorphic [=] (answers may carry
    graphs and big naturals). *)

val stats_equal : stats -> stats -> bool

type verification = {
  valid : bool;  (** every checked execution passed. *)
  states : int;
      (** distinct interior (choice-point) configurations claimed; [0] in
          enumerative fallback mode. *)
  finals : int;
      (** distinct final configurations checked (canonical mode) or complete
          executions enumerated (fallback). *)
  dedup_hits : int;  (** schedule prefixes merged into already-visited configurations. *)
  orbit_collapses : int;  (** candidate writes pruned to symmetry-orbit representatives. *)
  steals : int;
      (** deque steals between workers — scheduling telemetry, the one field
          that legitimately varies with [jobs] and timing. *)
  group_order : int;  (** order of the automorphism group used; [1] when symmetry was off. *)
  dedup : bool;  (** [false] iff the traits forced the enumerative fallback. *)
}
(** Result of {!Make.verify}.  All fields except [steals] are deterministic
    and independent of [jobs]. *)

module Make (P : Protocol.S) : sig
  val run :
    ?max_rounds:int ->
    ?trace:Wb_obs.Trace.t ->
    ?span:Wb_obs.Span.context ->
    Wb_graph.Graph.t ->
    Adversary.t ->
    run
  (** Execute under one adversary.  [max_rounds] defaults to [2n + 8]
      (any legal execution fits; exceeding it is reported as [Deadlock]).
      [trace] receives the execution's event stream; the sink is {e not}
      closed — the caller owns it.  [span] parents the traced run's root
      span (see {!Machine.Make.init}). *)

  val explore :
    ?limit:int ->
    ?trace:Wb_obs.Trace.t ->
    Wb_graph.Graph.t ->
    (run -> bool) ->
    (bool * int, [ `Limit of int ]) result
  (** [explore g check] enumerates {e every} adversarial schedule, calling
      [check] on each complete execution.  Returns [Ok (all passed, number
      of executions)], or [Error (`Limit limit)] when more than [limit]
      (default 10^6) executions would be visited.  Short-circuits on the
      first failing [check], so the count on a failing verdict depends on
      schedule order ({!explore_par} never short-circuits).  [trace]
      observes the depth-first event stream — shared schedule prefixes are
      {e not} replayed, so consecutive [Run_end] windows are deltas; wrap
      the sink in {!Wb_obs.Trace.sample} to keep every k-th window. *)

  val explore_exn :
    ?limit:int -> ?trace:Wb_obs.Trace.t -> Wb_graph.Graph.t -> (run -> bool) -> bool * int
  (** {!explore}, raising [Failure] on [`Limit] — for call sites that treat
      hitting the limit as a bug. *)

  val explore_par :
    ?limit:int ->
    ?shards:Wb_obs.Trace.Ring.buffer array ->
    jobs:int ->
    Wb_graph.Graph.t ->
    (run -> bool) ->
    (bool * int, [ `Limit of int ]) result
  (** {!explore} fanned out over [jobs] domains: the schedule tree is split
      into pick-prefix work items (breadth-first, in the main domain), each
      worker replays claimed prefixes on its own fresh machine and walks
      the subtree exhaustively.  The verdict and the execution count are
      independent of [jobs] because workers never short-circuit — on an
      all-pass tree the count equals {!explore}'s; on a failing tree it is
      the full tree size, where {!explore} stops early.  [check] runs
      concurrently from several domains and must be domain-safe (the
      differential predicates here are pure).

      Instead of a shared [?trace] (interleaved worker events have no
      meaningful order), [shards] gives each worker its own flight-recorder
      ring: worker [k] streams into [shards.(k)] under a per-domain
      ["worker"] root span (attr ["domain"]), with every replayed
      execution's ["run"] span a child of it — stitch the shards into one
      Catapult file with {!Wb_obs.Chrome.merge}.  The sequential
      prefix-expansion phase is untraced (its completions belong to no
      worker).  [Error (`Limit _)] is returned iff the tree exceeds
      [limit], independent of [jobs].
      @raise Invalid_argument when [jobs < 1] or when [shards] is given
      with length [<> jobs]. *)

  val verify :
    ?limit:int ->
    ?symmetry:bool ->
    ?jobs:int ->
    Wb_graph.Graph.t ->
    (run -> bool) ->
    (verification, [ `Limit of int ]) result
  (** Canonical exploration: enumerate {e configurations} instead of
      schedules.  When the protocol's {!Protocol.Traits} declare confluence
      on [g], schedule prefixes reaching the same {!Machine.Make.digest} are
      merged through a shared lock-free visited table; when they further
      declare a symmetry promise and [symmetry] is [true] (default), a
      sequential first phase prunes candidate writes to stabilizer-orbit
      representatives of [Aut(g)] (prefix lex-leader with explicit
      stabilizer chains) before the remaining subtrees are fanned out over
      [jobs] work-stealing workers.  Without a confluence promise on [g]
      the call degrades to {!explore_par} and reports [dedup = false].

      [check] must be domain-safe, must factor through the configuration it
      is given (two executions reaching the same final configuration get at
      most one [check] call between them), and — when symmetry applies —
      must be automorphism-invariant, which every graph-property
      differential here is.

      [limit] (default [250_000]) bounds {e distinct configurations} in
      canonical mode (executions in fallback mode); exceeding it returns
      [Error (`Limit _)] deterministically.  All result fields except
      [steals] are independent of [jobs]: a configuration is claimed at
      discovery, so the claimed set is the reachability closure of the
      pruned tree regardless of worker scheduling.
      @raise Invalid_argument when [jobs < 1]. *)
end

val run_packed :
  ?max_rounds:int ->
  ?trace:Wb_obs.Trace.t ->
  ?span:Wb_obs.Span.context ->
  Protocol.t ->
  Wb_graph.Graph.t ->
  Adversary.t ->
  run

val explore_packed :
  ?limit:int ->
  ?trace:Wb_obs.Trace.t ->
  Protocol.t ->
  Wb_graph.Graph.t ->
  (run -> bool) ->
  (bool * int, [ `Limit of int ]) result

val explore_packed_exn :
  ?limit:int -> ?trace:Wb_obs.Trace.t -> Protocol.t -> Wb_graph.Graph.t -> (run -> bool) -> bool * int

val explore_par_packed :
  ?limit:int ->
  ?shards:Wb_obs.Trace.Ring.buffer array ->
  jobs:int ->
  Protocol.t ->
  Wb_graph.Graph.t ->
  (run -> bool) ->
  (bool * int, [ `Limit of int ]) result

val verify_packed :
  ?limit:int ->
  ?symmetry:bool ->
  ?jobs:int ->
  Protocol.t ->
  Wb_graph.Graph.t ->
  (run -> bool) ->
  (verification, [ `Limit of int ]) result
