type t = { author : int; payload : bool array }

let make ~author ~payload = { author; payload }

let author m = m.author

let payload m = m.payload

let size_bits m = Array.length m.payload

let equal a b = a.author = b.author && a.payload = b.payload

let reader m = Wb_support.Bitbuf.Reader.of_bits m.payload

let of_writer ~author w = { author; payload = Wb_support.Bitbuf.Writer.contents w }

let pp ppf m =
  Format.fprintf ppf "#%d:" (m.author + 1);
  Array.iter (fun b -> Format.pp_print_char ppf (if b then '1' else '0')) m.payload
