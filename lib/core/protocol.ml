module Traits = struct
  type t = {
    confluent : Wb_graph.Graph.t -> bool;
    symmetry_fixed : (Wb_graph.Graph.t -> int list) option;
  }

  let opaque = { confluent = (fun _ -> false); symmetry_fixed = None }

  let canonical ?symmetry_fixed () = { confluent = (fun _ -> true); symmetry_fixed }

  let canonical_when ?symmetry_fixed confluent = { confluent; symmetry_fixed }
end

module type S = sig
  val name : string
  val model : Model.t
  val message_bound : n:int -> int
  val traits : Traits.t

  type local

  val init : View.t -> local
  val wants_to_activate : View.t -> Board.t -> local -> bool
  val compose : View.t -> Board.t -> local -> Wb_support.Bitbuf.Writer.t * local
  val output : n:int -> Board.t -> Answer.t
end

type t = (module S)

let name (module P : S) = P.name

let model (module P : S) = P.model

let traits (module P : S) = P.traits
