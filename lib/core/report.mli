(** Human-readable execution timelines: which nodes activated, composed and
    wrote in each round, with message sizes — the debugging view of a run.

    Rendering goes through the {!Wb_obs.Event} vocabulary: a finished run
    record is first lifted back to its canonical event skeleton
    ({!events_of_run}), and the same renderer ({!timeline_of_events}) serves
    live traces captured with the engine's [?trace] sink — so the printed
    timeline and the machine-readable trace can never disagree.  In
    particular a deadlocked run prints its detection round, matching the
    round count in {!summary} (free models detect deadlock in the first
    round where nothing activates and no candidate remains). *)

val timeline : Engine.run -> string
(** [summary] line followed by the round-by-round record-derived timeline
    (activations and writes; composes and adversary picks need a live
    trace). *)

val timeline_of_events : ?n:int -> Wb_obs.Event.t list -> string
(** Render any event stream (e.g. collected via {!Wb_obs.Trace.collector}).
    With [?n], nodes that never wrote are listed on a final line. *)

val events_of_run : Engine.run -> Wb_obs.Event.t list
(** The canonical event skeleton of a finished run: [Activate] and [Write]
    events in round order (with cumulative board bits),
    [Deadlock_detected] when the run deadlocked, and a final [Run_end]. *)

val summary : Engine.run -> string
(** One line: outcome, rounds, bits. *)

val pp : Format.formatter -> Engine.run -> unit
