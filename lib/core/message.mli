(** A whiteboard message: the author's node index plus a bit-exact payload.

    The author index is part of the board bookkeeping (the paper's messages
    conventionally begin with [ID(v)], and every lower bound counts it);
    payload sizes are measured in bits and charged against the protocol's
    [f(n)] bound. *)

type t

val make : author:int -> payload:bool array -> t
val author : t -> int
val payload : t -> bool array
val size_bits : t -> int
val equal : t -> t -> bool
val reader : t -> Wb_support.Bitbuf.Reader.t
(** Fresh reader over the payload. *)

val of_writer : author:int -> Wb_support.Bitbuf.Writer.t -> t
val pp : Format.formatter -> t -> unit
