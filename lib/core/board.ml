module Dynarray = Wb_support.Dynarray

type t = {
  size : int;
  messages : Message.t Dynarray.t;
  by_author : int array; (* -1 = absent *)
  mutable gen : int;
}

let create size =
  if size < 0 then invalid_arg "Board.create";
  { size; messages = Dynarray.create (); by_author = Array.make size (-1); gen = 0 }

let n b = b.size

let length b = Dynarray.length b.messages

let get b i = Dynarray.get b.messages i

let find_author b v =
  if v < 0 || v >= b.size then invalid_arg "Board.find_author";
  if b.by_author.(v) < 0 then None else Some (get b b.by_author.(v))

let has_author b v = Option.is_some (find_author b v)

let last b = if length b = 0 then None else Some (Dynarray.last b.messages)

let iter f b = Dynarray.iter f b.messages

let fold f init b = Dynarray.fold_left f init b.messages

let to_list b = Dynarray.to_list b.messages

let authors_in_order b = Array.map Message.author (Dynarray.to_array b.messages)

let append b m =
  let a = Message.author m in
  if a < 0 || a >= b.size then invalid_arg "Board.append: author out of range";
  if b.by_author.(a) >= 0 then invalid_arg "Board.append: author already wrote";
  b.by_author.(a) <- length b;
  Dynarray.push b.messages m

let snapshot_length = length

let truncate b len =
  b.gen <- b.gen + 1;
  while length b > len do
    let m = Dynarray.pop b.messages in
    b.by_author.(Message.author m) <- -1
  done

let generation b = b.gen

let equal a b =
  a.size = b.size
  && length a = length b
  && (let same = ref true in
      for i = 0 to length a - 1 do
        if not (Message.equal (get a i) (get b i)) then same := false
      done;
      !same)

let total_bits b = fold (fun acc m -> acc + Message.size_bits m) 0 b

let max_message_bits b = fold (fun acc m -> max acc (Message.size_bits m)) 0 b

let pp ppf b =
  Format.fprintf ppf "@[<v>board (%d/%d):@," (length b) b.size;
  iter (fun m -> Format.fprintf ppf "  %a@," Message.pp m) b;
  Format.fprintf ppf "@]"
