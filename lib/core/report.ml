module Obs = Wb_obs

let compact_answer = function
  | Answer.Graph g ->
    Printf.sprintf "graph(%d nodes, %d edges)" (Wb_graph.Graph.n g) (Wb_graph.Graph.num_edges g)
  | Answer.Bool b -> string_of_bool b
  | Answer.Node_set s -> Printf.sprintf "node-set(%d)" (List.length s)
  | Answer.Forest _ -> "forest"
  | Answer.Edge_set es -> Printf.sprintf "edge-set(%d)" (List.length es)
  | Answer.Reject -> "reject"

let outcome_line (run : Engine.run) =
  match run.Engine.outcome with
  | Engine.Success a -> "success: " ^ compact_answer a
  | Engine.Deadlock -> "deadlock (corrupted final configuration)"
  | Engine.Size_violation { node; bits; bound } ->
    Printf.sprintf "size violation: node %d wrote %d bits (bound %d)" (node + 1) bits bound
  | Engine.Output_error e -> "output error: " ^ e

let summary (run : Engine.run) =
  Printf.sprintf "%s | %d rounds, %d writes, max %d bits, total %d bits" (outcome_line run)
    run.Engine.stats.rounds (Array.length run.Engine.writes) run.Engine.stats.max_message_bits
    run.Engine.stats.total_bits

(* Reconstruct the canonical event skeleton of a finished run.  Composition
   and adversary events need live observation ([?trace] on the engine) —
   they are not recoverable from the record — but activations, writes,
   deadlock and the end-of-run are, and in exactly the shape a live sink
   would have seen, which makes the event stream the single rendering path
   for both. *)
let events_of_run (run : Engine.run) =
  let n = Array.length run.Engine.activation_round in
  let events = ref [] in
  let push e = events := e :: !events in
  (* Board bits accumulate in write order. *)
  let board_after = Hashtbl.create n in
  let acc = ref 0 in
  Array.iter
    (fun v ->
      acc := !acc + max 0 run.Engine.message_bits.(v);
      Hashtbl.replace board_after v !acc)
    run.Engine.writes;
  for round = 1 to run.Engine.stats.rounds do
    for v = 0 to n - 1 do
      if run.Engine.activation_round.(v) = round then push (Obs.Event.Activate { node = v; round })
    done;
    for v = 0 to n - 1 do
      if run.Engine.write_round.(v) = round then
        push
          (Obs.Event.Write
             { node = v;
               round;
               bits = run.Engine.message_bits.(v);
               board_bits = (match Hashtbl.find_opt board_after v with Some b -> b | None -> 0) })
    done
  done;
  let final = run.Engine.stats.rounds in
  (match run.Engine.outcome with
  | Engine.Deadlock -> push (Obs.Event.Deadlock_detected { round = final })
  | _ -> ());
  push (Obs.Event.Run_end { round = final; outcome = Engine.outcome_tag run.Engine.outcome });
  List.rev !events

let node_list nodes = String.concat "," (List.map (fun v -> string_of_int (v + 1)) nodes)

let timeline_of_events ?n events =
  let buf = Buffer.create 256 in
  (* Group by round, preserving intra-round order. *)
  let rounds = Hashtbl.create 32 in
  let max_round = ref 0 in
  List.iter
    (fun ev ->
      let r = Obs.Event.round ev in
      max_round := max !max_round r;
      Hashtbl.replace rounds r
        (ev :: (match Hashtbl.find_opt rounds r with Some l -> l | None -> [])))
    events;
  let writers = ref [] in
  for round = 1 to !max_round do
    let evs = List.rev (match Hashtbl.find_opt rounds round with Some l -> l | None -> []) in
    let activated = List.filter_map (function Obs.Event.Activate { node; _ } -> Some node | _ -> None) evs in
    let composed = List.filter_map (function Obs.Event.Compose { node; _ } -> Some node | _ -> None) evs in
    let picks =
      List.filter_map
        (function Obs.Event.Adversary_pick { node; candidates; _ } -> Some (node, candidates) | _ -> None)
        evs
    in
    let wrote =
      List.filter_map (function Obs.Event.Write { node; bits; _ } -> Some (node, bits) | _ -> None) evs
    in
    let deadlocked = List.exists (function Obs.Event.Deadlock_detected _ -> true | _ -> false) evs in
    writers := List.rev_append (List.map fst wrote) !writers;
    if activated <> [] || composed <> [] || picks <> [] || wrote <> [] || deadlocked then begin
      Buffer.add_string buf (Printf.sprintf "round %3d:" round);
      if activated <> [] then Buffer.add_string buf (" activate " ^ node_list activated);
      if composed <> [] then Buffer.add_string buf (" compose " ^ node_list composed);
      List.iter
        (fun (v, candidates) ->
          Buffer.add_string buf
            (Printf.sprintf " pick %d/{%s}" (v + 1) (node_list candidates)))
        picks;
      List.iter
        (fun (v, bits) -> Buffer.add_string buf (Printf.sprintf " write %d (%d bits)" (v + 1) bits))
        wrote;
      if deadlocked then Buffer.add_string buf " DEADLOCK";
      Buffer.add_char buf '\n'
    end
  done;
  (match n with
  | None -> ()
  | Some n ->
    let silent = List.filter (fun v -> not (List.mem v !writers)) (List.init n Fun.id) in
    if silent <> [] then Buffer.add_string buf ("never wrote: " ^ node_list silent ^ "\n"));
  Buffer.contents buf

let timeline (run : Engine.run) =
  summary run ^ "\n"
  ^ timeline_of_events ~n:(Array.length run.Engine.activation_round) (events_of_run run)

let pp ppf run = Format.pp_print_string ppf (timeline run)
