module Obs = Wb_obs

type fault = Timeout | Closed | Bad_frame of Wire.error

module Metrics = struct
  let connections = Obs.Metrics.counter ~help:"connections accepted by referee servers" "net.connections"
  let frames_sent = Obs.Metrics.counter ~help:"wire frames sent" "net.frames_sent"
  let frames_received = Obs.Metrics.counter ~help:"wire frames received" "net.frames_received"
  let bytes_sent = Obs.Metrics.counter ~help:"wire bytes sent (header + body)" "net.bytes_sent"
  let bytes_received = Obs.Metrics.counter ~help:"wire bytes received" "net.bytes_received"

  let malformed_frames =
    Obs.Metrics.counter ~help:"frames rejected as malformed or oversized" "net.malformed_frames"

  let timeouts = Obs.Metrics.counter ~help:"reads that exceeded the connection timeout" "net.timeouts"
  let disconnects = Obs.Metrics.counter ~help:"connections lost before RUN-END" "net.disconnects"
end

(* Per-connection byte totals, filled in by the transport closures (which
   are built before the record exists) and read by the session layer to
   correlate wire traffic with the board bits it carried. *)
type stats = { mutable sent_bytes : int; mutable recv_bytes : int }

type t = {
  peer_name : string;
  send_fn : Obs.Span.context option -> Wire.frame -> (unit, fault) result;
  recv_fn : unit -> (Wire.frame * Obs.Span.context option, fault) result;
  close_fn : unit -> unit;
  stats : stats;
  mutable closed : bool;
}

let peer c = c.peer_name

let fresh_stats () = { sent_bytes = 0; recv_bytes = 0 }

let make_ctx_with ~stats ~peer ~send ~recv ~close =
  { peer_name = peer; send_fn = send; recv_fn = recv; close_fn = close; stats; closed = false }

let make_ctx ~peer ~send ~recv ~close =
  make_ctx_with ~stats:(fresh_stats ()) ~peer ~send ~recv ~close

(* Context-blind assembly for fault-injection tests: outgoing contexts are
   dropped, incoming frames carry none. *)
let make ~peer ~send ~recv ~close =
  make_ctx ~peer
    ~send:(fun _ctx frame -> send frame)
    ~recv:(fun () -> Result.map (fun f -> (f, None)) (recv ()))
    ~close

let note_fault = function
  | Timeout -> Obs.Metrics.incr Metrics.timeouts
  | Closed -> Obs.Metrics.incr Metrics.disconnects
  | Bad_frame _ -> Obs.Metrics.incr Metrics.malformed_frames

let send ?ctx c frame =
  if c.closed then Error Closed
  else
    match c.send_fn ctx frame with
    | Ok () ->
      Obs.Metrics.incr Metrics.frames_sent;
      Ok ()
    | Error f ->
      note_fault f;
      Error f

let recv_ctx c =
  if c.closed then Error Closed
  else
    match c.recv_fn () with
    | Ok pair ->
      Obs.Metrics.incr Metrics.frames_received;
      Ok pair
    | Error f ->
      note_fault f;
      Error f

let recv c = Result.map fst (recv_ctx c)

let close c =
  if not c.closed then begin
    c.closed <- true;
    c.close_fn ()
  end

let is_closed c = c.closed

let bytes_sent c = c.stats.sent_bytes

let bytes_received c = c.stats.recv_bytes

let fault_to_string = function
  | Timeout -> "read timeout"
  | Closed -> "connection closed"
  | Bad_frame e -> Wire.error_to_string e

(* ---- socket transport ------------------------------------------------- *)

let rec write_all fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    write_all fd buf (off + n) (len - n)
  end

(* Read exactly [len] bytes; [`Eof] on a clean close at a frame boundary
   is still reported as [Closed] by the caller. *)
let read_exact fd buf len =
  let got = ref 0 in
  let status = ref `Ok in
  while !status = `Ok && !got < len do
    match Unix.read fd buf !got (len - !got) with
    | 0 -> status := `Eof
    | n -> got := !got + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> status := `Timeout
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> status := `Eof
  done;
  !status

(* A peer that vanishes turns our next write into SIGPIPE, which would kill
   the whole referee; writes must fail with EPIPE (reported as [Closed])
   instead.  Installed on first socket use so non-network users of the
   library keep their signal disposition; the once-only is an Atomic
   exchange, not a [lazy] — per-connection threads racing the first force
   of a shared lazy would raise RacyLazy on OCaml 5, and [set_signal] is
   idempotent anyway. *)
let sigpipe_ignored = Atomic.make false

let ignore_sigpipe () =
  if not (Atomic.exchange sigpipe_ignored true) then
    try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let of_fd ?(timeout = 5.0) ~peer fd =
  ignore_sigpipe ();
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout with Unix.Unix_error _ -> ());
  (* The referee's sync-then-query pattern is two small back-to-back writes;
     without TCP_NODELAY, Nagle holds the second until the peer's delayed ACK
     (~40ms), which multiplies into seconds per session and trips read
     timeouts on long-idle nodes. *)
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let stats = fresh_stats () in
  let send ctx frame =
    let bytes = Wire.encode ?ctx frame in
    match write_all fd (Bytes.unsafe_of_string bytes) 0 (String.length bytes) with
    | () ->
      Obs.Metrics.add Metrics.bytes_sent (String.length bytes);
      stats.sent_bytes <- stats.sent_bytes + String.length bytes;
      Ok ()
    | exception Unix.Unix_error _ -> Error Closed
  in
  let recv () =
    let header = Bytes.create Wire.header_bytes in
    match read_exact fd header Wire.header_bytes with
    | `Eof -> Error Closed
    | `Timeout -> Error Timeout
    | `Ok -> (
      Obs.Metrics.add Metrics.bytes_received Wire.header_bytes;
      stats.recv_bytes <- stats.recv_bytes + Wire.header_bytes;
      match Wire.decode_header (Bytes.unsafe_to_string header) with
      | Error e -> Error (Bad_frame e)
      | Ok (version, body_len, crc) -> (
        let body = Bytes.create body_len in
        match read_exact fd body body_len with
        | `Eof -> Error Closed
        | `Timeout -> Error Timeout
        | `Ok -> (
          Obs.Metrics.add Metrics.bytes_received body_len;
          stats.recv_bytes <- stats.recv_bytes + body_len;
          match Wire.decode_body ~version ~crc (Bytes.unsafe_to_string body) with
          | Ok pair -> Ok pair
          | Error e -> Error (Bad_frame e))))
  in
  let close () =
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  make_ctx_with ~stats ~peer ~send ~recv ~close

(* ---- deterministic loopback ------------------------------------------- *)

exception Hangup

let loopback_served ~peer ~handler =
  let inbox = Queue.create () in
  let hung_up = ref false in
  let stats = fresh_stats () in
  let roundtrip ?ctx frame =
    let bytes = Wire.encode ?ctx frame in
    Obs.Metrics.add Metrics.bytes_sent (String.length bytes);
    Obs.Metrics.add Metrics.bytes_received (String.length bytes);
    (* every loopback frame is both sent and received by this process *)
    stats.sent_bytes <- stats.sent_bytes + String.length bytes;
    stats.recv_bytes <- stats.recv_bytes + String.length bytes;
    match Wire.decode_ctx bytes with
    | Ok pair -> pair
    | Error e -> raise (Failure ("loopback codec violation: " ^ Wire.error_to_string e))
  in
  let send ctx frame =
    if !hung_up then Error Closed
    else begin
      let frame, ctx = roundtrip ?ctx frame in
      match handler ~ctx frame with
      | replies ->
        List.iter (fun f -> Queue.push (roundtrip f) inbox) replies;
        Ok ()
      | exception Hangup ->
        hung_up := true;
        Error Closed
    end
  in
  let recv () =
    if Queue.is_empty inbox then Error Closed else Ok (Queue.pop inbox)
  in
  make_ctx_with ~stats ~peer ~send ~recv ~close:(fun () -> ())
