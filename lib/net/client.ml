module M = Wb_model
module Obs = Wb_obs

type finished = { outcome : string; detail : string; rounds : int }

type phase = Joining | Running of int | Finished of finished | Failed of string

(* The protocol's [local] type is existential, so once the view is known we
   close over it and expose just the two board-driven operations. *)
type driver = { wants : M.Board.t -> bool; compose : M.Board.t -> bool array }

type joined = {
  node : int;
  replica : M.Board.t;
  driver : driver;
  mutable generation : int option;  (* of the last BOARD-DELTA applied *)
  mutable written_at : int option;
}

type t = {
  protocol : M.Protocol.t;
  key : string;
  session : string;
  node_pref : int option;
  trace : Obs.Trace.t option;
  parent : Obs.Span.context option;
  mutable minter : Obs.Span.minter;
  mutable phase : phase;
  mutable joined : joined option;
  mutable composes : int;
}

let minter_seed parent = match parent with Some c -> c.Obs.Span.trace lxor c.Obs.Span.span | None -> 2

let create ~protocol ~key ~session ?node_pref ?trace ?parent () =
  { protocol;
    key;
    session;
    node_pref;
    trace;
    parent;
    minter = Obs.Span.minter ~seed:(minter_seed parent) ();
    phase = Joining;
    joined = None;
    composes = 0 }

let hello t = Wire.Hello { session = t.session; protocol = t.key; node_pref = t.node_pref }

let phase t = t.phase

let node_id t = Option.map (fun j -> j.node) t.joined

let board t = Option.map (fun j -> j.replica) t.joined

let composes t = t.composes

let make_driver (module P : M.Protocol.S) view =
  let local = ref (P.init view) in
  { wants = (fun board -> P.wants_to_activate view board !local);
    compose =
      (fun board ->
        let writer, l = P.compose view board !local in
        local := l;
        Wb_support.Bitbuf.Writer.contents writer) }

let fail t msg =
  t.phase <- Failed msg;
  [ Wire.Error { code = Wire.Unexpected_frame; detail = msg } ]

(* A handler span parents under the incoming RPC's context when the frame
   carries one (the referee's net.rpc.* span), falling back to the client's
   own configured parent — that link is what stitches client work into the
   driver's trace across the wire. *)
let with_span t ~ctx ~round name f =
  match t.trace with
  | None -> f ()
  | Some tr ->
    let parent = match ctx with Some _ -> ctx | None -> t.parent in
    let attrs =
      match node_id t with None -> [] | Some v -> [ ("node", string_of_int (v + 1)) ]
    in
    let sp = Obs.Span.start ?parent ~attrs ~round t.minter tr name in
    let result = f () in
    Obs.Span.finish ~round tr sp;
    result

let handle t ~ctx frame =
  match (t.phase, frame) with
  | (Finished _ | Failed _), _ -> []
  | Joining, Wire.Hello_ack { session; node; n; neighbors; bound = _ } ->
    if session <> t.session then fail t "HELLO-ACK for a different session"
    else begin
      let view = M.View.of_parts ~id:node ~n ~neighbors in
      t.joined <-
        Some
          { node;
            replica = M.Board.create n;
            driver = make_driver t.protocol view;
            generation = None;
            written_at = None };
      t.phase <- Running node;
      (* Every client of a session shares the driver's parent context, so a
         parent-derived seed alone would mint the same ids on every node;
         salt with the node id now that it is known. *)
      t.minter <-
        Obs.Span.minter ~seed:(minter_seed t.parent lxor ((node + 1) * 0x9e3779b9)) ();
      []
    end
  | Joining, Wire.Error { code; detail } ->
    t.phase <- Failed (Printf.sprintf "%s: %s" (Wire.error_code_name code) detail);
    []
  | Joining, f -> fail t ("expected HELLO-ACK, got " ^ Wire.opcode_name f)
  | Running _, Wire.Board_delta { from_pos; generation; messages } ->
    let j = Option.get t.joined in
    let stale =
      match j.generation with Some g -> g <> generation && from_pos > 0 | None -> false
    in
    if stale then fail t "board generation changed under an incremental delta"
    else if from_pos <> M.Board.length j.replica then
      fail t
        (Printf.sprintf "BOARD-DELTA from %d but replica has %d messages" from_pos
           (M.Board.length j.replica))
    else begin
      j.generation <- Some generation;
      match
        List.iter
          (fun (author, payload) ->
            M.Board.append j.replica (M.Message.make ~author ~payload))
          messages
      with
      | () -> []
      | exception Invalid_argument msg -> fail t ("invalid BOARD-DELTA: " ^ msg)
    end
  | Running _, Wire.Activate_query { round } ->
    let j = Option.get t.joined in
    with_span t ~ctx ~round "client.activate" (fun () ->
        [ Wire.Activate_reply { round; activate = j.driver.wants j.replica } ])
  | Running _, Wire.Compose_request { round } ->
    let j = Option.get t.joined in
    t.composes <- t.composes + 1;
    with_span t ~ctx ~round "client.compose" (fun () ->
        [ Wire.Compose_reply { round; payload = j.driver.compose j.replica } ])
  | Running _, Wire.Write_grant { round = _; position } ->
    (Option.get t.joined).written_at <- Some position;
    []
  | Running _, Wire.Run_end { outcome; detail; rounds } ->
    t.phase <- Finished { outcome; detail; rounds };
    []
  | Running _, Wire.Error { code; detail } ->
    t.phase <- Failed (Printf.sprintf "%s: %s" (Wire.error_code_name code) detail);
    []
  | Running _, f -> fail t ("unexpected frame while running: " ^ Wire.opcode_name f)

let run t conn =
  let finish r =
    Conn.close conn;
    r
  in
  match Conn.send ?ctx:t.parent conn (hello t) with
  | Error f -> finish (Error (Conn.fault_to_string f))
  | Ok () ->
    let rec pump () =
      match Conn.recv_ctx conn with
      | Error f -> finish (Error (Conn.fault_to_string f))
      | Ok (frame, ctx) -> (
        let replies = handle t ~ctx frame in
        let send_failure =
          List.fold_left
            (fun acc reply ->
              match acc with
              | Some _ -> acc
              | None -> (
                match Conn.send conn reply with Ok () -> None | Error f -> Some f))
            None replies
        in
        match send_failure with
        | Some f -> finish (Error (Conn.fault_to_string f))
        | None -> (
          match t.phase with
          | Finished fin -> finish (Ok fin)
          | Failed msg -> finish (Error msg)
          | Joining | Running _ -> pump ()))
    in
    pump ()
