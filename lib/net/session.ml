module M = Wb_model
module G = Wb_graph.Graph
module Obs = Wb_obs

type fault = Transport of Conn.fault | Confused of string

type config = {
  protocol : M.Protocol.t;
  graph : Wb_graph.Graph.t;
  adversary : M.Adversary.t;
  max_rounds : int option;
  trace : Obs.Trace.t option;
}

type result = { run : M.Engine.run; faults : (int * fault) list }

let fault_to_string = function
  | Transport f -> Conn.fault_to_string f
  | Confused msg -> "confused peer: " ^ msg

type status = Awake | Active | Terminated | Dead

let m_sessions = Obs.Metrics.counter ~help:"referee sessions completed" "net.sessions"

let m_outcome tag = Obs.Metrics.counter ~help:"referee sessions by outcome" ("net.sessions." ^ tag)

let m_faulted =
  Obs.Metrics.counter ~help:"referee sessions that recorded a node fault" "net.sessions.faulted"

let run cfg conns =
  let module P = (val cfg.protocol : M.Protocol.S) in
  let g = cfg.graph in
  let n = G.n g in
  if Array.length conns <> n then
    invalid_arg
      (Printf.sprintf "Session.run: %d connections for a %d-node graph" (Array.length conns) n);
  let board = M.Board.create n in
  let bound = P.message_bound ~n in
  let frozen = M.Model.frozen_at_activation P.model in
  let simultaneous = M.Model.simultaneous P.model in
  let status = Array.make n Awake in
  let memory = Array.make n None in
  let synced = Array.make n 0 in
  let activation_round = Array.make n (-1) in
  let write_round = Array.make n (-1) in
  let compose_count = Array.make n 0 in
  let faults = ref [] in
  let round = ref 0 in
  let max_rounds =
    match cfg.max_rounds with Some r -> r | None -> M.Engine.default_max_rounds n
  in
  let emit ev = match cfg.trace with None -> () | Some tr -> Obs.Trace.emit tr ev in
  let fail_node v fault =
    if status.(v) <> Dead then begin
      faults := (v, fault) :: !faults;
      status.(v) <- Dead;
      Conn.close conns.(v)
    end
  in
  let send v frame =
    match Conn.send conns.(v) frame with
    | Ok () -> true
    | Error f ->
      fail_node v (Transport f);
      false
  in
  let sync v =
    let len = M.Board.length board in
    if synced.(v) < len then begin
      let messages = ref [] in
      for i = len - 1 downto synced.(v) do
        let m = M.Board.get board i in
        messages := (M.Message.author m, M.Message.payload m) :: !messages
      done;
      if
        send v
          (Wire.Board_delta
             { from_pos = synced.(v); generation = M.Board.generation board; messages = !messages })
      then synced.(v) <- len
    end
  in
  (* One query round-trip: sync the replica, send, await the reply. *)
  let rpc v frame =
    if status.(v) = Dead then None
    else begin
      sync v;
      if status.(v) = Dead || not (send v frame) then None
      else
        match Conn.recv conns.(v) with
        | Ok reply -> Some reply
        | Error f ->
          fail_node v (Transport f);
          None
    end
  in
  let ask_activate v =
    match rpc v (Wire.Activate_query { round = !round }) with
    | None -> false
    | Some (Wire.Activate_reply { round = r; activate }) when r = !round -> activate
    | Some f ->
      fail_node v (Confused ("expected ACTIVATE reply, got " ^ Wire.opcode_name f));
      false
  in
  let compose_now v =
    match rpc v (Wire.Compose_request { round = !round }) with
    | None -> ()
    | Some (Wire.Compose_reply { round = r; payload }) when r = !round ->
      let m = M.Message.make ~author:v ~payload in
      memory.(v) <- Some m;
      compose_count.(v) <- compose_count.(v) + 1;
      emit (Obs.Event.Compose { node = v; round = !round; bits = M.Message.size_bits m })
    | Some f -> fail_node v (Confused ("expected COMPOSE reply, got " ^ Wire.opcode_name f))
  in
  (* Mirror of Engine.round_prefix, with RPCs in place of direct calls. *)
  let round_prefix () =
    incr round;
    emit (Obs.Event.Round_start { round = !round });
    for v = 0 to n - 1 do
      if status.(v) = Active && M.Board.has_author board v then status.(v) <- Terminated
    done;
    let candidates = ref [] in
    for v = n - 1 downto 0 do
      if status.(v) = Active then candidates := v :: !candidates
    done;
    let activated = ref false in
    for v = 0 to n - 1 do
      if status.(v) = Awake then begin
        let goes = if simultaneous then !round = 1 else ask_activate v in
        if goes then begin
          status.(v) <- Active;
          activation_round.(v) <- !round;
          activated := true;
          emit (Obs.Event.Activate { node = v; round = !round });
          if frozen then compose_now v
        end
      end
    done;
    if not frozen then List.iter compose_now !candidates;
    (* A node that died mid-compose has no trustworthy message: drop it from
       the adversary's menu (on fault-free runs this filter is identity). *)
    (List.filter (fun v -> status.(v) = Active && Option.is_some memory.(v)) !candidates, !activated)
  in
  let rec advance () =
    if M.Board.length board = n then `Success
    else if !round >= max_rounds then `Deadlock
    else
      match round_prefix () with
      | [], false -> `Deadlock
      | [], true -> advance ()
      | candidates, _ -> `Choices candidates
  in
  let do_write v =
    match memory.(v) with
    | None -> assert false
    | Some m ->
      M.Board.append board m;
      write_round.(v) <- !round;
      emit
        (Obs.Event.Write
           { node = v;
             round = !round;
             bits = M.Message.size_bits m;
             board_bits = M.Board.total_bits board });
      ignore (send v (Wire.Write_grant { round = !round; position = M.Board.length board - 1 }))
  in
  let check_size v =
    match memory.(v) with
    | None -> None
    | Some m ->
      let bits = M.Message.size_bits m in
      if bits > bound then Some (M.Engine.Size_violation { node = v; bits; bound }) else None
  in
  let success_outcome () =
    match P.output ~n board with
    | answer -> M.Engine.Success answer
    | exception e -> M.Engine.Output_error (Printexc.to_string e)
  in
  let finish outcome =
    let message_bits = Array.make n (-1) in
    M.Board.iter (fun m -> message_bits.(M.Message.author m) <- M.Message.size_bits m) board;
    (match outcome with
    | M.Engine.Deadlock -> emit (Obs.Event.Deadlock_detected { round = !round })
    | _ -> ());
    let tag = M.Engine.outcome_tag outcome in
    emit (Obs.Event.Run_end { round = !round; outcome = tag });
    let detail =
      match outcome with
      | M.Engine.Success a -> Format.asprintf "%a" M.Answer.pp a
      | M.Engine.Deadlock -> "corrupted final configuration"
      | M.Engine.Size_violation { node; bits; bound } ->
        Printf.sprintf "node %d wrote %d bits (bound %d)" (node + 1) bits bound
      | M.Engine.Output_error e -> e
    in
    for v = 0 to n - 1 do
      if status.(v) <> Dead then begin
        sync v;
        ignore (send v (Wire.Run_end { outcome = tag; detail; rounds = !round }));
        Conn.close conns.(v)
      end
    done;
    Obs.Metrics.incr m_sessions;
    Obs.Metrics.incr (m_outcome tag);
    if not (List.is_empty !faults) then Obs.Metrics.incr m_faulted;
    { run =
        { M.Engine.outcome;
          writes = M.Board.authors_in_order board;
          stats =
            { M.Engine.rounds = !round;
              max_message_bits = M.Board.max_message_bits board;
              total_bits = M.Board.total_bits board };
          activation_round;
          write_round;
          message_bits;
          compose_count;
          board };
      faults = List.rev !faults }
  in
  let rec loop () =
    match advance () with
    | `Success -> finish (success_outcome ())
    | `Deadlock -> finish M.Engine.Deadlock
    | `Choices candidates -> (
      let v = M.Adversary.choose cfg.adversary board candidates in
      emit (Obs.Event.Adversary_pick { node = v; round = !round; candidates });
      match check_size v with
      | Some violation -> finish violation
      | None ->
        do_write v;
        loop ())
  in
  loop ()
