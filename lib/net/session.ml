module M = Wb_model
module G = Wb_graph.Graph
module Obs = Wb_obs

type fault = Transport of Conn.fault | Confused of string

(* Where in the kernel's hook stream a node died — the coordinate a
   deterministic replay ([Wb_chaos.Replay]) needs to kill the same node at
   the same point of an in-process execution. *)
type site =
  | Hook of int  (** during its [k]-th hook invocation (activate or compose). *)
  | Post_write  (** the WRITE-GRANT after its append failed. *)
  | Teardown  (** during the final board sync / RUN-END. *)

type death = { node : int; site : site }

let site_to_string = function
  | Hook k -> Printf.sprintf "hook:%d" k
  | Post_write -> "post-write"
  | Teardown -> "teardown"

type config = {
  protocol : M.Protocol.t;
  graph : Wb_graph.Graph.t;
  adversary : M.Adversary.t;
  max_rounds : int option;
  trace : Obs.Trace.t option;
  parent : Obs.Span.context option;
}

type result = { run : M.Engine.run; faults : (int * fault) list; deaths : death list }

let fault_to_string = function
  | Transport f -> Conn.fault_to_string f
  | Confused msg -> "confused peer: " ^ msg

let m_sessions = Obs.Metrics.counter ~help:"referee sessions completed" "net.sessions"

let m_outcome tag = Obs.Metrics.counter ~help:"referee sessions by outcome" ("net.sessions." ^ tag)

let m_faulted =
  Obs.Metrics.counter ~help:"referee sessions that recorded a node fault" "net.sessions.faulted"

(* Wire-overhead accounting: board bits carried vs. wire bytes spent
   carrying them, summed over each session's connections at teardown.  The
   gauge is the last session's ratio in percent (wire bits / board bits
   x 100) — what `wbctl top` surfaces as framing+replication overhead. *)
let m_board_bits =
  Obs.Metrics.counter ~help:"board payload bits carried by referee sessions" "net.session.board_bits"

let m_wire_bytes =
  Obs.Metrics.counter ~help:"wire bytes (sent + received) across session connections"
    "net.session.wire_bytes"

let m_overhead =
  Obs.Metrics.gauge ~help:"last session wire bits per board bit, percent"
    "net.session.wire_overhead_pct"

(* RPC round-trip latency is observed unconditionally — tracing off or on —
   so `wbctl top` always has percentiles to show. *)
let m_rpc_activate =
  Obs.Metrics.histogram ~help:"ACTIVATE RPC round-trip, microseconds" "net.rpc.activate_us"

let m_rpc_compose =
  Obs.Metrics.histogram ~help:"COMPOSE RPC round-trip, microseconds" "net.rpc.compose_us"

(* The round semantics live entirely in {!Wb_model.Machine}; this module
   only supplies the transport: each kernel hook becomes an RPC to the
   connection owning that node (preceded by a BOARD-DELTA bringing its
   replica up to date), and any transport or protocol fault marks the node
   dead — in the kernel via [Machine.kill], and here so its socket is
   closed exactly once. *)
let run cfg conns =
  let module P = (val cfg.protocol : M.Protocol.S) in
  let g = cfg.graph in
  let n = G.n g in
  if Array.length conns <> n then
    invalid_arg
      (Printf.sprintf "Session.run: %d connections for a %d-node graph" (Array.length conns) n);
  let faults = ref [] in
  let dead = Array.make n false in
  let synced = Array.make n 0 in
  (* Death-site ledger: [site_now.(v)] tracks which hook invocation (or
     write grant, or teardown) node [v]'s connection is currently serving,
     so a fault is recorded with the exact kernel coordinate it hit. *)
  let deaths = ref [] in
  let hook_count = Array.make n 0 in
  let site_now = Array.make n Teardown in
  let enter_hook v =
    site_now.(v) <- Hook hook_count.(v);
    hook_count.(v) <- hook_count.(v) + 1
  in
  (* Forward reference: the hooks below must kill kernel-side, but the
     machine is built from the hooks. *)
  let kill_ref = ref (fun (_ : int) -> ()) in
  let fail_node v fault =
    if not dead.(v) then begin
      dead.(v) <- true;
      faults := (v, fault) :: !faults;
      deaths := { node = v; site = site_now.(v) } :: !deaths;
      Conn.close conns.(v);
      !kill_ref v
    end
  in
  (* Ids are minted from the parent context, so session span ids — like the
     kernel's — reproduce under the same driver trace. *)
  let minter =
    Obs.Span.minter
      ~seed:(match cfg.parent with Some c -> c.Obs.Span.trace lxor c.Obs.Span.span | None -> 1)
      ()
  in
  let session_span =
    match cfg.trace with
    | None -> None
    | Some tr ->
      Some (Obs.Span.start ?parent:cfg.parent ~attrs:[ ("n", string_of_int n) ] minter tr "session")
  in
  let session_ctx = Option.map Obs.Span.context session_span in
  let send ?ctx v frame =
    match Conn.send ?ctx conns.(v) frame with
    | Ok () -> true
    | Error f ->
      fail_node v (Transport f);
      false
  in
  let sync board v =
    let len = M.Board.length board in
    if synced.(v) < len then begin
      let messages = ref [] in
      for i = len - 1 downto synced.(v) do
        let m = M.Board.get board i in
        messages := (M.Message.author m, M.Message.payload m) :: !messages
      done;
      if
        send v
          (Wire.Board_delta
             { from_pos = synced.(v); generation = M.Board.generation board; messages = !messages })
      then synced.(v) <- len
    end
  in
  (* One query round-trip: sync the replica, send (carrying the RPC span's
     context so the client can parent its handler span under it), await the
     reply, observe the latency. *)
  let rpc ~round ~name ~hist board v frame =
    if dead.(v) then None
    else begin
      sync board v;
      if dead.(v) then None
      else begin
        let sp =
          match cfg.trace with
          | None -> None
          | Some tr ->
            Some
              ( tr,
                Obs.Span.start ?parent:session_ctx
                  ~attrs:[ ("node", string_of_int (v + 1)) ]
                  ~round minter tr name )
        in
        (* Without a session trace, forward the driver's context unchanged
           so a tracing client still joins the right trace. *)
        let ctx =
          match sp with Some (_, s) -> Some (Obs.Span.context s) | None -> cfg.parent
        in
        let t0 = Obs.Span.now_us () in
        let result =
          if not (send ?ctx v frame) then None
          else
            match Conn.recv conns.(v) with
            | Ok reply -> Some reply
            | Error f ->
              fail_node v (Transport f);
              None
        in
        Obs.Metrics.observe hist (Obs.Span.now_us () - t0);
        (match sp with Some (tr, s) -> Obs.Span.finish ~round tr s | None -> ());
        result
      end
    end
  in
  let module N = struct
    let model = P.model
    let message_bound = P.message_bound

    type local = unit

    let init _ = ()

    let wants_to_activate ~round view board () =
      let v = M.View.id view in
      enter_hook v;
      match
        rpc ~round ~name:"net.rpc.activate" ~hist:m_rpc_activate board v
          (Wire.Activate_query { round })
      with
      | None -> false
      | Some (Wire.Activate_reply { round = r; activate }) when r = round -> activate
      | Some f ->
        fail_node v (Confused ("expected ACTIVATE reply, got " ^ Wire.opcode_name f));
        false

    let compose ~round view board () =
      let v = M.View.id view in
      enter_hook v;
      match
        rpc ~round ~name:"net.rpc.compose" ~hist:m_rpc_compose board v
          (Wire.Compose_request { round })
      with
      | None -> None
      | Some (Wire.Compose_reply { round = r; payload }) when r = round ->
        Some (M.Message.make ~author:v ~payload, ())
      | Some f ->
        fail_node v (Confused ("expected COMPOSE reply, got " ^ Wire.opcode_name f));
        None

    let output = P.output
  end in
  let module Mach = M.Machine.Make (N) in
  let m = Mach.init ?max_rounds:cfg.max_rounds ?trace:cfg.trace ?span:session_ctx g in
  kill_ref := Mach.kill m;
  let rec drive () =
    match Mach.step m with
    | `Choices candidates ->
      Mach.pick m (M.Adversary.choose cfg.adversary (Mach.board m) candidates);
      drive ()
    | `Write v ->
      let board = Mach.board m in
      site_now.(v) <- Post_write;
      ignore (send v (Wire.Write_grant { round = Mach.round m; position = M.Board.length board - 1 }));
      drive ()
    | `Done run -> run
  in
  let run = drive () in
  let tag = M.Engine.outcome_tag run.M.Engine.outcome in
  let detail =
    match run.M.Engine.outcome with
    | M.Engine.Success a -> Format.asprintf "%a" M.Answer.pp a
    | M.Engine.Deadlock -> "corrupted final configuration"
    | M.Engine.Size_violation { node; bits; bound } ->
      Printf.sprintf "node %d wrote %d bits (bound %d)" (node + 1) bits bound
    | M.Engine.Output_error e -> e
  in
  for v = 0 to n - 1 do
    if not dead.(v) then begin
      site_now.(v) <- Teardown;
      sync run.M.Engine.board v;
      ignore (send v (Wire.Run_end { outcome = tag; detail; rounds = run.M.Engine.stats.rounds }));
      Conn.close conns.(v)
    end
  done;
  (match (cfg.trace, session_span) with
  | Some tr, Some s -> Obs.Span.finish ~round:run.M.Engine.stats.rounds tr s
  | _ -> ());
  Obs.Metrics.incr m_sessions;
  Obs.Metrics.incr (m_outcome tag);
  if not (List.is_empty !faults) then Obs.Metrics.incr m_faulted;
  let wire_bytes =
    Array.fold_left (fun acc c -> acc + Conn.bytes_sent c + Conn.bytes_received c) 0 conns
  in
  let board_bits = run.M.Engine.stats.total_bits in
  Obs.Metrics.add m_board_bits board_bits;
  Obs.Metrics.add m_wire_bytes wire_bytes;
  if board_bits > 0 then Obs.Metrics.set m_overhead (wire_bytes * 8 * 100 / board_bits);
  { run; faults = List.rev !faults; deaths = List.rev !deaths }
