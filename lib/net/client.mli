(** The node side of a networked whiteboard session: drives one registered
    {!Wb_model.Protocol.S} node against a remote referee.

    The client is a pure frame-in/frames-out state machine ({!handle}), so
    the deterministic loopback transport runs it inline with no threads and
    the socket loop ({!run}) is a trivial recv/handle/send pump around the
    very same code.  It keeps a local replica of the board, applied from
    BOARD-DELTA frames, and answers ACTIVATE/COMPOSE queries by running the
    protocol's [wants_to_activate]/[compose] on that replica — the referee
    never sees protocol state, only payload bits. *)

type t

type finished = { outcome : string; detail : string; rounds : int }

type phase =
  | Joining  (** HELLO sent (or pending), waiting for HELLO-ACK. *)
  | Running of int  (** joined as this node id. *)
  | Finished of finished  (** RUN-END received. *)
  | Failed of string  (** server ERROR frame or protocol confusion. *)

val create :
  protocol:Wb_model.Protocol.t ->
  key:string ->
  session:string ->
  ?node_pref:int ->
  ?trace:Wb_obs.Trace.t ->
  ?parent:Wb_obs.Span.context ->
  unit ->
  t
(** [key] is the registry key announced in HELLO (the server checks it names
    the same protocol it is refereeing).  With [trace], the client emits a
    [client.activate]/[client.compose] span per query it answers, parented
    under the incoming frame's trace context (the referee's RPC span) when
    present, else under [parent].  [parent] also rides the HELLO {!run}
    sends, telling the server which trace this session belongs to. *)

val hello : t -> Wire.frame
val handle : t -> ctx:Wb_obs.Span.context option -> Wire.frame -> Wire.frame list
(** Feed one server frame and the trace context it carried; returns the
    replies to send back (never raises on unexpected frames — the client
    moves to [Failed] and returns an ERROR frame instead). *)

val phase : t -> phase
val node_id : t -> int option
val board : t -> Wb_model.Board.t option
(** The local replica (present once joined). *)

val composes : t -> int
(** COMPOSE-requests served so far. *)

val run : t -> Conn.t -> (finished, string) result
(** Blocking driver for real transports: sends {!hello}, then pumps
    recv/handle/send until RUN-END, an ERROR frame, or a transport fault.
    Closes the connection before returning. *)
