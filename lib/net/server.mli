(** The referee server: a concurrent accept loop hosting named sessions
    over TCP.

    Each connection's first frame must be a HELLO naming a session; the
    server creates the session on first join (from the single {!spec} it
    serves), assigns the node id (the client's preference when free, the
    smallest free id otherwise), and answers HELLO-ACK with the node's
    local view.  When the [n]-th node joins, that handshake thread runs the
    {!Session} referee to completion, so independent sessions progress
    concurrently while each session stays strictly sequential (the engine's
    semantics are a sequential object).  Handshake failures — malformed
    bytes, wrong protocol key, full or running session, taken node id —
    are answered with a typed ERROR frame and a close, and never disturb
    other sessions.

    {b Observability.}  Every session's event stream (spans included) is
    teed into a fixed-capacity flight-recorder ring.  A connection whose
    first frame is TELEMETRY gets back the process metrics snapshot plus
    the newest ring events that fit one frame — this is what [wbctl top]
    and [wbctl trace --remote] poll.  The context carried by the
    roster-completing HELLO becomes the session's parent span, stitching
    the referee's spans into the driver's trace. *)

type spec = {
  key : string;  (** registry key clients must announce. *)
  protocol : Wb_model.Protocol.t;
  graph : Wb_graph.Graph.t;
  make_adversary : unit -> Wb_model.Adversary.t;
      (** fresh scheduler per session (stateful adversaries). *)
  max_rounds : int option;
  timeout : float;  (** per-connection read timeout, seconds. *)
  trace : Wb_obs.Trace.t option;
      (** extra sink teed alongside the flight-recorder ring; every
          session's events (and spans) reach both. *)
}

type t

val create : ?addr:string -> port:int -> spec -> t
(** Bind and listen ([addr] defaults to ["127.0.0.1"]; [port = 0] picks an
    ephemeral port — read it back with {!port}). *)

val port : t -> int

val serve : ?max_sessions:int -> t -> unit
(** Run the accept loop on the calling thread until {!stop} (or, with
    [max_sessions], until that many sessions have completed).  Session
    outcomes are reported through {!take_result} and the [net.*] metrics. *)

val serve_in_thread : ?max_sessions:int -> t -> Thread.t

val stop : t -> unit
(** Ask the accept loop to exit; [serve] notices within one poll tick,
    closes the listening socket itself and returns.  Safe from any thread
    at any time (it only sets a flag). *)

val take_result : t -> string -> Session.result option
(** [take_result t session] blocks until [session] completes and removes
    its result; [None] once the server has stopped without completing it. *)
