(** Lock discipline for the referee: critical sections that cannot leak.

    [with_lock m f] runs [f ()] with [m] held and releases [m] on every
    exit path, including exceptions ([Fun.protect]).  All of [wb_net]'s
    shared-state access goes through this combinator — the
    [lock-discipline] lint rule bans raw [Mutex.lock]/[Mutex.unlock]
    everywhere except this module's implementation.

    [Condition.wait] is safe inside the callback: it atomically releases
    and reacquires the same mutex, so the ownership invariant assumed by
    the final unlock still holds. *)

val with_lock : Mutex.t -> (unit -> 'a) -> 'a
