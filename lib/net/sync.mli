(** Lock discipline for the referee: critical sections that cannot leak.

    A re-export of {!Wb_support.Sync.with_lock}, kept so [wb_net] code can
    keep writing [Sync.with_lock] unqualified.  The combinator itself lives
    in the support layer because the domain-safe metrics registry
    ([wb_obs]) needs it too, and [wb_obs] cannot depend on [wb_net].

    [with_lock m f] runs [f ()] with [m] held and releases [m] on every
    exit path, including exceptions ([Fun.protect]).  All shared-state
    access goes through this combinator — the [lock-discipline] lint rule
    bans raw [Mutex.lock]/[Mutex.unlock] everywhere except the two [Sync]
    implementations.

    [Condition.wait] is safe inside the callback: it atomically releases
    and reacquires the same mutex, so the ownership invariant assumed by
    the final unlock still holds. *)

val with_lock : Mutex.t -> (unit -> 'a) -> 'a
