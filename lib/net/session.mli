(** The referee: server-side execution of one whiteboard session over an
    array of node connections.

    [run] replicates {!Wb_model.Engine}'s operational semantics exactly —
    same round structure, same activation/composition order, same deadlock
    and size-violation rules, same [max_rounds] default, same
    {!Wb_obs.Event} stream — but every [wants_to_activate]/[compose] call
    becomes an RPC to the connection owning that node, preceded by a
    BOARD-DELTA bringing its replica up to date.  On a fault-free run the
    result's {!Wb_model.Engine.run} is {e identical} to [Engine.run] under
    the same graph, adversary and protocol (the differential tests pin
    this); model semantics are enforced here, server-side — a client that
    lies about its model cannot get a second write or an oversized message
    past the referee.

    {b Failure semantics.}  A connection that times out, disconnects, or
    sends malformed/unexpected frames marks its node {e dead}: the node
    never activates again and is excluded from the candidate set, so a
    vanished node starves the run into the paper's corrupted final
    configuration — reported as [Deadlock], with the fault recorded.  The
    session itself never raises on transport behaviour. *)

type fault =
  | Transport of Conn.fault  (** timeout, disconnect, or undecodable bytes. *)
  | Confused of string  (** well-formed frame that violates the RPC state. *)

type config = {
  protocol : Wb_model.Protocol.t;
  graph : Wb_graph.Graph.t;
  adversary : Wb_model.Adversary.t;
  max_rounds : int option;  (** default {!Wb_model.Engine.default_max_rounds}. *)
  trace : Wb_obs.Trace.t option;
}

type result = {
  run : Wb_model.Engine.run;
  faults : (int * fault) list;  (** in occurrence order. *)
}

val run : config -> Conn.t array -> result
(** [run config conns] referees one session; [conns.(v)] must already be
    joined (HELLO handled by the caller) and speaks for node [v].  Every
    connection receives a final BOARD-DELTA and RUN-END, then is closed.
    @raise Invalid_argument if the connection count differs from the graph
    size. *)

val fault_to_string : fault -> string
