(** The referee: server-side execution of one whiteboard session over an
    array of node connections.

    [run] drives the {e same} execution kernel as the in-process engine —
    it instantiates {!Wb_model.Machine.Make} with hooks that turn every
    [wants_to_activate]/[compose] call into an RPC to the connection owning
    that node, preceded by a BOARD-DELTA bringing its replica up to date.
    There is no second copy of the round semantics here: round structure,
    activation/composition order, deadlock and size-violation rules, the
    [max_rounds] default and the {!Wb_obs.Event} stream all come from the
    kernel.  With a trace attached the referee opens a ["session"] span
    (child of [parent]) above the kernel's ["run"] span and one
    [net.rpc.activate]/[net.rpc.compose] span per RPC, whose context rides
    the outgoing frame; RPC round-trip latency feeds the [net.rpc.*_us]
    histograms whether or not tracing is on.  On a fault-free run the result's {!Wb_model.Engine.run} is
    {e identical} to [Engine.run] under the same graph, adversary and
    protocol (the differential tests pin this); model semantics are
    enforced kernel-side on the referee — a client that lies about its
    model cannot get a second write or an oversized message past it.

    {b Failure semantics.}  A connection that times out, disconnects, or
    sends malformed/unexpected frames marks its node {e dead}: the node
    never activates again and is excluded from the candidate set, so a
    vanished node starves the run into the paper's corrupted final
    configuration — reported as [Deadlock], with the fault recorded.  The
    session itself never raises on transport behaviour. *)

type fault =
  | Transport of Conn.fault  (** timeout, disconnect, or undecodable bytes. *)
  | Confused of string  (** well-formed frame that violates the RPC state. *)

(** Where in the kernel's hook stream a node died.  Hook invocations are
    counted per node in call order (activations and compositions in one
    sequence), so [Hook k] is a deterministic coordinate: an in-process
    replay that kills the node at its [k]-th hook ([Wb_chaos.Replay])
    reproduces the faulted execution exactly — the differential contract
    the chaos harness pins. *)
type site =
  | Hook of int  (** during its [k]-th hook invocation (activate or compose). *)
  | Post_write  (** the WRITE-GRANT after its append failed. *)
  | Teardown  (** during the final board sync / RUN-END (no kernel effect). *)

type death = { node : int; site : site }

val site_to_string : site -> string
(** ["hook:k"], ["post-write"] or ["teardown"] — the form campaign reports
    use. *)

type config = {
  protocol : Wb_model.Protocol.t;
  graph : Wb_graph.Graph.t;
  adversary : Wb_model.Adversary.t;
  max_rounds : int option;  (** default {!Wb_model.Engine.default_max_rounds}. *)
  trace : Wb_obs.Trace.t option;
  parent : Wb_obs.Span.context option;
      (** parents the session's root span (and, via the wire's version-2
          context prelude, every RPC the referee sends) under the driver's
          trace.  With [trace = None] the parent context is still forwarded
          on RPCs, so tracing clients join the right trace. *)
}

type result = {
  run : Wb_model.Engine.run;
  faults : (int * fault) list;  (** in occurrence order. *)
  deaths : death list;  (** one per faulted node, in occurrence order. *)
}

val run : config -> Conn.t array -> result
(** [run config conns] referees one session; [conns.(v)] must already be
    joined (HELLO handled by the caller) and speaks for node [v].  Every
    connection receives a final BOARD-DELTA and RUN-END, then is closed.
    @raise Invalid_argument if the connection count differs from the graph
    size. *)

val fault_to_string : fault -> string
