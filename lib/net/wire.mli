(** The versioned binary wire codec of the networked whiteboard service.

    A frame on the wire is a 9-byte header followed by a body:

    {v
    byte 0        protocol version (1 or 2; writers emit 2)
    bytes 1..4    body length in bytes, big-endian
    bytes 5..8    CRC-32 (IEEE) of the body, big-endian
    bytes 9..     body: opcode byte | u32be payload bit count | packed bits
    v}

    Payloads are encoded through {!Wb_support.Bitbuf} — naturals as
    self-delimiting Elias codes, strings as length-prefixed bytes, board
    messages as (author, bit string) pairs — so the exact bit accounting of
    whiteboard messages survives the network unchanged.  Encodings are
    canonical: the padding bits of the last packed byte are zero and the
    payload consumes every declared bit, so [decode (encode f) = Ok f] and
    any single corrupted bit yields a typed {!error}, never an exception.

    {b Version 2} prefixes the bitstream with an optional trace context —
    one presence bit, then [(trace, span)] as naturals — so every RPC can
    carry the sender's {!Wb_obs.Span.context} and the receiver's spans
    join the caller's trace.  Version-1 bodies are payload-only and still
    decode (with context [None] — the receiver roots its own spans), which
    is the old-peer compatibility contract. *)

val version : int
(** The version writers emit (2). *)

val min_version : int
(** The oldest version {!decode} accepts (1). *)

val max_frame_bytes : int
(** Upper bound on the body length accepted by {!decode} and the transport
    layer; larger frames are rejected as {!Oversized} before allocation. *)

val header_bytes : int
(** Fixed header size (9). *)

(** Session-fatal error codes carried by {!frame.Error} frames. *)
type error_code =
  | Bad_hello  (** first frame was not a well-formed HELLO. *)
  | Unknown_protocol  (** protocol key not in the server registry. *)
  | Protocol_mismatch  (** key differs from the session's protocol. *)
  | Session_busy  (** session already running or complete. *)
  | Node_taken  (** requested node id already claimed. *)
  | Unexpected_frame  (** frame valid but illegal in this state. *)
  | Malformed  (** undecodable bytes received. *)
  | Timed_out  (** peer exceeded the read timeout. *)
  | Server_error

type frame =
  | Hello of { session : string; protocol : string; node_pref : int option }
      (** client → server: join [session], speaking for one node. *)
  | Hello_ack of { session : string; node : int; n : int; neighbors : int array; bound : int }
      (** server → client: assigned node id and its local view. *)
  | Activate_query of { round : int }
      (** server → client (free models): does the node activate this round? *)
  | Activate_reply of { round : int; activate : bool }
  | Compose_request of { round : int }
      (** server → client: (re)compose the node's message from the synced board. *)
  | Compose_reply of { round : int; payload : bool array }
  | Write_grant of { round : int; position : int }
      (** server → client: your message was appended at [position]. *)
  | Board_delta of { from_pos : int; generation : int; messages : (int * bool array) list }
      (** server → client: board messages [from_pos ..], as (author, payload)
          pairs.  [generation] is {!Wb_model.Board.generation} of the source
          board; a change with [from_pos > 0] means previously synced
          positions were rewritten and the replica is invalid. *)
  | Run_end of { outcome : string; detail : string; rounds : int }
      (** server → client: session finished; [outcome] is an
          {!Wb_model.Engine.outcome_tag}. *)
  | Error of { code : error_code; detail : string }
  | Telemetry_request of { tail : int }
      (** client → server: dump metrics and the last [tail] flight-recorder
          events.  Answered on the handshake, before any HELLO — a
          monitoring probe, not a session member.  Version 2 only. *)
  | Telemetry_reply of { metrics : string; events : string list; dropped : int }
      (** server → client: [metrics] is {!Wb_obs.Metrics.dump_json} as a
          string, [events] are JSONL-encoded {!Wb_obs.Event}s (oldest
          first), [dropped] counts ring overwrites plus any tail entries
          withheld to respect {!max_frame_bytes}.  Version 2 only. *)
  | Metrics_request
      (** client → server: dump the metrics registry in OpenMetrics text
          form.  Like {!Telemetry_request}, answered on the handshake
          before any HELLO — the scrape endpoint for Prometheus-style
          tooling ([wbctl metrics --remote]).  Version 2 only. *)
  | Metrics_reply of { body : string }
      (** server → client: [body] is {!Wb_obs.Metrics.dump_openmetrics}
          output, ending in [# EOF].  Version 2 only. *)

type error =
  | Short_frame of int  (** fewer bytes than a header. *)
  | Bad_version of int
  | Oversized of int  (** declared body length above {!max_frame_bytes}. *)
  | Length_mismatch of { declared : int; actual : int }
  | Crc_mismatch
  | Unknown_opcode of int
  | Malformed_body of string

val encode : ?ctx:Wb_obs.Span.context -> frame -> string
(** Version-2 encoding; [ctx] (default none) is the trace context carried
    in the prelude.
    @raise Invalid_argument if the frame would exceed {!max_frame_bytes}
    or [ctx] holds a non-positive id. *)

val encode_v1 : frame -> string
(** Version-1 encoding (no context prelude) — what an old peer sends; the
    compatibility tests pin [decode (encode_v1 f) = Ok f].
    @raise Invalid_argument on frames that do not exist in version 1
    (TELEMETRY). *)

val decode : string -> (frame, error) result
(** Decode one complete frame (header + body, nothing trailing),
    discarding any trace context. *)

val decode_ctx : string -> (frame * Wb_obs.Span.context option, error) result
(** Like {!decode}, also yielding the trace context ([None] for version-1
    frames and version-2 frames without one). *)

val decode_header : string -> (int * int * int, error) result
(** [decode_header h] parses the {!header_bytes}-byte prefix into
    [(version, body_length, crc)], validating version and size bound — the
    streaming entry point for socket transports. *)

val decode_body :
  version:int -> crc:int -> string -> (frame * Wb_obs.Span.context option, error) result
(** Decode a body whose header declared [version] and [crc]. *)

val crc32 : string -> int

val opcode_name : frame -> string
val error_code_name : error_code -> string
val error_to_string : error -> string
val pp : Format.formatter -> frame -> unit
