module M = Wb_model
module G = Wb_graph.Graph
module Obs = Wb_obs

type spec = {
  key : string;
  protocol : M.Protocol.t;
  graph : Wb_graph.Graph.t;
  make_adversary : unit -> M.Adversary.t;
  max_rounds : int option;
  timeout : float;
  trace : Obs.Trace.t option;
}

let ring_capacity = 4096

type t = {
  spec : spec;
  fd : Unix.file_descr;
  port_no : int;
  lock : Mutex.t;
  cond : Condition.t;
  pending : (string, Conn.t option array) Hashtbl.t;
  ring : Obs.Trace.Ring.buffer;
  ring_lock : Mutex.t;
  session_sink : Obs.Trace.t;
  mutable results : (string * Session.result) list;
  mutable completed : int;
  mutable stopped : bool;
}

let create ?(addr = "127.0.0.1") ~port spec =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
  Unix.listen fd (max 16 (G.n spec.graph));
  let port_no =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> port
  in
  (* Every session streams into the flight-recorder ring (served back by
     TELEMETRY and dumped on failures); the ring itself is single-threaded,
     so the sink is serialised — sessions run on handshake threads. *)
  let ring = Obs.Trace.Ring.create ~capacity:ring_capacity in
  let ring_lock = Mutex.create () in
  let raw_ring = Obs.Trace.Ring.sink ring in
  let locked_ring =
    Obs.Trace.of_fn (fun ev -> Sync.with_lock ring_lock (fun () -> Obs.Trace.emit raw_ring ev))
  in
  let session_sink =
    match spec.trace with None -> locked_ring | Some tr -> Obs.Trace.tee [ locked_ring; tr ]
  in
  { spec;
    fd;
    port_no;
    lock = Mutex.create ();
    cond = Condition.create ();
    pending = Hashtbl.create 8;
    ring;
    ring_lock;
    session_sink;
    results = [];
    completed = 0;
    stopped = false }

let port t = t.port_no

(* [stop] must not touch the descriptor at all: a stop can be issued from a
   session thread that lingers past [serve]'s own close, by which point the
   fd number may have been reused by an unrelated socket — a delayed
   shutdown would then kill a stranger's listener.  Setting the flag is
   enough; [serve]'s poll loop notices it within one tick and closes the
   descriptor itself, the only place that ever does. *)
let stop t =
  Sync.with_lock t.lock (fun () ->
      t.stopped <- true;
      Condition.broadcast t.cond)

let take_result t name =
  Sync.with_lock t.lock (fun () ->
      let rec wait () =
        match List.assoc_opt name t.results with
        | Some r ->
          t.results <- List.remove_assoc name t.results;
          Some r
        | None ->
          if t.stopped then None
          else begin
            Condition.wait t.cond t.lock;
            wait ()
          end
      in
      wait ())

let reject conn code detail =
  ignore (Conn.send conn (Wire.Error { code; detail }));
  Conn.close conn

(* Claim a slot for [session]; the caller holds no lock.  Returns the node
   id plus, when this join completed the roster, the full connection
   array — the claimer then referees the session on its own thread. *)
let claim t ~session ~node_pref conn =
  let n = G.n t.spec.graph in
  Sync.with_lock t.lock (fun () ->
    match List.assoc_opt session t.results with
    | Some _ -> Result.Error (Wire.Session_busy, "session already completed")
    | None -> (
      let slots =
        match Hashtbl.find_opt t.pending session with
        | Some s -> s
        | None ->
          let s = Array.make n None in
          Hashtbl.add t.pending session s;
          s
      in
      let free = ref [] in
      for v = n - 1 downto 0 do
        if Option.is_none slots.(v) then free := v :: !free
      done;
      match (node_pref, !free) with
      | _, [] -> Result.Error (Wire.Session_busy, "session already full")
      | Some v, _ when v < 0 || v >= n ->
        Result.Error (Wire.Node_taken, Printf.sprintf "node %d out of range [0,%d)" v n)
      | Some v, _ when Option.is_some slots.(v) ->
        Result.Error (Wire.Node_taken, Printf.sprintf "node %d already claimed" v)
      | pref, first_free :: _ ->
        let v = match pref with Some v -> v | None -> first_free in
        slots.(v) <- Some conn;
        if Array.for_all Option.is_some slots then begin
          Hashtbl.remove t.pending session;
          Ok (v, Some (Array.map Option.get slots))
        end
        else Ok (v, None)))

let record_result t ~max_sessions session result =
  let enough =
    Sync.with_lock t.lock (fun () ->
        t.results <- (session, result) :: t.results;
        t.completed <- t.completed + 1;
        Condition.broadcast t.cond;
        match max_sessions with Some k -> t.completed >= k | None -> false)
  in
  if enough then stop t

(* Answer a TELEMETRY probe: the full metrics snapshot plus the newest ring
   events that fit the frame budget.  [dropped] counts ring overwrites plus
   any requested-but-withheld tail entries. *)
let telemetry_reply t tail =
  let metrics = Obs.Json.to_string (Obs.Metrics.dump_json ()) in
  let events, ring_dropped =
    Sync.with_lock t.ring_lock (fun () ->
        (Obs.Trace.Ring.to_list t.ring, Obs.Trace.Ring.dropped t.ring))
  in
  let total = List.length events in
  let want = min tail total in
  let newest_first =
    List.filteri (fun i _ -> i >= total - want) events
    |> List.rev_map (fun ev -> Obs.Json.to_string (Obs.Event.to_json ev))
  in
  let budget = Wire.max_frame_bytes - String.length metrics - 4096 in
  let kept, _ =
    List.fold_left
      (fun (kept, used) line ->
        let used = used + String.length line + 8 in
        if used > budget then (kept, used) else (line :: kept, used))
      ([], 0) newest_first
  in
  Wire.Telemetry_reply
    { metrics; events = kept; dropped = ring_dropped + (want - List.length kept) }

let prof_dispatch = Obs.Prof.site "server.dispatch"

(* Route one accepted connection's first decoded frame: probes are answered
   and closed, a HELLO claims its seat (and, on roster completion, runs the
   session); anything else is a typed rejection. *)
let dispatch t ~max_sessions conn frame hello_ctx =
  match (frame, hello_ctx) with
  | Wire.Telemetry_request { tail }, _ ->
    ignore (Conn.send conn (telemetry_reply t tail));
    Conn.close conn
  | Wire.Metrics_request, _ ->
    (* The Prometheus-style scrape endpoint: the whole registry in
       OpenMetrics text form, one frame, then close. *)
    ignore (Conn.send conn (Wire.Metrics_reply { body = Obs.Metrics.dump_openmetrics () }));
    Conn.close conn
  | Wire.Hello { session; protocol; node_pref }, hello_ctx ->
    if protocol <> t.spec.key then
      reject conn Wire.Protocol_mismatch
        (Printf.sprintf "this server referees %S, not %S" t.spec.key protocol)
    else begin
      match claim t ~session ~node_pref conn with
      | Result.Error (code, detail) -> reject conn code detail
      | Ok (node, completion) -> (
        let ack =
          Wire.Hello_ack
            { session;
              node;
              n = G.n t.spec.graph;
              neighbors = G.neighbors t.spec.graph node;
              bound =
                (let module P = (val t.spec.protocol : M.Protocol.S) in
                 P.message_bound ~n:(G.n t.spec.graph)) }
        in
        ignore (Conn.send conn ack);
        match completion with
        | None -> ()
        | Some conns ->
          (* The roster-completing HELLO's context parents the session span:
             a remote-run driver hands every client the same root, so any
             join's context names the same trace. *)
          let result =
            Session.run
              { Session.protocol = t.spec.protocol;
                graph = t.spec.graph;
                adversary = t.spec.make_adversary ();
                max_rounds = t.spec.max_rounds;
                trace = Some t.session_sink;
                parent = hello_ctx }
              conns
          in
          record_result t ~max_sessions session result)
    end
  | f, _ -> reject conn Wire.Bad_hello ("expected HELLO, got " ^ Wire.opcode_name f)

let handshake t ~max_sessions conn =
  match Conn.recv_ctx conn with
  | Error (Conn.Bad_frame e) -> reject conn Wire.Malformed (Wire.error_to_string e)
  | Error Conn.Timeout -> reject conn Wire.Timed_out "no HELLO before the read timeout"
  | Error Conn.Closed -> Conn.close conn
  | Ok (frame, ctx) ->
    Obs.Prof.phase prof_dispatch (fun () -> dispatch t ~max_sessions conn frame ctx)

let serve ?max_sessions t =
  let stopped () = Sync.with_lock t.lock (fun () -> t.stopped) in
  let rec loop () =
    if not (stopped ()) then begin
      match Unix.select [ t.fd ] [] [] 0.05 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
        match Unix.accept t.fd with
        | client_fd, addr ->
          Obs.Metrics.incr Conn.Metrics.connections;
          let peer =
            match addr with
            | Unix.ADDR_INET (host, p) ->
              Printf.sprintf "%s:%d" (Unix.string_of_inet_addr host) p
            | Unix.ADDR_UNIX path -> path
          in
          let conn = Conn.of_fd ~timeout:t.spec.timeout ~peer client_fd in
          ignore (Thread.create (fun () -> handshake t ~max_sessions conn) ());
          loop ()
        | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> loop ()
        | exception Unix.Unix_error (_, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (_, _, _) -> ()
    end
  in
  loop ();
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  (* Wake any take_result waiting on a session that will never finish. *)
  Sync.with_lock t.lock (fun () ->
      t.stopped <- true;
      Condition.broadcast t.cond)

let serve_in_thread ?max_sessions t = Thread.create (fun () -> serve ?max_sessions t) ()
