module Bitbuf = Wb_support.Bitbuf

let version = 2
let min_version = 1
let max_frame_bytes = 1 lsl 20
let header_bytes = 9

type error_code =
  | Bad_hello
  | Unknown_protocol
  | Protocol_mismatch
  | Session_busy
  | Node_taken
  | Unexpected_frame
  | Malformed
  | Timed_out
  | Server_error

type frame =
  | Hello of { session : string; protocol : string; node_pref : int option }
  | Hello_ack of { session : string; node : int; n : int; neighbors : int array; bound : int }
  | Activate_query of { round : int }
  | Activate_reply of { round : int; activate : bool }
  | Compose_request of { round : int }
  | Compose_reply of { round : int; payload : bool array }
  | Write_grant of { round : int; position : int }
  | Board_delta of { from_pos : int; generation : int; messages : (int * bool array) list }
  | Run_end of { outcome : string; detail : string; rounds : int }
  | Error of { code : error_code; detail : string }
  | Telemetry_request of { tail : int }
  | Telemetry_reply of { metrics : string; events : string list; dropped : int }
  | Metrics_request
  | Metrics_reply of { body : string }

type error =
  | Short_frame of int
  | Bad_version of int
  | Oversized of int
  | Length_mismatch of { declared : int; actual : int }
  | Crc_mismatch
  | Unknown_opcode of int
  | Malformed_body of string

(* ---- CRC-32 (IEEE 802.3 polynomial, reflected) ------------------------ *)

(* Built eagerly at module init (256 iterations, negligible) and published
   through an Atomic so every domain/thread reads a safely-published,
   never-again-written table.  A [lazy] here would race its first force
   under concurrent connection handlers (RacyLazy on OCaml 5). *)
let crc_table =
  Atomic.make
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Atomic.get crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter (fun ch -> c := (!c lsr 8) lxor table.((!c lxor Char.code ch) land 0xff)) s;
  !c lxor 0xFFFFFFFF

(* ---- bit-level field codecs ------------------------------------------- *)

exception Bad of string

let fail msg = raise (Bad msg)

let put_nat w v = if v < 0 then fail "negative natural" else Bitbuf.Writer.nat w v

let put_string w s =
  put_nat w (String.length s);
  String.iter (fun c -> Bitbuf.Writer.fixed w ~width:8 (Char.code c)) s

let put_bools w bits =
  put_nat w (Array.length bits);
  Array.iter (Bitbuf.Writer.bit w) bits

let get_nat r = Bitbuf.Reader.nat r

let get_string r =
  let len = get_nat r in
  if len * 8 > Bitbuf.Reader.remaining r then fail "string length overruns frame";
  String.init len (fun _ -> Char.chr (Bitbuf.Reader.fixed r ~width:8))

let get_bools r =
  let len = get_nat r in
  if len > Bitbuf.Reader.remaining r then fail "bit-string length overruns frame";
  Array.init len (fun _ -> Bitbuf.Reader.bit r)

(* ---- opcodes ---------------------------------------------------------- *)

let opcode = function
  | Hello _ -> 1
  | Hello_ack _ -> 2
  | Activate_query _ -> 3
  | Activate_reply _ -> 4
  | Compose_request _ -> 5
  | Compose_reply _ -> 6
  | Write_grant _ -> 7
  | Board_delta _ -> 8
  | Run_end _ -> 9
  | Error _ -> 10
  | Telemetry_request _ -> 11
  | Telemetry_reply _ -> 12
  | Metrics_request -> 13
  | Metrics_reply _ -> 14

let max_opcode = 14

let opcode_name = function
  | Hello _ -> "HELLO"
  | Hello_ack _ -> "HELLO-ACK"
  | Activate_query _ -> "ACTIVATE?"
  | Activate_reply _ -> "ACTIVATE"
  | Compose_request _ -> "COMPOSE?"
  | Compose_reply _ -> "COMPOSE"
  | Write_grant _ -> "WRITE-GRANT"
  | Board_delta _ -> "BOARD-DELTA"
  | Run_end _ -> "RUN-END"
  | Error _ -> "ERROR"
  | Telemetry_request _ -> "TELEMETRY?"
  | Telemetry_reply _ -> "TELEMETRY"
  | Metrics_request -> "METRICS?"
  | Metrics_reply _ -> "METRICS"

let error_code_to_int = function
  | Bad_hello -> 0
  | Unknown_protocol -> 1
  | Protocol_mismatch -> 2
  | Session_busy -> 3
  | Node_taken -> 4
  | Unexpected_frame -> 5
  | Malformed -> 6
  | Timed_out -> 7
  | Server_error -> 8

let error_code_of_int = function
  | 0 -> Bad_hello
  | 1 -> Unknown_protocol
  | 2 -> Protocol_mismatch
  | 3 -> Session_busy
  | 4 -> Node_taken
  | 5 -> Unexpected_frame
  | 6 -> Malformed
  | 7 -> Timed_out
  | 8 -> Server_error
  | n -> fail (Printf.sprintf "unknown error code %d" n)

let error_code_name = function
  | Bad_hello -> "bad-hello"
  | Unknown_protocol -> "unknown-protocol"
  | Protocol_mismatch -> "protocol-mismatch"
  | Session_busy -> "session-busy"
  | Node_taken -> "node-taken"
  | Unexpected_frame -> "unexpected-frame"
  | Malformed -> "malformed"
  | Timed_out -> "timed-out"
  | Server_error -> "server-error"

(* ---- frame payloads --------------------------------------------------- *)

let put_payload w = function
  | Hello { session; protocol; node_pref } ->
    put_string w session;
    put_string w protocol;
    (match node_pref with
    | None -> Bitbuf.Writer.bit w false
    | Some v ->
      Bitbuf.Writer.bit w true;
      put_nat w v)
  | Hello_ack { session; node; n; neighbors; bound } ->
    put_string w session;
    put_nat w node;
    put_nat w n;
    put_nat w (Array.length neighbors);
    Array.iter (put_nat w) neighbors;
    put_nat w bound
  | Activate_query { round } -> put_nat w round
  | Activate_reply { round; activate } ->
    put_nat w round;
    Bitbuf.Writer.bit w activate
  | Compose_request { round } -> put_nat w round
  | Compose_reply { round; payload } ->
    put_nat w round;
    put_bools w payload
  | Write_grant { round; position } ->
    put_nat w round;
    put_nat w position
  | Board_delta { from_pos; generation; messages } ->
    put_nat w from_pos;
    put_nat w generation;
    put_nat w (List.length messages);
    List.iter
      (fun (author, payload) ->
        put_nat w author;
        put_bools w payload)
      messages
  | Run_end { outcome; detail; rounds } ->
    put_string w outcome;
    put_string w detail;
    put_nat w rounds
  | Error { code; detail } ->
    put_nat w (error_code_to_int code);
    put_string w detail
  | Telemetry_request { tail } -> put_nat w tail
  | Telemetry_reply { metrics; events; dropped } ->
    put_string w metrics;
    put_nat w (List.length events);
    List.iter (put_string w) events;
    put_nat w dropped
  | Metrics_request -> ()
  | Metrics_reply { body } -> put_string w body

let get_payload op r =
  match op with
  | 1 ->
    let session = get_string r in
    let protocol = get_string r in
    let node_pref = if Bitbuf.Reader.bit r then Some (get_nat r) else None in
    Hello { session; protocol; node_pref }
  | 2 ->
    let session = get_string r in
    let node = get_nat r in
    let n = get_nat r in
    let deg = get_nat r in
    if deg > Bitbuf.Reader.remaining r then fail "neighbor count overruns frame";
    let neighbors = Array.init deg (fun _ -> get_nat r) in
    let bound = get_nat r in
    Hello_ack { session; node; n; neighbors; bound }
  | 3 -> Activate_query { round = get_nat r }
  | 4 ->
    let round = get_nat r in
    Activate_reply { round; activate = Bitbuf.Reader.bit r }
  | 5 -> Compose_request { round = get_nat r }
  | 6 ->
    let round = get_nat r in
    Compose_reply { round; payload = get_bools r }
  | 7 ->
    let round = get_nat r in
    Write_grant { round; position = get_nat r }
  | 8 ->
    let from_pos = get_nat r in
    let generation = get_nat r in
    let count = get_nat r in
    if count > Bitbuf.Reader.remaining r then fail "message count overruns frame";
    let messages =
      List.init count (fun _ ->
          let author = get_nat r in
          (author, get_bools r))
    in
    Board_delta { from_pos; generation; messages }
  | 9 ->
    let outcome = get_string r in
    let detail = get_string r in
    Run_end { outcome; detail; rounds = get_nat r }
  | 10 ->
    let code = error_code_of_int (get_nat r) in
    Error { code; detail = get_string r }
  | 11 -> Telemetry_request { tail = get_nat r }
  | 12 ->
    let metrics = get_string r in
    let count = get_nat r in
    if count > Bitbuf.Reader.remaining r then fail "event count overruns frame";
    let events = List.init count (fun _ -> get_string r) in
    Telemetry_reply { metrics; events; dropped = get_nat r }
  | 13 -> Metrics_request
  | 14 -> Metrics_reply { body = get_string r }
  (* The caller range-checks [op], but a decode path never asserts: if the
     guard and this table ever disagree, that is a typed error too. *)
  | op -> fail (Printf.sprintf "opcode %d has no payload decoder" op)

(* ---- framing ---------------------------------------------------------- *)

let pack_bits bits =
  let nbits = Array.length bits in
  let bytes = Bytes.make ((nbits + 7) / 8) '\000' in
  Array.iteri
    (fun i b ->
      if b then
        Bytes.set bytes (i / 8)
          (Char.chr (Char.code (Bytes.get bytes (i / 8)) lor (1 lsl (i mod 8)))))
    bits;
  Bytes.unsafe_to_string bytes

let unpack_bits nbits s =
  Array.init nbits (fun i -> Char.code s.[i / 8] land (1 lsl (i mod 8)) <> 0)

let be32 v = String.init 4 (fun i -> Char.chr ((v lsr (8 * (3 - i))) land 0xff))

let read_be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

(* The version-2 bitstream prefixes the payload with a trace-context
   prelude: one presence bit, then (trace, span) as naturals when set.
   Version-1 bodies are payload-only, so every v1 frame decodes with no
   context — the compatibility contract the old-peer tests pin. *)

let put_ctx w = function
  | None -> Bitbuf.Writer.bit w false
  | Some { Wb_obs.Span.trace; span } ->
    if trace <= 0 || span <= 0 then invalid_arg "Wire.encode: zero trace-context id";
    Bitbuf.Writer.bit w true;
    put_nat w trace;
    put_nat w span

let get_ctx r =
  if not (Bitbuf.Reader.bit r) then None
  else begin
    let trace = get_nat r in
    let span = get_nat r in
    if trace = 0 || span = 0 then fail "zero trace-context id";
    if trace lsr 48 <> 0 || span lsr 48 <> 0 then fail "trace-context id overflow";
    Some { Wb_obs.Span.trace; span }
  end

(* Profiling sites for the wire hot path (zero-cost unless Wb_obs.Prof is
   enabled). *)
let prof_encode = Wb_obs.Prof.site "wire.encode"
let prof_decode = Wb_obs.Prof.site "wire.decode"

let encode_at ~version:v ?ctx frame =
  Wb_obs.Prof.phase prof_encode (fun () ->
  if v = 1 && opcode frame > 10 then
    invalid_arg (Printf.sprintf "Wire.encode: %s frame has no version-1 encoding" (opcode_name frame));
  let w = Bitbuf.Writer.create () in
  if v >= 2 then put_ctx w ctx;
  put_payload w frame;
  let bits = Bitbuf.Writer.contents w in
  let nbits = Array.length bits in
  let body =
    Printf.sprintf "%c%s%s" (Char.chr (opcode frame)) (be32 nbits) (pack_bits bits)
  in
  if String.length body > max_frame_bytes then
    invalid_arg (Printf.sprintf "Wire.encode: %s frame exceeds %d bytes" (opcode_name frame)
                   max_frame_bytes);
  String.concat "" [ String.make 1 (Char.chr v); be32 (String.length body); be32 (crc32 body); body ])

let encode ?ctx frame = encode_at ~version ?ctx frame
let encode_v1 frame = encode_at ~version:1 frame

let decode_header s =
  if String.length s < header_bytes then Result.Error (Short_frame (String.length s))
  else begin
    let v = Char.code s.[0] in
    if v < min_version || v > version then Result.Error (Bad_version v)
    else begin
      let body_len = read_be32 s 1 in
      if body_len > max_frame_bytes then Result.Error (Oversized body_len)
      else Ok (v, body_len, read_be32 s 5)
    end
  end

let decode_body ~version:v ~crc body =
  Wb_obs.Prof.phase prof_decode (fun () ->
  if crc32 body <> crc then Result.Error Crc_mismatch
  else if String.length body < 5 then Result.Error (Malformed_body "body shorter than opcode header")
  else begin
    let op = Char.code body.[0] in
    if op < 1 || op > max_opcode || (v = 1 && op > 10) then Result.Error (Unknown_opcode op)
    else begin
      let nbits = read_be32 body 1 in
      let packed = String.length body - 5 in
      if packed <> (nbits + 7) / 8 then
        Result.Error
          (Malformed_body (Printf.sprintf "declared %d bits but %d packed bytes" nbits packed))
      else begin
        let bits = unpack_bits nbits (String.sub body 5 packed) in
        (* canonical padding: bits beyond [nbits] in the last byte are zero *)
        let padding_clear =
          nbits mod 8 = 0 || Char.code body.[String.length body - 1] lsr (nbits mod 8) = 0
        in
        if not padding_clear then Result.Error (Malformed_body "nonzero padding bits")
        else begin
          let r = Bitbuf.Reader.of_bits bits in
          match
            let ctx = if v >= 2 then get_ctx r else None in
            (get_payload op r, ctx)
          with
          | frame, ctx ->
            if Bitbuf.Reader.remaining r <> 0 then
              Result.Error
                (Malformed_body (Printf.sprintf "%d trailing bits" (Bitbuf.Reader.remaining r)))
            else Ok (frame, ctx)
          | exception Bad msg -> Result.Error (Malformed_body msg)
          | exception Bitbuf.Reader.Underflow -> Result.Error (Malformed_body "payload underflow")
          | exception Invalid_argument msg -> Result.Error (Malformed_body msg)
        end
      end
    end
  end)

let decode_ctx s =
  match decode_header s with
  | Result.Error e -> Result.Error e
  | Ok (v, body_len, crc) ->
    let actual = String.length s - header_bytes in
    if actual <> body_len then Result.Error (Length_mismatch { declared = body_len; actual })
    else decode_body ~version:v ~crc (String.sub s header_bytes body_len)

let decode s = Result.map fst (decode_ctx s)

(* ---- printing --------------------------------------------------------- *)

let error_to_string = function
  | Short_frame n -> Printf.sprintf "short frame (%d bytes)" n
  | Bad_version v -> Printf.sprintf "unsupported wire version %d" v
  | Oversized n -> Printf.sprintf "oversized frame (%d-byte body)" n
  | Length_mismatch { declared; actual } ->
    Printf.sprintf "length mismatch (declared %d, actual %d)" declared actual
  | Crc_mismatch -> "CRC mismatch"
  | Unknown_opcode op -> Printf.sprintf "unknown opcode %d" op
  | Malformed_body msg -> "malformed body: " ^ msg

let pp ppf frame =
  match frame with
  | Hello { session; protocol; node_pref } ->
    Format.fprintf ppf "HELLO session=%s protocol=%s%s" session protocol
      (match node_pref with None -> "" | Some v -> Printf.sprintf " node=%d" v)
  | Hello_ack { session; node; n; neighbors; bound } ->
    Format.fprintf ppf "HELLO-ACK session=%s node=%d n=%d degree=%d bound=%d" session node n
      (Array.length neighbors) bound
  | Activate_query { round } -> Format.fprintf ppf "ACTIVATE? round=%d" round
  | Activate_reply { round; activate } ->
    Format.fprintf ppf "ACTIVATE round=%d %b" round activate
  | Compose_request { round } -> Format.fprintf ppf "COMPOSE? round=%d" round
  | Compose_reply { round; payload } ->
    Format.fprintf ppf "COMPOSE round=%d %d bits" round (Array.length payload)
  | Write_grant { round; position } ->
    Format.fprintf ppf "WRITE-GRANT round=%d position=%d" round position
  | Board_delta { from_pos; generation; messages } ->
    Format.fprintf ppf "BOARD-DELTA from=%d gen=%d +%d messages" from_pos generation
      (List.length messages)
  | Run_end { outcome; detail = _; rounds } ->
    Format.fprintf ppf "RUN-END outcome=%s rounds=%d" outcome rounds
  | Error { code; detail } ->
    Format.fprintf ppf "ERROR %s %s" (error_code_name code) detail
  | Telemetry_request { tail } -> Format.fprintf ppf "TELEMETRY? tail=%d" tail
  | Telemetry_reply { metrics; events; dropped } ->
    Format.fprintf ppf "TELEMETRY %d metric bytes, %d events (%d dropped)"
      (String.length metrics) (List.length events) dropped
  | Metrics_request -> Format.fprintf ppf "METRICS?"
  | Metrics_reply { body } ->
    Format.fprintf ppf "METRICS %d exposition bytes" (String.length body)
