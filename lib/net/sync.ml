let with_lock = Wb_support.Sync.with_lock
