module M = Wb_model
module G = Wb_graph.Graph

let no_client_trace (_ : int) = None

let run_loopback ?trace ?parent ?(client_trace = no_client_trace) ?max_rounds
    ?(wrap = fun (_ : int) conn -> conn) ~protocol g adversary =
  let n = G.n g in
  let conns =
    Array.init n (fun v ->
        let client =
          Client.create ~protocol ~key:"loopback" ~session:"loopback" ~node_pref:v
            ?trace:(client_trace v) ?parent ()
        in
        let conn =
          Conn.loopback_served ~peer:(Printf.sprintf "node-%d" v)
            ~handler:(fun ~ctx frame -> Client.handle client ~ctx frame)
        in
        (* Handshake inline: the referee expects already-joined connections. *)
        (match
           Conn.send conn
             (Wire.Hello_ack
                { session = "loopback";
                  node = v;
                  n;
                  neighbors = G.neighbors g v;
                  bound =
                    (let module P = (val protocol : M.Protocol.S) in
                     P.message_bound ~n) })
         with
        | Ok () -> ()
        | Error f -> failwith ("loopback handshake failed: " ^ Conn.fault_to_string f));
        (* Interposers wrap after the handshake, so fault injection never
           touches session setup — sessions start joined, then misbehave. *)
        wrap v conn)
  in
  Session.run { Session.protocol; graph = g; adversary; max_rounds; trace; parent } conns

let run_socket ?(timeout = 5.0) ?max_rounds ?trace ?parent ?(client_trace = no_client_trace)
    ~key ~protocol ~graph ~make_adversary () =
  let n = G.n graph in
  let spec =
    { Server.key; protocol; graph; make_adversary; max_rounds; timeout; trace }
  in
  match Server.create ~port:0 spec with
  | exception Unix.Unix_error (err, _, _) ->
    Error ("cannot bind referee server: " ^ Unix.error_message err)
  | server ->
    let server_thread = Server.serve_in_thread ~max_sessions:1 server in
    let session = "socket-pair" in
    let join v =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", Server.port server))
      with
      | exception Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "node %d cannot connect: %s" v (Unix.error_message err))
      | () ->
        let conn = Conn.of_fd ~timeout ~peer:(Printf.sprintf "node-%d" v) fd in
        let client =
          Client.create ~protocol ~key ~session ~node_pref:v ?trace:(client_trace v) ?parent ()
        in
        (match Client.run client conn with
        | Ok _ -> Ok ()
        | Error msg -> Error (Printf.sprintf "node %d: %s" v msg))
    in
    let failures = Array.make n None in
    let threads =
      List.init n (fun v ->
          Thread.create
            (fun () ->
              match join v with Ok () -> () | Error msg -> failures.(v) <- Some msg)
            ())
    in
    List.iter Thread.join threads;
    let result = Server.take_result server session in
    Server.stop server;
    Thread.join server_thread;
    let client_failures =
      Array.to_list failures |> List.filter_map Fun.id |> String.concat "; "
    in
    (match result with
    | Some r ->
      (* Client-side failures matter only if the referee also saw a fault;
         a clean session result is authoritative. *)
      Ok r
    | None ->
      Error
        (if client_failures = "" then "server stopped without completing the session"
         else client_failures))

let diff_runs (remote : M.Engine.run) (local : M.Engine.run) =
  let issues = ref [] in
  let add fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  let outcome_desc (r : M.Engine.run) =
    match r.outcome with
    | M.Engine.Success a -> Format.asprintf "success (%a)" M.Answer.pp a
    | o -> M.Engine.outcome_tag o
  in
  (match (remote.outcome, local.outcome) with
  | M.Engine.Success a, M.Engine.Success b when M.Answer.equal a b -> ()
  | M.Engine.Deadlock, M.Engine.Deadlock -> ()
  | ( M.Engine.Size_violation { node = n1; bits = b1; bound = d1 },
      M.Engine.Size_violation { node = n2; bits = b2; bound = d2 } )
    when n1 = n2 && b1 = b2 && d1 = d2 -> ()
  | M.Engine.Output_error a, M.Engine.Output_error b when a = b -> ()
  | _ -> add "outcome: remote %s vs local %s" (outcome_desc remote) (outcome_desc local));
  if not (M.Board.equal remote.board local.board) then
    add "board contents differ (remote %d messages / %d bits, local %d messages / %d bits)"
      (M.Board.length remote.board) (M.Board.total_bits remote.board)
      (M.Board.length local.board) (M.Board.total_bits local.board);
  let int_array name a b =
    if a <> b then
      add "%s: remote [%s] vs local [%s]" name
        (String.concat " " (List.map string_of_int (Array.to_list a)))
        (String.concat " " (List.map string_of_int (Array.to_list b)))
  in
  int_array "write order" remote.writes local.writes;
  int_array "message bits" remote.message_bits local.message_bits;
  int_array "activation rounds" remote.activation_round local.activation_round;
  int_array "write rounds" remote.write_round local.write_round;
  int_array "compose counts" remote.compose_count local.compose_count;
  if not (M.Engine.stats_equal remote.stats local.stats) then
    add "stats: remote %d rounds/%d max/%d total vs local %d rounds/%d max/%d total"
      remote.stats.rounds remote.stats.max_message_bits remote.stats.total_bits
      local.stats.rounds local.stats.max_message_bits local.stats.total_bits;
  List.rev !issues
