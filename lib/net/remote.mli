(** Whole-system drivers: spin up a referee plus n node clients and run a
    session end to end, over the deterministic loopback or over real
    sockets, and check the result against the in-process engine.

    The differential contract — the reason this module exists — is that a
    fault-free networked run is {e indistinguishable} from
    {!Wb_model.Engine.run}: same board contents, same outcome, same
    per-node message bits, rounds and compose counts, under the same graph,
    seed and adversary.  {!diff_runs} spells out any divergence. *)

val run_loopback :
  ?trace:Wb_obs.Trace.t ->
  ?parent:Wb_obs.Span.context ->
  ?client_trace:(int -> Wb_obs.Trace.t option) ->
  ?max_rounds:int ->
  ?wrap:(int -> Conn.t -> Conn.t) ->
  protocol:Wb_model.Protocol.t ->
  Wb_graph.Graph.t ->
  Wb_model.Adversary.t ->
  Session.result
(** Referee and n in-process clients over {!Conn.loopback_served}: fully
    deterministic, no threads, no sockets — the transport every test uses.
    [trace] receives the referee's events and spans, [parent] roots them
    under the caller's span, and [client_trace v] (default [None]) gives
    node [v]'s client its own sink for [client.*] handler spans.
    [wrap v conn] (default identity) interposes on node [v]'s connection
    {e after} its handshake — the chaos injector's entry point: session
    setup always completes, then every frame crosses the wrapper. *)

val run_socket :
  ?timeout:float ->
  ?max_rounds:int ->
  ?trace:Wb_obs.Trace.t ->
  ?parent:Wb_obs.Span.context ->
  ?client_trace:(int -> Wb_obs.Trace.t option) ->
  key:string ->
  protocol:Wb_model.Protocol.t ->
  graph:Wb_graph.Graph.t ->
  make_adversary:(unit -> Wb_model.Adversary.t) ->
  unit ->
  (Session.result, string) result
(** One real TCP session on 127.0.0.1: starts a {!Server} on an ephemeral
    port, connects one socket client thread per node (each claiming its
    node id), joins everything and returns the referee's result.  The
    telemetry options mirror {!run_loopback}: [trace] is teed into the
    server's sessions (alongside its flight-recorder ring), and [parent]
    rides each client's HELLO so the referee parents the session span under
    the caller's trace. *)

val diff_runs : Wb_model.Engine.run -> Wb_model.Engine.run -> string list
(** [diff_runs remote local] is the list of human-readable mismatches
    (empty = identical): outcome, board contents, write order, per-node
    message bits, activation/write rounds, compose counts, round count. *)
