(** One framed, bidirectional connection to a peer, with the [net.*]
    transport metrics.

    The referee session layer and the client loop are written against this
    record, so the same code runs over real sockets ({!of_fd}) and over the
    deterministic in-process loopback ({!loopback_served}) used by every
    test that does not need the network.  All faults are typed values, never
    exceptions: a connection that times out, closes, or produces undecodable
    bytes reports it through the [result] and is dead from then on. *)

type fault =
  | Timeout  (** no complete frame within the read timeout. *)
  | Closed  (** peer disconnected (or loopback handler hung up). *)
  | Bad_frame of Wire.error  (** undecodable or oversized bytes. *)

type t

val peer : t -> string

val make :
  peer:string ->
  send:(Wire.frame -> (unit, fault) result) ->
  recv:(unit -> (Wire.frame, fault) result) ->
  close:(unit -> unit) ->
  t
(** Assemble a connection from raw operations (tests use this for fault
    injection).  Metrics wrapping is applied by {!send}/{!recv}.  Assembled
    connections are context-blind: outgoing trace contexts are dropped and
    incoming frames report none. *)

val make_ctx :
  peer:string ->
  send:(Wb_obs.Span.context option -> Wire.frame -> (unit, fault) result) ->
  recv:(unit -> (Wire.frame * Wb_obs.Span.context option, fault) result) ->
  close:(unit -> unit) ->
  t
(** Like {!make} but context-preserving: what interposing transports
    ([Wb_chaos.Inject] wrapping an inner connection) build on, so trace
    contexts keep riding the frames that survive injection. *)

val send : ?ctx:Wb_obs.Span.context -> t -> Wire.frame -> (unit, fault) result
(** [ctx] rides the version-2 frame prelude ({!Wire.encode}). *)

val recv : t -> (Wire.frame, fault) result

val recv_ctx : t -> (Wire.frame * Wb_obs.Span.context option, fault) result
(** Like {!recv}, also yielding the sender's trace context, if any. *)

val close : t -> unit
(** Idempotent. *)

val is_closed : t -> bool

val bytes_sent : t -> int
(** Wire bytes this connection has sent (header + body + prelude), as
    counted by its transport ({!of_fd} or {!loopback_served}).  Assembled
    ({!make}/{!make_ctx}) connections report zero — an interposing wrapper
    like [Wb_chaos.Inject] accounts on the inner connection it wraps. *)

val bytes_received : t -> int

val of_fd : ?timeout:float -> peer:string -> Unix.file_descr -> t
(** Socket transport.  [timeout] (default 5s) bounds every {!recv}; the
    frame length declared in a header is validated against
    {!Wire.max_frame_bytes} {e before} the body is read, so an oversized
    frame costs nothing and reports [Bad_frame (Oversized _)].  [close]
    shuts the descriptor down. *)

exception Hangup
(** A loopback handler raises this to simulate the peer vanishing
    mid-conversation; the connection then reports {!Closed}. *)

val loopback_served :
  peer:string -> handler:(ctx:Wb_obs.Span.context option -> Wire.frame -> Wire.frame list) -> t
(** Deterministic in-process transport: [send ?ctx f] encodes [f] (context
    and all), decodes it back (so the codec is on the path exactly as over
    a socket) and hands it to [handler], queueing the handler's replies —
    also round-tripped — for subsequent {!recv}s.  Single-threaded and
    scheduling-free: a [recv] with no queued reply reports [Closed] rather
    than blocking. *)

val fault_to_string : fault -> string

(** The transport metric instruments, exposed for the server layer
    ([net.connections], [net.sessions.*]) and the tests. *)
module Metrics : sig
  val connections : Wb_obs.Metrics.counter
  val frames_sent : Wb_obs.Metrics.counter
  val frames_received : Wb_obs.Metrics.counter
  val bytes_sent : Wb_obs.Metrics.counter
  val bytes_received : Wb_obs.Metrics.counter
  val malformed_frames : Wb_obs.Metrics.counter
  val timeouts : Wb_obs.Metrics.counter
  val disconnects : Wb_obs.Metrics.counter
end
