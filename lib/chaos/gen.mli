(** Seeded generator combinators over {!Wb_support.Prng}.

    A ['a t] is a function from a generator state to a value; combinators
    compose draws in a fixed left-to-right order, so any composed generator
    replays byte-identically from its seed — the property the whole chaos
    subsystem rests on.  This is the qcheck generator-composition idiom
    rebuilt on the repository's single deterministic PRNG (qcheck's own
    generators sit on [Random.State], which the determinism lint bans
    outside the exempt directories — and [lib/chaos] is deliberately not
    exempt). *)

type 'a t = Wb_support.Prng.t -> 'a

val return : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val pair : 'a t -> 'b t -> ('a * 'b) t

val int : int -> int t
(** [int bound] is uniform in [\[0, bound)]; requires [bound > 0]. *)

val in_range : int -> int -> int t
(** [in_range lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : bool t
val float01 : float t

val float_range : float -> float -> float t
(** Uniform in [\[lo, hi)]. *)

val list_of : int -> 'a t -> 'a list t
(** [list_of n g] draws [n] values in index order. *)

val oneofl : 'a list -> 'a t
(** Uniform element of a non-empty list. *)

val oneof : 'a t list -> 'a t
(** Pick one generator uniformly, then run it. *)

val weighted : ('a * int) list -> 'a t
(** Pick proportionally to the (non-negative) weights; at least one weight
    must be positive.  One draw per call — the injector's per-frame fault
    pick. *)

val subset : k:int -> int -> int list t
(** [subset ~k n] is a sorted [k]-subset of [\[0, n)] ([k] clamped to
    [\[0, n\]]). *)

val run : seed:int -> 'a t -> 'a
(** Run a generator from a fresh seed — equal seeds, equal values. *)
