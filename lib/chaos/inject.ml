(* The faulty transport: a Conn-compatible wrapper that interposes on every
   frame of an inner connection and, with plan-scheduled probability,
   injects one fault — every decision drawn from the injector's PRNG in
   frame order, so a faulted session replays byte-identically from its
   seed.

   Crash consistency is the design invariant.  The differential harness
   asserts that a faulted networked run lands in a configuration the
   in-process engine reaches under the same adversary with crashes at the
   same hook coordinates ([Replay]); that only holds if no fault can leave
   a node *live* with corrupted state.  So every destructive fault poisons
   the stream (all later operations report Closed) and surfaces within the
   same kernel hook, and the two faults that let a node linger — duplicate
   and reorder — are restricted to shapes that feed the referee only
   genuine, fresh replies until the session detects the confusion and
   kills the node:

   - referee-to-client duplicates apply only to frames that cannot make the
     client compute twice (BOARD-DELTA, WRITE-GRANT, RUN-END; a duplicated
     query would advance the client's local state twice — Byzantine, not
     crash, behaviour);
   - reordering applies only client-to-referee, by stashing a reply and
     delivering the next one first: every reply the referee *accepts* was
     honestly computed, and the stashed one is stale by the time it
     surfaces, so the round check flags it and the node dies. *)

module Obs = Wb_obs
module Prng = Wb_support.Prng
module Wire = Wb_net.Wire
module Conn = Wb_net.Conn

type op = Send | Recv

let op_name = function Send -> "send" | Recv -> "recv"

type action = Fault of Plan.kind | Disconnect

let action_name = function Fault k -> Plan.kind_name k | Disconnect -> "disconnect"

type entry = { seq : int; action : action; op : op; opcode : string; round : int; detail : string }

let entry_to_string e =
  Printf.sprintf "#%d %s %s %s r%d%s" e.seq (action_name e.action) (op_name e.op) e.opcode e.round
    (if String.equal e.detail "" then "" else " (" ^ e.detail ^ ")")

let entry_to_json e =
  Obs.Json.Obj
    [ ("seq", Obs.Json.Int e.seq);
      ("action", Obs.Json.String (action_name e.action));
      ("op", Obs.Json.String (op_name e.op));
      ("opcode", Obs.Json.String e.opcode);
      ("round", Obs.Json.Int e.round);
      ("detail", Obs.Json.String e.detail) ]

module Metrics = struct
  let injected =
    Obs.Metrics.counter ~help:"faults injected by the chaos transport" "chaos.injected"

  let of_kind =
    let mk k =
      ( k,
        Obs.Metrics.counter
          ~help:(Printf.sprintf "frames hit by an injected %s" (Plan.kind_name k))
          ("chaos.inject." ^ Plan.kind_name k) )
    in
    List.map mk Plan.all_kinds

  let disconnects =
    Obs.Metrics.counter ~help:"clients disconnected at their plan round" "chaos.inject.disconnect"

  let note = function
    | Disconnect -> Obs.Metrics.incr disconnects
    | Fault k -> (
      match List.find_opt (fun (k', _) -> Plan.kind_equal k k') of_kind with
      | Some (_, c) -> Obs.Metrics.incr c
      | None -> ())
end

type t = {
  node : int;
  rng : Prng.t;
  plan : Plan.t;
  inner : Conn.t;
  clock : unit -> int;
  mutable round : int;  (* highest round seen on any frame, either way *)
  mutable poisoned : bool;
  mutable budget : int;  (* throttle frames left before the stream stalls *)
  mutable disconnected : bool;
  pending : (Wire.frame * Obs.Span.context option) Queue.t;  (* recv-side stash *)
  mutable entries : entry list;  (* newest first *)
}

let log t = List.rev t.entries

let note t action op frame detail =
  Obs.Metrics.incr Metrics.injected;
  Metrics.note action;
  t.entries <-
    { seq = t.clock (); action; op; opcode = Wire.opcode_name frame; round = t.round; detail }
    :: t.entries

let frame_round = function
  | Wire.Activate_query { round }
  | Wire.Activate_reply { round; _ }
  | Wire.Compose_request { round }
  | Wire.Compose_reply { round; _ }
  | Wire.Write_grant { round; _ } -> Some round
  | Wire.Run_end { rounds; _ } -> Some rounds
  | Wire.Hello _ | Wire.Hello_ack _ | Wire.Board_delta _ | Wire.Error _
  | Wire.Telemetry_request _ | Wire.Telemetry_reply _ | Wire.Metrics_request
  | Wire.Metrics_reply _ -> None

let observe_round t frame =
  match frame_round frame with Some r when r > t.round -> t.round <- r | _ -> ()

(* A query makes the client compute; duplicating one would advance its
   local state twice — see the header comment. *)
let is_query = function
  | Wire.Activate_query _ | Wire.Compose_request _ -> true
  | _ -> false

(* One decision per frame: exactly one float draw, plus one weighted draw
   when the schedule fires — the fixed draw order determinism rests on. *)
let decide t =
  let p = Plan.intensity_at t.plan.Plan.intensity ~round:(max 1 t.round) in
  if Prng.float t.rng < p then Some (Gen.weighted t.plan.Plan.mix t.rng) else None

let poison t = t.poisoned <- true

let disconnect_due t =
  (not t.disconnected)
  && (match t.plan.Plan.disconnect_at with Some k -> t.round >= k | None -> false)

let fire_disconnect t op frame =
  t.disconnected <- true;
  note t Disconnect op frame (Printf.sprintf "hung up at round %d" t.round);
  poison t;
  Error Conn.Closed

(* ---- byte-level mutation (truncate / corrupt) ------------------------- *)

(* The mutated bytes never reach the peer as a frame — the loopback
   transport is frame-level — but they do go through the real codec, so
   the injector both records what the wire would have carried and checks
   the decoder holds its typed-error contract on every mutation. *)
let truncated_bytes t ?ctx frame =
  let bytes = Wire.encode ?ctx frame in
  let cut = Prng.int t.rng (String.length bytes) in
  let err =
    match Wire.decode (String.sub bytes 0 cut) with
    | Error e -> e
    | Ok _ -> Wire.Length_mismatch { declared = String.length bytes; actual = cut }
  in
  (Printf.sprintf "cut at %d/%d: %s" cut (String.length bytes) (Wire.error_to_string err), err)

let corrupted_bytes t ?ctx frame =
  let bytes = Bytes.of_string (Wire.encode ?ctx frame) in
  (* Half the time aim at the header's CRC field (bytes 5..8), else anywhere. *)
  let pos =
    if Prng.bool t.rng && Bytes.length bytes > 8 then 5 + Prng.int t.rng 4
    else Prng.int t.rng (Bytes.length bytes)
  in
  let mask = 1 + Prng.int t.rng 255 in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor mask));
  match Wire.decode (Bytes.to_string bytes) with
  | Error e ->
    (Printf.sprintf "byte %d ^ 0x%02x: %s" pos mask (Wire.error_to_string e), Some e)
  | Ok _ ->
    (* A flip the codec cannot see (possible only in ignored prelude slack);
       deliver the frame unchanged rather than invent a phantom error. *)
    (Printf.sprintf "byte %d ^ 0x%02x: undetected" pos mask, None)

(* ---- send (referee -> client) ----------------------------------------- *)

let send t ctx frame =
  if t.poisoned then Error Conn.Closed
  else begin
    observe_round t frame;
    if disconnect_due t then fire_disconnect t Send frame
    else
      match decide t with
      | None -> Conn.send ?ctx t.inner frame
      | Some kind -> (
        match kind with
        | Plan.Drop ->
          note t (Fault Plan.Drop) Send frame "swallowed; stream poisoned";
          poison t;
          Ok ()
        | Plan.Delay ->
          note t (Fault Plan.Delay) Send frame "peer stalls; timeout";
          poison t;
          Error Conn.Timeout
        | Plan.Duplicate ->
          if is_query frame then Conn.send ?ctx t.inner frame
          else begin
            note t (Fault Plan.Duplicate) Send frame "delivered twice";
            match Conn.send ?ctx t.inner frame with
            | Error _ as e -> e
            | Ok () -> Conn.send ?ctx t.inner frame
          end
        | Plan.Reorder ->
          (* Referee sends are handled synchronously by the loopback peer;
             there is nothing in flight to swap with. *)
          Conn.send ?ctx t.inner frame
        | Plan.Truncate ->
          let detail, _ = truncated_bytes t ?ctx frame in
          note t (Fault Plan.Truncate) Send frame detail;
          poison t;
          Ok ()
        | Plan.Corrupt ->
          let detail, err = corrupted_bytes t ?ctx frame in
          (match err with
          | None -> Conn.send ?ctx t.inner frame
          | Some _ ->
            note t (Fault Plan.Corrupt) Send frame detail;
            poison t;
            Ok ())
        | Plan.Throttle ->
          if t.budget > 0 then begin
            t.budget <- t.budget - 1;
            note t (Fault Plan.Throttle) Send frame
              (Printf.sprintf "budget %d left" t.budget);
            Conn.send ?ctx t.inner frame
          end
          else begin
            note t (Fault Plan.Throttle) Send frame "budget exhausted; stalled";
            poison t;
            Error Conn.Timeout
          end)
  end

(* ---- recv (client -> referee) ----------------------------------------- *)

let next_frame t =
  if Queue.is_empty t.pending then Conn.recv_ctx t.inner else Ok (Queue.pop t.pending)

let recv t () =
  if t.poisoned then Error Conn.Closed
  else if disconnect_due t then fire_disconnect t Recv (Wire.Error { code = Wire.Timed_out; detail = "" })
  else
    match next_frame t with
    | Error _ as e -> e
    | Ok ((frame, ctx) as pair) -> (
      observe_round t frame;
      match decide t with
      | None -> Ok pair
      | Some kind -> (
        match kind with
        | Plan.Drop ->
          note t (Fault Plan.Drop) Recv frame "reply swallowed";
          poison t;
          Error Conn.Closed
        | Plan.Delay ->
          note t (Fault Plan.Delay) Recv frame "reply stalls; timeout";
          poison t;
          Error Conn.Timeout
        | Plan.Duplicate ->
          (* Deliver now and once more later: by then the copy is stale and
             the referee's round check kills the node. *)
          note t (Fault Plan.Duplicate) Recv frame "stale copy stashed";
          Queue.push pair t.pending;
          Ok pair
        | Plan.Reorder -> (
          (* Swap with the next available frame; with nothing else in
             flight the fault degrades to a pass. *)
          if not (Queue.is_empty t.pending) then begin
            let other = Queue.pop t.pending in
            Queue.push pair t.pending;
            note t (Fault Plan.Reorder) Recv frame "swapped with stashed frame";
            Ok other
          end
          else
            match Conn.recv_ctx t.inner with
            | Ok other ->
              Queue.push pair t.pending;
              note t (Fault Plan.Reorder) Recv frame "swapped with next frame";
              Ok other
            | Error _ -> Ok pair)
        | Plan.Truncate ->
          let detail, err = truncated_bytes t ?ctx frame in
          note t (Fault Plan.Truncate) Recv frame detail;
          poison t;
          Error (Conn.Bad_frame err)
        | Plan.Corrupt -> (
          let detail, err = corrupted_bytes t ?ctx frame in
          match err with
          | None -> Ok pair
          | Some e ->
            note t (Fault Plan.Corrupt) Recv frame detail;
            poison t;
            Error (Conn.Bad_frame e))
        | Plan.Throttle ->
          if t.budget > 0 then begin
            t.budget <- t.budget - 1;
            note t (Fault Plan.Throttle) Recv frame
              (Printf.sprintf "budget %d left" t.budget);
            Ok pair
          end
          else begin
            note t (Fault Plan.Throttle) Recv frame "budget exhausted; stalled";
            poison t;
            Error Conn.Timeout
          end))

let default_clock () =
  let c = ref 0 in
  fun () ->
    let v = !c in
    incr c;
    v

let wrap ?clock ~rng ~plan ~node inner =
  let t =
    { node;
      rng;
      plan;
      inner;
      clock = (match clock with Some c -> c | None -> default_clock ());
      round = 0;
      poisoned = false;
      budget = plan.Plan.throttle_budget;
      disconnected = false;
      pending = Queue.create ();
      entries = [] }
  in
  let conn =
    Conn.make_ctx
      ~peer:(Printf.sprintf "chaos:%s" (Conn.peer inner))
      ~send:(fun ctx frame -> send t ctx frame)
      ~recv:(fun () -> recv t ())
      ~close:(fun () -> Conn.close inner)
  in
  (conn, t)

let node t = t.node
