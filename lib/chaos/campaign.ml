(* The campaign runner: [runs] faulted loopback sessions from one master
   seed, each differentially checked against its crash replay.  All
   derivation is arithmetic on the seed (master stream -> per-run seeds ->
   per-connection split streams), so the whole campaign — fault schedule,
   outcomes, report — is a pure function of (seed, plan, instance); the
   report carries no wall clock, and `wbctl chaos` pins byte-identical
   reports across same-seed reruns in CI. *)

module M = Wb_model
module G = Wb_graph.Graph
module Obs = Wb_obs
module J = Obs.Json
module Prng = Wb_support.Prng
module Session = Wb_net.Session
module Remote = Wb_net.Remote

type instance = {
  key : string;
  protocol : M.Protocol.t;
  graph : G.t;
  graph_desc : string;
  adversary_name : string;
  make_adversary : seed:int -> M.Adversary.t;
  max_rounds : int option;
}

type run_record = {
  index : int;
  run_seed : int;
  adversary_seed : int;
  targets : int list;
  injected : (int * Inject.entry) list;  (* (node, entry), occurrence order *)
  outcome : string;
  rounds : int;
  faults : (int * Session.fault) list;
  deaths : Session.death list;
  mismatches : string list;  (* [] = differential identical *)
}

type report = { seed : int; runs : int; plan : Plan.t; instance : instance; records : run_record list }

let m_campaigns = Obs.Metrics.counter ~help:"chaos campaigns completed" "chaos.campaigns"
let m_runs = Obs.Metrics.counter ~help:"chaos campaign runs completed" "chaos.runs"

let m_survivals =
  Obs.Metrics.counter ~help:"faulted runs that still succeeded" "chaos.survivals"

let m_mismatches =
  Obs.Metrics.counter ~help:"runs whose crash replay diverged (differential failures)"
    "chaos.mismatches"

let m_injected_per_run =
  Obs.Metrics.histogram ~help:"faults injected per campaign run" "chaos.injected_per_run"

(* Per-run seeds come from a fresh master stream each call, advanced
   [index+1] steps — O(index) but exactly reproducible for any single run,
   which is how `wbctl chaos` re-traces just the failing run. *)
let seed_bound = 0x3FFFFFFF

let derive ~seed ~index =
  let master = Prng.create seed in
  let run_seed = ref 1 and adversary_seed = ref 1 in
  for _ = 0 to index do
    run_seed := Prng.in_range master 1 seed_bound;
    adversary_seed := Prng.in_range master 1 seed_bound
  done;
  (!run_seed, !adversary_seed)

let shared_clock () =
  let c = ref 0 in
  fun () ->
    let v = !c in
    incr c;
    v

let run_once ?trace ?parent ?client_trace ~seed ~index ~plan instance =
  let run_seed, adversary_seed = derive ~seed ~index in
  let rng = Prng.create run_seed in
  let n = G.n instance.graph in
  let targets =
    match plan.Plan.targets with
    | Plan.All -> List.init n (fun v -> v)
    | Plan.Nodes l -> List.sort_uniq Int.compare (List.filter (fun v -> v >= 0 && v < n) l)
    | Plan.Sample k -> Gen.subset ~k n rng
  in
  let clock = shared_clock () in
  let injectors = ref [] in
  let wrap v conn =
    if List.exists (Int.equal v) targets then begin
      let conn, inj = Inject.wrap ~clock ~rng:(Prng.split rng) ~plan ~node:v conn in
      injectors := (v, inj) :: !injectors;
      conn
    end
    else conn
  in
  let session =
    Remote.run_loopback ?trace ?parent ?client_trace ?max_rounds:instance.max_rounds ~wrap
      ~protocol:instance.protocol instance.graph
      (instance.make_adversary ~seed:adversary_seed)
  in
  (* A fresh same-seed adversary replays the session's draw stream. *)
  let replayed =
    Replay.run ~protocol:instance.protocol ~graph:instance.graph
      ~adversary:(instance.make_adversary ~seed:adversary_seed)
      ?max_rounds:instance.max_rounds ~deaths:session.Session.deaths ()
  in
  let mismatches = Remote.diff_runs session.Session.run replayed in
  let injected =
    List.concat_map
      (fun (v, inj) -> List.map (fun e -> (v, e)) (Inject.log inj))
      (List.rev !injectors)
    |> List.sort (fun (_, a) (_, b) -> Int.compare a.Inject.seq b.Inject.seq)
  in
  let srun : M.Engine.run = session.Session.run in
  { index;
    run_seed;
    adversary_seed;
    targets;
    injected;
    outcome = M.Engine.outcome_tag srun.outcome;
    rounds = srun.stats.rounds;
    faults = session.Session.faults;
    deaths = session.Session.deaths;
    mismatches }

let run ?progress ~seed ~runs ~plan instance =
  Obs.Metrics.incr m_campaigns;
  let rec go i acc =
    if i >= runs then List.rev acc
    else begin
      let r = run_once ~seed ~index:i ~plan instance in
      Obs.Metrics.incr m_runs;
      Obs.Metrics.observe m_injected_per_run (List.length r.injected);
      if String.equal r.outcome "success" then Obs.Metrics.incr m_survivals;
      if not (List.is_empty r.mismatches) then Obs.Metrics.incr m_mismatches;
      (match progress with Some f -> f r | None -> ());
      go (i + 1) (r :: acc)
    end
  in
  { seed; runs; plan; instance; records = go 0 [] }

(* ---- aggregates -------------------------------------------------------- *)

type summary = {
  total : int;
  faulted : int;  (* runs with at least one injected fault *)
  injected_total : int;
  survived : int;  (* runs that still ended in success *)
  dead_nodes : int;
  mismatched : int;  (* runs whose differential failed *)
}

let summarize report =
  List.fold_left
    (fun s r ->
      { total = s.total + 1;
        faulted = (s.faulted + if List.is_empty r.injected then 0 else 1);
        injected_total = s.injected_total + List.length r.injected;
        survived = (s.survived + if String.equal r.outcome "success" then 1 else 0);
        dead_nodes = s.dead_nodes + List.length r.deaths;
        mismatched = (s.mismatched + if List.is_empty r.mismatches then 0 else 1) })
    { total = 0; faulted = 0; injected_total = 0; survived = 0; dead_nodes = 0; mismatched = 0 }
    report.records

let survivor_rate report =
  let s = summarize report in
  if s.total = 0 then 0.0 else float_of_int s.survived /. float_of_int s.total

let summary_line report =
  let s = summarize report in
  Printf.sprintf
    "campaign: %d runs, %d faulted (%d faults injected), %d survived, %d dead nodes, %d \
     differential mismatches"
    s.total s.faulted s.injected_total s.survived s.dead_nodes s.mismatched

(* ---- the deterministic report ------------------------------------------ *)

let record_to_json r =
  J.Obj
    [ ("run", J.Int r.index);
      ("run_seed", J.Int r.run_seed);
      ("adversary_seed", J.Int r.adversary_seed);
      ("targets", J.List (List.map (fun v -> J.Int v) r.targets));
      ("injected",
       J.List
         (List.map
            (fun (v, e) ->
              match Inject.entry_to_json e with
              | J.Obj fields -> J.Obj (("node", J.Int v) :: fields)
              | other -> other)
            r.injected));
      ("outcome", J.String r.outcome);
      ("rounds", J.Int r.rounds);
      ("faults",
       J.List
         (List.map
            (fun (v, f) ->
              J.Obj
                [ ("node", J.Int v); ("fault", J.String (Session.fault_to_string f)) ])
            r.faults));
      ("deaths",
       J.List
         (List.map
            (fun (d : Session.death) ->
              J.Obj
                [ ("node", J.Int d.Session.node);
                  ("site", J.String (Session.site_to_string d.Session.site)) ])
            r.deaths));
      ("differential",
       if List.is_empty r.mismatches then J.String "identical"
       else J.List (List.map (fun s -> J.String s) r.mismatches)) ]

let to_json report =
  let s = summarize report in
  J.Obj
    [ ("schema", J.Int 1);
      ("chaos", J.String "campaign");
      ("seed", J.Int report.seed);
      ("plan", Plan.to_json report.plan);
      ("instance",
       J.Obj
         [ ("protocol", J.String report.instance.key);
           ("graph", J.String report.instance.graph_desc);
           ("n", J.Int (G.n report.instance.graph));
           ("adversary", J.String report.instance.adversary_name);
           ("max_rounds",
            match report.instance.max_rounds with Some r -> J.Int r | None -> J.Null) ]);
      ("runs", J.List (List.map record_to_json report.records));
      ("summary",
       J.Obj
         [ ("runs", J.Int s.total);
           ("faulted", J.Int s.faulted);
           ("injected", J.Int s.injected_total);
           ("survived", J.Int s.survived);
           ("dead_nodes", J.Int s.dead_nodes);
           ("mismatches", J.Int s.mismatched) ]) ]
