(* The campaign plan DSL: which faults, how often, against whom — a pure
   value with a JSON codec, so a campaign is reproducible from (seed, plan)
   alone and plans can be shipped as files (`wbctl chaos --plan FILE`). *)

module J = Wb_obs.Json

type kind = Drop | Delay | Duplicate | Reorder | Truncate | Corrupt | Throttle

let all_kinds = [ Drop; Delay; Duplicate; Reorder; Truncate; Corrupt; Throttle ]

let kind_name = function
  | Drop -> "drop"
  | Delay -> "delay"
  | Duplicate -> "duplicate"
  | Reorder -> "reorder"
  | Truncate -> "truncate"
  | Corrupt -> "corrupt"
  | Throttle -> "throttle"

let kind_of_name = function
  | "drop" -> Some Drop
  | "delay" -> Some Delay
  | "duplicate" -> Some Duplicate
  | "reorder" -> Some Reorder
  | "truncate" -> Some Truncate
  | "corrupt" -> Some Corrupt
  | "throttle" -> Some Throttle
  | _ -> None

let kind_equal a b = String.equal (kind_name a) (kind_name b)

type schedule =
  | Constant of float
  | Ramp of { from_p : float; to_p : float; over : int }
  | Burst of { period : int; width : int; p : float }

type targets = All | Nodes of int list | Sample of int

type t = {
  name : string;
  mix : (kind * int) list;
  intensity : schedule;
  targets : targets;
  disconnect_at : int option;
  throttle_budget : int;
}

let intensity_at sched ~round =
  match sched with
  | Constant p -> p
  | Ramp { from_p; to_p; over } ->
    if over <= 1 || round >= over then to_p
    else from_p +. ((to_p -. from_p) *. float_of_int (max 0 (round - 1)) /. float_of_int (over - 1))
  | Burst { period; width; p } ->
    if period <= 0 then p else if max 0 (round - 1) mod period < width then p else 0.0

(* ---- validation -------------------------------------------------------- *)

let prob_ok p = Float.is_finite p && p >= 0.0 && p <= 1.0

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if List.is_empty t.mix then err "plan %S: empty fault mix" t.name
  else if List.exists (fun (_, w) -> w < 0) t.mix then err "plan %S: negative mix weight" t.name
  else if not (List.exists (fun (_, w) -> w > 0) t.mix) then
    err "plan %S: no positive mix weight" t.name
  else if
    match t.intensity with
    | Constant p -> not (prob_ok p)
    | Ramp { from_p; to_p; over } -> (not (prob_ok from_p)) || (not (prob_ok to_p)) || over < 1
    | Burst { period; width; p } -> (not (prob_ok p)) || period < 1 || width < 0
  then err "plan %S: intensity out of range" t.name
  else if (match t.targets with Sample k -> k < 0 | Nodes l -> List.exists (fun v -> v < 0) l | All -> false)
  then err "plan %S: bad targets" t.name
  else if (match t.disconnect_at with Some k -> k < 1 | None -> false) then
    err "plan %S: disconnect_at must be >= 1" t.name
  else if t.throttle_budget < 1 then err "plan %S: throttle_budget must be >= 1" t.name
  else Ok ()

(* ---- presets ----------------------------------------------------------- *)

let default =
  { name = "default";
    mix =
      [ (Drop, 2); (Delay, 1); (Duplicate, 1); (Reorder, 1); (Truncate, 1); (Corrupt, 2);
        (Throttle, 1) ];
    intensity = Constant 0.04;
    targets = Sample 2;
    disconnect_at = None;
    throttle_budget = 64 }

let drop_heavy =
  { name = "drop-heavy";
    mix = [ (Drop, 6); (Delay, 2); (Throttle, 1) ];
    intensity = Ramp { from_p = 0.0; to_p = 0.25; over = 8 };
    targets = Sample 3;
    disconnect_at = None;
    throttle_budget = 16 }

let wire_garbage =
  { name = "wire-garbage";
    mix = [ (Truncate, 1); (Corrupt, 3) ];
    intensity = Burst { period = 4; width = 1; p = 0.3 };
    targets = All;
    disconnect_at = None;
    throttle_budget = 64 }

let disconnect ~round =
  { name = Printf.sprintf "disconnect@%d" round;
    mix = [ (Drop, 1) ];
    intensity = Constant 0.0;
    targets = Sample 1;
    disconnect_at = Some round;
    throttle_budget = 64 }

let presets = [ default; drop_heavy; wire_garbage; disconnect ~round:3 ]

(* ---- JSON codec -------------------------------------------------------- *)

let to_json t =
  let intensity =
    match t.intensity with
    | Constant p -> J.Obj [ ("kind", J.String "constant"); ("p", J.Float p) ]
    | Ramp { from_p; to_p; over } ->
      J.Obj
        [ ("kind", J.String "ramp"); ("from", J.Float from_p); ("to", J.Float to_p);
          ("over", J.Int over) ]
    | Burst { period; width; p } ->
      J.Obj
        [ ("kind", J.String "burst"); ("period", J.Int period); ("width", J.Int width);
          ("p", J.Float p) ]
  in
  let targets =
    match t.targets with
    | All -> J.Obj [ ("kind", J.String "all") ]
    | Nodes l -> J.Obj [ ("kind", J.String "nodes"); ("nodes", J.List (List.map (fun v -> J.Int v) l)) ]
    | Sample k -> J.Obj [ ("kind", J.String "sample"); ("count", J.Int k) ]
  in
  J.Obj
    [ ("name", J.String t.name);
      ("mix", J.Obj (List.map (fun (k, w) -> (kind_name k, J.Int w)) t.mix));
      ("intensity", intensity);
      ("targets", targets);
      ("disconnect_at", match t.disconnect_at with Some k -> J.Int k | None -> J.Null);
      ("throttle_budget", J.Int t.throttle_budget) ]

let of_json j =
  let ( let* ) = Result.bind in
  let str_field name obj =
    match J.member name obj with
    | Some (J.String s) -> Ok s
    | _ -> Error (Printf.sprintf "plan: missing string field %S" name)
  in
  let int_field name obj =
    match J.member name obj with
    | Some (J.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "plan: missing integer field %S" name)
  in
  let num_field name obj =
    match J.member name obj with
    | Some (J.Float f) -> Ok f
    | Some (J.Int i) -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "plan: missing number field %S" name)
  in
  let* name = str_field "name" j in
  let* mix =
    match J.member "mix" j with
    | Some (J.Obj kvs) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match (kind_of_name k, v) with
          | Some kind, J.Int w -> Ok ((kind, w) :: acc)
          | None, _ -> Error (Printf.sprintf "plan: unknown fault kind %S" k)
          | Some _, _ -> Error (Printf.sprintf "plan: non-integer weight for %S" k))
        (Ok []) kvs
      |> Result.map List.rev
    | _ -> Error "plan: missing object field \"mix\""
  in
  let* intensity =
    match J.member "intensity" j with
    | Some (J.Obj _ as obj) -> (
      let* k = str_field "kind" obj in
      match k with
      | "constant" ->
        let* p = num_field "p" obj in
        Ok (Constant p)
      | "ramp" ->
        let* from_p = num_field "from" obj in
        let* to_p = num_field "to" obj in
        let* over = int_field "over" obj in
        Ok (Ramp { from_p; to_p; over })
      | "burst" ->
        let* period = int_field "period" obj in
        let* width = int_field "width" obj in
        let* p = num_field "p" obj in
        Ok (Burst { period; width; p })
      | other -> Error (Printf.sprintf "plan: unknown intensity kind %S" other))
    | _ -> Error "plan: missing object field \"intensity\""
  in
  let* targets =
    match J.member "targets" j with
    | Some (J.Obj _ as obj) -> (
      let* k = str_field "kind" obj in
      match k with
      | "all" -> Ok All
      | "nodes" -> (
        match J.member "nodes" obj with
        | Some (J.List items) ->
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              match item with
              | J.Int v -> Ok (v :: acc)
              | _ -> Error "plan: non-integer node id in targets")
            (Ok []) items
          |> Result.map (fun l -> Nodes (List.rev l))
        | _ -> Error "plan: targets kind \"nodes\" needs a \"nodes\" array")
      | "sample" ->
        let* count = int_field "count" obj in
        Ok (Sample count)
      | other -> Error (Printf.sprintf "plan: unknown targets kind %S" other))
    | _ -> Error "plan: missing object field \"targets\""
  in
  let* disconnect_at =
    match J.member "disconnect_at" j with
    | Some J.Null | None -> Ok None
    | Some (J.Int k) -> Ok (Some k)
    | Some _ -> Error "plan: disconnect_at must be an integer or null"
  in
  let* throttle_budget = int_field "throttle_budget" j in
  let t = { name; mix; intensity; targets; disconnect_at; throttle_budget } in
  let* () = validate t in
  Ok t

let of_string s =
  match J.of_string s with
  | Error e -> Error ("plan: " ^ e)
  | Ok j -> of_json j

let to_string t = J.to_string (to_json t)

(* ---- plan fuzzer ------------------------------------------------------- *)

(* Probabilities are drawn in hundredths so the JSON round-trip (%.12g) is
   exact — the codec property test compares decoded plans structurally. *)
let gen_prob lo hi = Gen.map (fun c -> float_of_int c /. 100.0) (Gen.in_range lo hi)

let gen : t Gen.t =
  let gen_mix =
    Gen.bind (Gen.in_range 1 (List.length all_kinds)) (fun k ->
        Gen.bind (Gen.subset ~k (List.length all_kinds)) (fun idxs ->
            Gen.bind
              (Gen.list_of (List.length idxs) (Gen.in_range 1 4))
              (fun weights ->
                Gen.return
                  (List.map2 (fun i w -> (List.nth all_kinds i, w)) idxs weights))))
  in
  let gen_intensity =
    Gen.oneof
      [ Gen.map (fun p -> Constant p) (gen_prob 0 15);
        Gen.bind (gen_prob 0 5) (fun from_p ->
            Gen.bind (gen_prob 5 25) (fun to_p ->
                Gen.map (fun over -> Ramp { from_p; to_p; over }) (Gen.in_range 2 12)));
        Gen.bind (Gen.in_range 2 6) (fun period ->
            Gen.bind (Gen.in_range 1 2) (fun width ->
                Gen.map (fun p -> Burst { period; width; p }) (gen_prob 5 30))) ]
  in
  let gen_targets =
    Gen.oneof
      [ Gen.return All;
        Gen.map (fun k -> Sample k) (Gen.in_range 1 3);
        Gen.bind (Gen.in_range 1 3) (fun k -> Gen.map (fun l -> Nodes l) (Gen.subset ~k 8)) ]
  in
  Gen.bind gen_mix (fun mix ->
      Gen.bind gen_intensity (fun intensity ->
          Gen.bind gen_targets (fun targets ->
              Gen.bind
                (Gen.oneof [ Gen.return None; Gen.map (fun k -> Some k) (Gen.in_range 2 8) ])
                (fun disconnect_at ->
                  Gen.map
                    (fun throttle_budget ->
                      { name = "fuzzed"; mix; intensity; targets; disconnect_at; throttle_budget })
                    (Gen.in_range 4 64)))))

(* ---- structural equality (codec tests) --------------------------------- *)

let schedule_equal a b =
  match (a, b) with
  | Constant p, Constant q -> Float.equal p q
  | Ramp a, Ramp b ->
    Float.equal a.from_p b.from_p && Float.equal a.to_p b.to_p && a.over = b.over
  | Burst a, Burst b -> a.period = b.period && a.width = b.width && Float.equal a.p b.p
  | (Constant _ | Ramp _ | Burst _), _ -> false

let targets_equal a b =
  match (a, b) with
  | All, All -> true
  | Nodes x, Nodes y -> List.length x = List.length y && List.for_all2 ( = ) x y
  | Sample x, Sample y -> x = y
  | (All | Nodes _ | Sample _), _ -> false

let equal a b =
  String.equal a.name b.name
  && List.length a.mix = List.length b.mix
  && List.for_all2 (fun (k1, w1) (k2, w2) -> kind_equal k1 k2 && w1 = w2) a.mix b.mix
  && schedule_equal a.intensity b.intensity
  && targets_equal a.targets b.targets
  && Option.equal ( = ) a.disconnect_at b.disconnect_at
  && a.throttle_budget = b.throttle_budget
