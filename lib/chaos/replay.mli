(** Deterministic in-process replay of a faulted networked session.

    [run ~protocol ~graph ~adversary ~deaths ()] executes the protocol on
    the {!Wb_model.Machine} kernel — exactly as [Engine.run] would — but
    kills each node at the {!Wb_net.Session.site} the referee recorded:
    during its [k]-th hook invocation ([Hook k]), or right after its write
    ([Post_write]).  [Teardown] deaths happened after the execution
    finished and are ignored.

    This is the "engine-reachable under an adversary with crashes" witness
    of the chaos differential: for every faulted loopback session,
    [Wb_net.Remote.diff_runs session.run (run ... ~deaths:session.deaths ())]
    must return [] — same board, same outcome, same per-node statistics.
    [adversary] must be a fresh instance of the same adversary the session
    used (stateful adversaries replay their draw stream from their seed). *)

val run :
  protocol:Wb_model.Protocol.t ->
  graph:Wb_graph.Graph.t ->
  adversary:Wb_model.Adversary.t ->
  ?max_rounds:int ->
  deaths:Wb_net.Session.death list ->
  unit ->
  Wb_model.Engine.run
