(** The faulty transport: a {!Wb_net.Conn}-compatible wrapper that can
    drop, delay, duplicate and reorder frames, truncate them mid-payload,
    corrupt bytes (CRC included), throttle a connection and hang a client
    up at a plan-given round — every decision drawn from the injector's
    PRNG in frame order, so a faulted session replays byte-identically
    from its seed.

    {b Crash consistency.}  Every fault either lets the frame through
    unharmed or collapses into the paper's crash model: the connection is
    poisoned (all later operations report [Closed]) and the referee sees a
    typed {!Wb_net.Conn.fault} within the same kernel hook, marking the
    node dead at a recorded {!Wb_net.Session.site}.  No fault can leave a
    node alive with corrupted state — the invariant that makes the
    {!Replay} differential sound.  Faults that would be Byzantine rather
    than crash (duplicating a query so the client computes twice) are
    deliberately degraded to passes; see the implementation header. *)

type op = Send  (** referee to client. *) | Recv  (** client to referee. *)

type action = Fault of Plan.kind | Disconnect

(** One injected fault, with its global sequence number, direction, the
    frame's opcode, the round the injector had observed, and a
    human-readable detail ("cut at 7/23: truncated frame"). *)
type entry = { seq : int; action : action; op : op; opcode : string; round : int; detail : string }

val op_name : op -> string
val action_name : action -> string
val entry_to_string : entry -> string
val entry_to_json : entry -> Wb_obs.Json.t

type t
(** Injector state for one wrapped connection. *)

val wrap :
  ?clock:(unit -> int) ->
  rng:Wb_support.Prng.t ->
  plan:Plan.t ->
  node:int ->
  Wb_net.Conn.t ->
  Wb_net.Conn.t * t
(** [wrap ~rng ~plan ~node conn] interposes on [conn].  [rng] must be a
    dedicated stream (the campaign runner splits one per connection);
    [clock] supplies global sequence numbers so entries from several
    injectors merge into one campaign-wide order (default: a private
    counter from 0). *)

val log : t -> entry list
(** Injected faults in occurrence order. *)

val node : t -> int

(** The [chaos.*] fault counters ([chaos.injected], [chaos.inject.<kind>],
    [chaos.inject.disconnect]), exposed for tests and the bench. *)
module Metrics : sig
  val injected : Wb_obs.Metrics.counter
  val of_kind : (Plan.kind * Wb_obs.Metrics.counter) list
  val disconnects : Wb_obs.Metrics.counter
end
