(* In-process re-execution of a faulted networked session: instantiate the
   execution kernel directly on the protocol (as Engine.run does) and kill
   nodes at the death sites the referee recorded — its k-th hook
   invocation, or right after its write.  Hook invocations are counted per
   node in call order on both sides, so the coordinate is exact: the
   kernel sees the same hook results, the same kills at the same points,
   and therefore the same execution.  [Remote.diff_runs faulted replayed]
   returning [] is the chaos differential contract — every injected fault
   collapsed into the paper's crash model. *)

module M = Wb_model
module G = Wb_graph.Graph
module Session = Wb_net.Session

let run ~protocol ~graph ~adversary ?max_rounds ~deaths () =
  let module P = (val protocol : M.Protocol.S) in
  let n = G.n graph in
  let die_at = Array.make n max_int in
  let post_write = Array.make n false in
  List.iter
    (fun (d : Session.death) ->
      match d.Session.site with
      | Session.Hook k -> die_at.(d.Session.node) <- min die_at.(d.Session.node) k
      | Session.Post_write -> post_write.(d.Session.node) <- true
      | Session.Teardown -> () (* after the run completed; no kernel effect *))
    deaths;
  let invocations = Array.make n 0 in
  let kill_ref = ref (fun (_ : int) -> ()) in
  (* Counting mirrors the referee exactly: every hook entry bumps the
     node's invocation index, dead-on-arrival or not. *)
  let enter v =
    let k = invocations.(v) in
    invocations.(v) <- k + 1;
    k
  in
  let module N = struct
    let model = P.model
    let message_bound = P.message_bound

    type local = P.local

    let init = P.init

    let wants_to_activate ~round:_ view board local =
      let v = M.View.id view in
      if enter v >= die_at.(v) then begin
        !kill_ref v;
        false
      end
      else P.wants_to_activate view board local

    let compose ~round:_ view board local =
      let v = M.View.id view in
      if enter v >= die_at.(v) then begin
        !kill_ref v;
        None
      end
      else
        let writer, local = P.compose view board local in
        Some (M.Message.of_writer ~author:(M.View.id view) writer, local)

    let output = P.output
  end in
  let module Mach = M.Machine.Make (N) in
  let m = Mach.init ?max_rounds graph in
  kill_ref := Mach.kill m;
  let rec drive () =
    match Mach.step m with
    | `Choices candidates ->
      Mach.pick m (M.Adversary.choose adversary (Mach.board m) candidates);
      drive ()
    | `Write v ->
      if post_write.(v) then Mach.kill m v;
      drive ()
    | `Done run -> run
  in
  drive ()
