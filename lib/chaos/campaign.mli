(** Fault-injection campaigns: seeded batches of faulted networked runs,
    each differentially checked against its in-process crash replay.

    A campaign is a pure function of [(seed, plan, instance)]: the master
    seed derives one [(run_seed, adversary_seed)] pair per run, the run
    seed derives the target sample and one split PRNG stream per wrapped
    connection, and the report carries no wall clock — so two same-seed
    campaigns produce byte-identical {!to_json} documents, and any single
    run (a failing one, say) re-executes alone via {!run_once} with
    tracing attached. *)

type instance = {
  key : string;  (** protocol registry key (reports, replay command lines). *)
  protocol : Wb_model.Protocol.t;
  graph : Wb_graph.Graph.t;
  graph_desc : string;  (** e.g. ["gnp"] — report/replay bookkeeping only. *)
  adversary_name : string;
  make_adversary : seed:int -> Wb_model.Adversary.t;
      (** must build a {e fresh} adversary per call: the session and its
          replay each get one, and stateful adversaries must replay their
          draw stream from the seed. *)
  max_rounds : int option;
}

type run_record = {
  index : int;
  run_seed : int;
  adversary_seed : int;
  targets : int list;  (** nodes whose connections were wrapped. *)
  injected : (int * Inject.entry) list;  (** (node, fault) in occurrence order. *)
  outcome : string;  (** {!Wb_model.Engine.outcome_tag} of the faulted run. *)
  rounds : int;
  faults : (int * Wb_net.Session.fault) list;
  deaths : Wb_net.Session.death list;
  mismatches : string list;  (** [] = crash replay identical (the contract). *)
}

type report = {
  seed : int;
  runs : int;
  plan : Plan.t;
  instance : instance;
  records : run_record list;
}

val run_once :
  ?trace:Wb_obs.Trace.t ->
  ?parent:Wb_obs.Span.context ->
  ?client_trace:(int -> Wb_obs.Trace.t option) ->
  seed:int ->
  index:int ->
  plan:Plan.t ->
  instance ->
  run_record
(** One campaign run, reproducible in isolation: derivation depends only
    on [(seed, index)].  The telemetry options mirror
    {!Wb_net.Remote.run_loopback} — how `wbctl chaos` re-traces exactly
    the failing run. *)

val run :
  ?progress:(run_record -> unit) ->
  seed:int ->
  runs:int ->
  plan:Plan.t ->
  instance ->
  report
(** The whole campaign; [progress] fires after each run (CLI reporting).
    Maintains the [chaos.campaigns]/[chaos.runs]/[chaos.survivals]/
    [chaos.mismatches] counters and the [chaos.injected_per_run]
    histogram.  Never raises on transport behaviour: faulted runs end in
    typed outcomes and recorded faults. *)

type summary = {
  total : int;
  faulted : int;
  injected_total : int;
  survived : int;
  dead_nodes : int;
  mismatched : int;
}

val summarize : report -> summary
val survivor_rate : report -> float
(** Fraction of runs that still ended in [success]. *)

val summary_line : report -> string
val record_to_json : run_record -> Wb_obs.Json.t

val to_json : report -> Wb_obs.Json.t
(** The deterministic campaign report (schema 1): plan, instance, per-run
    fault schedule / outcome / differential verdict, and the summary. *)
