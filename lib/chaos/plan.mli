(** Campaign plans: which faults, how often, against whom.

    A plan is a pure value with a JSON codec, so a whole campaign replays
    from [(seed, plan)] alone — `wbctl chaos --plan FILE` ships one as a
    file, and the fuzzer ({!gen}) composes random plans through {!Gen}. *)

(** One injectable fault kind.  Client disconnection at a given round is a
    plan-level switch ({!t.disconnect_at}), not a mix entry — it fires on a
    round threshold, not per frame. *)
type kind =
  | Drop  (** swallow the frame; the stream is dead afterwards. *)
  | Delay  (** the peer never answers in time: a read timeout. *)
  | Duplicate  (** deliver the frame twice (replies: once now, once stale). *)
  | Reorder  (** deliver a later frame first (client-to-referee only). *)
  | Truncate  (** cut the encoded bytes mid-payload. *)
  | Corrupt  (** flip a byte — half the time inside the header CRC field. *)
  | Throttle  (** pass frames while a budget lasts, then stall. *)

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option
val kind_equal : kind -> kind -> bool

(** Per-round fault probability. *)
type schedule =
  | Constant of float
  | Ramp of { from_p : float; to_p : float; over : int }
      (** linear from [from_p] (round 1) to [to_p] (round [over] onwards). *)
  | Burst of { period : int; width : int; p : float }
      (** [p] during the first [width] rounds of every [period], else 0. *)

type targets =
  | All
  | Nodes of int list  (** explicit node ids (out-of-range ids ignored). *)
  | Sample of int  (** a seeded k-subset, redrawn per campaign run. *)

type t = {
  name : string;
  mix : (kind * int) list;  (** relative weights of the fault kinds. *)
  intensity : schedule;
  targets : targets;
  disconnect_at : int option;  (** hang up targeted nodes at this round. *)
  throttle_budget : int;  (** frames a throttled connection absorbs. *)
}

val intensity_at : schedule -> round:int -> float
val validate : t -> (unit, string) result

val default : t
(** Mixed faults at low constant intensity on a 2-node sample. *)

val drop_heavy : t
(** Mostly drops, ramping up — starvation pressure. *)

val wire_garbage : t
(** Truncation and corruption in bursts on every node — codec pressure. *)

val disconnect : round:int -> t
(** One sampled node hangs up at [round]; nothing else. *)

val presets : t list
(** The named plans [wbctl chaos --plan NAME] accepts. *)

val to_json : t -> Wb_obs.Json.t
val of_json : Wb_obs.Json.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result
(** Codec round-trip: [of_string (to_string t) = Ok t] up to {!equal}; all
    failures are typed [Error] strings, never exceptions. *)

val gen : t Gen.t
(** Random well-formed plan ({!validate} always passes); probabilities are
    drawn in hundredths so the JSON round-trip is exact. *)

val equal : t -> t -> bool
