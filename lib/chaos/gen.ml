(* Seeded generator combinators over Wb_support.Prng — the qcheck-style
   composition idiom, but with every draw flowing through the repo's one
   deterministic generator so any composed value replays from its seed.
   The chaos plan fuzzer and the injector's per-frame decisions are both
   written against this module; nothing in lib/chaos may draw randomness
   any other way (the determinism lint enforces it). *)

module Prng = Wb_support.Prng

type 'a t = Prng.t -> 'a

let return x _ = x
let map f g rng = f (g rng)
let bind g f rng = f (g rng) rng

let pair a b rng =
  let x = a rng in
  let y = b rng in
  (x, y)

let int bound rng = Prng.int rng bound
let in_range lo hi rng = Prng.in_range rng lo hi
let bool rng = Prng.bool rng
let float01 rng = Prng.float rng
let float_range lo hi rng = lo +. ((hi -. lo) *. Prng.float rng)

(* Deterministic element order: the recursion below fixes the draw order
   left to right (List.init would leave it to the stdlib). *)
let list_of n g rng =
  let rec go k acc = if k <= 0 then List.rev acc else go (k - 1) (g rng :: acc) in
  go n []

let oneofl xs rng = Prng.pick rng (Array.of_list xs)
let oneof gens rng = Prng.pick rng (Array.of_list gens) rng

let weighted choices rng =
  let total = List.fold_left (fun acc (_, w) -> acc + max 0 w) 0 choices in
  if total <= 0 then invalid_arg "Gen.weighted: no positive weight";
  let ticket = Prng.int rng total in
  let rec go acc = function
    | [] -> invalid_arg "Gen.weighted: no positive weight"
    | (x, w) :: tl ->
      let acc = acc + max 0 w in
      if ticket < acc then x else go acc tl
  in
  go 0 choices

let subset ~k n rng =
  let k = max 0 (min k n) in
  Array.to_list (Prng.sample_without_replacement rng k n)

let run ~seed g = g (Prng.create seed)
