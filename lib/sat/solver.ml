(* Internal literal encoding: variable v in [0, nvars) gives positive
   literal 2v and negative literal 2v+1.  [lit lxor 1] negates. *)

module Dynarray = Wb_support.Dynarray

type clause = int array (* internal literals; watched literals at slots 0 and 1 *)

type t = {
  nvars : int;
  (* Clause storage.  Original and learnt clauses share the watch scheme. *)
  clauses : clause Dynarray.t;
  learnts : clause Dynarray.t;
  watches : clause Dynarray.t array; (* indexed by internal literal *)
  (* Assignment state. *)
  assigns : int array; (* per var: -1 unassigned / 0 false / 1 true *)
  level : int array;
  reason : clause option array;
  trail : int Dynarray.t; (* internal literals, assignment order *)
  trail_lim : int Dynarray.t;
  mutable qhead : int;
  (* VSIDS. *)
  activity : float array;
  mutable var_inc : float;
  polarity : bool array; (* saved phase *)
  (* Analysis scratch. *)
  seen : bool array;
  mutable ok : bool; (* false once trivially unsat *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
}

let create nvars =
  if nvars < 0 then invalid_arg "Solver.create";
  { nvars;
    clauses = Dynarray.create ();
    learnts = Dynarray.create ();
    watches = Array.init (2 * nvars) (fun _ -> Dynarray.create ());
    assigns = Array.make nvars (-1);
    level = Array.make nvars 0;
    reason = Array.make nvars None;
    trail = Dynarray.create ();
    trail_lim = Dynarray.create ();
    qhead = 0;
    activity = Array.make nvars 0.0;
    var_inc = 1.0;
    polarity = Array.make nvars false;
    seen = Array.make nvars false;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0 }

let num_vars s = s.nvars

let num_clauses s = Dynarray.length s.clauses

let var_of l = l lsr 1

let lit_value s l =
  (* -1 unassigned, 1 true, 0 false *)
  let a = s.assigns.(var_of l) in
  if a < 0 then -1 else a lxor (l land 1)

let decision_level s = Dynarray.length s.trail_lim

let enqueue s l reason =
  s.assigns.(var_of l) <- 1 lxor (l land 1);
  s.level.(var_of l) <- decision_level s;
  s.reason.(var_of l) <- reason;
  Dynarray.push s.trail l

let bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for u = 0 to s.nvars - 1 do
      s.activity.(u) <- s.activity.(u) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let decay s = s.var_inc <- s.var_inc /. 0.95

let watch s l c = Dynarray.push s.watches.(l) c

let attach s c =
  watch s (c.(0) lxor 1) c;
  watch s (c.(1) lxor 1) c

(* Propagate everything on the trail.  Returns the conflicting clause. *)
let propagate s =
  let conflict = ref None in
  while !conflict = None && s.qhead < Dynarray.length s.trail do
    let l = Dynarray.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    (* l became true: visit clauses watching (not l); they live in
       watches.(l) because attach keys a clause by the negation of each
       watched literal. *)
    let false_lit = l lxor 1 in
    let ws = s.watches.(l) in
    let kept = ref 0 in
    let i = ref 0 in
    let len = Dynarray.length ws in
    while !i < len do
      let c = Dynarray.get ws !i in
      incr i;
      (* Normalise: the false literal sits at slot 1. *)
      if c.(0) = false_lit then begin
        c.(0) <- c.(1);
        c.(1) <- false_lit
      end;
      if lit_value s c.(0) = 1 then begin
        (* Clause already satisfied: keep the watch. *)
        Dynarray.set ws !kept c;
        incr kept
      end
      else begin
        (* Look for a replacement watch. *)
        let found = ref false in
        let j = ref 2 in
        while (not !found) && !j < Array.length c do
          if lit_value s c.(!j) <> 0 then begin
            c.(1) <- c.(!j);
            c.(!j) <- false_lit;
            watch s (c.(1) lxor 1) c;
            found := true
          end;
          incr j
        done;
        if !found then () (* watch moved: drop from this list *)
        else begin
          (* No replacement: unit or conflict on c.(0). *)
          Dynarray.set ws !kept c;
          incr kept;
          if lit_value s c.(0) = 0 then begin
            conflict := Some c;
            (* keep remaining watches untouched *)
            while !i < len do
              Dynarray.set ws !kept (Dynarray.get ws !i);
              incr kept;
              incr i
            done
          end
          else enqueue s c.(0) (Some c)
        end
      end
    done;
    Dynarray.truncate ws !kept
  done;
  !conflict

let cancel_until s target =
  if decision_level s > target then begin
    let limit = Dynarray.get s.trail_lim target in
    for i = Dynarray.length s.trail - 1 downto limit do
      let l = Dynarray.get s.trail i in
      let v = var_of l in
      s.polarity.(v) <- s.assigns.(v) = 1;
      s.assigns.(v) <- -1;
      s.reason.(v) <- None
    done;
    Dynarray.truncate s.trail limit;
    Dynarray.truncate s.trail_lim target;
    s.qhead <- Dynarray.length s.trail
  end

(* First-UIP conflict analysis.  Returns (learnt clause, backjump level);
   the asserting literal is slot 0. *)
let analyze s conflict =
  let learnt = Dynarray.create () in
  Dynarray.push learnt 0 (* placeholder for the asserting literal *);
  let counter = ref 0 in
  let p = ref (-1) in
  let trail_idx = ref (Dynarray.length s.trail - 1) in
  let reason_lits clause skip =
    Array.iter
      (fun q ->
        if q <> skip then begin
          let v = var_of q in
          if (not s.seen.(v)) && s.level.(v) > 0 then begin
            s.seen.(v) <- true;
            bump s v;
            if s.level.(v) >= decision_level s then incr counter
            else Dynarray.push learnt q
          end
        end)
      clause
  in
  reason_lits conflict (-1);
  let continue = ref true in
  while !continue do
    (* Find the next seen literal on the trail. *)
    while not s.seen.(var_of (Dynarray.get s.trail !trail_idx)) do
      decr trail_idx
    done;
    let l = Dynarray.get s.trail !trail_idx in
    decr trail_idx;
    let v = var_of l in
    s.seen.(v) <- false;
    decr counter;
    if !counter = 0 then begin
      p := l;
      continue := false
    end
    else begin
      match s.reason.(v) with
      | Some c -> reason_lits c l
      | None -> assert false (* only the UIP can lack a reason at this level *)
    end
  done;
  Dynarray.set learnt 0 (!p lxor 1);
  let lits = Dynarray.to_array learnt in
  Array.iter (fun q -> s.seen.(var_of q) <- false) lits;
  (* Backjump level: highest level among the non-asserting literals. *)
  let back = ref 0 in
  let swap_pos = ref 1 in
  for i = 1 to Array.length lits - 1 do
    if s.level.(var_of lits.(i)) > !back then begin
      back := s.level.(var_of lits.(i));
      swap_pos := i
    end
  done;
  if Array.length lits > 1 then begin
    let tmp = lits.(1) in
    lits.(1) <- lits.(!swap_pos);
    lits.(!swap_pos) <- tmp
  end;
  (lits, !back)

let internal_of_dimacs s l =
  let v = abs l in
  if l = 0 || v > s.nvars then invalid_arg "Solver.add_clause: literal out of range";
  if l > 0 then 2 * (v - 1) else (2 * (v - 1)) + 1

let add_clause s lits =
  if s.ok then begin
    let internal = List.sort_uniq compare (List.map (internal_of_dimacs s) lits) in
    let tautology = List.exists (fun l -> List.mem (l lxor 1) internal) internal in
    if not tautology then begin
      (* At level 0 we can also discard already-false literals. *)
      let relevant = List.filter (fun l -> lit_value s l <> 0 || s.level.(var_of l) > 0) internal in
      if List.exists (fun l -> lit_value s l = 1 && s.level.(var_of l) = 0) internal then ()
      else begin
        match relevant with
        | [] -> s.ok <- false
        | [ l ] ->
          if lit_value s l = -1 then begin
            enqueue s l None;
            if propagate s <> None then s.ok <- false
          end
          else if lit_value s l = 0 then s.ok <- false
        | l0 :: l1 :: _ ->
          let c = Array.of_list relevant in
          ignore l0;
          ignore l1;
          Dynarray.push s.clauses c;
          attach s c
      end
    end
  end

let pick_branch_var s =
  let best = ref (-1) in
  let best_act = ref neg_infinity in
  for v = 0 to s.nvars - 1 do
    if s.assigns.(v) < 0 && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  !best

(* Luby sequence for restart intervals. *)
let rec luby i =
  (* Find k with 2^(k-1) <= i+1 < 2^k. *)
  let k = ref 1 in
  while (1 lsl !k) - 1 < i + 1 do
    incr k
  done;
  if (1 lsl !k) - 1 = i + 1 then float_of_int (1 lsl (!k - 1))
  else luby (i + 1 - (1 lsl (!k - 1)))

type outcome = Sat | Unsat

(* Process-global observability counters; per-instance stats stay on [t].
   Deltas are added once per [solve] so the search loops stay untouched. *)
let m_solves = Wb_obs.Metrics.counter ~help:"Solver.solve calls" "sat.solves"
let m_conflicts = Wb_obs.Metrics.counter ~help:"CDCL conflicts" "sat.conflicts"
let m_decisions = Wb_obs.Metrics.counter ~help:"CDCL decisions" "sat.decisions"
let m_propagations = Wb_obs.Metrics.counter ~help:"unit propagations" "sat.propagations"

let solve_tracked s =
  if not s.ok then Unsat
  else begin
    cancel_until s 0;
    (match propagate s with Some _ -> s.ok <- false | None -> ());
    if not s.ok then Unsat
    else begin
      let restart_count = ref 0 in
      let conflicts_until_restart = ref (100.0 *. luby 0) in
      let result = ref None in
      while !result = None do
        match propagate s with
        | Some conflict ->
          s.conflicts <- s.conflicts + 1;
          conflicts_until_restart := !conflicts_until_restart -. 1.0;
          if decision_level s = 0 then begin
            s.ok <- false;
            result := Some Unsat
          end
          else begin
            let learnt, back = analyze s conflict in
            cancel_until s back;
            if Array.length learnt = 1 then enqueue s learnt.(0) None
            else begin
              Dynarray.push s.learnts learnt;
              attach s learnt;
              enqueue s learnt.(0) (Some learnt)
            end;
            decay s
          end
        | None ->
          if !conflicts_until_restart <= 0.0 then begin
            incr restart_count;
            conflicts_until_restart := 100.0 *. luby !restart_count;
            cancel_until s 0
          end
          else begin
            let v = pick_branch_var s in
            if v < 0 then result := Some Sat
            else begin
              s.decisions <- s.decisions + 1;
              Dynarray.push s.trail_lim (Dynarray.length s.trail);
              enqueue s ((2 * v) lor if s.polarity.(v) then 0 else 1) None
            end
          end
      done;
      match !result with Some r -> r | None -> assert false
    end
  end

let solve s =
  let c0 = s.conflicts and d0 = s.decisions and p0 = s.propagations in
  let result = solve_tracked s in
  Wb_obs.Metrics.incr m_solves;
  Wb_obs.Metrics.add m_conflicts (s.conflicts - c0);
  Wb_obs.Metrics.add m_decisions (s.decisions - d0);
  Wb_obs.Metrics.add m_propagations (s.propagations - p0);
  result

let value s v =
  if v < 1 || v > s.nvars then invalid_arg "Solver.value";
  s.assigns.(v - 1) = 1

let model s = Array.init (s.nvars + 1) (fun v -> v > 0 && value s v)

let stats_conflicts s = s.conflicts

let stats_decisions s = s.decisions

let stats_propagations s = s.propagations
