(** A CDCL SAT solver (two-watched literals, VSIDS, 1-UIP clause learning,
    phase saving, Luby restarts).

    Built as a substrate for {!Wb_synth}, whose protocol-existence questions
    compile to CNF.  Literals use the DIMACS convention: a non-zero integer
    [l] denotes variable [abs l] (1-based), negated when [l < 0]. *)

type t

val create : int -> t
(** [create nvars] — variables are [1 .. nvars]. *)

val num_vars : t -> int
val num_clauses : t -> int
(** Original (non-learnt) clauses. *)

val add_clause : t -> int list -> unit
(** Add a clause.  Duplicate literals are merged; a clause containing both
    [l] and [-l] is dropped as a tautology.  Adding the empty clause makes
    the instance trivially unsatisfiable.
    @raise Invalid_argument on out-of-range literals.
    @raise Failure if called after solving has started destructive work
    (currently never — incremental adding between solves is supported at
    level 0). *)

type outcome = Sat | Unsat

val solve : t -> outcome
(** Each call also adds its conflict/decision/propagation deltas to the
    process-global [sat.*] metrics in {!Wb_obs.Metrics}. *)

val value : t -> int -> bool
(** [value s v] for [1 <= v <= nvars], valid after [solve] returned [Sat].
    Variables the search never touched default to [false]. *)

val model : t -> bool array
(** [nvars + 1] entries, index 0 unused. *)

val stats_conflicts : t -> int
val stats_decisions : t -> int
val stats_propagations : t -> int
