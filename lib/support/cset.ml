type t = {
  slots : int Atomic.t array; (* length a power of two; 0 = empty *)
  mask : int;
  limit : int;
  used : int Atomic.t;
}

let max_limit = 3_000_000

let rec pow2 c n = if c >= n then c else pow2 (c * 2) n

let create ?(limit = 1_000_000) () =
  let limit = max 1 (min limit max_limit) in
  (* Keep the load factor under 3/4 at the limit so probe chains stay short
     and a CAS loser always finds an empty slot further along. *)
  let cap = pow2 1024 ((limit * 4 / 3) + 2) in
  { slots = Array.init cap (fun _ -> Atomic.make 0);
    mask = cap - 1;
    limit;
    used = Atomic.make 0 }

let norm d =
  let d = d land max_int in
  if d = 0 then 0x2545f4914f6cdd1d else d

let add t digest =
  let d = norm digest in
  let rec probe i =
    let slot = t.slots.(i) in
    let v = Atomic.get slot in
    if v = d then `Present
    else if v = 0 then
      if Atomic.get t.used >= t.limit then `Full
      else if Atomic.compare_and_set slot 0 d then begin
        Atomic.incr t.used;
        `Added
      end
      else if Atomic.get slot = d then `Present
      else probe ((i + 1) land t.mask)
    else probe ((i + 1) land t.mask)
  in
  probe (d land t.mask)

let mem t digest =
  let d = norm digest in
  let rec probe i =
    let v = Atomic.get t.slots.(i) in
    if v = d then true else if v = 0 then false else probe ((i + 1) land t.mask)
  in
  probe (d land t.mask)

let cardinal t = Atomic.get t.used

let limit t = t.limit

let capacity t = Array.length t.slots
