(** Chase–Lev work-stealing deque.

    One domain (the {e owner}) pushes and pops at the bottom; any other
    domain may {!steal} from the top.  The owner end behaves like a stack
    (LIFO — depth-first task order, bounded frontier memory), the thief end
    like a queue (FIFO — thieves take the oldest, typically largest,
    subtree).  The buffer is circular and doubles in place when full, so
    capacity never limits a push.

    Concurrency contract: [push] and [pop] must only be called from the
    owning domain; [steal] and [size] are safe from any domain.  All
    coordination state is [Atomic]; the element buffer itself is published
    to thieves through the atomics (the standard Chase–Lev argument: a slot
    is only read by a thief after an SC read of [bottom] proves the owner
    wrote it, and a successful CAS on [top] claims it uniquely). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 64) is rounded up to a power of two. *)

val push : 'a t -> 'a -> unit
(** Owner only: add at the bottom. *)

val pop : 'a t -> 'a option
(** Owner only: remove the most recently pushed remaining element.  [None]
    when the deque is empty (including losing the race for the last element
    to a thief). *)

val steal : 'a t -> 'a option
(** Any domain: remove the oldest element.  [None] when empty or when the
    CAS race for the element is lost (callers treat both as "try another
    victim"). *)

val size : 'a t -> int
(** Approximate occupancy — a racy snapshot, for spill heuristics only. *)
