(** Lock discipline primitive: critical sections that cannot leak.

    [with_lock m f] runs [f ()] with [m] held and releases [m] on every
    exit path, including exceptions ([Fun.protect]).  All shared-state
    access in the tree goes through this combinator — the [lock-discipline]
    lint rule bans raw [Mutex.lock]/[Mutex.unlock] everywhere except this
    module's implementation (and its historical re-export in
    [lib/net/sync.ml]).

    It lives in the support layer so that both [wb_obs] (the domain-safe
    metrics registry) and [wb_net] (the referee's session tables) can use
    it without a dependency cycle.

    [Condition.wait] is safe inside the callback: it atomically releases
    and reacquires the same mutex, so the ownership invariant assumed by
    the final unlock still holds. *)

val with_lock : Mutex.t -> (unit -> 'a) -> 'a
