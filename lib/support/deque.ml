(* Chase–Lev deque [Chase & Lev, SPAA 2005] on OCaml 5 atomics.  [top] only
   ever increases (thief side); [bottom] is owner-written.  The circular
   buffer lives behind an atomic so a grow publishes the new array to
   thieves; a thief that raced a grow still reads the element it claimed
   from the old array, which the owner never overwrites before the claim
   (growth copies, it does not recycle live slots). *)

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a option array Atomic.t;
}

let rec pow2 c n = if c >= n then c else pow2 (c * 2) n

let create ?(capacity = 64) () =
  let cap = pow2 1 (max 2 capacity) in
  { top = Atomic.make 0; bottom = Atomic.make 0; buf = Atomic.make (Array.make cap None) }

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

let grow t tp b =
  let a = Atomic.get t.buf in
  let n = Array.length a in
  let a' = Array.make (2 * n) None in
  for i = tp to b - 1 do
    a'.(i land ((2 * n) - 1)) <- a.(i land (n - 1))
  done;
  Atomic.set t.buf a';
  a'

let push t x =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let a = Atomic.get t.buf in
  let a = if b - tp >= Array.length a - 1 then grow t tp b else a in
  a.(b land (Array.length a - 1)) <- Some x;
  Atomic.set t.bottom (b + 1)

let take a i =
  let x = a.(i land (Array.length a - 1)) in
  match x with
  | Some v -> v
  | None -> assert false

let pop t =
  let b = Atomic.get t.bottom - 1 in
  let a = Atomic.get t.buf in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* Already empty; restore the canonical empty shape. *)
    Atomic.set t.bottom tp;
    None
  end
  else if b > tp then begin
    let x = take a b in
    a.(b land (Array.length a - 1)) <- None;
    Some x
  end
  else begin
    (* One element left: race the thieves for it via [top]. *)
    let won = Atomic.compare_and_set t.top tp (tp + 1) in
    Atomic.set t.bottom (tp + 1);
    if won then begin
      let x = take a b in
      a.(b land (Array.length a - 1)) <- None;
      Some x
    end
    else None
  end

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if b - tp <= 0 then None
  else begin
    let a = Atomic.get t.buf in
    match a.(tp land (Array.length a - 1)) with
    | None -> None (* raced a grow/pop; caller retries elsewhere *)
    | Some x -> if Atomic.compare_and_set t.top tp (tp + 1) then Some x else None
  end
