(** Deterministic, splittable pseudo-random generator.

    The core generator is xoshiro256** seeded through splitmix64, so a single
    integer seed reproduces every experiment in the repository.  [split]
    derives an independent stream, which lets concurrent workloads draw
    numbers without sharing mutable state. *)

type t

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Equal seeds give
    equal streams. *)

val split : t -> t
(** [split g] returns a fresh generator statistically independent from the
    future output of [g]; [g] itself advances. *)

val copy : t -> t
(** [copy g] duplicates the current state; both copies then produce the same
    stream. *)

val bits64 : t -> int64
(** Next 64 uniformly random bits. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val in_range : t -> int -> int -> int
(** [in_range g lo hi] is uniform in [\[lo, hi\]] inclusive.  Requires
    [lo <= hi]. *)

val bool : t -> bool
(** A uniform coin flip. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement g k n] draws a sorted k-subset of
    [\[0, n)].  Requires [0 <= k <= n]. *)

val total_draws : unit -> int
(** Process-wide count of 64-bit draws across {e all} generators — an
    observability probe (every derived draw costs at least one [bits64]).
    Monotone; never reset. *)
