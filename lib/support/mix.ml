(* splitmix64's finalizer on the native int.  The multiplications wrap in
   OCaml's 63-bit arithmetic; masking with [max_int] keeps results
   non-negative so they embed into table slots and JSON safely. *)
let mix x =
  let x = x land max_int in
  let x = (x lxor (x lsr 30)) * 0x4be98134a5976fd3 land max_int in
  let x = (x lxor (x lsr 27)) * 0x3149cf5ccf7c6b27 land max_int in
  let x = x lxor (x lsr 31) in
  if x = 0 then 0x2545f4914f6cdd1d else x

let combine acc x = mix (acc lxor (x + 0x165667b19e3779f9 + (acc lsl 6) + (acc lsr 2)))

let bools ~seed bits =
  let acc = ref (mix seed) in
  let word = ref 0 and filled = ref 0 in
  Array.iter
    (fun b ->
      word := (!word lsl 1) lor Bool.to_int b;
      incr filled;
      if !filled = 62 then begin
        acc := combine !acc !word;
        word := 0;
        filled := 0
      end)
    bits;
  (* Fold the tail with its width so "0,1" and "0,1,false-padding" differ. *)
  combine (combine !acc !word) (Array.length bits)
