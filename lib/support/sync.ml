let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f
