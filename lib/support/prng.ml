type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64 step, used to expand the seed and to derive split streams. *)
let splitmix64 state =
  let z = Int64.add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed64 seed =
  let state = ref seed in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let create seed = of_seed64 (Int64.of_int seed)

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* Process-wide draw counter.  Kept here (not as a Wb_obs metric) so the
   support layer stays dependency-free; observability polls it via a probe.
   Atomic so that parallel exploration workers drawing from their own
   generators never lose counts. *)
let draws = Atomic.make 0

let total_draws () = Atomic.get draws

(* xoshiro256** *)
let bits64 g =
  Atomic.incr draws;
  let result = Int64.mul (rotl (Int64.mul g.s1 5L) 7) 9L in
  let t = Int64.shift_left g.s1 17 in
  g.s2 <- Int64.logxor g.s2 g.s0;
  g.s3 <- Int64.logxor g.s3 g.s1;
  g.s1 <- Int64.logxor g.s1 g.s2;
  g.s0 <- Int64.logxor g.s0 g.s3;
  g.s2 <- Int64.logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g = of_seed64 (bits64 g)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits keeps the draw exactly uniform. *)
  let mask = Int64.shift_right_logical Int64.minus_one 2 in
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.logand (bits64 g) mask in
    let v = Int64.rem r bound64 in
    if Int64.sub r v > Int64.sub (Int64.sub mask bound64) 1L then draw () else Int64.to_int v
  in
  draw ()

let in_range g lo hi =
  if lo > hi then invalid_arg "Prng.in_range: empty range";
  lo + int g (hi - lo + 1)

let bool g = Int64.logand (bits64 g) 1L = 1L

let float g =
  let r = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float r *. 0x1.0p-53

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))

let sample_without_replacement g k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Floyd's algorithm: k iterations, O(k) expected set operations. *)
  let chosen = Hashtbl.create (2 * k + 1) in
  for j = n - k to n - 1 do
    let t = int g (j + 1) in
    if Hashtbl.mem chosen t then Hashtbl.replace chosen j () else Hashtbl.replace chosen t ()
  done;
  let out = Array.make k 0 in
  let i = ref 0 in
  Hashtbl.iter (fun v () -> out.(!i) <- v; incr i) chosen;
  Array.sort compare out;
  out
