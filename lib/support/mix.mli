(** Deterministic 63-bit integer mixing for canonical-state digests.

    The exploration stack identifies machine configurations by Zobrist-style
    incremental hashes: each state component contributes [mix (encode
    component)] XORed into a running lane, so the lane is insensitive to the
    order in which components were added — exactly the board-order
    insensitivity the canonical digest needs (see docs/EXPLORATION.md).

    The finalizer is the splitmix64 avalanche (the same one {!Prng} seeds
    with), truncated to OCaml's 63-bit [int].  It is a fixed pure function:
    digests are reproducible across runs, processes and architectures with
    63-bit ints. *)

val mix : int -> int
(** Avalanche [x] into a well-distributed non-negative 63-bit value.
    [mix 0 <> 0], so XOR-accumulated lanes stay distinguishable from the
    empty lane. *)

val combine : int -> int -> int
(** [combine acc x] folds [x] into [acc] order-dependently (for hashing
    sequences, as opposed to the XOR idiom for multisets). *)

val bools : seed:int -> bool array -> int
(** Hash a bit vector under [seed], chunking 62 bits at a time. *)
