(** Lock-free concurrent digest set: the explorer's visited-configuration
    table.

    Open addressing over an array of [int Atomic.t] slots (0 = empty) with
    linear probing.  Slots only ever transition 0 → digest, and the
    transition is a CAS, so membership-or-insert ([add]) is exactly-once per
    digest across any number of domains — the property the deterministic
    exploration counts rely on.  There is no delete and no resize: capacity
    is fixed at creation, sized so the load factor stays below 3/4 at the
    entry [limit].

    Digests are truncated to 63 bits and must be well-mixed (use
    {!Mix.mix}); the all-zero digest is remapped internally.  Two distinct
    configurations hashing to the same 63-bit digest are silently merged —
    the standard hash-compaction trade-off; with [s] stored entries the
    expected number of false merges is about [s^2 / 2^64]
    (see docs/EXPLORATION.md). *)

type t

val create : ?limit:int -> unit -> t
(** A table accepting up to [min limit 3_000_000] entries (default limit
    1_000_000).  Allocation is proportional to the effective limit. *)

val add : t -> int -> [ `Added | `Present | `Full ]
(** Insert-or-find.  [`Added] — the calling domain claimed this digest, and
    no other [add] of it ever returns [`Added].  [`Present] — already
    claimed.  [`Full] — the entry limit was reached (the table may overshoot
    by at most one entry per concurrent domain). *)

val mem : t -> int -> bool

val cardinal : t -> int
(** Entries stored (racy snapshot while other domains insert). *)

val limit : t -> int
(** The effective entry limit this table enforces. *)

val capacity : t -> int
(** Allocated slot count (for occupancy telemetry). *)
