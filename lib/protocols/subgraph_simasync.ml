module P = Wb_model
module W = Wb_support.Bitbuf.Writer

let protocol ~cutoff : P.Protocol.t =
  let module Impl = struct
    let name = "subgraph-f/simasync"

    let model = P.Model.Sim_async

    let traits = P.Protocol.Traits.opaque

    let clamp n = max 0 (min n (cutoff n))

    let message_bound ~n = Codec.id_bits n + clamp n

    type local = unit

    let init _ = ()

    let wants_to_activate _ _ () = true

    let compose view _board () =
      let w = W.create () in
      Codec.write_id w (P.View.paper_id view);
      (* Only the first f(n) nodes need to speak, but every node writes its
         row prefix: the adversary cannot be dodged, and the bound holds. *)
      for u = 0 to clamp (P.View.n view) - 1 do
        W.bit w (P.View.mem_neighbor view u)
      done;
      (w, ())

    let output ~n board =
      let j = clamp n in
      let row = Array.make_matrix n j false in
      P.Board.iter
        (fun m ->
          let r = P.Message.reader m in
          let id = Codec.read_id r in
          for u = 0 to j - 1 do
            row.(id - 1).(u) <- Wb_support.Bitbuf.Reader.bit r
          done)
        board;
      let edges = ref [] in
      for u = 0 to j - 1 do
        for v = u + 1 to j - 1 do
          if row.(v).(u) then edges := (u, v) :: !edges
        done
      done;
      P.Answer.Edge_set (List.sort compare !edges)
  end in
  (module Impl)
