module P = Wb_model

let variant = { Bfs_common.with_d0 = true; check_parity = false }

module Impl = struct
  let name = "bfs/sync"

  let model = P.Model.Sync

  (* The component-jump rule reads the last written entry, so write order
     matters exactly on disconnected inputs; the lowest-id parent tie-break
     rules out equivariance. *)
  let traits = P.Protocol.Traits.canonical_when Wb_graph.Algo.is_connected

  let message_bound ~n = Bfs_common.message_bound variant ~n

  type local = unit

  let init _ = ()

  let wants_to_activate view board () = Bfs_common.wants_to_activate variant view board

  let compose view board () = (Bfs_common.write_entry variant (Bfs_common.compose_entry variant view board), ())

  let output ~n board = Bfs_common.output_forest variant ~n board
end

let protocol : P.Protocol.t = (module Impl)
