module P = Wb_model

let protocol ~k : P.Protocol.t =
  let module Build = (val Build_degenerate.protocol ~k ~decoder:`Backtracking : P.Protocol.S) in
  let module Impl = struct
    let name = Printf.sprintf "triangle-%d-degenerate/simasync" k

    let model = Build.model

    let traits = P.Protocol.Traits.opaque

    let message_bound = Build.message_bound

    type local = Build.local

    let init = Build.init

    let wants_to_activate = Build.wants_to_activate

    let compose = Build.compose

    let output ~n board =
      match Build.output ~n board with
      | P.Answer.Graph g -> P.Answer.Bool (Wb_graph.Algo.has_triangle g)
      | P.Answer.Reject -> P.Answer.Reject
      | other -> other
  end in
  (module Impl)
