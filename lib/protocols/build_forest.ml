module P = Wb_model
module W = Wb_support.Bitbuf.Writer

module Impl = struct
  let name = "build-forest/simasync"

  let model = P.Model.Sim_async

  let traits = P.Protocol.Traits.canonical ~symmetry_fixed:(fun _ -> []) ()

  let message_bound ~n = Codec.id_bits n + Codec.int_bits n + Codec.int_bits (n * (n + 1) / 2)

  type local = unit

  let init _ = ()

  let wants_to_activate _ _ () = true

  let compose view _board () =
    let w = W.create () in
    Codec.write_id w (P.View.paper_id view);
    Codec.write_int w (P.View.degree view);
    let sum = P.View.fold_neighbors view (fun acc nb -> acc + nb + 1) 0 in
    Codec.write_int w sum;
    (w, ())

  exception Bad_board

  let parse n board =
    (* entry per paper id: (present, degree, sum). *)
    let deg = Array.make (n + 1) (-1) in
    let sum = Array.make (n + 1) 0 in
    P.Board.iter
      (fun m ->
        let r = P.Message.reader m in
        let id = Codec.read_id r in
        if id < 1 || id > n || deg.(id) >= 0 then raise Bad_board;
        deg.(id) <- Codec.read_int r;
        sum.(id) <- Codec.read_int r)
      board;
    for id = 1 to n do
      if deg.(id) < 0 then raise Bad_board
    done;
    (deg, sum)

  let output ~n board =
    match parse n board with
    | exception Bad_board -> P.Answer.Reject
    | deg, sum ->
      let present = Array.make (n + 1) true in
      present.(0) <- false;
      let worklist = Queue.create () in
      for id = 1 to n do
        if deg.(id) <= 1 then Queue.add id worklist
      done;
      let edges = ref [] in
      let removed = ref 0 in
      let consistent = ref true in
      while !consistent && not (Queue.is_empty worklist) do
        let v = Queue.pop worklist in
        if present.(v) then begin
          if deg.(v) = 0 then begin
            if sum.(v) <> 0 then consistent := false;
            present.(v) <- false;
            incr removed
          end
          else begin
            (* The remaining sum is exactly the unique neighbour's id. *)
            let nb = sum.(v) in
            if nb < 1 || nb > n || nb = v || (not present.(nb)) || deg.(nb) < 1 then consistent := false
            else begin
              edges := (v - 1, nb - 1) :: !edges;
              deg.(nb) <- deg.(nb) - 1;
              sum.(nb) <- sum.(nb) - v;
              if deg.(nb) <= 1 then Queue.add nb worklist;
              present.(v) <- false;
              incr removed
            end
          end
        end
      done;
      if !consistent && !removed = n then P.Answer.Graph (Wb_graph.Graph.of_edges n !edges)
      else P.Answer.Reject (* a cycle survived every pruning step *)
end

let protocol : P.Protocol.t = (module Impl)
