module P = Wb_model
module W = Wb_support.Bitbuf.Writer

let protocol ~root : P.Protocol.t =
  let module Impl = struct
    let name = Printf.sprintf "mis/simsync(root=%d)" (root + 1)

    let model = P.Model.Sim_sync

    (* Order-insensitive board reads throughout; equivariant for every
       automorphism fixing the root. *)
    let traits = P.Protocol.Traits.canonical ~symmetry_fixed:(fun _ -> [ root ]) ()

    let message_bound ~n = Codec.id_bits n + 1

    type local = unit

    let init _ = ()

    let wants_to_activate _ _ () = true

    (* "in" = some neighbour-free membership claim; recomputed every round
       from the current whiteboard (this is what SIMASYNC cannot do). *)
    let compose view board () =
      let v = P.View.id view in
      let neighbor_in =
        P.View.fold_neighbors view
          (fun acc nb ->
            acc
            ||
            match P.Board.find_author board nb with
            | None -> false
            | Some m ->
              let r = P.Message.reader m in
              let _id = Codec.read_id r in
              Wb_support.Bitbuf.Reader.bit r)
          false
      in
      let in_mis = v = root || ((not (P.View.mem_neighbor view root)) && not neighbor_in) in
      let w = W.create () in
      Codec.write_id w (P.View.paper_id view);
      W.bit w in_mis;
      (w, ())

    let output ~n:_ board =
      let members =
        P.Board.fold
          (fun acc m ->
            let r = P.Message.reader m in
            let id = Codec.read_id r in
            if Wb_support.Bitbuf.Reader.bit r then (id - 1) :: acc else acc)
          [] board
      in
      P.Answer.Node_set (List.sort compare members)
  end in
  (module Impl)
