module P = Wb_model
module W = Wb_support.Bitbuf.Writer

let copies ~n = (2 * Wb_support.Bitbuf.width_of (max 2 n)) + 4

let levels ~n = (2 * Wb_support.Bitbuf.width_of (max 2 n)) + 2

(* Shared-randomness hashes: one 64-bit word per (seed, copy, edge slot).
   The low bits drive level inclusion (trailing zeros ~ geometric), an
   independent draw gives the fingerprint. *)
let hash_words ~seed ~copy ~slot =
  let g = Wb_support.Prng.create ((((seed * 1_000_003) + copy) * 0x2545F491) lxor slot) in
  let w1 = Wb_support.Prng.bits64 g in
  let w2 = Wb_support.Prng.bits64 g in
  (w1, w2)

let trailing_zeros w =
  if w = 0L then 64
  else begin
    let rec go w acc = if Int64.logand w 1L = 1L then acc else go (Int64.shift_right_logical w 1) (acc + 1) in
    go w 0
  end

let fingerprint_mask = (1 lsl 40) - 1

(* One sketch copy = [levels] cells of (count, id-sum, fingerprint-sum);
   all linear in the underlying signed incidence vector. *)
type cells = { count : int array; idsum : int array; fpsum : int array }

let empty_cells ~n =
  let l = levels ~n in
  { count = Array.make l 0; idsum = Array.make l 0; fpsum = Array.make l 0 }

let add_edge_to_cells ~n ~seed ~copy cells ~slot ~sign =
  let w1, w2 = hash_words ~seed ~copy ~slot in
  let depth = min (levels ~n - 1) (trailing_zeros w1) in
  let fp = Int64.to_int (Int64.logand w2 (Int64.of_int fingerprint_mask)) in
  (* level l cell collects slots with >= l trailing zeros *)
  for l = 0 to depth do
    cells.count.(l) <- cells.count.(l) + sign;
    cells.idsum.(l) <- cells.idsum.(l) + (sign * (slot + 1));
    cells.fpsum.(l) <- cells.fpsum.(l) + (sign * fp)
  done

let merge_cells ~n a b =
  let l = levels ~n in
  for i = 0 to l - 1 do
    a.count.(i) <- a.count.(i) + b.count.(i);
    a.idsum.(i) <- a.idsum.(i) + b.idsum.(i);
    a.fpsum.(i) <- a.fpsum.(i) + b.fpsum.(i)
  done

(* Recover a boundary edge slot, if some level has exactly one survivor. *)
let decode_cells ~n ~seed ~copy cells =
  let l = levels ~n in
  let rec scan level =
    if level < 0 then None
    else begin
      let c = cells.count.(level) in
      if abs c = 1 then begin
        let slot = (c * cells.idsum.(level)) - 1 in
        if slot >= 0 && slot < n * n then begin
          let _, w2 = hash_words ~seed ~copy ~slot in
          let fp = Int64.to_int (Int64.logand w2 (Int64.of_int fingerprint_mask)) in
          if cells.fpsum.(level) = c * fp then begin
            let i = slot / n and j = slot mod n in
            if i < j && j < n then Some (i, j) else scan (level - 1)
          end
          else scan (level - 1)
        end
        else scan (level - 1)
      end
      else scan (level - 1)
    end
  in
  scan (l - 1)

let node_sketch ~n ~seed view copy =
  let cells = empty_cells ~n in
  let v = P.View.id view in
  P.View.iter_neighbors view (fun u ->
      let i = min v u and j = max v u in
      let slot = (i * n) + j in
      let sign = if v = i then 1 else -1 in
      add_edge_to_cells ~n ~seed ~copy cells ~slot ~sign);
  cells

let write_cells w cells =
  Array.iter (Codec.write_signed w) cells.count;
  Array.iter (Codec.write_signed w) cells.idsum;
  Array.iter (Codec.write_signed w) cells.fpsum

let read_cells ~n r =
  let l = levels ~n in
  let count = Array.init l (fun _ -> Codec.read_signed r) in
  let idsum = Array.init l (fun _ -> Codec.read_signed r) in
  let fpsum = Array.init l (fun _ -> Codec.read_signed r) in
  { count; idsum; fpsum }

(* Union-find for the referee's Borůvka. *)
let find parent v =
  let rec go v = if parent.(v) = v then v else go parent.(v) in
  go v

(* The shared protocol skeleton; [finish] turns the Borůvka outcome into
   the answer. *)
let make ~seed ~name ~finish : P.Protocol.t =
  let module Impl = struct
    let name = name

    let model = P.Model.Sim_async

    let traits = P.Protocol.Traits.opaque

    let message_bound ~n =
      (* copies * levels cells of three zig-zag ints; idsum can reach
         n^3-ish and fpsum n^2 * 2^40: bound each by 64 coded bits. *)
      Codec.id_bits n + (copies ~n * levels ~n * 3 * 80)

    type local = unit

    let init _ = ()

    let wants_to_activate _ _ () = true

    let compose view _board () =
      let n = P.View.n view in
      let w = W.create () in
      Codec.write_id w (P.View.paper_id view);
      for copy = 0 to copies ~n - 1 do
        write_cells w (node_sketch ~n ~seed view copy)
      done;
      (w, ())

    let output ~n board =
      (* sketches.(v).(copy) *)
      let sketches = Array.make n [||] in
      P.Board.iter
        (fun m ->
          let r = P.Message.reader m in
          let id = Codec.read_id r in
          sketches.(id - 1) <- Array.init (copies ~n) (fun _ -> read_cells ~n r))
        board;
      let parent = Array.init n (fun v -> v) in
      let forest = ref [] in
      for copy = 0 to copies ~n - 1 do
        (* Sum each current component's sketches for this fresh copy. *)
        let acc = Hashtbl.create 16 in
        for v = 0 to n - 1 do
          let root = find parent v in
          let cells =
            match Hashtbl.find_opt acc root with
            | Some c -> c
            | None ->
              let c = empty_cells ~n in
              Hashtbl.replace acc root c;
              c
          in
          merge_cells ~n cells sketches.(v).(copy)
        done;
        Hashtbl.iter
          (fun root cells ->
            match decode_cells ~n ~seed ~copy cells with
            | Some (i, j) ->
              let ri = find parent i and rj = find parent j in
              if ri <> rj && (find parent root = ri || find parent root = rj) then begin
                parent.(ri) <- rj;
                forest := (i, j) :: !forest
              end
            | None -> ())
          acc
      done;
      let components = ref 0 in
      for v = 0 to n - 1 do
        if find parent v = v then incr components
      done;
      finish ~n ~components:!components ~forest:(List.sort compare !forest)
  end in
  (module Impl)

let connectivity ~seed =
  make ~seed
    ~name:(Printf.sprintf "connectivity-sketch/simasync(seed=%d)" seed)
    ~finish:(fun ~n ~components ~forest ->
      ignore n;
      ignore forest;
      P.Answer.Bool (components = 1))

let spanning_forest ~seed =
  make ~seed
    ~name:(Printf.sprintf "spanning-forest-sketch/simasync(seed=%d)" seed)
    ~finish:(fun ~n ~components ~forest ->
      ignore n;
      ignore components;
      P.Answer.Edge_set forest)
