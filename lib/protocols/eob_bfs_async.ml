module P = Wb_model

let variant = { Bfs_common.with_d0 = false; check_parity = true }

module Impl = struct
  let name = "eob-bfs/async"

  let model = P.Model.Async

  let traits = P.Protocol.Traits.canonical_when Wb_graph.Algo.is_connected

  let message_bound ~n = Bfs_common.message_bound variant ~n

  type local = unit

  let init _ = ()

  let wants_to_activate view board () = Bfs_common.wants_to_activate variant view board

  let compose view board () = (Bfs_common.write_entry variant (Bfs_common.compose_entry variant view board), ())

  let output ~n board = Bfs_common.output_forest variant ~n board
end

let protocol : P.Protocol.t = (module Impl)
