module P = Wb_model
module W = Wb_support.Bitbuf.Writer
module Nat = Wb_bignum.Nat

(* Domain-local so parallel exploration workers never mutate a shared
   table concurrently; each domain rebuilds the (cheap) tables it needs. *)
let table_cache : (int * int, Decode.Table.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let table_for ~n ~k =
  let table_cache = Domain.DLS.get table_cache in
  match Hashtbl.find_opt table_cache (n, k) with
  | Some t -> t
  | None ->
    let t = Decode.Table.build ~n ~k in
    Hashtbl.replace table_cache (n, k) t;
    t

let protocol ~k ~decoder : P.Protocol.t =
  if k < 1 then invalid_arg "Build_degenerate.protocol: k >= 1";
  let module Impl = struct
    let name =
      Printf.sprintf "build-%d-degenerate/simasync/%s" k
        (match decoder with `Backtracking -> "backtracking" | `Table -> "table")

    let model = P.Model.Sim_async

    let traits = P.Protocol.Traits.opaque

    (* ID + degree + k power sums, each sum at most n * n^p <= n^(k+1). *)
    let message_bound ~n =
      let sum_bits p = Codec.big_bits (Nat.mul (Nat.of_int (max n 1)) (Nat.pow_int (max n 1) p)) in
      let sums = ref 0 in
      for p = 1 to k do
        sums := !sums + sum_bits p
      done;
      Codec.id_bits n + Codec.int_bits n + !sums

    type local = unit

    let init _ = ()

    let wants_to_activate _ _ () = true

    let compose view _board () =
      let w = W.create () in
      Codec.write_id w (P.View.paper_id view);
      Codec.write_int w (P.View.degree view);
      let ids = P.View.fold_neighbors view (fun acc nb -> (nb + 1) :: acc) [] in
      let sums = Decode.power_sums ~k ids in
      Array.iter (Codec.write_big w) sums;
      (w, ())

    exception Bad_board

    let parse n board =
      let deg = Array.make (n + 1) (-1) in
      let sums = Array.make (n + 1) [||] in
      P.Board.iter
        (fun m ->
          let r = P.Message.reader m in
          let id = Codec.read_id r in
          if id < 1 || id > n || deg.(id) >= 0 then raise Bad_board;
          deg.(id) <- Codec.read_int r;
          sums.(id) <- Array.init k (fun _ -> Codec.read_big r))
        board;
      for id = 1 to n do
        if deg.(id) < 0 then raise Bad_board
      done;
      (deg, sums)

    let output ~n board =
      match parse n board with
      | exception Bad_board -> P.Answer.Reject
      | deg, sums ->
        let decode_entry =
          match decoder with
          | `Backtracking ->
            let ctx = Decode.Context.create ~n ~k in
            fun ~d b -> Decode.Context.decode ctx ~d b
          | `Table ->
            let table = table_for ~n ~k in
            fun ~d b -> Decode.Table.decode table ~d b
        in
        let present = Array.make (n + 1) true in
        present.(0) <- false;
        let worklist = Queue.create () in
        for id = 1 to n do
          if deg.(id) <= k then Queue.add id worklist
        done;
        let edges = ref [] in
        let removed = ref 0 in
        let consistent = ref true in
        let prune v =
          match decode_entry ~d:deg.(v) sums.(v) with
          | None -> consistent := false
          | Some nbrs ->
            if List.exists (fun nb -> nb = v || not present.(nb)) nbrs then consistent := false
            else begin
              List.iter
                (fun nb ->
                  edges := (v - 1, nb - 1) :: !edges;
                  (match Decode.subtract_member sums.(nb) v with
                  | updated -> sums.(nb) <- updated
                  | exception Invalid_argument _ -> consistent := false);
                  deg.(nb) <- deg.(nb) - 1;
                  if deg.(nb) < 0 then consistent := false;
                  if deg.(nb) <= k then Queue.add nb worklist)
                nbrs;
              present.(v) <- false;
              incr removed
            end
        in
        while !consistent && not (Queue.is_empty worklist) do
          let v = Queue.pop worklist in
          if present.(v) && deg.(v) <= k then prune v
        done;
        if !consistent && !removed = n then P.Answer.Graph (Wb_graph.Graph.of_edges n !edges)
        else P.Answer.Reject (* no node of degree <= k was left: degeneracy > k *)
  end in
  (module Impl)
