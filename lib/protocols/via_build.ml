module P = Wb_model

let protocol ~k problem : P.Protocol.t =
  let module Build = (val Build_degenerate.protocol ~k ~decoder:`Backtracking : P.Protocol.S) in
  let module Impl = struct
    let name = Printf.sprintf "%s-via-build-%d/simasync" (P.Problems.name problem) k

    let model = Build.model

    let traits = P.Protocol.Traits.opaque

    let message_bound = Build.message_bound

    type local = Build.local

    let init = Build.init

    let wants_to_activate = Build.wants_to_activate

    let compose = Build.compose

    let output ~n board =
      match Build.output ~n board with
      | P.Answer.Graph g -> P.Problems.reference problem g
      | P.Answer.Reject -> P.Answer.Reject
      | other -> other
  end in
  (module Impl)
