module P = Wb_model
module W = Wb_support.Bitbuf.Writer
module R = Wb_support.Bitbuf.Reader

type variant = { with_d0 : bool; check_parity : bool }

let variant_equal a b = a.with_d0 = b.with_d0 && a.check_parity = b.check_parity

type entry =
  | Invalid of int
  | Node of { id : int; layer : int; parent : int; dm : int; d0 : int; dp : int }

let write_entry variant e =
  let w = W.create () in
  (match e with
  | Invalid id ->
    W.bit w true;
    Codec.write_id w id
  | Node { id; layer; parent; dm; d0; dp } ->
    W.bit w false;
    Codec.write_id w id;
    Codec.write_int w layer;
    Codec.write_int w parent;
    Codec.write_int w dm;
    if variant.with_d0 then Codec.write_int w d0;
    Codec.write_int w dp);
  w

let parse_message variant m =
  let r = P.Message.reader m in
  if R.bit r then Invalid (Codec.read_id r)
  else begin
    let id = Codec.read_id r in
    let layer = Codec.read_int r in
    let parent = Codec.read_int r in
    let dm = Codec.read_int r in
    let d0 = if variant.with_d0 then Codec.read_int r else 0 in
    let dp = Codec.read_int r in
    Node { id; layer; parent; dm; d0; dp }
  end

let message_bound variant ~n =
  let field = Codec.int_bits n in
  1 + Codec.id_bits n + (field * if variant.with_d0 then 5 else 4)

module Analysis = struct
  type layer_sums = { mutable sm : int; mutable s0 : int; mutable sp : int }

  type t = {
    variant : variant;
    board : P.Board.t;
    entry_list : entry Wb_support.Dynarray.t;
    mutable parsed : int;  (** board positions parsed so far. *)
    mutable board_gen : int;
    mutable invalid_count : int;
    layer_by_id : int array;  (** by paper id; -1 unknown. *)
    written_by_index : bool array;
    mutable comp_sums : (int, layer_sums) Hashtbl.t;  (** current component. *)
    mutable last_normal : (int * int) option;
  }

  let fresh variant board =
    { variant;
      board;
      entry_list = Wb_support.Dynarray.create ();
      parsed = 0;
      board_gen = P.Board.generation board;
      invalid_count = 0;
      layer_by_id = Array.make (P.Board.n board + 1) (-1);
      written_by_index = Array.make (P.Board.n board) false;
      comp_sums = Hashtbl.create 8;
      last_normal = None }

  let sums_for t layer =
    match Hashtbl.find_opt t.comp_sums layer with
    | Some s -> s
    | None ->
      let s = { sm = 0; s0 = 0; sp = 0 } in
      Hashtbl.replace t.comp_sums layer s;
      s

  let absorb t e =
    Wb_support.Dynarray.push t.entry_list e;
    (match e with
    | Invalid id ->
      t.invalid_count <- t.invalid_count + 1;
      t.written_by_index.(id - 1) <- true
    | Node { id; layer; parent; dm; d0; dp } ->
      if parent = 0 then t.comp_sums <- Hashtbl.create 8 (* new component starts *);
      t.written_by_index.(id - 1) <- true;
      t.layer_by_id.(id) <- layer;
      t.last_normal <- Some (id, layer);
      let s = sums_for t layer in
      s.sm <- s.sm + dm;
      s.s0 <- s.s0 + d0;
      s.sp <- s.sp + dp)

  let catch_up t =
    let len = P.Board.length t.board in
    for i = t.parsed to len - 1 do
      absorb t (parse_message t.variant (P.Board.get t.board i))
    done;
    t.parsed <- len

  (* One live digest per (board, variant) and per domain — domain-local so
     parallel exploration workers never share a digest; a shrunken board
     (exhaustive exploration backtracked) forces a rebuild. *)
  let cache : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

  let get variant board =
    let cache = Domain.DLS.get cache in
    let current =
      match !cache with
      | Some t
        when t.board == board && variant_equal t.variant variant
             && t.board_gen = P.Board.generation board
             && t.parsed <= P.Board.length board -> t
      | Some _ | None ->
        let t = fresh variant board in
        cache := Some t;
        t
    in
    catch_up current;
    current

  let invalid_seen t = t.invalid_count > 0

  let layer_of t ~paper_id = if t.layer_by_id.(paper_id) < 0 then None else Some t.layer_by_id.(paper_id)

  let written t v = t.written_by_index.(v)

  let sums_view t layer =
    match Hashtbl.find_opt t.comp_sums layer with
    | Some s -> (s.sm, s.s0, s.sp)
    | None -> (0, 0, 0)

  let complete t k =
    k <= 0
    ||
    let sm, _, _ = sums_view t k in
    let _, prev_s0, prev_sp = sums_view t (k - 1) in
    sm = prev_sp - if t.variant.with_d0 then 2 * prev_s0 else 0

  let no_forward t k =
    let _, s0, sp = sums_view t k in
    sp - (if t.variant.with_d0 then 2 * s0 else 0) = 0

  let last_normal t = t.last_normal

  let min_unwritten t =
    let n = Array.length t.written_by_index in
    let rec go v = if v >= n then None else if t.written_by_index.(v) then go (v + 1) else Some v in
    go 0

  let entries t = Wb_support.Dynarray.to_list t.entry_list
end

let locally_invalid view =
  let my_parity = P.View.paper_id view mod 2 in
  P.View.fold_neighbors view (fun acc nb -> acc || (nb + 1) mod 2 = my_parity) false

(* Layers of the written neighbours of [view]; empty when none wrote. *)
let written_neighbor_layers analysis view =
  P.View.fold_neighbors view
    (fun acc nb ->
      match Analysis.layer_of analysis ~paper_id:(nb + 1) with
      | Some layer -> (nb + 1, layer) :: acc
      | None -> acc)
    []

let wants_to_activate variant view board =
  if variant.check_parity && locally_invalid view then true
  else begin
    let analysis = Analysis.get variant board in
    if variant.check_parity && Analysis.invalid_seen analysis then true
    else if P.Board.length board = 0 then P.View.id view = 0
    else begin
      match written_neighbor_layers analysis view with
      | [] -> begin
        (* Component-jump rule: the previous component is fully covered and
           this node is the smallest identifier left. *)
        match (Analysis.last_normal analysis, Analysis.min_unwritten analysis) with
        | Some (last_id, last_layer), Some candidate ->
          candidate = P.View.id view
          && (not (P.View.mem_neighbor view (last_id - 1)))
          && Analysis.complete analysis last_layer
          && Analysis.no_forward analysis last_layer
        | (Some _ | None), _ -> false
      end
      | layers ->
        let min_layer = List.fold_left (fun acc (_, l) -> min acc l) max_int layers in
        Analysis.complete analysis min_layer
    end
  end

let compose_entry variant view board =
  let analysis = Analysis.get variant board in
  if (variant.check_parity && locally_invalid view)
     || (variant.check_parity && Analysis.invalid_seen analysis)
  then Invalid (P.View.paper_id view)
  else begin
    match written_neighbor_layers analysis view with
    | [] ->
      Node { id = P.View.paper_id view; layer = 0; parent = 0; dm = 0; d0 = 0; dp = P.View.degree view }
    | layers ->
      let min_layer = List.fold_left (fun acc (_, l) -> min acc l) max_int layers in
      let my_layer = min_layer + 1 in
      let dm = List.length (List.filter (fun (_, l) -> l = my_layer - 1) layers) in
      let d0 = if variant.with_d0 then List.length (List.filter (fun (_, l) -> l = my_layer) layers) else 0 in
      let parent =
        List.fold_left (fun acc (id, l) -> if l = my_layer - 1 then min acc id else acc) max_int layers
      in
      Node { id = P.View.paper_id view; layer = my_layer; parent; dm; d0; dp = P.View.degree view - dm }
  end

let collect variant ~n board =
  let entries =
    List.map (parse_message variant) (P.Board.to_list board)
  in
  if List.exists (function Invalid _ -> true | Node _ -> false) entries then None
  else begin
    let parent = Array.make n min_int in
    List.iter
      (function
        | Invalid _ -> ()
        | Node { id; parent = p; _ } -> if id >= 1 && id <= n then parent.(id - 1) <- p - 1)
      entries;
    if Array.exists (fun p -> p = min_int) parent then None else Some parent
  end

let output_forest variant ~n board =
  match collect variant ~n board with
  | None -> P.Answer.Reject
  | Some parent -> P.Answer.Forest parent

let count_roots variant ~n board =
  match collect variant ~n board with
  | None -> None
  | Some parent -> Some (Array.fold_left (fun acc p -> if p = -1 then acc + 1 else acc) 0 parent)
