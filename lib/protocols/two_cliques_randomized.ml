module P = Wb_model
module W = Wb_support.Bitbuf.Writer

(* Per-identifier pseudo-random word from the shared seed. *)
let word ~seed ~bits id =
  let g = Wb_support.Prng.create ((seed * 0x9E3779B9) lxor id) in
  Int64.to_int (Int64.logand (Wb_support.Prng.bits64 g) (Int64.of_int ((1 lsl bits) - 1)))

let protocol ~seed ~bits : P.Protocol.t =
  if bits < 1 || bits > 30 then invalid_arg "Two_cliques_randomized.protocol: bits in [1,30]";
  let module Impl = struct
    let name = Printf.sprintf "two-cliques-randomized/simasync(b=%d)" bits

    let model = P.Model.Sim_async

    let traits = P.Protocol.Traits.opaque

    let message_bound ~n = Codec.id_bits n + bits

    type local = unit

    let init _ = ()

    let wants_to_activate _ _ () = true

    let compose view _board () =
      let mask = (1 lsl bits) - 1 in
      let fingerprint =
        P.View.fold_neighbors view
          (fun acc nb -> (acc + word ~seed ~bits (nb + 1)) land mask)
          (word ~seed ~bits (P.View.paper_id view))
      in
      let w = W.create () in
      Codec.write_id w (P.View.paper_id view);
      W.fixed w ~width:bits fingerprint;
      (w, ())

    let output ~n board =
      let counts = Hashtbl.create 16 in
      P.Board.iter
        (fun m ->
          let r = P.Message.reader m in
          let _id = Codec.read_id r in
          let fp = Wb_support.Bitbuf.Reader.fixed r ~width:bits in
          Hashtbl.replace counts fp (1 + Option.value ~default:0 (Hashtbl.find_opt counts fp)))
        board;
      let classes = Hashtbl.fold (fun _ c acc -> c :: acc) counts [] in
      P.Answer.Bool (List.sort compare classes = [ n / 2; n / 2 ])
  end in
  (module Impl)
