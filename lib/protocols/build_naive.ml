module P = Wb_model
module W = Wb_support.Bitbuf.Writer

module Impl = struct
  let name = "build-naive/simasync"

  let model = P.Model.Sim_async

  let traits = P.Protocol.Traits.canonical ~symmetry_fixed:(fun _ -> []) ()

  let message_bound ~n = Codec.id_bits n + n

  type local = unit

  let init _ = ()

  let wants_to_activate _ _ () = true

  let compose view _board () =
    let w = W.create () in
    Codec.write_id w (P.View.paper_id view);
    for u = 0 to P.View.n view - 1 do
      W.bit w (P.View.mem_neighbor view u)
    done;
    (w, ())

  let output ~n board =
    let matrix = Array.make_matrix n n false in
    P.Board.iter
      (fun m ->
        let r = P.Message.reader m in
        let id = Codec.read_id r in
        for u = 0 to n - 1 do
          matrix.(id - 1).(u) <- Wb_support.Bitbuf.Reader.bit r
        done)
      board;
    P.Answer.Graph (Wb_graph.Graph.of_matrix matrix)
end

let protocol : P.Protocol.t = (module Impl)
