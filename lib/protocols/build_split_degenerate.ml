module P = Wb_model
module W = Wb_support.Bitbuf.Writer
module Nat = Wb_bignum.Nat

let protocol ~k : P.Protocol.t =
  if k < 1 then invalid_arg "Build_split_degenerate.protocol: k >= 1";
  let module Impl = struct
    let name = Printf.sprintf "build-split-%d-degenerate/simasync" k

    let model = P.Model.Sim_async

    let traits = P.Protocol.Traits.opaque

    let message_bound ~n =
      let sum_bits p = Codec.big_bits (Nat.mul (Nat.of_int (max n 1)) (Nat.pow_int (max n 1) p)) in
      let sums = ref 0 in
      for p = 1 to k do
        sums := !sums + (2 * sum_bits p)
      done;
      Codec.id_bits n + Codec.int_bits n + !sums

    type local = unit

    let init _ = ()

    let wants_to_activate _ _ () = true

    let compose view _board () =
      let w = W.create () in
      let self = P.View.paper_id view in
      Codec.write_id w self;
      Codec.write_int w (P.View.degree view);
      let nbr_ids = P.View.fold_neighbors view (fun acc nb -> (nb + 1) :: acc) [] in
      let non_ids =
        List.filter
          (fun id -> id <> self && not (List.mem id nbr_ids))
          (List.init (P.View.n view) (fun i -> i + 1))
      in
      Array.iter (Codec.write_big w) (Decode.power_sums ~k nbr_ids);
      Array.iter (Codec.write_big w) (Decode.power_sums ~k non_ids);
      (w, ())

    exception Bad_board

    let parse n board =
      let deg = Array.make (n + 1) (-1) in
      let nbr_sums = Array.make (n + 1) [||] in
      let non_sums = Array.make (n + 1) [||] in
      P.Board.iter
        (fun m ->
          let r = P.Message.reader m in
          let id = Codec.read_id r in
          if id < 1 || id > n || deg.(id) >= 0 then raise Bad_board;
          deg.(id) <- Codec.read_int r;
          nbr_sums.(id) <- Array.init k (fun _ -> Codec.read_big r);
          non_sums.(id) <- Array.init k (fun _ -> Codec.read_big r))
        board;
      for id = 1 to n do
        if deg.(id) < 0 then raise Bad_board
      done;
      (deg, nbr_sums, non_sums)

    let output ~n board =
      match parse n board with
      | exception Bad_board -> P.Answer.Reject
      | deg, nbr_sums, non_sums ->
        let ctx = Decode.Context.create ~n ~k in
        let present = Array.make (n + 1) false in
        for id = 1 to n do
          present.(id) <- true
        done;
        let remaining = ref n in
        let edges = ref [] in
        let consistent = ref true in
        (* Remove [v]; [nbrs] are its neighbours among the remaining nodes
           (all other remaining nodes are its non-neighbours). *)
        let remove v nbrs =
          let is_nbr = Array.make (n + 1) false in
          List.iter (fun w -> is_nbr.(w) <- true) nbrs;
          List.iter (fun w -> edges := (v - 1, w - 1) :: !edges) nbrs;
          present.(v) <- false;
          decr remaining;
          for w = 1 to n do
            if present.(w) then begin
              let sums = if is_nbr.(w) then nbr_sums else non_sums in
              if is_nbr.(w) then deg.(w) <- deg.(w) - 1;
              match Decode.subtract_member sums.(w) v with
              | updated -> sums.(w) <- updated
              | exception Invalid_argument _ -> consistent := false
            end
          done
        in
        let try_prune () =
          (* Any sparse or dense node will do; greedy order is safe. *)
          let rec find v =
            if v > n then false
            else if present.(v) && deg.(v) <= k then begin
              match Decode.Context.decode ctx ~d:deg.(v) nbr_sums.(v) with
              | Some nbrs when List.for_all (fun w -> w <> v && present.(w)) nbrs ->
                remove v nbrs;
                true
              | Some _ | None ->
                consistent := false;
                false
            end
            else if present.(v) && !remaining - 1 - deg.(v) <= k then begin
              let codeg = !remaining - 1 - deg.(v) in
              if codeg < 0 then begin
                consistent := false;
                false
              end
              else begin
                match Decode.Context.decode ctx ~d:codeg non_sums.(v) with
                | Some nons when List.for_all (fun w -> w <> v && present.(w)) nons ->
                  let nbrs = ref [] in
                  for w = n downto 1 do
                    if present.(w) && w <> v && not (List.mem w nons) then nbrs := w :: !nbrs
                  done;
                  remove v !nbrs;
                  true
                | Some _ | None ->
                  consistent := false;
                  false
              end
            end
            else find (v + 1)
          in
          find 1
        in
        while !consistent && !remaining > 0 && try_prune () do
          ()
        done;
        if !consistent && !remaining = 0 then P.Answer.Graph (Wb_graph.Graph.of_edges n !edges)
        else P.Answer.Reject
  end in
  (module Impl)
