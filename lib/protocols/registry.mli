(** Catalogue of every protocol in the repository, with the problem each
    solves and the promise class it expects — what the CLI, the Table 2
    harness and the benches iterate over. *)

type promise =
  | Any_graph
  | Degeneracy_at_most of int
  | Split_degeneracy_at_most of int  (** Section 3's extended class. *)
  | Forest
  | Even_odd_bipartite
  | Bipartite
  | Regular_two_half  (** the 2-CLIQUES promise: (n/2 - 1)-regular, n even. *)

type entry = {
  key : string;  (** stable CLI name. *)
  protocol : Wb_model.Protocol.t;
  problem : int -> Wb_model.Problems.t;
      (** instance for an n-node system (SUBGRAPH_f depends on n). *)
  promise : promise;
  randomized : bool;
  certificate : Wb_obs.Cost.certificate;
      (** The protocol's paper bound as an executable envelope, plus the
          Lemma 3 information floor where the counting argument applies
          (BUILD-style problems).  The envelope restates the bound
          independently of the protocol's [message_bound], so the two can
          drift apart only by breaking the [@check-cost] sweep. *)
}

val all : unit -> entry list
val find : string -> entry option
val satisfies_promise : promise -> Wb_graph.Graph.t -> bool

val sweep_graph : entry -> seed:int -> n:int -> Wb_graph.Graph.t
(** A promise-satisfying [n]-node instance for cost sweeps, deterministic in
    [seed].  [Regular_two_half] entries get [2 * (n / 2)] nodes. *)
