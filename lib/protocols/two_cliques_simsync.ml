module P = Wb_model
module W = Wb_support.Bitbuf.Writer

type label = Zero | One | Conflict

let label_code = function Zero -> 0 | One -> 1 | Conflict -> 2

let label_of_code = function 0 -> Zero | 1 -> One | 2 -> Conflict | _ -> invalid_arg "two-cliques label"

module Impl = struct
  let name = "two-cliques/simsync"

  let model = P.Model.Sim_sync

  let traits = P.Protocol.Traits.canonical ~symmetry_fixed:(fun _ -> []) ()

  let message_bound ~n = Codec.id_bits n + Codec.int_bits 2

  type local = unit

  let init _ = ()

  let wants_to_activate _ _ () = true

  let compose view board () =
    let labels_of_written_neighbors =
      P.View.fold_neighbors view
        (fun acc nb ->
          match P.Board.find_author board nb with
          | None -> acc
          | Some m ->
            let r = P.Message.reader m in
            let _id = Codec.read_id r in
            label_of_code (Codec.read_int r) :: acc)
        []
    in
    let my_label =
      if P.Board.length board = 0 then Zero
      else begin
        match labels_of_written_neighbors with
        | [] -> One
        | first :: rest -> if List.for_all (fun l -> l = first) rest then first else Conflict
      end
    in
    let w = W.create () in
    Codec.write_id w (P.View.paper_id view);
    Codec.write_int w (label_code my_label);
    (w, ())

  let output ~n board =
    let zeros = ref 0 and ones = ref 0 and conflicts = ref 0 in
    P.Board.iter
      (fun m ->
        let r = P.Message.reader m in
        let _id = Codec.read_id r in
        match label_of_code (Codec.read_int r) with
        | Zero -> incr zeros
        | One -> incr ones
        | Conflict -> incr conflicts)
      board;
    P.Answer.Bool (!conflicts = 0 && !zeros = n / 2 && !ones = n / 2)
end

let protocol : P.Protocol.t = (module Impl)
