module P = Wb_model
module Nat = Wb_bignum.Nat
module Cost = Wb_obs.Cost

type promise =
  | Any_graph
  | Degeneracy_at_most of int
  | Split_degeneracy_at_most of int
  | Forest
  | Even_odd_bipartite
  | Bipartite
  | Regular_two_half

type entry = {
  key : string;
  protocol : P.Protocol.t;
  problem : int -> P.Problems.t;
  promise : promise;
  randomized : bool;
  certificate : Cost.certificate;
}

(* Lemma 3 floors.  [Wb_reductions.Counting] owns the class counts, but
   wb_reductions depends on this library, so the arithmetic is duplicated
   here (test_cost cross-checks the two).  A floor is declared only where
   the counting argument applies: BUILD-style problems whose answer
   determines the input within the promise class.  min bits per message =
   ceil(class_bits / n) since every node writes exactly once. *)
let ceil_div a b = (a + b - 1) / b

(* Cayley: n^(n-2) labelled trees.  Trees are k-degenerate for every k >= 1
   and split-k-degenerate for every k >= 1 (peel leaves), so this floor is
   sound for all the degenerate BUILD variants. *)
let tree_floor ~n =
  if n <= 2 then 0
  else ceil_div (Nat.bit_length (Nat.sub (Nat.pow_int n (n - 2)) Nat.one)) n

(* 2^(n(n-1)/2) graphs on n labelled nodes. *)
let all_graphs_floor ~n = if n = 0 then 0 else ceil_div (n * (n - 1) / 2) n

(* Graphs whose edges live among the first j = min(n, f(n)) identifiers:
   2^(j(j-1)/2) of them, all distinguishable by SUBGRAPH_f's answer. *)
let tail_floor ~f ~n =
  if n = 0 then 0
  else
    let j = max 0 (min n (f n)) in
    ceil_div (j * (j - 1) / 2) n

(* Envelopes.  Each is the paper bound restated independently of the
   protocol's [message_bound] — same arithmetic, second source — so a
   refactor that inflates an encoder breaks the certificate even if it
   also bumps the protocol's own cap. *)
let no_floor ~form envelope = { Cost.form; envelope; floor = None; floor_class = None }

let with_tree_floor ~form envelope =
  { Cost.form; envelope; floor = Some tree_floor; floor_class = Some "labelled trees" }

let cert_build_forest =
  with_tree_floor ~form:"id(n) + int(n) + int(n(n+1)/2) = O(log n)" (fun ~n ->
      Codec.id_bits n + Codec.int_bits n + Codec.int_bits (n * (n + 1) / 2))

(* id + degree + power sums p = 1..k, each sum <= n * n^p = n^(p+1). *)
let cert_build_degenerate ~k =
  with_tree_floor
    ~form:(Printf.sprintf "id(n) + int(n) + sum_{p=1}^{%d} big(n^(p+1)) = O(k^2 log n)" k)
    (fun ~n ->
      let sums = ref 0 in
      for p = 1 to k do
        sums := !sums + Codec.big_bits (Nat.pow_int (max n 1) (p + 1))
      done;
      Codec.id_bits n + Codec.int_bits n + !sums)

(* Decision problems reached through the Section 3 builder write the same
   payloads as build-k-degenerate but answer one bit, so no counting floor. *)
let cert_via_build ~k =
  let c = cert_build_degenerate ~k in
  { c with Cost.floor = None; floor_class = None }

(* Neighbour and non-neighbour power sums, two per exponent. *)
let cert_build_split ~k =
  with_tree_floor
    ~form:(Printf.sprintf "id(n) + int(n) + 2 sum_{p=1}^{%d} big(n^(p+1))" k)
    (fun ~n ->
      let sums = ref 0 in
      for p = 1 to k do
        sums := !sums + (2 * Codec.big_bits (Nat.pow_int (max n 1) (p + 1)))
      done;
      Codec.id_bits n + Codec.int_bits n + !sums)

let cert_build_naive =
  { Cost.form = "id(n) + n adjacency-row bits";
    envelope = (fun ~n -> Codec.id_bits n + n);
    floor = Some all_graphs_floor;
    floor_class = Some "all graphs" }

let cert_mis = no_floor ~form:"id(n) + 1 joining bit" (fun ~n -> Codec.id_bits n + 1)

let cert_two_cliques =
  no_floor ~form:"id(n) + int(2) side tag" (fun ~n -> Codec.id_bits n + Codec.int_bits 2)

let cert_two_cliques_randomized ~bits =
  no_floor
    ~form:(Printf.sprintf "id(n) + %d fingerprint bits" bits)
    (fun ~n -> Codec.id_bits n + bits)

(* The BFS family writes one tagged record of int(n)-width fields: 4 of
   them, plus d0 for the variants that carry the root distance. *)
let cert_bfs ~with_d0 =
  let fields = if with_d0 then 5 else 4 in
  no_floor
    ~form:(Printf.sprintf "1 + id(n) + %d int(n) fields = O(log n)" fields)
    (fun ~n -> 1 + Codec.id_bits n + (fields * Codec.int_bits n))

let cert_subgraph ~cutoff =
  { Cost.form = "id(n) + min(n, floor(sqrt n)) row bits";
    envelope = (fun ~n -> Codec.id_bits n + max 0 (min n (cutoff n)));
    floor = Some (tail_floor ~f:cutoff);
    floor_class = Some "edges only among first f(n) nodes" }

(* copies(n) * levels(n) cells of three zig-zag ints, each coded <= 80
   bits; copies = 2w+4, levels = 2w+2 with w = width(max 2 n). *)
let cert_sketch =
  no_floor ~form:"id(n) + (2w+4)(2w+2)*240 bits, w = width(n) — O(log^2 n) words" (fun ~n ->
      let w = Wb_support.Bitbuf.width_of (max 2 n) in
      Codec.id_bits n + (((2 * w) + 4) * ((2 * w) + 2) * 3 * 80))

let plain key protocol problem promise certificate =
  { key; protocol; problem = (fun _ -> problem); promise; randomized = false; certificate }

let all () =
  [ plain "build-forest" Build_forest.protocol P.Problems.Build Forest cert_build_forest;
    plain "build-2-degenerate" (Build_degenerate.protocol ~k:2 ~decoder:`Backtracking) P.Problems.Build
      (Degeneracy_at_most 2) (cert_build_degenerate ~k:2);
    plain "build-3-degenerate" (Build_degenerate.protocol ~k:3 ~decoder:`Backtracking) P.Problems.Build
      (Degeneracy_at_most 3) (cert_build_degenerate ~k:3);
    plain "build-5-degenerate" (Build_degenerate.protocol ~k:5 ~decoder:`Backtracking) P.Problems.Build
      (Degeneracy_at_most 5) (cert_build_degenerate ~k:5);
    plain "build-naive" Build_naive.protocol P.Problems.Build Any_graph cert_build_naive;
    plain "mis" (Mis_simsync.protocol ~root:0) (P.Problems.Rooted_mis 0) Any_graph cert_mis;
    plain "two-cliques" Two_cliques_simsync.protocol P.Problems.Two_cliques Regular_two_half
      cert_two_cliques;
    { key = "two-cliques-randomized";
      protocol = Two_cliques_randomized.protocol ~seed:42 ~bits:24;
      problem = (fun _ -> P.Problems.Two_cliques);
      promise = Regular_two_half;
      randomized = true;
      certificate = cert_two_cliques_randomized ~bits:24 };
    plain "eob-bfs" Eob_bfs_async.protocol P.Problems.Eob_bfs Any_graph (cert_bfs ~with_d0:false);
    plain "bfs-bipartite" Bfs_bipartite_async.protocol P.Problems.Bfs Bipartite
      (cert_bfs ~with_d0:false);
    plain "bfs" Bfs_sync.protocol P.Problems.Bfs Any_graph (cert_bfs ~with_d0:true);
    plain "connectivity" Connectivity_sync.protocol P.Problems.Connectivity Any_graph
      (cert_bfs ~with_d0:true);
    (let cutoff n = int_of_float (sqrt (float_of_int n)) in
     { key = "subgraph-sqrt";
       protocol = Subgraph_simasync.protocol ~cutoff;
       problem = (fun n -> P.Problems.Subgraph (cutoff n));
       promise = Any_graph;
       randomized = false;
       certificate = cert_subgraph ~cutoff });
    plain "triangle-3-degenerate" (Triangle_degenerate.protocol ~k:3) P.Problems.Triangle
      (Degeneracy_at_most 3) (cert_via_build ~k:3);
    plain "square-3-degenerate" (Via_build.protocol ~k:3 P.Problems.Square) P.Problems.Square
      (Degeneracy_at_most 3) (cert_via_build ~k:3);
    plain "diameter3-3-degenerate"
      (Via_build.protocol ~k:3 (P.Problems.Diameter_at_most 3))
      (P.Problems.Diameter_at_most 3) (Degeneracy_at_most 3) (cert_via_build ~k:3);
    plain "build-split-2-degenerate" (Build_split_degenerate.protocol ~k:2) P.Problems.Build
      (Split_degeneracy_at_most 2) (cert_build_split ~k:2);
    plain "spanning-forest" Spanning_forest_sync.protocol P.Problems.Spanning_forest Any_graph
      (cert_bfs ~with_d0:true);
    { key = "connectivity-sketch";
      protocol = Sketch_connectivity.connectivity ~seed:271828;
      problem = (fun _ -> P.Problems.Connectivity);
      promise = Any_graph;
      randomized = true;
      certificate = cert_sketch };
    { key = "spanning-forest-sketch";
      protocol = Sketch_connectivity.spanning_forest ~seed:271828;
      problem = (fun _ -> P.Problems.Spanning_forest);
      promise = Any_graph;
      randomized = true;
      certificate = cert_sketch } ]

let find key = List.find_opt (fun e -> e.key = key) (all ())

let satisfies_promise promise g =
  match promise with
  | Any_graph -> true
  | Degeneracy_at_most k -> fst (Wb_graph.Algo.degeneracy g) <= k
  | Split_degeneracy_at_most k -> Wb_graph.Algo.split_degeneracy g <= k
  | Forest -> fst (Wb_graph.Algo.degeneracy g) <= 1
  | Even_odd_bipartite -> Wb_graph.Algo.is_even_odd_bipartite g
  | Bipartite -> Wb_graph.Algo.bipartition g <> None
  | Regular_two_half ->
    let n = Wb_graph.Graph.n g in
    n > 0 && n mod 2 = 0 && Wb_graph.Graph.is_regular g = Some ((n / 2) - 1)

let sweep_graph e ~seed ~n =
  let module Gen = Wb_graph.Gen in
  let rng () = Wb_support.Prng.create seed in
  match (e.problem n, e.promise) with
  (* EOB-BFS only answers on even-odd bipartite inputs, promise or not. *)
  | P.Problems.Eob_bfs, _ -> Gen.random_eob (rng ()) n 0.3
  | _, Forest -> Gen.random_tree (rng ()) n
  | _, Degeneracy_at_most k -> Gen.random_ktree (rng ()) n ~k
  | _, Split_degeneracy_at_most k -> Gen.random_split_degenerate (rng ()) n ~k
  | _, Regular_two_half -> Gen.two_cliques_shuffled (rng ()) (n / 2)
  | _, Bipartite -> Gen.random_bipartite (rng ()) (n / 2) (n - (n / 2)) 0.3
  | _, Even_odd_bipartite -> Gen.random_eob (rng ()) n 0.3
  | _, Any_graph -> Gen.random_connected (rng ()) n (10.0 /. float_of_int (max 1 n))
