module P = Wb_model

let variant = { Bfs_common.with_d0 = true; check_parity = false }

module Impl = struct
  let name = "connectivity/sync"

  let model = P.Model.Sync

  let traits = P.Protocol.Traits.opaque

  let message_bound ~n = Bfs_common.message_bound variant ~n

  type local = unit

  let init _ = ()

  let wants_to_activate view board () = Bfs_common.wants_to_activate variant view board

  let compose view board () = (Bfs_common.write_entry variant (Bfs_common.compose_entry variant view board), ())

  let output ~n board =
    match Bfs_common.count_roots variant ~n board with
    | Some roots -> P.Answer.Bool (roots = 1)
    | None -> P.Answer.Reject
end

let protocol : P.Protocol.t = (module Impl)
