(** Enumeration of local views at tiny [n], for the protocol-existence
    searches: a view is [(identifier, neighbourhood set)], which is all a
    node ever knows at activation time. *)

type t = { id : int; mask : int  (** neighbourhood bitmask over [0..n-1]. *) }

val equal : t -> t -> bool

val all : n:int -> t list
(** All [n * 2^(n-1)] views (bit [id] never set in [mask]). *)

val index : n:int -> t -> int
(** Dense index in [\[0, n * 2^(n-1))]. *)

val count : n:int -> int

val of_graph : Wb_graph.Graph.t -> int -> t
(** The view node [v] holds in the graph. *)

val vector : Wb_graph.Graph.t -> t array
(** Per-node views; two graphs are equal iff their vectors are. *)
