module Solver = Wb_sat.Solver

type spec = {
  name : string;
  universe : Wb_graph.Graph.t list;
  conflict : Wb_graph.Graph.t -> Wb_graph.Graph.t -> bool;
}

let bool_spec ~name ~universe answer =
  { name; universe; conflict = (fun g h -> answer g <> answer h) }

(* Variables: msg var m(v, b) = view v carries letter b, one-hot;
   diff var d(u, w) for unordered pairs of distinct views (same id),
   meaning "u and w carry different letters". *)
let encode ~n spec ~alphabet =
  let nviews = Views.count ~n in
  let msg_var view b = (Views.index ~n view * alphabet) + b + 1 in
  let base = nviews * alphabet in
  let diff_table = Hashtbl.create 64 in
  let next_var = ref base in
  let clauses = ref [] in
  let add c = clauses := c :: !clauses in
  let diff_var u w =
    let iu = Views.index ~n u and iw = Views.index ~n w in
    let key = (min iu iw, max iu iw) in
    match Hashtbl.find_opt diff_table key with
    | Some v -> v
    | None ->
      incr next_var;
      let d = !next_var in
      Hashtbl.replace diff_table key d;
      (* d -> the two views differ in at least one letter slot. *)
      for b = 0 to alphabet - 1 do
        add [ -d; -msg_var u b; -msg_var w b ]
      done;
      d
  in
  (* One-hot letter per view. *)
  List.iter
    (fun view ->
      add (List.init alphabet (msg_var view));
      for b = 0 to alphabet - 1 do
        for b' = b + 1 to alphabet - 1 do
          add [ -msg_var view b; -msg_var view b' ]
        done
      done)
    (Views.all ~n);
  (* Distinguish every conflicting pair. *)
  let universe = Array.of_list spec.universe in
  let vectors = Array.map Views.vector universe in
  for i = 0 to Array.length universe - 1 do
    for j = i + 1 to Array.length universe - 1 do
      if spec.conflict universe.(i) universe.(j) then begin
        let differing = ref [] in
        for v = 0 to n - 1 do
          if not (Views.equal vectors.(i).(v) vectors.(j).(v)) then
            differing := diff_var vectors.(i).(v) vectors.(j).(v) :: !differing
        done;
        (* Identical vectors on conflicting graphs: impossible instance
           (views determine the graph), but guard anyway. *)
        add !differing
      end
    done
  done;
  let solver = Solver.create !next_var in
  List.iter (Solver.add_clause solver) !clauses;
  (solver, msg_var)

let message_function ~n spec ~alphabet =
  let solver, msg_var = encode ~n spec ~alphabet in
  match Solver.solve solver with
  | Solver.Unsat -> None
  | Solver.Sat ->
    Some
      (fun view ->
        let rec find b =
          if b >= alphabet then invalid_arg "Simasync_synth: no letter assigned"
          else if Solver.value solver (msg_var view b) then b
          else find (b + 1)
        in
        find 0)

let exists_protocol ~n spec ~alphabet = Option.is_some (message_function ~n spec ~alphabet)

let min_alphabet ~n spec ~max =
  let rec go b = if b > max then None else if exists_protocol ~n spec ~alphabet:b then Some b else go (b + 1) in
  go 1
