type t = { id : int; mask : int }

let equal a b = a.id = b.id && a.mask = b.mask

let all ~n =
  List.concat_map
    (fun id ->
      let rec masks m acc = if m < 0 then acc else masks (m - 1) (m :: acc) in
      masks ((1 lsl n) - 1) []
      |> List.filter_map (fun mask -> if mask land (1 lsl id) = 0 then Some { id; mask } else None))
    (List.init n Fun.id)

(* Dense index: strip the (always zero) own bit out of the mask. *)
let compress_mask ~id mask =
  let low = mask land ((1 lsl id) - 1) in
  let high = mask lsr (id + 1) in
  low lor (high lsl id)

let index ~n { id; mask } = (id lsl (n - 1)) lor compress_mask ~id mask

let count ~n = n lsl (n - 1)

let of_graph g v =
  let mask = Wb_graph.Graph.fold_neighbors g v (fun acc w -> acc lor (1 lsl w)) 0 in
  { id = v; mask }

let vector g = Array.init (Wb_graph.Graph.n g) (of_graph g)
