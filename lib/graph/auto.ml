exception Give_up

(* Iterated 1-WL colour refinement: start from degrees, repeatedly replace a
   node's colour with a canonical code of (own colour, sorted multiset of
   neighbour colours) until the partition stops splitting.  Only nodes with
   equal final colours can be exchanged by an automorphism. *)
let compare_sig (c1, nb1) (c2, nb2) =
  let c = Int.compare c1 c2 in
  if c <> 0 then c
  else begin
    let l = Int.compare (Array.length nb1) (Array.length nb2) in
    if l <> 0 then l
    else begin
      let r = ref 0 in
      (try
         Array.iteri
           (fun i x ->
             let c = Int.compare x nb2.(i) in
             if c <> 0 then begin
               r := c;
               raise Exit
             end)
           nb1
       with Exit -> ());
      !r
    end
  end

let refine g =
  let n = Graph.n g in
  let colors = ref (Array.init n (Graph.degree g)) in
  let classes c = List.length (List.sort_uniq Int.compare (Array.to_list c)) in
  let continue = ref true in
  while !continue do
    let sigs =
      Array.init n (fun v ->
          let nb = Array.map (fun u -> !colors.(u)) (Graph.neighbors g v) in
          Array.sort Int.compare nb;
          (!colors.(v), nb))
    in
    let order = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        let c = compare_sig sigs.(a) sigs.(b) in
        if c <> 0 then c else Int.compare a b)
      order;
    let next = Array.make n 0 in
    let code = ref 0 in
    Array.iteri
      (fun i v ->
        if i > 0 && compare_sig sigs.(order.(i - 1)) sigs.(v) <> 0 then incr code;
        next.(v) <- !code)
      order;
    continue := classes next > classes !colors;
    colors := next
  done;
  !colors

let is_automorphism g p =
  Wb_support.Perm.is_permutation p
  && Array.length p = Graph.n g
  && List.for_all (fun (u, v) -> Graph.mem_edge g p.(u) p.(v)) (Graph.edges g)

let automorphisms ?(fixed = []) ?(max_order = 50_000) ?(budget = 2_000_000) g =
  let n = Graph.n g in
  if n = 0 || n > 128 then None
  else begin
    let adj = Graph.adjacency_matrix g in
    let colors = refine g in
    let is_fixed = Array.make n false in
    List.iter (fun v -> is_fixed.(v) <- true) fixed;
    let img = Array.make n (-1) in
    let used = Array.make n false in
    let found = ref [] in
    let count = ref 0 in
    let work = ref 0 in
    let rec assign v =
      work := !work + 1;
      if !work > budget then raise Give_up;
      if v = n then begin
        count := !count + 1;
        if !count > max_order then raise Give_up;
        found := Array.copy img :: !found
      end
      else
        for w = 0 to n - 1 do
          if
            (not used.(w))
            && colors.(w) = colors.(v)
            && ((not is_fixed.(v)) || w = v)
            && (let ok = ref true in
                for u = 0 to v - 1 do
                  if adj.(v).(u) <> adj.(w).(img.(u)) then ok := false
                done;
                !ok)
          then begin
            img.(v) <- w;
            used.(w) <- true;
            assign (v + 1);
            used.(w) <- false;
            img.(v) <- -1
          end
        done
    in
    match assign 0 with
    | () -> Some (Array.of_list (List.rev !found))
    | exception Give_up -> None
  end

let orbits ~n group =
  let rep = Array.init n Fun.id in
  Array.iter (fun p -> Array.iteri (fun v w -> if w < rep.(v) then rep.(v) <- w) p) group;
  (* Close under composition: a vertex's representative is the least vertex
     reachable by any group element, and group closure makes one sweep to a
     fixpoint over direct images sufficient only if reps are canonical;
     iterate to the fixpoint to be safe. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun p ->
        Array.iteri
          (fun v w ->
            let r = min rep.(v) rep.(w) in
            if rep.(v) <> r || rep.(w) <> r then begin
              rep.(v) <- r;
              rep.(w) <- r;
              changed := true
            end)
          p)
      group;
    (* Path-compress through representatives. *)
    Array.iteri
      (fun v r ->
        if rep.(r) < rep.(v) then begin
          rep.(v) <- rep.(r);
          changed := true
        end)
      rep
  done;
  rep
