(** Graph automorphisms, as explicit permutation groups.

    The exploration stack prunes symmetric adversarial schedules with the
    stabilizer-chain rule (docs/EXPLORATION.md): it needs the full
    automorphism group of the input as an explicit element list, possibly
    restricted to the pointwise stabilizer of protocol-distinguished nodes
    (e.g. the MIS root).  Exhaustive exploration only reaches small n, so
    groups are enumerated outright — K_n gives n! elements, C_n gives 2n,
    Q_d gives 2^d·d! — and the search simply gives up ([None]) past a size
    or work cap, degrading the explorer to dedup-only.

    The enumeration is a backtracking search over images in vertex order,
    pruned by iterated 1-WL colour refinement (the orbit-refinement
    fallback: only same-colour vertices can be exchanged) and by adjacency
    consistency with all previously assigned vertices. *)

val automorphisms :
  ?fixed:int list -> ?max_order:int -> ?budget:int -> Graph.t -> int array array option
(** All automorphisms of [g] fixing every vertex of [fixed] pointwise
    (default none), as permutation arrays; the identity is always included.
    [None] when more than [max_order] (default 50_000) automorphisms exist,
    when the backtracking search exceeds [budget] (default 2_000_000) nodes,
    or when [Graph.n g > 128] — callers must treat [None] as "no usable
    symmetry", never as an error. *)

val orbits : n:int -> int array array -> int array
(** [orbits ~n group] maps each vertex to the least vertex in its orbit
    under [group] (which must contain the identity). *)

val is_automorphism : Graph.t -> int array -> bool
(** Permutation validity plus edge preservation — the test-oracle
    definition, quadratic and independent of the search above. *)
