module P = Wb_model
module G = Wb_graph.Graph
module W = Wb_support.Bitbuf.Writer
module Codec = Wb_protocols.Codec

let gadget g ~s ~t =
  let n = G.n g in
  if s = t || s < 0 || t < 0 || s >= n || t >= n then invalid_arg "Triangle_reduction.gadget";
  G.extend g ~extra:1 ~new_edges:[ (s, n); (t, n) ]

let gadget_faithful g =
  assert (not (Wb_graph.Algo.has_triangle g));
  let n = G.n g in
  let ok = ref true in
  for s = 0 to n - 1 do
    for t = s + 1 to n - 1 do
      if Wb_graph.Algo.has_triangle (gadget g ~s ~t) <> G.mem_edge g s t then ok := false
    done
  done;
  !ok

(* One simulated SIMASYNC message of the inner protocol: composed from the
   empty board and a synthetic view. *)
let simulate_message (module A : P.Protocol.S) ~inner_n ~id ~neighbors =
  let view = P.View.of_parts ~id ~n:inner_n ~neighbors in
  let writer, _local = A.compose view (P.Board.create inner_n) (A.init view) in
  Wb_support.Bitbuf.Writer.contents writer

let transform (protocol : P.Protocol.t) : P.Protocol.t =
  let (module A) = protocol in
  if A.model <> P.Model.Sim_async then
    invalid_arg "Triangle_reduction.transform: inner protocol must be SIMASYNC";
  let module Impl = struct
    let name = Printf.sprintf "build-from[%s]" A.name

    let model = P.Model.Sim_async

    let traits = P.Protocol.Traits.opaque

    let message_bound ~n =
      Codec.id_bits n + (2 * Codec.payload_bits (A.message_bound ~n:(n + 1)))

    type local = unit

    let init _ = ()

    let wants_to_activate _ _ () = true

    let compose view _board () =
      let inner_n = P.View.n view + 1 in
      let plain =
        simulate_message (module A) ~inner_n ~id:(P.View.id view) ~neighbors:(P.View.neighbors view)
      in
      let with_apex =
        simulate_message (module A) ~inner_n ~id:(P.View.id view)
          ~neighbors:(Array.append (P.View.neighbors view) [| inner_n - 1 |])
      in
      let w = W.create () in
      Codec.write_id w (P.View.paper_id view);
      Codec.write_payload w plain;
      Codec.write_payload w with_apex;
      (w, ())

    let output ~n board =
      let inner_n = n + 1 in
      let plain = Array.make n [||] and with_apex = Array.make n [||] in
      P.Board.iter
        (fun m ->
          let r = P.Message.reader m in
          let id = Codec.read_id r in
          plain.(id - 1) <- Codec.read_payload r;
          with_apex.(id - 1) <- Codec.read_payload r)
        board;
      let edges = ref [] in
      for s = 0 to n - 1 do
        for t = s + 1 to n - 1 do
          (* Reassemble the whiteboard the inner protocol would produce on
             the gadget G'_{s,t} and ask its output function. *)
          let inner_board = P.Board.create inner_n in
          for i = 0 to n - 1 do
            let payload = if i = s || i = t then with_apex.(i) else plain.(i) in
            P.Board.append inner_board (P.Message.make ~author:i ~payload)
          done;
          let apex = simulate_message (module A) ~inner_n ~id:n ~neighbors:[| s; t |] in
          P.Board.append inner_board (P.Message.make ~author:n ~payload:apex);
          (match A.output ~n:inner_n inner_board with
          | P.Answer.Bool true -> edges := (s, t) :: !edges
          | P.Answer.Bool false -> ()
          | _ -> failwith "Triangle_reduction: inner protocol did not answer a boolean")
        done
      done;
      P.Answer.Graph (G.of_edges n !edges)
  end in
  (module Impl)
