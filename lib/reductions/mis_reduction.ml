module P = Wb_model
module G = Wb_graph.Graph
module W = Wb_support.Bitbuf.Writer
module Codec = Wb_protocols.Codec

let gadget g ~i ~j =
  let n = G.n g in
  if i = j || i < 0 || j < 0 || i >= n || j >= n then invalid_arg "Mis_reduction.gadget";
  let apex_edges = ref [] in
  for v = 0 to n - 1 do
    if v <> i && v <> j then apex_edges := (v, n) :: !apex_edges
  done;
  G.extend g ~extra:1 ~new_edges:!apex_edges

let gadget_faithful g =
  let n = G.n g in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let h = gadget g ~i ~j in
      let full = Wb_graph.Algo.is_maximal_independent_set h [ n; i; j ] in
      if G.mem_edge g i j then begin
        if full then ok := false;
        if not (Wb_graph.Algo.is_maximal_independent_set h [ n; i ]) then ok := false;
        if not (Wb_graph.Algo.is_maximal_independent_set h [ n; j ]) then ok := false
      end
      else if not full then ok := false
    done
  done;
  !ok

let simulate_message (module A : P.Protocol.S) ~inner_n ~id ~neighbors =
  let view = P.View.of_parts ~id ~n:inner_n ~neighbors in
  let writer, _local = A.compose view (P.Board.create inner_n) (A.init view) in
  Wb_support.Bitbuf.Writer.contents writer

let transform ~make_inner : P.Protocol.t =
  let module Impl = struct
    let name = "build-from[mis-oracle]"

    let model = P.Model.Sim_async

    let traits = P.Protocol.Traits.opaque

    let inner ~n : P.Protocol.t =
      let p = make_inner ~root:n in
      if P.Protocol.model p <> P.Model.Sim_async then
        invalid_arg "Mis_reduction.transform: inner protocol must be SIMASYNC";
      p

    let message_bound ~n =
      let (module A) = inner ~n in
      Codec.id_bits n + (2 * Codec.payload_bits (A.message_bound ~n:(n + 1)))

    type local = unit

    let init _ = ()

    let wants_to_activate _ _ () = true

    (* In any gadget the node's view differs only in whether the apex is a
       neighbour, and k ∈ {i, j} exactly when it is NOT: two messages cover
       every G^(x)_{i,j}. *)
    let compose view _board () =
      let n = P.View.n view in
      let inner_n = n + 1 in
      let (module A) = inner ~n in
      let detached =
        simulate_message (module A) ~inner_n ~id:(P.View.id view) ~neighbors:(P.View.neighbors view)
      in
      let attached =
        simulate_message (module A) ~inner_n ~id:(P.View.id view)
          ~neighbors:(Array.append (P.View.neighbors view) [| inner_n - 1 |])
      in
      let w = W.create () in
      Codec.write_id w (P.View.paper_id view);
      Codec.write_payload w detached;
      Codec.write_payload w attached;
      (w, ())

    let output ~n board =
      let inner_n = n + 1 in
      let (module A) = inner ~n in
      let detached = Array.make n [||] and attached = Array.make n [||] in
      P.Board.iter
        (fun m ->
          let r = P.Message.reader m in
          let id = Codec.read_id r in
          detached.(id - 1) <- Codec.read_payload r;
          attached.(id - 1) <- Codec.read_payload r)
        board;
      let edges = ref [] in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let inner_board = P.Board.create inner_n in
          for v = 0 to n - 1 do
            let payload = if v = i || v = j then detached.(v) else attached.(v) in
            P.Board.append inner_board (P.Message.make ~author:v ~payload)
          done;
          let apex_neighbors =
            Array.of_list (List.filter (fun v -> v <> i && v <> j) (List.init n Fun.id))
          in
          let apex = simulate_message (module A) ~inner_n ~id:n ~neighbors:apex_neighbors in
          P.Board.append inner_board (P.Message.make ~author:n ~payload:apex);
          (match A.output ~n:inner_n inner_board with
          | P.Answer.Node_set s ->
            (* {x, v_i, v_j} is answered exactly on non-edges. *)
            if List.sort compare s <> [ i; j; n ] then edges := (i, j) :: !edges
          | _ -> failwith "Mis_reduction: inner protocol did not answer a node set")
        done
      done;
      P.Answer.Graph (G.of_edges n !edges)
  end in
  (module Impl)
