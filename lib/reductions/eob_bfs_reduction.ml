module P = Wb_model
module G = Wb_graph.Graph

let input_ok g = G.n g mod 2 = 0 && G.n g >= 2 && Wb_graph.Algo.is_even_odd_bipartite g

(* Input index x <-> gadget index x + 1 <-> paper id j = x + 2.
   Pendants: odd j gets v_{j+n-2} (gadget index x + s), even j gets
   v_{j+n} (gadget index x + s + 2), and v_1 = index 0 attaches to
   target's pendant. *)
let pendant_of ~s x = if (x + 2) mod 2 = 1 then x + s else x + s + 2

let gadget g ~target =
  if not (input_ok g) then invalid_arg "Eob_bfs_reduction.gadget: input must be EOB of even order";
  let s = G.n g in
  if target < 0 || target >= s || target mod 2 = 0 then
    invalid_arg "Eob_bfs_reduction.gadget: target must be an odd node index";
  let shifted = List.map (fun (u, v) -> (u + 1, v + 1)) (G.edges g) in
  let pendants = List.init s (fun x -> (x + 1, pendant_of ~s x)) in
  let hook = (0, pendant_of ~s target) in
  G.of_edges ((2 * s) + 1) (hook :: (pendants @ shifted))

let gadget_faithful g ~target =
  let h = gadget g ~target in
  let dist = Wb_graph.Algo.bfs_dist h 0 in
  let ok = ref true in
  for x = 0 to G.n g - 1 do
    if x mod 2 = 0 then
      (* even paper id in the gadget: the Figure 2 characterisation. *)
      if dist.(x + 1) = 3 <> G.mem_edge g target x then ok := false
  done;
  !ok

let depths_from_forest parent =
  let n = Array.length parent in
  let depth = Array.make n (-1) in
  let root = Array.make n (-1) in
  let rec resolve v =
    if depth.(v) < 0 then begin
      if parent.(v) < 0 then begin
        depth.(v) <- 0;
        root.(v) <- v
      end
      else begin
        resolve parent.(v);
        depth.(v) <- depth.(parent.(v)) + 1;
        root.(v) <- root.(parent.(v))
      end
    end
  in
  for v = 0 to n - 1 do
    resolve v
  done;
  (depth, root)

(* Neighbourhood, inside gadget G_target, of a gadget node that is NOT an
   input node: v_1 (index 0) or a pendant (indices s+1 .. 2s). *)
let simulated_neighbors ~s ~target m =
  if m = 0 then [| pendant_of ~s target |]
  else begin
    let owner =
      let x1 = m - s in
      if x1 >= 0 && x1 <= s - 1 && (x1 + 2) mod 2 = 1 then x1 else m - s - 2
    in
    assert (pendant_of ~s owner = m);
    let base = [ owner + 1 ] in
    let with_hook = if m = pendant_of ~s target then 0 :: base else base in
    Array.of_list with_hook
  end

let transform (protocol : P.Protocol.t) : P.Protocol.t =
  let (module A) = protocol in
  if A.model <> P.Model.Sim_sync then
    invalid_arg "Eob_bfs_reduction.transform: inner protocol must be SIMSYNC";
  let module Impl = struct
    let name = Printf.sprintf "build-eob-from[%s]" A.name

    let model = P.Model.Sim_sync

    let traits = P.Protocol.Traits.opaque

    let message_bound ~n = A.message_bound ~n:((2 * n) + 1)

    type local = A.local option

    let init _ = None

    let wants_to_activate _ _ _ = true

    (* The input node's gadget view: its input neighbours, shifted by one,
       plus its own pendant — identical in every G_i, which is the heart of
       the reduction. *)
    let inner_view view =
      let s = P.View.n view in
      let x = P.View.id view in
      let nbrs = Array.map (fun u -> u + 1) (P.View.neighbors view) in
      P.View.of_parts ~id:(x + 1) ~n:((2 * s) + 1)
        ~neighbors:(Array.append nbrs [| pendant_of ~s x |])

    (* Translate the outer board (authors 0..s-1) into inner coordinates
       (authors 1..s), payloads verbatim. *)
    let inner_board_of board =
      let s = P.Board.n board in
      let inner = P.Board.create ((2 * s) + 1) in
      P.Board.iter
        (fun m ->
          inner
          |> Fun.flip P.Board.append
               (P.Message.make ~author:(P.Message.author m + 1) ~payload:(P.Message.payload m)))
        board;
      inner

    let compose view board local =
      let gview = inner_view view in
      let alocal = match local with Some l -> l | None -> A.init gview in
      let writer, alocal = A.compose gview (inner_board_of board) alocal in
      (writer, Some alocal)

    (* Replay one gadget: the outer board supplies the first s messages (in
       the adversary's real order); v_{n+1} .. v_{2n-1} and finally v_1 are
       simulated with full SIMSYNC semantics (every pending node recomposes
       each round). *)
    let replay_gadget ~s ~target outer_payloads =
      let inner_n = (2 * s) + 1 in
      let simulated_order = List.init s (fun i -> s + 1 + i) @ [ 0 ] in
      let views =
        List.map
          (fun m -> (m, P.View.of_parts ~id:m ~n:inner_n ~neighbors:(simulated_neighbors ~s ~target m)))
          simulated_order
      in
      let locals = Hashtbl.create 8 in
      List.iter (fun (m, view) -> Hashtbl.replace locals m (A.init view)) views;
      let board = P.Board.create inner_n in
      let recompose_all () =
        List.iter
          (fun (m, view) ->
            if not (P.Board.has_author board m) then begin
              let writer, l = A.compose view board (Hashtbl.find locals m) in
              Hashtbl.replace locals m l;
              ignore writer
            end)
          views
      in
      (* First the real nodes, in their real write order... *)
      List.iter
        (fun (author, payload) ->
          recompose_all ();
          P.Board.append board (P.Message.make ~author:(author + 1) ~payload))
        outer_payloads;
      (* ...then the simulated tail in the canonical order. *)
      List.iter
        (fun (m, view) ->
          recompose_all ();
          let writer, l = A.compose view board (Hashtbl.find locals m) in
          Hashtbl.replace locals m l;
          P.Board.append board (P.Message.make ~author:m ~payload:(Wb_support.Bitbuf.Writer.contents writer)))
        views;
      A.output ~n:inner_n board

    let output ~n board =
      let s = n in
      if s mod 2 <> 0 then failwith "Eob_bfs_reduction: input order must be even";
      let outer_payloads =
        P.Board.fold (fun acc m -> (P.Message.author m, P.Message.payload m) :: acc) [] board
        |> List.rev
      in
      let edges = ref [] in
      let target = ref 1 in
      while !target < s do
        (match replay_gadget ~s ~target:!target outer_payloads with
        | P.Answer.Forest parent ->
          let depth, root = depths_from_forest parent in
          for x = 0 to s - 1 do
            if x mod 2 = 0 && depth.(x + 1) = 3 && root.(x + 1) = 0 then
              edges := (min !target x, max !target x) :: !edges
          done
        | _ -> failwith "Eob_bfs_reduction: inner protocol did not answer a forest");
        target := !target + 2
      done;
      P.Answer.Graph (G.of_edges s !edges)
  end in
  (module Impl)
