module P = Wb_model
module W = Wb_support.Bitbuf.Writer

(* Shared row-writing front end. *)
let row_compose view =
  let w = W.create () in
  Wb_protocols.Codec.write_id w (P.View.paper_id view);
  for u = 0 to P.View.n view - 1 do
    W.bit w (P.View.mem_neighbor view u)
  done;
  w

let rebuild ~n board =
  let matrix = Array.make_matrix n n false in
  P.Board.iter
    (fun m ->
      let r = P.Message.reader m in
      let id = Wb_protocols.Codec.read_id r in
      for u = 0 to n - 1 do
        matrix.(id - 1).(u) <- Wb_support.Bitbuf.Reader.bit r
      done)
    board;
  Wb_graph.Graph.of_matrix matrix

module Triangle = struct
  let name = "oracle-triangle/simasync"

  let model = P.Model.Sim_async

  let traits = P.Protocol.Traits.opaque

  let message_bound ~n = Wb_protocols.Codec.id_bits n + n

  type local = unit

  let init _ = ()

  let wants_to_activate _ _ () = true

  let compose view _ () = (row_compose view, ())

  let output ~n board = P.Answer.Bool (Wb_graph.Algo.has_triangle (rebuild ~n board))
end

let triangle_simasync : P.Protocol.t = (module Triangle)

let mis_simasync ~root : P.Protocol.t =
  let module Impl = struct
    let name = Printf.sprintf "oracle-mis/simasync(root=%d)" (root + 1)

    let model = P.Model.Sim_async

    let traits = P.Protocol.Traits.opaque

    let message_bound ~n = Wb_protocols.Codec.id_bits n + n

    type local = unit

    let init _ = ()

    let wants_to_activate _ _ () = true

    let compose view _ () = (row_compose view, ())

    let output ~n board =
      P.Answer.Node_set (Wb_graph.Algo.greedy_mis (rebuild ~n board) ~root)
  end in
  (module Impl)

module Eob_bfs = struct
  let name = "oracle-eob-bfs/simsync"

  let model = P.Model.Sim_sync

  let traits = P.Protocol.Traits.opaque

  let message_bound ~n = Wb_protocols.Codec.id_bits n + n

  type local = unit

  let init _ = ()

  let wants_to_activate _ _ () = true

  let compose view _ () = (row_compose view, ())

  let output ~n board =
    let g = rebuild ~n board in
    if Wb_graph.Algo.is_even_odd_bipartite g then P.Answer.Forest (Wb_graph.Algo.bfs_forest g)
    else P.Answer.Reject
end

let eob_bfs_simsync : P.Protocol.t = (module Eob_bfs)
