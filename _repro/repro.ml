open Wb_model
module G = Wb_graph
module W = Wb_support.Bitbuf.Writer

module Probe = struct
  let name = "probe"
  let model = Model.Async
  let message_bound ~n = 64 + n
  type local = unit
  let init _ = ()
  (* sequential activation chain: exactly one candidate per choice *)
  let wants_to_activate view board () = Board.length board >= View.id view
  let compose _view board () =
    let w = W.create () in
    W.nat w (Board.length board);
    (w, ())
  let output ~n:_ board =
    Answer.Node_set
      (Board.fold (fun acc m -> Wb_support.Bitbuf.Reader.nat (Message.reader m) :: acc) [] board)
end

module E = Engine.Make (Probe)

let () =
  (* n=8: every execution has exactly 8 picks; single-candidate chain keeps
     the frontier at size 1 so grow hits the depth cap (8) with a complete
     execution as a work item. *)
  let g = G.Gen.complete 8 in
  let seq = E.explore_exn g (fun _ -> true) in
  Printf.printf "seq: ok=%b count=%d\n%!" (fst seq) (snd seq);
  (match E.explore_par ~jobs:2 g (fun _ -> true) with
  | Ok (ok, count) -> Printf.printf "par: ok=%b count=%d\n%!" ok count
  | Error (`Limit l) -> Printf.printf "par: limit %d\n%!" l)
