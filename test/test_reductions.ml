open Wb_reductions
module P = Wb_model
module G = Wb_graph
module Prng = Wb_support.Prng
module Nat = Wb_bignum.Nat

let qtest = QCheck_alcotest.to_alcotest

let check = Alcotest.(check bool)

let seeded = QCheck.small_int

let counting_tests =
  [ Alcotest.test_case "class counts at tiny n are exact" `Quick (fun () ->
        Alcotest.(check string) "all n=4" "64" (Nat.to_string (Counting.all_graphs.count 4));
        Alcotest.(check string) "bipartite n=4" "16" (Nat.to_string (Counting.balanced_bipartite.count 4));
        Alcotest.(check string) "eob n=5" "64" (Nat.to_string (Counting.even_odd_bipartite.count 5));
        Alcotest.(check string) "trees n=4" "16" (Nat.to_string (Counting.labelled_trees.count 4));
        Alcotest.(check string) "trees n=2" "1" (Nat.to_string (Counting.labelled_trees.count 2)));
    Alcotest.test_case "trees count matches exhaustive enumeration at n=4" `Quick (fun () ->
        let trees =
          List.filter
            (fun g -> G.Graph.num_edges g = 3 && G.Algo.is_connected g)
            (G.Gen.all_labelled_graphs 4)
        in
        Alcotest.(check int) "cayley 4^2" 16 (List.length trees));
    Alcotest.test_case "lemma 3: bipartite reconstruction needs Omega(n) bits" `Quick (fun () ->
        (* log2 g(n) = (n/2)^2, so per-node messages need >= n/4 bits. *)
        List.iter
          (fun n ->
            let b = Counting.min_message_bits Counting.balanced_bipartite n in
            check (Printf.sprintf "n=%d" n) true (b >= n / 4))
          [ 16; 64; 256; 1024; 4096 ]);
    Alcotest.test_case "lemma 3: trees need Theta(log n) bits" `Quick (fun () ->
        List.iter
          (fun (n, lo, hi) ->
            let b = Counting.min_message_bits Counting.labelled_trees n in
            check (Printf.sprintf "n=%d got %d" n b) true (b >= lo && b <= hi))
          [ (256, 6, 9); (1024, 8, 11); (16384, 12, 15) ]);
    Alcotest.test_case "feasible is monotone in f_bits" `Quick (fun () ->
        let cls = Counting.even_odd_bipartite in
        let b = Counting.min_message_bits cls 100 in
        check "at floor" true (Counting.feasible cls ~n:100 ~f_bits:b);
        check "below floor" false (Counting.feasible cls ~n:100 ~f_bits:(b - 1))) ]

let fig1_tests =
  [ qtest
      (QCheck.Test.make ~name:"gadget faithful on random bipartite" ~count:40 seeded (fun seed ->
           let rng = Prng.create seed in
           Triangle_reduction.gadget_faithful (G.Gen.random_bipartite rng 5 5 0.4)));
    qtest
      (QCheck.Test.make ~name:"gadget faithful on triangle-free gnp" ~count:60 seeded (fun seed ->
           let rng = Prng.create seed in
           let g = G.Gen.random_gnp rng 8 0.2 in
           QCheck.assume (not (G.Algo.has_triangle g));
           Triangle_reduction.gadget_faithful g));
    Alcotest.test_case "gadget adds exactly one apex of degree 2" `Quick (fun () ->
        let g = G.Gen.cycle 6 in
        let h = Triangle_reduction.gadget g ~s:1 ~t:4 in
        Alcotest.(check int) "n" 7 (G.Graph.n h);
        Alcotest.(check int) "apex degree" 2 (G.Graph.degree h 6)) ]

let thm3_tests =
  [ qtest
      (QCheck.Test.make ~name:"transformed oracle BUILDs bipartite graphs" ~count:20 seeded
         (fun seed ->
           let rng = Prng.create seed in
           let g = G.Gen.random_bipartite rng 4 4 0.45 in
           let protocol = Triangle_reduction.transform Oracles.triangle_simasync in
           let run = P.Engine.run_packed protocol g (P.Adversary.random rng) in
           run.P.Engine.outcome = P.Engine.Success (P.Answer.Graph g)));
    Alcotest.test_case "transformed protocol works under every schedule (n=4)" `Quick (fun () ->
        let g = G.Gen.complete_bipartite 2 2 in
        let protocol = Triangle_reduction.transform Oracles.triangle_simasync in
        let ok, count =
          P.Engine.explore_packed_exn protocol g (fun r ->
              r.P.Engine.outcome = P.Engine.Success (P.Answer.Graph g))
        in
        check "all schedules" true ok;
        Alcotest.(check int) "4!" 24 count);
    Alcotest.test_case "rejects non-SIMASYNC inner protocols" `Quick (fun () ->
        Alcotest.check_raises "model check"
          (Invalid_argument "Triangle_reduction.transform: inner protocol must be SIMASYNC")
          (fun () -> ignore (Triangle_reduction.transform Wb_protocols.Bfs_sync.protocol)));
    Alcotest.test_case "contradiction arithmetic: o(n) triangle messages break Lemma 3" `Quick
      (fun () ->
        (* If TRIANGLE had f(n)-bit SIMASYNC messages, BUILD on bipartite
           graphs would cost 2 f(n+1) + O(log n) bits/node; compare to the
           Lemma 3 floor. *)
        let floor n = Counting.min_message_bits Counting.balanced_bipartite n in
        List.iter
          (fun n ->
            let hypothetical_f = 10 * Wb_support.Bitbuf.width_of n (* 10 log n = o(n) *) in
            let derived = (2 * hypothetical_f) + (3 * Wb_support.Bitbuf.width_of n) in
            check (Printf.sprintf "n=%d" n) true (derived < floor n))
          [ 1024; 4096; 16384 ]) ]

let thm6_tests =
  [ qtest
      (QCheck.Test.make ~name:"MIS gadget characterises edges" ~count:40 seeded (fun seed ->
           Mis_reduction.gadget_faithful (G.Gen.random_gnp (Prng.create seed) 7 0.4)));
    qtest
      (QCheck.Test.make ~name:"transformed oracle BUILDs arbitrary graphs" ~count:20 seeded
         (fun seed ->
           let rng = Prng.create seed in
           let g = G.Gen.random_gnp rng 7 0.35 in
           let protocol = Mis_reduction.transform ~make_inner:(fun ~root -> Oracles.mis_simasync ~root) in
           let run = P.Engine.run_packed protocol g (P.Adversary.random rng) in
           run.P.Engine.outcome = P.Engine.Success (P.Answer.Graph g))) ]

let fig2_tests =
  [ qtest
      (QCheck.Test.make ~name:"gadget layer-3 characterisation, all odd targets" ~count:30 seeded
         (fun seed ->
           let g = G.Gen.random_eob (Prng.create seed) 8 0.4 in
           let ok = ref true in
           let t = ref 1 in
           while !t < 8 do
             if not (Eob_bfs_reduction.gadget_faithful g ~target:!t) then ok := false;
             t := !t + 2
           done;
           !ok));
    qtest
      (QCheck.Test.make ~name:"gadget preserves even-odd bipartiteness" ~count:30 seeded
         (fun seed ->
           let g = G.Gen.random_eob (Prng.create seed) 10 0.4 in
           G.Algo.is_even_odd_bipartite (Eob_bfs_reduction.gadget g ~target:3)));
    Alcotest.test_case "input_ok filters" `Quick (fun () ->
        check "eob even" true (Eob_bfs_reduction.input_ok (G.Gen.random_eob (Prng.create 1) 6 0.5));
        check "odd order" false (Eob_bfs_reduction.input_ok (G.Gen.random_eob (Prng.create 1) 7 0.5));
        check "non-eob" false
          (Eob_bfs_reduction.input_ok (G.Graph.of_edges 6 [ (0, 1); (1, 2); (0, 2) ]))) ]

let thm8_tests =
  [ qtest
      (QCheck.Test.make ~name:"transformed oracle BUILDs EOB graphs" ~count:15 seeded (fun seed ->
           let rng = Prng.create seed in
           let g = G.Gen.random_eob rng 8 0.4 in
           let protocol = Eob_bfs_reduction.transform Oracles.eob_bfs_simsync in
           let run = P.Engine.run_packed protocol g (P.Adversary.random rng) in
           run.P.Engine.outcome = P.Engine.Success (P.Answer.Graph g)));
    Alcotest.test_case "transformed protocol under every schedule (n=4)" `Quick (fun () ->
        let g = G.Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
        check "eob" true (G.Algo.is_even_odd_bipartite g);
        let protocol = Eob_bfs_reduction.transform Oracles.eob_bfs_simsync in
        let ok, _ =
          P.Engine.explore_packed_exn protocol g (fun r ->
              r.P.Engine.outcome = P.Engine.Success (P.Answer.Graph g))
        in
        check "all schedules" true ok) ]

let thm9_tests =
  [ Alcotest.test_case "protocol bits ~ f(n), floor ~ f(n)^2 / n, both respected" `Quick
      (fun () ->
        let rows = Subgraph_bound.evaluate ~cutoff:(fun n -> n / 2) ~ns:[ 32; 64; 128 ] in
        List.iter
          (fun (r : Subgraph_bound.row) ->
            check (Printf.sprintf "n=%d coherent" r.n) true (r.sim_async_bits >= r.lower_bound_bits);
            check "protocol is Theta(f)" true
              (r.sim_async_bits >= r.f && r.sim_async_bits <= r.f + 40))
          rows);
    Alcotest.test_case "o(f) messages are infeasible even for SYNC" `Quick (fun () ->
        (* g = log n bits against f = n/2: the counting bound must refuse. *)
        List.iter
          (fun n ->
            check (Printf.sprintf "n=%d" n) true
              (Subgraph_bound.sync_infeasible ~n ~f:(n / 2) ~g_bits:(Wb_support.Bitbuf.width_of n)))
          [ 64; 256; 1024 ]);
    Alcotest.test_case "f-bit messages are feasible" `Quick (fun () ->
        check "n=64" false (Subgraph_bound.sync_infeasible ~n:64 ~f:32 ~g_bits:32)) ]

let suites =
  [ ("reductions.counting", counting_tests);
    ("reductions.fig1", fig1_tests);
    ("reductions.thm3", thm3_tests);
    ("reductions.thm6", thm6_tests);
    ("reductions.fig2", fig2_tests);
    ("reductions.thm8", thm8_tests);
    ("reductions.thm9", thm9_tests) ]
