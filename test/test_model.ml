open Wb_model
module G = Wb_graph
module W = Wb_support.Bitbuf.Writer

let check = Alcotest.(check bool)

(* A probe protocol: every node writes the board length it saw when its
   message was composed.  Under the four models this one definition yields
   observably different boards, which is exactly what the semantics tests
   need. *)
module type PROBE_CONFIG = sig
  val model : Model.t
  val activate_when : View.t -> Board.t -> bool
end

module Probe (C : PROBE_CONFIG) : Protocol.S = struct
  let name = "probe"

  let model = C.model

  let traits = Protocol.Traits.opaque

  let message_bound ~n = 64 + n

  type local = unit

  let init _ = ()

  let wants_to_activate view board () = C.activate_when view board

  let compose _view board () =
    let w = W.create () in
    W.nat w (Board.length board);
    (w, ())

  let output ~n:_ board =
    Answer.Node_set
      (Board.fold (fun acc m -> Wb_support.Bitbuf.Reader.nat (Message.reader m) :: acc) [] board)
end

let seen_lengths model =
  let module P = Probe (struct
    let model = model

    let activate_when _ _ = true
  end) in
  let module E = Engine.Make (P) in
  let run = E.run (G.Gen.complete 5) Adversary.min_id in
  match run.Engine.outcome with
  | Engine.Success (Answer.Node_set lengths) -> List.sort compare lengths
  | _ -> Alcotest.fail "probe failed"

let message_timing_tests =
  [ Alcotest.test_case "SIMASYNC composes everything from the empty board" `Quick (fun () ->
        Alcotest.(check (list int)) "lengths" [ 0; 0; 0; 0; 0 ] (seen_lengths Model.Sim_async));
    Alcotest.test_case "SIMSYNC recomposes: node sees the board at its write round" `Quick
      (fun () -> Alcotest.(check (list int)) "lengths" [ 0; 1; 2; 3; 4 ] (seen_lengths Model.Sim_sync));
    Alcotest.test_case "SYNC with always-activate behaves like SIMSYNC" `Quick (fun () ->
        Alcotest.(check (list int)) "lengths" [ 0; 1; 2; 3; 4 ] (seen_lengths Model.Sync));
    Alcotest.test_case "ASYNC freezes at activation" `Quick (fun () ->
        (* Activation gate: node v activates once v-1 messages are on the
           board; frozen composition must then record exactly that length
           even though the write happens later. *)
        let module P = Probe (struct
          let model = Model.Async

          let activate_when view board = Board.length board >= View.id view
        end) in
        let module E = Engine.Make (P) in
        let run = E.run (G.Gen.complete 5) Adversary.max_id in
        (match run.Engine.outcome with
        | Engine.Success (Answer.Node_set lengths) ->
          Alcotest.(check (list int)) "lengths" [ 0; 1; 2; 3; 4 ] (List.sort compare lengths)
        | _ -> Alcotest.fail "async probe failed")) ]

let lifecycle_tests =
  [ Alcotest.test_case "every node writes exactly once on success" `Quick (fun () ->
        let module P = Probe (struct
          let model = Model.Sim_sync

          let activate_when _ _ = true
        end) in
        let module E = Engine.Make (P) in
        let run = E.run (G.Gen.cycle 7) Adversary.max_id in
        check "success" true (Engine.succeeded run);
        check "writes is a permutation" true (Wb_support.Perm.is_permutation run.Engine.writes);
        Array.iteri
          (fun v r ->
            check (Printf.sprintf "node %d wrote" v) true (r >= 1);
            check "activated before writing" true (run.Engine.activation_round.(v) < r))
          run.Engine.write_round);
    Alcotest.test_case "a node never writes in its activation round" `Quick (fun () ->
        let module P = Probe (struct
          let model = Model.Async

          let activate_when _ _ = true
        end) in
        let module E = Engine.Make (P) in
        let run = E.run (G.Gen.path 6) Adversary.min_id in
        Array.iteri
          (fun v a -> check (Printf.sprintf "node %d" v) true (run.Engine.write_round.(v) > a))
          run.Engine.activation_round);
    Alcotest.test_case "refusing to activate deadlocks" `Quick (fun () ->
        let module P = Probe (struct
          let model = Model.Async

          let activate_when view _ = View.id view <> 2
        end) in
        let module E = Engine.Make (P) in
        let run = E.run (G.Gen.path 4) Adversary.min_id in
        check "deadlock" true (run.Engine.outcome = Engine.Deadlock));
    Alcotest.test_case "n=1 succeeds" `Quick (fun () ->
        let module P = Probe (struct
          let model = Model.Sim_async

          let activate_when _ _ = true
        end) in
        let module E = Engine.Make (P) in
        check "ok" true (Engine.succeeded (E.run (G.Graph.empty 1) Adversary.min_id)));
    Alcotest.test_case "n=0 succeeds vacuously" `Quick (fun () ->
        let module P = Probe (struct
          let model = Model.Sim_async

          let activate_when _ _ = true
        end) in
        let module E = Engine.Make (P) in
        check "ok" true (Engine.succeeded (E.run (G.Graph.empty 0) Adversary.min_id)));
    Alcotest.test_case "oversized message is a violation" `Quick (fun () ->
        let module P : Protocol.S = struct
          let name = "chatty"

          let model = Model.Sim_async

          let traits = Protocol.Traits.opaque

          let message_bound ~n:_ = 4

          type local = unit

          let init _ = ()

          let wants_to_activate _ _ () = true

          let compose _ _ () =
            let w = W.create () in
            W.fixed w ~width:10 777;
            (w, ())

          let output ~n:_ _ = Answer.Reject
        end in
        let module E = Engine.Make (P) in
        let run = E.run (G.Gen.path 3) Adversary.min_id in
        (match run.Engine.outcome with
        | Engine.Size_violation { bits; bound; _ } ->
          Alcotest.(check int) "bits" 10 bits;
          Alcotest.(check int) "bound" 4 bound
        | _ -> Alcotest.fail "expected size violation"));
    Alcotest.test_case "output exceptions are captured" `Quick (fun () ->
        let module P : Protocol.S = struct
          let name = "crasher"

          let model = Model.Sim_async

          let traits = Protocol.Traits.opaque

          let message_bound ~n:_ = 8

          type local = unit

          let init _ = ()

          let wants_to_activate _ _ () = true

          let compose _ _ () = (W.create (), ())

          let output ~n:_ _ = failwith "boom"

          let _ = name
        end in
        let module E = Engine.Make (P) in
        let run = E.run (G.Gen.path 3) Adversary.min_id in
        (match run.Engine.outcome with
        | Engine.Output_error msg -> check "mentions boom" true (String.length msg > 0)
        | _ -> Alcotest.fail "expected output error")) ]

let explore_tests =
  [ Alcotest.test_case "SIMASYNC explore visits n! schedules" `Quick (fun () ->
        let module P = Probe (struct
          let model = Model.Sim_async

          let activate_when _ _ = true
        end) in
        let module E = Engine.Make (P) in
        let _, count = E.explore_exn (G.Gen.cycle 4) (fun _ -> true) in
        Alcotest.(check int) "4!" 24 count;
        let _, count = E.explore_exn (G.Gen.complete 5) (fun _ -> true) in
        Alcotest.(check int) "5!" 120 count);
    Alcotest.test_case "explore agrees with run on every schedule" `Quick (fun () ->
        (* SIMSYNC probe boards always read 0,1,2,...  regardless of order. *)
        let module P = Probe (struct
          let model = Model.Sim_sync

          let activate_when _ _ = true
        end) in
        let module E = Engine.Make (P) in
        let ok, count = E.explore_exn (G.Gen.path 4) (fun r ->
            match r.Engine.outcome with
            | Engine.Success (Answer.Node_set l) -> List.sort compare l = [ 0; 1; 2; 3 ]
            | _ -> false)
        in
        check "all ok" true ok;
        Alcotest.(check int) "24 schedules" 24 count);
    Alcotest.test_case "explore limit is a typed error" `Quick (fun () ->
        let module P = Probe (struct
          let model = Model.Sim_async

          let activate_when _ _ = true
        end) in
        let module E = Engine.Make (P) in
        (match E.explore ~limit:10 (G.Gen.complete 5) (fun _ -> true) with
        | Error (`Limit 10) -> ()
        | Error (`Limit l) -> Alcotest.failf "wrong limit payload: %d" l
        | Ok _ -> Alcotest.fail "expected Error (`Limit _)");
        (match E.explore_par ~limit:10 ~jobs:2 (G.Gen.complete 5) (fun _ -> true) with
        | Error (`Limit 10) -> ()
        | Error (`Limit l) -> Alcotest.failf "wrong parallel limit payload: %d" l
        | Ok _ -> Alcotest.fail "expected parallel Error (`Limit _)");
        Alcotest.check_raises "exn variant" (Failure "Engine.explore: execution limit exceeded")
          (fun () -> ignore (E.explore_exn ~limit:10 (G.Gen.complete 5) (fun _ -> true)))) ]

let explore_par_tests =
  let arb_instance =
    QCheck.make
      ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
      QCheck.Gen.(pair (2 -- 5) (0 -- 9999))
  in
  let models = [ Model.Sim_async; Model.Sim_sync; Model.Async; Model.Sync ] in
  (* The parallel explorer must agree with the sequential one on the verdict
     always, and on the execution count whenever the verdict is true (on a
     failing verdict the sequential explorer short-circuits, so its count is
     order-dependent by design). *)
  let agree (n, seed) =
    List.for_all
      (fun model ->
        let module P = Probe (struct
          let model = model

          let activate_when view board = Board.length board * 2 >= View.id view
        end) in
        let module E = Engine.Make (P) in
        let g = G.Gen.random_gnp (Wb_support.Prng.create seed) n 0.5 in
        let pass r = Engine.succeeded r in
        let counts_agree =
          match (E.explore g pass, E.explore_par ~jobs:4 g pass) with
          | Ok (ok_s, count_s), Ok (ok_p, count_p) ->
            ok_s = ok_p && ((not ok_s) || count_s = count_p)
          | Error (`Limit _), Error (`Limit _) -> true
          | Ok _, Error _ | Error _, Ok _ -> false
        in
        let fail r = Array.length r.Engine.writes > 0 && r.Engine.writes.(0) = 0 in
        let verdicts_agree =
          match (E.explore g fail, E.explore_par ~jobs:3 g fail) with
          | Ok (ok_s, _), Ok (ok_p, _) -> ok_s = ok_p
          | Error (`Limit _), Error (`Limit _) -> true
          | Ok _, Error _ | Error _, Ok _ -> false
        in
        counts_agree && verdicts_agree)
      models
  in
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"explore_par agrees with explore across all four models" ~count:20
         arb_instance agree);
    Alcotest.test_case "explore_par count and verdict are independent of jobs" `Quick (fun () ->
        let module P = Probe (struct
          let model = Model.Sim_async

          let activate_when _ _ = true
        end) in
        let module E = Engine.Make (P) in
        let seq = E.explore_exn (G.Gen.complete 5) (fun _ -> true) in
        List.iter
          (fun jobs ->
            match E.explore_par ~jobs (G.Gen.complete 5) (fun _ -> true) with
            | Ok par -> Alcotest.(check (pair bool int)) (Printf.sprintf "jobs=%d" jobs) seq par
            | Error (`Limit _) -> Alcotest.fail "unexpected limit")
          [ 1; 2; 4 ]) ]

let board_tests =
  [ Alcotest.test_case "append/find/truncate/generation" `Quick (fun () ->
        let b = Board.create 4 in
        let m author = Message.make ~author ~payload:[| true; false |] in
        Board.append b (m 2);
        Board.append b (m 0);
        check "has 2" true (Board.has_author b 2);
        check "no 1" false (Board.has_author b 1);
        Alcotest.(check int) "len" 2 (Board.length b);
        Alcotest.(check int) "total bits" 4 (Board.total_bits b);
        let g0 = Board.generation b in
        Board.truncate b 1;
        check "gen bumped" true (Board.generation b > g0);
        check "2 still there" true (Board.has_author b 2);
        check "0 gone" false (Board.has_author b 0);
        Alcotest.check_raises "double write" (Invalid_argument "Board.append: author already wrote")
          (fun () ->
            Board.append b (m 2)));
    Alcotest.test_case "authors_in_order" `Quick (fun () ->
        let b = Board.create 3 in
        List.iter
          (fun a -> Board.append b (Message.make ~author:a ~payload:[||]))
          [ 1; 2; 0 ];
        Alcotest.(check (list int)) "order" [ 1; 2; 0 ] (Array.to_list (Board.authors_in_order b))) ]

let adversary_tests =
  [ Alcotest.test_case "strategies pick as documented" `Quick (fun () ->
        let b = Board.create 5 in
        Alcotest.(check int) "min" 1 (Adversary.choose Adversary.min_id b [ 1; 3; 4 ]);
        Alcotest.(check int) "max" 4 (Adversary.choose Adversary.max_id b [ 1; 3; 4 ]);
        Alcotest.(check int) "priority" 3
          (Adversary.choose (Adversary.by_priority [| 0; 1; 9; 10; 2 |]) b [ 1; 3; 4 ]);
        Alcotest.(check int) "alt even board" 1 (Adversary.choose Adversary.alternating_extremes b [ 1; 3; 4 ]));
    Alcotest.test_case "random adversary stays in candidates" `Quick (fun () ->
        let adv = Adversary.random (Wb_support.Prng.create 4) in
        let b = Board.create 9 in
        for _ = 1 to 100 do
          check "member" true (List.mem (Adversary.choose adv b [ 2; 5; 8 ]) [ 2; 5; 8 ])
        done);
    Alcotest.test_case "avoider dodges neighbors of last writer" `Quick (fun () ->
        let g = G.Gen.star 5 in
        let adv = Adversary.last_writer_neighbor_avoider g in
        let b = Board.create 5 in
        Board.append b (Message.make ~author:0 ~payload:[||]);
        (* all of 1..4 neighbor the center 0: falls back to head *)
        Alcotest.(check int) "fallback" 1 (Adversary.choose adv b [ 1; 2; 3; 4 ])) ]

let model_meta_tests =
  [ Alcotest.test_case "axes" `Quick (fun () ->
        check "simasync simult" true (Model.simultaneous Model.Sim_async);
        check "sync free" false (Model.simultaneous Model.Sync);
        check "async frozen" true (Model.frozen_at_activation Model.Async);
        check "simsync live" false (Model.frozen_at_activation Model.Sim_sync));
    Alcotest.test_case "lattice order (Lemma 4)" `Quick (fun () ->
        let leq = Model.weaker_or_equal in
        check "sa<=ss" true (leq Model.Sim_async Model.Sim_sync);
        check "sa<=a" true (leq Model.Sim_async Model.Async);
        check "ss<=a" true (leq Model.Sim_sync Model.Async);
        check "a<=s" true (leq Model.Async Model.Sync);
        check "s not<= a" false (leq Model.Sync Model.Async);
        check "a not<= ss" false (leq Model.Async Model.Sim_sync);
        List.iter (fun m -> check "refl" true (leq m m)) Model.all);
    Alcotest.test_case "table1 renders" `Quick (fun () ->
        let t = Model.table1 () in
        let contains needle =
          let nl = String.length needle and tl = String.length t in
          let rec go i = i + nl <= tl && (String.sub t i nl = needle || go (i + 1)) in
          go 0
        in
        List.iter (fun needle -> check needle true (contains needle))
          [ "SIMASYNC"; "SIMSYNC"; "ASYNC"; "SYNC" ]) ]

let problems_tests =
  [ Alcotest.test_case "valid_answer accepts any legal MIS" `Quick (fun () ->
        let g = G.Gen.cycle 6 in
        check "031 not independent? 0-3 ok" true
          (Problems.valid_answer (Problems.Rooted_mis 0) g (Answer.Node_set [ 0; 2; 4 ]));
        check "other valid MIS" true
          (Problems.valid_answer (Problems.Rooted_mis 0) g (Answer.Node_set [ 0; 3 ]));
        check "missing root" false
          (Problems.valid_answer (Problems.Rooted_mis 0) g (Answer.Node_set [ 1; 4 ]));
        check "not maximal" false
          (Problems.valid_answer (Problems.Rooted_mis 0) g (Answer.Node_set [ 0 ])));
    Alcotest.test_case "valid_answer for EOB-BFS" `Quick (fun () ->
        let eob = G.Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
        check "forest ok" true
          (Problems.valid_answer Problems.Eob_bfs eob (Answer.Forest [| -1; 0; 1; 2 |]));
        check "reject wrong" false (Problems.valid_answer Problems.Eob_bfs eob Answer.Reject);
        let bad = G.Gen.cycle 4 |> fun g -> G.Graph.extend g ~extra:0 ~new_edges:[ (0, 2) ] in
        check "reject right" true (Problems.valid_answer Problems.Eob_bfs bad Answer.Reject));
    Alcotest.test_case "reference answers" `Quick (fun () ->
        let g = G.Gen.two_cliques 3 in
        check "2cl" true (Problems.reference Problems.Two_cliques g = Answer.Bool true);
        check "conn" true (Problems.reference Problems.Connectivity g = Answer.Bool false);
        check "tri" true (Problems.reference Problems.Triangle g = Answer.Bool true));
    Alcotest.test_case "subgraph reference" `Quick (fun () ->
        let g = G.Gen.complete 5 in
        (match Problems.reference (Problems.Subgraph 3) g with
        | Answer.Edge_set es -> Alcotest.(check int) "C(3,2)" 3 (List.length es)
        | _ -> Alcotest.fail "expected edge set")) ]

(* A machine over the simplest confluent protocol shape: every node writes
   its own id, frozen at activation, so the board content is a pure multiset
   of ids — exactly the setting the canonical digest is specified for. *)
module Id_node = struct
  let model = Model.Sim_async

  let message_bound ~n:_ = 64

  type local = unit

  let init _ = ()

  let wants_to_activate ~round:_ _ _ () = true

  let compose ~round:_ view _board () =
    let w = W.create () in
    W.nat w (View.id view);
    Some (Message.of_writer ~author:(View.id view) w, ())

  let output ~n:_ _ = Answer.Node_set []
end

module IdM = Machine.Make (Id_node)

(* Drive [m] through [picks], returning the digest at the configuration the
   prefix leads to (a choice point or completion). *)
let digest_after m picks =
  let rec go picks =
    match (IdM.step m, picks) with
    | `Write _, _ -> go picks
    | `Choices _, v :: rest ->
      IdM.pick m v;
      go rest
    | `Choices _, [] -> IdM.digest m
    | `Done _, [] -> IdM.digest m
    | `Done _, _ :: _ -> Alcotest.fail "prefix ran past the end"
  in
  go picks

let digest_tests =
  [ Alcotest.test_case "stable across snapshot/restore" `Quick (fun () ->
        let m = IdM.init (G.Gen.complete 4) in
        let d0 = digest_after m [ 2 ] in
        let saved = IdM.snapshot m in
        let d_deep = digest_after m [ 0; 1 ] in
        check "mutation moved the digest" true (d_deep <> d0);
        IdM.restore m saved;
        Alcotest.(check int) "restored digest" d0 (IdM.digest m);
        (* And the restored machine re-derives the same downstream digest
           incrementally, not just the restored one. *)
        Alcotest.(check int) "replay digest" d_deep (digest_after m [ 0; 1 ]));
    Alcotest.test_case "board-order-insensitive, content-sensitive" `Quick (fun () ->
        let g = G.Gen.complete 4 in
        let a = IdM.init g in
        let b = IdM.init g in
        (* Same write multiset {0,1} in opposite orders: same configuration. *)
        let da = digest_after a [ 0; 1 ] in
        let db = digest_after b [ 1; 0 ] in
        Alcotest.(check int) "orders merge" da db;
        (* Different multisets at the same depth must not merge. *)
        let c = IdM.init g in
        check "content still distinguishes" true (digest_after c [ 2; 3 ] <> da));
    Alcotest.test_case "final digests merge by configuration, not by schedule" `Quick (fun () ->
        (* The machine stops the moment the board fills, so the final
           configuration still records who wrote last (that node was never
           swept into Terminated).  Schedules sharing the last writer reach
           the same configuration and must merge; schedules ending on a
           different node genuinely differ. *)
        let g = G.Gen.complete 3 in
        let d1 = digest_after (IdM.init g) [ 0; 1; 2 ] in
        let d2 = digest_after (IdM.init g) [ 1; 0; 2 ] in
        let d3 = digest_after (IdM.init g) [ 2; 1; 0 ] in
        Alcotest.(check int) "same last writer merges" d1 d2;
        check "different last writer does not" true (d3 <> d1)) ]

(* The canonical explorer against the naive enumerator: the Traits
   declarations are promises the type system cannot check, so this
   differential is what actually pins them (the same contract shape as
   SPIN's scalarsets).  Verdicts must agree on every instance; in canonical
   mode the visited-configuration count can only shrink. *)
let verify_tests =
  let protocols =
    [ ("bfs-sync", Wb_protocols.Bfs_sync.protocol, Problems.Bfs);
      ("bfs-bipartite", Wb_protocols.Bfs_bipartite_async.protocol, Problems.Bfs);
      ("mis", Wb_protocols.Mis_simsync.protocol ~root:0, Problems.Rooted_mis 0);
      ("build-naive", Wb_protocols.Build_naive.protocol, Problems.Build) ]
  in
  let arb_instance =
    QCheck.make
      ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
      QCheck.Gen.(pair (2 -- 5) (0 -- 9999))
  in
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"verify agrees with explore on random graphs" ~count:15 arb_instance
         (fun (n, seed) ->
           let g = G.Gen.random_gnp (Wb_support.Prng.create seed) n 0.5 in
           List.for_all
             (fun (name, protocol, problem) ->
               let chk (r : Engine.run) =
                 match r.Engine.outcome with
                 | Engine.Success a -> Problems.valid_answer problem g a
                 | _ -> false
               in
               match (Engine.explore_packed protocol g chk, Engine.verify_packed protocol g chk)
               with
               | Ok (ok, count), Ok v ->
                 let verdicts = ok = v.Engine.valid in
                 let shrinks = (not v.Engine.dedup) || v.Engine.finals <= count in
                 if not (verdicts && shrinks) then
                   QCheck.Test.fail_reportf "%s: explore (%b, %d) vs verify (%b, %d+%d dedup=%b)"
                     name ok count v.Engine.valid v.Engine.states v.Engine.finals v.Engine.dedup;
                 true
               | Error (`Limit _), Error (`Limit _) -> true
               | Ok _, Error _ | Error _, Ok _ ->
                 QCheck.Test.fail_reportf "%s: limit behaviour diverged" name)
             protocols));
    Alcotest.test_case "verify is jobs-independent (steals aside)" `Quick (fun () ->
        let g = G.Gen.complete 6 in
        let chk (r : Engine.run) =
          match r.Engine.outcome with
          | Engine.Success a -> Problems.valid_answer Problems.Build g a
          | _ -> false
        in
        let strip (v : Engine.verification) = { v with Engine.steals = 0 } in
        match Engine.verify_packed ~jobs:1 Wb_protocols.Build_naive.protocol g chk with
        | Error (`Limit _) -> Alcotest.fail "unexpected limit"
        | Ok v1 ->
          check "dedup ran" true v1.Engine.dedup;
          check "nonzero symmetry" true (v1.Engine.group_order > 1);
          List.iter
            (fun jobs ->
              match Engine.verify_packed ~jobs Wb_protocols.Build_naive.protocol g chk with
              | Error (`Limit _) -> Alcotest.fail "unexpected limit"
              | Ok v -> check (Printf.sprintf "jobs=%d" jobs) true (strip v = strip v1))
            [ 2; 3 ]);
    Alcotest.test_case "verify limit is a typed error" `Quick (fun () ->
        let g = G.Gen.complete 6 in
        match Engine.verify_packed ~limit:3 Wb_protocols.Build_naive.protocol g (fun _ -> true)
        with
        | Error (`Limit _) -> ()
        | Ok _ -> Alcotest.fail "expected Error (`Limit _)");
    Alcotest.test_case "opaque protocols fall back to enumeration" `Quick (fun () ->
        let module P = Probe (struct
          let model = Model.Sim_async

          let activate_when _ _ = true
        end) in
        let g = G.Gen.complete 4 in
        match
          ( Engine.verify_packed (module P : Protocol.S) g (fun _ -> true),
            Engine.explore_packed (module P : Protocol.S) g (fun _ -> true) )
        with
        | Ok v, Ok (ok, count) ->
          check "fallback flagged" false v.Engine.dedup;
          check "verdict" true (v.Engine.valid = ok);
          Alcotest.(check int) "execution count" count v.Engine.finals
        | _ -> Alcotest.fail "unexpected limit") ]

let suites =
  [ ("model.message-timing", message_timing_tests);
    ("model.lifecycle", lifecycle_tests);
    ("model.explore", explore_tests);
    ("model.explore-par", explore_par_tests);
    ("model.digest", digest_tests);
    ("model.verify", verify_tests);
    ("model.board", board_tests);
    ("model.adversary", adversary_tests);
    ("model.meta", model_meta_tests);
    ("model.problems", problems_tests) ]
