(* The observability layer: hand-rolled JSON, the event vocabulary and its
   wire round-trip, trace sinks, the metrics registry, and — most
   importantly — the contract between the engine's live event stream and
   the run record (compose counts, ordering invariants, and the
   timeline/summary agreement on the deadlock round). *)

open Wb_model
module G = Wb_graph
module Prng = Wb_support.Prng
module Obs = Wb_obs
module J = Obs.Json
module E = Obs.Event

let qtest = QCheck_alcotest.to_alcotest
let check = Alcotest.(check bool)

(* --- JSON ------------------------------------------------------------- *)

let roundtrip v = J.of_string_exn (J.to_string v)

let json_tests =
  [ Alcotest.test_case "nested value round-trips through the printer" `Quick (fun () ->
        let v =
          J.Obj
            [ ("a", J.List [ J.Int 1; J.Int (-42); J.Null; J.Bool true; J.Bool false ]);
              ("empty", J.List []);
              ("nested", J.Obj [ ("x", J.Float 1.5); ("y", J.String "hi") ]);
              ("none", J.Obj []) ]
        in
        check "roundtrip" true (roundtrip v = v));
    Alcotest.test_case "string escapes round-trip" `Quick (fun () ->
        let v = J.String "quote\" back\\slash \n tab\t ctrl\001 caf\xc3\xa9" in
        check "roundtrip" true (roundtrip v = v));
    Alcotest.test_case "unicode escapes decode to UTF-8" `Quick (fun () ->
        check "latin A" true (J.of_string_exn {|"A"|} = J.String "A");
        check "2-byte" true (J.of_string_exn {|"é"|} = J.String "\xc3\xa9");
        check "3-byte" true (J.of_string_exn {|"€"|} = J.String "\xe2\x82\xac"));
    Alcotest.test_case "integer tokens parse as Int, fraction/exponent as Float" `Quick
      (fun () ->
        check "int" true (J.of_string_exn "3" = J.Int 3);
        check "neg int" true (J.of_string_exn "-17" = J.Int (-17));
        check "frac" true (J.of_string_exn "3.5" = J.Float 3.5);
        check "exp" true (J.of_string_exn "2e3" = J.Float 2000.));
    Alcotest.test_case "malformed inputs are rejected" `Quick (fun () ->
        List.iter
          (fun s ->
            match J.of_string s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %S" s)
          [ "{"; "tru"; "[1,]"; "{\"a\":}"; "1 2"; ""; "\"unterminated"; "{\"a\" 1}" ]);
    Alcotest.test_case "accessors" `Quick (fun () ->
        let v = J.of_string_exn {|{"a": {"b": [1, "two"]}}|} in
        let lst = Option.get (J.to_list (J.get "b" (J.get "a" v))) in
        check "int elem" true (J.to_int (List.nth lst 0) = Some 1);
        check "str elem" true (J.to_str (List.nth lst 1) = Some "two");
        check "missing member" true (J.member "zzz" v = None)) ]

(* --- events ----------------------------------------------------------- *)

let sample_events =
  [ E.Round_start { round = 1 };
    E.Activate { node = 0; round = 1 };
    E.Compose { node = 3; round = 2; bits = 17 };
    E.Adversary_pick { node = 2; round = 2; candidates = [ 0; 2; 5 ] };
    E.Write { node = 2; round = 2; bits = 9; board_bits = 31 };
    E.Deadlock_detected { round = 4 };
    E.Run_end { round = 4; outcome = "deadlock" } ]

let event_tests =
  [ Alcotest.test_case "to_json/of_json round-trips every constructor" `Quick (fun () ->
        List.iter
          (fun ev ->
            match E.of_json (J.of_string_exn (J.to_string (E.to_json ev))) with
            | Ok ev' -> check (Format.asprintf "%a" E.pp ev) true (ev' = ev)
            | Error msg -> Alcotest.failf "decode failed: %s" msg)
          sample_events);
    Alcotest.test_case "of_json rejects unknown tags and missing fields" `Quick (fun () ->
        List.iter
          (fun s ->
            match E.of_json (J.of_string_exn s) with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %s" s)
          [ {|{"ev": "warp", "round": 1}|}; {|{"ev": "write", "round": 1}|}; {|[1,2]|} ]) ]

(* --- trace sinks ------------------------------------------------------ *)

let trace_tests =
  [ Alcotest.test_case "collector preserves emission order" `Quick (fun () ->
        let tr, events = Obs.Trace.collector () in
        List.iter (Obs.Trace.emit tr) sample_events;
        check "order" true (events () = sample_events));
    Alcotest.test_case "tee fans out to every sink" `Quick (fun () ->
        let a, ea = Obs.Trace.collector () in
        let b, eb = Obs.Trace.collector () in
        let tr = Obs.Trace.tee [ a; b ] in
        List.iter (Obs.Trace.emit tr) sample_events;
        check "a" true (ea () = sample_events);
        check "b" true (eb () = sample_events));
    Alcotest.test_case "ring keeps the latest [capacity] events" `Quick (fun () ->
        let ring = Obs.Trace.Ring.create ~capacity:3 in
        let tr = Obs.Trace.Ring.sink ring in
        List.iter (Obs.Trace.emit tr) sample_events;
        Alcotest.(check int) "length" 3 (Obs.Trace.Ring.length ring);
        Alcotest.(check int) "dropped" 4 (Obs.Trace.Ring.dropped ring);
        let tail = Obs.Trace.Ring.to_list ring in
        check "latest, oldest first" true
          (tail
          = [ E.Write { node = 2; round = 2; bits = 9; board_bits = 31 };
              E.Deadlock_detected { round = 4 };
              E.Run_end { round = 4; outcome = "deadlock" } ]);
        Obs.Trace.Ring.clear ring;
        Alcotest.(check int) "cleared" 0 (Obs.Trace.Ring.length ring));
    Alcotest.test_case "closed sinks drop events; close is idempotent" `Quick (fun () ->
        let tr, events = Obs.Trace.collector () in
        Obs.Trace.emit tr (List.hd sample_events);
        Obs.Trace.close tr;
        Obs.Trace.close tr;
        Obs.Trace.emit tr (List.hd sample_events);
        Alcotest.(check int) "one event" 1 (List.length (events ())));
    Alcotest.test_case "sample keeps every k-th Run_end-delimited window" `Quick (fun () ->
        let window i =
          [ E.Round_start { round = 1 };
            E.Write { node = i; round = 1; bits = 1; board_bits = 1 };
            E.Run_end { round = 1; outcome = "success" } ]
        in
        let inner, events = Obs.Trace.collector () in
        let tr = Obs.Trace.sample ~every:3 inner in
        for i = 0 to 6 do
          List.iter (Obs.Trace.emit tr) (window i)
        done;
        Obs.Trace.close tr;
        (* windows 0, 3 and 6 survive *)
        check "sampled windows" true (events () = window 0 @ window 3 @ window 6)) ]

(* --- metrics registry ------------------------------------------------- *)

let metrics_tests =
  [ Alcotest.test_case "counters are idempotently registered and add up" `Quick (fun () ->
        let c = Obs.Metrics.counter "test.obs.c" in
        let c' = Obs.Metrics.counter "test.obs.c" in
        let before = Obs.Metrics.counter_value c in
        Obs.Metrics.incr c;
        Obs.Metrics.add c' 4;
        Alcotest.(check int) "shared" (before + 5) (Obs.Metrics.counter_value c);
        check "negative add rejected" true
          (match Obs.Metrics.add c (-1) with
          | exception Invalid_argument _ -> true
          | () -> false));
    Alcotest.test_case "re-registering a name as a different kind is an error" `Quick
      (fun () ->
        let _ = Obs.Metrics.counter "test.obs.kind" in
        check "kind clash" true
          (match Obs.Metrics.gauge "test.obs.kind" with
          | exception Invalid_argument _ -> true
          | _ -> false));
    Alcotest.test_case "histogram buckets observations by bit width" `Quick (fun () ->
        let h = Obs.Metrics.histogram "test.obs.h" in
        let base_count = Obs.Metrics.histogram_count h in
        let base_sum = Obs.Metrics.histogram_sum h in
        List.iter (Obs.Metrics.observe h) [ 0; 1; 2; 3; 8; 1000 ];
        Alcotest.(check int) "count" (base_count + 6) (Obs.Metrics.histogram_count h);
        Alcotest.(check int) "sum" (base_sum + 1014) (Obs.Metrics.histogram_sum h);
        let dump = Obs.Metrics.dump_json () in
        let hj = J.get "test.obs.h" (J.get "histograms" dump) in
        check "count in dump" true (J.to_int (J.get "count" hj) = Some (base_count + 6));
        match J.to_list (J.get "buckets" hj) with
        | Some (_ :: _) -> ()
        | _ -> Alcotest.fail "buckets missing");
    Alcotest.test_case "dump_json has the documented envelope and polls probes" `Quick
      (fun () ->
        let cell = ref 7 in
        Obs.Metrics.probe "test.obs.probe" (fun () -> !cell);
        cell := 11;
        let dump = Obs.Metrics.dump_json () in
        List.iter
          (fun k ->
            match J.member k dump with
            | Some (J.Obj _) -> ()
            | _ -> Alcotest.failf "missing %s" k)
          [ "counters"; "gauges"; "histograms" ];
        check "probe polled at dump time" true
          (J.to_int (J.get "test.obs.probe" (J.get "gauges" dump)) = Some 11));
    Alcotest.test_case "reset zeroes values but keeps registrations" `Quick (fun () ->
        let c = Obs.Metrics.counter "test.obs.reset" in
        Obs.Metrics.add c 9;
        Obs.Metrics.reset ();
        Alcotest.(check int) "zeroed" 0 (Obs.Metrics.counter_value c);
        Obs.Metrics.incr c;
        Alcotest.(check int) "still live" 1 (Obs.Metrics.counter_value c));
    Alcotest.test_case "reset zeroes histograms down to percentiles and the dump" `Quick
      (fun () ->
        let h = Obs.Metrics.histogram "test.obs.reset-h" in
        List.iter (Obs.Metrics.observe h) [ 1; 2; 4; 1000 ];
        check "observed before reset" true (Obs.Metrics.histogram_count h >= 4);
        Obs.Metrics.reset ();
        Alcotest.(check int) "count zeroed" 0 (Obs.Metrics.histogram_count h);
        Alcotest.(check int) "sum zeroed" 0 (Obs.Metrics.histogram_sum h);
        Alcotest.(check int) "percentile of empty" 0 (Obs.Metrics.percentile h 99.);
        let hj = J.get "test.obs.reset-h" (J.get "histograms" (Obs.Metrics.dump_json ())) in
        check "count in dump zeroed" true (J.to_int (J.get "count" hj) = Some 0);
        check "empty dump reports null percentiles" true (J.member "p50" hj = Some J.Null);
        Obs.Metrics.observe h 8;
        Alcotest.(check int) "registration survives" 1 (Obs.Metrics.histogram_count h));
    Alcotest.test_case "percentile estimates from buckets, clamped by the observed max"
      `Quick (fun () ->
        let h = Obs.Metrics.histogram "test.obs.pct" in
        Alcotest.(check int) "empty histogram" 0 (Obs.Metrics.percentile h 50.);
        List.iter (Obs.Metrics.observe h) [ 0; 0; 0; 1000 ];
        Alcotest.(check int) "p50 lands in the zero bucket" 0 (Obs.Metrics.percentile h 50.);
        Alcotest.(check int) "p99 clamped to the max" 1000 (Obs.Metrics.percentile h 99.);
        List.iter
          (fun p ->
            check (Printf.sprintf "p=%g rejected" p) true
              (match Obs.Metrics.percentile h p with
              | exception Invalid_argument _ -> true
              | _ -> false))
          [ -1.; 100.5 ]);
    Alcotest.test_case "engine runs move the engine.* metrics" `Quick (fun () ->
        let runs = Obs.Metrics.counter "engine.runs" in
        let writes = Obs.Metrics.counter "engine.writes" in
        let before_runs = Obs.Metrics.counter_value runs in
        let before_writes = Obs.Metrics.counter_value writes in
        let g = G.Gen.random_tree (Prng.create 3) 12 in
        let run = Engine.run_packed Wb_protocols.Build_forest.protocol g Adversary.min_id in
        check "ran" true (Engine.succeeded run);
        Alcotest.(check int) "runs +1" (before_runs + 1) (Obs.Metrics.counter_value runs);
        Alcotest.(check int) "writes +12" (before_writes + 12) (Obs.Metrics.counter_value writes));
    Alcotest.test_case "PRNG draws are visible through the probe" `Quick (fun () ->
        let before = Wb_support.Prng.total_draws () in
        let rng = Prng.create 1 in
        let _ = Prng.int rng 100 in
        check "draws advanced" true (Wb_support.Prng.total_draws () > before);
        let dump = Obs.Metrics.dump_json () in
        check "probe registered" true (J.member "prng.draws" (J.get "gauges" dump) <> None)) ]

(* --- spans: deterministic ids, linkage, and the Chrome merge ----------- *)

let span_tests =
  [ Alcotest.test_case "minted ids are deterministic, 48-bit and nonzero" `Quick (fun () ->
        let stream seed =
          let m = Obs.Span.minter ~seed () in
          List.init 64 (fun _ -> Obs.Span.mint m)
        in
        check "equal seeds mint equal streams" true (stream 7 = stream 7);
        check "different seeds diverge" true (stream 7 <> stream 8);
        List.iter
          (fun id -> check "48-bit nonzero" true (id > 0 && id < 1 lsl 48))
          (stream 7 @ stream 0));
    Alcotest.test_case "start/finish emit linked span events" `Quick (fun () ->
        let tr, events = Obs.Trace.collector () in
        let m = Obs.Span.minter ~seed:3 () in
        let root = Obs.Span.start ~attrs:[ ("kind", "test") ] m tr "root" in
        let ctx = Obs.Span.context root in
        let child = Obs.Span.start ~parent:ctx ~round:2 m tr "child" in
        Obs.Span.finish ~round:3 tr child;
        Obs.Span.finish ~round:4 tr root;
        match events () with
        | [ E.Span_start { trace = t1; span = s1; parent = p1; name = n1; attrs; _ };
            E.Span_start { trace = t2; span = s2; parent = p2; round = r2; _ };
            E.Span_stop { span = e1; round = er1; _ };
            E.Span_stop { span = e2; _ } ] ->
          check "root has no parent" true (p1 = None);
          check "root name" true (n1 = "root");
          check "attrs carried" true (attrs = [ ("kind", "test") ]);
          check "context exposes the ids" true
            (ctx.Obs.Span.trace = t1 && ctx.Obs.Span.span = s1);
          check "child shares the trace" true (t2 = t1);
          check "child parented under root" true (p2 = Some s1);
          check "child round carried" true (r2 = 2);
          check "child closed first" true (e1 = s2 && er1 = 3);
          check "root closed last" true (e2 = s1)
        | evs -> Alcotest.failf "unexpected stream (%d events)" (List.length evs));
    Alcotest.test_case "span events round-trip through JSON" `Quick (fun () ->
        let tr, events = Obs.Trace.collector () in
        let m = Obs.Span.minter ~seed:9 () in
        let a = Obs.Span.start ~attrs:[ ("n", "16"); ("g", "grid") ] m tr "a" in
        let b = Obs.Span.start ~parent:(Obs.Span.context a) ~round:1 m tr "b" in
        Obs.Span.finish ~round:2 tr b;
        Obs.Span.finish ~round:2 tr a;
        List.iter
          (fun ev ->
            match E.of_json (J.of_string_exn (J.to_string (E.to_json ev))) with
            | Ok ev' -> check (Format.asprintf "%a" E.pp ev) true (ev' = ev)
            | Error msg -> Alcotest.failf "decode failed: %s" msg)
          (events ()));
    Alcotest.test_case "a traced run roots its spans under the caller's span" `Quick
      (fun () ->
        let tr, events = Obs.Trace.collector () in
        let m = Obs.Span.minter ~seed:5 () in
        let root = Obs.Span.start m tr "driver" in
        let g = G.Gen.grid 3 3 in
        let run =
          Engine.run_packed ~trace:tr ~span:(Obs.Span.context root)
            Wb_protocols.Bfs_sync.protocol g Adversary.min_id
        in
        Obs.Span.finish tr root;
        check "succeeded" true (Engine.succeeded run);
        let starts =
          List.filter_map
            (function
              | E.Span_start { trace; span; parent; name; _ } ->
                Some (trace, span, parent, name)
              | _ -> None)
            (events ())
        in
        let ctx = Obs.Span.context root in
        check "every span shares the driver's trace id" true
          (List.for_all (fun (t, _, _, _) -> t = ctx.Obs.Span.trace) starts);
        check "exactly one root" true
          (List.length (List.filter (fun (_, _, p, _) -> p = None) starts) = 1);
        let ids = List.map (fun (_, s, _, _) -> s) starts in
        check "ids distinct" true
          (List.length (List.sort_uniq compare ids) = List.length ids);
        check "the run span is a child of the driver span" true
          (List.exists (fun (_, _, p, n) -> n = "run" && p = Some ctx.Obs.Span.span) starts);
        check "every parent is a started span" true
          (List.for_all
             (fun (_, _, p, _) -> match p with None -> true | Some p -> List.mem p ids)
             starts));
    Alcotest.test_case "Chrome.merge names each shard and keeps b/e pairs matched" `Quick
      (fun () ->
        let shard seed name =
          let tr, events = Obs.Trace.collector () in
          let m = Obs.Span.minter ~seed () in
          let s = Obs.Span.start m tr name in
          let c = Obs.Span.start ~parent:(Obs.Span.context s) m tr (name ^ ".child") in
          Obs.Span.finish tr c;
          Obs.Span.finish tr s;
          events ()
        in
        (* chop the root's Span_start off one shard: its orphaned Span_stop
           (ring truncation in real life) must be dropped by the merge *)
        let truncated = List.tl (shard 31 "late") in
        let v =
          Obs.Chrome.merge
            [ ("alpha", shard 11 "alpha"); ("beta", shard 21 "beta"); ("late", truncated) ]
        in
        let events = Option.get (J.to_list (J.get "traceEvents" v)) in
        let phase e = J.to_str (J.get "ph" e) in
        let names =
          List.filter_map
            (fun e ->
              if phase e = Some "M" && J.to_str (J.get "name" e) = Some "process_name" then
                Option.bind (J.member "args" e) (fun a ->
                    Option.bind (J.member "name" a) J.to_str)
              else None)
            events
        in
        check "every shard is a named process" true
          (List.sort compare names = [ "alpha"; "beta"; "late" ]);
        let count ph = List.length (List.filter (fun e -> phase e = Some ph) events) in
        Alcotest.(check int) "begins: 2 + 2 + 1" 5 (count "b");
        Alcotest.(check int) "every end has a begin" 5 (count "e");
        let ts = List.filter_map (fun e -> Option.bind (J.member "ts" e) J.to_int) events in
        check "timestamps normalised to zero" true
          (List.exists (fun t -> t = 0) ts && List.for_all (fun t -> t >= 0) ts)) ]

(* --- engine stream: ordering invariants and exporter round-trips ------ *)

let assert_stream_invariants name ?n evs =
  (match List.rev evs with
  | E.Run_end _ :: rest ->
    check (name ^ ": run_end unique") true
      (List.for_all (function E.Run_end _ -> false | _ -> true) rest)
  | _ -> Alcotest.failf "%s: last event is not Run_end" name);
  let activated = Hashtbl.create 16 in
  List.iter
    (function
      | E.Activate { node; _ } -> Hashtbl.replace activated node ()
      | E.Write { node; _ } ->
        check (name ^ ": no write before activate") true (Hashtbl.mem activated node)
      | _ -> ())
    evs;
  let last_start = ref 0 in
  List.iter
    (function
      | E.Round_start { round } ->
        check (name ^ ": round starts strictly increase") true (round > !last_start);
        last_start := round
      | _ -> ())
    evs;
  let last_round = ref 0 in
  List.iter
    (fun ev ->
      let r = E.round ev in
      check (name ^ ": event rounds nondecreasing") true (r >= !last_round);
      last_round := r)
    evs;
  let last_board = ref 0 in
  List.iter
    (function
      | E.Write { board_bits; bits; _ } ->
        check (name ^ ": board grows by each write") true (board_bits = !last_board + bits);
        last_board := board_bits
      | _ -> ())
    evs;
  match n with
  | None -> ()
  | Some n ->
    let writes =
      List.length (List.filter (function E.Write _ -> true | _ -> false) evs)
    in
    Alcotest.(check int) (name ^ ": n writes") n writes

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let with_temp_file suffix f =
  let path = Filename.temp_file "wb_obs_test" suffix in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let traced_bfs_64 () =
  let g = G.Gen.random_connected (Prng.create 41) 64 0.08 in
  let collect, events = Obs.Trace.collector () in
  let run =
    Engine.run_packed ~trace:collect Wb_protocols.Bfs_sync.protocol g Adversary.min_id
  in
  check "succeeded" true (Engine.succeeded run);
  (run, events ())

let engine_stream_tests =
  [ Alcotest.test_case "SYNC BFS n=64 stream satisfies the ordering invariants" `Quick
      (fun () ->
        let _, evs = traced_bfs_64 () in
        assert_stream_invariants "live" ~n:64 evs);
    Alcotest.test_case "SYNC BFS n=64 round-trips through the JSONL exporter" `Quick
      (fun () ->
        with_temp_file ".jsonl" (fun path ->
            let oc = open_out path in
            let jsonl = Obs.Trace.jsonl_writer oc in
            let collect, events = Obs.Trace.collector () in
            let g = G.Gen.random_connected (Prng.create 41) 64 0.08 in
            let run =
              Engine.run_packed
                ~trace:(Obs.Trace.tee [ jsonl; collect ])
                Wb_protocols.Bfs_sync.protocol g Adversary.min_id
            in
            Obs.Trace.close jsonl;
            close_out oc;
            check "succeeded" true (Engine.succeeded run);
            let decoded =
              List.map
                (fun line ->
                  match E.of_json (J.of_string_exn line) with
                  | Ok ev -> ev
                  | Error msg -> Alcotest.failf "bad line %S: %s" line msg)
                (read_lines path)
            in
            check "decoded stream equals the live stream" true (decoded = events ());
            assert_stream_invariants "jsonl" ~n:64 decoded));
    Alcotest.test_case "Chrome export is valid JSON with one slice per node" `Quick
      (fun () ->
        with_temp_file ".json" (fun path ->
            let oc = open_out path in
            let chrome = Obs.Chrome.writer oc in
            let g = G.Gen.random_connected (Prng.create 41) 64 0.08 in
            let run =
              Engine.run_packed ~trace:chrome Wb_protocols.Bfs_sync.protocol g
                Adversary.min_id
            in
            Obs.Trace.close chrome;
            close_out oc;
            check "succeeded" true (Engine.succeeded run);
            let ic = open_in path in
            let len = in_channel_length ic in
            let body = really_input_string ic len in
            close_in ic;
            let v = J.of_string_exn body in
            let events = Option.get (J.to_list (J.get "traceEvents" v)) in
            let phase e = J.to_str (J.get "ph" e) in
            let slices = List.filter (fun e -> phase e = Some "X") events in
            Alcotest.(check int) "64 node lifetime slices" 64 (List.length slices);
            List.iter
              (fun e ->
                List.iter
                  (fun k ->
                    if J.member k e = None then
                      Alcotest.failf "trace event missing %S in %s" k (J.to_string e))
                  [ "name"; "ph"; "ts"; "pid"; "tid" ])
              events));
    Alcotest.test_case "attaching a trace does not change the run" `Quick (fun () ->
        let g = G.Gen.random_connected (Prng.create 17) 32 0.1 in
        let plain = Engine.run_packed Wb_protocols.Bfs_sync.protocol g Adversary.min_id in
        let tr, _ = Obs.Trace.collector () in
        let traced =
          Engine.run_packed ~trace:tr Wb_protocols.Bfs_sync.protocol g Adversary.min_id
        in
        check "identical run records" true (plain = traced));
    Alcotest.test_case "events_of_run matches the live stream's activate/write skeleton"
      `Quick (fun () ->
        let run, evs = traced_bfs_64 () in
        let skeleton =
          List.filter
            (function
              | E.Activate _ | E.Write _ | E.Deadlock_detected _ | E.Run_end _ -> true
              | E.Round_start _ | E.Compose _ | E.Adversary_pick _ | E.Cost_round _
              | E.Span_start _ | E.Span_stop _ -> false)
            evs
        in
        check "skeleton equality" true (Report.events_of_run run = skeleton));
    Alcotest.test_case "explore emits one Run_end per visited execution" `Quick (fun () ->
        let g = G.Gen.random_ktree (Prng.create 5) 5 ~k:2 in
        let tr, events = Obs.Trace.collector () in
        let ok, count =
          Engine.explore_packed_exn ~trace:tr Wb_protocols.Build_forest.protocol g (fun r ->
              Engine.succeeded r)
        in
        check "all succeed" true ok;
        let ends =
          List.length (List.filter (function E.Run_end _ -> true | _ -> false) (events ()))
        in
        Alcotest.(check int) "run ends" count ends) ]

(* --- satellite 1: timeline and summary agree on the deadlock round ---- *)

(* Triangle 0-1-2 plus tail 1-3-4: the within-layer edge starves node 4's
   layer-completion certificate, so every schedule deadlocks (Section 6). *)
let deadlock_graph () = G.Graph.of_edges 5 [ (0, 1); (0, 2); (1, 2); (1, 3); (3, 4) ]

let deadlock_run () =
  Engine.run_packed Wb_protocols.Bfs_bipartite_async.protocol (deadlock_graph ())
    Adversary.min_id

let contains haystack needle =
  let n = String.length needle in
  let rec scan i =
    i + n <= String.length haystack && (String.sub haystack i n = needle || scan (i + 1))
  in
  scan 0

let timeline_tests =
  [ Alcotest.test_case "deadlocked timeline shows the detection round of the summary"
      `Quick (fun () ->
        let run = deadlock_run () in
        check "deadlocks" true (run.Engine.outcome = Engine.Deadlock);
        let rounds = run.Engine.stats.rounds in
        let evs = Report.events_of_run run in
        check "deadlock event carries the summary's round count" true
          (List.exists
             (function E.Deadlock_detected { round } -> round = rounds | _ -> false)
             evs);
        let timeline = Report.timeline run in
        check "summary line mentions the round count" true
          (contains timeline (Printf.sprintf "%d rounds" rounds));
        check "DEADLOCK row rendered" true (contains timeline "DEADLOCK"));
    Alcotest.test_case "live trace and record-derived timeline agree row by row" `Quick
      (fun () ->
        let g = deadlock_graph () in
        let tr, events = Obs.Trace.collector () in
        let run =
          Engine.run_packed ~trace:tr Wb_protocols.Bfs_bipartite_async.protocol g
            Adversary.min_id
        in
        let strip_live =
          List.filter
            (function
              | E.Activate _ | E.Write _ | E.Deadlock_detected _ | E.Run_end _ -> true
              | _ -> false)
            (events ())
        in
        check "same skeleton" true (Report.events_of_run run = strip_live)) ]

(* --- satellite 2: compose counts, property-tested ---------------------- *)

let compose_matches_trace protocol g adversary =
  let tr, events = Obs.Trace.collector () in
  let run = Engine.run_packed ~trace:tr protocol g adversary in
  let n = Array.length run.Engine.compose_count in
  let from_trace = Array.make n 0 in
  List.iter
    (function
      | E.Compose { node; _ } -> from_trace.(node) <- from_trace.(node) + 1
      | _ -> ())
    (events ());
  (run, run.Engine.compose_count = from_trace)

let compose_tests =
  [ qtest
      (QCheck.Test.make ~name:"frozen models compose exactly once per activated node"
         ~count:40
         QCheck.(pair small_int small_int)
         (fun (seed, size) ->
           let n = 3 + (abs size mod 28) in
           let rng = Prng.create (1 + abs seed) in
           let g, protocol =
             if seed mod 2 = 0 then
               (G.Gen.random_tree rng n, Wb_protocols.Build_forest.protocol)
             else (G.Gen.random_eob rng n 0.3, Wb_protocols.Eob_bfs_async.protocol)
           in
           let run, agrees = compose_matches_trace protocol g (Adversary.random rng) in
           agrees
           && Array.for_all2
                (fun c a -> c = if a >= 0 then 1 else 0)
                run.Engine.compose_count run.Engine.activation_round));
    qtest
      (QCheck.Test.make
         ~name:"sync models: compose count = rounds spent as a write candidate" ~count:40
         QCheck.(pair small_int small_int)
         (fun (seed, size) ->
           let n = 3 + (abs size mod 28) in
           let rng = Prng.create (1 + abs seed) in
           let g, protocol =
             if seed mod 2 = 0 then
               (G.Gen.random_gnp rng n 0.2, Wb_protocols.Mis_simsync.protocol ~root:0)
             else (G.Gen.random_connected rng n 0.2, Wb_protocols.Bfs_sync.protocol)
           in
           let run, agrees = compose_matches_trace protocol g (Adversary.random rng) in
           agrees
           && Array.for_all
                (fun v ->
                  let a = run.Engine.activation_round.(v) in
                  let w = run.Engine.write_round.(v) in
                  w < 0 || run.Engine.compose_count.(v) = w - a)
                (Array.init n Fun.id)));
    Alcotest.test_case "engine.recompositions counter totals the compose events" `Quick
      (fun () ->
        let recomp = Obs.Metrics.counter "engine.recompositions" in
        let before = Obs.Metrics.counter_value recomp in
        let g = G.Gen.grid 4 4 in
        let run, agrees =
          compose_matches_trace Wb_protocols.Bfs_sync.protocol g Adversary.min_id
        in
        check "trace agrees with record" true agrees;
        let total = Array.fold_left ( + ) 0 run.Engine.compose_count in
        Alcotest.(check int) "counter delta" (before + total)
          (Obs.Metrics.counter_value recomp)) ]

let suites =
  [ ("obs.json", json_tests);
    ("obs.event", event_tests);
    ("obs.trace", trace_tests);
    ("obs.metrics", metrics_tests);
    ("obs.span", span_tests);
    ("obs.engine-stream", engine_stream_tests);
    ("obs.timeline", timeline_tests);
    ("obs.compose-count", compose_tests) ]
