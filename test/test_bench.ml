(* Wb_bench: the shared report schema, the uniform bench CLI and the
   history diff / regression gate that scripts/benchdiff.ml drives. *)

module J = Wb_obs.Json
module Report = Wb_bench.Report
module Diff = Wb_bench.Diff

let check msg = Alcotest.(check bool) msg true

let argv l = Array.of_list ("bench" :: l)

let cli_tests =
  [ Alcotest.test_case "defaults" `Quick (fun () ->
        let c = Report.Cli.parse ~argv:(argv []) () in
        check "no seed" (c.Report.Cli.seed = None);
        check "no out" (c.Report.Cli.out = None);
        check "not fast" (not c.Report.Cli.fast);
        check "no rest" (c.Report.Cli.rest = []);
        Alcotest.(check int) "seed falls back to the default" 2012
          (Report.Cli.seed c ~default:2012));
    Alcotest.test_case "flags in any order, rest preserved in order" `Quick (fun () ->
        let c =
          Report.Cli.parse
            ~argv:(argv [ "table2"; "--seed"; "7"; "--fast"; "fig"; "--out"; "x.json" ])
            ()
        in
        check "seed parsed" (c.Report.Cli.seed = Some 7);
        Alcotest.(check int) "seed overrides the default" 7 (Report.Cli.seed c ~default:2012);
        check "out parsed" (c.Report.Cli.out = Some "x.json");
        check "fast parsed" c.Report.Cli.fast;
        check "rest keeps order" (c.Report.Cli.rest = [ "table2"; "fig" ])) ]

let report_tests =
  [ Alcotest.test_case "the envelope carries the schema and flattened metrics" `Quick
      (fun () ->
        let rep = Report.create ~params:[ ("n", J.Int 12) ] ~bench:"unit" ~seed:5 () in
        Report.add_row rep ~name:"grid"
          [ ("rounds", J.Int 9);
            ("wall_s", J.Float 0.25);
            ("label", J.String "not a metric");
            ("activate", J.Obj [ ("p99", J.Int 40); ("unit", J.String "us") ]) ];
        Report.add_metric rep "extra" 1.5;
        let doc = Report.to_json rep in
        check "schema is 1" (Report.schema_of doc = Some 1);
        check "bench name round-trips" (Report.bench_of doc = Some "unit");
        (match J.member "seed" doc with
        | Some (J.Int 5) -> ()
        | _ -> Alcotest.fail "seed missing from the envelope");
        (match J.member "git" doc with
        | Some (J.String _) -> ()
        | _ -> Alcotest.fail "git rev missing from the envelope");
        (match J.member "rows" doc with
        | Some (J.List [ J.Obj row ]) ->
          check "the row is named" (List.assoc_opt "name" row = Some (J.String "grid"))
        | _ -> Alcotest.fail "rows missing");
        let metrics = Report.metrics_of doc in
        let get k = List.assoc_opt k metrics in
        check "int fields flatten" (get "grid.rounds" = Some 9.);
        check "float fields flatten" (get "grid.wall_s" = Some 0.25);
        check "nested objects flatten one level" (get "grid.activate.p99" = Some 40.);
        check "strings are not metrics" (get "grid.label" = None);
        check "explicit metrics survive" (get "extra" = Some 1.5);
        check "wall_s is always present" (Option.is_some (get "wall_s")));
    Alcotest.test_case "default_out derives from the bench name" `Quick (fun () ->
        let rep = Report.create ~bench:"explore" ~seed:1 () in
        Alcotest.(check string) "BENCH_<bench>.json" "BENCH_explore.json"
          (Report.default_out rep)) ]

let stats_tests =
  [ Alcotest.test_case "median" `Quick (fun () ->
        check "odd count picks the middle" (Diff.median [ 3.; 1.; 2. ] = 2.);
        check "even count averages the middles" (Diff.median [ 4.; 1.; 2.; 3. ] = 2.5);
        check "empty raises"
          (match Diff.median [] with exception Invalid_argument _ -> true | _ -> false));
    Alcotest.test_case "mad" `Quick (fun () ->
        check "constant data has zero deviation" (Diff.mad [ 5.; 5.; 5. ] = 0.);
        check "100 and 104 around their median deviate by 2" (Diff.mad [ 100.; 104. ] = 2.));
    Alcotest.test_case "parse_gate" `Quick (fun () ->
        (match Diff.parse_gate "p99:+10%" with
        | Some g ->
          Alcotest.(check string) "pattern" "p99" g.Diff.pat;
          check "percentage" (g.Diff.pct = 10.)
        | None -> Alcotest.fail "p99:+10% should parse");
        (match Diff.parse_gate "us:25" with
        | Some g -> check "plus and percent are optional" (g.Diff.pct = 25.)
        | None -> Alcotest.fail "us:25 should parse");
        List.iter
          (fun s -> check (s ^ " is rejected") (Diff.parse_gate s = None))
          [ "p99"; ":+10%"; "p99:ten"; "p99:-5%" ]) ]

(* A minimal schema-1 document: just the members the diff reads. *)
let doc ~bench metrics =
  J.Obj
    [ ("schema", J.Int 1);
      ("bench", J.String bench);
      ("metrics", J.Obj (List.map (fun (k, v) -> (k, J.Float v)) metrics)) ]

let diff_tests =
  [ Alcotest.test_case "no priors: reported as new, never regressed" `Quick (fun () ->
        let rows =
          Diff.compare_run
            ~gates:[ { Diff.pat = "us"; pct = 0. } ]
            ~priors:[]
            (doc ~bench:"b" [ ("p99_us", 1000.) ])
        in
        match rows with
        | [ r ] ->
          Alcotest.(check int) "no prior runs" 0 r.Diff.prior_runs;
          check "gated still" r.Diff.gated;
          check "but not regressed" (not r.Diff.regressed)
        | _ -> Alcotest.fail "expected one row");
    Alcotest.test_case "the noise floor absorbs jitter a tight gate would trip" `Quick
      (fun () ->
        (* priors 100/110/90: median 100, MAD 10, noise floor 30 — a 15%
           bump is jitter here even under a +1% gate. *)
        let priors =
          [ doc ~bench:"b" [ ("rpc.p99_us", 100.) ];
            doc ~bench:"b" [ ("rpc.p99_us", 110.) ];
            doc ~bench:"b" [ ("rpc.p99_us", 90.) ] ]
        in
        let gates = [ { Diff.pat = "p99"; pct = 1. } ] in
        let rows =
          Diff.compare_run ~gates ~priors (doc ~bench:"b" [ ("rpc.p99_us", 115.) ])
        in
        (match rows with
        | [ r ] -> check "within 3 MADs: not regressed" (not r.Diff.regressed)
        | _ -> Alcotest.fail "expected one row");
        let rows =
          Diff.compare_run ~gates ~priors (doc ~bench:"b" [ ("rpc.p99_us", 140.) ])
        in
        match rows with
        | [ r ] -> check "beyond 3 MADs: regressed" r.Diff.regressed
        | _ -> Alcotest.fail "expected one row");
    Alcotest.test_case "the @check-bench gate fixture regresses as pinned" `Quick (fun () ->
        (* Mirrors test/bench/history.jsonl + regressed.json: priors 100 and
           104 give median 102, MAD 2, so the +10% gate threshold is
           102 + max(10.2, 6) = 112.2; the fixture's 200 must trip it and
           benchdiff must exit 1.  Keep in sync with those files. *)
        let priors =
          [ doc ~bench:"rpc" [ ("rpc.p99_us", 100.) ];
            doc ~bench:"rpc" [ ("rpc.p99_us", 104.) ] ]
        in
        let gates = [ Option.get (Diff.parse_gate "p99:+10%") ] in
        let rows =
          Diff.compare_run ~gates ~priors (doc ~bench:"rpc" [ ("rpc.p99_us", 200.) ])
        in
        match rows with
        | [ r ] ->
          check "baseline is the median of the priors" (r.Diff.baseline = 102.);
          check "regressed" r.Diff.regressed;
          Alcotest.(check int) "one regression listed" 1
            (List.length (Diff.regressions rows));
          (* just under the threshold stays clean *)
          let ok =
            Diff.compare_run ~gates ~priors (doc ~bench:"rpc" [ ("rpc.p99_us", 112.) ])
          in
          check "112 < 112.2: clean" (Diff.regressions ok = [])
        | _ -> Alcotest.fail "expected one row");
    Alcotest.test_case "ungated metrics are reported only" `Quick (fun () ->
        let priors = [ doc ~bench:"b" [ ("alloc_words", 10.) ] ] in
        let rows =
          Diff.compare_run ~gates:[] ~priors (doc ~bench:"b" [ ("alloc_words", 10000.) ])
        in
        match rows with
        | [ r ] ->
          check "not gated" (not r.Diff.gated);
          check "not regressed without a gate" (not r.Diff.regressed);
          check "delta still computed" (r.Diff.delta_pct > 0.)
        | _ -> Alcotest.fail "expected one row") ]

let suites =
  [ ("bench.cli", cli_tests);
    ("bench.report", report_tests);
    ("bench.stats", stats_tests);
    ("bench.diff", diff_tests) ]
