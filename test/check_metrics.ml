(* Standalone validator for the opt-in instrumentation artifacts of the
   [check-prof] and [check-cost] aliases:

     check_metrics.exe (--expect-FAM | --forbid-FAM) FILE...

   where FAM is "prof" or "cost".  Every *.om.txt FILE must be a
   grammatically valid OpenMetrics exposition (checked with the same
   Openmetrics.validate the unit tests pin down); every *.json FILE must
   be a metrics-registry snapshot.  In either form, FAM.* series must be
   present under --expect and absent under --forbid — the on-disk proof
   that the instrumentation is opt-in and that a never-enabled process
   registers nothing. *)

module J = Wb_obs.Json
module M = Wb_obs.Metrics

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_metrics: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  body

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* family series in a registry snapshot: any counter, gauge or histogram
   named under "FAM." — prof only registers histograms, cost registers all
   three kinds. *)
let family_in_json ~family path body =
  let v =
    match J.of_string body with
    | Ok v -> v
    | Error msg -> fail "%s: invalid JSON: %s" path msg
  in
  (match J.member "histograms" v with
  | Some (J.Obj _) -> ()
  | Some _ -> fail "%s: histograms is not an object" path
  | None -> fail "%s: not a metrics snapshot (no histograms member)" path);
  let prefix = family ^ "." in
  List.exists
    (fun section ->
      match J.member section v with
      | Some (J.Obj kvs) -> List.exists (fun (k, _) -> starts_with ~prefix k) kvs
      | _ -> false)
    [ "counters"; "gauges"; "histograms" ]

(* family series in an exposition: TYPE lines declaring a FAM_ family. *)
let family_in_om ~family path body =
  (match M.Openmetrics.validate body with
  | Ok () -> ()
  | Error msg -> fail "%s: invalid OpenMetrics exposition: %s" path msg);
  let prefix = "# TYPE " ^ family ^ "_" in
  List.exists (fun line -> starts_with ~prefix line) (String.split_on_char '\n' body)

let () =
  let expect, family, files =
    match List.tl (Array.to_list Sys.argv) with
    | "--expect-prof" :: files when files <> [] -> (true, "prof", files)
    | "--forbid-prof" :: files when files <> [] -> (false, "prof", files)
    | "--expect-cost" :: files when files <> [] -> (true, "cost", files)
    | "--forbid-cost" :: files when files <> [] -> (false, "cost", files)
    | _ ->
      fail "usage: check_metrics (--expect-prof | --forbid-prof | --expect-cost | --forbid-cost) \
            FILE..."
  in
  List.iter
    (fun path ->
      let body = read_file path in
      let has =
        if Filename.check_suffix path ".json" then family_in_json ~family path body
        else family_in_om ~family path body
      in
      (match (expect, has) with
      | true, false -> fail "%s: expected %s.* series, found none" path family
      | false, true -> fail "%s: found %s.* series in a run that never enabled them" path family
      | _ -> ());
      Printf.printf "ok %-32s %s series %s\n" path family
        (if has then "present" else "absent"))
    files
