(* Standalone validator for the profiling artifacts of the [check-prof]
   alias:

     check_metrics.exe (--expect-prof | --forbid-prof) FILE...

   Every *.om.txt FILE must be a grammatically valid OpenMetrics
   exposition (checked with the same Openmetrics.validate the unit tests
   pin down); every *.json FILE must be a metrics-registry snapshot.  In
   either form, prof.* series must be present under --expect-prof and
   absent under --forbid-prof — the on-disk proof that profiling is
   opt-in and that a never-enabled process registers nothing. *)

module J = Wb_obs.Json
module M = Wb_obs.Metrics

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_metrics: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  body

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* prof series in a registry snapshot: histogram names under "prof." *)
let prof_in_json path body =
  let v =
    match J.of_string body with
    | Ok v -> v
    | Error msg -> fail "%s: invalid JSON: %s" path msg
  in
  match J.member "histograms" v with
  | Some (J.Obj kvs) -> List.exists (fun (k, _) -> starts_with ~prefix:"prof." k) kvs
  | Some _ -> fail "%s: histograms is not an object" path
  | None -> fail "%s: not a metrics snapshot (no histograms member)" path

(* prof series in an exposition: TYPE lines declaring a prof_ family. *)
let prof_in_om path body =
  (match M.Openmetrics.validate body with
  | Ok () -> ()
  | Error msg -> fail "%s: invalid OpenMetrics exposition: %s" path msg);
  List.exists
    (fun line -> starts_with ~prefix:"# TYPE prof_" line)
    (String.split_on_char '\n' body)

let () =
  let expect, files =
    match List.tl (Array.to_list Sys.argv) with
    | "--expect-prof" :: files when files <> [] -> (true, files)
    | "--forbid-prof" :: files when files <> [] -> (false, files)
    | _ -> fail "usage: check_metrics (--expect-prof | --forbid-prof) FILE..."
  in
  List.iter
    (fun path ->
      let body = read_file path in
      let has_prof =
        if Filename.check_suffix path ".json" then prof_in_json path body
        else prof_in_om path body
      in
      (match (expect, has_prof) with
      | true, false -> fail "%s: expected prof.* series, found none" path
      | false, true -> fail "%s: found prof.* series in an unprofiled run" path
      | _ -> ());
      Printf.printf "ok %-32s prof series %s\n" path
        (if has_prof then "present" else "absent"))
    files
