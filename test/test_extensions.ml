(* Tests for the extension features: the Section 3 closing-remark class
   (split degeneracy), derived problems (SQUARE, DIAMETER, SPANNING-FOREST),
   sketch-based randomized connectivity, and the preferential-attachment
   workload. *)

open Wb_model
module G = Wb_graph
module Prng = Wb_support.Prng

let qtest = QCheck_alcotest.to_alcotest

let check = Alcotest.(check bool)

let seeded = QCheck.small_int

let split_degeneracy_tests =
  [ Alcotest.test_case "known values" `Quick (fun () ->
        Alcotest.(check int) "K6" 0 (G.Algo.split_degeneracy (G.Gen.complete 6));
        Alcotest.(check int) "empty graph" 0 (G.Algo.split_degeneracy (G.Graph.empty 6));
        Alcotest.(check int) "path" 1 (G.Algo.split_degeneracy (G.Gen.path 8));
        Alcotest.(check int) "C5" 2 (G.Algo.split_degeneracy (G.Gen.cycle 5)));
    qtest
      (QCheck.Test.make ~name:"at most ordinary degeneracy" ~count:150 seeded (fun seed ->
           let g = G.Gen.random_gnp (Prng.create seed) 16 0.4 in
           G.Algo.split_degeneracy g <= fst (G.Algo.degeneracy g)));
    qtest
      (QCheck.Test.make ~name:"complement-invariant-ish: complement of k-degenerate is small"
         ~count:80 seeded (fun seed ->
           (* the complement of a k-degenerate graph is in the class with
              the same k: dense prunes mirror sparse ones *)
           let g = G.Gen.random_kdegenerate (Prng.create seed) 14 ~k:2 in
           G.Algo.split_degeneracy (G.Graph.complement g) <= 2));
    qtest
      (QCheck.Test.make ~name:"generator respects the bound" ~count:100
         QCheck.(pair seeded (int_range 0 3))
         (fun (seed, k) ->
           let g = G.Gen.random_split_degenerate (Prng.create seed) 18 ~k in
           G.Algo.split_degeneracy g <= k)) ]

let build_split_tests =
  let protocol k = Wb_protocols.Build_split_degenerate.protocol ~k in
  let build_ok p g seed =
    let run = Engine.run_packed p g (Adversary.random (Prng.create seed)) in
    run.Engine.outcome = Engine.Success (Answer.Graph g)
  in
  [ qtest
      (QCheck.Test.make ~name:"reconstructs the generated class" ~count:80
         QCheck.(pair seeded (int_range 1 3))
         (fun (seed, k) ->
           let g = G.Gen.random_split_degenerate (Prng.create seed) 20 ~k in
           build_ok (protocol k) g (seed + 1)));
    Alcotest.test_case "complete graphs (beyond plain degeneracy!)" `Quick (fun () ->
        List.iter
          (fun n -> check (Printf.sprintf "K%d" n) true (build_ok (protocol 1) (G.Gen.complete n) n))
          [ 2; 5; 9; 17 ]);
    qtest
      (QCheck.Test.make ~name:"complements of k-degenerate graphs" ~count:50 seeded (fun seed ->
           let g = G.Graph.complement (G.Gen.random_kdegenerate (Prng.create seed) 16 ~k:2) in
           build_ok (protocol 2) g (seed + 1)));
    qtest
      (QCheck.Test.make ~name:"also covers plain k-degenerate inputs" ~count:50 seeded
         (fun seed ->
           let g = G.Gen.random_kdegenerate (Prng.create seed) 16 ~k:2 in
           build_ok (protocol 2) g (seed + 1)));
    Alcotest.test_case "rejects outside the class" `Quick (fun () ->
        (* C8 has split-degeneracy 2 > 1 *)
        let run = Engine.run_packed (protocol 1) (G.Gen.cycle 8) Adversary.min_id in
        check "reject" true (run.Engine.outcome = Engine.Success Answer.Reject));
    Alcotest.test_case "exhaustive schedules on K4" `Quick (fun () ->
        let g = G.Gen.complete 4 in
        let ok, count =
          Engine.explore_packed_exn (protocol 1) g (fun r ->
              r.Engine.outcome = Engine.Success (Answer.Graph g))
        in
        check "all" true ok;
        Alcotest.(check int) "4!" 24 count) ]

let derived_problem_tests =
  [ qtest
      (QCheck.Test.make ~name:"has_square agrees with brute force" ~count:150 seeded (fun seed ->
           let g = G.Gen.random_gnp (Prng.create seed) 9 0.3 in
           let m = G.Graph.adjacency_matrix g in
           let naive = ref false in
           (* ordered 4-tuples forming a cycle a-b-c-d-a *)
           for a = 0 to 8 do
             for b = 0 to 8 do
               for c = 0 to 8 do
                 for d = 0 to 8 do
                   if a <> b && a <> c && a <> d && b <> c && b <> d && c <> d then
                     if m.(a).(b) && m.(b).(c) && m.(c).(d) && m.(d).(a) then naive := true
                 done
               done
             done
           done;
           G.Algo.has_square g = !naive));
    Alcotest.test_case "square family facts" `Quick (fun () ->
        check "C4" true (G.Algo.has_square (G.Gen.cycle 4));
        check "K4" true (G.Algo.has_square (G.Gen.complete 4));
        check "triangle" false (G.Algo.has_square (G.Gen.cycle 3));
        check "tree" false (G.Algo.has_square (G.Gen.random_tree (Prng.create 3) 20));
        check "petersen (girth 5)" false (G.Algo.has_square (G.Gen.petersen ())));
    qtest
      (QCheck.Test.make ~name:"SQUARE via BUILD on Apollonian promise" ~count:30 seeded
         (fun seed ->
           let g = G.Gen.apollonian (Prng.create seed) 18 in
           let p = Wb_protocols.Via_build.protocol ~k:3 Problems.Square in
           let run = Engine.run_packed p g (Adversary.random (Prng.create (seed + 1))) in
           run.Engine.outcome = Engine.Success (Answer.Bool (G.Algo.has_square g))));
    qtest
      (QCheck.Test.make ~name:"DIAMETER<=3 via BUILD on trees" ~count:40 seeded (fun seed ->
           let g = G.Gen.random_tree (Prng.create seed) 14 in
           let p = Wb_protocols.Via_build.protocol ~k:1 (Problems.Diameter_at_most 3) in
           let run = Engine.run_packed p g (Adversary.random (Prng.create (seed + 1))) in
           match (run.Engine.outcome, Problems.reference (Problems.Diameter_at_most 3) g) with
           | Engine.Success a, expected -> Answer.equal a expected
           | _ -> false));
    Alcotest.test_case "diameter problem semantics" `Quick (fun () ->
        check "disconnected is false" true
          (Problems.reference (Problems.Diameter_at_most 10) (G.Graph.empty 3) = Answer.Bool false);
        check "star is <=2" true
          (Problems.reference (Problems.Diameter_at_most 2) (G.Gen.star 9) = Answer.Bool true)) ]

let spanning_forest_tests =
  [ qtest
      (QCheck.Test.make ~name:"SYNC spanning forest valid on gnp" ~count:80
         QCheck.(pair seeded (int_range 1 30))
         (fun (seed, n) ->
           let g = G.Gen.random_gnp (Prng.create seed) n 0.15 in
           let run =
             Engine.run_packed Wb_protocols.Spanning_forest_sync.protocol g
               (Adversary.random (Prng.create (seed + 1)))
           in
           match run.Engine.outcome with
           | Engine.Success a -> Problems.valid_answer Problems.Spanning_forest g a
           | _ -> false));
    Alcotest.test_case "spanning forest checker rejects junk" `Quick (fun () ->
        let g = G.Gen.cycle 4 in
        check "good" true
          (Problems.valid_answer Problems.Spanning_forest g (Answer.Edge_set [ (0, 1); (1, 2); (2, 3) ]));
        check "cycle is not a forest" false
          (Problems.valid_answer Problems.Spanning_forest g
             (Answer.Edge_set [ (0, 1); (1, 2); (2, 3); (0, 3) ]));
        check "non-edge rejected" false
          (Problems.valid_answer Problems.Spanning_forest g (Answer.Edge_set [ (0, 2); (0, 1); (1, 2) ]));
        check "too few edges" false
          (Problems.valid_answer Problems.Spanning_forest g (Answer.Edge_set [ (0, 1) ]))) ]

let sketch_tests =
  [ qtest
      (QCheck.Test.make ~name:"sketch connectivity correct (fixed public coins)" ~count:60
         QCheck.(pair seeded (int_range 2 30))
         (fun (seed, n) ->
           let g = G.Gen.random_gnp (Prng.create seed) n 0.15 in
           let p = Wb_protocols.Sketch_connectivity.connectivity ~seed:271828 in
           let run = Engine.run_packed p g (Adversary.random (Prng.create (seed + 1))) in
           run.Engine.outcome = Engine.Success (Answer.Bool (G.Algo.is_connected g))));
    qtest
      (QCheck.Test.make ~name:"sketch spanning forest valid" ~count:40
         QCheck.(pair seeded (int_range 2 24))
         (fun (seed, n) ->
           let g = G.Gen.random_gnp (Prng.create seed) n 0.2 in
           let p = Wb_protocols.Sketch_connectivity.spanning_forest ~seed:314159 in
           let run = Engine.run_packed p g (Adversary.random (Prng.create (seed + 1))) in
           match run.Engine.outcome with
           | Engine.Success a -> Problems.valid_answer Problems.Spanning_forest g a
           | _ -> false));
    Alcotest.test_case "message size grows polylog, not linearly" `Quick (fun () ->
        let bits n =
          let g = G.Gen.random_connected (Prng.create 4) n 0.1 in
          let p = Wb_protocols.Sketch_connectivity.connectivity ~seed:5 in
          let run = Engine.run_packed p g Adversary.min_id in
          check "success" true (Engine.succeeded run);
          run.Engine.stats.max_message_bits
        in
        let b64 = bits 64 and b256 = bits 256 in
        (* n grew 4x; log^3 n grows (8/6)^3 ~ 2.4x.  (The constant is large:
           at small n the sketch is bigger than a full row — the asymptotic
           o(n) claim is about growth, which is what we check.) *)
        check "sub-linear growth" true (float_of_int b256 /. float_of_int b64 < 3.0));
    Alcotest.test_case "empty and singleton graphs" `Quick (fun () ->
        let p = Wb_protocols.Sketch_connectivity.connectivity ~seed:1 in
        let run1 = Engine.run_packed p (G.Graph.empty 1) Adversary.min_id in
        check "n=1 connected" true (run1.Engine.outcome = Engine.Success (Answer.Bool true));
        let run2 = Engine.run_packed p (G.Graph.empty 2) Adversary.min_id in
        check "n=2 isolated" true (run2.Engine.outcome = Engine.Success (Answer.Bool false))) ]

let workload_tests =
  [ qtest
      (QCheck.Test.make ~name:"preferential attachment: connected, degeneracy <= m" ~count:60
         QCheck.(pair seeded (int_range 1 4))
         (fun (seed, m) ->
           let g = G.Gen.preferential_attachment (Prng.create seed) 40 ~m in
           G.Algo.is_connected g && fst (G.Algo.degeneracy g) <= m));
    Alcotest.test_case "preferential attachment grows hubs" `Quick (fun () ->
        let g = G.Gen.preferential_attachment (Prng.create 11) 300 ~m:2 in
        check "max degree well above m" true (G.Graph.max_degree g > 10)) ]

let suites =
  [ ("ext.split-degeneracy", split_degeneracy_tests);
    ("ext.build-split", build_split_tests);
    ("ext.derived-problems", derived_problem_tests);
    ("ext.spanning-forest", spanning_forest_tests);
    ("ext.sketch", sketch_tests);
    ("ext.workloads", workload_tests) ]
