(* Tier C fixture: a lockset-inconsistent Hashtbl — every access is locked,
   but not by the SAME lock, so two critical sections can interleave on the
   table.  Expected: lockset-inconsistency at the [counts] definition
   (line 10) and an escape finding at the spawn (line 19). *)

let lock_a = Mutex.create ()

let lock_b = Mutex.create ()

let counts : (string, int) Hashtbl.t = Hashtbl.create 8

let put k v =
  Wb_support.Sync.with_lock lock_a (fun () -> Hashtbl.replace counts k v)

let get k =
  Wb_support.Sync.with_lock lock_b (fun () -> Hashtbl.find_opt counts k)

let run () =
  let d = Domain.spawn (fun () -> put "x" 1) in
  let v = get "x" in
  Domain.join d;
  v
