(* Tier C fixture: an unguarded ref escaping Domain.spawn.  test_lint.ml
   and the @check-lint gate assert findings by LINE NUMBER — keep the
   layout stable or repin.

   Expected: unguarded-toplevel at the [hits] definition (line 8) and an
   escape finding at the spawn (line 13). *)

let hits = ref 0

let bump () = hits := !hits + 1

let run () =
  let d = Domain.spawn (fun () -> bump ()) in
  Domain.join d;
  !hits
