(* Tier C fixture, negative case: every idiom the domain-safety rule
   blesses — Domain.DLS for domain-local state, Atomic.t for shared
   counters, and one consistent with_lock lock for a shared table.
   Expected: ZERO findings. *)

let slot : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let total = Atomic.make 0

let guard = Mutex.create ()

let log : (string, int) Hashtbl.t = Hashtbl.create 4

let note k v = Wb_support.Sync.with_lock guard (fun () -> Hashtbl.replace log k v)

let read k = Wb_support.Sync.with_lock guard (fun () -> Hashtbl.find_opt log k)

let run () =
  let d =
    Domain.spawn (fun () ->
        Domain.DLS.set slot 1;
        Atomic.incr total;
        note "worker" (Domain.DLS.get slot))
  in
  let seen = read "worker" in
  Domain.join d;
  (Atomic.get total, seen)
