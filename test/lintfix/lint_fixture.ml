(* Compiled fixture for the linter's typed-tier tests.  test_lint.ml
   locates this module's .cmt file and asserts findings by LINE NUMBER —
   keep the layout stable, or update [poly_eq_line]/[lookup_line]/
   [suppressed_line] in test/test_lint.ml to match. *)

type r = { tag : int; label : string }

let poly_eq (x : r) (y : r) = x = y (* line 8: poly-compare finding *)

let mono_eq (x : r) (y : r) = x.tag = y.tag && String.equal x.label y.label

let suppressed_eq (x : r) (y : r) =
  (x = y) (* line 13: suppressed, must NOT be a finding *)
  [@wb.lint.allow
    "poly-compare: fixture - r is two scalars; structural equality is sound"]

let table : (r, int) Hashtbl.t = Hashtbl.create 3

let lookup k = Hashtbl.find_opt table k (* line 19: poly-compare finding *)

let generic_mem x l = List.mem x l (* clean: genuinely polymorphic *)

let int_mem (x : int) l = List.mem x l (* clean: int elements *)
