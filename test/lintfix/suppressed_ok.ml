(* Tier C fixture: an entry-level [@@wb.lint.allow "domain-safety: ..."]
   exempts the binding from the catalog — no finding at the definition and
   no escape finding naming it — and counts as a USED suppression (no
   lint-allow complaint).  Expected: zero findings from this module. *)

let scratch =
  ref 0
[@@wb.lint.allow
  "domain-safety: fixture - written by exactly one domain by construction; \
   proves entry-level suppression is honoured and marked used"]

let poke () = scratch := !scratch + 1

let run () =
  let d = Domain.spawn (fun () -> poke ()) in
  Domain.join d;
  !scratch
