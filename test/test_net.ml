(* The networked whiteboard service: the wire codec (unit round-trips plus
   qcheck properties — random frames survive, corrupted bytes always yield a
   typed error), board truncation generations as seen by incremental
   readers, the loopback differential against Engine.run for every model,
   the failure semantics (malformed frames, mid-run hangups, read timeouts
   all starve the run into a deadlocked configuration with the fault
   recorded), and real TCP sessions against the referee server. *)

open Wb_model
module G = Wb_graph
module Prng = Wb_support.Prng
module Obs = Wb_obs
module Net = Wb_net
module Wire = Wb_net.Wire
module R = Wb_protocols.Registry

let qtest = QCheck_alcotest.to_alcotest
let check = Alcotest.(check bool)

let bound_of protocol ~n =
  let module P = (val protocol : Protocol.S) in
  P.message_bound ~n

(* --- wire codec: unit round-trips and crafted corruptions -------------- *)

let sample_frames =
  [ Wire.Hello { session = "main"; protocol = "bfs"; node_pref = None };
    Wire.Hello { session = ""; protocol = "x"; node_pref = Some 0 };
    Wire.Hello { session = "s\000binary\255"; protocol = "two-cliques"; node_pref = Some 41 };
    Wire.Hello_ack { session = "main"; node = 3; n = 16; neighbors = [| 0; 7; 15 |]; bound = 37 };
    Wire.Hello_ack { session = "m"; node = 0; n = 1; neighbors = [||]; bound = 0 };
    Wire.Activate_query { round = 1 };
    Wire.Activate_reply { round = 12; activate = true };
    Wire.Activate_reply { round = 1; activate = false };
    Wire.Compose_request { round = 40 };
    Wire.Compose_reply { round = 2; payload = [||] };
    Wire.Compose_reply { round = 7; payload = [| true; false; true; true |] };
    Wire.Write_grant { round = 3; position = 0 };
    Wire.Board_delta { from_pos = 0; generation = 0; messages = [] };
    Wire.Board_delta
      { from_pos = 2;
        generation = 5;
        messages = [ (0, [| true |]); (9, [||]); (3, Array.make 19 false) ] };
    Wire.Run_end { outcome = "success"; detail = "forest[0;1]"; rounds = 9 };
    Wire.Run_end { outcome = "deadlock"; detail = ""; rounds = 40 };
    Wire.Error { code = Wire.Node_taken; detail = "node 3 already claimed" };
    Wire.Error { code = Wire.Server_error; detail = "" };
    Wire.Telemetry_request { tail = 0 };
    Wire.Telemetry_request { tail = 4096 };
    Wire.Telemetry_reply { metrics = "{}"; events = []; dropped = 0 };
    Wire.Telemetry_reply
      { metrics = "{\"counters\":{\"engine.runs\":3}}";
        events = [ "{\"ev\":\"round_start\",\"round\":1}"; "" ];
        dropped = 12 };
    Wire.Metrics_request;
    Wire.Metrics_reply { body = "" };
    Wire.Metrics_reply { body = "# TYPE x counter\nx_total 1\n# EOF\n" } ]

let be32 v = String.init 4 (fun i -> Char.chr ((v lsr (8 * (3 - i))) land 0xff))

let read_be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

(* Reassemble a frame around a hand-tampered body, at the current version
   (bodies produced by [Wire.encode] carry the v2 context prelude) or as a
   version-1 frame (bare payload bits, no prelude). *)
let reframe body = Printf.sprintf "\002%s%s%s" (be32 (String.length body)) (be32 (Wire.crc32 body)) body

let reframe_v1 body = Printf.sprintf "\001%s%s%s" (be32 (String.length body)) (be32 (Wire.crc32 body)) body

let expect_error name s pred =
  match Wire.decode s with
  | Ok f -> Alcotest.failf "%s: decoded %s" name (Wire.opcode_name f)
  | Error e -> check name true (pred e)

let wire_tests =
  [ Alcotest.test_case "every frame shape round-trips" `Quick (fun () ->
        List.iter
          (fun f ->
            match Wire.decode (Wire.encode f) with
            | Ok f' ->
              check (Format.asprintf "%a" Wire.pp f) true (f' = f)
            | Error e -> Alcotest.failf "decode failed: %s" (Wire.error_to_string e))
          sample_frames);
    Alcotest.test_case "header corruptions yield the right typed errors" `Quick (fun () ->
        let s = Wire.encode (Wire.Activate_query { round = 7 }) in
        expect_error "short" (String.sub s 0 5) (function Wire.Short_frame 5 -> true | _ -> false);
        expect_error "empty" "" (function Wire.Short_frame 0 -> true | _ -> false);
        let bad_version = "\009" ^ String.sub s 1 (String.length s - 1) in
        expect_error "version" bad_version (function Wire.Bad_version 9 -> true | _ -> false);
        let oversized = "\001" ^ be32 (Wire.max_frame_bytes + 1) ^ String.sub s 5 4 in
        expect_error "oversized" oversized (function
          | Wire.Oversized n -> n = Wire.max_frame_bytes + 1
          | _ -> false);
        expect_error "truncated body" (String.sub s 0 (String.length s - 1)) (function
          | Wire.Length_mismatch _ -> true
          | _ -> false);
        expect_error "trailing bytes" (s ^ "\000") (function
          | Wire.Length_mismatch _ -> true
          | _ -> false));
    Alcotest.test_case "body corruptions yield the right typed errors" `Quick (fun () ->
        let s = Wire.encode (Wire.Run_end { outcome = "success"; detail = "d"; rounds = 3 }) in
        let body = String.sub s Wire.header_bytes (String.length s - Wire.header_bytes) in
        let flipped = Bytes.of_string body in
        Bytes.set flipped 6 (Char.chr (Char.code (Bytes.get flipped 6) lxor 1));
        expect_error "crc catches a payload flip"
          ("\001" ^ be32 (String.length body) ^ be32 (Wire.crc32 body) ^ Bytes.to_string flipped)
          (function Wire.Crc_mismatch -> true | _ -> false);
        let unknown_op = "\015" ^ be32 0 in
        expect_error "unknown opcode" (reframe unknown_op) (function
          | Wire.Unknown_opcode 15 -> true
          | _ -> false);
        (* the telemetry opcodes are v2-only: a v1 frame carrying one is
           unknown, not misparsed *)
        expect_error "telemetry opcode in a v1 frame" (reframe_v1 ("\011" ^ be32 0)) (function
          | Wire.Unknown_opcode 11 -> true
          | _ -> false);
        let empty_body = "\003" ^ be32 0 in
        (* opcode 3 wants a round number; zero payload bits underflow. *)
        expect_error "payload underflow" (reframe empty_body) (function
          | Wire.Malformed_body _ -> true
          | _ -> false));
    Alcotest.test_case "non-canonical encodings are rejected" `Quick (fun () ->
        (* find a frame whose payload does not end on a byte boundary *)
        let frame =
          List.find
            (fun f ->
              let s = Wire.encode f in
              read_be32 s (Wire.header_bytes + 1) mod 8 <> 0)
            sample_frames
        in
        let s = Wire.encode frame in
        let body = Bytes.of_string (String.sub s Wire.header_bytes (String.length s - Wire.header_bytes)) in
        let nbits = read_be32 (Bytes.to_string body) 1 in
        let last = Bytes.length body - 1 in
        Bytes.set body last (Char.chr (Char.code (Bytes.get body last) lor (1 lsl (nbits mod 8))));
        expect_error "nonzero padding" (reframe (Bytes.to_string body)) (function
          | Wire.Malformed_body _ -> true
          | _ -> false);
        (* declaring 8 extra zero bits leaves trailing payload *)
        let body = String.sub s Wire.header_bytes (String.length s - Wire.header_bytes) in
        let padded =
          Printf.sprintf "%c%s%s\000" body.[0] (be32 (nbits + 8))
            (String.sub body 5 (String.length body - 5))
        in
        expect_error "trailing bits" (reframe padded) (function
          | Wire.Malformed_body _ -> true
          | _ -> false));
    Alcotest.test_case "encode refuses frames above the size bound" `Quick (fun () ->
        check "raises" true
          (match Wire.encode (Wire.Run_end { outcome = "x"; detail = String.make Wire.max_frame_bytes 'a'; rounds = 1 }) with
          | exception Invalid_argument _ -> true
          | _ -> false)) ]

(* --- wire codec: properties -------------------------------------------- *)

let gen_frame =
  let open QCheck.Gen in
  let nat = frequency [ (6, 0 -- 60); (1, return 0); (1, 1000 -- 2_000_000) ] in
  let str = string_size ~gen:(map Char.chr (0 -- 255)) (0 -- 12) in
  let bits = map Array.of_list (list_size (0 -- 48) bool) in
  let code =
    oneofl
      [ Wire.Bad_hello; Wire.Unknown_protocol; Wire.Protocol_mismatch; Wire.Session_busy;
        Wire.Node_taken; Wire.Unexpected_frame; Wire.Malformed; Wire.Timed_out;
        Wire.Server_error ]
  in
  oneof
    [ (str >>= fun session -> str >>= fun protocol -> opt nat >>= fun node_pref ->
       return (Wire.Hello { session; protocol; node_pref }));
      (str >>= fun session -> nat >>= fun node -> nat >>= fun n ->
       list_size (0 -- 8) nat >>= fun neighbors -> nat >>= fun bound ->
       return (Wire.Hello_ack { session; node; n; neighbors = Array.of_list neighbors; bound }));
      (nat >>= fun round -> return (Wire.Activate_query { round }));
      (nat >>= fun round -> bool >>= fun activate -> return (Wire.Activate_reply { round; activate }));
      (nat >>= fun round -> return (Wire.Compose_request { round }));
      (nat >>= fun round -> bits >>= fun payload -> return (Wire.Compose_reply { round; payload }));
      (nat >>= fun round -> nat >>= fun position -> return (Wire.Write_grant { round; position }));
      (nat >>= fun from_pos -> nat >>= fun generation ->
       list_size (0 -- 6) (nat >>= fun a -> bits >>= fun p -> return (a, p)) >>= fun messages ->
       return (Wire.Board_delta { from_pos; generation; messages }));
      (str >>= fun outcome -> str >>= fun detail -> nat >>= fun rounds ->
       return (Wire.Run_end { outcome; detail; rounds }));
      return Wire.Metrics_request;
      (str >>= fun body -> return (Wire.Metrics_reply { body }));
      (code >>= fun code -> str >>= fun detail -> return (Wire.Error { code; detail })) ]

let frame_arb = QCheck.make ~print:(Format.asprintf "%a" Wire.pp) gen_frame

let frame_and_index =
  QCheck.make
    ~print:(fun (f, i) -> Printf.sprintf "%s @ %d" (Format.asprintf "%a" Wire.pp f) i)
    QCheck.Gen.(pair gen_frame (0 -- 100_000))

let flip_bit s i =
  let b = Bytes.of_string s in
  let byte = i / 8 in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (i mod 8))));
  Bytes.to_string b

let typed_error_only s =
  match Wire.decode s with Ok _ -> false | Error _ -> true | exception _ -> false

let wire_prop_tests =
  [ qtest
      (QCheck.Test.make ~name:"random frames round-trip exactly" ~count:300 frame_arb
         (fun f -> Wire.decode (Wire.encode f) = Ok f));
    qtest
      (QCheck.Test.make ~name:"every strict prefix is a typed error, never an exception"
         ~count:200 frame_and_index (fun (f, i) ->
           let s = Wire.encode f in
           typed_error_only (String.sub s 0 (i mod String.length s))));
    qtest
      (QCheck.Test.make ~name:"any single flipped bit is a typed error, never an exception"
         ~count:400 frame_and_index (fun (f, i) ->
           let s = Wire.encode f in
           typed_error_only (flip_bit s (i mod (String.length s * 8)))));
    qtest
      (QCheck.Test.make ~name:"arbitrary bytes never raise" ~count:300
         QCheck.(string_gen QCheck.Gen.(map Char.chr (0 -- 255)))
         (fun junk ->
           (* with and without a plausible version byte in front *)
           (match Wire.decode junk with Ok _ | Error _ -> true | exception _ -> false)
           && match Wire.decode ("\001" ^ junk) with Ok _ | Error _ -> true | exception _ -> false));
    (* Multi-byte corruption, the shape wb_chaos injects: XOR a random set
       of bytes anywhere past the version byte (length, CRC, body).  Every
       byte there is integrity-protected — length against the actual frame
       size, body against the CRC — so any such flip set must surface as a
       typed error.  (The version byte itself is deliberately excluded: it
       sits outside the checksum and a 2->1 flip is a downgrade, not
       detectable corruption.) *)
    qtest
      (QCheck.Test.make ~name:"arbitrary multi-byte flips are typed errors, never exceptions"
         ~count:400
         (QCheck.make
            ~print:(fun (f, flips) ->
              Printf.sprintf "%s flips=[%s]" (Format.asprintf "%a" Wire.pp f)
                (String.concat ";"
                   (List.map (fun (i, m) -> Printf.sprintf "%d^%d" i m) flips)))
            QCheck.Gen.(
              pair gen_frame (list_size (1 -- 6) (pair (0 -- 100_000) (1 -- 255)))))
         (fun (f, flips) ->
           let s = Wire.encode f in
           let b = Bytes.of_string s in
           List.iter
             (fun (i, mask) ->
               let i = 1 + (i mod (Bytes.length b - 1)) in
               Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask)))
             flips;
           let s' = Bytes.to_string b in
           String.equal s' s || typed_error_only s')) ]

(* --- wire codec: pinned corruption regressions --------------------------- *)

(* Concrete mutations with their exact typed verdicts, pinned so decoder
   refactors keep each corruption class on its dedicated error path (the
   properties above only demand "some typed error"). *)
let wire_pinned_tests =
  let mutate s i c =
    let b = Bytes.of_string s in
    Bytes.set b i c;
    Bytes.to_string b
  in
  let expect name s pred =
    match Wire.decode s with
    | Error e when pred e -> ()
    | Error e -> Alcotest.failf "%s: wrong error %s" name (Wire.error_to_string e)
    | Ok f -> Alcotest.failf "%s: decoded Ok %s" name (Format.asprintf "%a" Wire.pp f)
  in
  [ Alcotest.test_case "pinned corruptions land on their exact error constructors" `Quick
      (fun () ->
        let frames =
          [ Wire.Activate_query { round = 3 };
            Wire.Compose_reply { round = 2; payload = [| true; false; true |] };
            Wire.Run_end { outcome = "success"; detail = "answer"; rounds = 9 } ]
        in
        List.iter
          (fun f ->
            let s = Wire.encode f in
            let len = String.length s in
            expect "version byte zeroed" (mutate s 0 '\000') (function
              | Wire.Bad_version 0 -> true
              | _ -> false);
            expect "version byte from the future"
              (mutate s 0 '\255')
              (function Wire.Bad_version 255 -> true | _ -> false);
            expect "declared length inflated" (mutate s 1 '\255') (function
              | Wire.Oversized _ | Wire.Length_mismatch _ -> true
              | _ -> false);
            expect "declared length off by one"
              (mutate s 4 (Char.chr (Char.code s.[4] lxor 1)))
              (function Wire.Length_mismatch _ -> true | _ -> false);
            expect "one CRC byte flipped"
              (mutate s 5 (Char.chr (Char.code s.[5] lxor 0x40)))
              (function Wire.Crc_mismatch -> true | _ -> false);
            expect "last body byte flipped"
              (mutate s (len - 1) (Char.chr (Char.code s.[len - 1] lxor 0x10)))
              (function Wire.Crc_mismatch -> true | _ -> false);
            expect "truncated to bare header"
              (String.sub s 0 Wire.header_bytes)
              (function Wire.Length_mismatch _ -> true | _ -> false);
            expect "truncated below the header"
              (String.sub s 0 (Wire.header_bytes - 1))
              (function Wire.Short_frame _ -> true | _ -> false))
          frames) ]

(* --- wire codec: the version-2 trace-context prelude -------------------- *)

let gen_ctx =
  QCheck.Gen.(
    map2
      (fun trace span -> { Obs.Span.trace = 1 + trace; span = 1 + span })
      (0 -- 0xFF_FFFF) (0 -- 0xFF_FFFF))

let frame_and_ctx =
  QCheck.make
    ~print:(fun (f, ctx) ->
      Printf.sprintf "%s ctx{trace=%d; span=%d}" (Format.asprintf "%a" Wire.pp f)
        ctx.Obs.Span.trace ctx.Obs.Span.span)
    QCheck.Gen.(pair gen_frame gen_ctx)

let ctx_tests =
  [ qtest
      (QCheck.Test.make ~name:"a trace context rides any frame and round-trips exactly"
         ~count:300 frame_and_ctx (fun (f, ctx) ->
           Wire.decode_ctx (Wire.encode ~ctx f) = Ok (f, Some ctx)));
    qtest
      (QCheck.Test.make ~name:"frames encoded without a context decode to none" ~count:200
         frame_arb (fun f -> Wire.decode_ctx (Wire.encode f) = Ok (f, None)));
    qtest
      (QCheck.Test.make ~name:"version-1 encodings still decode, and never carry a context"
         ~count:200 frame_arb (fun f ->
           match f with
           | Wire.Telemetry_request _ | Wire.Telemetry_reply _ | Wire.Metrics_request
           | Wire.Metrics_reply _ ->
             (* v2-only opcodes have no v1 encoding at all *)
             (match Wire.encode_v1 f with exception Invalid_argument _ -> true | _ -> false)
           | _ -> Wire.decode_ctx (Wire.encode_v1 f) = Ok (f, None)));
    qtest
      (QCheck.Test.make
         ~name:"every strict prefix of a context-carrying frame is a typed error" ~count:200
         (QCheck.make
            ~print:(fun ((f, ctx), i) ->
              Printf.sprintf "%s ctx{%d;%d} @ %d" (Format.asprintf "%a" Wire.pp f)
                ctx.Obs.Span.trace ctx.Obs.Span.span i)
            QCheck.Gen.(pair (pair gen_frame gen_ctx) (0 -- 100_000)))
         (fun ((f, ctx), i) ->
           let s = Wire.encode ~ctx f in
           match Wire.decode_ctx (String.sub s 0 (i mod String.length s)) with
           | Ok _ -> false
           | Error _ -> true
           | exception _ -> false));
    Alcotest.test_case "telemetry frames are version-2-only" `Quick (fun () ->
        List.iter
          (fun f ->
            check (Wire.opcode_name f ^ " round-trips") true (Wire.decode (Wire.encode f) = Ok f);
            check (Wire.opcode_name f ^ " has no v1 encoding") true
              (match Wire.encode_v1 f with exception Invalid_argument _ -> true | _ -> false))
          [ Wire.Telemetry_request { tail = 128 };
            Wire.Telemetry_reply
              { metrics = "{\"counters\":{}}"; events = [ "{\"ev\":\"x\"}" ]; dropped = 7 };
            Wire.Metrics_request;
            Wire.Metrics_reply { body = "# EOF\n" } ]);
    Alcotest.test_case "a zero context id is refused at encode time" `Quick (fun () ->
        List.iter
          (fun ctx ->
            check "raises" true
              (match Wire.encode ~ctx (Wire.Activate_query { round = 1 }) with
              | exception Invalid_argument _ -> true
              | _ -> false))
          [ { Obs.Span.trace = 0; span = 3 }; { Obs.Span.trace = 3; span = 0 } ]) ]

(* --- board generations under truncation (incremental readers) ---------- *)

let message v bits = Message.make ~author:v ~payload:(Array.of_list bits)

let board_tests =
  [ Alcotest.test_case "truncate rewinds length and bumps the generation" `Quick (fun () ->
        let b = Board.create 4 in
        let g0 = Board.generation b in
        Board.append b (message 0 [ true ]);
        Board.append b (message 1 [ false; true ]);
        Board.append b (message 2 []);
        check "appends keep the generation" true (Board.generation b = g0);
        Board.truncate b 1;
        Alcotest.(check int) "length rewound" 1 (Board.length b);
        check "generation bumped" true (Board.generation b > g0);
        let g1 = Board.generation b in
        Board.append b (message 3 [ true; true ]);
        check "append after truncate keeps generation" true (Board.generation b = g1);
        check "author slot freed by truncate is reusable" true
          (match Board.append b (message 1 [ true ]) with () -> true));
    Alcotest.test_case "an incremental reader detects rewrites via the generation" `Quick
      (fun () ->
        let b = Board.create 4 in
        (* the reader's replica: (position, generation) plus copied messages *)
        let replica = ref [] and pos = ref 0 and gen = ref (Board.generation b) in
        let catch_up () =
          if Board.generation b <> !gen then begin
            (* stale replica: positions below [pos] may have been rewritten *)
            replica := [];
            pos := 0;
            gen := Board.generation b
          end;
          while !pos < Board.length b do
            replica := Board.get b !pos :: !replica;
            incr pos
          done
        in
        Board.append b (message 0 [ true ]);
        Board.append b (message 1 [] );
        catch_up ();
        Alcotest.(check int) "read both" 2 (List.length !replica);
        Board.truncate b 1;
        Board.append b (message 2 [ false ]);
        Board.append b (message 1 [ true; true ]);
        catch_up ();
        let names = List.rev_map (fun m -> Message.author m) !replica in
        check "replica equals the rewritten board" true (names = [ 0; 2; 1 ]);
        check "replica payloads match" true
          (List.for_all2
             (fun m i -> Message.equal m (Board.get b i))
             (List.rev !replica) [ 0; 1; 2 ]));
    Alcotest.test_case "Board.equal compares authors and payloads in write order" `Quick
      (fun () ->
        let fill msgs =
          let b = Board.create 3 in
          List.iter (Board.append b) msgs;
          b
        in
        let a = fill [ message 0 [ true ]; message 2 [] ] in
        check "equal" true (Board.equal a (fill [ message 0 [ true ]; message 2 [] ]));
        check "payload differs" false (Board.equal a (fill [ message 0 [ false ]; message 2 [] ]));
        check "order differs" false (Board.equal a (fill [ message 2 []; message 0 [ true ] ]));
        check "length differs" false (Board.equal a (fill [ message 0 [ true ] ])));
    Alcotest.test_case "a client rejects an incremental delta across a generation change"
      `Quick (fun () ->
        let entry = Option.get (R.find "bfs") in
        let client = Net.Client.create ~protocol:entry.R.protocol ~key:"bfs" ~session:"s" () in
        let ack =
          Wire.Hello_ack { session = "s"; node = 0; n = 3; neighbors = [| 1 |]; bound = 64 }
        in
        check "joined quietly" true (Net.Client.handle client ~ctx:None ack = []);
        check "first delta ok" true
          (Net.Client.handle client ~ctx:None
             (Wire.Board_delta { from_pos = 0; generation = 0; messages = [ (1, [| true |]) ] })
          = []);
        check "same-generation increment ok" true
          (Net.Client.handle client ~ctx:None
             (Wire.Board_delta { from_pos = 1; generation = 0; messages = [ (2, [||]) ] })
          = []);
        let replies =
          Net.Client.handle client ~ctx:None
            (Wire.Board_delta { from_pos = 2; generation = 1; messages = [ (0, [||]) ] })
        in
        check "incremental delta across generations refused" true
          (match (Net.Client.phase client, replies) with
          | Net.Client.Failed _, [ Wire.Error _ ] -> true
          | _ -> false)) ]

(* --- the loopback differential: remote == Engine.run, all four models -- *)

let differential ?(adv = fun () -> Adversary.min_id) key g =
  match R.find key with
  | None -> Alcotest.failf "unknown protocol %S" key
  | Some entry ->
    check (key ^ ": graph satisfies the promise") true
      (R.satisfies_promise entry.R.promise g);
    let local = Engine.run_packed entry.R.protocol g (adv ()) in
    let remote = Net.Remote.run_loopback ~protocol:entry.R.protocol g (adv ()) in
    check (key ^ ": fault-free") true (remote.Net.Session.faults = []);
    (match Net.Remote.diff_runs remote.Net.Session.run local with
    | [] -> ()
    | issues -> Alcotest.failf "%s: %s" key (String.concat "; " issues))

let loopback_tests =
  [ Alcotest.test_case "SIMASYNC: build-naive and subgraph-sqrt" `Quick (fun () ->
        differential "build-naive" (G.Gen.random_gnp (Prng.create 3) 12 0.3);
        differential "subgraph-sqrt" (G.Gen.random_gnp (Prng.create 8) 12 0.25));
    Alcotest.test_case "SIMASYNC: build-forest on a random tree" `Quick (fun () ->
        differential "build-forest" (G.Gen.random_tree (Prng.create 11) 14));
    Alcotest.test_case "SIMSYNC: mis and two-cliques" `Quick (fun () ->
        differential "mis" (G.Gen.random_gnp (Prng.create 5) 13 0.25);
        differential "two-cliques" (G.Gen.two_cliques_shuffled (Prng.create 6) 7));
    Alcotest.test_case "ASYNC: eob-bfs and bfs-bipartite" `Quick (fun () ->
        differential "eob-bfs" (G.Gen.random_eob (Prng.create 4) 12 0.3);
        differential "bfs-bipartite" (G.Gen.random_bipartite (Prng.create 9) 6 6 0.4));
    Alcotest.test_case "SYNC: bfs, connectivity and spanning-forest" `Quick (fun () ->
        differential "bfs" (G.Gen.random_connected (Prng.create 7) 14 0.2);
        differential "connectivity" (G.Gen.random_gnp (Prng.create 10) 14 0.15);
        differential "spanning-forest" (G.Gen.random_gnp (Prng.create 12) 14 0.2));
    Alcotest.test_case "differential holds under a randomized adversary" `Quick (fun () ->
        differential "bfs" ~adv:(fun () -> Adversary.random (Prng.create 21))
          (G.Gen.random_connected (Prng.create 20) 12 0.25);
        differential "build-naive" ~adv:(fun () -> Adversary.random (Prng.create 23))
          (G.Gen.random_gnp (Prng.create 22) 12 0.3));
    qtest
      (QCheck.Test.make ~name:"loopback differential on random graphs across all four models"
         ~count:10
         (QCheck.make
            ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
            QCheck.Gen.(pair (4 -- 9) (0 -- 9999)))
         (fun (n, seed) ->
           let g = G.Gen.random_gnp (Prng.create seed) n 0.4 in
           (* one Any_graph protocol per model: SIMASYNC, SIMSYNC, ASYNC, SYNC *)
           List.iter (fun key -> differential key g) [ "build-naive"; "mis"; "eob-bfs"; "bfs" ];
           true));
    Alcotest.test_case "loopback runs move the net.* metrics" `Quick (fun () ->
        let sessions = Obs.Metrics.counter "net.sessions" in
        let frames = Obs.Metrics.counter "net.frames_sent" in
        let before_s = Obs.Metrics.counter_value sessions in
        let before_f = Obs.Metrics.counter_value frames in
        let entry = Option.get (R.find "bfs") in
        let g = G.Gen.random_connected (Prng.create 2) 8 0.3 in
        let r = Net.Remote.run_loopback ~protocol:entry.R.protocol g Adversary.min_id in
        check "succeeded" true (Engine.succeeded r.Net.Session.run);
        Alcotest.(check int) "one more session" (before_s + 1)
          (Obs.Metrics.counter_value sessions);
        check "frames were counted" true (Obs.Metrics.counter_value frames > before_f)) ]

(* --- failure semantics: dead nodes starve the run into a deadlock ------ *)

(* Loopback connections like Remote.run_loopback's, but [tamper v] may wrap
   node [v]'s frame handler for fault injection. *)
let tampered_conns ?(tamper = fun _ handler -> handler) ~protocol g =
  let n = G.Graph.n g in
  Array.init n (fun v ->
      let client = Net.Client.create ~protocol ~key:"k" ~session:"s" ~node_pref:v () in
      let handler = tamper v (Net.Client.handle client ~ctx:None) in
      let conn =
        Net.Conn.loopback_served ~peer:(Printf.sprintf "node-%d" v)
          ~handler:(fun ~ctx:_ frame -> handler frame)
      in
      (match
         Net.Conn.send conn
           (Wire.Hello_ack
              { session = "s"; node = v; n; neighbors = G.Graph.neighbors g v; bound = bound_of protocol ~n })
       with
      | Ok () -> ()
      | Error f -> Alcotest.failf "handshake: %s" (Net.Conn.fault_to_string f));
      (client, conn))

let run_session ~protocol g conns =
  Net.Session.run
    { Net.Session.protocol;
      graph = g;
      adversary = Adversary.min_id;
      max_rounds = None;
      trace = None;
      parent = None }
    (Array.map snd conns)

let fault_tests =
  [ Alcotest.test_case "a node hanging up mid-run yields a deadlocked configuration" `Quick
      (fun () ->
        let entry = Option.get (R.find "bfs") in
        let g = G.Gen.random_connected (Prng.create 13) 8 0.3 in
        let tamper v handler =
          if v <> 0 then handler
          else begin
            (* survive the handshake and one query, then vanish *)
            let calls = ref 0 in
            fun frame ->
              incr calls;
              if !calls > 2 then raise Net.Conn.Hangup else handler frame
          end
        in
        let conns = tampered_conns ~tamper ~protocol:entry.R.protocol g in
        let r = run_session ~protocol:entry.R.protocol g conns in
        check "deadlock" true (r.Net.Session.run.Engine.outcome = Engine.Deadlock);
        check "the hangup is recorded against node 0" true
          (match r.Net.Session.faults with
          | [ (0, Net.Session.Transport Net.Conn.Closed) ] -> true
          | _ -> false);
        check "node 0 never wrote" true (not (Board.has_author r.Net.Session.run.Engine.board 0));
        (* the survivors were told about the deadlock *)
        Array.iteri
          (fun v (client, _) ->
            if v <> 0 then
              check (Printf.sprintf "node %d saw RUN-END" v) true
                (match Net.Client.phase client with
                | Net.Client.Finished { outcome = "deadlock"; _ } -> true
                | _ -> false))
          conns);
    Alcotest.test_case "malformed frames from a node are a typed fault, not an exception"
      `Quick (fun () ->
        let entry = Option.get (R.find "bfs") in
        let g = G.Gen.path 4 in
        let malformed = Obs.Metrics.counter "net.malformed_frames" in
        let before = Obs.Metrics.counter_value malformed in
        let conns = tampered_conns ~protocol:entry.R.protocol g in
        let bad =
          Net.Conn.make ~peer:"node-2-evil"
            ~send:(fun _ -> Ok ())
            ~recv:(fun () -> Error (Net.Conn.Bad_frame Wire.Crc_mismatch))
            ~close:(fun () -> ())
        in
        let conns = Array.mapi (fun v (c, conn) -> (c, if v = 2 then bad else conn)) conns in
        let r = run_session ~protocol:entry.R.protocol g conns in
        check "deadlock" true (r.Net.Session.run.Engine.outcome = Engine.Deadlock);
        check "CRC fault recorded against node 2" true
          (match r.Net.Session.faults with
          | [ (2, Net.Session.Transport (Net.Conn.Bad_frame Wire.Crc_mismatch)) ] -> true
          | _ -> false);
        check "malformed-frame metric moved" true
          (Obs.Metrics.counter_value malformed > before));
    Alcotest.test_case "a confused peer (wrong reply opcode) is marked dead" `Quick (fun () ->
        let entry = Option.get (R.find "bfs") in
        let g = G.Gen.path 3 in
        let tamper v handler =
          if v <> 1 then handler
          else
            fun frame ->
              List.map
                (function
                  | Wire.Activate_reply { round; _ } -> Wire.Write_grant { round; position = 0 }
                  | f -> f)
                (handler frame)
        in
        let conns = tampered_conns ~tamper ~protocol:entry.R.protocol g in
        let r = run_session ~protocol:entry.R.protocol g conns in
        check "deadlock" true (r.Net.Session.run.Engine.outcome = Engine.Deadlock);
        check "confusion recorded against node 1" true
          (match r.Net.Session.faults with
          | [ (1, Net.Session.Confused _) ] -> true
          | _ -> false)) ]

(* --- real sockets ------------------------------------------------------ *)

let connect_local port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let write_raw fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let spec_of entry g ~timeout =
  { Net.Server.key = "bfs";
    protocol = entry.R.protocol;
    graph = g;
    make_adversary = (fun () -> Adversary.min_id);
    max_rounds = None;
    timeout;
    trace = None }

(* Join all n nodes of [session] from client threads; returns per-node
   outcomes. *)
let join_all ~port ~protocol ~session n =
  let outcomes = Array.make n (Error "never ran") in
  let threads =
    List.init n (fun v ->
        Thread.create
          (fun () ->
            let fd = connect_local port in
            let conn = Net.Conn.of_fd ~timeout:10.0 ~peer:(Printf.sprintf "c%d" v) fd in
            let client = Net.Client.create ~protocol ~key:"bfs" ~session ~node_pref:v () in
            outcomes.(v) <- Net.Client.run client conn)
          ())
  in
  List.iter Thread.join threads;
  outcomes

let socket_tests =
  [ Alcotest.test_case "socket session at n=16 matches Engine.run exactly" `Quick (fun () ->
        let entry = Option.get (R.find "bfs") in
        let g = G.Gen.grid 4 4 in
        let local = Engine.run_packed entry.R.protocol g Adversary.min_id in
        match
          Net.Remote.run_socket ~key:"bfs" ~protocol:entry.R.protocol ~graph:g
            ~make_adversary:(fun () -> Adversary.min_id) ()
        with
        | Error msg -> Alcotest.failf "socket run failed: %s" msg
        | Ok r ->
          check "fault-free" true (r.Net.Session.faults = []);
          (match Net.Remote.diff_runs r.Net.Session.run local with
          | [] -> ()
          | issues -> Alcotest.failf "socket differential: %s" (String.concat "; " issues)));
    Alcotest.test_case "handshake rejections are typed and leave the server clean" `Quick
      (fun () ->
        let entry = Option.get (R.find "bfs") in
        let g = G.Gen.grid 3 3 in
        let server = Net.Server.create ~port:0 (spec_of entry g ~timeout:2.0) in
        let st = Net.Server.serve_in_thread ~max_sessions:1 server in
        let port = Net.Server.port server in
        let expect_reject name bytes pred =
          let fd = connect_local port in
          write_raw fd bytes;
          let conn = Net.Conn.of_fd ~timeout:2.0 ~peer:name fd in
          (match Net.Conn.recv conn with
          | Ok (Wire.Error { code; detail }) ->
            check name true (pred code detail)
          | Ok f -> Alcotest.failf "%s: server answered %s" name (Wire.opcode_name f)
          | Error f -> Alcotest.failf "%s: %s" name (Net.Conn.fault_to_string f));
          Net.Conn.close conn
        in
        expect_reject "garbage bytes" "this is not a frame at all."
          (fun code _ -> code = Wire.Malformed);
        expect_reject "oversized declared length"
          ("\001" ^ be32 (4 * Wire.max_frame_bytes) ^ be32 0)
          (fun code detail ->
            code = Wire.Malformed
            && (match String.index_opt detail 'o' with Some _ -> true | None -> false));
        expect_reject "non-HELLO first frame"
          (Wire.encode (Wire.Activate_reply { round = 1; activate = true }))
          (fun code _ -> code = Wire.Bad_hello);
        expect_reject "wrong protocol key"
          (Wire.encode (Wire.Hello { session = "main"; protocol = "mis"; node_pref = None }))
          (fun code _ -> code = Wire.Protocol_mismatch);
        (* claim node 0 of a probe session, then try to claim it again *)
        let fd0 = connect_local port in
        let probe = Net.Conn.of_fd ~timeout:2.0 ~peer:"probe" fd0 in
        (match Net.Conn.send probe (Wire.Hello { session = "probe"; protocol = "bfs"; node_pref = Some 0 }) with
        | Ok () -> ()
        | Error f -> Alcotest.failf "probe hello: %s" (Net.Conn.fault_to_string f));
        (match Net.Conn.recv probe with
        | Ok (Wire.Hello_ack { node = 0; n = 9; _ }) -> ()
        | Ok f -> Alcotest.failf "probe expected HELLO-ACK, got %s" (Wire.opcode_name f)
        | Error f -> Alcotest.failf "probe: %s" (Net.Conn.fault_to_string f));
        expect_reject "node already claimed"
          (Wire.encode (Wire.Hello { session = "probe"; protocol = "bfs"; node_pref = Some 0 }))
          (fun code _ -> code = Wire.Node_taken);
        (* after all that abuse, a full session still runs to completion *)
        let outcomes = join_all ~port ~protocol:entry.R.protocol ~session:"main" 9 in
        Array.iteri
          (fun v o ->
            match o with
            | Ok fin -> check (Printf.sprintf "node %d succeeded" v) true (fin.Net.Client.outcome = "success")
            | Error msg -> Alcotest.failf "node %d: %s" v msg)
          outcomes;
        (match Net.Server.take_result server "main" with
        | Some r ->
          check "clean session" true (r.Net.Session.faults = []);
          let local = Engine.run_packed entry.R.protocol g Adversary.min_id in
          (match Net.Remote.diff_runs r.Net.Session.run local with
          | [] -> ()
          | issues -> Alcotest.failf "differential: %s" (String.concat "; " issues))
        | None -> Alcotest.fail "server stopped without the session result");
        Net.Conn.close probe;
        Net.Server.stop server;
        Thread.join st);
    Alcotest.test_case "a silent node trips the read timeout and deadlocks the run" `Quick
      (fun () ->
        let entry = Option.get (R.find "bfs") in
        let g = G.Gen.path 3 in
        let server = Net.Server.create ~port:0 (spec_of entry g ~timeout:0.4) in
        let st = Net.Server.serve_in_thread ~max_sessions:1 server in
        let port = Net.Server.port server in
        (* node 2 joins, then never answers another frame *)
        let fd = connect_local port in
        let mute = Net.Conn.of_fd ~timeout:5.0 ~peer:"mute" fd in
        (match Net.Conn.send mute (Wire.Hello { session = "main"; protocol = "bfs"; node_pref = Some 2 }) with
        | Ok () -> ()
        | Error f -> Alcotest.failf "mute hello: %s" (Net.Conn.fault_to_string f));
        (match Net.Conn.recv mute with
        | Ok (Wire.Hello_ack { node = 2; _ }) -> ()
        | Ok f -> Alcotest.failf "mute expected HELLO-ACK, got %s" (Wire.opcode_name f)
        | Error f -> Alcotest.failf "mute: %s" (Net.Conn.fault_to_string f));
        let outcomes = join_all ~port ~protocol:entry.R.protocol ~session:"main" 2 in
        (match Net.Server.take_result server "main" with
        | Some r ->
          check "deadlock" true (r.Net.Session.run.Engine.outcome = Engine.Deadlock);
          check "timeout recorded against node 2" true
            (match r.Net.Session.faults with
            | [ (2, Net.Session.Transport Net.Conn.Timeout) ] -> true
            | _ -> false)
        | None -> Alcotest.fail "server stopped without the session result");
        (* the live nodes were told the run deadlocked *)
        Array.iteri
          (fun v o ->
            match o with
            | Ok fin ->
              check (Printf.sprintf "node %d saw the deadlock" v) true
                (fin.Net.Client.outcome = "deadlock")
            | Error msg -> Alcotest.failf "node %d: %s" v msg)
          outcomes;
        Net.Conn.close mute;
        Net.Server.stop server;
        Thread.join st);
    Alcotest.test_case "one server referees two named sessions" `Quick (fun () ->
        let entry = Option.get (R.find "bfs") in
        let g = G.Gen.grid 3 3 in
        let server = Net.Server.create ~port:0 (spec_of entry g ~timeout:2.0) in
        let st = Net.Server.serve_in_thread ~max_sessions:2 server in
        let port = Net.Server.port server in
        let local = Engine.run_packed entry.R.protocol g Adversary.min_id in
        List.iter
          (fun session ->
            ignore (join_all ~port ~protocol:entry.R.protocol ~session 9);
            match Net.Server.take_result server session with
            | Some r ->
              check (session ^ " fault-free") true (r.Net.Session.faults = []);
              (match Net.Remote.diff_runs r.Net.Session.run local with
              | [] -> ()
              | issues -> Alcotest.failf "%s: %s" session (String.concat "; " issues))
            | None -> Alcotest.failf "no result for session %s" session)
          [ "alpha"; "beta" ];
        Thread.join st) ]

(* --- telemetry: span propagation and the TELEMETRY RPC ------------------ *)

let span_starts evs =
  List.filter_map
    (function
      | Obs.Event.Span_start { trace; span; parent; name; _ } -> Some (trace, span, parent, name)
      | _ -> None)
    evs

let telemetry_tests =
  [ Alcotest.test_case "spans propagate driver -> referee -> clients over the loopback" `Quick
      (fun () ->
        let entry = Option.get (R.find "bfs") in
        let g = G.Gen.grid 3 3 in
        let n = G.Graph.n g in
        let driver_sink, driver_events = Obs.Trace.collector () in
        let minter = Obs.Span.minter ~seed:77 () in
        let root = Obs.Span.start minter driver_sink "driver" in
        let session_sink, session_events = Obs.Trace.collector () in
        let clients = Array.init n (fun _ -> Obs.Trace.collector ()) in
        let r =
          Net.Remote.run_loopback ~trace:session_sink ~parent:(Obs.Span.context root)
            ~client_trace:(fun v -> Some (fst clients.(v)))
            ~protocol:entry.R.protocol g Adversary.min_id
        in
        Obs.Span.finish driver_sink root;
        check "succeeded" true (Engine.succeeded r.Net.Session.run);
        let root_ctx = Obs.Span.context root in
        let referee = span_starts (session_events ()) in
        let client_spans =
          List.concat (List.init n (fun v -> span_starts ((snd clients.(v)) ())))
        in
        let all = span_starts (driver_events ()) @ referee @ client_spans in
        check "spans were emitted on every side" true
          ((not (List.is_empty referee)) && not (List.is_empty client_spans));
        check "one trace id everywhere" true
          (List.for_all (fun (trace, _, _, _) -> trace = root_ctx.Obs.Span.trace) all);
        check "all span ids are distinct" true
          (let ids = List.map (fun (_, span, _, _) -> span) all in
           List.length (List.sort_uniq compare ids) = List.length ids);
        check "the session span is a child of the driver root" true
          (List.exists
             (fun (_, _, parent, name) ->
               name = "session" && parent = Some root_ctx.Obs.Span.span)
             referee);
        let rpc_ids =
          List.filter_map
            (fun (_, span, _, name) ->
              if name = "net.rpc.activate" || name = "net.rpc.compose" then Some span else None)
            referee
        in
        check "every client handler span hangs off a referee RPC span" true
          (List.for_all
             (fun (_, _, parent, _) ->
               match parent with Some p -> List.mem p rpc_ids | None -> false)
             client_spans);
        (* each side's stream closes every span it opened *)
        List.iter
          (fun (label, evs) ->
            let opened = List.map (fun (_, span, _, _) -> span) (span_starts evs) in
            let closed =
              List.filter_map
                (function Obs.Event.Span_stop { span; _ } -> Some span | _ -> None)
                evs
            in
            check (label ^ " closes what it opens") true
              (List.sort compare opened = List.sort compare closed))
          (("referee", session_events ())
          :: List.init n (fun v -> (Printf.sprintf "client %d" v, (snd clients.(v)) ()))));
    Alcotest.test_case "TELEMETRY serves metrics and the flight-recorder tail" `Quick
      (fun () ->
        let entry = Option.get (R.find "bfs") in
        let g = G.Gen.grid 3 3 in
        let server = Net.Server.create ~port:0 (spec_of entry g ~timeout:2.0) in
        let st = Net.Server.serve_in_thread server in
        let port = Net.Server.port server in
        let probe tail =
          let conn = Net.Conn.of_fd ~timeout:2.0 ~peer:"telemetry" (connect_local port) in
          (match Net.Conn.send conn (Wire.Telemetry_request { tail }) with
          | Ok () -> ()
          | Error f -> Alcotest.failf "telemetry send: %s" (Net.Conn.fault_to_string f));
          let r = Net.Conn.recv conn in
          Net.Conn.close conn;
          match r with
          | Ok (Wire.Telemetry_reply { metrics; events; dropped }) -> (metrics, events, dropped)
          | Ok f -> Alcotest.failf "telemetry reply: got %s" (Wire.opcode_name f)
          | Error f -> Alcotest.failf "telemetry recv: %s" (Net.Conn.fault_to_string f)
        in
        (* before any session: the metrics parse, and tail 0 sends no events *)
        let metrics, events, _ = probe 0 in
        check "metrics parse as JSON" true
          (match Obs.Json.of_string metrics with Ok _ -> true | Error _ -> false);
        check "tail 0 sends no events" true (List.is_empty events);
        (* a full session populates the ring; the tail is well-formed events *)
        let outcomes = join_all ~port ~protocol:entry.R.protocol ~session:"t" 9 in
        Array.iteri
          (fun v o ->
            match o with Ok _ -> () | Error msg -> Alcotest.failf "node %d: %s" v msg)
          outcomes;
        ignore (Net.Server.take_result server "t");
        let metrics, events, dropped = probe 10_000 in
        check "the ring served events" true (not (List.is_empty events));
        check "dropped count is sane" true (dropped >= 0);
        List.iter
          (fun line ->
            match Obs.Event.of_json (Obs.Json.of_string_exn line) with
            | Ok _ -> ()
            | Error msg -> Alcotest.failf "bad ring event %S: %s" line msg)
          events;
        (match Obs.Json.of_string metrics with
        | Error msg -> Alcotest.failf "metrics: %s" msg
        | Ok j ->
          let hist =
            Option.bind (Obs.Json.member "histograms" j)
              (Obs.Json.member "net.rpc.activate_us")
          in
          check "the ACTIVATE RPC histogram is in the snapshot" true (Option.is_some hist));
        Net.Server.stop server;
        Thread.join st);
    Alcotest.test_case "METRICS serves a valid OpenMetrics exposition" `Quick (fun () ->
        let entry = Option.get (R.find "bfs") in
        let g = G.Gen.grid 3 3 in
        let server = Net.Server.create ~port:0 (spec_of entry g ~timeout:2.0) in
        let st = Net.Server.serve_in_thread server in
        let port = Net.Server.port server in
        let conn = Net.Conn.of_fd ~timeout:2.0 ~peer:"metrics" (connect_local port) in
        (match Net.Conn.send conn Wire.Metrics_request with
        | Ok () -> ()
        | Error f -> Alcotest.failf "metrics send: %s" (Net.Conn.fault_to_string f));
        let r = Net.Conn.recv conn in
        Net.Conn.close conn;
        let body =
          match r with
          | Ok (Wire.Metrics_reply { body }) -> body
          | Ok f -> Alcotest.failf "metrics reply: got %s" (Wire.opcode_name f)
          | Error f -> Alcotest.failf "metrics recv: %s" (Net.Conn.fault_to_string f)
        in
        (match Obs.Metrics.Openmetrics.validate body with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "invalid exposition: %s" msg);
        Net.Server.stop server;
        Thread.join st) ]

let suites =
  [ ("net.wire", wire_tests);
    ("net.wire-prop", wire_prop_tests);
    ("net.wire-pinned", wire_pinned_tests);
    ("net.wire-ctx", ctx_tests);
    ("net.board", board_tests);
    ("net.loopback", loopback_tests);
    ("net.faults", fault_tests);
    ("net.socket", socket_tests);
    ("net.telemetry", telemetry_tests) ]
