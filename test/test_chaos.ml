(* wb_chaos: seeded fault-injection campaigns against the networked
   referee.  The load-bearing property is the differential contract —
   every faulted loopback run lands in a configuration the in-process
   engine reaches under the same adversary with crashes at the recorded
   death sites (or dies with a typed wire error; the session never
   raises) — checked here over a sweep of seeds, plans and all four
   model classes.  Determinism is pinned at every layer: generator
   combinators, plan codec, single runs, whole campaign reports. *)

module M = Wb_model
module G = Wb_graph
module Prng = Wb_support.Prng
module Net = Wb_net
module C = Wb_chaos
module R = Wb_protocols.Registry
module J = Wb_obs.Json

let qtest = QCheck_alcotest.to_alcotest
let check = Alcotest.(check bool)

(* ---- instances: one per model class ----------------------------------- *)

let entry key =
  match R.find key with
  | Some e -> e
  | None -> Alcotest.failf "protocol %s not registered" key

let instance ?max_rounds key graph =
  let e = entry key in
  { C.Campaign.key;
    protocol = e.R.protocol;
    graph;
    graph_desc = "test";
    adversary_name = "random";
    make_adversary = (fun ~seed -> M.Adversary.random (Prng.create seed));
    max_rounds }

(* SYNC, SIMSYNC, SIMASYNC, ASYNC — the same model spread as the loopback
   differential in test_net. *)
let four_models =
  [ instance "bfs" (G.Gen.random_connected (Prng.create 7) 10 0.25);
    instance "mis" (G.Gen.random_gnp (Prng.create 5) 9 0.3);
    instance "build-naive" (G.Gen.random_gnp (Prng.create 3) 8 0.3);
    instance "eob-bfs" (G.Gen.random_eob (Prng.create 4) 10 0.3) ]

(* ---- Gen: seeded combinators ------------------------------------------ *)

let gen_tests =
  [ Alcotest.test_case "equal seeds draw equal composed values" `Quick (fun () ->
        let g =
          C.Gen.bind (C.Gen.in_range 1 6) (fun k ->
              C.Gen.pair (C.Gen.list_of k (C.Gen.int 100)) (C.Gen.weighted [ ("a", 1); ("b", 3) ]))
        in
        let a = C.Gen.run ~seed:11 g and b = C.Gen.run ~seed:11 g in
        check "same" true (a = b);
        let c = C.Gen.run ~seed:12 g in
        check "different seed differs somewhere" true
          (List.exists (fun s -> not (c = C.Gen.run ~seed:s g)) [ 11; 13; 14; 15 ]));
    Alcotest.test_case "weighted respects zero weights" `Quick (fun () ->
        let rng = Prng.create 5 in
        for _ = 1 to 100 do
          match C.Gen.weighted [ ("never", 0); ("always", 2) ] rng with
          | "always" -> ()
          | other -> Alcotest.failf "drew %S despite zero weight" other
        done);
    Alcotest.test_case "subset is sorted and in range" `Quick (fun () ->
        let rng = Prng.create 9 in
        for _ = 1 to 50 do
          let l = C.Gen.subset ~k:3 8 rng in
          check "size" true (List.length l = 3);
          check "sorted distinct in-range" true
            (List.for_all (fun v -> v >= 0 && v < 8) l
            && List.sort_uniq Int.compare l = l)
        done) ]

(* ---- Plan: codec and presets ------------------------------------------ *)

let plan_of_seed seed = C.Gen.run ~seed C.Plan.gen

let plan_tests =
  [ qtest
      (QCheck.Test.make ~name:"random plans validate and JSON round-trip exactly" ~count:300
         (QCheck.make ~print:(fun s -> C.Plan.to_string (plan_of_seed s)) QCheck.Gen.(0 -- 100_000))
         (fun seed ->
           let plan = plan_of_seed seed in
           (match C.Plan.validate plan with
           | Ok () -> ()
           | Error e -> QCheck.Test.fail_reportf "generated plan invalid: %s" e);
           match C.Plan.of_string (C.Plan.to_string plan) with
           | Ok plan' -> C.Plan.equal plan plan'
           | Error e -> QCheck.Test.fail_reportf "round-trip failed: %s" e));
    Alcotest.test_case "presets validate and round-trip" `Quick (fun () ->
        List.iter
          (fun p ->
            (match C.Plan.validate p with
            | Ok () -> ()
            | Error e -> Alcotest.failf "preset %s invalid: %s" p.C.Plan.name e);
            match C.Plan.of_string (C.Plan.to_string p) with
            | Ok p' -> check p.C.Plan.name true (C.Plan.equal p p')
            | Error e -> Alcotest.failf "preset %s round-trip: %s" p.C.Plan.name e)
          C.Plan.presets);
    Alcotest.test_case "malformed plans are typed errors, never exceptions" `Quick (fun () ->
        List.iter
          (fun s ->
            match C.Plan.of_string s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %S" s)
          [ "";
            "nonsense";
            "{}";
            {|{"name":"x"}|};
            {|{"name":"x","mix":{"teleport":1},"intensity":{"kind":"constant","p":0.1},"targets":{"kind":"all"},"throttle_budget":8}|};
            {|{"name":"x","mix":{"drop":1},"intensity":{"kind":"constant","p":1.5},"targets":{"kind":"all"},"throttle_budget":8}|};
            {|{"name":"x","mix":{"drop":1},"intensity":{"kind":"constant","p":0.1},"targets":{"kind":"all"},"throttle_budget":0}|} ]);
    Alcotest.test_case "intensity schedules stay in [0,1] over the horizon" `Quick (fun () ->
        List.iter
          (fun seed ->
            let p = plan_of_seed seed in
            for round = 1 to 40 do
              let x = C.Plan.intensity_at p.C.Plan.intensity ~round in
              if x < 0.0 || x > 1.0 then
                Alcotest.failf "seed %d round %d: intensity %f" seed round x
            done)
          [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]) ]

(* ---- determinism: runs and campaigns ----------------------------------- *)

let record_string r = J.to_string (C.Campaign.record_to_json r)

let determinism_tests =
  [ Alcotest.test_case "one run replays byte-identically from (seed, index)" `Quick (fun () ->
        let inst = List.hd four_models in
        for index = 0 to 4 do
          let a = C.Campaign.run_once ~seed:77 ~index ~plan:C.Plan.default inst in
          let b = C.Campaign.run_once ~seed:77 ~index ~plan:C.Plan.default inst in
          Alcotest.(check string)
            (Printf.sprintf "run %d" index)
            (record_string a) (record_string b)
        done);
    Alcotest.test_case "whole campaign reports are byte-identical at one seed" `Quick (fun () ->
        let inst = List.nth four_models 1 in
        let a = C.Campaign.run ~seed:5 ~runs:8 ~plan:C.Plan.drop_heavy inst in
        let b = C.Campaign.run ~seed:5 ~runs:8 ~plan:C.Plan.drop_heavy inst in
        Alcotest.(check string) "report" (J.to_string (C.Campaign.to_json a))
          (J.to_string (C.Campaign.to_json b));
        let c = C.Campaign.run ~seed:6 ~runs:8 ~plan:C.Plan.drop_heavy inst in
        check "different seed differs" false
          (String.equal (J.to_string (C.Campaign.to_json a)) (J.to_string (C.Campaign.to_json c))));
    Alcotest.test_case "campaigns do inject (the harness is not a no-op)" `Quick (fun () ->
        let report =
          C.Campaign.run ~seed:1 ~runs:10 ~plan:C.Plan.wire_garbage (List.hd four_models)
        in
        let s = C.Campaign.summarize report in
        check "some faults injected" true (s.C.Campaign.injected_total > 0);
        check "some nodes died" true (s.C.Campaign.dead_nodes > 0)) ]

(* ---- the differential: faulted runs are engine-reachable --------------- *)

let assert_no_mismatch ~ctx (report : C.Campaign.report) =
  List.iter
    (fun (r : C.Campaign.run_record) ->
      match r.C.Campaign.mismatches with
      | [] -> ()
      | issues ->
        Alcotest.failf "%s run %d (seed %d): faulted run not engine-reachable:\n  %s\n  injected: %s"
          ctx r.C.Campaign.index r.C.Campaign.run_seed
          (String.concat "\n  " issues)
          (String.concat "; "
             (List.map
                (fun (v, e) -> Printf.sprintf "node %d %s" v (C.Inject.entry_to_string e))
                r.C.Campaign.injected)))
    report.C.Campaign.records

let differential_tests =
  [ qtest
      (QCheck.Test.make
         ~name:"faulted runs land in engine-reachable configurations (all models, random plans)"
         ~count:60
         (QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000))
         (fun seed ->
           let inst = List.nth four_models (seed mod List.length four_models) in
           let plan = plan_of_seed seed in
           let report = C.Campaign.run ~seed ~runs:3 ~plan inst in
           assert_no_mismatch ~ctx:(Printf.sprintf "seed %d" seed) report;
           true));
    Alcotest.test_case "preset plans: differential holds on every model" `Quick (fun () ->
        List.iter
          (fun inst ->
            List.iter
              (fun plan ->
                let report = C.Campaign.run ~seed:42 ~runs:4 ~plan inst in
                assert_no_mismatch
                  ~ctx:(Printf.sprintf "%s/%s" inst.C.Campaign.key plan.C.Plan.name)
                  report)
              C.Plan.presets)
          four_models) ]

let suites =
  [ ("chaos.gen", gen_tests);
    ("chaos.plan", plan_tests);
    ("chaos.determinism", determinism_tests);
    ("chaos.differential", differential_tests) ]
