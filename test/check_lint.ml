(* Validate the wblint --json artifact that the @check-lint alias produces
   from the fixture tree: exact per-rule finding counts, no findings
   outside the pinned rules, and the coverage counters.  Companion to
   check_trace.ml; keep the numbers in sync with test_lint.ml's
   [expected_fixture_counts]. *)

module J = Wb_obs.Json

let expected =
  [ ("determinism", 6);
    ("lock-discipline", 3);
    ("decode-hygiene", 3);
    ("interface-coverage", 2);
    ("lint-allow", 2) ]

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("check_lint: " ^ s); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else fail "usage: check_lint FILE.json" in
  let json =
    match J.of_string (read_file path) with
    | Ok j -> j
    | Error e -> fail "%s does not parse as JSON: %s" path e
  in
  let findings =
    match J.to_list (J.get "findings" json) with
    | Some l -> l
    | None -> fail "%s: findings is not a list" path
  in
  let rule_of f =
    match J.member "rule" f with
    | Some (J.String s) -> s
    | _ -> fail "%s: finding without a rule field" path
  in
  List.iter
    (fun (rule, n) ->
      let got = List.length (List.filter (fun f -> String.equal (rule_of f) rule) findings) in
      if got <> n then fail "rule %s: expected %d findings, got %d" rule n got)
    expected;
  let total = List.length findings in
  let sum = List.fold_left (fun a (_, n) -> a + n) 0 expected in
  if total <> sum then fail "%d findings outside the pinned rules" (total - sum);
  (match J.to_int (J.get "files_scanned" json) with
  | Some 7 -> ()
  | Some n -> fail "files_scanned: expected 7, got %d" n
  | None -> fail "files_scanned missing");
  Printf.printf "check_lint: %s ok — %d findings, all accounted for\n" path total
