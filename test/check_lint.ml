(* Validate the wblint --json artifacts the @check-lint alias produces,
   re-read with the independent Wb_obs.Json parser.

   Default mode pins the Tier A artifact from the fixture tree: exact
   per-rule finding counts, no findings outside the pinned rules, and the
   coverage counters.  [--tierc] pins the whole-program domain-safety
   artifact from test/lintfix: per-kind counts (escape,
   lockset-inconsistency, unguarded-toplevel must each fire), the typed
   coverage, and the domain_safety stats object.  Companion to
   check_trace.ml; keep the numbers in sync with test_lint.ml. *)

module J = Wb_obs.Json

let expected =
  [ ("determinism", 6);
    ("lock-discipline", 3);
    ("decode-hygiene", 3);
    ("interface-coverage", 2);
    ("lint-allow", 2) ]

(* rule, kind, count — keep in sync with test_lint.ml's [expected_tierc]
   and the fixture headers under test/lintfix. *)
let expected_tierc =
  [ ("poly-compare", "", 2);
    ("domain-safety", "escape", 2);
    ("domain-safety", "lockset-inconsistency", 1);
    ("domain-safety", "unguarded-toplevel", 1) ]

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("check_lint: " ^ s); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  match J.of_string (read_file path) with
  | Ok j -> j
  | Error e -> fail "%s does not parse as JSON: %s" path e

let findings_of path json =
  match J.to_list (J.get "findings" json) with
  | Some l -> l
  | None -> fail "%s: findings is not a list" path

let field name path f =
  match J.member name f with
  | Some (J.String s) -> s
  | _ -> fail "%s: finding without a %s field" path name

let check_version path json =
  match J.to_int (J.get "version" json) with
  | Some 2 -> ()
  | Some n -> fail "%s: report version: expected 2, got %d" path n
  | None -> fail "%s: report version missing" path

let check_int name want path json =
  match J.to_int (J.get name json) with
  | Some n when n = want -> ()
  | Some n -> fail "%s: %s: expected %d, got %d" path name want n
  | None -> fail "%s: %s missing" path name

let check_tier_a path =
  let json = load path in
  check_version path json;
  let findings = findings_of path json in
  let rule_of = field "rule" path in
  List.iter
    (fun (rule, n) ->
      let got = List.length (List.filter (fun f -> String.equal (rule_of f) rule) findings) in
      if got <> n then fail "rule %s: expected %d findings, got %d" rule n got)
    expected;
  let total = List.length findings in
  let sum = List.fold_left (fun a (_, n) -> a + n) 0 expected in
  if total <> sum then fail "%d findings outside the pinned rules" (total - sum);
  check_int "files_scanned" 7 path json;
  total

let check_tier_c path =
  let json = load path in
  check_version path json;
  let findings = findings_of path json in
  let kind_of f = match J.member "kind" f with Some (J.String k) -> k | _ -> "" in
  let rule_of = field "rule" path in
  List.iter
    (fun (rule, kind, n) ->
      let got =
        List.length
          (List.filter
             (fun f -> String.equal (rule_of f) rule && String.equal (kind_of f) kind)
             findings)
      in
      if got <> n then
        fail "rule %s%s: expected %d findings, got %d" rule
          (if kind = "" then "" else "/" ^ kind)
          n got)
    expected_tierc;
  let total = List.length findings in
  let sum = List.fold_left (fun a (_, _, n) -> a + n) 0 expected_tierc in
  if total <> sum then fail "%d findings outside the pinned rule/kinds" (total - sum);
  (* every fixture source must have typed coverage, or Tier C saw nothing *)
  check_int "files_scanned" 5 path json;
  check_int "files_typed" 5 path json;
  let stats =
    match J.member "domain_safety" json with
    | Some s -> s
    | None -> fail "%s: domain_safety stats object missing" path
  in
  check_int "units" 5 path stats;
  (* racy_ref.hits, suppressed_ok.scratch, lockset_tables.counts,
     dls_clean.log, and lint_fixture's record-keyed table *)
  check_int "mutable_entries" 5 path stats;
  check_int "spawn_sites" 4 path stats;
  check_int "suppressed" 1 path stats;
  total

let () =
  let tierc, path =
    match Array.to_list Sys.argv with
    | [ _; "--tierc"; p ] -> (true, p)
    | [ _; p ] -> (false, p)
    | _ -> fail "usage: check_lint [--tierc] FILE.json"
  in
  let total = if tierc then check_tier_c path else check_tier_a path in
  Printf.printf "check_lint: %s ok — %d findings, all accounted for\n" path total
