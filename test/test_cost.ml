(* Wb_obs.Cost: the per-round bit ledger the kernel feeds, the theorem
   certificates the registry declares, and the cross-checks tying the
   accounting layers together — trace events, cost.* counters, engine
   stats and the networked session must all report the same bit totals.

   The ledger instruments are process-global, so every test enables the
   ledger around its own runs and leaves it disabled on exit. *)

module Obs = Wb_obs
module Cost = Wb_obs.Cost
module Engine = Wb_model.Engine
module Adversary = Wb_model.Adversary
module G = Wb_graph
module Reg = Wb_protocols.Registry
module Net = Wb_net
module Prng = Wb_support.Prng
module Counting = Wb_reductions.Counting

let check msg = Alcotest.(check bool) msg true

let qtest t = QCheck_alcotest.to_alcotest t

let with_cost f =
  Cost.enable ();
  Fun.protect ~finally:Cost.disable f

(* --- the ledger itself ------------------------------------------------- *)

let ledger_tests =
  [ Alcotest.test_case "a disabled process allocates no ledger" `Quick (fun () ->
        Cost.disable ();
        check "create is None when off" (Cost.create () = None);
        check "is_enabled reflects the default" (not (Cost.is_enabled ())));
    Alcotest.test_case "record / flush_round round-trips the summary" `Quick (fun () ->
        with_cost (fun () ->
            let l = Option.get (Cost.create ()) in
            Cost.record l ~round:0 ~bits:5 ~board_bits:5;
            Cost.record l ~round:0 ~bits:7 ~board_bits:12;
            (match Cost.flush_round l with
            | Some { Cost.round = 0; writes = 2; bits = 12 } -> ()
            | Some s ->
              Alcotest.failf "wrong summary: round %d, %d writes, %d bits" s.Cost.round
                s.Cost.writes s.Cost.bits
            | None -> Alcotest.fail "flush returned None after two writes");
            check "a round with no writes flushes to None" (Cost.flush_round l = None);
            Alcotest.(check int) "total bits" 12 (Cost.total_bits l);
            Alcotest.(check int) "total writes" 2 (Cost.total_writes l)));
    Alcotest.test_case "discard_round drops the open round, totals stand" `Quick (fun () ->
        with_cost (fun () ->
            let l = Option.get (Cost.create ()) in
            Cost.record l ~round:3 ~bits:9 ~board_bits:9;
            Cost.discard_round l;
            check "nothing left to flush" (Cost.flush_round l = None);
            Alcotest.(check int) "replayed bits still counted" 9 (Cost.total_bits l))) ]

(* --- certificates ------------------------------------------------------ *)

let toy_cert =
  { Cost.form = "2n (toy)";
    envelope = (fun ~n -> 2 * n);
    floor = Some (fun ~n -> n);
    floor_class = Some "toy" }

let certificate_tests =
  [ Alcotest.test_case "check compares measured against envelope and floor" `Quick (fun () ->
        check "between floor and envelope" (Cost.verdict_ok (Cost.check toy_cert ~n:8 ~measured:10));
        check "over the envelope fails"
          (not (Cost.verdict_ok (Cost.check toy_cert ~n:8 ~measured:17)));
        check "under the floor fails" (not (Cost.verdict_ok (Cost.check toy_cert ~n:8 ~measured:3)));
        let v = Cost.check { toy_cert with Cost.floor = None } ~n:8 ~measured:3 in
        check "no floor means the floor check is vacuous" (Cost.verdict_ok v));
    Alcotest.test_case "every registry certificate holds at n=16" `Quick (fun () ->
        List.iter
          (fun (e : Reg.entry) ->
            let r = Wb_bench.Cost_core.measure e ~seed:2012 ~n:16 in
            check (e.Reg.key ^ " verdict") (Cost.verdict_ok r.Wb_bench.Cost_core.verdict))
          (Reg.all ()));
    Alcotest.test_case "registry floors match Wb_reductions.Counting" `Quick (fun () ->
        (* The registry duplicates the Lemma 3 arithmetic with Wb_bignum to
           stay out of a dependency cycle with wb_reductions; this is the
           cross-check that the two computations agree. *)
        let sqrt_cutoff n = int_of_float (sqrt (float_of_int n)) in
        List.iter
          (fun (e : Reg.entry) ->
            match (e.Reg.certificate.Cost.floor, e.Reg.certificate.Cost.floor_class) with
            | None, None -> ()
            | Some floor, Some cls ->
              let reference =
                if cls = Counting.labelled_trees.Counting.name then Counting.labelled_trees
                else if cls = Counting.all_graphs.Counting.name then Counting.all_graphs
                else if cls = (Counting.isolated_tail ~f:sqrt_cutoff).Counting.name then
                  Counting.isolated_tail ~f:sqrt_cutoff
                else Alcotest.failf "%s: unknown floor class %S" e.Reg.key cls
              in
              List.iter
                (fun n ->
                  Alcotest.(check int)
                    (Printf.sprintf "%s floor at n=%d" e.Reg.key n)
                    (Counting.min_message_bits reference n)
                    (floor ~n))
                [ 2; 4; 16; 64; 256 ]
            | _ -> Alcotest.failf "%s: floor and floor_class must come together" e.Reg.key)
          (Reg.all ())) ]

(* --- ledger == engine stats == trace events, all four models ----------- *)

let cost_round_bits events =
  List.fold_left
    (fun acc ev -> match ev with Obs.Event.Cost_round { bits; _ } -> acc + bits | _ -> acc)
    0 events

let engine_cross_check key g =
  let entry = Option.get (Reg.find key) in
  let c_bits = Obs.Metrics.counter "cost.total_bits" in
  let c_writes = Obs.Metrics.counter "cost.writes" in
  let b0 = Obs.Metrics.counter_value c_bits in
  let w0 = Obs.Metrics.counter_value c_writes in
  let sink, events = Obs.Trace.collector () in
  let run = Engine.run_packed ~trace:sink entry.Reg.protocol g Adversary.min_id in
  check (key ^ ": succeeded") (Engine.succeeded run);
  let total = run.Engine.stats.Engine.total_bits in
  Alcotest.(check int)
    (key ^ ": cost_round events sum to the engine total")
    total
    (cost_round_bits (events ()));
  Alcotest.(check int)
    (key ^ ": cost.total_bits counter advanced by the engine total")
    total
    (Obs.Metrics.counter_value c_bits - b0);
  Alcotest.(check int)
    (key ^ ": one accounted write per board append")
    (Array.length run.Engine.writes)
    (Obs.Metrics.counter_value c_writes - w0)

let reconciliation_tests =
  [ qtest
      (QCheck.Test.make ~count:15
         ~name:"ledger equals engine stats across all four models"
         (QCheck.make
            ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed)
            QCheck.Gen.(pair (5 -- 10) (0 -- 9999)))
         (fun (n, seed) ->
           with_cost (fun () ->
               let g = G.Gen.random_gnp (Prng.create seed) n 0.4 in
               (* one Any_graph protocol per model: SIMASYNC, SIMSYNC, ASYNC, SYNC *)
               List.iter
                 (fun key -> engine_cross_check key g)
                 [ "build-naive"; "mis"; "eob-bfs"; "bfs" ];
               true)));
    Alcotest.test_case "loopback sessions reconcile board bits with wire bytes" `Quick (fun () ->
        with_cost (fun () ->
            let entry = Option.get (Reg.find "bfs") in
            let g = G.Gen.random_connected (Prng.create 2) 8 0.3 in
            let board = Obs.Metrics.counter "net.session.board_bits" in
            let wire = Obs.Metrics.counter "net.session.wire_bytes" in
            let c_bits = Obs.Metrics.counter "cost.total_bits" in
            let b0 = Obs.Metrics.counter_value board in
            let w0 = Obs.Metrics.counter_value wire in
            let l0 = Obs.Metrics.counter_value c_bits in
            let r = Net.Remote.run_loopback ~protocol:entry.Reg.protocol g Adversary.min_id in
            check "succeeded" (Engine.succeeded r.Net.Session.run);
            let total = r.Net.Session.run.Engine.stats.Engine.total_bits in
            Alcotest.(check int) "session board-bit counter advanced by the run total" total
              (Obs.Metrics.counter_value board - b0);
            Alcotest.(check int) "the referee's ledger saw the same bits over the wire" total
              (Obs.Metrics.counter_value c_bits - l0);
            let wire_bits = 8 * (Obs.Metrics.counter_value wire - w0) in
            check "framing makes the wire strictly wider than the board" (wire_bits > total);
            check "the overhead gauge is set"
              (Obs.Metrics.gauge_value (Obs.Metrics.gauge "net.session.wire_overhead_pct") > 100))) ]

let suites =
  [ ("cost.ledger", ledger_tests);
    ("cost.certificates", certificate_tests);
    ("cost.reconciliation", reconciliation_tests) ]
