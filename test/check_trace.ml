(* Standalone validator for the telemetry artifacts the toolchain emits:
   JSONL event traces, Chrome (Catapult) trace files, metrics snapshots and
   BENCH_<section>.json sidecars.  Driven by the [check-obs] dune alias on
   freshly produced files; exits non-zero with a message on the first
   malformed artifact.

     check_trace.exe FILE...

   The kind of each FILE is inferred from its name: [*.jsonl] is an event
   trace, [BENCH_*.json] a bench sidecar, a name containing [chrome] a
   Catapult trace, and anything else a metrics snapshot. *)

module J = Wb_obs.Json
module E = Wb_obs.Event

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("check_trace: " ^ msg); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  body

let parse path body =
  match J.of_string body with
  | Ok v -> v
  | Error msg -> fail "%s: invalid JSON: %s" path msg

let require path v k =
  match J.member k v with None -> fail "%s: missing %S member" path k | Some m -> m

(* --- event traces ----------------------------------------------------- *)

let check_jsonl path =
  let lines =
    List.filteri
      (fun _ l -> String.trim l <> "")
      (String.split_on_char '\n' (read_file path))
  in
  if lines = [] then fail "%s: empty trace" path;
  let events =
    List.map
      (fun line ->
        match E.of_json (parse path line) with
        | Ok ev -> ev
        | Error msg -> fail "%s: bad event %S: %s" path line msg)
      lines
  in
  (match List.rev events with
  | E.Run_end _ :: _ -> ()
  | _ -> fail "%s: trace does not end with run_end" path);
  let activated = Hashtbl.create 64 in
  let last_start = ref 0 in
  List.iter
    (fun ev ->
      (match ev with
      | E.Activate { node; _ } -> Hashtbl.replace activated node ()
      | E.Write { node; _ } when not (Hashtbl.mem activated node) ->
        fail "%s: node %d writes before activating" path node
      | E.Round_start { round } when round <= !last_start ->
        fail "%s: round starts not strictly increasing at %d" path round
      | E.Round_start { round } -> last_start := round
      | _ -> ());
      ())
    events;
  Printf.printf "ok %-28s %d events\n" path (List.length events)

(* --- chrome / catapult ------------------------------------------------- *)

let check_chrome path =
  let v = parse path (read_file path) in
  match J.to_list (require path v "traceEvents") with
  | None -> fail "%s: traceEvents is not a list" path
  | Some [] -> fail "%s: empty traceEvents" path
  | Some events ->
    List.iter
      (fun e ->
        List.iter
          (fun k -> ignore (require path e k))
          [ "name"; "ph"; "ts"; "pid"; "tid" ])
      events;
    Printf.printf "ok %-28s %d trace events\n" path (List.length events)

(* --- metrics snapshots -------------------------------------------------- *)

let check_metrics path =
  let v = parse path (read_file path) in
  List.iter
    (fun k ->
      match require path v k with
      | J.Obj _ -> ()
      | _ -> fail "%s: %S is not an object" path k)
    [ "counters"; "gauges"; "histograms" ];
  (match J.to_int (require path (require path v "counters") "engine.runs") with
  | Some n when n > 0 -> ()
  | _ -> fail "%s: engine.runs counter missing or zero" path);
  Printf.printf "ok %-28s metrics snapshot\n" path

(* --- bench sidecars ----------------------------------------------------- *)

let check_bench path =
  let v = parse path (read_file path) in
  (match J.to_str (require path v "section") with
  | Some _ -> ()
  | None -> fail "%s: section is not a string" path);
  ignore (require path v "wall_s");
  (match J.to_list (require path v "rows") with
  | None -> fail "%s: rows is not a list" path
  | Some rows ->
    List.iter
      (fun r ->
        match J.to_str (require path r "name") with
        | Some _ -> ()
        | None -> fail "%s: row without a name" path)
      rows;
    ignore (require path v "metrics");
    Printf.printf "ok %-28s %d rows\n" path (List.length rows))

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then fail "usage: check_trace FILE...";
  List.iter
    (fun path ->
      let base = Filename.basename path in
      if Filename.check_suffix base ".jsonl" then check_jsonl path
      else if String.length base >= 6 && String.sub base 0 6 = "BENCH_" then check_bench path
      else
        let has_chrome =
          let n = String.length base in
          let rec scan i =
            i + 6 <= n && (String.sub base i 6 = "chrome" || scan (i + 1))
          in
          scan 0
        in
        if has_chrome then check_chrome path else check_metrics path)
    args
