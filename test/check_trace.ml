(* Standalone validator for the telemetry artifacts the toolchain emits:
   JSONL event traces, Chrome (Catapult) trace files, metrics snapshots and
   BENCH_<section>.json sidecars.  Driven by the [check-obs] dune alias on
   freshly produced files; exits non-zero with a message on the first
   malformed artifact.

     check_trace.exe FILE...

   The kind of each FILE is inferred from its name: [*.jsonl] is an event
   trace, [BENCH_*.json] a bench sidecar, a name containing [chrome] a
   Catapult trace, and anything else a metrics snapshot. *)

module J = Wb_obs.Json
module E = Wb_obs.Event

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("check_trace: " ^ msg); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  body

let parse path body =
  match J.of_string body with
  | Ok v -> v
  | Error msg -> fail "%s: invalid JSON: %s" path msg

let require path v k =
  match J.member k v with None -> fail "%s: missing %S member" path k | Some m -> m

(* --- event traces ----------------------------------------------------- *)

let check_jsonl ?(lenient = false) path =
  let lines =
    List.filteri
      (fun _ l -> String.trim l <> "")
      (String.split_on_char '\n' (read_file path))
  in
  if lines = [] then fail "%s: empty trace" path;
  let events =
    List.map
      (fun line ->
        match E.of_json (parse path line) with
        | Ok ev -> ev
        | Error msg -> fail "%s: bad event %S: %s" path line msg)
      lines
  in
  if lenient then
    (* Flight-recorder tails start mid-run (ring overwrites) and may span
       several sessions, so only well-formedness holds. *)
    Printf.printf "ok %-28s %d events (flight tail)\n" path (List.length events)
  else begin
  (match List.rev events with
  | E.Run_end _ :: _ -> ()
  | _ -> fail "%s: trace does not end with run_end" path);
  let activated = Hashtbl.create 64 in
  let last_start = ref 0 in
  List.iter
    (fun ev ->
      (match ev with
      | E.Activate { node; _ } -> Hashtbl.replace activated node ()
      | E.Write { node; _ } when not (Hashtbl.mem activated node) ->
        fail "%s: node %d writes before activating" path node
      | E.Round_start { round } when round <= !last_start ->
        fail "%s: round starts not strictly increasing at %d" path round
      | E.Round_start { round } -> last_start := round
      | _ -> ());
      ())
    events;
  Printf.printf "ok %-28s %d events\n" path (List.length events)
  end

(* --- chrome / catapult ------------------------------------------------- *)

(* Chrome traces carry spans as async "b"/"e" pairs with the span/parent ids
   in [args]; beyond shape, the causal structure must close: every non-root
   parent names a started span, at least one root exists, every "e" matches
   a "b", and a multi-process (merged) file names each of its processes. *)
let check_chrome path =
  let v = parse path (read_file path) in
  match J.to_list (require path v "traceEvents") with
  | None -> fail "%s: traceEvents is not a list" path
  | Some [] -> fail "%s: empty traceEvents" path
  | Some events ->
    let str_of e k = J.to_str (require path e k) in
    List.iter
      (fun e ->
        List.iter (fun k -> ignore (require path e k)) [ "name"; "ph"; "pid"; "tid" ];
        match str_of e "ph" with
        | Some "M" -> ()
        | _ -> ignore (require path e "ts"))
      events;
    let spans = Hashtbl.create 64 in
    let parents = ref [] in
    let roots = ref 0 in
    let begins = ref 0 in
    List.iter
      (fun e ->
        match str_of e "ph" with
        | Some "b" ->
          incr begins;
          let args = require path e "args" in
          let span =
            match J.to_int (require path args "span") with
            | Some s -> s
            | None -> fail "%s: span begin without an integer args.span" path
          in
          ignore (require path args "trace");
          if Hashtbl.mem spans span then fail "%s: duplicate span id %d" path span;
          Hashtbl.replace spans span ();
          (match J.member "parent" args with
          | None -> fail "%s: span begin without args.parent (null marks a root)" path
          | Some J.Null -> incr roots
          | Some p -> (
            match J.to_int p with
            | Some parent -> parents := (span, parent) :: !parents
            | None -> fail "%s: args.parent is neither null nor an integer" path))
        | _ -> ())
      events;
    List.iter
      (fun (span, parent) ->
        if not (Hashtbl.mem spans parent) then
          fail "%s: span %d has parent %d but no such span begins" path span parent)
      !parents;
    if !begins > 0 && !roots = 0 then fail "%s: spans present but no root span" path;
    List.iter
      (fun e ->
        match str_of e "ph" with
        | Some "e" -> (
          match str_of e "id" with
          | None -> fail "%s: span end without an id" path
          | Some id -> (
            match int_of_string_opt id with
            | Some span when Hashtbl.mem spans span -> ()
            | _ -> fail "%s: span end %s without a matching begin" path id))
        | _ -> ())
      events;
    let pids = Hashtbl.create 8 in
    let named = Hashtbl.create 8 in
    List.iter
      (fun e ->
        let pid = J.to_int (require path e "pid") in
        match (str_of e "ph", str_of e "name") with
        | Some "M", Some "process_name" ->
          Option.iter (fun p -> Hashtbl.replace named p ()) pid
        | _ -> Option.iter (fun p -> Hashtbl.replace pids p ()) pid)
      events;
    if Hashtbl.length pids > 1 then
      Hashtbl.iter
        (fun pid () ->
          if not (Hashtbl.mem named pid) then
            fail "%s: merged trace has unnamed process %d" path pid)
        pids;
    Printf.printf "ok %-28s %d trace events, %d spans (%d roots)\n" path (List.length events)
      !begins !roots

(* --- metrics snapshots -------------------------------------------------- *)

let check_metrics path =
  let v = parse path (read_file path) in
  List.iter
    (fun k ->
      match require path v k with
      | J.Obj _ -> ()
      | _ -> fail "%s: %S is not an object" path k)
    [ "counters"; "gauges"; "histograms" ];
  (match J.to_int (require path (require path v "counters") "engine.runs") with
  | Some n when n > 0 -> ()
  | _ -> fail "%s: engine.runs counter missing or zero" path);
  Printf.printf "ok %-28s metrics snapshot\n" path

(* --- bench sidecars ----------------------------------------------------- *)

let check_bench path =
  let v = parse path (read_file path) in
  (match J.to_int (require path v "schema") with
  | Some 1 -> ()
  | Some n -> fail "%s: unsupported bench schema %d (want 1)" path n
  | None -> fail "%s: schema is not an int" path);
  (match J.to_str (require path v "bench") with
  | Some _ -> ()
  | None -> fail "%s: bench is not a string" path);
  (match J.to_int (require path v "seed") with
  | Some _ -> ()
  | None -> fail "%s: seed is not an int" path);
  (match J.to_str (require path v "git") with
  | Some _ -> ()
  | None -> fail "%s: git is not a string" path);
  ignore (require path v "params");
  ignore (require path v "wall_s");
  ignore (require path v "registry");
  (match J.to_list (require path v "rows") with
  | None -> fail "%s: rows is not a list" path
  | Some rows ->
    List.iter
      (fun r ->
        match J.to_str (require path r "name") with
        | Some _ -> ()
        | None -> fail "%s: row without a name" path)
      rows;
    ignore (require path v "metrics");
    Printf.printf "ok %-28s %d rows\n" path (List.length rows))

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then fail "usage: check_trace FILE...";
  List.iter
    (fun path ->
      let base = Filename.basename path in
      let contains sub =
        let n = String.length base and m = String.length sub in
        let rec scan i = i + m <= n && (String.sub base i m = sub || scan (i + 1)) in
        scan 0
      in
      if Filename.check_suffix base ".jsonl" then
        check_jsonl ~lenient:(contains "flight") path
      else if String.length base >= 6 && String.sub base 0 6 = "BENCH_" then check_bench path
      else if contains "chrome" then check_chrome path
      else check_metrics path)
    args
