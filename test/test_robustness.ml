(* Failure injection and cross-cutting invariants: corrupted whiteboards,
   adversarial payloads, determinism, and the execution report. *)

open Wb_model
module G = Wb_graph
module Prng = Wb_support.Prng

let qtest = QCheck_alcotest.to_alcotest

let check = Alcotest.(check bool)

let output_of (p : Protocol.t) ~n board =
  let module M = (val p : Protocol.S) in
  M.output ~n board

let garbage_board n seed =
  let rng = Prng.create seed in
  let board = Board.create n in
  for author = 0 to n - 1 do
    let payload = Array.init (Prng.int rng 40) (fun _ -> Prng.bool rng) in
    Board.append board (Message.make ~author ~payload)
  done;
  board

let corrupted_board_tests =
  [ Alcotest.test_case "BUILD outputs reject or fail-safe on garbage, never wrong graphs" `Quick
      (fun () ->
        List.iter
          (fun seed ->
            let board = garbage_board 6 seed in
            List.iter
              (fun p ->
                match output_of p ~n:6 board with
                | Answer.Reject -> ()
                | Answer.Graph _ -> Alcotest.fail "garbage decoded to a graph"
                | _ -> Alcotest.fail "unexpected answer shape"
                | exception _ -> () (* raising is acceptable: the engine maps it to Output_error *))
              [ Wb_protocols.Build_forest.protocol;
                Wb_protocols.Build_degenerate.protocol ~k:2 ~decoder:`Backtracking;
                Wb_protocols.Build_split_degenerate.protocol ~k:2 ])
          [ 1; 2; 3; 4; 5 ]);
    Alcotest.test_case "duplicate-identifier boards are rejected" `Quick (fun () ->
        (* two messages claiming paper id 1 *)
        let w () =
          let w = Wb_support.Bitbuf.Writer.create () in
          Wb_protocols.Codec.write_id w 1;
          Wb_protocols.Codec.write_int w 0;
          Wb_protocols.Codec.write_int w 0;
          Wb_support.Bitbuf.Writer.contents w
        in
        let board = Board.create 2 in
        Board.append board (Message.make ~author:0 ~payload:(w ()));
        Board.append board (Message.make ~author:1 ~payload:(w ()));
        check "reject" true (output_of Wb_protocols.Build_forest.protocol ~n:2 board = Answer.Reject));
    Alcotest.test_case "forest protocol rejects a consistent-looking lie" `Quick (fun () ->
        (* Node 1 claims degree 1 towards node 2; node 2 claims degree 0:
           the pruning bookkeeping catches the asymmetry. *)
        let msg id deg sum =
          let w = Wb_support.Bitbuf.Writer.create () in
          Wb_protocols.Codec.write_id w id;
          Wb_protocols.Codec.write_int w deg;
          Wb_protocols.Codec.write_int w sum;
          Wb_support.Bitbuf.Writer.contents w
        in
        let board = Board.create 2 in
        Board.append board (Message.make ~author:0 ~payload:(msg 1 1 2));
        Board.append board (Message.make ~author:1 ~payload:(msg 2 0 0));
        check "reject" true (output_of Wb_protocols.Build_forest.protocol ~n:2 board = Answer.Reject)) ]

let determinism_tests =
  [ qtest
      (QCheck.Test.make ~name:"runs are reproducible from the seed" ~count:50 QCheck.small_int
         (fun seed ->
           let g = G.Gen.random_gnp (Prng.create seed) 14 0.2 in
           let go () =
             let run =
               Engine.run_packed Wb_protocols.Bfs_sync.protocol g
                 (Adversary.random (Prng.create (seed * 3)))
             in
             (run.Engine.writes, run.Engine.stats, run.Engine.outcome)
           in
           go () = go ()));
    qtest
      (QCheck.Test.make ~name:"SIMASYNC boards are schedule-independent as multisets" ~count:40
         QCheck.small_int (fun seed ->
           let g = G.Gen.random_tree (Prng.create seed) 10 in
           let bits adv =
             let run = Engine.run_packed Wb_protocols.Build_forest.protocol g adv in
             List.sort compare (Array.to_list run.Engine.message_bits)
           in
           bits Adversary.min_id = bits Adversary.max_id)) ]

let report_tests =
  [ Alcotest.test_case "timeline mentions every node once" `Quick (fun () ->
        let g = G.Gen.path 5 in
        let run = Engine.run_packed Wb_protocols.Bfs_sync.protocol g Adversary.min_id in
        let text = Report.timeline run in
        for v = 1 to 5 do
          let needle = Printf.sprintf "write %d (" v in
          let contains =
            let nl = String.length needle and tl = String.length text in
            let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
            go 0
          in
          check (Printf.sprintf "node %d wrote" v) true contains
        done);
    Alcotest.test_case "timeline reports deadlocked nodes" `Quick (fun () ->
        let odd = G.Graph.of_edges 5 [ (0, 1); (0, 2); (1, 2); (1, 3); (3, 4) ] in
        let run = Engine.run_packed Wb_protocols.Bfs_bipartite_async.protocol odd Adversary.min_id in
        let text = Report.timeline run in
        let contains needle =
          let nl = String.length needle and tl = String.length text in
          let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
          go 0
        in
        check "deadlock line" true (contains "deadlock");
        check "never-wrote line" true (contains "never wrote: 5"));
    Alcotest.test_case "summary is one line" `Quick (fun () ->
        let g = G.Gen.path 3 in
        let run = Engine.run_packed Wb_protocols.Build_forest.protocol g Adversary.min_id in
        check "no newline" true (not (String.contains (Report.summary run) '\n'))) ]

let codec_tests =
  [ qtest
      (QCheck.Test.make ~name:"signed zig-zag roundtrip" ~count:400 QCheck.int (fun v ->
           let v = v / 4 (* keep 2v in range *) in
           let w = Wb_support.Bitbuf.Writer.create () in
           Wb_protocols.Codec.write_signed w v;
           let r = Wb_support.Bitbuf.Reader.of_bits (Wb_support.Bitbuf.Writer.contents w) in
           Wb_protocols.Codec.read_signed r = v));
    qtest
      (QCheck.Test.make ~name:"payload embedding roundtrip" ~count:200
         QCheck.(small_list bool)
         (fun bits ->
           let payload = Array.of_list bits in
           let w = Wb_support.Bitbuf.Writer.create () in
           Wb_protocols.Codec.write_payload w payload;
           let r = Wb_support.Bitbuf.Reader.of_bits (Wb_support.Bitbuf.Writer.contents w) in
           Wb_protocols.Codec.read_payload r = payload));
    qtest
      (QCheck.Test.make ~name:"big-nat wire roundtrip" ~count:200 QCheck.(pair small_int small_int)
         (fun (a, b) ->
           let v = Wb_bignum.Nat.mul (Wb_bignum.Nat.of_int (abs a)) (Wb_bignum.Nat.pow_int 10 (abs b mod 20)) in
           let w = Wb_support.Bitbuf.Writer.create () in
           Wb_protocols.Codec.write_big w v;
           let r = Wb_support.Bitbuf.Reader.of_bits (Wb_support.Bitbuf.Writer.contents w) in
           Wb_bignum.Nat.equal (Wb_protocols.Codec.read_big r) v));
    Alcotest.test_case "size estimators are upper bounds" `Quick (fun () ->
        List.iter
          (fun v ->
            let w = Wb_support.Bitbuf.Writer.create () in
            Wb_protocols.Codec.write_int w v;
            check (string_of_int v) true
              (Wb_support.Bitbuf.Writer.length_bits w <= Wb_protocols.Codec.int_bits v))
          [ 0; 1; 7; 64; 511; 100000 ]) ]

let registry_explore_tests =
  [ Alcotest.test_case "every deterministic protocol survives exhaustive scheduling at n<=5"
      `Slow (fun () ->
        let rng = Prng.create 31337 in
        List.iter
          (fun (e : Wb_protocols.Registry.entry) ->
            if not e.randomized then begin
              let g =
                match e.promise with
                | Wb_protocols.Registry.Forest -> G.Gen.random_tree rng 5
                | Wb_protocols.Registry.Degeneracy_at_most k ->
                  G.Gen.random_kdegenerate rng 5 ~k:(min k 2)
                | Wb_protocols.Registry.Split_degeneracy_at_most k ->
                  G.Gen.random_split_degenerate rng 5 ~k:(min k 2)
                | Wb_protocols.Registry.Even_odd_bipartite -> G.Gen.random_eob rng 5 0.5
                | Wb_protocols.Registry.Bipartite -> G.Gen.random_bipartite rng 2 3 0.5
                | Wb_protocols.Registry.Regular_two_half -> G.Gen.two_cliques 2
                | Wb_protocols.Registry.Any_graph -> G.Gen.random_gnp rng 5 0.4
              in
              let problem = e.problem (G.Graph.n g) in
              let ok, _ =
                Engine.explore_packed_exn e.protocol g (fun r ->
                    match r.Engine.outcome with
                    | Engine.Success a -> Problems.valid_answer problem g a
                    | _ -> false)
              in
              check e.key true ok
            end)
          (Wb_protocols.Registry.all ())) ]

let semantics_regression_tests =
  [ Alcotest.test_case "explore is idempotent (analysis caches invalidate correctly)" `Quick
      (fun () ->
        (* The BFS protocols share a memoised board digest; backtracking
           exploration must never serve stale sums.  Two identical explores
           must agree exactly, and so must explore vs single runs. *)
        let g = G.Graph.of_edges 6 [ (0, 1); (0, 2); (1, 2); (1, 3); (3, 4); (0, 5) ] in
        let go () =
          Engine.explore_packed_exn Wb_protocols.Bfs_sync.protocol g (fun r ->
              match r.Engine.outcome with
              | Engine.Success a -> Problems.valid_answer Problems.Bfs g a
              | _ -> false)
        in
        let ok1, count1 = go () in
        let ok2, count2 = go () in
        check "ok stable" true (ok1 = ok2);
        Alcotest.(check int) "count stable" count1 count2;
        check "valid" true ok1);
    Alcotest.test_case "interleaving two protocols does not corrupt the shared digest" `Quick
      (fun () ->
        let g = G.Gen.random_eob (Prng.create 4) 10 0.4 in
        let r1 () = Engine.run_packed Wb_protocols.Eob_bfs_async.protocol g Adversary.min_id in
        let r2 () = Engine.run_packed Wb_protocols.Bfs_sync.protocol g Adversary.min_id in
        let a = r1 () in
        let _ = r2 () in
        let b = r1 () in
        check "same outcome" true (a.Engine.outcome = b.Engine.outcome);
        check "same order" true (a.Engine.writes = b.Engine.writes));
    Alcotest.test_case "the adversary genuinely changes MIS answers" `Quick (fun () ->
        (* On P4 the greedy MIS depends on write order: schedules must be
           able to produce at least two distinct (both valid) answers. *)
        let g = G.Gen.path 4 in
        let answers = Hashtbl.create 4 in
        let _ =
          Engine.explore_packed_exn (Wb_protocols.Mis_simsync.protocol ~root:0) g (fun r ->
              (match r.Engine.outcome with
              | Engine.Success (Answer.Node_set s) -> Hashtbl.replace answers (List.sort compare s) ()
              | _ -> ());
              true)
        in
        check "several distinct MIS" true (Hashtbl.length answers >= 2));
    Alcotest.test_case "max_rounds guard reports deadlock instead of hanging" `Quick (fun () ->
        let g = G.Gen.path 4 in
        let run = Engine.run_packed ~max_rounds:2 Wb_protocols.Bfs_sync.protocol g Adversary.min_id in
        check "deadlock" true (run.Engine.outcome = Engine.Deadlock));
    Alcotest.test_case "message_bits matches stats" `Quick (fun () ->
        let g = G.Gen.random_tree (Prng.create 9) 12 in
        let run = Engine.run_packed Wb_protocols.Build_forest.protocol g Adversary.max_id in
        let bits = Array.to_list run.Engine.message_bits in
        Alcotest.(check int) "max" run.Engine.stats.max_message_bits (List.fold_left max 0 bits);
        Alcotest.(check int) "total" run.Engine.stats.total_bits (List.fold_left ( + ) 0 bits)) ]

(* --- session fault paths: disconnect at round k ------------------------- *)

(* The networked referee's fault path under a surgical fault: node 0's
   connection hangs up at round k, across all four model classes and a
   spread of rounds.  Every such session must (a) end in a typed outcome
   with the hangup recorded as a session fault and a death at a recorded
   site — never an exception — and (b) stay engine-reachable: the crash
   replay at the recorded death sites reproduces the faulted run
   exactly. *)
let disconnect_tests =
  let module C = Wb_chaos in
  let module R = Wb_protocols.Registry in
  let instance key graph =
    match R.find key with
    | None -> Alcotest.failf "protocol %s not registered" key
    | Some e ->
      { C.Campaign.key;
        protocol = e.R.protocol;
        graph;
        graph_desc = "test";
        adversary_name = "random";
        make_adversary = (fun ~seed -> Adversary.random (Prng.create seed));
        max_rounds = None }
  in
  let four_models =
    [ instance "bfs" (G.Gen.random_connected (Prng.create 17) 9 0.3);
      instance "mis" (G.Gen.cycle 8);
      instance "build-naive" (G.Gen.random_gnp (Prng.create 13) 8 0.3);
      instance "eob-bfs" (G.Gen.random_eob (Prng.create 11) 10 0.3) ]
  in
  let is_disconnect (_, (e : C.Inject.entry)) =
    match e.C.Inject.action with C.Inject.Disconnect -> true | C.Inject.Fault _ -> false
  in
  [ Alcotest.test_case "disconnect at round k: typed death + replay, all models" `Quick
      (fun () ->
        List.iter
          (fun inst ->
            let fired = ref 0 in
            List.iter
              (fun k ->
                let plan =
                  { (C.Plan.disconnect ~round:k) with C.Plan.targets = C.Plan.Nodes [ 0 ] }
                in
                let report = C.Campaign.run ~seed:(100 + k) ~runs:2 ~plan inst in
                List.iter
                  (fun (r : C.Campaign.run_record) ->
                    (match r.C.Campaign.mismatches with
                    | [] -> ()
                    | issues ->
                      Alcotest.failf "%s disconnect@%d run %d: replay diverged:\n  %s"
                        inst.C.Campaign.key k r.C.Campaign.index
                        (String.concat "\n  " issues));
                    if List.exists is_disconnect r.C.Campaign.injected then begin
                      incr fired;
                      check
                        (Printf.sprintf "%s disconnect@%d run %d: node 0 died"
                           inst.C.Campaign.key k r.C.Campaign.index)
                        true
                        (List.exists
                           (fun (d : Wb_net.Session.death) -> d.Wb_net.Session.node = 0)
                           r.C.Campaign.deaths);
                      check
                        (Printf.sprintf "%s disconnect@%d run %d: hangup is a typed fault"
                           inst.C.Campaign.key k r.C.Campaign.index)
                        true
                        (List.exists (fun (v, _) -> v = 0) r.C.Campaign.faults)
                    end)
                  report.C.Campaign.records)
              [ 1; 2; 3; 4 ];
            (* the fault path must actually run: runs are long enough that
               some round in 1..4 falls inside every session *)
            check (inst.C.Campaign.key ^ ": disconnect fired at least once") true (!fired > 0))
          four_models) ]

let suites =
  [ ("robust.semantics-regressions", semantics_regression_tests);
    ("robust.corrupted-boards", corrupted_board_tests);
    ("robust.determinism", determinism_tests);
    ("robust.report", report_tests);
    ("robust.codec", codec_tests);
    ("robust.registry-explore", registry_explore_tests);
    ("robust.disconnect", disconnect_tests) ]
