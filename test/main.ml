let () =
  Alcotest.run "whiteboard"
    (List.concat
       [ Test_support.suites;
         Test_bignum.suites;
         Test_graph.suites;
         Test_model.suites;
         Test_protocols.suites;
         Test_reductions.suites;
         Test_sat.suites;
         Test_synth.suites;
         Test_congest.suites;
         Test_extensions.suites;
         Test_robustness.suites;
         Test_obs.suites;
         Test_prof.suites;
         Test_cost.suites;
         Test_bench.suites;
         Test_net.suites;
         Test_chaos.suites;
         Test_lint.suites ])
