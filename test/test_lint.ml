(* The linter lints itself.

   Tier A rules are exercised on inline snippets — violating, suppressed,
   clean, and allowlisted-path variants of each — through
   [Wb_lint.Driver.lint_string], so the expected findings carry exact
   line numbers.  The driver-level project checks (interface coverage,
   unused suppressions) run over throwaway trees on disk, the fixture
   tree under test/lint/fixtures is linted whole and its per-rule counts
   pinned, and the typed tiers are fed the real .cmts dune builds for
   test/lintfix — Tier B on lint_fixture.ml, the whole-program Tier C
   domain-safety solve on the lint_fixture_domain library — so "the
   typed tiers read what the compiler wrote" is itself under test.
   Last, the JSON and SARIF projections round-trip through the
   independent Wb_obs.Json parser. *)

module L = Wb_lint

let det = L.Rules.determinism
let lock = L.Rules.lock_discipline
let dec = L.Rules.decode_hygiene
let allow = L.Rules.lint_allow

let lint ~path src = L.Driver.lint_string ~path src

(* (rule, line) projection: enough to pin both what fired and where. *)
let rules_of findings =
  List.map (fun (f : L.Finding.t) -> (f.rule, f.line)) findings

let check_findings msg expected findings =
  Alcotest.(check (list (pair string int))) msg expected (rules_of findings)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

(* ---- tier A: determinism ------------------------------------------------ *)

let test_determinism () =
  check_findings "Random flagged, right line"
    [ (det, 2) ]
    (lint ~path:"lib/core/foo.ml" "let a = 1\nlet x () = Random.int 3\n");
  check_findings "Hashtbl.hash flagged" [ (det, 1) ]
    (lint ~path:"lib/core/foo.ml" "let h x = Hashtbl.hash x\n");
  check_findings "Sys.time flagged" [ (det, 1) ]
    (lint ~path:"bin/foo.ml" "let t () = Sys.time ()\n");
  check_findings "Unix.gettimeofday flagged" [ (det, 1) ]
    (lint ~path:"examples/foo.ml" "let t () = Unix.gettimeofday ()\n");
  check_findings "explicit Stdlib prefix is stripped" [ (det, 1) ]
    (lint ~path:"lib/core/foo.ml" "let x () = Stdlib.Random.bits ()\n")

let test_determinism_allowlist () =
  List.iter
    (fun path ->
      check_findings (path ^ " may read clocks") []
        (lint ~path "let t () = Unix.gettimeofday ()\n"))
    [ "lib/obs/clock.ml"; "lib/net/conn.ml"; "bench/timing.ml" ]

let test_prof_phase () =
  check_findings "Prof.phase flagged in protocol code" [ (det, 1) ]
    (lint ~path:"lib/protocols/foo.ml" "let f s g = Prof.phase s g\n");
  check_findings "qualified Wb_obs.Prof.phase flagged too" [ (det, 1) ]
    (lint ~path:"lib/protocols/foo.ml" "let f s g = Wb_obs.Prof.phase s g\n");
  check_findings "Prof.site alone is not a clock read" []
    (lint ~path:"lib/protocols/foo.ml" "let s = Wb_obs.Prof.site \"x\"\n");
  List.iter
    (fun path ->
      check_findings (path ^ " may carry profiling hooks") []
        (lint ~path "let f s g = Wb_obs.Prof.phase s g\n"))
    [ "lib/core/machine.ml"; "lib/obs/prof_test.ml"; "lib/net/wire.ml"; "bench/main.ml" ]

let test_determinism_suppressed () =
  check_findings "a well-formed suppression silences the finding" []
    (lint ~path:"lib/core/foo.ml"
       "let x () = (Random.int 3) [@wb.lint.allow \"determinism: test fixture\"]\n")

(* ---- tier A: lock discipline -------------------------------------------- *)

let test_lock () =
  check_findings "raw lock and unlock each flagged"
    [ (lock, 1); (lock, 2) ]
    (lint ~path:"lib/net/server.ml"
       "let f m = Mutex.lock m\nlet g m = Mutex.unlock m\n");
  check_findings "blocking Unix call under with_lock" [ (lock, 1) ]
    (lint ~path:"lib/net/server.ml"
       "let f m fd = with_lock m (fun () -> Unix.select [ fd ] [] [] 1.0)\n");
  check_findings "qualified Sync.with_lock recognised" [ (lock, 1) ]
    (lint ~path:"lib/net/server.ml"
       "let f m fd b = Wb_net.Sync.with_lock m (fun () -> Unix.read fd b 0 1)\n");
  check_findings "the same blocking call outside any lock is fine" []
    (lint ~path:"lib/net/server.ml" "let f fd = Unix.select [ fd ] [] [] 1.0\n");
  check_findings "sync.ml, the combinator's own definition, is exempt" []
    (lint ~path:"lib/net/sync.ml"
       "let with_lock m f = Mutex.lock m; Fun.protect ~finally:(fun () -> Mutex.unlock m) f\n")

(* ---- tier A: decode hygiene --------------------------------------------- *)

let test_decode () =
  check_findings "failwith in a decode function" [ (dec, 1) ]
    (lint ~path:"lib/net/wire.ml" "let decode_op s = failwith s\n");
  check_findings "read*/get* bindings count as decode path"
    [ (dec, 1); (dec, 2) ]
    (lint ~path:"lib/protocols/codec.ml"
       "let read_id r = Option.get r\nlet get_tag r = List.hd r\n");
  check_findings "assert false in a decode function" [ (dec, 1) ]
    (lint ~path:"lib/net/wire.ml" "let decode_op _ = assert false\n");
  check_findings "encode path is not checked" []
    (lint ~path:"lib/net/wire.ml" "let encode_op s = failwith s\n");
  check_findings "only the two decode surfaces are in scope" []
    (lint ~path:"lib/core/engine.ml" "let decode_op s = failwith s\n");
  check_findings "suppression scopes over the expression" []
    (lint ~path:"lib/net/wire.ml"
       "let decode_op s = (failwith s) [@wb.lint.allow \"decode-hygiene: test fixture\"]\n")

(* ---- tier A: suppression hygiene ---------------------------------------- *)

let test_malformed_allow () =
  check_findings
    "missing explanation: the allow is a finding and suppresses nothing"
    [ (det, 1); (allow, 1) ]
    (lint ~path:"lib/core/foo.ml"
       "let x () = (Random.int 3) [@wb.lint.allow \"determinism\"]\n");
  check_findings "unknown rule id is a finding" [ (allow, 1) ]
    (lint ~path:"lib/core/foo.ml"
       "let x = (1 + 1) [@wb.lint.allow \"no-such-rule: why\"]\n")

(* ---- driver: project checks on throwaway trees -------------------------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let test_interface_coverage () =
  let dir = Filename.temp_dir "wblint" "-iface" in
  Unix.mkdir (Filename.concat dir "lib") 0o755;
  write_file (Filename.concat dir "lib/foo.ml") "let x = 1\n";
  let r = L.Driver.run ~roots:[ dir ] () in
  Alcotest.(check (list string)) "missing .mli flagged"
    [ L.Rules.interface_coverage ]
    (List.map (fun (f : L.Finding.t) -> f.rule) r.findings);
  write_file (Filename.concat dir "lib/foo.mli") "val x : int\n";
  let r = L.Driver.run ~roots:[ dir ] () in
  Alcotest.(check int) "a matching .mli satisfies the rule" 0
    (List.length r.findings)

let test_unused_allow () =
  let dir = Filename.temp_dir "wblint" "-unused" in
  let file = Filename.concat dir "a.ml" in
  write_file file
    "let x = (1 + 1) [@wb.lint.allow \"determinism: nothing here to silence\"]\n";
  let r = L.Driver.run ~roots:[ dir ] () in
  (match r.findings with
  | [ f ] -> Alcotest.(check string) "unused allow is a finding" allow f.rule
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs));
  (* A typed-rule suppression must not be called unused when no .cmt ran:
     only the typed tier could have consumed it. *)
  write_file file
    "let x = (1 + 1) [@wb.lint.allow \"poly-compare: typed tier will judge\"]\n";
  let r = L.Driver.run ~roots:[ dir ] () in
  Alcotest.(check int) "typed-rule allow spared without a .cmt" 0
    (List.length r.findings)

(* ---- driver: the on-disk fixture tree ----------------------------------- *)

(* dune copies test/lint into the build dir (source_tree dep on the test),
   so the tree is at lint/fixtures relative to the test's cwd.  Keep the
   counts in sync with test/check_lint.ml, which pins the same numbers on
   the wblint CLI's --json output. *)
let fixture_root = "lint/fixtures"

let expected_fixture_counts =
  [ (det, 6); (lock, 3); (dec, 3); (L.Rules.interface_coverage, 2); (allow, 2) ]

let count rule findings =
  List.length (List.filter (fun (f : L.Finding.t) -> String.equal f.rule rule) findings)

let test_fixture_tree () =
  let r = L.Driver.run ~roots:[ fixture_root ] () in
  Alcotest.(check int) "seven fixture files scanned" 7 (List.length r.files);
  List.iter
    (fun (rule, n) ->
      Alcotest.(check int) (rule ^ " findings") n (count rule r.findings))
    expected_fixture_counts;
  Alcotest.(check int) "no finding outside the pinned rules" 16
    (List.length r.findings)

(* ---- tier B: a real .cmt ------------------------------------------------ *)

(* The fixture library's .cmt, relative to the test's cwd in _build; the
   test stanza depends on it explicitly so dune builds it first. *)
let fixture_cmt = "lintfix/.lint_fixture.objs/byte/lint_fixture.cmt"

(* Keep in sync with the layout of test/lintfix/lint_fixture.ml. *)
let poly_eq_line = 8
let lookup_line = 19
let suppressed_line = 13

let test_typed_fixture () =
  match L.Typed.lint_cmt_file ~load_root:".." fixture_cmt with
  | Error e -> Alcotest.failf "cannot lint %s: %s" fixture_cmt e
  | Ok findings ->
    List.iter
      (fun (f : L.Finding.t) ->
        Alcotest.(check string) "only poly-compare fires" L.Rules.poly_compare f.rule)
      findings;
    let lines = List.sort Int.compare (List.map (fun (f : L.Finding.t) -> f.line) findings) in
    Alcotest.(check (list int)) "the seeded = and the record-keyed Hashtbl, nothing else"
      [ poly_eq_line; lookup_line ] lines;
    Alcotest.(check bool) "the suppressed = is spared" false
      (List.mem suppressed_line lines);
    List.iter
      (fun (f : L.Finding.t) ->
        if f.line = poly_eq_line then
          Alcotest.(check bool) "= finding names the record type" true
            (contains f.message "type r");
        if f.line = lookup_line then
          Alcotest.(check bool) "Hashtbl finding names the operation" true
            (contains f.message "Hashtbl.find_opt"))
      findings

(* ---- tier C: whole-program domain-safety over real .cmts ---------------- *)

(* The deliberately-racy fixture library's .cmts (dune builds them as test
   deps).  The pipeline below is the same one Driver.run wires: per-unit
   catalog + escape state while each .cmt's load path is active, then
   wrappers over all units, then the global solve. *)
let domain_cmt unit =
  Printf.sprintf "lintfix/.lint_fixture_domain.objs/byte/lint_fixture_domain__%s.cmt" unit

let domain_units = [ "Dls_clean"; "Lockset_tables"; "Racy_ref"; "Suppressed_ok" ]

let tierc_solve () =
  let retained =
    List.map
      (fun unit ->
        let path = domain_cmt unit in
        match L.Typed.read path with
        | Error e -> Alcotest.failf "cannot read %s: %s" path e
        | Ok cmt ->
          let str =
            match L.Typed.structure_of cmt with
            | Some s -> s
            | None -> Alcotest.failf "%s: not an implementation" path
          in
          L.Typed.init_load_path ~load_root:".." cmt;
          let unit_path = L.Catalog.canon [ "Lint_fixture_domain__" ^ unit ] in
          let ctx = L.Allow.create () in
          let source = Option.value cmt.L.Typed.source ~default:path in
          let info = L.Catalog.scan ~ctx ~unit_path ~source str in
          let st = L.Escape.state_of ~unit_path str in
          (unit, ctx, unit_path, str, st, info))
      domain_units
  in
  let wrappers =
    List.concat_map
      (fun (_, _, unit_path, str, st, _) -> L.Escape.wrappers_of ~st ~unit_path str)
      retained
  in
  let wrapper_tbl = Hashtbl.create 4 in
  List.iter (fun (n, l) -> Hashtbl.replace wrapper_tbl n l) wrappers;
  let summaries, spawns, unresolved =
    List.fold_left
      (fun (sums, sps, unres) (unit, ctx, unit_path, str, st, _) ->
        let s, sp, u =
          L.Escape.summarize ~st ~wrappers:wrapper_tbl ~ctx
            ~source:("test/lintfix/" ^ String.lowercase_ascii unit ^ ".ml")
            ~unit_path str
        in
        (s @ sums, sp @ sps, u + unres))
      ([], [], 0) retained
  in
  let findings, stats =
    L.Locks.solve
      { L.Locks.catalog = List.map (fun (_, ctx, _, _, _, info) -> (info, ctx)) retained;
        all_summaries = summaries;
        all_spawns = spawns;
        wrappers;
        unresolved }
  in
  (retained, findings, stats)

(* Keep in sync with the fixture layouts (each pins its lines in a header
   comment) and with the @check-lint Tier C gate in the root dune file. *)
let expected_tierc =
  [ ("lockset_tables.ml", L.Locks.kind_lockset, 10);
    ("lockset_tables.ml", L.Locks.kind_escape, 19);
    ("racy_ref.ml", L.Locks.kind_unguarded, 8);
    ("racy_ref.ml", L.Locks.kind_escape, 13) ]

let test_tierc_findings () =
  let _, findings, _ = tierc_solve () in
  List.iter
    (fun (f : L.Finding.t) ->
      Alcotest.(check string) "every Tier C finding carries the rule"
        L.Rules.domain_safety f.rule)
    findings;
  Alcotest.(check (list (triple string string int)))
    "exactly the seeded races, by kind and line"
    expected_tierc
    (List.map
       (fun (f : L.Finding.t) -> (Filename.basename f.file, f.kind, f.line))
       findings);
  List.iter
    (fun (f : L.Finding.t) ->
      match (Filename.basename f.file, f.kind) with
      | "lockset_tables.ml", k when String.equal k L.Locks.kind_lockset ->
        Alcotest.(check bool) "lockset finding names both locks" true
          (contains f.message "lock_a" && contains f.message "lock_b")
      | "lockset_tables.ml", _ ->
        Alcotest.(check bool) "escape finding shows the call path" true
          (contains f.message "via Lint_fixture_domain.Lockset_tables.put")
      | "racy_ref.ml", k when String.equal k L.Locks.kind_unguarded ->
        Alcotest.(check bool) "unguarded finding names the access site" true
          (contains f.message "Racy_ref.bump")
      | _ ->
        Alcotest.(check bool) "escape finding names the entry" true
          (contains f.message "`Lint_fixture_domain.Racy_ref.hits`"))
    findings

let test_tierc_negatives () =
  let _, findings, _ = tierc_solve () in
  List.iter
    (fun (f : L.Finding.t) ->
      Alcotest.(check bool)
        "DLS + Atomic + one consistent lock stays silent; the suppressed \
         ref stays silent" false
        (contains f.message "Dls_clean" || contains f.message "Suppressed_ok"))
    findings

let test_tierc_stats () =
  let _, _, (s : L.Locks.stats) = tierc_solve () in
  Alcotest.(check int) "four units analysed" 4 s.units;
  (* hits, counts, log, scratch: the annotated Hashtbls must be seen too
     ([let x : ty = e] binds through Tpat_alias, not Tpat_var). *)
  Alcotest.(check int) "four shared-mutable entries" 4 s.entries_mutable;
  Alcotest.(check int) "one suppressed raceable entry" 1 s.entries_suppressed;
  Alcotest.(check int) "four spawn sites" 4 s.spawn_sites;
  Alcotest.(check int) "every qualified reference canonicalised" 0
    s.unresolved_refs

let test_tierc_suppression_used () =
  let retained, _, _ = tierc_solve () in
  List.iter
    (fun (unit, ctx, _, _, _, _) ->
      Alcotest.(check int)
        (unit ^ ": consumed suppressions are not reported unused") 0
        (List.length (L.Allow.unused_findings ~typed_ran:true ctx)))
    retained

(* ---- output projections ------------------------------------------------- *)

let test_json_roundtrip () =
  let r = L.Driver.run ~roots:[ fixture_root ] () in
  match Wb_obs.Json.of_string (Wb_obs.Json.to_string (L.Driver.to_json r)) with
  | Error e -> Alcotest.failf "report JSON does not re-parse: %s" e
  | Ok parsed ->
    (match Wb_obs.Json.to_int (Wb_obs.Json.get "version" parsed) with
    | Some 2 -> ()
    | v -> Alcotest.failf "report version: expected 2, got %s"
             (match v with Some n -> string_of_int n | None -> "none"));
    (match Wb_obs.Json.to_list (Wb_obs.Json.get "findings" parsed) with
    | Some _ -> ()
    | None -> Alcotest.fail "findings is not a list");
    (* per-rule wall time: at least the syntactic pass must be timed *)
    (match Wb_obs.Json.member "timings_us" parsed with
    | Some (Wb_obs.Json.Obj kvs) ->
      Alcotest.(check bool) "syntactic pass timed" true
        (List.mem_assoc "syntactic" kvs)
    | _ -> Alcotest.fail "timings_us is not an object");
    let raw =
      match Wb_obs.Json.to_list (Wb_obs.Json.get "findings" parsed) with
      | Some l -> l
      | None -> Alcotest.fail "findings is not a list"
    in
    let back = List.filter_map L.Finding.of_json raw in
    Alcotest.(check int) "every finding survives the round-trip"
      (List.length r.findings) (List.length back);
    List.iter2
      (fun a b ->
        Alcotest.(check int) "structurally identical" 0 (L.Finding.compare a b))
      r.findings back

let test_sarif () =
  let r = L.Driver.run ~roots:[ fixture_root ] () in
  match Wb_obs.Json.of_string (Wb_obs.Json.to_string (L.Driver.to_sarif r)) with
  | Error e -> Alcotest.failf "SARIF does not re-parse: %s" e
  | Ok sarif ->
    (match Wb_obs.Json.member "version" sarif with
    | Some (Wb_obs.Json.String "2.1.0") -> ()
    | _ -> Alcotest.fail "SARIF version must be 2.1.0");
    let run0 =
      match Wb_obs.Json.to_list (Wb_obs.Json.get "runs" sarif) with
      | Some [ r ] -> r
      | _ -> Alcotest.fail "SARIF must carry exactly one run"
    in
    (match
       Wb_obs.Json.member "name"
         (Wb_obs.Json.get "driver" (Wb_obs.Json.get "tool" run0))
     with
    | Some (Wb_obs.Json.String "wblint") -> ()
    | _ -> Alcotest.fail "tool.driver.name must be wblint");
    let results =
      match Wb_obs.Json.to_list (Wb_obs.Json.get "results" run0) with
      | Some l -> l
      | None -> Alcotest.fail "results is not a list"
    in
    Alcotest.(check int) "one SARIF result per finding"
      (List.length r.findings) (List.length results);
    List.iter
      (fun res ->
        match Wb_obs.Json.member "ruleId" res with
        | Some (Wb_obs.Json.String _) -> ()
        | _ -> Alcotest.fail "every result carries a ruleId")
      results

let test_to_string () =
  match lint ~path:"lib/core/foo.ml" "let x () = Random.int 3\n" with
  | [ f ] ->
    Alcotest.(check bool) "compiler-style file:line:col prefix" true
      (contains (L.Finding.to_string f) "lib/core/foo.ml:1:11: [determinism]")
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let suites =
  [ ( "lint.syntactic",
      [ Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "determinism allowlist" `Quick test_determinism_allowlist;
        Alcotest.test_case "Prof.phase placement" `Quick test_prof_phase;
        Alcotest.test_case "determinism suppressed" `Quick test_determinism_suppressed;
        Alcotest.test_case "lock discipline" `Quick test_lock;
        Alcotest.test_case "decode hygiene" `Quick test_decode;
        Alcotest.test_case "malformed suppressions" `Quick test_malformed_allow ] );
    ( "lint.driver",
      [ Alcotest.test_case "interface coverage" `Quick test_interface_coverage;
        Alcotest.test_case "unused suppressions" `Quick test_unused_allow;
        Alcotest.test_case "fixture tree counts" `Quick test_fixture_tree ] );
    ( "lint.typed",
      [ Alcotest.test_case "seeded .cmt findings" `Quick test_typed_fixture ] );
    ( "lint.domain-safety",
      [ Alcotest.test_case "seeded races, by kind and line" `Quick test_tierc_findings;
        Alcotest.test_case "blessed idioms stay silent" `Quick test_tierc_negatives;
        Alcotest.test_case "whole-program stats" `Quick test_tierc_stats;
        Alcotest.test_case "entry suppression is consumed" `Quick
          test_tierc_suppression_used ] );
    ( "lint.output",
      [ Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "sarif projection" `Quick test_sarif;
        Alcotest.test_case "to_string format" `Quick test_to_string ] ) ]
