open Wb_model
module G = Wb_graph
module Prng = Wb_support.Prng

let qtest = QCheck_alcotest.to_alcotest

let check = Alcotest.(check bool)

let seeded = QCheck.small_int

(* Run [protocol] on [g] under one seeded adversary and validate against the
   problem's checker. *)
let run_valid protocol problem g seed =
  let rng = Prng.create seed in
  let run = Engine.run_packed protocol g (Adversary.random rng) in
  match run.Engine.outcome with
  | Engine.Success a -> Problems.valid_answer problem g a
  | Engine.Deadlock | Engine.Size_violation _ | Engine.Output_error _ -> false

(* Validate under EVERY adversarial schedule (small n only). *)
let explore_valid ?limit protocol problem g =
  let ok, _count =
    Engine.explore_packed_exn ?limit protocol g (fun r ->
        match r.Engine.outcome with
        | Engine.Success a -> Problems.valid_answer problem g a
        | Engine.Deadlock | Engine.Size_violation _ | Engine.Output_error _ -> false)
  in
  ok

let stress_adversaries protocol problem g =
  let strategies =
    [ Adversary.min_id;
      Adversary.max_id;
      Adversary.alternating_extremes;
      Adversary.last_writer_neighbor_avoider g;
      Adversary.random (Prng.create 99) ]
  in
  List.for_all
    (fun adv ->
      match (Engine.run_packed protocol g adv).Engine.outcome with
      | Engine.Success a -> Problems.valid_answer problem g a
      | _ -> false)
    strategies

let decode_tests =
  [ qtest
      (QCheck.Test.make ~name:"Wright: power sums determine the subset (backtracking)" ~count:300
         QCheck.(triple seeded (int_range 1 5) (int_range 10 60))
         (fun (seed, k, n) ->
           let rng = Prng.create seed in
           let d = Prng.int rng (k + 1) in
           let ids =
             Array.to_list (Array.map (fun v -> v + 1) (Prng.sample_without_replacement rng d n))
           in
           let sums = Wb_protocols.Decode.power_sums ~k ids in
           Wb_protocols.Decode.decode_backtracking ~n ~d sums = Some ids));
    qtest
      (QCheck.Test.make ~name:"lookup table decoder agrees" ~count:100
         QCheck.(pair seeded (int_range 1 3))
         (fun (seed, k) ->
           let n = 14 in
           let rng = Prng.create seed in
           let d = Prng.int rng (k + 1) in
           let ids =
             Array.to_list (Array.map (fun v -> v + 1) (Prng.sample_without_replacement rng d n))
           in
           let sums = Wb_protocols.Decode.power_sums ~k ids in
           let table = Wb_protocols.Decode.Table.build ~n ~k in
           Wb_protocols.Decode.Table.decode table ~d sums = Some ids));
    Alcotest.test_case "inconsistent sums decode to None" `Quick (fun () ->
        let sums = Wb_protocols.Decode.power_sums ~k:2 [ 3; 5 ] in
        (* d = 1 cannot realise the two-element sums *)
        check "none" true (Wb_protocols.Decode.decode_backtracking ~n:10 ~d:1 sums = None));
    Alcotest.test_case "subtract_member prunes" `Quick (fun () ->
        let sums = Wb_protocols.Decode.power_sums ~k:3 [ 2; 4; 9 ] in
        let sums = Wb_protocols.Decode.subtract_member sums 4 in
        check "decodes the rest" true
          (Wb_protocols.Decode.decode_backtracking ~n:10 ~d:2 sums = Some [ 2; 9 ]));
    Alcotest.test_case "subtract_member detects underflow" `Quick (fun () ->
        let sums = Wb_protocols.Decode.power_sums ~k:2 [ 1 ] in
        Alcotest.check_raises "underflow"
          (Invalid_argument "Decode.subtract_member: inconsistent sums") (fun () ->
            ignore (Wb_protocols.Decode.subtract_member sums 5))) ]

let build_forest_tests =
  [ qtest
      (QCheck.Test.make ~name:"reconstructs random trees" ~count:100
         QCheck.(pair seeded (int_range 1 80))
         (fun (seed, n) ->
           let g = G.Gen.random_tree (Prng.create seed) n in
           run_valid Wb_protocols.Build_forest.protocol Problems.Build g (seed + 1)));
    qtest
      (QCheck.Test.make ~name:"reconstructs random forests" ~count:100
         QCheck.(pair seeded (int_range 1 60))
         (fun (seed, n) ->
           let g = G.Gen.random_forest (Prng.create seed) n ~keep:0.5 in
           run_valid Wb_protocols.Build_forest.protocol Problems.Build g (seed + 1)));
    Alcotest.test_case "exhaustive schedules on a small forest" `Quick (fun () ->
        let g = G.Graph.of_edges 5 [ (0, 3); (3, 1) ] in
        check "all schedules" true (explore_valid Wb_protocols.Build_forest.protocol Problems.Build g));
    qtest
      (QCheck.Test.make ~name:"rejects graphs with cycles" ~count:100
         QCheck.(pair seeded (int_range 3 40))
         (fun (seed, n) ->
           let rng = Prng.create seed in
           (* a tree plus one extra edge always has a cycle *)
           let t = G.Gen.random_tree rng n in
           let rec extra () =
             let u = Prng.int rng n and v = Prng.int rng n in
             if u <> v && not (G.Graph.mem_edge t u v) then (u, v) else extra ()
           in
           let g = if n >= 3 then G.Graph.extend t ~extra:0 ~new_edges:[ extra () ] else t in
           let run = Engine.run_packed Wb_protocols.Build_forest.protocol g (Adversary.random rng) in
           run.Engine.outcome = Engine.Success Answer.Reject));
    Alcotest.test_case "message size is O(log n): within bound and small" `Quick (fun () ->
        let g = G.Gen.random_tree (Prng.create 5) 500 in
        let run = Engine.run_packed Wb_protocols.Build_forest.protocol g Adversary.min_id in
        check "success" true (Engine.succeeded run);
        check "small messages" true (run.Engine.stats.max_message_bits <= 4 * 10 (* 4 log n *))) ]

let build_degenerate_tests =
  let protocol k = Wb_protocols.Build_degenerate.protocol ~k ~decoder:`Backtracking in
  [ qtest
      (QCheck.Test.make ~name:"reconstructs k-trees (k=1..4)" ~count:60
         QCheck.(pair seeded (int_range 1 4))
         (fun (seed, k) ->
           let g = G.Gen.random_ktree (Prng.create seed) (k + 12) ~k in
           run_valid (protocol k) Problems.Build g (seed + 1)));
    qtest
      (QCheck.Test.make ~name:"reconstructs random k-degenerate graphs" ~count:60
         QCheck.(pair seeded (int_range 1 5))
         (fun (seed, k) ->
           let g = G.Gen.random_kdegenerate (Prng.create seed) 25 ~k in
           run_valid (protocol k) Problems.Build g (seed + 1)));
    qtest
      (QCheck.Test.make ~name:"planar Apollonian graphs via k=3" ~count:40 seeded (fun seed ->
           let g = G.Gen.apollonian (Prng.create seed) 24 in
           run_valid (protocol 3) Problems.Build g (seed + 1)));
    qtest
      (QCheck.Test.make ~name:"table decoder gives identical runs" ~count:30 seeded (fun seed ->
           let g = G.Gen.random_ktree (Prng.create seed) 12 ~k:2 in
           run_valid (Wb_protocols.Build_degenerate.protocol ~k:2 ~decoder:`Table) Problems.Build g
             (seed + 1)));
    Alcotest.test_case "rejects too-dense graphs (K6 with k=3)" `Quick (fun () ->
        let run = Engine.run_packed (protocol 3) (G.Gen.complete 6) Adversary.min_id in
        check "reject" true (run.Engine.outcome = Engine.Success Answer.Reject));
    qtest
      (QCheck.Test.make ~name:"robust recognition: accepts iff degeneracy <= k" ~count:80
         QCheck.(pair seeded (int_range 1 3))
         (fun (seed, k) ->
           let g = G.Gen.random_gnp (Prng.create seed) 14 0.3 in
           let actual, _ = G.Algo.degeneracy g in
           let run = Engine.run_packed (protocol k) g (Adversary.random (Prng.create (seed + 1))) in
           match run.Engine.outcome with
           | Engine.Success (Answer.Graph h) -> actual <= k && G.Graph.equal g h
           | Engine.Success Answer.Reject -> actual > k
           | _ -> false));
    Alcotest.test_case "exhaustive schedules on a small 2-tree" `Quick (fun () ->
        let g = G.Gen.random_ktree (Prng.create 7) 5 ~k:2 in
        check "all schedules" true (explore_valid (protocol 2) Problems.Build g));
    Alcotest.test_case "messages respect the declared O(k^2 log n) bound" `Quick (fun () ->
        List.iter
          (fun k ->
            let g = G.Gen.random_ktree (Prng.create k) 200 ~k in
            let p = protocol k in
            let run = Engine.run_packed p g Adversary.max_id in
            check (Printf.sprintf "k=%d success" k) true (Engine.succeeded run))
          [ 1; 2; 3; 4; 5 ]) ]

let mis_tests =
  let protocol root = Wb_protocols.Mis_simsync.protocol ~root in
  [ qtest
      (QCheck.Test.make ~name:"valid rooted MIS on gnp under random schedules" ~count:150
         QCheck.(triple seeded (int_range 0 19) (int_range 0 100))
         (fun (seed, root, p100) ->
           let g = G.Gen.random_gnp (Prng.create seed) 20 (float_of_int p100 /. 100.0) in
           run_valid (protocol root) (Problems.Rooted_mis root) g (seed + 1)));
    Alcotest.test_case "exhaustive schedules, several graphs" `Quick (fun () ->
        List.iter
          (fun g ->
            check "all schedules" true (explore_valid (protocol 0) (Problems.Rooted_mis 0) g))
          [ G.Gen.cycle 5; G.Gen.path 5; G.Gen.complete 4; G.Gen.star 5 ]);
    Alcotest.test_case "adversary stress on petersen" `Quick (fun () ->
        check "stress" true
          (stress_adversaries (protocol 3) (Problems.Rooted_mis 3) (G.Gen.petersen ())));
    Alcotest.test_case "root always in the set; clique yields singleton+root" `Quick (fun () ->
        let g = G.Gen.complete 6 in
        let run = Engine.run_packed (protocol 2) g Adversary.max_id in
        (match run.Engine.outcome with
        | Engine.Success (Answer.Node_set s) -> Alcotest.(check (list int)) "just the root" [ 2 ] s
        | _ -> Alcotest.fail "failed")) ]

let two_cliques_tests =
  let protocol = Wb_protocols.Two_cliques_simsync.protocol in
  [ qtest
      (QCheck.Test.make ~name:"yes on shuffled two-cliques" ~count:80
         QCheck.(pair seeded (int_range 2 12))
         (fun (seed, half) ->
           let g = G.Gen.two_cliques_shuffled (Prng.create seed) half in
           run_valid protocol Problems.Two_cliques g (seed + 1)));
    qtest
      (QCheck.Test.make ~name:"no on K_{h,h} minus matching" ~count:40
         QCheck.(pair seeded (int_range 2 12))
         (fun (seed, half) ->
           run_valid protocol Problems.Two_cliques (G.Gen.near_two_cliques half) seed));
    Alcotest.test_case "exhaustive schedules both ways" `Quick (fun () ->
        check "yes instance" true (explore_valid protocol Problems.Two_cliques (G.Gen.two_cliques 3));
        check "no instance" true
          (explore_valid ~limit:1_000_000 protocol Problems.Two_cliques (G.Gen.near_two_cliques 3)));
    Alcotest.test_case "the all-R-then-L schedule does not fool the protocol" `Quick (fun () ->
        (* This is the adversarial order that defeats the paper's prose
           version (every node labels 0); the size check catches it. *)
        let half = 5 in
        let g = G.Gen.near_two_cliques half in
        let priorities = Array.init (2 * half) (fun v -> if v >= half then 100 + v else v) in
        let run = Engine.run_packed protocol g (Adversary.by_priority priorities) in
        check "answers no" true (run.Engine.outcome = Engine.Success (Answer.Bool false))) ]

let bfs_layer_tests =
  let bfs = Wb_protocols.Bfs_sync.protocol in
  [ qtest
      (QCheck.Test.make ~name:"SYNC BFS valid on connected gnp" ~count:100
         QCheck.(pair seeded (int_range 2 40))
         (fun (seed, n) ->
           let g = G.Gen.random_connected (Prng.create seed) n 0.1 in
           run_valid bfs Problems.Bfs g (seed + 1)));
    qtest
      (QCheck.Test.make ~name:"SYNC BFS valid on disconnected gnp" ~count:100
         QCheck.(pair seeded (int_range 2 30))
         (fun (seed, n) ->
           let g = G.Gen.random_gnp (Prng.create seed) n 0.08 in
           run_valid bfs Problems.Bfs g (seed + 1)));
    Alcotest.test_case "exhaustive schedules: odd cycles, cliques, paths, isolated" `Quick
      (fun () ->
        List.iter
          (fun g -> check "all schedules" true (explore_valid bfs Problems.Bfs g))
          [ G.Gen.cycle 5;
            G.Gen.complete 4;
            G.Gen.path 6;
            G.Graph.empty 4;
            G.Graph.of_edges 6 [ (0, 1); (0, 2); (1, 2); (1, 3); (3, 4) ] ]);
    Alcotest.test_case "adversary stress on petersen and grid" `Quick (fun () ->
        check "petersen" true (stress_adversaries bfs Problems.Bfs (G.Gen.petersen ()));
        check "grid" true (stress_adversaries bfs Problems.Bfs (G.Gen.grid 4 5)));
    Alcotest.test_case "nodes write in layer order" `Quick (fun () ->
        let g = G.Gen.grid 3 4 in
        let dist = G.Algo.bfs_dist g 0 in
        let run = Engine.run_packed bfs g (Adversary.random (Prng.create 3)) in
        check "success" true (Engine.succeeded run);
        let last_layer = ref (-1) in
        Array.iter
          (fun author ->
            check "monotone layers" true (dist.(author) >= !last_layer);
            last_layer := dist.(author))
          run.Engine.writes) ]

let eob_bfs_tests =
  let eob = Wb_protocols.Eob_bfs_async.protocol in
  [ qtest
      (QCheck.Test.make ~name:"valid on random EOB graphs" ~count:100
         QCheck.(pair seeded (int_range 2 40))
         (fun (seed, n) ->
           let g = G.Gen.random_eob (Prng.create seed) n 0.3 in
           run_valid eob Problems.Eob_bfs g (seed + 1)));
    qtest
      (QCheck.Test.make ~name:"rejects non-EOB graphs without deadlock" ~count:100 seeded
         (fun seed ->
           let rng = Prng.create seed in
           let g = G.Gen.random_connected rng 12 0.2 in
           if G.Algo.is_even_odd_bipartite g then true
           else run_valid eob Problems.Eob_bfs g (seed + 1)));
    Alcotest.test_case "exhaustive schedules: EOB path and non-EOB triangle" `Quick (fun () ->
        check "path" true (explore_valid eob Problems.Eob_bfs (G.Gen.path 5));
        check "triangle" true (explore_valid eob Problems.Eob_bfs (G.Gen.cycle 3));
        check "two components" true
          (explore_valid eob Problems.Eob_bfs (G.Graph.of_edges 5 [ (0, 1); (2, 3) ])));
    Alcotest.test_case "adversary stress on multi-component EOB" `Quick (fun () ->
        let g = G.Graph.of_edges 9 [ (0, 1); (1, 2); (4, 5); (7, 8) ] in
        check "stress" true (stress_adversaries eob Problems.Eob_bfs g)) ]

let bipartite_async_tests =
  let bip = Wb_protocols.Bfs_bipartite_async.protocol in
  [ qtest
      (QCheck.Test.make ~name:"valid BFS forests on random bipartite graphs" ~count:100
         QCheck.(pair seeded (int_range 1 15))
         (fun (seed, half) ->
           let g = G.Gen.random_bipartite (Prng.create seed) half half 0.3 in
           run_valid bip Problems.Bfs g (seed + 1)));
    Alcotest.test_case "deadlocks on the odd-cycle-plus-tail witness" `Quick (fun () ->
        (* triangle 0-1-2, 1-3, 3-4: node 4 waits on a layer-completion
           certificate that within-layer edges make unreachable — the
           corrupted configurations of Section 6. *)
        let g = G.Graph.of_edges 5 [ (0, 1); (0, 2); (1, 2); (1, 3); (3, 4) ] in
        let ok, _ =
          Engine.explore_packed_exn bip g (fun r -> r.Engine.outcome = Engine.Deadlock)
        in
        check "every schedule deadlocks" true ok);
    Alcotest.test_case "exhaustive schedules on even cycles" `Quick (fun () ->
        check "C6" true (explore_valid bip Problems.Bfs (G.Gen.cycle 6))) ]

let connectivity_tests =
  let conn = Wb_protocols.Connectivity_sync.protocol in
  [ qtest
      (QCheck.Test.make ~name:"agrees with reference on gnp" ~count:150
         QCheck.(pair seeded (int_range 1 25))
         (fun (seed, n) ->
           let g = G.Gen.random_gnp (Prng.create seed) n 0.1 in
           run_valid conn Problems.Connectivity g (seed + 1)));
    Alcotest.test_case "exhaustive schedules" `Quick (fun () ->
        check "connected" true (explore_valid conn Problems.Connectivity (G.Gen.cycle 4));
        check "disconnected" true
          (explore_valid conn Problems.Connectivity (G.Graph.of_edges 4 [ (0, 1); (2, 3) ]))) ]

let subgraph_tests =
  [ qtest
      (QCheck.Test.make ~name:"extracts the prefix subgraph" ~count:100
         QCheck.(pair seeded (int_range 1 30))
         (fun (seed, n) ->
           let cutoff m = m / 2 in
           let g = G.Gen.random_gnp (Prng.create seed) n 0.4 in
           run_valid
             (Wb_protocols.Subgraph_simasync.protocol ~cutoff)
             (Problems.Subgraph (cutoff n))
             g (seed + 1)));
    Alcotest.test_case "message bound scales with f, not n" `Quick (fun () ->
        let cutoff _ = 8 in
        let p = Wb_protocols.Subgraph_simasync.protocol ~cutoff in
        let g = G.Gen.random_gnp (Prng.create 3) 200 0.02 in
        let run = Engine.run_packed p g Adversary.min_id in
        check "success" true (Engine.succeeded run);
        check "tiny messages" true (run.Engine.stats.max_message_bits <= 8 + 20)) ]

let randomized_tests =
  [ qtest
      (QCheck.Test.make ~name:"randomized two-cliques: correct w.h.p. both ways" ~count:60
         QCheck.(pair seeded (int_range 2 10))
         (fun (seed, half) ->
           let p = Wb_protocols.Two_cliques_randomized.protocol ~seed ~bits:24 in
           let yes = G.Gen.two_cliques_shuffled (Prng.create seed) half in
           let no = G.Gen.near_two_cliques half in
           run_valid p Problems.Two_cliques yes (seed + 1)
           && run_valid p Problems.Two_cliques no (seed + 2)));
    Alcotest.test_case "tiny fingerprints do collide eventually" `Quick (fun () ->
        (* With 1-bit fingerprints some seed must merge the two cliques'
           classes: demonstrates the error mechanism is real. *)
        let g = G.Gen.two_cliques 4 in
        let failures = ref 0 in
        for seed = 0 to 63 do
          let p = Wb_protocols.Two_cliques_randomized.protocol ~seed ~bits:1 in
          let run = Engine.run_packed p g Adversary.min_id in
          if run.Engine.outcome <> Engine.Success (Answer.Bool true) then incr failures
        done;
        check "some seed fails" true (!failures > 0)) ]

let triangle_degenerate_tests =
  [ qtest
      (QCheck.Test.make ~name:"triangle via BUILD on the promise class" ~count:60
         QCheck.(pair seeded (int_range 1 3))
         (fun (seed, k) ->
           let g = G.Gen.random_kdegenerate (Prng.create seed) 18 ~k in
           let p = Wb_protocols.Triangle_degenerate.protocol ~k in
           let run = Engine.run_packed p g (Adversary.random (Prng.create (seed + 1))) in
           run.Engine.outcome = Engine.Success (Answer.Bool (G.Algo.has_triangle g))));
    Alcotest.test_case "rejects off-promise inputs" `Quick (fun () ->
        let p = Wb_protocols.Triangle_degenerate.protocol ~k:2 in
        let run = Engine.run_packed p (G.Gen.complete 5) Adversary.min_id in
        check "reject" true (run.Engine.outcome = Engine.Success Answer.Reject)) ]

let registry_tests =
  [ Alcotest.test_case "every entry runs green on a promise-respecting instance" `Quick (fun () ->
        let rng = Prng.create 2024 in
        List.iter
          (fun (e : Wb_protocols.Registry.entry) ->
            let g =
              match e.promise with
              | Wb_protocols.Registry.Forest -> G.Gen.random_tree rng 16
              | Wb_protocols.Registry.Degeneracy_at_most k -> G.Gen.random_kdegenerate rng 16 ~k
              | Wb_protocols.Registry.Split_degeneracy_at_most k ->
                G.Gen.random_split_degenerate rng 16 ~k
              | Wb_protocols.Registry.Even_odd_bipartite -> G.Gen.random_eob rng 16 0.3
              | Wb_protocols.Registry.Bipartite -> G.Gen.random_bipartite rng 8 8 0.3
              | Wb_protocols.Registry.Regular_two_half -> G.Gen.two_cliques 8
              | Wb_protocols.Registry.Any_graph -> G.Gen.random_gnp rng 16 0.25
            in
            check (e.key ^ " promise sat") true (Wb_protocols.Registry.satisfies_promise e.promise g);
            let run = Engine.run_packed e.protocol g (Adversary.random rng) in
            match run.Engine.outcome with
            | Engine.Success a ->
              check (e.key ^ " valid") true (Problems.valid_answer (e.problem 16) g a)
            | _ -> Alcotest.failf "%s did not succeed" e.key)
          (Wb_protocols.Registry.all ()));
    Alcotest.test_case "find works" `Quick (fun () ->
        check "bfs" true (Wb_protocols.Registry.find "bfs" <> None);
        check "nope" true (Wb_protocols.Registry.find "no-such" = None)) ]

let message_bound_tests =
  [ Alcotest.test_case "all registry protocols stay within their declared bound" `Quick (fun () ->
        (* The engine turns violations into failures, so success here means
           the declared f(n) really covers the worst message composed. *)
        let rng = Prng.create 7 in
        List.iter
          (fun (e : Wb_protocols.Registry.entry) ->
            let g =
              match e.promise with
              | Wb_protocols.Registry.Forest -> G.Gen.random_tree rng 128
              | Wb_protocols.Registry.Degeneracy_at_most k -> G.Gen.random_ktree rng 128 ~k
              | Wb_protocols.Registry.Split_degeneracy_at_most k ->
                G.Gen.random_split_degenerate rng 128 ~k
              | Wb_protocols.Registry.Even_odd_bipartite -> G.Gen.random_eob rng 128 0.1
              | Wb_protocols.Registry.Bipartite -> G.Gen.random_bipartite rng 64 64 0.1
              | Wb_protocols.Registry.Regular_two_half -> G.Gen.two_cliques 64
              | Wb_protocols.Registry.Any_graph -> G.Gen.random_connected rng 128 0.05
            in
            let run = Engine.run_packed e.protocol g (Adversary.random rng) in
            check (e.key ^ " no size violation") true (Engine.succeeded run))
          (Wb_protocols.Registry.all ())) ]

let suites =
  [ ("protocols.decode", decode_tests);
    ("protocols.build-forest", build_forest_tests);
    ("protocols.build-degenerate", build_degenerate_tests);
    ("protocols.mis", mis_tests);
    ("protocols.two-cliques", two_cliques_tests);
    ("protocols.bfs-sync", bfs_layer_tests);
    ("protocols.eob-bfs", eob_bfs_tests);
    ("protocols.bfs-bipartite", bipartite_async_tests);
    ("protocols.connectivity", connectivity_tests);
    ("protocols.subgraph", subgraph_tests);
    ("protocols.randomized", randomized_tests);
    ("protocols.triangle-degenerate", triangle_degenerate_tests);
    ("protocols.registry", registry_tests);
    ("protocols.message-bounds", message_bound_tests) ]
