(* Tier A fixture: raw mutex ops, and a blocking call under the lock. *)
let m = Mutex.create ()

let raw_section () =
  Mutex.lock m;
  Mutex.unlock m

let blocking_inside fd buf =
  Wb_net.Sync.with_lock m (fun () -> Unix.read fd buf 0 1)
