(* Tier A fixture: decode-path hygiene violations, plus a missing .mli —
   the path ends in lib/net/wire.ml, so both path-scoped rules apply. *)
let decode_frame s =
  if String.length s = 0 then failwith "empty frame";
  ignore (List.hd [ s ]);
  assert false

let encode_frame s = s ^ "!" (* encode path: not checked *)
