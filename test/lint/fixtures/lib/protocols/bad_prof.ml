(* Tier A fixture: a profiling hook inside protocol code.  Wb_obs.Prof
   itself lives in lib/obs (clock-exempt), but calling [Prof.phase] from a
   protocol smuggles a wall-clock read into model code, so the determinism
   rule must flag it here.  (Also counted by interface-coverage: no .mli.) *)
let prof_site = Wb_obs.Prof.site "protocol.compose"

let compose_timed compose view = Wb_obs.Prof.phase prof_site (fun () -> compose view)
