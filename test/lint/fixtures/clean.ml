(* Tier A fixture: nothing to report. *)
let add a b = a + b
