(* Tier A fixture: malformed suppressions are findings themselves, and a
   malformed suppression suppresses nothing (the Random below still fires). *)
let no_reason () = (Random.int 3) [@wb.lint.allow "determinism"]

let unknown_rule = (1 + 1) [@wb.lint.allow "no-such-rule: not a rule id"]
