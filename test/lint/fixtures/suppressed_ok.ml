(* Tier A fixture: a well-formed suppression — must lint clean. *)
let seeded () =
  (Random.int 5)
  [@wb.lint.allow "determinism: fixture - demonstrates a suppression"]
