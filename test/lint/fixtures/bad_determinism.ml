(* Tier A fixture: every binding below trips the determinism rule. *)
let jitter () = Random.int 10
let bucket x = Hashtbl.hash x
let stamp () = Unix.gettimeofday ()
let elapsed () = Sys.time ()
