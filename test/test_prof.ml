(* Wb_obs.Prof (phase profiling) and the OpenMetrics exposition.

   The metrics registry is process-global, so every test here uses its own
   metric names and leaves the profiler disabled on exit; the golden and
   grammar tests go through Openmetrics.of_json on synthetic envelopes and
   never touch the registry at all. *)

module Obs = Wb_obs
module M = Wb_obs.Metrics
module J = Wb_obs.Json

let check msg = Alcotest.(check bool) msg true

let qtest t = QCheck_alcotest.to_alcotest t

let histograms () =
  match J.member "histograms" (M.dump_json ()) with
  | Some (J.Obj kvs) -> List.map fst kvs
  | _ -> []

let prefixed prefix names =
  List.filter
    (fun n ->
      String.length n >= String.length prefix && String.sub n 0 (String.length prefix) = prefix)
    names

(* --- Prof ------------------------------------------------------------- *)

let prof_tests =
  [ Alcotest.test_case "a disabled phase registers nothing" `Quick (fun () ->
        Obs.Prof.disable ();
        let s = Obs.Prof.site "test.disabled" in
        let hits = ref 0 in
        let v = Obs.Prof.phase s (fun () -> incr hits; 41 + 1) in
        Alcotest.(check int) "closure ran" 1 !hits;
        Alcotest.(check int) "value passes through" 42 v;
        check "no prof.test.disabled.* series exist"
          (prefixed "prof.test.disabled." (histograms ()) = []));
    Alcotest.test_case "an enabled phase records all four series" `Quick (fun () ->
        let s = Obs.Prof.site "test.enabled" in
        Obs.Prof.enable ();
        check "is_enabled reflects enable" (Obs.Prof.is_enabled ());
        let v = Obs.Prof.phase s (fun () -> Array.make 2048 0 |> Array.length) in
        Obs.Prof.disable ();
        check "is_enabled reflects disable" (not (Obs.Prof.is_enabled ()));
        Alcotest.(check int) "value passes through" 2048 v;
        let names = prefixed "prof.test.enabled." (histograms ()) in
        List.iter
          (fun series ->
            check (series ^ " is registered")
              (List.mem ("prof.test.enabled." ^ series) names))
          [ "us"; "minor_words"; "promoted_words"; "major_collections" ]);
    Alcotest.test_case "a raising phase is still observed, exception intact" `Quick (fun () ->
        let s = Obs.Prof.site "test.raises" in
        Obs.Prof.enable ();
        let raised =
          match Obs.Prof.phase s (fun () -> failwith "boom") with
          | _ -> false
          | exception Failure m -> m = "boom"
        in
        Obs.Prof.disable ();
        check "the exception propagates unchanged" raised;
        check "the raising run was observed"
          (prefixed "prof.test.raises." (histograms ()) <> []));
    Alcotest.test_case "re-disabling stops recording without unregistering" `Quick (fun () ->
        let s = Obs.Prof.site "test.stopped" in
        Obs.Prof.enable ();
        ignore (Obs.Prof.phase s (fun () -> ()));
        Obs.Prof.disable ();
        let before = List.length (prefixed "prof.test.stopped." (histograms ())) in
        ignore (Obs.Prof.phase s (fun () -> ()));
        let after = List.length (prefixed "prof.test.stopped." (histograms ())) in
        Alcotest.(check int) "series survive, none added" before after;
        check "the series had been registered while enabled" (before > 0)) ]

(* --- percentiles ------------------------------------------------------- *)

let percentile_tests =
  [ Alcotest.test_case "percentile_opt on an empty histogram is None" `Quick (fun () ->
        let h = M.histogram "test.pct.empty" in
        check "None when empty" (M.percentile_opt h 50. = None);
        Alcotest.(check int) "wrapper defaults to 0" 0 (M.percentile h 50.));
    Alcotest.test_case "percentile_opt walks the log buckets" `Quick (fun () ->
        let h = M.histogram "test.pct.filled" in
        List.iter (M.observe h) [ 0; 3; 10 ];
        check "p0 is the zero bucket" (M.percentile_opt h 0. = Some 0);
        check "p50 lands on the middle observation's bucket bound"
          (M.percentile_opt h 50. = Some 3);
        check "p100 is clamped to the observed max" (M.percentile_opt h 100. = Some 10);
        Alcotest.(check int) "wrapper agrees when populated" 3 (M.percentile h 50.));
    Alcotest.test_case "percentile_opt rejects p outside [0,100]" `Quick (fun () ->
        let h = M.histogram "test.pct.range" in
        M.observe h 1;
        List.iter
          (fun p ->
            check (Printf.sprintf "p = %g raises" p)
              (match M.percentile_opt h p with
              | exception Invalid_argument _ -> true
              | _ -> false))
          [ -1.; 100.5; Float.nan ]) ]

(* --- OpenMetrics ------------------------------------------------------- *)

let ints l = J.List (List.map (fun i -> J.Int i) l)

let golden_envelope =
  J.Obj
    [ ( "counters",
        J.Obj
          [ ("engine.runs", J.Int 3); ("9weird name", J.Int 1); ("cost.total_bits", J.Int 45) ] );
      ("gauges", J.Obj [ ("engine.board_bits", J.Int 17); ("cost.board_bits", J.Int 45) ]);
      ( "histograms",
        J.Obj
          [ ( "net.rpc.activate_us",
              J.Obj
                [ ("count", J.Int 5); ("sum", J.Int 30); ("min", J.Int 0); ("max", J.Int 15);
                  ("p50", J.Int 3); ("p95", J.Int 15); ("p99", J.Int 15);
                  ("buckets", J.List [ ints [ 1; 1 ]; ints [ 4; 2 ]; ints [ 16; 2 ] ]) ] );
            ( "empty.hist",
              J.Obj
                [ ("count", J.Int 0); ("sum", J.Int 0); ("min", J.Null); ("max", J.Null);
                  ("p50", J.Null); ("p95", J.Null); ("p99", J.Null); ("buckets", J.List []) ]
            );
            ( "cost.message_bits",
              J.Obj
                [ ("count", J.Int 3); ("sum", J.Int 17); ("min", J.Int 3); ("max", J.Int 9);
                  ("p50", J.Int 5); ("p95", J.Int 9); ("p99", J.Int 9);
                  ("buckets", J.List [ ints [ 4; 1 ]; ints [ 8; 1 ]; ints [ 16; 1 ] ]) ] ) ] )
    ]

let golden_help = function
  | "engine.runs" -> "completed runs"
  | "9weird name" -> "a \"quoted\" back\\slash\nname"
  | "cost.total_bits" -> "bits appended to boards (cost ledger)"
  | _ -> ""

let golden_expected =
  String.concat "\n"
    [ "# HELP engine_runs completed runs";
      "# TYPE engine_runs counter";
      "engine_runs_total 3";
      "# HELP _9weird_name a \"quoted\" back\\\\slash\\nname";
      "# TYPE _9weird_name counter";
      "_9weird_name_total 1";
      "# HELP cost_total_bits bits appended to boards (cost ledger)";
      "# TYPE cost_total_bits counter";
      "cost_total_bits_total 45";
      "# TYPE engine_board_bits gauge";
      "engine_board_bits 17";
      "# TYPE cost_board_bits gauge";
      "cost_board_bits 45";
      "# TYPE net_rpc_activate_us histogram";
      "net_rpc_activate_us_bucket{le=\"0\"} 1";
      "net_rpc_activate_us_bucket{le=\"3\"} 3";
      "net_rpc_activate_us_bucket{le=\"15\"} 5";
      "net_rpc_activate_us_bucket{le=\"+Inf\"} 5";
      "net_rpc_activate_us_sum 30";
      "net_rpc_activate_us_count 5";
      "# TYPE net_rpc_activate_us_quantile gauge";
      "net_rpc_activate_us_quantile{quantile=\"0.5\"} 3";
      "net_rpc_activate_us_quantile{quantile=\"0.95\"} 15";
      "net_rpc_activate_us_quantile{quantile=\"0.99\"} 15";
      "# TYPE empty_hist histogram";
      "empty_hist_bucket{le=\"+Inf\"} 0";
      "empty_hist_sum 0";
      "empty_hist_count 0";
      "# TYPE cost_message_bits histogram";
      "cost_message_bits_bucket{le=\"3\"} 1";
      "cost_message_bits_bucket{le=\"7\"} 2";
      "cost_message_bits_bucket{le=\"15\"} 3";
      "cost_message_bits_bucket{le=\"+Inf\"} 3";
      "cost_message_bits_sum 17";
      "cost_message_bits_count 3";
      "# TYPE cost_message_bits_quantile gauge";
      "cost_message_bits_quantile{quantile=\"0.5\"} 5";
      "cost_message_bits_quantile{quantile=\"0.95\"} 9";
      "cost_message_bits_quantile{quantile=\"0.99\"} 9";
      "# EOF";
      "" ]

let gen_weird_string =
  QCheck.Gen.(string_size ~gen:(map Char.chr (oneofl [ 34; 92; 10; 97; 58; 46; 48; 32 ])) (0 -- 12))

let om_tests =
  [ Alcotest.test_case "golden exposition of a populated envelope" `Quick (fun () ->
        let got = M.Openmetrics.of_json ~help:golden_help golden_envelope in
        Alcotest.(check string) "byte-exact rendering" golden_expected got;
        check "the golden text passes the validator"
          (M.Openmetrics.validate got = Ok ()));
    Alcotest.test_case "an empty envelope renders as a bare terminator" `Quick (fun () ->
        let got = M.Openmetrics.of_json (J.Obj []) in
        Alcotest.(check string) "just # EOF" "# EOF\n" got;
        check "and validates" (M.Openmetrics.validate got = Ok ()));
    Alcotest.test_case "sanitize_name maps onto the exposition grammar" `Quick (fun () ->
        Alcotest.(check string) "dots become underscores" "engine_runs"
          (M.Openmetrics.sanitize_name "engine.runs");
        Alcotest.(check string) "leading digits gain a prefix" "_9weird_name"
          (M.Openmetrics.sanitize_name "9weird name");
        Alcotest.(check string) "empty names survive" "_" (M.Openmetrics.sanitize_name ""));
    Alcotest.test_case "the registry dump validates end to end" `Quick (fun () ->
        ignore (M.counter ~help:"for the exposition test" "test.om.counter");
        let h = M.histogram "test.om.hist" in
        List.iter (M.observe h) [ 1; 7; 900 ];
        match M.Openmetrics.validate (M.dump_openmetrics ()) with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "registry exposition rejected: %s" msg);
    qtest
      (QCheck.Test.make ~count:300
         ~name:"arbitrary names and help strings always render a valid exposition"
         (QCheck.make
            ~print:(fun (a, b, c) -> Printf.sprintf "%S %S %S" a b c)
            QCheck.Gen.(triple gen_weird_string gen_weird_string gen_weird_string))
         (fun (name, help_text, gname) ->
           let envelope =
             J.Obj
               [ ("counters", J.Obj [ (name, J.Int 7) ]);
                 ("gauges", J.Obj [ (gname, J.Int (-3)) ]) ]
           in
           let help n = if n = name then help_text else "" in
           match M.Openmetrics.validate (M.Openmetrics.of_json ~help envelope) with
           | Ok () -> true
           | Error _ -> false)) ]

let suites =
  [ ("obs.prof", prof_tests); ("obs.percentile", percentile_tests); ("obs.openmetrics", om_tests) ]
