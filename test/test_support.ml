open Wb_support

let qtest = QCheck_alcotest.to_alcotest

let check = Alcotest.(check bool)

let prng_tests =
  [ Alcotest.test_case "same seed, same stream" `Quick (fun () ->
        let a = Prng.create 123 and b = Prng.create 123 in
        for _ = 1 to 100 do
          Alcotest.(check int64) "bits" (Prng.bits64 a) (Prng.bits64 b)
        done);
    Alcotest.test_case "different seeds diverge" `Quick (fun () ->
        let a = Prng.create 1 and b = Prng.create 2 in
        let same = ref 0 in
        for _ = 1 to 64 do
          if Prng.bits64 a = Prng.bits64 b then incr same
        done;
        check "mostly different" true (!same < 4));
    Alcotest.test_case "copy replays" `Quick (fun () ->
        let a = Prng.create 5 in
        ignore (Prng.bits64 a);
        let b = Prng.copy a in
        Alcotest.(check int64) "bits" (Prng.bits64 a) (Prng.bits64 b));
    Alcotest.test_case "split is independent of parent draw count" `Quick (fun () ->
        let a = Prng.create 9 in
        let c = Prng.split a in
        check "child differs from fresh parent stream" true (Prng.bits64 c <> Prng.bits64 a));
    qtest
      (QCheck.Test.make ~name:"int respects bound" ~count:500
         QCheck.(pair small_int (int_range 1 1000))
         (fun (seed, bound) ->
           let g = Prng.create seed in
           let v = Prng.int g bound in
           v >= 0 && v < bound));
    qtest
      (QCheck.Test.make ~name:"in_range inclusive" ~count:500
         QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
         (fun (seed, lo, span) ->
           let g = Prng.create seed in
           let v = Prng.in_range g lo (lo + span) in
           v >= lo && v <= lo + span));
    qtest
      (QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
         QCheck.(pair small_int (int_range 0 40))
         (fun (seed, n) ->
           let g = Prng.create seed in
           let a = Array.init n (fun i -> i) in
           Prng.shuffle g a;
           Perm.is_permutation a));
    qtest
      (QCheck.Test.make ~name:"sample_without_replacement: sorted distinct in range" ~count:300
         QCheck.(triple small_int (int_range 0 30) (int_range 0 30))
         (fun (seed, a, b) ->
           let k = min a b and n = max a b in
           let g = Prng.create seed in
           let s = Prng.sample_without_replacement g k n in
           Array.length s = k
           && Array.for_all (fun v -> v >= 0 && v < n) s
           && Array.to_list s = List.sort_uniq compare (Array.to_list s)));
    Alcotest.test_case "float in [0,1)" `Quick (fun () ->
        let g = Prng.create 17 in
        for _ = 1 to 1000 do
          let f = Prng.float g in
          check "range" true (f >= 0.0 && f < 1.0)
        done) ]

let bitset_tests =
  let reference_ops seed n ops =
    (* Mirror operations on a Bitset and a module Set, compare. *)
    let module IS = Set.Make (Int) in
    let g = Prng.create seed in
    let s = Bitset.create n in
    let r = ref IS.empty in
    for _ = 1 to ops do
      let i = Prng.int g n in
      match Prng.int g 3 with
      | 0 ->
        Bitset.add s i;
        r := IS.add i !r
      | 1 ->
        Bitset.remove s i;
        r := IS.remove i !r
      | _ -> if Bitset.mem s i <> IS.mem i !r then failwith "mem mismatch"
    done;
    Bitset.to_list s = IS.elements !r && Bitset.cardinal s = IS.cardinal !r
  in
  [ qtest
      (QCheck.Test.make ~name:"bitset mirrors Set" ~count:100
         QCheck.(pair small_int (int_range 1 200))
         (fun (seed, n) -> reference_ops seed n 300));
    Alcotest.test_case "set-algebra on word boundaries" `Quick (fun () ->
        let n = 130 in
        let a = Bitset.of_list n [ 0; 62; 63; 64; 126; 129 ] in
        let b = Bitset.of_list n [ 62; 64; 100; 129 ] in
        let u = Bitset.copy a in
        Bitset.union_into u b;
        Alcotest.(check (list int)) "union" [ 0; 62; 63; 64; 100; 126; 129 ] (Bitset.to_list u);
        let i = Bitset.copy a in
        Bitset.inter_into i b;
        Alcotest.(check (list int)) "inter" [ 62; 64; 129 ] (Bitset.to_list i);
        let d = Bitset.copy a in
        Bitset.diff_into d b;
        Alcotest.(check (list int)) "diff" [ 0; 63; 126 ] (Bitset.to_list d);
        check "subset" true (Bitset.subset i a);
        check "not subset" false (Bitset.subset b a));
    Alcotest.test_case "iter is increasing" `Quick (fun () ->
        let s = Bitset.of_list 300 [ 299; 0; 150; 63; 64 ] in
        let prev = ref (-1) in
        Bitset.iter
          (fun v ->
            check "increasing" true (v > !prev);
            prev := v)
          s);
    Alcotest.test_case "bounds are checked" `Quick (fun () ->
        let s = Bitset.create 10 in
        Alcotest.check_raises "add" (Invalid_argument "Bitset.add: out of range") (fun () ->
            Bitset.add s 10)) ]

let bitbuf_tests =
  [ qtest
      (QCheck.Test.make ~name:"nat roundtrip (list)" ~count:300
         QCheck.(small_list (int_range 0 1_000_000))
         (fun vals ->
           let w = Bitbuf.Writer.create () in
           List.iter (Bitbuf.Writer.nat w) vals;
           let r = Bitbuf.Reader.of_bits (Bitbuf.Writer.contents w) in
           List.for_all (fun v -> Bitbuf.Reader.nat r = v) vals && Bitbuf.Reader.remaining r = 0));
    qtest
      (QCheck.Test.make ~name:"fixed roundtrip" ~count:300
         QCheck.(pair (int_range 0 62) (int_range 0 max_int))
         (fun (width, v) ->
           let v = if width = 0 then 0 else v land ((1 lsl min width 61) - 1) in
           let width = if width > 61 then 61 else width in
           let w = Bitbuf.Writer.create () in
           Bitbuf.Writer.fixed w ~width v;
           let r = Bitbuf.Reader.of_bits (Bitbuf.Writer.contents w) in
           Bitbuf.Reader.fixed r ~width = v));
    qtest
      (QCheck.Test.make ~name:"gamma/delta roundtrip, delta no longer for big values" ~count:300
         QCheck.(int_range 1 10_000_000)
         (fun v ->
           let w1 = Bitbuf.Writer.create () in
           Bitbuf.Writer.gamma w1 v;
           let w2 = Bitbuf.Writer.create () in
           Bitbuf.Writer.delta w2 v;
           let r1 = Bitbuf.Reader.of_bits (Bitbuf.Writer.contents w1) in
           let r2 = Bitbuf.Reader.of_bits (Bitbuf.Writer.contents w2) in
           Bitbuf.Reader.gamma r1 = v && Bitbuf.Reader.delta r2 = v
           && (v < 32 || Bitbuf.Writer.length_bits w2 <= Bitbuf.Writer.length_bits w1)));
    Alcotest.test_case "width_of" `Quick (fun () ->
        List.iter
          (fun (v, w) -> Alcotest.(check int) (string_of_int v) w (Bitbuf.width_of v))
          [ (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (255, 8); (256, 9) ]);
    Alcotest.test_case "underflow raises" `Quick (fun () ->
        let r = Bitbuf.Reader.of_bits [| true |] in
        ignore (Bitbuf.Reader.bit r);
        Alcotest.check_raises "bit" Bitbuf.Reader.Underflow (fun () -> ignore (Bitbuf.Reader.bit r)));
    Alcotest.test_case "mixed stream" `Quick (fun () ->
        let w = Bitbuf.Writer.create () in
        Bitbuf.Writer.bit w true;
        Bitbuf.Writer.fixed w ~width:7 99;
        Bitbuf.Writer.nat w 0;
        Bitbuf.Writer.gamma w 1;
        Bitbuf.Writer.delta w 1000;
        let r = Bitbuf.Reader.of_bits (Bitbuf.Writer.contents w) in
        check "bit" true (Bitbuf.Reader.bit r);
        Alcotest.(check int) "fixed" 99 (Bitbuf.Reader.fixed r ~width:7);
        Alcotest.(check int) "nat" 0 (Bitbuf.Reader.nat r);
        Alcotest.(check int) "gamma" 1 (Bitbuf.Reader.gamma r);
        Alcotest.(check int) "delta" 1000 (Bitbuf.Reader.delta r)) ]

let dynarray_tests =
  [ Alcotest.test_case "push/pop/last/truncate" `Quick (fun () ->
        let d = Dynarray.create () in
        for i = 0 to 99 do
          Dynarray.push d i
        done;
        Alcotest.(check int) "len" 100 (Dynarray.length d);
        Alcotest.(check int) "last" 99 (Dynarray.last d);
        Alcotest.(check int) "pop" 99 (Dynarray.pop d);
        Dynarray.truncate d 10;
        Alcotest.(check (list int)) "list" (List.init 10 Fun.id) (Dynarray.to_list d));
    qtest
      (QCheck.Test.make ~name:"to_array/of_array roundtrip" ~count:200
         QCheck.(small_list int)
         (fun l ->
           let d = Dynarray.of_array (Array.of_list l) in
           Dynarray.to_list d = l)) ]

let heap_tests =
  [ qtest
      (QCheck.Test.make ~name:"drain sorts" ~count:200
         QCheck.(small_list int)
         (fun l ->
           let h = Heap.of_array ~cmp:compare (Array.of_list l) in
           Heap.drain h = List.sort compare l));
    Alcotest.test_case "peek/pop interplay" `Quick (fun () ->
        let h = Heap.create ~cmp:compare in
        Alcotest.(check (option int)) "empty" None (Heap.pop h);
        Heap.push h 5;
        Heap.push h 2;
        Heap.push h 9;
        Alcotest.(check (option int)) "peek" (Some 2) (Heap.peek h);
        Alcotest.(check (option int)) "pop" (Some 2) (Heap.pop h);
        Alcotest.(check int) "len" 2 (Heap.length h)) ]

let perm_tests =
  [ Alcotest.test_case "iter_all visits n! distinct" `Quick (fun () ->
        for n = 0 to 6 do
          let seen = Hashtbl.create 720 in
          Perm.iter_all n (fun p ->
              check "is perm" true (Perm.is_permutation p);
              Hashtbl.replace seen (Array.to_list p) ());
          Alcotest.(check int)
            (Printf.sprintf "n=%d" n)
            (if n = 0 then 1 else Perm.factorial n)
            (Hashtbl.length seen)
        done);
    qtest
      (QCheck.Test.make ~name:"inverse . apply = id" ~count:200
         QCheck.(pair small_int (int_range 1 30))
         (fun (seed, n) ->
           let p = Perm.random (Prng.create seed) n in
           let inv = Perm.inverse p in
           Array.for_all (fun i -> inv.(p.(i)) = i) (Array.init n Fun.id))) ]

let mix_tests =
  [ Alcotest.test_case "deterministic and nonzero" `Quick (fun () ->
        Alcotest.(check int) "stable" (Mix.mix 42) (Mix.mix 42);
        check "mix 0 <> 0" true (Mix.mix 0 <> 0);
        check "nonnegative" true (Mix.mix min_int >= 0 && Mix.mix max_int >= 0));
    qtest
      (QCheck.Test.make ~name:"no trivial collisions on small ints" ~count:1
         QCheck.unit
         (fun () ->
           let seen = Hashtbl.create 4096 in
           for i = 0 to 4095 do
             Hashtbl.replace seen (Mix.mix i) ()
           done;
           Hashtbl.length seen = 4096));
    qtest
      (QCheck.Test.make ~name:"combine is order-dependent" ~count:200
         QCheck.(pair small_nat small_nat)
         (fun (a, b) ->
           QCheck.assume (a <> b);
           Mix.combine (Mix.combine 0 a) b <> Mix.combine (Mix.combine 0 b) a));
    qtest
      (QCheck.Test.make ~name:"bools: injective-ish and length-sensitive" ~count:200
         QCheck.(pair (array_of_size Gen.(0 -- 70) bool) small_nat)
         (fun (bits, seed) ->
           let h = Mix.bools ~seed bits in
           (* Stable, and appending a zero bit changes the hash (length is
              folded in, so trailing-zero padding is not a collision). *)
           h = Mix.bools ~seed bits
           && h <> Mix.bools ~seed (Array.append bits [| false |]))) ]

let deque_tests =
  [ Alcotest.test_case "owner LIFO, thief FIFO" `Quick (fun () ->
        let d = Deque.create ~capacity:2 () in
        for i = 1 to 5 do
          Deque.push d i
        done;
        Alcotest.(check (option int)) "pop newest" (Some 5) (Deque.pop d);
        Alcotest.(check (option int)) "steal oldest" (Some 1) (Deque.steal d);
        Alcotest.(check (option int)) "steal next" (Some 2) (Deque.steal d);
        Alcotest.(check (option int)) "pop" (Some 4) (Deque.pop d);
        Alcotest.(check (option int)) "pop last" (Some 3) (Deque.pop d);
        Alcotest.(check (option int)) "empty pop" None (Deque.pop d);
        Alcotest.(check (option int)) "empty steal" None (Deque.steal d));
    Alcotest.test_case "grows past initial capacity" `Quick (fun () ->
        let d = Deque.create ~capacity:1 () in
        for i = 0 to 999 do
          Deque.push d i
        done;
        Alcotest.(check int) "size" 1000 (Deque.size d);
        for i = 999 downto 0 do
          Alcotest.(check (option int)) "pop order" (Some i) (Deque.pop d)
        done);
    Alcotest.test_case "two-domain steal stress: every element exactly once" `Quick (fun () ->
        (* The owner interleaves pushes and pops while a thief drains from
           the top; between them every pushed element must surface exactly
           once.  Exercises the pop/steal CAS race on the last element. *)
        let d = Deque.create ~capacity:4 () in
        let n = 20_000 in
        let stolen = ref [] in
        let thief =
          Domain.spawn (fun () ->
              let taken = ref 0 in
              while !taken < n / 4 do
                match Deque.steal d with
                | Some v ->
                  stolen := v :: !stolen;
                  incr taken
                | None -> Domain.cpu_relax ()
              done)
        in
        let popped = ref [] in
        let next = ref 0 in
        while !next < n do
          Deque.push d !next;
          incr next;
          if !next mod 3 = 0 then
            match Deque.pop d with
            | Some v -> popped := v :: !popped
            | None -> ()
        done;
        Domain.join thief;
        let rec drain () =
          match Deque.pop d with
          | Some v ->
            popped := v :: !popped;
            drain ()
          | None -> ()
        in
        drain ();
        let all = List.rev_append !stolen !popped in
        Alcotest.(check int) "total count" n (List.length all);
        let sorted = List.sort Int.compare all in
        check "each element exactly once" true
          (List.for_all2 Int.equal sorted (List.init n Fun.id))) ]

let cset_tests =
  [ Alcotest.test_case "add/mem/cardinal, zero remapped" `Quick (fun () ->
        let t = Cset.create ~limit:100 () in
        check "added" true (Cset.add t 7 = `Added);
        check "present" true (Cset.add t 7 = `Present);
        check "mem" true (Cset.mem t 7);
        check "not mem" false (Cset.mem t 8);
        check "zero digest works" true (Cset.add t 0 = `Added);
        check "zero present" true (Cset.add t 0 = `Present);
        Alcotest.(check int) "cardinal" 2 (Cset.cardinal t);
        check "capacity is a power of two" true
          (let c = Cset.capacity t in
           c land (c - 1) = 0));
    Alcotest.test_case "fills up to limit then reports Full" `Quick (fun () ->
        let t = Cset.create ~limit:16 () in
        Alcotest.(check int) "limit clamp" 16 (Cset.limit t);
        for i = 1 to 16 do
          check "added" true (Cset.add t (Mix.mix i) = `Added)
        done;
        check "full" true (Cset.add t (Mix.mix 99) = `Full);
        check "existing still present" true (Cset.add t (Mix.mix 3) = `Present));
    Alcotest.test_case "two-domain adds claim each digest exactly once" `Quick (fun () ->
        let t = Cset.create ~limit:20_000 () in
        let n = 10_000 in
        let adds k =
          (* Both domains race over the same digest set, offset so they
             collide constantly. *)
          let mine = ref 0 in
          for i = 0 to n - 1 do
            let i = if k = 0 then i else n - 1 - i in
            match Cset.add t (Mix.mix i) with
            | `Added -> incr mine
            | `Present -> ()
            | `Full -> Alcotest.fail "unexpected Full"
          done;
          !mine
        in
        let other = Domain.spawn (fun () -> adds 1) in
        let a = adds 0 in
        let b = Domain.join other in
        Alcotest.(check int) "claims partition the digests" n (a + b);
        Alcotest.(check int) "cardinal" n (Cset.cardinal t)) ]

let suites =
  [ ("support.prng", prng_tests);
    ("support.bitset", bitset_tests);
    ("support.bitbuf", bitbuf_tests);
    ("support.dynarray", dynarray_tests);
    ("support.heap", heap_tests);
    ("support.perm", perm_tests);
    ("support.mix", mix_tests);
    ("support.deque", deque_tests);
    ("support.cset", cset_tests) ]
