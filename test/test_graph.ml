open Wb_graph
module Prng = Wb_support.Prng

let qtest = QCheck_alcotest.to_alcotest

let check = Alcotest.(check bool)

let seeded = QCheck.small_int

let graph_tests =
  [ Alcotest.test_case "of_edges normalises" `Quick (fun () ->
        let g = Graph.of_edges 4 [ (0, 1); (1, 0); (2, 3); (0, 1) ] in
        Alcotest.(check int) "edges" 2 (Graph.num_edges g);
        check "mem" true (Graph.mem_edge g 1 0);
        check "not mem" false (Graph.mem_edge g 0 2));
    Alcotest.test_case "self-loops rejected" `Quick (fun () ->
        Alcotest.check_raises "loop" (Invalid_argument "Graph.of_edges: self-loop") (fun () ->
            ignore (Graph.of_edges 3 [ (1, 1) ])));
    Alcotest.test_case "matrix roundtrip" `Quick (fun () ->
        let g = Gen.petersen () in
        check "equal" true (Graph.equal g (Graph.of_matrix (Graph.adjacency_matrix g))));
    qtest
      (QCheck.Test.make ~name:"relabel preserves degree multiset" ~count:200 seeded (fun seed ->
           let rng = Prng.create seed in
           let g = Gen.random_gnp rng 20 0.3 in
           let p = Wb_support.Perm.random rng 20 in
           let h = Graph.relabel g p in
           let degs gr = List.sort compare (List.init 20 (Graph.degree gr)) in
           degs g = degs h && Graph.num_edges g = Graph.num_edges h));
    qtest
      (QCheck.Test.make ~name:"complement involutive" ~count:100 seeded (fun seed ->
           let g = Gen.random_gnp (Prng.create seed) 12 0.5 in
           Graph.equal g (Graph.complement (Graph.complement g))));
    Alcotest.test_case "induced subgraph" `Quick (fun () ->
        let g = Gen.cycle 6 in
        let h = Graph.induced g [| 0; 1; 2 |] in
        Alcotest.(check int) "n" 3 (Graph.n h);
        Alcotest.(check int) "edges" 2 (Graph.num_edges h));
    Alcotest.test_case "extend appends apex" `Quick (fun () ->
        let g = Gen.path 3 in
        let h = Graph.extend g ~extra:1 ~new_edges:[ (0, 3); (2, 3) ] in
        Alcotest.(check int) "n" 4 (Graph.n h);
        check "old edge kept" true (Graph.mem_edge h 0 1);
        check "new edge" true (Graph.mem_edge h 2 3));
    Alcotest.test_case "is_regular" `Quick (fun () ->
        Alcotest.(check (option int)) "cycle" (Some 2) (Graph.is_regular (Gen.cycle 5));
        Alcotest.(check (option int)) "petersen" (Some 3) (Graph.is_regular (Gen.petersen ()));
        Alcotest.(check (option int)) "path" None (Graph.is_regular (Gen.path 4)));
    Alcotest.test_case "incidence row matches neighbors" `Quick (fun () ->
        let g = Gen.petersen () in
        for v = 0 to 9 do
          Alcotest.(check (list int))
            (Printf.sprintf "row %d" v)
            (Array.to_list (Graph.neighbors g v))
            (Wb_support.Bitset.to_list (Graph.incidence_row g v))
        done) ]

let gen_tests =
  [ Alcotest.test_case "families have expected shape" `Quick (fun () ->
        Alcotest.(check int) "path edges" 9 (Graph.num_edges (Gen.path 10));
        Alcotest.(check int) "cycle edges" 10 (Graph.num_edges (Gen.cycle 10));
        Alcotest.(check int) "star edges" 9 (Graph.num_edges (Gen.star 10));
        Alcotest.(check int) "K7 edges" 21 (Graph.num_edges (Gen.complete 7));
        Alcotest.(check int) "K34 edges" 12 (Graph.num_edges (Gen.complete_bipartite 3 4));
        Alcotest.(check int) "grid 3x4 edges" 17 (Graph.num_edges (Gen.grid 3 4));
        Alcotest.(check int) "Q3 edges" 12 (Graph.num_edges (Gen.hypercube 3));
        Alcotest.(check int) "petersen edges" 15 (Graph.num_edges (Gen.petersen ())));
    qtest
      (QCheck.Test.make ~name:"random_tree is a tree" ~count:200
         QCheck.(pair seeded (int_range 1 60))
         (fun (seed, n) ->
           let t = Gen.random_tree (Prng.create seed) n in
           Graph.num_edges t = n - 1 && Algo.is_connected t));
    qtest
      (QCheck.Test.make ~name:"random_forest is acyclic" ~count:200
         QCheck.(pair seeded (int_range 1 60))
         (fun (seed, n) ->
           let f = Gen.random_forest (Prng.create seed) n ~keep:0.6 in
           fst (Algo.degeneracy f) <= 1));
    qtest
      (QCheck.Test.make ~name:"ktree: degeneracy exactly k" ~count:100
         QCheck.(pair seeded (int_range 1 4))
         (fun (seed, k) ->
           let g = Gen.random_ktree (Prng.create seed) (k + 8) ~k in
           fst (Algo.degeneracy g) = k));
    qtest
      (QCheck.Test.make ~name:"kdegenerate: degeneracy at most k" ~count:100
         QCheck.(pair seeded (int_range 0 5))
         (fun (seed, k) ->
           let g = Gen.random_kdegenerate (Prng.create seed) 30 ~k in
           fst (Algo.degeneracy g) <= k));
    qtest
      (QCheck.Test.make ~name:"apollonian: planar-style counts, 3-degenerate" ~count:100 seeded
         (fun seed ->
           let g = Gen.apollonian (Prng.create seed) 20 in
           Graph.num_edges g = (3 * 20) - 6 && fst (Algo.degeneracy g) = 3 && Algo.is_connected g));
    qtest
      (QCheck.Test.make ~name:"random_eob is even-odd bipartite" ~count:100 seeded (fun seed ->
           Algo.is_even_odd_bipartite (Gen.random_eob (Prng.create seed) 21 0.4)));
    qtest
      (QCheck.Test.make ~name:"random_bipartite is bipartite" ~count:100 seeded (fun seed ->
           Algo.bipartition (Gen.random_bipartite (Prng.create seed) 7 9 0.4) <> None));
    qtest
      (QCheck.Test.make ~name:"random_gnm has exactly m edges" ~count:100
         QCheck.(pair seeded (int_range 0 45))
         (fun (seed, m) -> Graph.num_edges (Gen.random_gnm (Prng.create seed) 10 m) = m));
    qtest
      (QCheck.Test.make ~name:"random_connected connects" ~count:100 seeded (fun seed ->
           Algo.is_connected (Gen.random_connected (Prng.create seed) 40 0.02)));
    Alcotest.test_case "two-cliques family" `Quick (fun () ->
        let g = Gen.two_cliques 6 in
        check "is two cliques" true (Algo.is_two_cliques g);
        Alcotest.(check (option int)) "regular" (Some 5) (Graph.is_regular g);
        let h = Gen.near_two_cliques 6 in
        check "near is not" false (Algo.is_two_cliques h);
        Alcotest.(check (option int)) "near regular too" (Some 5) (Graph.is_regular h);
        check "near connected" true (Algo.is_connected h));
    qtest
      (QCheck.Test.make ~name:"two_cliques_shuffled keeps the property" ~count:50 seeded
         (fun seed -> Algo.is_two_cliques (Gen.two_cliques_shuffled (Prng.create seed) 5)));
    Alcotest.test_case "triangle_with_tail" `Quick (fun () ->
        let g = Gen.triangle_with_tail 7 in
        check "has triangle" true (Algo.has_triangle g);
        check "connected" true (Algo.is_connected g));
    Alcotest.test_case "all_labelled_graphs counts" `Quick (fun () ->
        Alcotest.(check int) "n=3" 8 (List.length (Gen.all_labelled_graphs 3));
        Alcotest.(check int) "n=4" 64 (List.length (Gen.all_labelled_graphs 4));
        Alcotest.(check int) "n=4 connected" 38 (List.length (Gen.all_connected_graphs 4))) ]

let algo_tests =
  [ qtest
      (QCheck.Test.make ~name:"bfs_dist is a metric layer function" ~count:100 seeded (fun seed ->
           let g = Gen.random_connected (Prng.create seed) 25 0.1 in
           let d = Algo.bfs_dist g 0 in
           d.(0) = 0
           && List.for_all (fun (u, v) -> abs (d.(u) - d.(v)) <= 1) (Graph.edges g)
           && Array.for_all (fun x -> x >= 0) d));
    qtest
      (QCheck.Test.make ~name:"bfs_forest validates" ~count:100 seeded (fun seed ->
           let g = Gen.random_gnp (Prng.create seed) 20 0.1 in
           Algo.is_valid_bfs_forest g (Algo.bfs_forest g)));
    Alcotest.test_case "is_valid_bfs_forest rejects wrong parents" `Quick (fun () ->
        let g = Gen.path 4 in
        check "good" true (Algo.is_valid_bfs_forest g [| -1; 0; 1; 2 |]);
        check "bad root" false (Algo.is_valid_bfs_forest g [| 1; -1; 1; 2 |]);
        check "bad layer" false (Algo.is_valid_bfs_forest g [| -1; 0; 1; 1 |]));
    Alcotest.test_case "components numbering" `Quick (fun () ->
        let g = Graph.of_edges 6 [ (3, 4); (0, 1) ] in
        Alcotest.(check (list int)) "comp" [ 0; 0; 1; 2; 2; 3 ] (Array.to_list (Algo.components g));
        Alcotest.(check int) "count" 4 (Algo.num_components g));
    Alcotest.test_case "bipartition" `Quick (fun () ->
        check "even cycle" true (Algo.bipartition (Gen.cycle 6) <> None);
        check "odd cycle" true (Algo.bipartition (Gen.cycle 7) = None);
        check "petersen" true (Algo.bipartition (Gen.petersen ()) = None));
    Alcotest.test_case "degeneracy of known families" `Quick (fun () ->
        Alcotest.(check int) "tree" 1 (fst (Algo.degeneracy (Gen.path 10)));
        Alcotest.(check int) "cycle" 2 (fst (Algo.degeneracy (Gen.cycle 10)));
        Alcotest.(check int) "K6" 5 (fst (Algo.degeneracy (Gen.complete 6)));
        Alcotest.(check int) "K33" 3 (fst (Algo.degeneracy (Gen.complete_bipartite 3 3)));
        Alcotest.(check int) "empty" 0 (fst (Algo.degeneracy (Graph.empty 5))));
    qtest
      (QCheck.Test.make ~name:"degeneracy order witnesses the value" ~count:100 seeded (fun seed ->
           let g = Gen.random_gnp (Prng.create seed) 18 0.3 in
           let k, order = Algo.degeneracy g in
           (* Replaying the order, each node's remaining degree is <= k. *)
           let removed = Array.make 18 false in
           let ok = ref true in
           Array.iter
             (fun v ->
               let live = Graph.fold_neighbors g v (fun acc w -> if removed.(w) then acc else acc + 1) 0 in
               if live > k then ok := false;
               removed.(v) <- true)
             order;
           !ok));
    qtest
      (QCheck.Test.make ~name:"triangle detection agrees with matrix check" ~count:200 seeded
         (fun seed ->
           let g = Gen.random_gnp (Prng.create seed) 12 0.25 in
           let m = Graph.adjacency_matrix g in
           let naive = ref false in
           for a = 0 to 11 do
             for b = a + 1 to 11 do
               for c = b + 1 to 11 do
                 if m.(a).(b) && m.(b).(c) && m.(a).(c) then naive := true
               done
             done
           done;
           Algo.has_triangle g = !naive));
    qtest
      (QCheck.Test.make ~name:"count_triangles agrees with brute force" ~count:100 seeded
         (fun seed ->
           let g = Gen.random_gnp (Prng.create seed) 10 0.4 in
           let m = Graph.adjacency_matrix g in
           let naive = ref 0 in
           for a = 0 to 9 do
             for b = a + 1 to 9 do
               for c = b + 1 to 9 do
                 if m.(a).(b) && m.(b).(c) && m.(a).(c) then incr naive
               done
             done
           done;
           Algo.count_triangles g = !naive));
    qtest
      (QCheck.Test.make ~name:"greedy_mis is a rooted MIS" ~count:200
         QCheck.(pair seeded (int_range 0 14))
         (fun (seed, root) ->
           let g = Gen.random_gnp (Prng.create seed) 15 0.3 in
           let s = Algo.greedy_mis g ~root in
           List.mem root s && Algo.is_maximal_independent_set g s));
    Alcotest.test_case "independent set checks" `Quick (fun () ->
        let g = Gen.cycle 5 in
        check "indep" true (Algo.is_independent_set g [ 0; 2 ]);
        check "not indep" false (Algo.is_independent_set g [ 0; 1 ]);
        check "not maximal" false (Algo.is_maximal_independent_set g [ 0 ]);
        check "maximal" true (Algo.is_maximal_independent_set g [ 0; 2 ]));
    Alcotest.test_case "diameter" `Quick (fun () ->
        Alcotest.(check int) "path" 9 (Algo.diameter (Gen.path 10));
        Alcotest.(check int) "petersen" 2 (Algo.diameter (Gen.petersen ()));
        Alcotest.check_raises "disconnected" (Invalid_argument "Algo.diameter: disconnected")
          (fun () -> ignore (Algo.diameter (Graph.empty 2))));
    qtest
      (QCheck.Test.make ~name:"spanning forest has n - #components edges" ~count:100 seeded
         (fun seed ->
           let g = Gen.random_gnp (Prng.create seed) 20 0.08 in
           List.length (Algo.spanning_forest g) = 20 - Algo.num_components g)) ]

let codec_tests =
  [ qtest
      (QCheck.Test.make ~name:"prufer roundtrip" ~count:200
         QCheck.(pair seeded (int_range 2 40))
         (fun (seed, n) ->
           let t = Gen.random_tree (Prng.create seed) n in
           Graph.equal t (Prufer.decode n (Prufer.encode t))));
    Alcotest.test_case "prufer rejects non-trees" `Quick (fun () ->
        Alcotest.check_raises "cycle" (Invalid_argument "Prufer.encode: not a tree") (fun () ->
            ignore (Prufer.encode (Gen.cycle 4))));
    qtest
      (QCheck.Test.make ~name:"graph6 roundtrip" ~count:200
         QCheck.(pair seeded (int_range 0 70))
         (fun (seed, n) ->
           let g = Gen.random_gnp (Prng.create seed) n 0.3 in
           Graph.equal g (Graph6.decode (Graph6.encode g))));
    Alcotest.test_case "graph6 known encodings" `Quick (fun () ->
        (* K3 is "Bw" in standard graph6. *)
        Alcotest.(check string) "K3" "Bw" (Graph6.encode (Gen.complete 3));
        check "decode" true (Graph.equal (Gen.complete 3) (Graph6.decode "Bw")));
    Alcotest.test_case "graph6 medium-size header" `Quick (fun () ->
        let g = Gen.random_gnp (Prng.create 3) 100 0.05 in
        check "roundtrip n=100" true (Graph.equal g (Graph6.decode (Graph6.encode g)))) ]

let auto_tests =
  let order ?fixed g =
    match Auto.automorphisms ?fixed g with
    | None -> Alcotest.fail "automorphisms gave up"
    | Some a ->
      Array.iter (fun p -> check "is automorphism" true (Auto.is_automorphism g p)) a;
      Array.length a
  in
  [ Alcotest.test_case "known group orders" `Quick (fun () ->
        Alcotest.(check int) "K5: 5!" 120 (order (Gen.complete 5));
        Alcotest.(check int) "C6: dihedral 2*6" 12 (order (Gen.cycle 6));
        Alcotest.(check int) "Q3: 2^3*3!" 48 (order (Gen.hypercube 3));
        Alcotest.(check int) "Q4: 2^4*4!" 384 (order (Gen.hypercube 4));
        Alcotest.(check int) "path P4: 2" 2
          (order (Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ]));
        Alcotest.(check int) "asymmetric: trivial" 1
          (* The smallest asymmetric tree (7 vertices). *)
          (order (Graph.of_edges 7 [ (0, 1); (1, 2); (2, 3); (2, 4); (4, 5); (5, 6) ])));
    Alcotest.test_case "pointwise stabilizer" `Quick (fun () ->
        Alcotest.(check int) "K5 fixing one vertex: 4!" 24
          (order ~fixed:[ 0 ] (Gen.complete 5));
        Alcotest.(check int) "C6 fixing one vertex: the reflection" 2
          (order ~fixed:[ 0 ] (Gen.cycle 6));
        Alcotest.(check int) "C6 fixing an edge's ends: trivial" 1
          (order ~fixed:[ 0; 1 ] (Gen.cycle 6)));
    Alcotest.test_case "caps give None, not an error" `Quick (fun () ->
        check "K8 exceeds max_order 100" true
          (Auto.automorphisms ~max_order:100 (Gen.complete 8) = None);
        check "K8 fits the default caps" true (Auto.automorphisms (Gen.complete 8) <> None));
    Alcotest.test_case "orbits: transitive graphs have one orbit" `Quick (fun () ->
        List.iter
          (fun g ->
            match Auto.automorphisms g with
            | None -> Alcotest.fail "gave up"
            | Some a ->
              let o = Auto.orbits ~n:(Graph.n g) a in
              check "all mapped to vertex 0" true (Array.for_all (fun r -> r = 0) o))
          [ Gen.complete 6; Gen.cycle 7; Gen.hypercube 3 ];
        let star = Graph.of_edges 4 [ (0, 1); (0, 2); (0, 3) ] in
        match Auto.automorphisms star with
        | None -> Alcotest.fail "gave up"
        | Some a ->
          let o = Auto.orbits ~n:4 a in
          check "star orbits: centre alone, leaves together" true
            (o.(0) = 0 && o.(1) = 1 && o.(2) = 1 && o.(3) = 1));
    qtest
      (QCheck.Test.make ~name:"every reported element preserves edges" ~count:60
         QCheck.(pair seeded (int_range 2 7))
         (fun (seed, n) ->
           let g = Gen.random_gnp (Prng.create seed) n 0.5 in
           match Auto.automorphisms g with
           | None -> true
           | Some a ->
             Array.length a >= 1
             && Array.for_all (fun p -> Auto.is_automorphism g p) a)) ]

let suites =
  [ ("graph.core", graph_tests);
    ("graph.gen", gen_tests);
    ("graph.algo", algo_tests);
    ("graph.codec", codec_tests);
    ("graph.auto", auto_tests) ]
