(* A guided walk through the computing-power lattice (Theorem 4):

       SIMASYNC  <  SIMSYNC  <  ASYNC  <=  SYNC

   For each strict step this program runs the positive protocol on one side
   and executes the impossibility machinery on the other — the Figure 1 / 2
   gadgets and the Lemma 3 counting floors, with exact big-integer
   arithmetic.

     dune exec examples/separation.exe *)

module P = Wb_model
module G = Wb_graph
module R = Wb_reductions

let heading s = Printf.printf "\n=== %s ===\n" s

let () =
  let rng = Wb_support.Prng.create 7 in

  heading "Step 1: SIMASYNC < SIMSYNC, witnessed by rooted MIS";
  let g = G.Gen.random_gnp rng 18 0.25 in
  let run = P.Engine.run_packed (Wb_protocols.Mis_simsync.protocol ~root:0) g (P.Adversary.random rng) in
  (match run.P.Engine.outcome with
  | P.Engine.Success (P.Answer.Node_set s) ->
    Printf.printf "SIMSYNC greedy finds MIS %s (max message %d bits)\n"
      (String.concat "," (List.map (fun v -> string_of_int (v + 1)) s))
      run.P.Engine.stats.max_message_bits
  | _ -> print_endline "unexpected failure");
  Printf.printf "Theorem 6 gadget check on this graph: %b\n" (R.Mis_reduction.gadget_faithful g);
  Printf.printf
    "so a SIMASYNC MIS protocol with f bits/node yields BUILD with 2f + O(log n) bits/node;\n\
     but BUILD on all graphs needs >= %d bits/node at n = 4096 (exact count 2^%d graphs):\n\
     no o(n) SIMASYNC protocol can exist.\n"
    (R.Counting.min_message_bits R.Counting.all_graphs 4096)
    (Wb_bignum.Nat.log2_floor (R.Counting.all_graphs.R.Counting.count 4096));

  heading "Step 2: SIMSYNC < ASYNC, witnessed by EOB-BFS";
  let eob = G.Gen.random_eob rng 16 0.3 in
  let run = P.Engine.run_packed Wb_protocols.Eob_bfs_async.protocol eob (P.Adversary.random rng) in
  (match run.P.Engine.outcome with
  | P.Engine.Success (P.Answer.Forest parent) ->
    Printf.printf "ASYNC layer protocol outputs a BFS forest (valid: %b)\n"
      (G.Algo.is_valid_bfs_forest eob parent)
  | _ -> print_endline "unexpected failure");
  let faithful = ref true in
  let t = ref 1 in
  while !t < 16 do
    if not (R.Eob_bfs_reduction.gadget_faithful eob ~target:!t) then faithful := false;
    t := !t + 2
  done;
  Printf.printf "Figure 2 gadgets on this instance: all faithful = %b\n" !faithful;
  Printf.printf "EOB graphs at n = 4096 count 2^%d, floor %d bits/node: SIMSYNC is out.\n"
    (Wb_bignum.Nat.log2_floor (R.Counting.even_odd_bipartite.R.Counting.count 4096))
    (R.Counting.min_message_bits R.Counting.even_odd_bipartite 4096);

  heading "Step 3: ASYNC <= SYNC; strictness open (Open Problem 3)";
  let any = G.Gen.random_connected rng 16 0.25 in
  let run = P.Engine.run_packed Wb_protocols.Bfs_sync.protocol any (P.Adversary.random rng) in
  Printf.printf "SYNC solves BFS on an arbitrary graph: %b\n" (P.Engine.succeeded run);
  let odd = G.Graph.of_edges 5 [ (0, 1); (0, 2); (1, 2); (1, 3); (3, 4) ] in
  let all_deadlock, _ =
    P.Engine.explore_packed_exn Wb_protocols.Bfs_bipartite_async.protocol odd (fun r ->
        P.Engine.outcome_equal r.P.Engine.outcome P.Engine.Deadlock)
  in
  Printf.printf "the ASYNC certificate protocol deadlocks on a non-bipartite witness: %b\n"
    all_deadlock;

  heading "Orthogonal axis: message size (Theorem 9)";
  List.iter
    (fun (r : R.Subgraph_bound.row) ->
      Printf.printf "n=%-5d f=%-4d SIMASYNC does it with %d bits; every model needs >= %d\n" r.n
        r.f r.sim_async_bits r.lower_bound_bits)
    (R.Subgraph_bound.evaluate ~cutoff:(fun n -> n / 2) ~ns:[ 64; 256 ])
