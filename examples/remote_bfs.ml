(* The same BFS-layer picture as bfs_layers.ml, but nobody shares an
   address space: the board lives in a wb_net referee and each of the 20
   nodes is a Client answering ACTIVATE/COMPOSE queries over the wire
   protocol, with its own board replica fed by BOARD-DELTA frames.  The
   deterministic loopback transport keeps the demo single-threaded while
   exercising the full codec path; the final table is identical to the
   in-process engine's, and diff_runs proves it field by field.

     dune exec examples/remote_bfs.exe *)

module P = Wb_model
module G = Wb_graph
module Net = Wb_net

let show_layers g (run : P.Engine.run) =
  match run.P.Engine.outcome with
  | P.Engine.Success (P.Answer.Forest parent) ->
    let depth = Array.make (Array.length parent) 0 in
    let rec d v = if parent.(v) < 0 then 0 else 1 + d parent.(v) in
    Array.iteri (fun v _ -> depth.(v) <- d v) parent;
    let max_depth = Array.fold_left max 0 depth in
    for layer = 0 to max_depth do
      let members =
        List.filter (fun v -> depth.(v) = layer) (List.init (Array.length parent) Fun.id)
      in
      Printf.printf "  layer %d: %s\n" layer
        (String.concat " " (List.map (fun v -> string_of_int (v + 1)) members))
    done;
    Printf.printf "  valid BFS forest: %b\n" (G.Algo.is_valid_bfs_forest g parent)
  | P.Engine.Deadlock -> print_endline "  DEADLOCK"
  | _ -> print_endline "  failed"

let () =
  let g = G.Gen.grid 4 5 in
  let adversary () = P.Adversary.last_writer_neighbor_avoider g in
  print_endline "SYNC BFS on a 4x5 grid, spiteful adversary — over the wire protocol:";
  let remote =
    Net.Remote.run_loopback ~protocol:Wb_protocols.Bfs_sync.protocol g (adversary ())
  in
  show_layers g remote.Net.Session.run;
  Printf.printf "  node faults: %d\n" (List.length remote.Net.Session.faults);
  Printf.printf "  writes followed layer order despite the adversary: %s\n"
    (String.concat " "
       (List.map
          (fun v -> string_of_int (v + 1))
          (Array.to_list remote.Net.Session.run.P.Engine.writes)));
  let frames = Wb_obs.Metrics.counter_value (Net.Conn.Metrics.frames_sent) in
  let bytes = Wb_obs.Metrics.counter_value (Net.Conn.Metrics.bytes_sent) in
  Printf.printf "  wire traffic: %d frames, %d bytes\n\n" frames bytes;

  print_endline "The same run in-process, and the differential between the two:";
  let local = P.Engine.run_packed Wb_protocols.Bfs_sync.protocol g (adversary ()) in
  show_layers g local;
  (match Net.Remote.diff_runs remote.Net.Session.run local with
  | [] ->
    print_endline
      "  -> identical: board, write order, per-node bits, rounds all agree\n\
      \     (the referee replicates Engine semantics exactly — Section 2's\n\
      \     model does not care where the whiteboard physically lives)"
  | issues -> List.iter (fun i -> Printf.printf "  MISMATCH: %s\n" i) issues)
