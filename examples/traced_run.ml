(* The observability counterpart of bfs_layers.ml: watch the ASYNC
   bipartite-promise BFS deadlock on the odd-cycle witness, event by event.

   A Ring flight recorder captures the tail of the execution; the timeline
   renderer shows every activation, recomposition, adversarial pick and
   write, and the deadlock-detection round agrees with the summary line.
   The SYNC protocol on the same graph succeeds (its candidates keep
   recomposing until the layer certificates land), and EOB-BFS terminates
   with Reject — deadlock is a property of the frozen certificate, not of
   the graph.  A final metrics dump shows what the engine counted.

     dune exec examples/traced_run.exe *)

module P = Wb_model
module G = Wb_graph
module Obs = Wb_obs

(* Triangle 0-1-2 with tail 1-3-4: the edge inside layer 1 starves node 5's
   layer-completion certificate (Section 6 corrupted configurations). *)
let witness = G.Graph.of_edges 5 [ (0, 1); (0, 2); (1, 2); (1, 3); (3, 4) ]

let traced protocol g =
  let tr, events = Obs.Trace.collector () in
  let run = P.Engine.run_packed ~trace:tr protocol g P.Adversary.min_id in
  (run, events ())

let () =
  print_endline "ASYNC (bipartite promise) BFS on the odd-cycle-plus-tail witness:";
  let run, events = traced Wb_protocols.Bfs_bipartite_async.protocol witness in
  print_endline (P.Report.summary run);
  print_endline (P.Report.timeline_of_events ~n:(G.Graph.n witness) events);

  print_endline "\nthe flight-recorder view (last 6 events of the same run):";
  let ring = Obs.Trace.Ring.create ~capacity:6 in
  let sink = Obs.Trace.Ring.sink ring in
  let _ = P.Engine.run_packed ~trace:sink Wb_protocols.Bfs_bipartite_async.protocol witness P.Adversary.min_id in
  List.iter
    (fun ev -> Format.printf "  %a@." Obs.Event.pp ev)
    (Obs.Trace.Ring.to_list ring);

  print_endline "\nSYNC BFS on the same graph (recomposition defeats the starvation):";
  let run, events = traced Wb_protocols.Bfs_sync.protocol witness in
  print_endline (P.Report.summary run);
  print_endline (P.Report.timeline_of_events ~n:(G.Graph.n witness) events);

  print_endline "\nEOB-BFS on the same graph (parity detectors: terminates with Reject):";
  let run, _ = traced Wb_protocols.Eob_bfs_async.protocol witness in
  print_endline (P.Report.summary run);

  print_endline "\nwhat the engine counted across the three runs:";
  Format.printf "%a@." Obs.Metrics.pp_table ()
