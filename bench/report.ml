(* The shared bench report: every bench main (bench/main.exe sections,
   explorebench, rpcbench, `wbctl bench`) emits its machine-readable
   sidecar through this module, so all of them share one schema-versioned
   envelope —

     { schema: 1, bench, seed, git, params, wall_s, rows, metrics, registry }

   [metrics] is the flat name -> number map scripts/benchdiff.ml diffs
   across runs (numeric row fields are auto-flattened into it as
   "<row>.<field>"); [registry] is the full Wb_obs.Metrics snapshot for
   forensic reading.  Bumping the shape means bumping [schema_version]. *)

module J = Wb_obs.Json

let schema_version = 1

(* ---- uniform bench CLI -------------------------------------------------- *)

module Cli = struct
  (* Every bench main accepts the same flags: [--seed N] overrides the
     bench's historical default seed (recorded in the report either way),
     [--out FILE] redirects the sidecar, [--fast] trims instance lists for
     CI.  Remaining arguments pass through in [rest] (section names for
     bench/main.exe; anything else is the binary's error to report). *)
  type t = { seed : int option; out : string option; fast : bool; rest : string list }

  let usage name = Printf.sprintf "usage: %s [--seed N] [--out FILE] [--fast] [SECTION...]" name

  let parse ?(argv = Sys.argv) () =
    let name = Filename.basename argv.(0) in
    let die () =
      prerr_endline (usage name);
      exit 2
    in
    let rec go acc rest = function
      | [] -> { acc with rest = List.rev rest }
      | "--seed" :: v :: tl -> (
        match int_of_string_opt v with
        | Some s -> go { acc with seed = Some s } rest tl
        | None -> die ())
      | "--out" :: v :: tl -> go { acc with out = Some v } rest tl
      | "--fast" :: tl -> go { acc with fast = true } rest tl
      | [ "--seed" ] | [ "--out" ] -> die ()
      | arg :: _ when String.length arg >= 2 && String.equal (String.sub arg 0 2) "--" ->
        die ()
      | arg :: tl -> go acc (arg :: rest) tl
    in
    go { seed = None; out = None; fast = false; rest = [] } []
      (List.tl (Array.to_list argv))

  let seed t ~default = match t.seed with Some s -> s | None -> default
end

(* ---- report assembly ---------------------------------------------------- *)

type t = {
  bench : string;
  seed : int;
  params : (string * J.t) list;
  started : float;
  mutable rows : J.t list;  (* newest first *)
  mutable metrics : (string * float) list;  (* newest first *)
}

let git_rev () =
  match Sys.getenv_opt "WB_GIT_REV" with
  | Some s when not (String.equal s "") -> s
  | _ -> (
    try
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when not (String.equal line "") -> line
      | _ -> "unknown"
    with Unix.Unix_error _ | Sys_error _ -> "unknown")

let create ?(params = []) ~bench ~seed () =
  { bench; seed; params; started = Unix.gettimeofday (); rows = []; metrics = [] }

let add_metric t key v = t.metrics <- (key, v) :: t.metrics

(* Numeric row fields feed the diffable metric map as "<row>.<field>";
   one level of nested objects (the rpc bench's per-histogram sub-rows)
   flattens as "<row>.<field>.<subfield>". *)
let flatten t ~name fields =
  let num prefix (k, v) =
    match v with
    | J.Int i -> add_metric t (Printf.sprintf "%s.%s" prefix k) (float_of_int i)
    | J.Float f -> add_metric t (Printf.sprintf "%s.%s" prefix k) f
    | _ -> ()
  in
  List.iter
    (fun (k, v) ->
      match v with
      | J.Obj sub -> List.iter (num (Printf.sprintf "%s.%s" name k)) sub
      | v -> num name (k, v))
    fields

let add_row t ~name fields =
  t.rows <- J.Obj (("name", J.String name) :: fields) :: t.rows;
  flatten t ~name fields

let to_json t =
  let wall = Unix.gettimeofday () -. t.started in
  let metrics =
    ("wall_s", J.Float wall)
    :: List.rev_map (fun (k, v) -> (k, J.Float v)) t.metrics
  in
  J.Obj
    [ ("schema", J.Int schema_version);
      ("bench", J.String t.bench);
      ("seed", J.Int t.seed);
      ("git", J.String (git_rev ()));
      ("params", J.Obj t.params);
      ("wall_s", J.Float wall);
      ("rows", J.List (List.rev t.rows));
      ("metrics", J.Obj metrics);
      ("registry", Wb_obs.Metrics.dump_json ()) ]

let default_out t = "BENCH_" ^ t.bench ^ ".json"

let write ?out t =
  let doc = to_json t in
  let file = match out with Some f -> f | None -> default_out t in
  let oc = open_out file in
  J.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" file;
  doc

(* ---- loading / history -------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  match J.of_string (read_file path) with
  | Ok j -> Ok j
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | exception Sys_error e -> Error e

let load_history path =
  match read_file path with
  | exception Sys_error _ -> []
  | contents ->
    String.split_on_char '\n' contents
    |> List.filter_map (fun line ->
           if String.equal (String.trim line) "" then None
           else match J.of_string line with Ok j -> Some j | Error _ -> None)

let append_history ~history doc =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 history in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      J.to_channel oc doc;
      output_char oc '\n')

(* ---- schema accessors --------------------------------------------------- *)

let schema_of doc = match J.member "schema" doc with Some (J.Int v) -> Some v | _ -> None

let bench_of doc =
  match J.member "bench" doc with Some (J.String s) -> Some s | _ -> None

let metrics_of doc =
  match J.member "metrics" doc with
  | Some (J.Obj kvs) ->
    List.filter_map
      (fun (k, v) ->
        match v with
        | J.Int i -> Some (k, float_of_int i)
        | J.Float f -> Some (k, f)
        | _ -> None)
      kvs
  | _ -> []
