(* RPC latency under the networked referee, as a machine-readable perf
   record: each instance runs a loopback session (referee plus n in-process
   clients over [Conn.loopback_served], the deterministic transport) and
   its row reports the per-RPC latency percentiles accumulated in the
   [net.rpc.*] histograms — the same numbers `wbctl top` serves live over
   the TELEMETRY frame.  The registry is reset before every instance so
   each row owns its distribution.

   The core is a library function so bench/rpcbench.exe and `wbctl bench`
   drive the same instances; [fast] trims the suite for CI gates.  [seed]
   feeds the random-EOB instance graph (historical default 3). *)

module P = Wb_model
module G = Wb_graph
module Net = Wb_net
module Obs = Wb_obs
module J = Obs.Json
module R = Wb_protocols.Registry

let m_activate = Obs.Metrics.histogram "net.rpc.activate_us"
let m_compose = Obs.Metrics.histogram "net.rpc.compose_us"

let pct h p =
  match Obs.Metrics.percentile_opt h p with Some v -> J.Int v | None -> J.Null

let hist_row h =
  [ ("count", J.Int (Obs.Metrics.histogram_count h));
    ("p50_us", pct h 50.);
    ("p95_us", pct h 95.);
    ("p99_us", pct h 99.) ]

let instance rep ~key ~graph =
  match R.find key with
  | None -> failwith ("unknown protocol " ^ key)
  | Some entry ->
    Obs.Metrics.reset ();
    let t0 = Unix.gettimeofday () in
    let r = Net.Remote.run_loopback ~protocol:entry.R.protocol graph P.Adversary.min_id in
    let wall = Unix.gettimeofday () -. t0 in
    if not (P.Engine.succeeded r.Net.Session.run) then failwith (key ^ ": run failed");
    if not (List.is_empty r.Net.Session.faults) then
      failwith (key ^ ": faults in a loopback run");
    Printf.printf
      "%-16s n=%-3d activate p50 %5dus p99 %5dus   compose p50 %5dus p99 %5dus\n" key
      (G.Graph.n graph)
      (Obs.Metrics.percentile m_activate 50.)
      (Obs.Metrics.percentile m_activate 99.)
      (Obs.Metrics.percentile m_compose 50.)
      (Obs.Metrics.percentile m_compose 99.);
    Report.add_row rep ~name:key
      [ ("n", J.Int (G.Graph.n graph));
        ("rounds", J.Int r.Net.Session.run.P.Engine.stats.rounds);
        ("wall_s", J.Float wall);
        ("activate", J.Obj (hist_row m_activate));
        ("compose", J.Obj (hist_row m_compose)) ]

let run ?(seed = 3) ?(fast = false) ?out () =
  print_endline "Loopback RPC latency (net.rpc.* histograms, microseconds)";
  let rep =
    Report.create ~bench:"rpc" ~seed ~params:[ ("fast", J.Bool fast) ] ()
  in
  instance rep ~key:"bfs" ~graph:(G.Gen.grid 4 4);
  instance rep ~key:"mis" ~graph:(G.Gen.cycle 12);
  if not fast then begin
    instance rep ~key:"build-naive" ~graph:(G.Gen.complete 10);
    instance rep ~key:"eob-bfs" ~graph:(G.Gen.random_eob (Wb_support.Prng.create seed) 12 0.3)
  end;
  Report.write ?out rep
