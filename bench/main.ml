(* Benchmark and table-regeneration harness.

   `dune exec bench/main.exe` regenerates every table and figure of the
   paper (plus the extension experiments) and then runs the bechamel
   timing suite.  Pass section names to run a subset:

     dune exec bench/main.exe -- table2 fig synth

   Sections: table1 table2 fig msgsize lattice synth congest cost open
   timing.  Set WB_BENCH_FAST=1 to skip the slow n=4 SIMSYNC synthesis
   cell.

   The uniform bench CLI applies: --seed N overrides the sections' default
   seeds, --out FILE redirects the sidecar of a single-section run.  Every
   section writes a machine-readable BENCH_<section>.json sidecar in the
   Wb_bench.Report schema (rows where the section emits them, a flat
   diffable metric map, wall time and a registry snapshot); WB_BENCH_JSON=0
   disables the sidecars.  Sections marked [`Core] live in the wb_bench
   library (shared with `wbctl bench`) and write their own envelope;
   [`Wrapped] sections report through Harness.Emit. *)

let sections =
  [ ("table1", `Wrapped (fun () ->
        Harness.section "Table 1 — the four models";
        print_endline (Wb_model.Model.table1 ());
        List.iter
          (fun m ->
            Harness.Emit.row "table1" ~name:(Wb_model.Model.name m)
              [ ("simultaneous", Wb_obs.Json.Bool (Wb_model.Model.simultaneous m));
                ("frozen_at_activation", Wb_obs.Json.Bool (Wb_model.Model.frozen_at_activation m)) ])
          Wb_model.Model.all));
    ("table2", `Wrapped Table2.print);
    ("fig", `Wrapped Figures.print);
    ("msgsize",
     `Core (fun ~seed ~fast ~out -> ignore (Wb_bench.Msgsize_core.run ?seed ~fast ?out ())));
    ("lattice", `Wrapped Lattice.print);
    ("synth", `Wrapped Synthbench.print);
    ("congest",
     `Core (fun ~seed ~fast ~out -> ignore (Wb_bench.Congest_core.run ?seed ~fast ?out ())));
    ("cost", `Core (fun ~seed ~fast ~out -> ignore (Wb_bench.Cost_core.run ?seed ~fast ?out ())));
    ("open", `Wrapped Openproblems.print);
    ("timing", `Wrapped Timing.print) ]

let () =
  let cli = Wb_bench.Report.Cli.parse () in
  let requested = cli.Wb_bench.Report.Cli.rest in
  let chosen =
    if requested = [] then sections
    else
      List.filter (fun (name, _) -> List.mem name requested) sections
  in
  if List.is_empty chosen then begin
    Printf.eprintf "unknown section(s); available: %s\n"
      (String.concat " " (List.map fst sections));
    exit 1
  end;
  let single = List.length chosen = 1 in
  (match cli.Wb_bench.Report.Cli.out with
  | Some _ when not single ->
    prerr_endline "bench: --out FILE requires exactly one section";
    exit 2
  | _ -> ());
  Harness.Emit.configure ~single cli;
  List.iter
    (fun (name, section) ->
      match section with
      | `Wrapped run ->
        Harness.Emit.start name;
        run ();
        Harness.Emit.finish name
      | `Core run ->
        let out = if single then cli.Wb_bench.Report.Cli.out else None in
        run ~seed:cli.Wb_bench.Report.Cli.seed ~fast:cli.Wb_bench.Report.Cli.fast ~out)
    chosen
