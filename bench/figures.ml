(* Regenerates Figures 1 and 2: the reduction gadgets, checked property by
   property, plus an end-to-end run of each protocol transformer. *)

module P = Wb_model
module G = Wb_graph
module R = Wb_reductions
module Prng = Wb_support.Prng

let fig1 () =
  Harness.section "Figure 1 — gadget G'_{s,t}: triangle <=> edge";
  let rng = Prng.create 41 in
  let sizes = [ (4, 4); (6, 6); (8, 8); (16, 16) ] in
  List.iter
    (fun (a, b) ->
      let g = G.Gen.random_bipartite rng a b 0.4 in
      let pairs = (a + b) * (a + b - 1) / 2 in
      let ok = R.Triangle_reduction.gadget_faithful g in
      Printf.printf "bipartite %2d+%2d: %4d gadgets built and checked   [%s]\n" a b pairs
        (Harness.tick ok))
    sizes;
  Harness.subsection "exhaustive: every triangle-free graph on 6 nodes";
  let all = List.filter (fun g -> not (G.Algo.has_triangle g)) (G.Gen.all_labelled_graphs 6) in
  let ok = List.for_all R.Triangle_reduction.gadget_faithful all in
  Printf.printf "%d triangle-free graphs, all pairs                    [%s]\n" (List.length all)
    (Harness.tick ok);
  Harness.subsection "Theorem 3 transformer (oracle-driven) end to end";
  let protocol = R.Triangle_reduction.transform R.Oracles.triangle_simasync in
  let g = G.Gen.random_bipartite rng 5 5 0.5 in
  let run = P.Engine.run_packed protocol g (P.Adversary.random rng) in
  let ok = P.Engine.outcome_equal run.P.Engine.outcome (P.Engine.Success (P.Answer.Graph g)) in
  Printf.printf "BUILD-from-TRIANGLE reconstructs bipartite n=10, %d bits/msg  [%s]\n"
    run.P.Engine.stats.max_message_bits (Harness.tick ok)

let fig2 () =
  Harness.section "Figure 2 — gadget G_i: BFS layer 3 of v_1 = N(v_i)";
  let rng = Prng.create 43 in
  List.iter
    (fun s ->
      let g = G.Gen.random_eob rng s 0.35 in
      let ok = ref true and count = ref 0 in
      let t = ref 1 in
      while !t < s do
        incr count;
        if not (R.Eob_bfs_reduction.gadget_faithful g ~target:!t) then ok := false;
        t := !t + 2
      done;
      Printf.printf "EOB input s=%2d: %2d gadgets (one per odd id), layers checked  [%s]\n" s !count
        (Harness.tick !ok))
    [ 4; 8; 12; 20; 32 ];
  Harness.subsection "gadgets remain even-odd-bipartite";
  let g = G.Gen.random_eob rng 12 0.4 in
  let ok =
    List.for_all
      (fun t -> G.Algo.is_even_odd_bipartite (R.Eob_bfs_reduction.gadget g ~target:t))
      [ 1; 3; 5; 7; 9; 11 ]
  in
  Printf.printf "all 6 gadgets EOB                                            [%s]\n"
    (Harness.tick ok);
  Harness.subsection "Theorem 8 transformer (oracle-driven) end to end";
  let protocol = R.Eob_bfs_reduction.transform R.Oracles.eob_bfs_simsync in
  let g = G.Gen.random_eob rng 10 0.4 in
  let run = P.Engine.run_packed protocol g (P.Adversary.random rng) in
  let ok = P.Engine.outcome_equal run.P.Engine.outcome (P.Engine.Success (P.Answer.Graph g)) in
  Printf.printf "BUILD-from-EOB-BFS reconstructs EOB n=10                     [%s]\n"
    (Harness.tick ok)

let print () =
  fig1 ();
  fig2 ()
