(* The communication-cost observatory sweep: every registry protocol runs
   on a promise-satisfying instance at several sizes, and its measured
   worst message is checked against the entry's certificate — measured <=
   envelope always, measured >= Lemma 3 floor where the entry declares one.
   Any violation aborts the process: the bench doubles as the @check-cost
   gate, and a silently-recorded violation would read as a pass.

   The core is a library function so bench/costbench.exe, `wbctl bench`
   and `wbctl cost` drive the same measurement. *)

module P = Wb_model
module G = Wb_graph
module Reg = Wb_protocols.Registry
module Cost = Wb_obs.Cost
module J = Wb_obs.Json

type row = {
  key : string;
  graph_n : int;  (* actual instance size: 2*(n/2) for two-cliques entries *)
  rounds : int;
  total_bits : int;
  verdict : Cost.verdict;
}

(* min_id keeps the sweep deterministic; every registry protocol succeeds
   under every schedule on promise-respecting instances, so the adversary
   choice only picks which of the equally-bounded runs we measure. *)
let measure (e : Reg.entry) ~seed ~n =
  let g = Reg.sweep_graph e ~seed ~n in
  let gn = G.Graph.n g in
  let run = P.Engine.run_packed e.Reg.protocol g P.Adversary.min_id in
  (match run.P.Engine.outcome with
  | P.Engine.Success _ -> ()
  | o ->
    failwith
      (Printf.sprintf "cost sweep: %s failed at n=%d (%s)" e.Reg.key gn (P.Engine.outcome_tag o)));
  { key = e.Reg.key;
    graph_n = gn;
    rounds = run.P.Engine.stats.rounds;
    total_bits = run.P.Engine.stats.total_bits;
    verdict = Cost.check e.Reg.certificate ~n:gn ~measured:run.P.Engine.stats.max_message_bits }

let row_fields r =
  [ ("n", J.Int r.graph_n);
    ("measured_bits", J.Int r.verdict.Cost.measured);
    ("envelope_bits", J.Int r.verdict.Cost.envelope_bits);
    ("floor_bits", J.Int (match r.verdict.Cost.floor_bits with Some f -> f | None -> 0));
    ("rounds", J.Int r.rounds);
    ("total_bits", J.Int r.total_bits);
    ("envelope_ok", J.Bool r.verdict.Cost.envelope_ok);
    ("floor_ok", J.Bool r.verdict.Cost.floor_ok) ]

let print_header () =
  Printf.printf "%-26s %6s %9s %9s %7s %11s  %s\n" "protocol" "n" "measured" "envelope" "floor"
    "total" "ok"

let print_row r =
  Printf.printf "%-26s %6d %9d %9d %7s %11d  %s\n" r.key r.graph_n r.verdict.Cost.measured
    r.verdict.Cost.envelope_bits
    (match r.verdict.Cost.floor_bits with Some f -> string_of_int f | None -> "-")
    r.total_bits
    (if Cost.verdict_ok r.verdict then "ok" else "VIOLATION")

let run ?(seed = 2012) ?(fast = false) ?out () =
  let ns = if fast then [ 16; 64 ] else [ 16; 64; 256 ] in
  print_endline "Communication-cost certificates: measured vs envelope vs Lemma 3 floor";
  let rep =
    Report.create ~bench:"cost" ~seed
      ~params:[ ("ns", J.List (List.map (fun n -> J.Int n) ns)); ("fast", J.Bool fast) ]
      ()
  in
  print_header ();
  List.iter
    (fun (e : Reg.entry) ->
      List.iter
        (fun n ->
          let r = measure e ~seed ~n in
          print_row r;
          Report.add_row rep ~name:(Printf.sprintf "%s/n=%d" r.key r.graph_n) (row_fields r);
          if not (Cost.verdict_ok r.verdict) then
            failwith
              (Printf.sprintf "cost sweep: %s violates its certificate at n=%d (measured %d)"
                 r.key r.graph_n r.verdict.Cost.measured))
        ns)
    (Reg.all ());
  Report.write ?out rep
