(* Bechamel timing benches: one per regenerated table/figure (protocol
   executions at realistic sizes) plus the ablations DESIGN.md calls out
   (decoder strategy, bignum kernel, SAT kernel). *)

open Bechamel

module P = Wb_model
module G = Wb_graph
module Prng = Wb_support.Prng

let run_protocol protocol g =
  let run = P.Engine.run_packed protocol g P.Adversary.min_id in
  assert (P.Engine.succeeded run)

let tests () =
  let rng = Prng.create 2025 in
  let tree = G.Gen.random_tree rng 256 in
  let ktree3 = G.Gen.random_ktree rng 128 ~k:3 in
  let gnp = G.Gen.random_connected rng 128 0.08 in
  let eob = G.Gen.random_eob rng 128 0.1 in
  let cliques = G.Gen.two_cliques 64 in
  let mis_graph = G.Gen.random_gnp rng 128 0.1 in
  let sums_ids = [ 17; 54; 120 ] in
  let sums = Wb_protocols.Decode.power_sums ~k:3 sums_ids in
  let table = Wb_protocols.Decode.Table.build ~n:128 ~k:2 in
  let sums2 = Wb_protocols.Decode.power_sums ~k:2 [ 17; 54 ] in
  let big_a = Wb_bignum.Nat.pow_int 3 4000 in
  let big_b = Wb_bignum.Nat.pow_int 7 2000 in
  let sat_instance () =
    (* a satisfiable random 3-SAT instance below threshold *)
    let rng = Prng.create 11 in
    let s = Wb_sat.Solver.create 120 in
    for _ = 1 to 400 do
      Wb_sat.Solver.add_clause s
        (List.init 3 (fun _ ->
             let v = 1 + Prng.int rng 120 in
             if Prng.bool rng then v else -v))
    done;
    s
  in
  [ Test.make ~name:"table2/build-forest n=256"
      (Staged.stage (fun () -> run_protocol Wb_protocols.Build_forest.protocol tree));
    Test.make ~name:"table2/build-3-degenerate n=128"
      (Staged.stage (fun () ->
           run_protocol (Wb_protocols.Build_degenerate.protocol ~k:3 ~decoder:`Backtracking) ktree3));
    Test.make ~name:"table2/mis n=128"
      (Staged.stage (fun () -> run_protocol (Wb_protocols.Mis_simsync.protocol ~root:0) mis_graph));
    Test.make ~name:"table2/two-cliques n=128"
      (Staged.stage (fun () -> run_protocol Wb_protocols.Two_cliques_simsync.protocol cliques));
    Test.make ~name:"table2/eob-bfs n=128"
      (Staged.stage (fun () -> run_protocol Wb_protocols.Eob_bfs_async.protocol eob));
    Test.make ~name:"table2/bfs-sync n=128"
      (Staged.stage (fun () -> run_protocol Wb_protocols.Bfs_sync.protocol gnp));
    Test.make ~name:"fig1/gadget-check bipartite n=12"
      (Staged.stage
         (let g = G.Gen.random_bipartite (Prng.create 3) 6 6 0.4 in
          fun () -> assert (Wb_reductions.Triangle_reduction.gadget_faithful g)));
    Test.make ~name:"fig2/gadget-check eob s=12"
      (Staged.stage
         (let g = G.Gen.random_eob (Prng.create 5) 12 0.4 in
          fun () -> assert (Wb_reductions.Eob_bfs_reduction.gadget_faithful g ~target:3)));
    Test.make ~name:"ablation/decode-backtracking k=3 n=128"
      (Staged.stage (fun () ->
           assert (Wb_protocols.Decode.decode_backtracking ~n:128 ~d:3 sums = Some sums_ids)));
    Test.make ~name:"ablation/decode-table k=2 n=128"
      (Staged.stage (fun () ->
           assert (Wb_protocols.Decode.Table.decode table ~d:2 sums2 = Some [ 17; 54 ])));
    Test.make ~name:"substrate/nat-mul 4000x2000 digits"
      (Staged.stage (fun () -> ignore (Wb_bignum.Nat.mul big_a big_b)));
    Test.make ~name:"substrate/sat random-3sat v=120 c=400"
      (Staged.stage (fun () ->
           let s = sat_instance () in
           ignore (Wb_sat.Solver.solve s)));
    Test.make ~name:"substrate/congest-bfs n=128"
      (Staged.stage (fun () -> ignore (Wb_congest.Bfs_flood.run gnp))) ]

let print () =
  Harness.section "Timing (bechamel, monotonic clock, ns/run)";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let grouped = Test.make_grouped ~name:"wb" (tests ()) in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |] in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with Some [ e ] -> e | Some _ | None -> nan
      in
      Harness.Emit.row "timing" ~name [ ("ns_per_run", Wb_obs.Json.Float estimate) ];
      Printf.printf "%-45s %12.0f ns/run\n" name estimate)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)
