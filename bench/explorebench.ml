(* Thin main over Wb_bench.Explore_core (shared with `wbctl bench`):
   sequential-vs-parallel exploration timings with the determinism check.
   Writes BENCH_explore.json (or --out FILE). *)

let () =
  let cli = Wb_bench.Report.Cli.parse () in
  (match cli.Wb_bench.Report.Cli.rest with
  | [] -> ()
  | junk ->
    Printf.eprintf "explorebench: unexpected arguments: %s\n" (String.concat " " junk);
    exit 2);
  ignore
    (Wb_bench.Explore_core.run
       ~seed:(Wb_bench.Report.Cli.seed cli ~default:2012)
       ~fast:cli.Wb_bench.Report.Cli.fast ?out:cli.Wb_bench.Report.Cli.out ())
