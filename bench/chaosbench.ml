(* Thin main over Wb_bench.Chaos_core (shared with `wbctl bench`):
   fault-injection campaign throughput with the crash-replay differential
   enforced on every run.  Writes BENCH_chaos.json (or --out FILE). *)

let () =
  let cli = Wb_bench.Report.Cli.parse () in
  (match cli.Wb_bench.Report.Cli.rest with
  | [] -> ()
  | junk ->
    Printf.eprintf "chaosbench: unexpected arguments: %s\n" (String.concat " " junk);
    exit 2);
  ignore
    (Wb_bench.Chaos_core.run
       ~seed:(Wb_bench.Report.Cli.seed cli ~default:7)
       ~fast:cli.Wb_bench.Report.Cli.fast ?out:cli.Wb_bench.Report.Cli.out ())
