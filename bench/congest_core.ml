(* Extension experiment: the paper's motivation quantified.  Total
   communication (bits) of whiteboard SYNC BFS (one short message per node,
   ever) vs the classical CONGEST flooding BFS (one message per edge), and
   whiteboard MIS vs Luby.

   Emits the schema-1 Wb_bench.Report envelope (BENCH_congest.json), so
   the ratios ride the bench history and the benchdiff gate; the core is
   shared by bench/main.exe's congest section and `wbctl bench congest`. *)

module P = Wb_model
module G = Wb_graph
module J = Wb_obs.Json
module Prng = Wb_support.Prng

let run_fields (r : P.Engine.run) =
  [ ("outcome", J.String (P.Engine.outcome_tag r.P.Engine.outcome));
    ("rounds", J.Int r.P.Engine.stats.rounds);
    ("max_bits", J.Int r.P.Engine.stats.max_message_bits);
    ("total_bits", J.Int r.P.Engine.stats.total_bits) ]

let bfs_row rep g label =
  let congest = (Wb_congest.Bfs_flood.run g).Wb_congest.Bfs_flood.stats in
  let run = P.Engine.run_packed Wb_protocols.Bfs_sync.protocol g P.Adversary.min_id in
  assert (P.Engine.succeeded run);
  let wb = run.P.Engine.stats in
  Report.add_row rep ~name:label
    (("n", J.Int (G.Graph.n g))
    :: ("m", J.Int (G.Graph.num_edges g))
    :: ("congest_bits", J.Int congest.Wb_congest.Congest.total_bits)
    :: run_fields run);
  Printf.printf "%-22s %-8d %-8d %-14d %-14d %5.1fx\n" label (G.Graph.n g) (G.Graph.num_edges g)
    wb.P.Engine.total_bits congest.Wb_congest.Congest.total_bits
    (float_of_int congest.Wb_congest.Congest.total_bits
    /. float_of_int (max 1 wb.P.Engine.total_bits))

let mis_row rep ~seed g label =
  let rng2 = Prng.create (seed + 5) in
  let run =
    P.Engine.run_packed (Wb_protocols.Mis_simsync.protocol ~root:0) g (P.Adversary.random rng2)
  in
  assert (P.Engine.succeeded run);
  let luby = Wb_congest.Luby_mis.run ~seed:11 g in
  Report.add_row rep ~name:("mis " ^ label)
    (("n", J.Int (G.Graph.n g))
    :: ("luby_bits", J.Int luby.Wb_congest.Luby_mis.stats.Wb_congest.Congest.total_bits)
    :: run_fields run);
  Printf.printf "%-22s %-8d %-14d %-7d (%d)      %5.1fx\n" label (G.Graph.n g)
    run.P.Engine.stats.total_bits luby.Wb_congest.Luby_mis.stats.Wb_congest.Congest.total_bits
    luby.Wb_congest.Luby_mis.stats.Wb_congest.Congest.rounds
    (float_of_int luby.Wb_congest.Luby_mis.stats.Wb_congest.Congest.total_bits
    /. float_of_int (max 1 run.P.Engine.stats.total_bits))

let run ?(seed = 77) ?(fast = false) ?out () =
  let rep = Report.create ~bench:"congest" ~seed ~params:[ ("fast", J.Bool fast) ] () in
  print_endline "Extension — whiteboard vs CONGEST: total communication for BFS";
  Printf.printf "%-22s %-8s %-8s %-14s %-14s %s\n" "graph" "n" "m" "whiteboard b" "congest b"
    "ratio";
  let rng = Prng.create seed in
  bfs_row rep (G.Gen.random_tree rng 64) "tree n=64";
  if not fast then bfs_row rep (G.Gen.random_tree rng 256) "tree n=256";
  bfs_row rep (G.Gen.random_connected rng 64 0.1) "gnp n=64 p=.1";
  if not fast then begin
    bfs_row rep (G.Gen.random_connected rng 256 0.1) "gnp n=256 p=.1";
    bfs_row rep (G.Gen.random_connected rng 256 0.3) "gnp n=256 p=.3"
  end;
  bfs_row rep (G.Gen.grid 16 16) "grid 16x16";
  bfs_row rep (G.Gen.hypercube 8) "hypercube d=8";
  Printf.printf
    "\n(whiteboard BFS pays O(log n) bits per NODE; CONGEST flooding pays O(log n) per EDGE,\n\
     so the gap tracks average degree — the denser the relation graph, the stronger the\n\
     case for communication that is not routed along the links.)\n";
  Printf.printf "\n-- MIS: whiteboard SIMSYNC greedy vs CONGEST Luby --\n";
  Printf.printf "%-22s %-8s %-14s %-16s %s\n" "graph" "n" "whiteboard b" "luby b (rounds)" "ratio";
  mis_row rep ~seed (G.Gen.random_connected rng 128 0.05) "gnp n=128 p=.05";
  if not fast then mis_row rep ~seed (G.Gen.random_connected rng 128 0.3) "gnp n=128 p=.3";
  mis_row rep ~seed (G.Gen.grid 12 12) "grid 12x12";
  Printf.printf
    "(the whiteboard MIS writes n one-bit-plus-ID messages once; Luby pays per edge per\n\
     phase — the link-free medium is decisively cheaper here.)\n";
  Report.write ?out rep
