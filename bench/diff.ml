(* Run-to-run comparison over Report metric maps: the newest run's metrics
   against the median of the prior runs, with a noise-aware threshold —
   a metric only counts as regressed when it exceeds the baseline by more
   than max(Y% of baseline, 3 * MAD of the priors).  The MAD floor keeps a
   jittery metric from tripping a tight percentage gate; the percentage
   keeps a rock-stable metric honest.

   Gates are "PAT:+Y%" specs: every metric whose name contains PAT is
   gated at +Y% (increase = regression; these are latency/allocation
   metrics, where down is good).  Without a gate a row is report-only. *)

type gate = { pat : string; pct : float }

let parse_gate s =
  match String.index_opt s ':' with
  | None -> None
  | Some i ->
    let pat = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let rest =
      if String.length rest > 0 && rest.[0] = '+' then
        String.sub rest 1 (String.length rest - 1)
      else rest
    in
    let rest =
      if String.length rest > 0 && rest.[String.length rest - 1] = '%' then
        String.sub rest 0 (String.length rest - 1)
      else rest
    in
    (match float_of_string_opt rest with
    | Some pct when String.length pat > 0 && pct >= 0. -> Some { pat; pct }
    | _ -> None)

let contains hay needle =
  let n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.equal (String.sub hay i n) needle || go (i + 1))
  in
  n = 0 || go 0

let median xs =
  match List.sort Float.compare xs with
  | [] -> invalid_arg "Diff.median: empty"
  | sorted ->
    let n = List.length sorted in
    let nth k = List.nth sorted k in
    if n mod 2 = 1 then nth (n / 2) else (nth ((n / 2) - 1) +. nth (n / 2)) /. 2.

(* Median absolute deviation — the robust noise estimate for the priors. *)
let mad ?med xs =
  let med = match med with Some m -> m | None -> median xs in
  median (List.map (fun x -> Float.abs (x -. med)) xs)

type row = {
  metric : string;
  prior_runs : int;
  baseline : float;  (** median of the priors; meaningless when [prior_runs = 0]. *)
  value : float;
  delta_pct : float;  (** vs baseline; [infinity] when baseline is 0 and value is not. *)
  gated : bool;
  regressed : bool;
}

(* Compare one report document against its prior runs (same bench, oldest
   first or any order — only the per-metric value sets matter). *)
let compare_run ~gates ~priors doc =
  let prior_metrics = List.map Report.metrics_of priors in
  List.map
    (fun (metric, value) ->
      let history =
        List.filter_map
          (fun m ->
            List.find_map
              (fun (k, v) -> if String.equal k metric then Some v else None)
              m)
          prior_metrics
      in
      let gate = List.find_opt (fun g -> contains metric g.pat) gates in
      let gated = Option.is_some gate in
      match history with
      | [] ->
        { metric; prior_runs = 0; baseline = 0.; value; delta_pct = 0.; gated;
          regressed = false }
      | _ :: _ ->
        let baseline = median history in
        let delta_pct =
          if Float.equal baseline 0. then if Float.equal value 0. then 0. else infinity
          else (value -. baseline) /. baseline *. 100.
        in
        let regressed =
          match gate with
          | None -> false
          | Some g ->
            let noise = 3. *. mad ~med:baseline history in
            value > baseline +. Float.max (Float.abs baseline *. g.pct /. 100.) noise
        in
        { metric; prior_runs = List.length history; baseline; value; delta_pct; gated;
          regressed })
    (Report.metrics_of doc)

let pp_row ppf r =
  let delta =
    if r.prior_runs = 0 then "      new"
    else if Float.equal r.delta_pct infinity then "     +inf"
    else Printf.sprintf "%+8.1f%%" r.delta_pct
  in
  let flag = if r.regressed then "  REGRESSED" else if r.gated then "  gated" else "" in
  let baseline = if r.prior_runs = 0 then "-" else Printf.sprintf "%.6g" r.baseline in
  Format.fprintf ppf "%-44s %3d %12s %12.6g %s%s@." r.metric r.prior_runs baseline r.value
    delta flag

let pp_table ppf rows =
  Format.fprintf ppf "%-44s %3s %12s %12s %9s@." "metric" "n" "baseline" "new" "delta";
  List.iter (pp_row ppf) rows

let regressions rows = List.filter (fun r -> r.regressed) rows
