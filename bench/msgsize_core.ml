(* Regenerates the Lemma 1 message-size claim: the k-degenerate BUILD
   protocol writes O(k^2 log n) bits per node.  Measured max message size
   across n and k, against the counting floor of Lemma 3 (trees) showing
   the log n factor is necessary.

   Emits the schema-1 Wb_bench.Report envelope (BENCH_msgsize.json), so
   its cells ride the bench history and the benchdiff gate like every
   other suite; the core is shared by bench/main.exe's msgsize section and
   `wbctl bench msgsize`. *)

module P = Wb_model
module G = Wb_graph
module R = Wb_reductions
module J = Wb_obs.Json
module Prng = Wb_support.Prng

let run_fields (r : P.Engine.run) =
  [ ("outcome", J.String (P.Engine.outcome_tag r.P.Engine.outcome));
    ("rounds", J.Int r.P.Engine.stats.rounds);
    ("max_bits", J.Int r.P.Engine.stats.max_message_bits);
    ("total_bits", J.Int r.P.Engine.stats.total_bits) ]

let measure rep ~seed ~n ~k =
  let rng = Prng.create (seed + n + k) in
  let g = if k = 1 then G.Gen.random_tree rng n else G.Gen.random_ktree rng n ~k in
  let protocol = Wb_protocols.Build_degenerate.protocol ~k ~decoder:`Backtracking in
  let run = P.Engine.run_packed protocol g (P.Adversary.random rng) in
  Report.add_row rep
    ~name:(Printf.sprintf "build-degenerate n=%d k=%d" n k)
    (("n", J.Int n) :: ("k", J.Int k) :: run_fields run);
  match run.P.Engine.outcome with
  | P.Engine.Success (P.Answer.Graph h) when G.Graph.equal g h ->
    run.P.Engine.stats.max_message_bits
  | _ -> -1

let run ?(seed = 2012) ?(fast = false) ?out () =
  let ns = if fast then [ 16; 64; 256 ] else [ 16; 32; 64; 128; 256; 512; 1024 ] in
  let split_ns = if fast then [ 16; 64 ] else [ 16; 64; 256 ] in
  let naive_ns = if fast then [ 64; 256 ] else [ 64; 256; 1024 ] in
  let rep =
    Report.create ~bench:"msgsize" ~seed
      ~params:[ ("ns", J.List (List.map (fun n -> J.Int n) ns)); ("fast", J.Bool fast) ]
      ()
  in
  print_endline "Lemma 1 — BUILD message size is O(k^2 log n) bits";
  Printf.printf "%-8s" "n";
  List.iter (fun k -> Printf.printf "k=%-8d" k) [ 1; 2; 3; 4; 5 ];
  Printf.printf "%-14s %s\n" "k2*log2(n)@5" "Lemma3 floor (trees)";
  List.iter
    (fun n ->
      Printf.printf "%-8d" n;
      List.iter (fun k -> Printf.printf "%-10d" (measure rep ~seed ~n ~k)) [ 1; 2; 3; 4; 5 ];
      let log2n = Wb_support.Bitbuf.width_of n in
      Printf.printf "%-14d %d\n" (25 * log2n)
        (R.Counting.min_message_bits R.Counting.labelled_trees n))
    ns;
  Printf.printf
    "\n(measured bits grow ~ k^2 log n and stay under the k^2 log2 n line; the Lemma 3 floor\n\
     for trees shows Omega(log n) is unavoidable even at k = 1.  -1 would flag a failed run.)\n";
  Printf.printf "\n-- extended class: degree <= k OR >= remaining-k-1 (Section 3, closing remark) --\n";
  Printf.printf "%-8s" "n";
  List.iter (fun k -> Printf.printf "k=%-8d" k) [ 1; 2; 3 ];
  Printf.printf "(about twice the plain-degeneracy size: both sum families)\n";
  List.iter
    (fun n ->
      Printf.printf "%-8d" n;
      List.iter
        (fun k ->
          let rng = Prng.create (seed + (3 * (n + k))) in
          let g = G.Gen.random_split_degenerate rng n ~k in
          let protocol = Wb_protocols.Build_split_degenerate.protocol ~k in
          let run = P.Engine.run_packed protocol g (P.Adversary.random rng) in
          Report.add_row rep
            ~name:(Printf.sprintf "build-split-degenerate n=%d k=%d" n k)
            (("n", J.Int n) :: ("k", J.Int k) :: run_fields run);
          let bits =
            match run.P.Engine.outcome with
            | P.Engine.Success (P.Answer.Graph h) when G.Graph.equal g h ->
              run.P.Engine.stats.max_message_bits
            | _ -> -1
          in
          Printf.printf "%-10d" bits)
        [ 1; 2; 3 ];
      print_newline ())
    split_ns;
  Printf.printf "\n-- naive baseline (whole rows, Theta(n) bits) --\n";
  List.iter
    (fun n ->
      let g = G.Gen.random_tree (Prng.create (seed + n)) n in
      let run = P.Engine.run_packed Wb_protocols.Build_naive.protocol g P.Adversary.min_id in
      Report.add_row rep
        ~name:(Printf.sprintf "build-naive n=%d" n)
        (("n", J.Int n) :: run_fields run);
      Printf.printf "n=%-6d naive %5d bits vs forest-protocol %3d bits\n" n
        run.P.Engine.stats.max_message_bits
        (measure rep ~seed ~n ~k:1))
    naive_ns;
  Report.write ?out rep
