(* Regenerates the experiments around the paper's open problems:
   - Open Problem 2: CONNECTIVITY is solvable in SYNC (constructive side);
   - Open Problem 3: the ASYNC bipartite protocol really deadlocks on
     non-bipartite inputs (the obstruction behind the conjecture);
   - Open Problem 4: a randomized SIMASYNC protocol for 2-CLIQUES, with the
     measured error rate as a function of fingerprint width. *)

module P = Wb_model
module G = Wb_graph
module Prng = Wb_support.Prng

let connectivity () =
  Harness.subsection "Open Problem 2 — CONNECTIVITY in SYNC[log n] (constructive side)";
  let rng = Prng.create 55 in
  let graphs =
    [ G.Gen.random_connected rng 48 0.07;
      G.Gen.random_gnp rng 48 0.02;
      G.Graph.of_edges 5 [ (0, 1); (2, 3) ];
      G.Gen.two_cliques 12 ]
  in
  let ok, runs, bits =
    Harness.verify Wb_protocols.Connectivity_sync.protocol
      (fun _ -> P.Problems.Connectivity)
      graphs ~exhaustive_below:6
  in
  Printf.printf "BFS-root counting protocol: %d runs, <=%d bits        [%s]\n" runs bits
    (Harness.tick ok)

let deadlock () =
  Harness.subsection "Open Problem 3 — why ASYNC seems too weak for BFS";
  let odd = G.Graph.of_edges 5 [ (0, 1); (0, 2); (1, 2); (1, 3); (3, 4) ] in
  let ok, schedules =
    match
      P.Engine.explore_packed Wb_protocols.Bfs_bipartite_async.protocol odd (fun r ->
          P.Engine.outcome_equal r.P.Engine.outcome P.Engine.Deadlock)
    with
    | Ok r -> r
    | Error (`Limit _) -> (false, 0)
  in
  Printf.printf
    "ASYNC layer protocol on triangle+tail: deadlocks under all %d schedules  [%s]\n" schedules
    (Harness.tick ok);
  let even = G.Gen.cycle 6 in
  let ok2 =
    match
      P.Engine.explore_packed Wb_protocols.Bfs_bipartite_async.protocol even (fun r ->
          match r.P.Engine.outcome with
          | P.Engine.Success a -> P.Problems.valid_answer P.Problems.Bfs even a
          | _ -> false)
    with
    | Ok (ok2, _) -> ok2
    | Error (`Limit _) -> false
  in
  Printf.printf "same protocol on C6 (bipartite): succeeds under all schedules       [%s]\n"
    (Harness.tick ok2)

let randomized () =
  Harness.subsection "Open Problem 4 — randomized 2-CLIQUES in SIMASYNC";
  Printf.printf "%-8s %-18s %-18s\n" "bits" "err(yes), 400 runs" "err(no), 400 runs";
  List.iter
    (fun bits ->
      let errors_yes = ref 0 and errors_no = ref 0 in
      for seed = 1 to 400 do
        let p = Wb_protocols.Two_cliques_randomized.protocol ~seed ~bits in
        let yes = G.Gen.two_cliques_shuffled (Prng.create seed) 8 in
        (match (P.Engine.run_packed p yes P.Adversary.min_id).P.Engine.outcome with
        | P.Engine.Success (P.Answer.Bool true) -> ()
        | _ -> incr errors_yes);
        let no = G.Gen.near_two_cliques 8 in
        match (P.Engine.run_packed p no P.Adversary.min_id).P.Engine.outcome with
        | P.Engine.Success (P.Answer.Bool false) -> ()
        | _ -> incr errors_no
      done;
      Printf.printf "%-8d %-18s %-18s\n" bits
        (Printf.sprintf "%.3f" (float_of_int !errors_yes /. 400.0))
        (Printf.sprintf "%.3f" (float_of_int !errors_no /. 400.0)))
    [ 1; 2; 4; 8; 16 ];
  Printf.printf
    "(error decays ~2^-bits as fingerprints stop colliding; at log n-size fingerprints the\n\
     protocol is correct w.h.p. — the randomized protocol the paper alludes to.)\n"

let sketches () =
  Harness.subsection "Open Problems 2+4 — randomized SIMASYNC connectivity by linear sketching";
  Printf.printf "%-8s %-10s %-12s %-16s %s\n" "n" "bits/msg" "naive bits" "err (100 graphs)" "spanning forest ok";
  List.iter
    (fun n ->
      let errors = ref 0 and forest_ok = ref 0 and bits = ref 0 in
      for seed = 1 to 100 do
        let rng = Prng.create (seed * 13) in
        let g =
          if seed mod 2 = 0 then G.Gen.random_connected rng n 0.08 else G.Gen.random_gnp rng n 0.04
        in
        let p = Wb_protocols.Sketch_connectivity.connectivity ~seed:(seed * 7) in
        let run = P.Engine.run_packed p g P.Adversary.min_id in
        bits := max !bits run.P.Engine.stats.max_message_bits;
        (match run.P.Engine.outcome with
        | P.Engine.Success (P.Answer.Bool b) when b = G.Algo.is_connected g -> ()
        | _ -> incr errors);
        let pf = Wb_protocols.Sketch_connectivity.spanning_forest ~seed:(seed * 7) in
        let run = P.Engine.run_packed pf g P.Adversary.min_id in
        match run.P.Engine.outcome with
        | P.Engine.Success a when P.Problems.valid_answer P.Problems.Spanning_forest g a ->
          incr forest_ok
        | _ -> ()
      done;
      Printf.printf "%-8d %-10d %-12d %-16s %d/100\n" n !bits n
        (Printf.sprintf "%d/100" !errors)
        !forest_ok)
    [ 16; 32; 64; 128 ];
  Printf.printf
    "(AGM-style l0-sampling sketches with public coins: one SIMASYNC message per node, the\n\
     referee runs Boruvka on summed sketches.  Messages are Theta(log^3 n) bits - the growth\n\
     column is what matters; the constant crosses the naive n-bit row only at large n.\n\
     This post-paper technique answers the randomized side of Open Problems 2 and 4.)\n"

let print () =
  Harness.section "Open problems — the constructive sides";
  connectivity ();
  deadlock ();
  randomized ();
  sketches ()
