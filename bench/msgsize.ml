(* Regenerates the Lemma 1 message-size claim: the k-degenerate BUILD
   protocol writes O(k^2 log n) bits per node.  Measured max message size
   across n and k, against the counting floor of Lemma 3 (trees) showing
   the log n factor is necessary. *)

module P = Wb_model
module G = Wb_graph
module R = Wb_reductions
module Prng = Wb_support.Prng

let measure ~n ~k =
  let rng = Prng.create (n + k) in
  let g = if k = 1 then G.Gen.random_tree rng n else G.Gen.random_ktree rng n ~k in
  let protocol = Wb_protocols.Build_degenerate.protocol ~k ~decoder:`Backtracking in
  let run = P.Engine.run_packed protocol g (P.Adversary.random rng) in
  Harness.Emit.row "msgsize"
    ~name:(Printf.sprintf "build-degenerate n=%d k=%d" n k)
    (("n", Wb_obs.Json.Int n) :: ("k", Wb_obs.Json.Int k) :: Harness.Emit.run_fields run);
  match run.P.Engine.outcome with
  | P.Engine.Success (P.Answer.Graph h) when G.Graph.equal g h ->
    run.P.Engine.stats.max_message_bits
  | _ -> -1

let print () =
  Harness.section "Lemma 1 — BUILD message size is O(k^2 log n) bits";
  Printf.printf "%-8s" "n";
  List.iter (fun k -> Printf.printf "k=%-8d" k) [ 1; 2; 3; 4; 5 ];
  Printf.printf "%-14s %s\n" "k2*log2(n)@5" "Lemma3 floor (trees)";
  List.iter
    (fun n ->
      Printf.printf "%-8d" n;
      List.iter (fun k -> Printf.printf "%-10d" (measure ~n ~k)) [ 1; 2; 3; 4; 5 ];
      let log2n = Wb_support.Bitbuf.width_of n in
      Printf.printf "%-14d %d\n" (25 * log2n)
        (R.Counting.min_message_bits R.Counting.labelled_trees n))
    [ 16; 32; 64; 128; 256; 512; 1024 ];
  Printf.printf
    "\n(measured bits grow ~ k^2 log n and stay under the k^2 log2 n line; the Lemma 3 floor\n\
     for trees shows Omega(log n) is unavoidable even at k = 1.  -1 would flag a failed run.)\n";
  Harness.subsection "extended class: degree <= k OR >= remaining-k-1 (Section 3, closing remark)";
  Printf.printf "%-8s" "n";
  List.iter (fun k -> Printf.printf "k=%-8d" k) [ 1; 2; 3 ];
  Printf.printf "(about twice the plain-degeneracy size: both sum families)\n";
  List.iter
    (fun n ->
      Printf.printf "%-8d" n;
      List.iter
        (fun k ->
          let rng = Prng.create (3 * (n + k)) in
          let g = G.Gen.random_split_degenerate rng n ~k in
          let protocol = Wb_protocols.Build_split_degenerate.protocol ~k in
          let run = P.Engine.run_packed protocol g (P.Adversary.random rng) in
          Harness.Emit.row "msgsize"
            ~name:(Printf.sprintf "build-split-degenerate n=%d k=%d" n k)
            (("n", Wb_obs.Json.Int n) :: ("k", Wb_obs.Json.Int k) :: Harness.Emit.run_fields run);
          let bits =
            match run.P.Engine.outcome with
            | P.Engine.Success (P.Answer.Graph h) when G.Graph.equal g h ->
              run.P.Engine.stats.max_message_bits
            | _ -> -1
          in
          Printf.printf "%-10d" bits)
        [ 1; 2; 3 ];
      print_newline ())
    [ 16; 64; 256 ];
  Harness.subsection "naive baseline (whole rows, Theta(n) bits)";
  List.iter
    (fun n ->
      let g = G.Gen.random_tree (Prng.create n) n in
      let run = P.Engine.run_packed Wb_protocols.Build_naive.protocol g P.Adversary.min_id in
      Harness.Emit.row "msgsize"
        ~name:(Printf.sprintf "build-naive n=%d" n)
        (("n", Wb_obs.Json.Int n) :: Harness.Emit.run_fields run);
      Printf.printf "n=%-6d naive %5d bits vs forest-protocol %3d bits\n" n
        run.P.Engine.stats.max_message_bits
        (measure ~n ~k:1))
    [ 64; 256; 1024 ]
