(* Regenerates the paper's Table 2: the yes/no classification of BUILD on
   k-degenerate graphs, rooted MIS, TRIANGLE, EOB-BFS and BFS across the
   four models.  Positive cells execute the real protocol over graph
   families and adversaries; negative cells execute the reduction gadget
   plus the Lemma 3 counting contradiction. *)

module P = Wb_model
module G = Wb_graph
module R = Wb_reductions
module Prng = Wb_support.Prng

type verdict =
  | Yes of string  (** verified positively, with evidence summary *)
  | No of string  (** verified impossibility machinery *)
  | Claimed of string  (** paper asserts it; no protocol known to us *)
  | Open_question

let show = function
  | Yes e -> ("yes", e)
  | No e -> ("no", e)
  | Claimed e -> ("yes*", e)
  | Open_question -> ("?", "open problem in the paper")

(* --- positive cells ------------------------------------------------- *)

let verify_build () =
  let rng = Prng.create 1 in
  let graphs =
    [ G.Gen.random_tree rng 64;
      G.Gen.random_ktree rng 48 ~k:3;
      G.Gen.apollonian rng 64;
      G.Gen.random_kdegenerate rng 40 ~k:5;
      G.Gen.random_ktree rng 5 ~k:2 (* exhaustively scheduled *) ]
  in
  let protocol = Wb_protocols.Build_degenerate.protocol ~k:5 ~decoder:`Backtracking in
  (* degeneracy <= 5 for all of the above (trees, 3-trees, planar) *)
  let ok, runs, bits =
    Harness.verify protocol (fun _ -> P.Problems.Build) graphs ~exhaustive_below:6
  in
  (ok, Printf.sprintf "SIMASYNC protocol, %d runs, <=%d bits" runs bits)

let verify_mis () =
  let rng = Prng.create 2 in
  let graphs =
    [ G.Gen.random_gnp rng 48 0.1; G.Gen.petersen (); G.Gen.random_gnp rng 32 0.4; G.Gen.cycle 5 ]
  in
  let protocol = Wb_protocols.Mis_simsync.protocol ~root:0 in
  let ok, runs, bits =
    Harness.verify protocol (fun _ -> P.Problems.Rooted_mis 0) graphs ~exhaustive_below:6
  in
  (ok, Printf.sprintf "SIMSYNC greedy, %d runs, <=%d bits" runs bits)

let verify_eob_bfs () =
  let rng = Prng.create 3 in
  let graphs =
    [ G.Gen.random_eob rng 48 0.15;
      G.Gen.random_eob rng 33 0.4;
      G.Gen.path 5;
      G.Gen.cycle 3 (* non-EOB: must reject under every schedule *);
      G.Gen.random_connected rng 14 0.3 ]
  in
  let ok, runs, bits =
    Harness.verify Wb_protocols.Eob_bfs_async.protocol (fun _ -> P.Problems.Eob_bfs) graphs
      ~exhaustive_below:6
  in
  (ok, Printf.sprintf "ASYNC layer protocol, %d runs, <=%d bits" runs bits)

let verify_bfs () =
  let rng = Prng.create 4 in
  let graphs =
    [ G.Gen.random_connected rng 48 0.08;
      G.Gen.grid 5 6;
      G.Gen.random_gnp rng 40 0.05 (* disconnected *);
      G.Graph.of_edges 6 [ (0, 1); (0, 2); (1, 2); (1, 3); (3, 4) ] ]
  in
  let ok, runs, bits =
    Harness.verify Wb_protocols.Bfs_sync.protocol (fun _ -> P.Problems.Bfs) graphs
      ~exhaustive_below:6
  in
  (ok, Printf.sprintf "SYNC layer protocol with d0, %d runs, <=%d bits" runs bits)

(* --- negative cells -------------------------------------------------- *)

(* Theorem 3 / Figure 1: TRIANGLE not in SIMASYNC[o(n)]. *)
let refute_triangle_simasync () =
  let rng = Prng.create 5 in
  let gadget_ok =
    List.for_all
      (fun _ -> R.Triangle_reduction.gadget_faithful (G.Gen.random_bipartite rng 5 5 0.4))
      (List.init 5 Fun.id)
  in
  let transformed = R.Triangle_reduction.transform R.Oracles.triangle_simasync in
  let g = G.Gen.random_bipartite rng 4 4 0.5 in
  let sim_ok =
    P.Engine.outcome_equal
      (P.Engine.run_packed transformed g (P.Adversary.random rng)).P.Engine.outcome
      (P.Engine.Success (P.Answer.Graph g))
  in
  let n = 4096 in
  let floor = R.Counting.min_message_bits R.Counting.balanced_bipartite n in
  let hyp = 10 * Wb_support.Bitbuf.width_of n in
  let counting_ok = (2 * hyp) + (3 * Wb_support.Bitbuf.width_of n) < floor in
  ( gadget_ok && sim_ok && counting_ok,
    Printf.sprintf "Thm 3: gadget+transformer verified; at n=%d BUILD(bipartite) needs %d b/node" n
      floor )

(* Theorem 6: MIS not in SIMASYNC[o(n)]. *)
let refute_mis_simasync () =
  let rng = Prng.create 6 in
  let gadget_ok = R.Mis_reduction.gadget_faithful (G.Gen.random_gnp rng 7 0.4) in
  let transformed =
    R.Mis_reduction.transform ~make_inner:(fun ~root -> R.Oracles.mis_simasync ~root)
  in
  let g = G.Gen.random_gnp rng 7 0.35 in
  let sim_ok =
    P.Engine.outcome_equal
      (P.Engine.run_packed transformed g (P.Adversary.random rng)).P.Engine.outcome
      (P.Engine.Success (P.Answer.Graph g))
  in
  let n = 4096 in
  let floor = R.Counting.min_message_bits R.Counting.all_graphs n in
  ( gadget_ok && sim_ok,
    Printf.sprintf "Thm 6: gadget+transformer verified; BUILD(all) needs %d b/node at n=%d" floor n )

(* Theorem 8 / Figure 2: EOB-BFS not in SIMSYNC[o(n)] (hence not SIMASYNC). *)
let refute_eob_bfs_simsync () =
  let rng = Prng.create 7 in
  let g = G.Gen.random_eob rng 8 0.4 in
  let gadget_ok =
    List.for_all (fun t -> R.Eob_bfs_reduction.gadget_faithful g ~target:t) [ 1; 3; 5; 7 ]
  in
  let transformed = R.Eob_bfs_reduction.transform R.Oracles.eob_bfs_simsync in
  let sim_ok =
    P.Engine.outcome_equal
      (P.Engine.run_packed transformed g (P.Adversary.random rng)).P.Engine.outcome
      (P.Engine.Success (P.Answer.Graph g))
  in
  let n = 4096 in
  let floor = R.Counting.min_message_bits R.Counting.even_odd_bipartite n in
  ( gadget_ok && sim_ok,
    Printf.sprintf "Thm 8: gadget+transformer verified; BUILD(EOB) needs %d b/node at n=%d" floor n )

let triangle_claim () =
  (* TRIANGLE in SIMSYNC: the paper claims it without a protocol.  We verify
     the promise-class protocol and quote the n=4 synthesis evidence. *)
  let rng = Prng.create 8 in
  let p = Wb_protocols.Triangle_degenerate.protocol ~k:3 in
  let g = G.Gen.random_kdegenerate rng 24 ~k:3 in
  let run = P.Engine.run_packed p g (P.Adversary.random rng) in
  let ok =
    P.Engine.outcome_equal run.P.Engine.outcome
      (P.Engine.Success (P.Answer.Bool (G.Algo.has_triangle g)))
  in
  ( ok,
    "paper asserts a protocol exists (none given); verified on the bounded-degeneracy promise \
     class, and SIMSYNC synthesis at n=4 finds a 2-letter protocol where SIMASYNC needs 3" )

let print () =
  Harness.section "Table 2 — problem classification across the four models";
  let build_ok, build_e = verify_build () in
  let mis_ok, mis_e = verify_mis () in
  let mis_no_ok, mis_no_e = refute_mis_simasync () in
  let tri_no_ok, tri_no_e = refute_triangle_simasync () in
  let tri_claim_ok, tri_claim_e = triangle_claim () in
  let eob_ok, eob_e = verify_eob_bfs () in
  let eob_no_ok, eob_no_e = refute_eob_bfs_simsync () in
  let bfs_ok, bfs_e = verify_bfs () in
  let rows =
    [ ( "BUILD k-degenerate",
        [| Yes build_e; Yes "inherited (Lemma 4)"; Yes "inherited"; Yes "inherited" |],
        build_ok );
      ( "rooted MIS",
        [| No mis_no_e; Yes mis_e; Yes "inherited (Lemma 4)"; Yes "inherited" |],
        mis_ok && mis_no_ok );
      ( "TRIANGLE",
        [| No tri_no_e; Claimed tri_claim_e; Claimed "inherited from SIMSYNC"; Claimed "inherited" |],
        tri_no_ok && tri_claim_ok );
      ( "EOB-BFS",
        [| No "inherited from SIMSYNC 'no'"; No eob_no_e; Yes eob_e; Yes "inherited (Lemma 4)" |],
        eob_ok && eob_no_ok );
      ("BFS", [| Open_question; Open_question; Open_question; Yes bfs_e |], bfs_ok) ]
  in
  Printf.printf "%-20s %-10s %-10s %-10s %-10s  %s\n" "problem" "SIMASYNC" "SIMSYNC" "ASYNC" "SYNC"
    "verification";
  List.iter
    (fun (name, cells, checked) ->
      let labels = Array.map (fun c -> fst (show c)) cells in
      Printf.printf "%-20s %-10s %-10s %-10s %-10s  [%s]\n" name labels.(0) labels.(1) labels.(2)
        labels.(3) (Harness.tick checked))
    rows;
  Printf.printf "\nevidence:\n";
  List.iter
    (fun (name, cells, _) ->
      Array.iteri
        (fun i c ->
          let label, evidence = show c in
          if String.length evidence > 0 && evidence <> "inherited" then
            Printf.printf "  %-18s %-8s [%s] %s\n" name
              (P.Model.name (List.nth P.Model.all i))
              label evidence)
        cells)
    rows;
  Printf.printf
    "\nlegend: yes* = asserted by the paper without an explicit protocol; 'inherited' cells\n\
     follow from the Lemma 4 inclusions SIMASYNC <= SIMSYNC <= ASYNC <= SYNC.\n";
  let module J = Wb_obs.Json in
  List.iter
    (fun (name, cells, checked) ->
      Harness.Emit.row "table2" ~name
        [ ( "cells",
            J.Obj
              (List.mapi
                 (fun i model ->
                   let label, evidence = show cells.(i) in
                   ( P.Model.name model,
                     J.Obj [ ("verdict", J.String label); ("evidence", J.String evidence) ] ))
                 P.Model.all) );
          ("verified", J.Bool checked) ])
    rows
