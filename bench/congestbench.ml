(* Extension experiment: the paper's motivation quantified.  Total
   communication (bits) of whiteboard SYNC BFS (one short message per node,
   ever) vs the classical CONGEST flooding BFS (one message per edge). *)

module P = Wb_model
module G = Wb_graph
module Prng = Wb_support.Prng

let row g label =
  let congest = (Wb_congest.Bfs_flood.run g).Wb_congest.Bfs_flood.stats in
  let run = P.Engine.run_packed Wb_protocols.Bfs_sync.protocol g P.Adversary.min_id in
  assert (P.Engine.succeeded run);
  let wb = run.P.Engine.stats in
  Harness.Emit.row "congest" ~name:label
    (("n", Wb_obs.Json.Int (G.Graph.n g))
    :: ("m", Wb_obs.Json.Int (G.Graph.num_edges g))
    :: ("congest_bits", Wb_obs.Json.Int congest.Wb_congest.Congest.total_bits)
    :: Harness.Emit.run_fields run);
  Printf.printf "%-22s %-8d %-8d %-14d %-14d %5.1fx\n" label (G.Graph.n g) (G.Graph.num_edges g)
    wb.P.Engine.total_bits congest.Wb_congest.Congest.total_bits
    (float_of_int congest.Wb_congest.Congest.total_bits /. float_of_int (max 1 wb.P.Engine.total_bits))

let print () =
  Harness.section "Extension — whiteboard vs CONGEST: total communication for BFS";
  Printf.printf "%-22s %-8s %-8s %-14s %-14s %s\n" "graph" "n" "m" "whiteboard b" "congest b"
    "ratio";
  let rng = Prng.create 77 in
  row (G.Gen.random_tree rng 64) "tree n=64";
  row (G.Gen.random_tree rng 256) "tree n=256";
  row (G.Gen.random_connected rng 64 0.1) "gnp n=64 p=.1";
  row (G.Gen.random_connected rng 256 0.1) "gnp n=256 p=.1";
  row (G.Gen.random_connected rng 256 0.3) "gnp n=256 p=.3";
  row (G.Gen.grid 16 16) "grid 16x16";
  row (G.Gen.hypercube 8) "hypercube d=8";
  Printf.printf
    "\n(whiteboard BFS pays O(log n) bits per NODE; CONGEST flooding pays O(log n) per EDGE,\n\
     so the gap tracks average degree — the denser the relation graph, the stronger the\n\
     case for communication that is not routed along the links.)\n";
  Harness.subsection "MIS: whiteboard SIMSYNC greedy vs CONGEST Luby";
  Printf.printf "%-22s %-8s %-14s %-16s %s\n" "graph" "n" "whiteboard b" "luby b (rounds)" "ratio";
  let mis_row g label =
    let rng2 = Prng.create 5 in
    let run = P.Engine.run_packed (Wb_protocols.Mis_simsync.protocol ~root:0) g (P.Adversary.random rng2) in
    assert (P.Engine.succeeded run);
    let luby = Wb_congest.Luby_mis.run ~seed:11 g in
    Harness.Emit.row "congest" ~name:("mis " ^ label)
      (("n", Wb_obs.Json.Int (G.Graph.n g))
      :: ("luby_bits", Wb_obs.Json.Int luby.Wb_congest.Luby_mis.stats.Wb_congest.Congest.total_bits)
      :: Harness.Emit.run_fields run);
    Printf.printf "%-22s %-8d %-14d %-7d (%d)      %5.1fx\n" label (G.Graph.n g)
      run.P.Engine.stats.total_bits luby.Wb_congest.Luby_mis.stats.Wb_congest.Congest.total_bits
      luby.Wb_congest.Luby_mis.stats.Wb_congest.Congest.rounds
      (float_of_int luby.Wb_congest.Luby_mis.stats.Wb_congest.Congest.total_bits
      /. float_of_int (max 1 run.P.Engine.stats.total_bits))
  in
  mis_row (G.Gen.random_connected rng 128 0.05) "gnp n=128 p=.05";
  mis_row (G.Gen.random_connected rng 128 0.3) "gnp n=128 p=.3";
  mis_row (G.Gen.grid 12 12) "grid 12x12";
  Printf.printf
    "(the whiteboard MIS writes n one-bit-plus-ID messages once; Luby pays per edge per\n\
     phase — the link-free medium is decisively cheaper here.)\n"
