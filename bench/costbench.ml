(* Thin main over Wb_bench.Cost_core (shared with `wbctl bench` and
   `wbctl cost`): the full-registry certificate sweep — measured worst
   message vs envelope vs Lemma 3 floor, aborting on any violation.
   Writes BENCH_cost.json (or --out FILE). *)

let () =
  let cli = Wb_bench.Report.Cli.parse () in
  (match cli.Wb_bench.Report.Cli.rest with
  | [] -> ()
  | junk ->
    Printf.eprintf "costbench: unexpected arguments: %s\n" (String.concat " " junk);
    exit 2);
  ignore
    (Wb_bench.Cost_core.run
       ~seed:(Wb_bench.Report.Cli.seed cli ~default:2012)
       ~fast:cli.Wb_bench.Report.Cli.fast ?out:cli.Wb_bench.Report.Cli.out ())
