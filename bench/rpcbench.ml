(* Thin main over Wb_bench.Rpc_core (shared with `wbctl bench`): loopback
   RPC latency percentiles from the net.rpc.* histograms.  Writes
   BENCH_rpc.json (or --out FILE). *)

let () =
  let cli = Wb_bench.Report.Cli.parse () in
  (match cli.Wb_bench.Report.Cli.rest with
  | [] -> ()
  | junk ->
    Printf.eprintf "rpcbench: unexpected arguments: %s\n" (String.concat " " junk);
    exit 2);
  ignore
    (Wb_bench.Rpc_core.run
       ~seed:(Wb_bench.Report.Cli.seed cli ~default:3)
       ~fast:cli.Wb_bench.Report.Cli.fast ?out:cli.Wb_bench.Report.Cli.out ())
