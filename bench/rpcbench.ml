(* RPC latency under the networked referee, as a machine-readable perf
   record: each instance runs a loopback session (referee plus n in-process
   clients over [Conn.loopback_served], the deterministic transport) and
   its row reports the per-RPC latency percentiles accumulated in the
   [net.rpc.*] histograms — the same numbers `wbctl top` serves live over
   the TELEMETRY frame.  The registry is reset before every instance so
   each row owns its distribution.  Writes BENCH_rpc.json. *)

module P = Wb_model
module G = Wb_graph
module Net = Wb_net
module Obs = Wb_obs
module J = Obs.Json
module R = Wb_protocols.Registry

let m_activate = Obs.Metrics.histogram "net.rpc.activate_us"
let m_compose = Obs.Metrics.histogram "net.rpc.compose_us"

let rows : J.t list ref = ref []

let hist_row h =
  [ ("count", J.Int (Obs.Metrics.histogram_count h));
    ("p50_us", J.Int (Obs.Metrics.percentile h 50.));
    ("p95_us", J.Int (Obs.Metrics.percentile h 95.));
    ("p99_us", J.Int (Obs.Metrics.percentile h 99.)) ]

let instance ~key ~graph =
  match R.find key with
  | None -> failwith ("unknown protocol " ^ key)
  | Some entry ->
    Obs.Metrics.reset ();
    let t0 = Unix.gettimeofday () in
    let r = Net.Remote.run_loopback ~protocol:entry.R.protocol graph P.Adversary.min_id in
    let wall = Unix.gettimeofday () -. t0 in
    if not (P.Engine.succeeded r.Net.Session.run) then failwith (key ^ ": run failed");
    if not (List.is_empty r.Net.Session.faults) then
      failwith (key ^ ": faults in a loopback run");
    Printf.printf
      "%-16s n=%-3d activate p50 %5dus p99 %5dus   compose p50 %5dus p99 %5dus\n" key
      (G.Graph.n graph)
      (Obs.Metrics.percentile m_activate 50.)
      (Obs.Metrics.percentile m_activate 99.)
      (Obs.Metrics.percentile m_compose 50.)
      (Obs.Metrics.percentile m_compose 99.);
    rows :=
      J.Obj
        [ ("name", J.String key);
          ("n", J.Int (G.Graph.n graph));
          ("rounds", J.Int r.Net.Session.run.P.Engine.stats.rounds);
          ("wall_s", J.Float wall);
          ("activate", J.Obj (hist_row m_activate));
          ("compose", J.Obj (hist_row m_compose)) ]
      :: !rows

let () =
  print_endline "Loopback RPC latency (net.rpc.* histograms, microseconds)";
  let started = Unix.gettimeofday () in
  instance ~key:"bfs" ~graph:(G.Gen.grid 4 4);
  instance ~key:"mis" ~graph:(G.Gen.cycle 12);
  instance ~key:"build-naive" ~graph:(G.Gen.complete 10);
  instance ~key:"eob-bfs" ~graph:(G.Gen.random_eob (Wb_support.Prng.create 3) 12 0.3);
  let doc =
    J.Obj
      [ ("section", J.String "rpc");
        ("wall_s", J.Float (Unix.gettimeofday () -. started));
        ("rows", J.List (List.rev !rows));
        ("metrics", Obs.Metrics.dump_json ()) ]
  in
  let oc = open_out "BENCH_rpc.json" in
  J.to_channel oc doc;
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_rpc.json"
