(* Sequential vs parallel exhaustive exploration, as a machine-readable
   perf record: every instance is explored with [Engine.explore] and with
   [Engine.explore_par] at several worker counts, the verdicts and
   execution counts are asserted identical (the determinism contract —
   the process aborts on any divergence), and the timings land in the
   report.  Speedups are whatever the host provides: on a single-core
   container [explore_par] pays its coordination overhead and reports
   <= 1x; the counts still must match exactly.

   The core is a library function so bench/explorebench.exe and
   `wbctl bench` drive the same instances; [fast] trims the suite (fewer
   repetitions, fewer worker counts, no K7) for CI gates. *)

module P = Wb_model
module G = Wb_graph
module J = Wb_obs.Json

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Best of [k] — exploration is deterministic, so the minimum wall time is
   the least-noisy estimate. *)
let best_of k f =
  let rec go k acc =
    if k <= 0 then acc
    else
      let r, dt = time f in
      let _, best = acc in
      go (k - 1) (if dt < best then (r, dt) else acc)
  in
  go (k - 1) (time f)

let verify_fields (v : P.Engine.verification) =
  [ ("states", J.Int v.P.Engine.states);
    ("finals", J.Int v.P.Engine.finals);
    ("dedup_hits", J.Int v.P.Engine.dedup_hits);
    ("orbit_collapses", J.Int v.P.Engine.orbit_collapses);
    ("steals", J.Int v.P.Engine.steals);
    ("group_order", J.Int v.P.Engine.group_order);
    ("dedup", J.Bool v.P.Engine.dedup) ]

(* [min_ratio] asserts the canonical explorer's superlinear win: visited
   configurations (interior + final) must undercut the enumerator's
   execution count by at least that factor — the ISSUE 9 acceptance bar. *)
let instance rep ~reps ~jobs_list ?min_ratio ~name ~protocol ~graph ~check () =
  let seq, seq_s = best_of reps (fun () -> P.Engine.explore_packed protocol graph check) in
  let seq_ok, seq_count =
    match seq with
    | Ok r -> r
    | Error (`Limit _) -> failwith (name ^ ": sequential exploration hit the limit")
  in
  let par_rows =
    List.map
      (fun jobs ->
        let par, par_s =
          best_of reps (fun () -> P.Engine.explore_par_packed ~jobs protocol graph check)
        in
        (match par with
        | Error (`Limit _) -> failwith (name ^ ": parallel exploration hit the limit")
        | Ok (ok, count) ->
          if ok <> seq_ok then failwith (name ^ ": parallel verdict diverged");
          if seq_ok && count <> seq_count then
            failwith
              (Printf.sprintf "%s: parallel execution count diverged (%d vs %d)" name count
                 seq_count));
        (jobs, par_s))
      jobs_list
  in
  let ver, ver_s = best_of reps (fun () -> P.Engine.verify_packed protocol graph check) in
  let v =
    match ver with
    | Ok v -> v
    | Error (`Limit _) -> failwith (name ^ ": canonical exploration hit the limit")
  in
  if v.P.Engine.valid <> seq_ok then failwith (name ^ ": canonical verdict diverged");
  (match min_ratio with
  | Some r when v.P.Engine.dedup ->
    let visited = v.P.Engine.states + v.P.Engine.finals in
    if visited * r > seq_count then
      failwith
        (Printf.sprintf "%s: dedup visited %d configurations, more than 1/%d of %d executions"
           name visited r seq_count)
  | Some _ -> failwith (name ^ ": min_ratio set but the traits forced enumerative fallback")
  | None -> ());
  Printf.printf "%-24s %7d execs  seq %8.4fs" name seq_count seq_s;
  List.iter (fun (jobs, s) -> Printf.printf "  j%d %8.4fs (x%.2f)" jobs s (seq_s /. s)) par_rows;
  if v.P.Engine.dedup then
    Printf.printf "  canon %d+%d cfgs %8.4fs" v.P.Engine.states v.P.Engine.finals ver_s;
  print_newline ();
  Report.add_row rep ~name
    ([ ("executions", J.Int seq_count);
       ("all_valid", J.Bool seq_ok);
       ("seq_s", J.Float seq_s) ]
    @ List.concat_map
        (fun (jobs, s) ->
          [ (Printf.sprintf "par%d_s" jobs, J.Float s);
            (Printf.sprintf "speedup%d" jobs, J.Float (seq_s /. s)) ])
        par_rows
    @ (("verify_s", J.Float ver_s) :: verify_fields v))

let succeeds_validly problem g =
  fun (r : P.Engine.run) ->
  match r.P.Engine.outcome with
  | P.Engine.Success a -> P.Problems.valid_answer problem g a
  | _ -> false

let all_deadlock (r : P.Engine.run) = P.Engine.outcome_equal r.P.Engine.outcome P.Engine.Deadlock

(* [seed] has no effect on the fixed instance graphs; it is recorded in the
   report so the uniform bench CLI contract holds across every bench. *)
let run ?(seed = 2012) ?(fast = false) ?out () =
  let jobs_list = if fast then [ 1; 2 ] else [ 1; 2; 4 ] in
  let reps = if fast then 1 else 3 in
  print_endline "Exhaustive exploration: sequential vs parallel (counts must match)";
  let rep =
    Report.create ~bench:"explore" ~seed
      ~params:
        [ ("jobs", J.List (List.map (fun j -> J.Int j) jobs_list));
          ("reps", J.Int reps);
          ("fast", J.Bool fast) ]
      ()
  in
  let instance = instance rep ~reps ~jobs_list in
  (* The bench/openproblems.ml acceptance pair: the odd witness where the
     ASYNC layer protocol deadlocks under every schedule, and C6 where it
     succeeds under every schedule. *)
  let odd = G.Graph.of_edges 5 [ (0, 1); (0, 2); (1, 2); (1, 3); (3, 4) ] in
  instance ~name:"bfs-bipartite/odd-witness" ~protocol:Wb_protocols.Bfs_bipartite_async.protocol
    ~graph:odd ~check:all_deadlock ();
  let c6 = G.Gen.cycle 6 in
  instance ~name:"bfs-bipartite/C6" ~protocol:Wb_protocols.Bfs_bipartite_async.protocol ~graph:c6
    ~check:(succeeds_validly P.Problems.Bfs c6) ();
  let k6 = G.Gen.complete 6 in
  instance ~name:"mis/K6" ~protocol:(Wb_protocols.Mis_simsync.protocol ~root:0) ~graph:k6
    ~check:(succeeds_validly (P.Problems.Rooted_mis 0) k6) ();
  (* The ISSUE 9 acceptance cell: 6! = 720 write orders collapse to the 64
     board subsets plus symmetry — the >= 10x bar aborts the bench if the
     canonical explorer regresses. *)
  instance ~name:"build-naive/K6" ~min_ratio:10 ~protocol:Wb_protocols.Build_naive.protocol
    ~graph:k6
    ~check:(succeeds_validly P.Problems.Build k6) ();
  if not fast then begin
    let k7 = G.Gen.complete 7 in
    instance ~name:"build-naive/K7" ~protocol:Wb_protocols.Build_naive.protocol ~graph:k7
      ~check:(succeeds_validly P.Problems.Build k7) ()
  end;
  (* Headline: exhaustive K8 is out of reach for the enumerator (8! = 40320
     schedules per subset ordering) but instant canonically — Aut(K8) = S_8
     collapses the tree to one canonical schedule.  Verify-only cell. *)
  let k8 = G.Gen.complete 8 in
  let t0 = Unix.gettimeofday () in
  (match
     P.Engine.verify_packed Wb_protocols.Build_naive.protocol k8
       (succeeds_validly P.Problems.Build k8)
   with
  | Error (`Limit _) -> failwith "build-naive/K8: canonical exploration hit the limit"
  | Ok v ->
    let ver_s = Unix.gettimeofday () -. t0 in
    if not v.P.Engine.valid then failwith "build-naive/K8: verdict is invalid";
    if not v.P.Engine.dedup then failwith "build-naive/K8: expected the canonical path";
    Printf.printf "%-24s verify-only  canon %d+%d cfgs %8.4fs  (|Aut| = %d)\n" "build-naive/K8"
      v.P.Engine.states v.P.Engine.finals ver_s v.P.Engine.group_order;
    Report.add_row rep ~name:"build-naive/K8"
      ([ ("all_valid", J.Bool v.P.Engine.valid); ("verify_s", J.Float ver_s) ] @ verify_fields v));
  Report.write ?out rep
