(* Chaos-campaign throughput as a machine-readable perf record: each
   instance runs a full fault-injection campaign — seeded faulted loopback
   sessions, each crash-replayed and differentially checked — and its row
   reports campaign throughput (runs/s), fault totals and the
   survivor-configuration rate.  A differential mismatch aborts the bench:
   throughput numbers are meaningless once the contract is broken.

   The core is a library function so bench/chaosbench.exe and
   `wbctl bench` drive the same instances; [fast] trims the plan matrix
   for CI gates.  [seed] is the campaign master seed (historical
   default 7), so two same-seed runs inject the identical fault
   schedule and the non-timing columns are reproducible. *)

module M = Wb_model
module G = Wb_graph
module C = Wb_chaos
module J = Wb_obs.Json
module R = Wb_protocols.Registry
module Prng = Wb_support.Prng

let instance ~key ~graph ~graph_desc =
  match R.find key with
  | None -> failwith ("unknown protocol " ^ key)
  | Some e ->
    { C.Campaign.key;
      protocol = e.R.protocol;
      graph;
      graph_desc;
      adversary_name = "random";
      make_adversary = (fun ~seed -> M.Adversary.random (Prng.create seed));
      max_rounds = None }

let campaign rep ~seed ~runs ~plan inst =
  Wb_obs.Metrics.reset ();
  let t0 = Unix.gettimeofday () in
  let report = C.Campaign.run ~seed ~runs ~plan inst in
  let wall = Unix.gettimeofday () -. t0 in
  let s = C.Campaign.summarize report in
  if s.C.Campaign.mismatched > 0 then
    failwith
      (Printf.sprintf "%s/%s: %d differential mismatch(es) — fix the contract before timing it"
         inst.C.Campaign.key plan.C.Plan.name s.C.Campaign.mismatched);
  let name = Printf.sprintf "%s/%s" inst.C.Campaign.key plan.C.Plan.name in
  let runs_per_s = if wall > 0.0 then float_of_int runs /. wall else 0.0 in
  Printf.printf "%-28s %3d runs  %4d faults  %3d survived  %3d dead  %8.1f runs/s\n" name
    s.C.Campaign.total s.C.Campaign.injected_total s.C.Campaign.survived s.C.Campaign.dead_nodes
    runs_per_s;
  Report.add_row rep ~name
    [ ("n", J.Int (G.Graph.n inst.C.Campaign.graph));
      ("runs", J.Int s.C.Campaign.total);
      ("faulted", J.Int s.C.Campaign.faulted);
      ("injected", J.Int s.C.Campaign.injected_total);
      ("survived", J.Int s.C.Campaign.survived);
      ("dead_nodes", J.Int s.C.Campaign.dead_nodes);
      ("survivor_rate", J.Float (C.Campaign.survivor_rate report));
      ("wall_s", J.Float wall);
      ("runs_per_s", J.Float runs_per_s) ]

let run ?(seed = 7) ?(fast = false) ?out () =
  print_endline "Chaos campaigns (faulted loopback runs, crash-replay differential per run)";
  let rep = Report.create ~bench:"chaos" ~seed ~params:[ ("fast", J.Bool fast) ] () in
  let runs = if fast then 8 else 32 in
  let rng = Prng.create seed in
  let four =
    [ instance ~key:"bfs" ~graph:(G.Gen.grid 4 4) ~graph_desc:"grid";
      instance ~key:"mis" ~graph:(G.Gen.cycle 12) ~graph_desc:"cycle";
      instance ~key:"build-naive" ~graph:(G.Gen.random_gnp (Prng.split rng) 10 0.3)
        ~graph_desc:"gnp";
      instance ~key:"eob-bfs" ~graph:(G.Gen.random_eob (Prng.split rng) 12 0.3) ~graph_desc:"eob" ]
  in
  List.iter (fun inst -> campaign rep ~seed ~runs ~plan:C.Plan.default inst) four;
  if not fast then begin
    let bfs = List.hd four in
    campaign rep ~seed ~runs ~plan:C.Plan.drop_heavy bfs;
    campaign rep ~seed ~runs ~plan:C.Plan.wire_garbage bfs;
    campaign rep ~seed ~runs ~plan:(C.Plan.disconnect ~round:2) bfs
  end;
  Report.write ?out rep
