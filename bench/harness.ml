(* Shared helpers for the table/figure regeneration sections. *)

module P = Wb_model
module G = Wb_graph
module J = Wb_obs.Json
module Prng = Wb_support.Prng

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

(* Machine-readable sidecars: next to each human table, a BENCH_<section>.json
   in the shared Wb_bench.Report schema (schema-versioned envelope with the
   section's rows, a flat diffable metric map and a registry snapshot) — the
   perf-trajectory record scripts/benchdiff.ml consumes across PRs.
   Disable with WB_BENCH_JSON=0. *)
module Emit = struct
  let enabled = Sys.getenv_opt "WB_BENCH_JSON" <> Some "0"

  (* The uniform bench CLI (--seed/--out), installed once by main.ml so
     every section sees the same overrides. *)
  let cli : Wb_bench.Report.Cli.t ref =
    ref { Wb_bench.Report.Cli.seed = None; out = None; fast = false; rest = [] }

  let single_section = ref false

  let configure ~single c =
    cli := c;
    single_section := single

  (* The CLI seed when given, else the section's historical default — so
     default outputs stay byte-identical run to run. *)
  let seed ~default = Wb_bench.Report.Cli.seed !cli ~default

  let state : (string, Wb_bench.Report.t) Hashtbl.t = Hashtbl.create 8

  let start sect =
    if enabled then
      Hashtbl.replace state sect
        (Wb_bench.Report.create ~bench:sect ~seed:(seed ~default:2012) ())

  let row sect ~name fields =
    if enabled then
      match Hashtbl.find_opt state sect with
      | None -> ()
      | Some rep -> Wb_bench.Report.add_row rep ~name fields

  (* Common row fields for a completed engine run. *)
  let run_fields (r : P.Engine.run) =
    [ ("outcome", J.String (P.Engine.outcome_tag r.P.Engine.outcome));
      ("rounds", J.Int r.P.Engine.stats.rounds);
      ("max_bits", J.Int r.P.Engine.stats.max_message_bits);
      ("total_bits", J.Int r.P.Engine.stats.total_bits) ]

  let finish sect =
    if enabled then
      match Hashtbl.find_opt state sect with
      | None -> ()
      | Some rep ->
        Hashtbl.remove state sect;
        (* --out only redirects a single-section run; with several sections
           each keeps its default BENCH_<section>.json. *)
        let out = if !single_section then !cli.Wb_bench.Report.Cli.out else None in
        ignore (Wb_bench.Report.write ?out rep)
end

(* Validate [protocol] for [problem] over a list of graphs: every graph is
   run under five adversary strategies, and exhaustively when n <= limit.
   Returns (ok, runs, max bits seen). *)
let verify protocol problem graphs ~exhaustive_below =
  let runs = ref 0 in
  let max_bits = ref 0 in
  let ok = ref true in
  List.iter
    (fun g ->
      let problem = problem (G.Graph.n g) in
      let validate (r : P.Engine.run) =
        incr runs;
        max_bits := max !max_bits r.P.Engine.stats.max_message_bits;
        match r.P.Engine.outcome with
        | P.Engine.Success a -> P.Problems.valid_answer problem g a
        | P.Engine.Deadlock | P.Engine.Size_violation _ | P.Engine.Output_error _ -> false
      in
      let strategies =
        [ P.Adversary.min_id;
          P.Adversary.max_id;
          P.Adversary.alternating_extremes;
          P.Adversary.last_writer_neighbor_avoider g;
          P.Adversary.random (Prng.create (Emit.seed ~default:2012)) ]
      in
      List.iter
        (fun adv -> if not (validate (P.Engine.run_packed protocol g adv)) then ok := false)
        strategies;
      if G.Graph.n g <= exhaustive_below then begin
        match P.Engine.explore_packed ~limit:200_000 protocol g validate with
        | Ok (all_ok, _count) -> if not all_ok then ok := false
        | Error (`Limit limit) ->
          Printf.printf "  !! exploration exceeded %d executions\n" limit;
          ok := false
      end)
    graphs;
  (!ok, !runs, !max_bits)

let tick = function true -> "ok" | false -> "FAILED"
