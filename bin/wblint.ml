(* wblint — static analysis enforcing the repo's determinism, comparison,
   lock and error-hygiene disciplines.  See docs/LINTING.md.

   Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/internal error. *)

let usage =
  "usage: wblint [--json] [--out FILE] [--build-dir DIR] [--no-typed] [--rules] \
   [-q] ROOT...\n\
   Scans every .ml under the ROOTs (tier A: Parsetree rules), pairs sources \
   with the .cmt files under the build dir (tier B: typed rules), and reports \
   findings as a human table or --json."

let () =
  let json = ref false in
  let out = ref None in
  let build_dir = ref None in
  let no_typed = ref false in
  let quiet = ref false in
  let list_rules = ref false in
  let roots = ref [] in
  let spec =
    [ ("--json", Arg.Set json, " emit the report as JSON instead of a table");
      ("--out", Arg.String (fun f -> out := Some f), "FILE write the report to FILE");
      ( "--build-dir",
        Arg.String (fun d -> build_dir := Some d),
        "DIR where dune put the .cmt files (default: _build/default if present)" );
      ("--no-typed", Arg.Set no_typed, " skip the typed tier even if .cmt files exist");
      ("--rules", Arg.Set list_rules, " print the rule catalog and exit");
      ("-q", Arg.Set quiet, " suppress the summary on stderr") ]
  in
  (try Arg.parse (Arg.align spec) (fun r -> roots := r :: !roots) usage
   with _ -> exit 2);
  if !list_rules then begin
    List.iter
      (fun (r : Wb_lint.Rules.info) ->
        let tier =
          match r.tier with
          | Wb_lint.Rules.Syntactic -> "syntactic"
          | Wb_lint.Rules.Typed -> "typed"
          | Wb_lint.Rules.Project -> "project"
        in
        Printf.printf "%-20s %-10s %s\n" r.id tier r.summary)
      Wb_lint.Rules.catalog;
    exit 0
  end;
  let roots = List.rev !roots in
  if roots = [] then begin
    prerr_endline usage;
    exit 2
  end;
  (* A typo'd root must not pass as "clean, 0 files scanned". *)
  (match List.filter (fun r -> not (Sys.file_exists r)) roots with
  | [] -> ()
  | missing ->
    List.iter (Printf.eprintf "wblint: no such root: %s\n") missing;
    exit 2);
  let build_dir =
    if !no_typed then None
    else
      match !build_dir with
      | Some d -> Some d
      | None -> if Sys.file_exists "_build/default" then Some "_build/default" else None
  in
  match Wb_lint.Driver.run ?build_dir ~roots () with
  | exception e ->
    Printf.eprintf "wblint: %s\n" (Printexc.to_string e);
    exit 2
  | report ->
    let render ppf =
      if !json then
        Format.fprintf ppf "%s@." (Wb_obs.Json.to_string (Wb_lint.Driver.to_json report))
      else Wb_lint.Driver.render_human ppf report
    in
    (match !out with
    | None -> render Format.std_formatter
    | Some file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> render (Format.formatter_of_out_channel oc)));
    if (not !quiet) && !out <> None then
      Printf.eprintf "wblint: %d findings (%d files, %d typed) -> %s\n"
        (List.length report.Wb_lint.Driver.findings)
        (List.length report.Wb_lint.Driver.files)
        (List.length report.Wb_lint.Driver.typed)
        (Option.get !out);
    exit (match report.Wb_lint.Driver.findings with [] -> 0 | _ :: _ -> 1)
