(* wblint — static analysis enforcing the repo's determinism, comparison,
   lock, error-hygiene and domain-safety disciplines.  See docs/LINTING.md.

   Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/internal error. *)

let usage =
  "usage: wblint [--json] [--out FILE] [--sarif FILE] [--build-dir DIR] \
   [--no-typed] [--only RULES] [--explain RULE] [--rules] [-q] ROOT...\n\
   Scans every .ml under the ROOTs (tier A: Parsetree rules), pairs sources \
   with the .cmt files under the build dir (tier B: typed rules, tier C: \
   whole-program domain-safety), and reports findings as a human table or \
   --json.  --only keeps findings for a comma-separated rule list; --explain \
   prints one rule's catalog summary, the Tier C analysis stats, and an \
   example finding."

let tier_name = function
  | Wb_lint.Rules.Syntactic -> "syntactic"
  | Wb_lint.Rules.Typed -> "typed"
  | Wb_lint.Rules.Project -> "project"

let explain report rule =
  match
    List.find_opt
      (fun (r : Wb_lint.Rules.info) -> String.equal r.id rule)
      Wb_lint.Rules.catalog
  with
  | None ->
    Printf.eprintf "wblint: unknown rule %S (see --rules)\n" rule;
    exit 2
  | Some info ->
    Printf.printf "%s (%s tier)\n  %s\n" info.id (tier_name info.tier)
      info.summary;
    (match (String.equal rule Wb_lint.Rules.domain_safety, report.Wb_lint.Driver.tierc) with
    | true, Some (s : Wb_lint.Locks.stats) ->
      Printf.printf
        "\n\
         whole-program catalog:\n\
        \  units analysed      %d\n\
        \  toplevel bindings   %d\n\
        \  shared-mutable      %d\n\
        \  suppressed          %d\n\
        \  spawn sites         %d\n\
        \  summaries           %d\n\
        \  lock wrappers       %d\n\
        \  unresolved refs     %d\n"
        s.units s.toplevel_bindings s.entries_mutable s.entries_suppressed
        s.spawn_sites s.summaries s.lock_wrappers s.unresolved_refs
    | true, None ->
      print_string "\n(no .cmt files: the domain-safety analysis did not run)\n"
    | false, _ -> ());
    (match
       List.find_opt
         (fun (f : Wb_lint.Finding.t) -> String.equal f.rule rule)
         report.Wb_lint.Driver.findings
     with
    | Some f ->
      Printf.printf "\nexample finding:\n  %s\n" (Wb_lint.Finding.to_string f)
    | None -> Printf.printf "\nno %s findings — the scanned tree is clean\n" rule);
    exit 0

let () =
  let json = ref false in
  let out = ref None in
  let sarif = ref None in
  let build_dir = ref None in
  let no_typed = ref false in
  let quiet = ref false in
  let list_rules = ref false in
  let only = ref None in
  let explain_rule = ref None in
  let roots = ref [] in
  let spec =
    [ ("--json", Arg.Set json, " emit the report as JSON instead of a table");
      ("--out", Arg.String (fun f -> out := Some f), "FILE write the report to FILE");
      ( "--sarif",
        Arg.String (fun f -> sarif := Some f),
        "FILE also write the findings as SARIF 2.1.0 to FILE" );
      ( "--build-dir",
        Arg.String (fun d -> build_dir := Some d),
        "DIR where dune put the .cmt files (default: _build/default if present)" );
      ("--no-typed", Arg.Set no_typed, " skip the typed tiers even if .cmt files exist");
      ( "--only",
        Arg.String (fun r -> only := Some (String.split_on_char ',' r)),
        "RULES keep only findings for this comma-separated rule-id list" );
      ( "--explain",
        Arg.String (fun r -> explain_rule := Some r),
        "RULE print the rule's summary, analysis stats and an example finding" );
      ("--rules", Arg.Set list_rules, " print the rule catalog and exit");
      ("-q", Arg.Set quiet, " suppress the summary on stderr") ]
  in
  (try Arg.parse (Arg.align spec) (fun r -> roots := r :: !roots) usage
   with _ -> exit 2);
  if !list_rules then begin
    List.iter
      (fun (r : Wb_lint.Rules.info) ->
        Printf.printf "%-20s %-10s %s\n" r.id (tier_name r.tier) r.summary)
      Wb_lint.Rules.catalog;
    exit 0
  end;
  let roots = List.rev !roots in
  if roots = [] then begin
    prerr_endline usage;
    exit 2
  end;
  (* A typo'd root must not pass as "clean, 0 files scanned". *)
  (match List.filter (fun r -> not (Sys.file_exists r)) roots with
  | [] -> ()
  | missing ->
    List.iter (Printf.eprintf "wblint: no such root: %s\n") missing;
    exit 2);
  let build_dir =
    if !no_typed then None
    else
      match !build_dir with
      | Some d -> Some d
      | None -> if Sys.file_exists "_build/default" then Some "_build/default" else None
  in
  match Wb_lint.Driver.run ?build_dir ~roots () with
  | exception e ->
    Printf.eprintf "wblint: %s\n" (Printexc.to_string e);
    exit 2
  | report ->
    (match !explain_rule with Some r -> explain report r | None -> ());
    let report =
      match !only with
      | None -> report
      | Some rules ->
        { report with
          Wb_lint.Driver.findings =
            List.filter
              (fun (f : Wb_lint.Finding.t) -> List.mem f.rule rules)
              report.Wb_lint.Driver.findings }
    in
    let render ppf =
      if !json then
        Format.fprintf ppf "%s@." (Wb_obs.Json.to_string (Wb_lint.Driver.to_json report))
      else Wb_lint.Driver.render_human ppf report
    in
    (match !out with
    | None -> render Format.std_formatter
    | Some file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> render (Format.formatter_of_out_channel oc)));
    (match !sarif with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc
            (Wb_obs.Json.to_string (Wb_lint.Driver.to_sarif report));
          output_char oc '\n'));
    if (not !quiet) && !out <> None then
      Printf.eprintf "wblint: %d findings (%d files, %d typed) -> %s\n"
        (List.length report.Wb_lint.Driver.findings)
        (List.length report.Wb_lint.Driver.files)
        (List.length report.Wb_lint.Driver.typed)
        (Option.get !out);
    exit (match report.Wb_lint.Driver.findings with [] -> 0 | _ :: _ -> 1)
