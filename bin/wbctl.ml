(* wbctl — command-line driver for the whiteboard-model laboratory.

   Subcommands:
     models                         print Table 1
     protocols                      list registered protocols
     run                            run one protocol on a generated graph
     trace                          run with full telemetry (JSONL + Chrome trace + metrics)
     explore                        exhaustively check all schedules
     serve                          host a networked referee (wb_net server)
     join                           speak for one node of a remote session
     remote-run                     server + n clients in one process (loopback or sockets)
     chaos                          seeded fault-injection campaigns with crash-replay checks
     top                            live metrics from a running referee (TELEMETRY RPC)
     synth                          minimal-alphabet synthesis at tiny n
     counting                       Lemma 3 information floors
     graph                          generate a graph and print it (graph6)

   Exit codes: 0 success, 1 usage/setup error, 2 the execution failed
   (deadlock, size violation, output error, or a failed differential
   check) — so scripts can branch on the outcome. *)

open Cmdliner
module P = Wb_model
module G = Wb_graph
module Obs = Wb_obs
module Prng = Wb_support.Prng
module Net = Wb_net
module Chaos = Wb_chaos

(* ---- shared argument parsing ---------------------------------------- *)

let gen_doc =
  "Graph family: tree, forest, path, cycle, star, complete, petersen, grid, hypercube, \
   gnp, connected, ktree:K, kdegenerate:K, apollonian, eob, bipartite, two-cliques, \
   near-two-cliques, triangle-tail"

let make_graph ~family ~n ~p ~seed =
  let rng = Prng.create seed in
  let half = max 1 (n / 2) in
  match String.split_on_char ':' family with
  | [ "tree" ] -> G.Gen.random_tree rng n
  | [ "forest" ] -> G.Gen.random_forest rng n ~keep:0.6
  | [ "path" ] -> G.Gen.path n
  | [ "cycle" ] -> G.Gen.cycle n
  | [ "star" ] -> G.Gen.star n
  | [ "complete" ] -> G.Gen.complete n
  | [ "petersen" ] -> G.Gen.petersen ()
  | [ "grid" ] ->
    let side = max 1 (int_of_float (sqrt (float_of_int n))) in
    G.Gen.grid side side
  | [ "hypercube" ] ->
    let d = max 1 (Wb_support.Bitbuf.width_of (max 1 (n - 1))) in
    G.Gen.hypercube d
  | [ "gnp" ] -> G.Gen.random_gnp rng n p
  | [ "connected" ] -> G.Gen.random_connected rng n p
  | [ "ktree"; k ] -> G.Gen.random_ktree rng n ~k:(int_of_string k)
  | [ "kdegenerate"; k ] -> G.Gen.random_kdegenerate rng n ~k:(int_of_string k)
  | [ "apollonian" ] -> G.Gen.apollonian rng n
  | [ "eob" ] -> G.Gen.random_eob rng n p
  | [ "bipartite" ] -> G.Gen.random_bipartite rng half (n - half) p
  | [ "two-cliques" ] -> G.Gen.two_cliques_shuffled rng half
  | [ "near-two-cliques" ] -> G.Gen.near_two_cliques half
  | [ "triangle-tail" ] -> G.Gen.triangle_with_tail n
  | _ -> invalid_arg ("unknown graph family: " ^ family)

let family_arg =
  Arg.(value & opt string "tree" & info [ "g"; "graph" ] ~docv:"FAMILY" ~doc:gen_doc)

let n_arg = Arg.(value & opt int 16 & info [ "n" ] ~docv:"N" ~doc:"Number of nodes")

let p_arg = Arg.(value & opt float 0.2 & info [ "p" ] ~docv:"P" ~doc:"Edge probability")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed")

let adversary_arg =
  Arg.(
    value
    & opt string "random"
    & info [ "a"; "adversary" ] ~docv:"ADV"
        ~doc:"Scheduler: min, max, random, alternate, avoid-last")

let make_adversary name g seed =
  match name with
  | "min" -> P.Adversary.min_id
  | "max" -> P.Adversary.max_id
  | "random" -> P.Adversary.random (Prng.create seed)
  | "alternate" -> P.Adversary.alternating_extremes
  | "avoid-last" -> P.Adversary.last_writer_neighbor_avoider g
  | other -> invalid_arg ("unknown adversary: " ^ other)

(* ---- commands -------------------------------------------------------- *)

let models_cmd =
  let run () = print_endline (P.Model.table1 ()) in
  Cmd.v (Cmd.info "models" ~doc:"Print the paper's Table 1") Term.(const run $ const ())

let protocols_cmd =
  let costs_arg =
    Arg.(
      value & flag
      & info [ "costs" ]
          ~doc:
            "Also print each protocol's cost certificate: the closed-form envelope, its value at \
             n=16/256, and the Lemma 3 floor class where one is declared")
  in
  let run costs =
    Printf.printf "%-26s %-10s %-22s %s\n" "key" "model" "problem (n=16)" "promise class";
    List.iter
      (fun (e : Wb_protocols.Registry.entry) ->
        let promise =
          match e.promise with
          | Wb_protocols.Registry.Any_graph -> "any graph"
          | Wb_protocols.Registry.Forest -> "forests"
          | Wb_protocols.Registry.Degeneracy_at_most k -> Printf.sprintf "degeneracy <= %d" k
          | Wb_protocols.Registry.Split_degeneracy_at_most k ->
            Printf.sprintf "split-degeneracy <= %d" k
          | Wb_protocols.Registry.Even_odd_bipartite -> "even-odd bipartite"
          | Wb_protocols.Registry.Bipartite -> "bipartite"
          | Wb_protocols.Registry.Regular_two_half -> "(n/2-1)-regular"
        in
        Printf.printf "%-26s %-10s %-22s %s%s\n" e.key
          (P.Model.name (P.Protocol.model e.protocol))
          (P.Problems.name (e.problem 16))
          promise
          (if e.randomized then "  [randomized]" else "");
        if costs then begin
          let c = e.certificate in
          Printf.printf "    envelope: %s  (n=16: %d bits, n=256: %d bits)\n" c.Obs.Cost.form
            (c.Obs.Cost.envelope ~n:16) (c.Obs.Cost.envelope ~n:256);
          match (c.Obs.Cost.floor, c.Obs.Cost.floor_class) with
          | Some f, Some cls ->
            Printf.printf "    floor:    %s  (n=16: %d bits, n=256: %d bits)\n" cls (f ~n:16)
              (f ~n:256)
          | _ -> ()
        end)
      (Wb_protocols.Registry.all ())
  in
  Cmd.v (Cmd.info "protocols" ~doc:"List registered protocols") Term.(const run $ costs_arg)

(* Prints the run and returns the process exit code: unsuccessful outcomes
   exit 2 so scripting against the CLI is sound. *)
let print_run g problem (run : P.Engine.run) =
  Printf.printf "rounds: %d   max message: %d bits   board total: %d bits\n"
    run.P.Engine.stats.rounds run.P.Engine.stats.max_message_bits run.P.Engine.stats.total_bits;
  Printf.printf "write order: %s\n"
    (String.concat " " (List.map (fun v -> string_of_int (v + 1)) (Array.to_list run.P.Engine.writes)));
  match run.P.Engine.outcome with
  | P.Engine.Success a ->
    Format.printf "answer: %a@." P.Answer.pp a;
    Printf.printf "valid: %b\n" (P.Problems.valid_answer problem g a);
    0
  | P.Engine.Deadlock ->
    print_endline "outcome: DEADLOCK (corrupted final configuration)";
    2
  | P.Engine.Size_violation { node; bits; bound } ->
    Printf.printf "outcome: SIZE VIOLATION node %d wrote %d bits (bound %d)\n" (node + 1) bits bound;
    2
  | P.Engine.Output_error e ->
    Printf.printf "outcome: OUTPUT ERROR %s\n" e;
    2

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the round-by-round execution timeline")

let metrics_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE" ~doc:"Dump the metrics registry snapshot to $(docv)")

let metrics_om_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-openmetrics" ] ~docv:"FILE"
        ~doc:"Dump the metrics registry in OpenMetrics text form to $(docv)")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Enable Wb_prof phase profiling (prof.* histograms in the metrics registry; also \
           enabled by WB_PROF=1)")

let apply_profile profile = if profile then Obs.Prof.enable ()

let cost_arg =
  Arg.(
    value & flag
    & info [ "cost" ]
        ~doc:
          "Enable the Wb_cost per-round bit ledger (cost.* series in the metrics registry and \
           cost_round trace events; also enabled by WB_COST=1)")

let apply_cost cost = if cost then Obs.Cost.enable ()

let open_out_or_die file =
  try open_out file
  with Sys_error msg ->
    Printf.eprintf "wbctl: cannot open %s: %s\n" file msg;
    exit 1

let write_metrics_json = function
  | None -> ()
  | Some file ->
    let oc = open_out_or_die file in
    Obs.Json.to_channel oc (Obs.Metrics.dump_json ());
    output_char oc '\n';
    close_out oc;
    Printf.printf "metrics snapshot: %s\n" file

let write_metrics_openmetrics = function
  | None -> ()
  | Some file ->
    let oc = open_out_or_die file in
    output_string oc (Obs.Metrics.dump_openmetrics ());
    close_out oc;
    Printf.printf "openmetrics snapshot: %s\n" file

(* ---- telemetry over the wire (TELEMETRY RPC) -------------------------- *)

let parse_host_port s =
  match String.rindex_opt s ':' with
  | Some i -> (
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some port -> Some (String.sub s 0 i, port)
    | None -> None)
  | None -> None

(* One TELEMETRY round-trip: the server answers on the handshake and closes,
   so every probe is a fresh connection. *)
let fetch_telemetry ~host ~port ~timeout ~tail =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port)) with
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "cannot connect to %s:%d: %s" host port (Unix.error_message err))
  | () -> (
    let conn = Net.Conn.of_fd ~timeout ~peer:(Printf.sprintf "%s:%d" host port) fd in
    let finish r =
      Net.Conn.close conn;
      r
    in
    match Net.Conn.send conn (Net.Wire.Telemetry_request { tail }) with
    | Error f -> finish (Error (Net.Conn.fault_to_string f))
    | Ok () -> (
      match Net.Conn.recv conn with
      | Ok (Net.Wire.Telemetry_reply { metrics; events; dropped }) ->
        finish (Ok (metrics, events, dropped))
      | Ok f -> finish (Error ("unexpected reply: " ^ Net.Wire.opcode_name f))
      | Error f -> finish (Error (Net.Conn.fault_to_string f))))

(* One METRICS round-trip: the server's OpenMetrics scrape endpoint, same
   handshake-and-close shape as TELEMETRY. *)
let fetch_openmetrics ~host ~port ~timeout =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port)) with
  | exception Unix.Unix_error (err, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "cannot connect to %s:%d: %s" host port (Unix.error_message err))
  | () -> (
    let conn = Net.Conn.of_fd ~timeout ~peer:(Printf.sprintf "%s:%d" host port) fd in
    let finish r =
      Net.Conn.close conn;
      r
    in
    match Net.Conn.send conn Net.Wire.Metrics_request with
    | Error f -> finish (Error (Net.Conn.fault_to_string f))
    | Ok () -> (
      match Net.Conn.recv conn with
      | Ok (Net.Wire.Metrics_reply { body }) -> finish (Ok body)
      | Ok f -> finish (Error ("unexpected reply: " ^ Net.Wire.opcode_name f))
      | Error f -> finish (Error (Net.Conn.fault_to_string f))))

let print_telemetry metrics_str =
  match Obs.Json.of_string metrics_str with
  | Error e ->
    Printf.eprintf "wbctl: malformed metrics from server: %s\n" e;
    exit 2
  | Ok j ->
    let section name =
      match Obs.Json.member name j with Some (Obs.Json.Obj kvs) -> kvs | _ -> []
    in
    let scalars = section "counters" @ section "gauges" in
    List.iter
      (fun (k, v) ->
        match v with Obs.Json.Int i -> Printf.printf "%-38s %10d\n" k i | _ -> ())
      scalars;
    (* Wire-overhead digest: how many framed wire bytes the referee moved
       per board bit, when the session counters are present. *)
    let scalar k =
      match List.assoc_opt k scalars with Some (Obs.Json.Int i) -> Some i | _ -> None
    in
    (match (scalar "net.session.board_bits", scalar "net.session.wire_bytes") with
    | Some bits, Some bytes when bits > 0 ->
      Printf.printf "%-38s %9.1fx  (%d wire bytes for %d board bits)\n" "wire overhead"
        (float_of_int (bytes * 8) /. float_of_int bits)
        bytes bits
    | _ -> ());
    let hists = section "histograms" in
    if not (List.is_empty hists) then
      Printf.printf "%-38s %10s %8s %8s %8s %8s\n" "histogram" "count" "p50" "p95" "p99" "max";
    List.iter
      (fun (k, h) ->
        let cell key =
          match Obs.Json.member key h with
          | Some (Obs.Json.Int i) -> string_of_int i
          | _ -> "-"
        in
        Printf.printf "%-38s %10s %8s %8s %8s %8s\n" k (cell "count") (cell "p50") (cell "p95")
          (cell "p99") (cell "max"))
      hists

let write_chrome_merge file shards =
  let shards = List.filter (fun (_, events) -> not (List.is_empty events)) shards in
  let oc = open_out_or_die file in
  Obs.Json.to_channel oc (Obs.Chrome.merge shards);
  output_char oc '\n';
  close_out oc;
  Printf.printf "chrome trace: %s (%d shards)\n" file (List.length shards)

(* Flight recorder dump: the referee collector's event tail as JSONL next
   to the report — enough to see which node starved a failing run. *)
let write_flight ~tail file events =
  let total = List.length events in
  let events =
    if total > tail then List.filteri (fun i _ -> i >= total - tail) events else events
  in
  let oc = open_out_or_die file in
  List.iter
    (fun ev ->
      Obs.Json.to_channel oc (Obs.Event.to_json ev);
      output_char oc '\n')
    events;
  close_out oc;
  Printf.printf "flight recorder: %s (last %d of %d referee events)\n" file (List.length events)
    total

let key_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROTOCOL" ~doc:"Registry key")

let with_entry key f =
  match Wb_protocols.Registry.find key with
  | None ->
    Printf.eprintf "unknown protocol %s (try `wbctl protocols`)\n" key;
    exit 1
  | Some e -> f e

let run_cmd =
  let run key family n p seed adv trace metrics_json metrics_om profile cost =
    apply_profile profile;
    apply_cost cost;
    with_entry key (fun e ->
        let g = make_graph ~family ~n ~p ~seed in
        Printf.printf "graph: %s on %d nodes, %d edges (seed %d)\n" family (G.Graph.n g)
          (G.Graph.num_edges g) seed;
        if not (Wb_protocols.Registry.satisfies_promise e.promise g) then
          print_endline "warning: instance violates the protocol's promise class";
        let adversary = make_adversary adv g seed in
        let sink, events = Obs.Trace.collector () in
        let result =
          P.Engine.run_packed ?trace:(if trace then Some sink else None) e.protocol g adversary
        in
        if trace then begin
          print_string (P.Report.summary result);
          print_newline ();
          print_string (P.Report.timeline_of_events ~n:(G.Graph.n g) (events ()))
        end;
        let code = print_run g (e.problem (G.Graph.n g)) result in
        write_metrics_json metrics_json;
        write_metrics_openmetrics metrics_om;
        if code <> 0 then exit code)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a protocol on a generated graph")
    Term.(
      const run $ key_arg $ family_arg $ n_arg $ p_arg $ seed_arg $ adversary_arg $ trace_arg
      $ metrics_json_arg $ metrics_om_arg $ profile_arg $ cost_arg)

(* Span endpoints carry wall-clock timestamps, but the JSONL artifacts
   promise byte-determinism at a fixed seed — so they keep the classic
   event stream only.  Spans still reach the Chrome artifacts, which render
   them on the deterministic round axis (single-run) or as an explicitly
   wall-clock merge. *)
let classic_only sink =
  Obs.Trace.of_fn
    ~close:(fun () -> Obs.Trace.close sink)
    (function
      | Obs.Event.Span_start _ | Obs.Event.Span_stop _ -> ()
      | ev -> Obs.Trace.emit sink ev)

let trace_cmd =
  let out_arg =
    Arg.(
      value & opt string "trace.jsonl"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"JSONL event stream destination")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:"Also write a Chrome trace_event file (open in about:tracing or Perfetto)")
  in
  let remote_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "remote" ] ~docv:"HOST:PORT"
          ~doc:
            "Instead of running locally, fetch a running referee's flight-recorder tail over \
             the TELEMETRY RPC and write it as JSONL to --out (no PROTOCOL needed)")
  in
  let tail_arg =
    Arg.(
      value & opt int 4096
      & info [ "tail" ] ~docv:"K" ~doc:"With --remote: request the last $(docv) events")
  in
  let key_opt_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"PROTOCOL" ~doc:"Registry key")
  in
  let run_remote ~out ~tail spec =
    match parse_host_port spec with
    | None ->
      Printf.eprintf "wbctl: --remote wants HOST:PORT, got %s\n" spec;
      exit 1
    | Some (host, port) -> (
      match fetch_telemetry ~host ~port ~timeout:5.0 ~tail with
      | Error msg ->
        Printf.eprintf "wbctl: %s\n" msg;
        exit 1
      | Ok (metrics, events, dropped) ->
        let oc = open_out_or_die out in
        List.iter
          (fun line ->
            output_string oc line;
            output_char oc '\n')
          events;
        close_out oc;
        Printf.printf "remote flight recorder: %d events -> %s (%d dropped or withheld)\n\n"
          (List.length events) out dropped;
        print_telemetry metrics)
  in
  let run_local key family n p seed adv out chrome metrics_json =
    with_entry key (fun e ->
        let g = make_graph ~family ~n ~p ~seed in
        Printf.printf "graph: %s on %d nodes, %d edges (seed %d)\n" family (G.Graph.n g)
          (G.Graph.num_edges g) seed;
        if not (Wb_protocols.Registry.satisfies_promise e.promise g) then
          print_endline "warning: instance violates the protocol's promise class";
        let adversary = make_adversary adv g seed in
        let jsonl_oc = open_out_or_die out in
        let chrome_oc = Option.map open_out_or_die chrome in
        let collector, events = Obs.Trace.collector () in
        let sinks =
          [ classic_only (Obs.Trace.tee [ Obs.Trace.jsonl_writer jsonl_oc; collector ]) ]
          @ (match chrome_oc with Some oc -> [ Obs.Chrome.writer oc ] | None -> [])
        in
        let sink = Obs.Trace.tee sinks in
        let result = P.Engine.run_packed ~trace:sink e.protocol g adversary in
        Obs.Trace.close sink;
        close_out jsonl_oc;
        Option.iter close_out chrome_oc;
        print_string (P.Report.summary result);
        print_newline ();
        print_string (P.Report.timeline_of_events ~n:(G.Graph.n g) (events ()));
        let code = print_run g (e.problem (G.Graph.n g)) result in
        Printf.printf "\nevents: %d -> %s%s\n" (List.length (events ())) out
          (match chrome with Some f -> "  (chrome: " ^ f ^ ")" | None -> "");
        Format.printf "@.%a" Obs.Metrics.pp_table ();
        write_metrics_json metrics_json;
        if code <> 0 then exit code)
  in
  let run key family n p seed adv out chrome metrics_json remote tail =
    match (remote, key) with
    | Some spec, _ -> run_remote ~out ~tail spec
    | None, Some key -> run_local key family n p seed adv out chrome metrics_json
    | None, None ->
      prerr_endline "wbctl: a PROTOCOL argument is required unless --remote is given";
      exit 1
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a protocol with full telemetry: JSONL event stream, optional Chrome trace, metrics \
          table — or, with --remote, pull a live referee's flight recorder")
    Term.(
      const run $ key_opt_arg $ family_arg $ n_arg $ p_arg $ seed_arg $ adversary_arg $ out_arg
      $ chrome_arg $ metrics_json_arg $ remote_arg $ tail_arg)

let explore_cmd =
  let sample_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample-trace" ] ~docv:"K"
          ~doc:"Write every K-th execution window of the exploration to the --sample-out file")
  in
  let sample_out_arg =
    Arg.(
      value
      & opt string "explore-trace.jsonl"
      & info [ "sample-out" ] ~docv:"FILE" ~doc:"Destination of the sampled trace")
  in
  let jobs_arg =
    Arg.(
      value
      & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Split the schedule tree over N worker domains.  The verdict and \
             execution count are identical to the sequential exploration; \
             incompatible with --sample-trace (parallel workers interleave \
             events with no meaningful order)")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a merged per-domain Chrome trace of the exploration to $(docv): each worker \
             streams spans into its own flight-recorder ring, stitched into one Catapult file \
             (routes through the parallel explorer even at --jobs 1)")
  in
  let no_dedup_arg =
    Arg.(
      value & flag
      & info [ "no-dedup" ]
          ~doc:
            "Force plain schedule enumeration, bypassing canonical-state dedup and symmetry \
             reduction even for protocols that declare them sound (the CI differential diffs \
             this against the default path)")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "quiet" ]
          ~doc:"Print only the verdict line — identical across the dedup and --no-dedup paths")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print the canonical-exploration counters (dedup hits, orbit collapses, steals, \
             visited-table occupancy) from the metrics registry after the run")
  in
  let explore_ring_capacity = 65536 in
  let run key family n p seed metrics_json sample sample_out jobs trace_out no_dedup quiet stats
      profile cost =
    apply_profile profile;
    apply_cost cost;
    with_entry key (fun e ->
        let g = make_graph ~family ~n ~p ~seed in
        let problem = e.problem (G.Graph.n g) in
        (match sample with
        | Some k when k <= 0 ->
          prerr_endline "wbctl: --sample-trace K must be positive";
          exit 1
        | _ -> ());
        if jobs < 1 then begin
          prerr_endline "wbctl: --jobs N must be positive";
          exit 1
        end;
        if jobs > 1 && sample <> None then begin
          prerr_endline "wbctl: --sample-trace requires a sequential exploration (drop --jobs)";
          exit 1
        end;
        if trace_out <> None && sample <> None then begin
          prerr_endline "wbctl: --trace and --sample-trace are mutually exclusive";
          exit 1
        end;
        let sink, oc =
          match sample with
          | None -> (None, None)
          | Some k ->
            let oc = open_out_or_die sample_out in
            (Some (classic_only (Obs.Trace.sample ~every:k (Obs.Trace.jsonl_writer oc))), Some oc)
        in
        let shards =
          match trace_out with
          | None -> None
          | Some _ ->
            Some (Array.init jobs (fun _ -> Obs.Trace.Ring.create ~capacity:explore_ring_capacity))
        in
        let check r =
          match r.P.Engine.outcome with
          | P.Engine.Success a -> P.Problems.valid_answer problem g a
          | _ -> false
        in
        (* Tracing observes individual executions, so it routes through the
           enumerative explorers; the canonical explorer visits each
           configuration once and has no per-execution event stream. *)
        let naive = no_dedup || sample <> None || Option.is_some shards in
        let print_stats () =
          if stats then begin
            let c name = Obs.Metrics.counter_value (Obs.Metrics.counter name) in
            let gv name = Obs.Metrics.gauge_value (Obs.Metrics.gauge name) in
            Printf.printf "dedup hits:      %d\n" (c "explore.dedup_hits");
            Printf.printf "orbit collapses: %d\n" (c "explore.orbit_collapses");
            Printf.printf "steals:          %d\n" (c "explore.steals");
            Printf.printf "states claimed:  %d\n" (c "explore.states");
            let slots = gv "explore.table_slots" in
            let used = gv "explore.table_used" in
            Printf.printf "table occupancy: %d/%d%s\n" used slots
              (if slots > 0 then Printf.sprintf " (%.1f%%)" (100. *. float used /. float slots)
               else "")
          end
        in
        let finish_trace () =
          if sample <> None && not quiet then Printf.printf "sampled trace: %s\n" sample_out;
          match (trace_out, shards) with
          | Some file, Some rings ->
            Array.iteri
              (fun k r ->
                let d = Obs.Trace.Ring.dropped r in
                if d > 0 then
                  Printf.printf "warning: domain %d ring dropped %d events (capacity %d)\n" k d
                    explore_ring_capacity)
              rings;
            write_chrome_merge file
              (Array.to_list
                 (Array.mapi
                    (fun k r -> (Printf.sprintf "domain-%d" k, Obs.Trace.Ring.to_list r))
                    rings))
          | _ -> ()
        in
        if naive then begin
          let result =
            if jobs > 1 || Option.is_some shards then
              P.Engine.explore_par_packed ?shards ~jobs e.protocol g check
            else P.Engine.explore_packed ?trace:sink e.protocol g check
          in
          Option.iter Obs.Trace.close sink;
          Option.iter close_out oc;
          match result with
          | Error (`Limit limit) ->
            Printf.eprintf "wbctl: exploration exceeded the execution limit (%d)\n" limit;
            exit 2
          | Ok (ok, count) ->
            if quiet then Printf.printf "all valid: %b\n" ok
            else Printf.printf "schedules explored: %d   all valid: %b\n" count ok;
            finish_trace ();
            print_stats ();
            write_metrics_json metrics_json
        end
        else begin
          match P.Engine.verify_packed ~jobs e.protocol g check with
          | Error (`Limit limit) ->
            Printf.eprintf "wbctl: exploration exceeded the configuration limit (%d)\n" limit;
            exit 2
          | Ok v ->
            Printf.printf "all valid: %b\n" v.P.Engine.valid;
            if not quiet then
              if v.P.Engine.dedup then
                Printf.printf
                  "configurations: %d interior + %d final   dedup hits: %d   orbit collapses: %d \
                   (|Aut| = %d)\n"
                  v.P.Engine.states v.P.Engine.finals v.P.Engine.dedup_hits
                  v.P.Engine.orbit_collapses v.P.Engine.group_order
              else Printf.printf "schedules explored: %d (no confluence promise)\n" v.P.Engine.finals;
            print_stats ();
            write_metrics_json metrics_json
        end)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Check a protocol under every adversarial schedule — canonical-state dedup and symmetry \
          reduction by default where the protocol's traits allow, plain enumeration otherwise")
    Term.(
      const run $ key_arg $ family_arg $ n_arg $ p_arg $ seed_arg $ metrics_json_arg $ sample_arg
      $ sample_out_arg $ jobs_arg $ trace_out_arg $ no_dedup_arg $ quiet_arg $ stats_arg
      $ profile_arg $ cost_arg)

(* ---- networked whiteboard (wb_net) ----------------------------------- *)

let timeout_arg =
  Arg.(
    value & opt float 5.0
    & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-connection read timeout")

let max_rounds_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-rounds" ] ~docv:"R" ~doc:"Round cutoff (default 2n+8)")

let session_arg =
  Arg.(value & opt string "main" & info [ "session" ] ~docv:"NAME" ~doc:"Session name")

let serve_cmd =
  let port_arg =
    Arg.(value & opt int 7117 & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (0 = ephemeral)")
  in
  let max_sessions_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-sessions" ] ~docv:"K" ~doc:"Exit after $(docv) completed sessions")
  in
  let run key family n p seed adv port timeout max_sessions max_rounds profile cost =
    apply_profile profile;
    apply_cost cost;
    with_entry key (fun e ->
        let g = make_graph ~family ~n ~p ~seed in
        let spec =
          { Net.Server.key;
            protocol = e.protocol;
            graph = g;
            make_adversary = (fun () -> make_adversary adv g seed);
            max_rounds;
            timeout;
            trace = None }
        in
        match Net.Server.create ~port spec with
        | exception Unix.Unix_error (err, _, _) ->
          Printf.eprintf "wbctl: cannot listen on port %d: %s\n" port (Unix.error_message err);
          exit 1
        | server ->
          Printf.printf
            "refereeing %s on %s (%d nodes, seed %d, adversary %s) — listening on port %d\n%!" key
            family (G.Graph.n g) seed adv (Net.Server.port server);
          Net.Server.serve ?max_sessions server)
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Host a networked referee: the board lives here, nodes join remotely")
    Term.(
      const run $ key_arg $ family_arg $ n_arg $ p_arg $ seed_arg $ adversary_arg $ port_arg
      $ timeout_arg $ max_sessions_arg $ max_rounds_arg $ profile_arg $ cost_arg)

let join_cmd =
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Referee host")
  in
  let port_arg = Arg.(value & opt int 7117 & info [ "port" ] ~docv:"PORT" ~doc:"Referee port") in
  let node_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "node" ] ~docv:"ID" ~doc:"Claim this node (1-based; default: server picks)")
  in
  let run key host port session node timeout =
    with_entry key (fun e ->
        let node_pref =
          match node with
          | None -> None
          | Some v when v >= 1 -> Some (v - 1)
          | Some v ->
            Printf.eprintf "wbctl: --node %d: node ids are 1-based\n" v;
            exit 1
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port)) with
        | exception Unix.Unix_error (err, _, _) ->
          Printf.eprintf "wbctl: cannot connect to %s:%d: %s\n" host port
            (Unix.error_message err);
          exit 1
        | () -> ());
        let conn = Net.Conn.of_fd ~timeout ~peer:(Printf.sprintf "%s:%d" host port) fd in
        let client = Net.Client.create ~protocol:e.protocol ~key ~session ?node_pref () in
        match Net.Client.run client conn with
        | Error msg ->
          Printf.eprintf "wbctl: session failed: %s\n" msg;
          exit 1
        | Ok fin ->
          (match Net.Client.node_id client with
          | Some v -> Printf.printf "joined %s as node %d\n" session (v + 1)
          | None -> ());
          Printf.printf "outcome: %s (%s) after %d rounds\n" fin.Net.Client.outcome
            fin.Net.Client.detail fin.Net.Client.rounds;
          (match Net.Client.board client with
          | Some b ->
            Printf.printf "final board: %d messages, %d bits\n" (P.Board.length b)
              (P.Board.total_bits b)
          | None -> ());
          if fin.Net.Client.outcome <> "success" then exit 2)
  in
  Cmd.v
    (Cmd.info "join" ~doc:"Join a remote session, speaking for exactly one node")
    Term.(const run $ key_arg $ host_arg $ port_arg $ session_arg $ node_arg $ timeout_arg)

let remote_run_cmd =
  let transport_arg =
    Arg.(
      value & opt string "loopback"
      & info [ "transport" ] ~docv:"T" ~doc:"loopback (deterministic, in-process) or socket")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Differential check: the networked run must equal Engine.run under the same seed")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a merged Chrome trace of the whole run to $(docv): one lane for the driver, \
             one for the referee (its RPC spans), one per node client, causally linked through \
             the wire's trace-context field")
  in
  let flight_tail = 512 in
  let run key family n p seed adv transport check timeout max_rounds trace_out =
    with_entry key (fun e ->
        let g = make_graph ~family ~n ~p ~seed in
        let n_nodes = G.Graph.n g in
        Printf.printf "graph: %s on %d nodes, %d edges (seed %d)   transport: %s\n" family
          n_nodes (G.Graph.num_edges g) seed transport;
        let tracing = trace_out <> None in
        (* The referee collector is always attached: it doubles as the flight
           recorder dumped when the run deadlocks or diverges. *)
        let session_sink, session_events = Obs.Trace.collector () in
        let driver_sink, driver_events = Obs.Trace.collector () in
        let minter = Obs.Span.minter ~seed:(seed lxor 0x5eed) () in
        let root =
          if tracing then
            Some
              (Obs.Span.start
                 ~attrs:[ ("transport", transport); ("protocol", key) ]
                 minter driver_sink "remote-run")
          else None
        in
        let parent = Option.map Obs.Span.context root in
        let client_sinks =
          Array.init n_nodes (fun _ -> if tracing then Some (Obs.Trace.collector ()) else None)
        in
        let client_trace v = Option.map fst client_sinks.(v) in
        let result =
          match transport with
          | "loopback" ->
            Ok
              (Net.Remote.run_loopback ~protocol:e.protocol ?max_rounds ~trace:session_sink
                 ?parent ~client_trace g (make_adversary adv g seed))
          | "socket" ->
            Net.Remote.run_socket ~timeout ?max_rounds ~trace:session_sink ?parent ~client_trace
              ~key ~protocol:e.protocol ~graph:g
              ~make_adversary:(fun () -> make_adversary adv g seed)
              ()
          | other ->
            Printf.eprintf "wbctl: unknown transport %s (loopback or socket)\n" other;
            exit 1
        in
        match result with
        | Error msg ->
          Printf.eprintf "wbctl: remote run failed: %s\n" msg;
          exit 1
        | Ok { Net.Session.run = remote; faults; deaths = _ } ->
          List.iter
            (fun (v, fault) ->
              Printf.printf "node %d fault: %s\n" (v + 1) (Net.Session.fault_to_string fault))
            faults;
          let code = print_run g (e.problem n_nodes) remote in
          let code =
            if not check then code
            else begin
              let local = P.Engine.run_packed ?max_rounds e.protocol g (make_adversary adv g seed) in
              match Net.Remote.diff_runs remote local with
              | [] ->
                print_endline "differential vs Engine.run: identical";
                code
              | issues ->
                print_endline "differential vs Engine.run: MISMATCH";
                List.iter (fun i -> print_endline ("  " ^ i)) issues;
                2
            end
          in
          (match root with
          | Some s -> Obs.Span.finish ~round:remote.P.Engine.stats.rounds driver_sink s
          | None -> ());
          (match trace_out with
          | None -> ()
          | Some file ->
            write_chrome_merge file
              (("driver", driver_events ())
              :: ("referee", session_events ())
              :: List.init n_nodes (fun v ->
                     ( Printf.sprintf "node-%d" (v + 1),
                       match client_sinks.(v) with Some (_, events) -> events () | None -> [] ))));
          if code <> 0 then begin
            let flight =
              match trace_out with
              | Some f -> Filename.remove_extension f ^ ".flight.jsonl"
              | None -> "wbctl-remote-run.flight.jsonl"
            in
            write_flight ~tail:flight_tail flight (session_events ());
            Printf.printf "replay: wbctl remote-run %s -g %s -n %d -p %g --seed %d -a %s \
                           --transport %s%s%s\n"
              key family n p seed adv transport
              (match max_rounds with
              | Some r -> Printf.sprintf " --max-rounds %d" r
              | None -> "")
              (if check then " --check" else "");
            exit code
          end)
  in
  Cmd.v
    (Cmd.info "remote-run"
       ~doc:
         "Run a session through the wb_net referee with n in-process clients and print the usual \
          report")
    Term.(
      const run $ key_arg $ family_arg $ n_arg $ p_arg $ seed_arg $ adversary_arg $ transport_arg
      $ check_arg $ timeout_arg $ max_rounds_arg $ trace_out_arg)

let chaos_cmd =
  let plan_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Fault plan: a preset name (default, drop-heavy, wire-garbage, disconnect@R) or a \
             JSON plan file (schema in docs/CHAOS.md)")
  in
  let runs_arg =
    Arg.(value & opt int 16 & info [ "runs" ] ~docv:"R" ~doc:"Campaign size (faulted runs)")
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Write the campaign report (JSON, schema 1) to $(docv) — byte-identical across \
             same-seed reruns")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Re-execute one campaign run (the first mismatching one, else run 0) with full \
             telemetry and write the merged Chrome trace to $(docv)")
  in
  let flight_tail = 512 in
  (* "disconnect@R" names the kill-one-node-at-round-R preset for any R;
     the presets list only carries its R=3 instance. *)
  let disconnect_preset spec =
    match String.split_on_char '@' spec with
    | [ "disconnect"; r ] -> (
      match int_of_string_opt r with
      | Some round when round >= 0 -> Some (Chaos.Plan.disconnect ~round)
      | _ -> None)
    | _ -> None
  in
  let resolve_plan = function
    | None -> Chaos.Plan.default
    | Some spec -> (
      match
        List.find_opt
          (fun (p : Chaos.Plan.t) -> String.equal p.Chaos.Plan.name spec)
          Chaos.Plan.presets
      with
      | Some p -> p
      | None -> (
        match disconnect_preset spec with
        | Some p -> p
        | None ->
          let text =
            try In_channel.with_open_bin spec In_channel.input_all
            with Sys_error msg ->
              Printf.eprintf "wbctl: cannot read plan %s: %s\n" spec msg;
              exit 1
          in
          (match Chaos.Plan.of_string text with
          | Ok p -> p
          | Error msg ->
            Printf.eprintf "wbctl: invalid plan %s: %s\n" spec msg;
            exit 1)))
  in
  let run key family n p seed adv plan_spec runs max_rounds report_out trace_out =
    with_entry key (fun e ->
        let g = make_graph ~family ~n ~p ~seed in
        let n_nodes = G.Graph.n g in
        let plan = resolve_plan plan_spec in
        Printf.printf "graph: %s on %d nodes, %d edges   plan: %s   seed %d, %d runs\n" family
          n_nodes (G.Graph.num_edges g) plan.Chaos.Plan.name seed runs;
        let inst =
          { Chaos.Campaign.key;
            protocol = e.protocol;
            graph = g;
            graph_desc = family;
            adversary_name = adv;
            make_adversary = (fun ~seed -> make_adversary adv g seed);
            max_rounds }
        in
        let progress (r : Chaos.Campaign.run_record) =
          Printf.printf "run %2d: %-14s %2d faults injected, %d dead, differential %s\n"
            r.Chaos.Campaign.index r.Chaos.Campaign.outcome
            (List.length r.Chaos.Campaign.injected)
            (List.length r.Chaos.Campaign.deaths)
            (if List.is_empty r.Chaos.Campaign.mismatches then "identical" else "MISMATCH")
        in
        let campaign = Chaos.Campaign.run ~progress ~seed ~runs ~plan inst in
        print_endline (Chaos.Campaign.summary_line campaign);
        (match report_out with
        | None -> ()
        | Some file ->
          let oc = open_out_or_die file in
          Obs.Json.to_channel oc (Chaos.Campaign.to_json campaign);
          output_char oc '\n';
          close_out oc;
          Printf.printf "campaign report: %s\n" file);
        (* Re-execute one run with full telemetry: the failing one when the
           differential broke, run 0 when --trace asked for a trace anyway.
           Derivation depends only on (seed, index), so the re-execution
           injects the identical fault schedule. *)
        let retrace index ~chrome ~flight =
          let session_sink, session_events = Obs.Trace.collector () in
          let driver_sink, driver_events = Obs.Trace.collector () in
          let minter = Obs.Span.minter ~seed:(seed lxor 0xc4a05) () in
          let root =
            Obs.Span.start
              ~attrs:[ ("protocol", key); ("chaos-run", string_of_int index) ]
              minter driver_sink "chaos-run"
          in
          let client_sinks = Array.init n_nodes (fun _ -> Obs.Trace.collector ()) in
          let client_trace v = Some (fst client_sinks.(v)) in
          let r =
            Chaos.Campaign.run_once ~trace:session_sink ~parent:(Obs.Span.context root)
              ~client_trace ~seed ~index ~plan inst
          in
          Obs.Span.finish ~round:r.Chaos.Campaign.rounds driver_sink root;
          (match chrome with
          | None -> ()
          | Some file ->
            write_chrome_merge file
              (("driver", driver_events ())
              :: ("referee", session_events ())
              :: List.init n_nodes (fun v ->
                     (Printf.sprintf "node-%d" (v + 1), (snd client_sinks.(v)) ()))));
          match flight with
          | None -> ()
          | Some file -> write_flight ~tail:flight_tail file (session_events ())
        in
        match
          List.find_opt
            (fun r -> not (List.is_empty r.Chaos.Campaign.mismatches))
            campaign.Chaos.Campaign.records
        with
        | None -> (
          match trace_out with
          | None -> ()
          | Some file -> retrace 0 ~chrome:(Some file) ~flight:None)
        | Some r ->
          Printf.printf "differential MISMATCH at run %d (run seed %d, adversary seed %d):\n"
            r.Chaos.Campaign.index r.Chaos.Campaign.run_seed r.Chaos.Campaign.adversary_seed;
          List.iter (fun i -> print_endline ("  " ^ i)) r.Chaos.Campaign.mismatches;
          let flight =
            match trace_out with
            | Some f -> Filename.remove_extension f ^ ".flight.jsonl"
            | None -> "wbctl-chaos.flight.jsonl"
          in
          retrace r.Chaos.Campaign.index ~chrome:trace_out ~flight:(Some flight);
          Printf.printf "replay: wbctl chaos %s -g %s -n %d -p %g --seed %d -a %s --runs %d%s%s\n"
            key family n p seed adv runs
            (match plan_spec with Some s -> " --plan " ^ s | None -> "")
            (match max_rounds with
            | Some r -> Printf.sprintf " --max-rounds %d" r
            | None -> "");
          exit 2)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a seeded fault-injection campaign against the networked referee: each faulted \
          loopback run is crash-replayed in process and differentially checked; any mismatch \
          dumps the flight ring, re-traces the failing run and exits 2")
    Term.(
      const run $ key_arg $ family_arg $ n_arg $ p_arg $ seed_arg $ adversary_arg $ plan_arg
      $ runs_arg $ max_rounds_arg $ report_arg $ trace_out_arg)

let top_cmd =
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Referee host")
  in
  let port_arg = Arg.(value & opt int 7117 & info [ "port" ] ~docv:"PORT" ~doc:"Referee port") in
  let watch_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "watch" ] ~docv:"SECONDS" ~doc:"Refresh every $(docv) seconds until interrupted")
  in
  let openmetrics_arg =
    Arg.(
      value & flag
      & info [ "openmetrics" ]
          ~doc:"Print the referee's registry in OpenMetrics text form (METRICS RPC) instead of \
                the telemetry table")
  in
  let run host port timeout watch openmetrics =
    let once () =
      if openmetrics then
        match fetch_openmetrics ~host ~port ~timeout with
        | Error msg ->
          Printf.eprintf "wbctl: %s\n" msg;
          exit 1
        | Ok body -> print_string body
      else
        match fetch_telemetry ~host ~port ~timeout ~tail:0 with
        | Error msg ->
          Printf.eprintf "wbctl: %s\n" msg;
          exit 1
        | Ok (metrics, _, _) -> print_telemetry metrics
    in
    match watch with
    | None -> once ()
    | Some secs when secs <= 0. ->
      prerr_endline "wbctl: --watch SECONDS must be positive";
      exit 1
    | Some secs ->
      let rec loop () =
        once ();
        print_newline ();
        flush stdout;
        Unix.sleepf secs;
        loop ()
      in
      loop ()
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live metrics from a running referee over the TELEMETRY RPC: counters, gauges, and the \
          net.rpc.* latency percentiles")
    Term.(const run $ host_arg $ port_arg $ timeout_arg $ watch_arg $ openmetrics_arg)

let synth_cmd =
  let problem_arg =
    Arg.(
      value & opt string "triangle"
      & info [ "problem" ] ~docv:"PROBLEM" ~doc:"triangle, connectivity, has-edge, edge-parity")
  in
  let model_arg =
    Arg.(value & opt string "simasync" & info [ "model" ] ~docv:"MODEL" ~doc:"simasync or simsync")
  in
  let run problem model n maxb =
    let answer =
      match problem with
      | "triangle" -> G.Algo.has_triangle
      | "connectivity" -> G.Algo.is_connected
      | "has-edge" -> fun g -> G.Graph.num_edges g > 0
      | "edge-parity" -> fun g -> G.Graph.num_edges g mod 2 = 0
      | other -> invalid_arg ("unknown problem: " ^ other)
    in
    let spec =
      Wb_synth.Simasync_synth.bool_spec ~name:problem ~universe:(G.Gen.all_labelled_graphs n) answer
    in
    let result =
      match model with
      | "simasync" -> Wb_synth.Simasync_synth.min_alphabet ~n spec ~max:maxb
      | "simsync" -> Wb_synth.Simsync_synth.min_alphabet ~n spec ~max:maxb
      | other -> invalid_arg ("unknown model: " ^ other)
    in
    match result with
    | Some b -> Printf.printf "%s/%s at n=%d: minimal alphabet %d\n" problem model n b
    | None -> Printf.printf "%s/%s at n=%d: no protocol with <= %d letters\n" problem model n maxb
  in
  let maxb_arg = Arg.(value & opt int 4 & info [ "max" ] ~docv:"B" ~doc:"Largest alphabet tried") in
  Cmd.v
    (Cmd.info "synth" ~doc:"Exhaustive protocol-existence search at tiny n")
    Term.(const run $ problem_arg $ model_arg $ Arg.(value & opt int 3 & info [ "n" ]) $ maxb_arg)

let counting_cmd =
  let run n =
    Printf.printf "Lemma 3 floors at n=%d (bits per node to BUILD the class):\n" n;
    List.iter
      (fun cls ->
        Printf.printf "  %-36s %d\n" cls.Wb_reductions.Counting.name
          (Wb_reductions.Counting.min_message_bits cls n))
      [ Wb_reductions.Counting.all_graphs;
        Wb_reductions.Counting.balanced_bipartite;
        Wb_reductions.Counting.even_odd_bipartite;
        Wb_reductions.Counting.labelled_trees;
        Wb_reductions.Counting.isolated_tail ~f:(fun n -> n / 2) ]
  in
  Cmd.v
    (Cmd.info "counting" ~doc:"Print the Lemma 3 information floors")
    Term.(const run $ n_arg)

let cost_cmd =
  let protocol_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "protocol" ] ~docv:"KEY"
          ~doc:"Sweep only this registry protocol (default: every registered protocol)")
  in
  let sweep_arg =
    Arg.(
      value & opt string "16,64,256,1024"
      & info [ "sweep" ] ~docv:"N1,N2,.."
          ~doc:"Comma-separated node counts; two-cliques entries round to the even size below")
  in
  let cost_seed_arg =
    Arg.(value & opt int 2012 & info [ "seed" ] ~docv:"SEED" ~doc:"Instance-generation seed")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also write the verdict table as JSON.  Unlike BENCH_cost.json the artifact carries \
             no wall-clock fields, so it is byte-identical across same-seed runs")
  in
  let run protocol sweep seed json =
    let ns =
      try
        List.map
          (fun s ->
            let n = int_of_string (String.trim s) in
            if n < 2 then failwith "size below 2";
            n)
          (String.split_on_char ',' sweep)
      with _ ->
        prerr_endline "wbctl: --sweep expects a comma-separated list of sizes >= 2";
        exit 1
    in
    let entries =
      match protocol with
      | None -> Wb_protocols.Registry.all ()
      | Some key -> with_entry key (fun e -> [ e ])
    in
    Wb_bench.Cost_core.print_header ();
    let violations = ref 0 in
    let rows =
      List.concat_map
        (fun e ->
          List.map
            (fun n ->
              let r =
                try Wb_bench.Cost_core.measure e ~seed ~n
                with Failure msg ->
                  Printf.eprintf "wbctl: %s\n" msg;
                  exit 2
              in
              Wb_bench.Cost_core.print_row r;
              if not (Obs.Cost.verdict_ok r.Wb_bench.Cost_core.verdict) then incr violations;
              r)
            ns)
        entries
    in
    (match json with
    | None -> ()
    | Some file ->
      let doc =
        Obs.Json.Obj
          [ ("bench", Obs.Json.String "cost");
            ("seed", Obs.Json.Int seed);
            ("sweep", Obs.Json.List (List.map (fun n -> Obs.Json.Int n) ns));
            ("rows",
             Obs.Json.List
               (List.map
                  (fun r ->
                    Obs.Json.Obj
                      (("protocol", Obs.Json.String r.Wb_bench.Cost_core.key)
                      :: Wb_bench.Cost_core.row_fields r))
                  rows)) ]
      in
      let oc = open_out_or_die file in
      Obs.Json.to_channel oc doc;
      output_char oc '\n';
      close_out oc;
      Printf.printf "cost table: %s (%d rows)\n" file (List.length rows));
    if !violations > 0 then begin
      Printf.eprintf "wbctl: %d certificate violation(s)\n" !violations;
      exit 2
    end
  in
  Cmd.v
    (Cmd.info "cost"
       ~doc:
         "Sweep the registry's cost certificates: measured worst message vs closed-form envelope \
          vs Lemma 3 floor across a range of sizes, exiting 2 on any violation")
    Term.(const run $ protocol_arg $ sweep_arg $ cost_seed_arg $ json_arg)

let metrics_cmd =
  let remote_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "remote" ] ~docv:"HOST:PORT"
          ~doc:"Scrape a running referee (METRICS RPC) instead of this process's registry")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the exposition to $(docv) instead of stdout")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the raw registry JSON envelope instead of OpenMetrics text")
  in
  let run remote timeout out json =
    let body =
      match remote with
      | None ->
        if json then Obs.Json.to_string (Obs.Metrics.dump_json ()) ^ "\n"
        else Obs.Metrics.dump_openmetrics ()
      | Some hostport ->
        let host, port =
          match String.rindex_opt hostport ':' with
          | Some i -> (
            let h = String.sub hostport 0 i in
            let p = String.sub hostport (i + 1) (String.length hostport - i - 1) in
            match int_of_string_opt p with
            | Some p when h <> "" -> (h, p)
            | _ ->
              prerr_endline "wbctl: --remote expects HOST:PORT";
              exit 1)
          | None ->
            prerr_endline "wbctl: --remote expects HOST:PORT";
            exit 1
        in
        if json then begin
          prerr_endline "wbctl: --json applies to the local registry only";
          exit 1
        end
        else
          match fetch_openmetrics ~host ~port ~timeout with
          | Ok body -> body
          | Error msg ->
            Printf.eprintf "wbctl: %s\n" msg;
            exit 1
    in
    match out with
    | None -> print_string body
    | Some file ->
      let oc = open_out_or_die file in
      output_string oc body;
      close_out oc;
      Printf.printf "wrote %s\n" file
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Dump the metrics registry in OpenMetrics text form — this process's (empty unless a \
          command ran in-process) or a remote referee's via the METRICS RPC")
    Term.(const run $ remote_arg $ timeout_arg $ out_arg $ json_arg)

let bench_cmd =
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"Run every registered bench suite") in
  let fast_arg =
    Arg.(value & flag & info [ "fast" ] ~doc:"Trimmed parameters for CI (fewer reps, smaller graphs)")
  in
  let bench_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED" ~doc:"Override each suite's default seed")
  in
  let history_arg =
    Arg.(
      value
      & opt string "BENCH_history.jsonl"
      & info [ "history" ] ~docv:"FILE" ~doc:"Bench-history ledger to append the reports to")
  in
  let no_history_arg =
    Arg.(value & flag & info [ "no-history" ] ~doc:"Do not append the reports to the history file")
  in
  let names_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"BENCH" ~doc:"Suites to run: explore, rpc, chaos, cost, msgsize, congest")
  in
  let suites =
    [ ("explore",
       fun ~seed ~fast ->
         Wb_bench.Explore_core.run ?seed ~fast ~out:"BENCH_explore.json" ());
      ("rpc", fun ~seed ~fast -> Wb_bench.Rpc_core.run ?seed ~fast ~out:"BENCH_rpc.json" ());
      ("chaos", fun ~seed ~fast -> Wb_bench.Chaos_core.run ?seed ~fast ~out:"BENCH_chaos.json" ());
      ("cost", fun ~seed ~fast -> Wb_bench.Cost_core.run ?seed ~fast ~out:"BENCH_cost.json" ());
      ("msgsize",
       fun ~seed ~fast -> Wb_bench.Msgsize_core.run ?seed ~fast ~out:"BENCH_msgsize.json" ());
      ("congest",
       fun ~seed ~fast -> Wb_bench.Congest_core.run ?seed ~fast ~out:"BENCH_congest.json" ())
    ]
  in
  let run all fast seed history no_history names =
    let chosen =
      if all then suites
      else if names = [] then begin
        prerr_endline
          "wbctl: name at least one bench (explore, rpc, chaos, cost, msgsize, congest) or pass \
           --all";
        exit 1
      end
      else
        List.map
          (fun n ->
            match List.assoc_opt n suites with
            | Some f -> (n, f)
            | None ->
              Printf.eprintf "wbctl: unknown bench %S (available: %s)\n" n
                (String.concat ", " (List.map fst suites));
              exit 1)
          names
    in
    List.iter
      (fun (_, f) ->
        let doc = f ~seed ~fast in
        if not no_history then Wb_bench.Report.append_history ~history doc)
      chosen;
    if not no_history then
      Printf.printf "appended %d run(s) to %s\n" (List.length chosen) history
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the machine-readable bench suites (schema-versioned BENCH_*.json reports) and \
          append them to the bench history that scripts/benchdiff.ml gates on")
    Term.(
      const run $ all_arg $ fast_arg $ bench_seed_arg $ history_arg $ no_history_arg $ names_arg)

let graph_cmd =
  let run family n p seed =
    let g = make_graph ~family ~n ~p ~seed in
    Printf.printf "graph6: %s\n" (G.Graph6.encode g);
    Format.printf "%a@." G.Graph.pp g;
    let k, _ = G.Algo.degeneracy g in
    Printf.printf "degeneracy: %d   components: %d   eob: %b   triangle: %b\n" k
      (G.Algo.num_components g)
      (G.Algo.is_even_odd_bipartite g)
      (G.Algo.has_triangle g)
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Generate a graph and print its properties")
    Term.(const run $ family_arg $ n_arg $ p_arg $ seed_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "wbctl" ~version:"1.0.0" ~doc:"Shared-whiteboard distributed computing laboratory")
          [ models_cmd; protocols_cmd; run_cmd; trace_cmd; explore_cmd; serve_cmd; join_cmd;
            remote_run_cmd; chaos_cmd; top_cmd; metrics_cmd; bench_cmd; synth_cmd; counting_cmd;
            cost_cmd; graph_cmd ]))
