(* Extension experiment: the finite-size hierarchy.  For each problem and
   tiny n, the minimal message alphabet under SIMASYNC (SAT over
   distinguishability) and under SIMSYNC (SAT over adaptive strategies).
   A strictly smaller SIMSYNC alphabet is a finite-size echo of
   PSIMASYNC < PSIMSYNC. *)

module G = Wb_graph
open Wb_synth

let problems =
  [ ("TRIANGLE", G.Algo.has_triangle);
    ("CONNECTIVITY", G.Algo.is_connected);
    ("HAS-EDGE", fun g -> G.Graph.num_edges g > 0);
    ("EDGE-PARITY", fun g -> G.Graph.num_edges g mod 2 = 0) ]

let fast_mode () = Sys.getenv_opt "WB_BENCH_FAST" <> None

(* Open Problem 1: for which f(n) is 2-CLIQUES in SIMASYNC[f]?  At tiny n we
   can answer exactly over the promise universe of (n/2-1)-regular graphs. *)
let open_problem_1 () =
  Harness.subsection "Open Problem 1 probe — 2-CLIQUES over its promise class";
  List.iter
    (fun n ->
      let universe =
        List.filter
          (fun g -> G.Graph.is_regular g = Some ((n / 2) - 1))
          (G.Gen.all_labelled_graphs n)
      in
      let spec =
        Simasync_synth.bool_spec ~name:"two-cliques" ~universe G.Algo.is_two_cliques
      in
      let sa =
        match Simasync_synth.min_alphabet ~n spec ~max:8 with
        | Some b -> string_of_int b
        | None -> ">8"
      in
      let ss =
        if n >= 6 then "-" (* board-sequence space is out of reach *)
        else begin
          match Simsync_synth.min_alphabet ~n spec ~max:4 with
          | Some b -> string_of_int b
          | None -> "(>cap)"
        end
      in
      Printf.printf "n=%d: %d promise instances; SIMASYNC min B = %s, SIMSYNC min B = %s\n%!" n
        (List.length universe) sa ss)
    [ 4; 6 ];
  Printf.printf
    "(a finite-size data point for Open Problem 1: how much simultaneous-frozen message\n\
     capacity 2-CLIQUES needs, vs the 2 letters SIMSYNC uses.)\n"

let print () =
  Harness.section "Extension — exhaustive protocol synthesis at tiny n";
  Printf.printf "minimal message-alphabet size B (SAT-verified); '-' = not attempted\n\n";
  Printf.printf "%-14s %-4s %-14s %-14s\n" "problem" "n" "SIMASYNC" "SIMSYNC";
  List.iter
    (fun (name, answer) ->
      List.iter
        (fun n ->
          let spec = Simasync_synth.bool_spec ~name ~universe:(G.Gen.all_labelled_graphs n) answer in
          let sa =
            match Simasync_synth.min_alphabet ~n spec ~max:8 with
            | Some b -> string_of_int b
            | None -> ">8"
          in
          let ss =
            if n >= 4 && (fast_mode () || name <> "TRIANGLE") then "-"
            else begin
              match Simsync_synth.min_alphabet ~n spec ~max:(if n >= 4 then 2 else 4) with
              | Some b -> string_of_int b
              | None -> if n >= 4 then ">2? (capped)" else ">4"
            end
          in
          Printf.printf "%-14s %-4d %-14s %-14s\n%!" name n sa ss)
        [ 3; 4 ])
    problems;
  Printf.printf
    "\n(headline: at n = 4, TRIANGLE requires a 3-letter alphabet under SIMASYNC but only 2\n\
     letters under SIMSYNC — an exhaustively-verified finite-size separation matching\n\
     Corollary 2's asymptotic claim, and constructive support for the paper's assertion\n\
     that TRIANGLE lies in PSIMSYNC.  Set WB_BENCH_FAST=1 to skip the slow SIMSYNC cell.)\n";
  open_problem_1 ()
