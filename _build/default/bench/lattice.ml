(* Regenerates the Theorem 4 lattice picture and the Theorem 9
   orthogonality of message size: which strict separations hold, and the
   two-sided SUBGRAPH_f table (real protocol cost vs counting floor). *)

module P = Wb_model
module R = Wb_reductions

let print () =
  Harness.section "Theorem 4 — the computing-power lattice";
  Printf.printf
    "PSIMASYNC[f] < PSIMSYNC[f] < PASYNC[f] <= PSYNC[f]   (f = Omega(log n), o(n))\n\n\
     separation witnesses exercised by this harness:\n\
    \  SIMASYNC  < SIMSYNC : rooted MIS  (yes in SIMSYNC: Table 2; no in SIMASYNC: Thm 6)\n\
    \  SIMSYNC   < ASYNC   : EOB-BFS    (yes in ASYNC:  Table 2; no in SIMSYNC:  Thm 8)\n\
    \  ASYNC    <= SYNC    : BFS solvable in SYNC; strictness is Open Problem 3\n";
  Harness.section "Theorem 9 — message size is orthogonal to synchronisation";
  Printf.printf "SUBGRAPH_f with f(n) = n/2: SIMASYNC[f] contains it, SYNC[o(f)] does not.\n\n";
  let rows = R.Subgraph_bound.evaluate ~cutoff:(fun n -> n / 2) ~ns:[ 32; 64; 128; 256; 512 ] in
  Printf.printf "%-8s %-8s %-22s %-22s %s\n" "n" "f(n)" "SIMASYNC protocol b/msg" "Lemma3 floor b/msg"
    "log n bits feasible?";
  List.iter
    (fun (r : R.Subgraph_bound.row) ->
      Printf.printf "%-8d %-8d %-22d %-22d %s\n" r.n r.f r.sim_async_bits r.lower_bound_bits
        (if R.Subgraph_bound.sync_infeasible ~n:r.n ~f:r.f ~g_bits:(Wb_support.Bitbuf.width_of r.n)
         then "no (counting bound)"
         else "yes"))
    rows;
  Printf.printf
    "\n(the protocol column tracks f(n) = n/2 while the floor grows ~ f^2/n; O(log n)-bit\n\
     messages are information-theoretically refused at every size: no synchronisation\n\
     mechanism can compensate for message size.)\n";
  ignore P.Model.all
