bench/main.ml: Array Congestbench Figures Harness Lattice List Msgsize Openproblems Printf String Synthbench Sys Table2 Timing Wb_model
