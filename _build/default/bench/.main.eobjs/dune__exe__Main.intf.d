bench/main.mli:
