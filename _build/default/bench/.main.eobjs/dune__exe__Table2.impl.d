bench/table2.ml: Array Fun Harness List Printf String Wb_graph Wb_model Wb_protocols Wb_reductions Wb_support
