bench/figures.ml: Harness List Printf Wb_graph Wb_model Wb_reductions Wb_support
