bench/harness.ml: List Printf String Wb_graph Wb_model Wb_support
