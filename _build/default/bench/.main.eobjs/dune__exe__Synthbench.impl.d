bench/synthbench.ml: Harness List Printf Simasync_synth Simsync_synth Sys Wb_graph Wb_synth
