bench/congestbench.ml: Harness Printf Wb_congest Wb_graph Wb_model Wb_protocols Wb_support
