bench/openproblems.ml: Harness List Printf Wb_graph Wb_model Wb_protocols Wb_support
