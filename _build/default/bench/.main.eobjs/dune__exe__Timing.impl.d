bench/timing.ml: Analyze Bechamel Benchmark Harness Hashtbl List Printf Staged Test Time Toolkit Wb_bignum Wb_congest Wb_graph Wb_model Wb_protocols Wb_reductions Wb_sat Wb_support
