bench/lattice.ml: Harness List Printf Wb_model Wb_reductions Wb_support
