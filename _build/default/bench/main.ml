(* Benchmark and table-regeneration harness.

   `dune exec bench/main.exe` regenerates every table and figure of the
   paper (plus the extension experiments) and then runs the bechamel
   timing suite.  Pass section names to run a subset:

     dune exec bench/main.exe -- table2 fig synth

   Sections: table1 table2 fig msgsize lattice synth congest open timing.
   Set WB_BENCH_FAST=1 to skip the slow n=4 SIMSYNC synthesis cell. *)

let sections =
  [ ("table1", fun () ->
        Harness.section "Table 1 — the four models";
        print_endline (Wb_model.Model.table1 ()));
    ("table2", Table2.print);
    ("fig", Figures.print);
    ("msgsize", Msgsize.print);
    ("lattice", Lattice.print);
    ("synth", Synthbench.print);
    ("congest", Congestbench.print);
    ("open", Openproblems.print);
    ("timing", Timing.print) ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let chosen =
    if requested = [] then sections
    else
      List.filter (fun (name, _) -> List.mem name requested) sections
  in
  if chosen = [] then begin
    Printf.eprintf "unknown section(s); available: %s\n"
      (String.concat " " (List.map fst sections));
    exit 1
  end;
  List.iter (fun (_, run) -> run ()) chosen
