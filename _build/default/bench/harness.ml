(* Shared helpers for the table/figure regeneration sections. *)

module P = Wb_model
module G = Wb_graph
module Prng = Wb_support.Prng

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

(* Validate [protocol] for [problem] over a list of graphs: every graph is
   run under five adversary strategies, and exhaustively when n <= limit.
   Returns (ok, runs, max bits seen). *)
let verify protocol problem graphs ~exhaustive_below =
  let runs = ref 0 in
  let max_bits = ref 0 in
  let ok = ref true in
  List.iter
    (fun g ->
      let problem = problem (G.Graph.n g) in
      let validate (r : P.Engine.run) =
        incr runs;
        max_bits := max !max_bits r.P.Engine.stats.max_message_bits;
        match r.P.Engine.outcome with
        | P.Engine.Success a -> P.Problems.valid_answer problem g a
        | P.Engine.Deadlock | P.Engine.Size_violation _ | P.Engine.Output_error _ -> false
      in
      let strategies =
        [ P.Adversary.min_id;
          P.Adversary.max_id;
          P.Adversary.alternating_extremes;
          P.Adversary.last_writer_neighbor_avoider g;
          P.Adversary.random (Prng.create 2012) ]
      in
      List.iter
        (fun adv -> if not (validate (P.Engine.run_packed protocol g adv)) then ok := false)
        strategies;
      if G.Graph.n g <= exhaustive_below then begin
        let all_ok, count = P.Engine.explore_packed ~limit:200_000 protocol g validate in
        ignore count;
        if not all_ok then ok := false
      end)
    graphs;
  (!ok, !runs, !max_bits)

let tick = function true -> "ok" | false -> "FAILED"
