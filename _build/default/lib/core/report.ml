let compact_answer = function
  | Answer.Graph g ->
    Printf.sprintf "graph(%d nodes, %d edges)" (Wb_graph.Graph.n g) (Wb_graph.Graph.num_edges g)
  | Answer.Bool b -> string_of_bool b
  | Answer.Node_set s -> Printf.sprintf "node-set(%d)" (List.length s)
  | Answer.Forest _ -> "forest"
  | Answer.Edge_set es -> Printf.sprintf "edge-set(%d)" (List.length es)
  | Answer.Reject -> "reject"

let outcome_line (run : Engine.run) =
  match run.Engine.outcome with
  | Engine.Success a -> "success: " ^ compact_answer a
  | Engine.Deadlock -> "deadlock (corrupted final configuration)"
  | Engine.Size_violation { node; bits; bound } ->
    Printf.sprintf "size violation: node %d wrote %d bits (bound %d)" (node + 1) bits bound
  | Engine.Output_error e -> "output error: " ^ e

let summary (run : Engine.run) =
  Printf.sprintf "%s | %d rounds, %d writes, max %d bits, total %d bits" (outcome_line run)
    run.Engine.stats.rounds (Array.length run.Engine.writes) run.Engine.stats.max_message_bits
    run.Engine.stats.total_bits

let timeline (run : Engine.run) =
  let n = Array.length run.Engine.activation_round in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (summary run);
  Buffer.add_char buf '\n';
  let nodes_with value array =
    List.filter (fun v -> array.(v) = value) (List.init n Fun.id)
  in
  for round = 1 to run.Engine.stats.rounds do
    let activated = nodes_with round run.Engine.activation_round in
    let wrote = nodes_with round run.Engine.write_round in
    if activated <> [] || wrote <> [] then begin
      Buffer.add_string buf (Printf.sprintf "round %3d:" round);
      if activated <> [] then
        Buffer.add_string buf
          (" activate " ^ String.concat "," (List.map (fun v -> string_of_int (v + 1)) activated));
      List.iter
        (fun v ->
          Buffer.add_string buf
            (Printf.sprintf " write %d (%d bits)" (v + 1) run.Engine.message_bits.(v)))
        wrote;
      Buffer.add_char buf '\n'
    end
  done;
  let silent = nodes_with (-1) run.Engine.write_round in
  if silent <> [] then
    Buffer.add_string buf
      ("never wrote: " ^ String.concat "," (List.map (fun v -> string_of_int (v + 1)) silent) ^ "\n");
  Buffer.contents buf

let pp ppf run = Format.pp_print_string ppf (timeline run)
