(** The interface every whiteboard protocol implements.

    The engine interprets a protocol under the semantics of its declared
    {!Model.t}:

    - In simultaneous models, [wants_to_activate] is ignored: every node is
      activated in round one.
    - In frozen (asynchronous) models, [compose] is called exactly once, at
      activation time, and the resulting message is what the adversary will
      eventually write — however much later that happens.
    - In synchronous models, [compose] is called for every active node at
      every round (with the current board), threading [local]; the message
      on the adversary's chosen node is the one composed that round.

    [local] must be treated as a pure value: exhaustive exploration snapshots
    and restores it, so protocols must not hide mutable state inside. *)

module type S = sig
  val name : string
  val model : Model.t

  val message_bound : n:int -> int
  (** Maximum payload size in bits for systems of [n] nodes — the protocol's
      [f(n)].  The engine fails the run if a written message exceeds it. *)

  type local

  val init : View.t -> local
  (** Local memory before round one. *)

  val wants_to_activate : View.t -> Board.t -> local -> bool
  (** Activation decision for awake nodes (free models only). *)

  val compose : View.t -> Board.t -> local -> Wb_support.Bitbuf.Writer.t * local
  (** Create (or, in synchronous models, re-create) the node's message. *)

  val output : n:int -> Board.t -> Answer.t
  (** Computed from the final board only. *)
end

type t = (module S)

val name : t -> string
val model : t -> Model.t
