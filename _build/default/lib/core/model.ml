type t = Sim_async | Sim_sync | Async | Sync

let all = [ Sim_async; Sim_sync; Async; Sync ]

let name = function
  | Sim_async -> "SIMASYNC"
  | Sim_sync -> "SIMSYNC"
  | Async -> "ASYNC"
  | Sync -> "SYNC"

let simultaneous = function Sim_async | Sim_sync -> true | Async | Sync -> false

let frozen_at_activation = function Sim_async | Async -> true | Sim_sync | Sync -> false

let weaker_or_equal a b =
  match (a, b) with
  | Sim_async, _ -> true
  | _, Sync -> true
  | Sim_sync, (Sim_sync | Async) -> true
  | Async, Async -> true
  | (Sim_sync | Async | Sync), _ -> a = b

let pp ppf m = Format.pp_print_string ppf (name m)

let table1 () =
  String.concat "\n"
    [ "Table 1: four families of protocols (f(n) = message size)";
      "";
      "                                      | message frozen at activation | no restriction";
      "  all nodes active after first round  | SIMASYNC[f(n)]               | SIMSYNC[f(n)]";
      "  no restriction                      | ASYNC[f(n)]                  | SYNC[f(n)]" ]
