(** The four synchronisation models of the paper (Table 1).

    Two orthogonal axes:
    - {b activation}: in {e simultaneous} models every node becomes active
      right after the first round; in {e free} models an awake node decides
      each round whether to activate.
    - {b message creation}: in {e asynchronous} models a node's message is
      created the moment it becomes active and never changes; in
      {e synchronous} models an active node keeps recomputing its message
      from the evolving whiteboard until the adversary schedules it. *)

type t = Sim_async | Sim_sync | Async | Sync

val all : t list
val name : t -> string
(** The paper's names: SIMASYNC, SIMSYNC, ASYNC, SYNC. *)

val simultaneous : t -> bool
(** Whether all nodes are forced active after round one. *)

val frozen_at_activation : t -> bool
(** Whether messages are fixed at activation time (the asynchronous axis). *)

val weaker_or_equal : t -> t -> bool
(** The lattice order of Theorem 4: [weaker_or_equal a b] when every problem
    solvable in [a] is solvable in [b] (SIMASYNC ⊆ SIMSYNC ⊆ SYNC and
    SIMASYNC ⊆ ASYNC ⊆ SYNC, plus SIMSYNC ⊆ ASYNC from Lemma 4). *)

val pp : Format.formatter -> t -> unit

val table1 : unit -> string
(** Rendering of the paper's Table 1. *)
