type t = { name : string; choose : Board.t -> int list -> int }

let name a = a.name

let choose a board candidates =
  match candidates with
  | [] -> invalid_arg "Adversary.choose: no candidates"
  | _ ->
    let pick = a.choose board candidates in
    if not (List.mem pick candidates) then invalid_arg "Adversary.choose: picked a non-candidate";
    pick

let min_id = { name = "min-id"; choose = (fun _ c -> List.hd c) }

let max_id = { name = "max-id"; choose = (fun _ c -> List.nth c (List.length c - 1)) }

let random rng =
  { name = "random";
    choose = (fun _ c -> List.nth c (Wb_support.Prng.int rng (List.length c))) }

let by_priority prio =
  { name = "priority";
    choose =
      (fun _ c ->
        List.fold_left (fun best v -> if prio.(v) > prio.(best) then v else best) (List.hd c) c) }

let last_writer_neighbor_avoider g =
  { name = "avoid-last-writer-neighbors";
    choose =
      (fun board c ->
        match Board.last board with
        | None -> List.hd c
        | Some m ->
          let w = Message.author m in
          (match List.find_opt (fun v -> not (Wb_graph.Graph.mem_edge g w v)) c with
          | Some v -> v
          | None -> List.hd c)) }

let alternating_extremes =
  { name = "alternating-extremes";
    choose =
      (fun board c ->
        if Board.length board mod 2 = 0 then List.hd c else List.nth c (List.length c - 1)) }
