(** Adversarial schedulers.

    Each round the engine hands the adversary the set of nodes that are
    active and have not yet written; the adversary picks the one whose
    message is appended to the whiteboard.  A protocol solves a problem only
    if it succeeds under {e every} adversary, so tests combine the strategies
    here with the exhaustive exploration of {!Engine}. *)

type t

val name : t -> string
val choose : t -> Board.t -> int list -> int
(** [choose adv board candidates] returns a member of [candidates]
    (non-empty, sorted increasing). *)

val min_id : t
(** Always the smallest identifier — the "polite" schedule many protocols
    implicitly think in. *)

val max_id : t
val random : Wb_support.Prng.t -> t
(** Uniform among candidates; stateful, so reuse across runs gives fresh
    draws. *)

val by_priority : int array -> t
(** [by_priority prio] picks the candidate with the largest [prio.(v)].
    With [prio] a permutation this realises any fixed preference order. *)

val last_writer_neighbor_avoider : Wb_graph.Graph.t -> t
(** A spiteful heuristic: prefers candidates {e not} adjacent to the previous
    writer (stress-tests layer-completion certificates in BFS protocols). *)

val alternating_extremes : t
(** Alternates between smallest and largest candidate. *)
