module type S = sig
  val name : string
  val model : Model.t
  val message_bound : n:int -> int

  type local

  val init : View.t -> local
  val wants_to_activate : View.t -> Board.t -> local -> bool
  val compose : View.t -> Board.t -> local -> Wb_support.Bitbuf.Writer.t * local
  val output : n:int -> Board.t -> Answer.t
end

type t = (module S)

let name (module P : S) = P.name

let model (module P : S) = P.model
