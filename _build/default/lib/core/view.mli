(** A node's local knowledge: its own index, the system size [n], and the
    indices of its neighbours — nothing else.  Protocol code receives only a
    view, never the graph, which keeps the "local knowledge" restriction of
    the model a type-level fact. *)

type t

val make : Wb_graph.Graph.t -> int -> t

(** [of_parts ~id ~n ~neighbors] builds a view directly (a sorted copy of
    [neighbors] is taken).  Used by the reduction transformers of Theorems
    3, 6 and 8, which simulate a protocol on a gadget graph that exists
    only virtually. *)
val of_parts : id:int -> n:int -> neighbors:int array -> t
val id : t -> int
val n : t -> int
val degree : t -> int
val neighbors : t -> int array
(** Sorted; owned by the view, do not mutate. *)

val mem_neighbor : t -> int -> bool
val iter_neighbors : t -> (int -> unit) -> unit
val fold_neighbors : t -> ('a -> int -> 'a) -> 'a -> 'a
val paper_id : t -> int
(** The 1-based identifier used in the paper ([id + 1]).  Power-sum
    encodings use it because Wright's theorem wants positive integers. *)
